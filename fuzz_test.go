package autonosql_test

// Native Go fuzz targets for the public spec surface. Three properties are
// pinned:
//
//  1. validate-never-panics: ScenarioSpec.Validate (and ParseFaultPlan) must
//     reject arbitrary input with an error, never a panic.
//  2. valid-spec-always-runs: any spec that Validate accepts must assemble
//     and complete a (shortened) run without error. This is the contract the
//     suite runner relies on — NewSuite validates variants up front and
//     treats later failures as bugs.
//  3. parse-encode-canonical: any trace ParseWorkloadTrace accepts must
//     re-encode to a canonical byte stream that parses back identically —
//     the byte-identity replay goldens depend on it.
//
// Seed corpora live under testdata/fuzz/<FuzzName>/ in the standard format,
// so `go test` exercises them on every ordinary test run; CI additionally
// runs each target briefly with -fuzz.

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"autonosql"
)

// fuzzSpec builds a ScenarioSpec from raw fuzz inputs without any
// sanitisation beyond bounding the simulated work a valid spec may demand,
// so the fuzzer explores validation edge cases while runs stay fast.
func fuzzSpec(seed, durationMs, sampleMs int64, nodes, rf, keyspace int,
	baseOps, peakOps, readFrac, probeRate, severity float64,
	readCL, writeCL, controller, pattern, keys, faultKind string, faultAtMs, faultDurMs int64, faultNodes int) autonosql.ScenarioSpec {
	spec := autonosql.DefaultScenarioSpec()
	spec.Seed = seed
	spec.Duration = time.Duration(durationMs) * time.Millisecond
	spec.SampleInterval = time.Duration(sampleMs) * time.Millisecond
	spec.Cluster.InitialNodes = nodes
	spec.Store.ReplicationFactor = rf
	spec.Store.ReadConsistency = autonosql.ConsistencyLevel(readCL)
	spec.Store.WriteConsistency = autonosql.ConsistencyLevel(writeCL)
	spec.Controller.Mode = autonosql.ControllerMode(controller)
	spec.Workload.Pattern = autonosql.LoadPattern(pattern)
	spec.Workload.Keys = autonosql.KeyDistribution(keys)
	spec.Workload.Keyspace = keyspace
	spec.Workload.BaseOpsPerSec = baseOps
	spec.Workload.PeakOpsPerSec = peakOps
	spec.Workload.ReadFraction = readFrac
	spec.Monitor.ProbeRate = probeRate
	spec.Faults = autonosql.FaultPlan{Faults: []autonosql.FaultSpec{{
		Kind:     autonosql.FaultKind(faultKind),
		At:       time.Duration(faultAtMs) * time.Millisecond,
		Duration: time.Duration(faultDurMs) * time.Millisecond,
		Nodes:    faultNodes,
		Severity: severity,
	}}}
	return spec
}

// boundForRun caps the simulated work of an already-validated spec so one
// fuzz execution stays in the low milliseconds. Only magnitudes are clamped;
// the structural fields under test are left untouched.
func boundForRun(spec autonosql.ScenarioSpec) autonosql.ScenarioSpec {
	if spec.Duration > 2*time.Second {
		spec.Duration = 2 * time.Second
	}
	if spec.Workload.BaseOpsPerSec > 300 {
		spec.Workload.BaseOpsPerSec = 300
	}
	if spec.Workload.PeakOpsPerSec > 300 {
		spec.Workload.PeakOpsPerSec = 300
	}
	if spec.Workload.Keyspace > 2000 {
		spec.Workload.Keyspace = 2000
	}
	if spec.Cluster.InitialNodes > 12 {
		spec.Cluster.InitialNodes = 12
	}
	if spec.Store.ReplicationFactor > 12 {
		spec.Store.ReplicationFactor = 12
	}
	if spec.Monitor.ProbeRate > 20 {
		spec.Monitor.ProbeRate = 20
	}
	return spec
}

func FuzzSpecValidate(f *testing.F) {
	// One healthy spec, one of every controller/pattern family, and a few
	// hostile shapes (nonsense strings, extreme magnitudes, weird faults).
	f.Add(int64(1), int64(5000), int64(500), 3, 3, 100, 50.0, 0.0, 0.5, 1.0, 0.0,
		"ONE", "ONE", "none", "constant", "zipfian", "crash", int64(1000), int64(1000), 1)
	f.Add(int64(42), int64(2000), int64(250), 4, 3, 50, 80.0, 120.0, 0.9, 2.0, 0.7,
		"QUORUM", "ALL", "smart", "diurnal+spike", "latest", "storm", int64(500), int64(800), 0)
	f.Add(int64(-7), int64(1000), int64(100), 2, 2, 10, 10.0, 20.0, 0.0, 0.5, 0.4,
		"TWO", "QUORUM", "reactive", "step", "uniform", "slow", int64(0), int64(0), 2)
	f.Add(int64(0), int64(-5), int64(0), 0, 0, -3, -1.0, -2.0, 1.5, -1.0, -0.5,
		"THREE", "", "chaos-monkey", "sawtooth", "gaussian", "meteor", int64(-1), int64(-1), -2)
	f.Add(int64(9), int64(3000), int64(300), 5, 9, 100, 60.0, 0.0, 0.5, 1.0, 1.0,
		"one", "all", "", "spike", "", "partition", int64(1500), int64(900), 99)

	f.Fuzz(func(t *testing.T, seed, durationMs, sampleMs int64, nodes, rf, keyspace int,
		baseOps, peakOps, readFrac, probeRate, severity float64,
		readCL, writeCL, controller, pattern, keys, faultKind string, faultAtMs, faultDurMs int64, faultNodes int) {
		spec := fuzzSpec(seed, durationMs, sampleMs, nodes, rf, keyspace,
			baseOps, peakOps, readFrac, probeRate, severity,
			readCL, writeCL, controller, pattern, keys, faultKind, faultAtMs, faultDurMs, faultNodes)
		// Property 1: Validate never panics, whatever the input.
		if err := spec.Validate(); err != nil {
			return
		}
		// Property 2: a spec that validated must run to completion.
		spec = boundForRun(spec)
		scenario, err := autonosql.NewScenario(spec)
		if err != nil {
			t.Fatalf("valid spec rejected by NewScenario: %v\nspec: %+v", err, spec)
		}
		rep, err := scenario.Run()
		if err != nil {
			t.Fatalf("valid spec failed to run: %v\nspec: %+v", err, spec)
		}
		if rep.Duration != spec.Duration {
			t.Fatalf("report duration %v != spec duration %v", rep.Duration, spec.Duration)
		}
	})
}

func FuzzParseTenantSpec(f *testing.F) {
	f.Add("gold:diurnal:2000,bronze:constant:500")
	f.Add("gold:constant:1500:name=checkout:read=0.9:keys=5000")
	f.Add("bronze:spike:300:peak=3000,bronze:constant:100")
	f.Add("silver:diurnal+spike:800:peak=1600:read=0.5")
	f.Add("")
	f.Add("gold:diurnal:2000,,  ,bronze:constant:0")
	f.Add("platinum:constant:100")
	f.Add("gold:constant:1e309")
	f.Add("gold:constant:100:name=a,gold:constant:100:name=a")
	f.Add("gold:constant:100:wat=1:sev=2")

	f.Fuzz(func(t *testing.T, s string) {
		specs, err := autonosql.ParseTenantSpecs(s)
		if err != nil {
			return // rejected without panicking: fine
		}
		// Parser contract: accepted tenant lists always pass spec validation
		// (names filled in and unique, classes and patterns known, rates
		// bounded), and produce one tenant per non-blank element.
		spec := autonosql.DefaultScenarioSpec()
		spec.Tenants = specs
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("ParseTenantSpecs(%q) accepted a list that fails validation: %v", s, verr)
		}
		elems := 0
		for _, part := range strings.Split(s, ",") {
			if strings.TrimSpace(part) != "" {
				elems++
			}
		}
		if len(specs) != elems {
			t.Fatalf("ParseTenantSpecs(%q) produced %d tenants for %d elements", s, len(specs), elems)
		}
	})
}

func FuzzParseAdmissionSpec(f *testing.F) {
	f.Add("")
	f.Add("off")
	f.Add("on")
	f.Add("on:frac=0.4:floor=100")
	f.Add("on:cooldown=2m:hold=90s")
	f.Add("ON:frac=0.999999")
	f.Add("on:frac=NaN")
	f.Add("on:floor=1e309")
	f.Add("off:frac=0.5")
	f.Add("on:wat=1")
	f.Add("on:frac=:floor=")

	f.Fuzz(func(t *testing.T, s string) {
		spec, err := autonosql.ParseAdmissionSpec(s)
		if err != nil {
			return // rejected without panicking: fine
		}
		// Parser contract: accepted admission specs always pass scenario
		// validation (fractions in range, rates finite, durations
		// non-negative).
		base := autonosql.DefaultScenarioSpec()
		base.Controller.Admission = spec
		if verr := base.Validate(); verr != nil {
			t.Fatalf("ParseAdmissionSpec(%q) accepted a spec that fails validation: %v", s, verr)
		}
		// A disabled spec must be the zero value: "off" carries no tuning.
		if !spec.Enabled && spec != (autonosql.AdmissionSpec{}) {
			t.Fatalf("ParseAdmissionSpec(%q) produced tuning on a disabled spec: %+v", s, spec)
		}
	})
}

func FuzzParseTrace(f *testing.F) {
	// Valid traces (multi-tenant, anonymous, raw keys, empty), then one seed
	// per rejection path: bad version, duplicate tenants, negative and
	// out-of-order times, bad opcode, unknown tenant, key/raw conflicts,
	// missing key, unknown header field, plain garbage.
	f.Add("{\"v\":1,\"tenants\":[\"gold\",\"bronze\"]}\n{\"t\":1000,\"tn\":\"gold\",\"op\":\"r\",\"k\":17}\n{\"t\":2000,\"tn\":\"bronze\",\"op\":\"w\",\"k\":3}\n")
	f.Add("{\"v\":1}\n{\"t\":0,\"op\":\"r\",\"k\":0}\n{\"t\":0,\"op\":\"w\",\"raw\":\"user:42\"}\n")
	f.Add("{\"v\":1}\n")
	f.Add("")
	f.Add("{\"v\":2}\n")
	f.Add("{\"v\":1,\"tenants\":[\"a\",\"a\"]}\n")
	f.Add("{\"v\":1,\"tenants\":[\"\"]}\n")
	f.Add("{\"v\":1}\n{\"t\":-5,\"op\":\"r\",\"k\":1}\n")
	f.Add("{\"v\":1}\n{\"t\":2000,\"op\":\"r\",\"k\":1}\n{\"t\":1000,\"op\":\"r\",\"k\":1}\n")
	f.Add("{\"v\":1}\n{\"t\":1,\"op\":\"x\",\"k\":1}\n")
	f.Add("{\"v\":1}\n{\"t\":1,\"tn\":\"ghost\",\"op\":\"r\",\"k\":1}\n")
	f.Add("{\"v\":1}\n{\"t\":1,\"op\":\"r\",\"k\":1,\"raw\":\"both\"}\n")
	f.Add("{\"v\":1}\n{\"t\":1,\"op\":\"r\",\"k\":-1}\n")
	f.Add("{\"v\":1}\n{\"t\":1,\"op\":\"r\"}\n")
	f.Add("{\"v\":1,\"wat\":true}\n")
	f.Add("not json\n")

	f.Fuzz(func(t *testing.T, s string) {
		trace, err := autonosql.ParseWorkloadTrace(strings.NewReader(s))
		if err != nil {
			return // rejected without panicking: fine
		}
		// Parser contract: an accepted trace re-encodes canonically — the
		// encoding parses back and re-encodes to the identical bytes — and the
		// parsed views survive the round trip.
		var first bytes.Buffer
		if err := trace.Encode(&first); err != nil {
			t.Fatalf("accepted trace failed to encode: %v\ninput:\n%s", err, s)
		}
		again, err := autonosql.ParseWorkloadTrace(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("canonical encoding rejected on re-parse: %v\nencoding:\n%s", err, first.String())
		}
		var second bytes.Buffer
		if err := again.Encode(&second); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("trace encoding is not canonical: encode-parse-encode changed the bytes")
		}
		if again.EventCount() != trace.EventCount() {
			t.Fatalf("event count changed across the round trip: %d -> %d",
				trace.EventCount(), again.EventCount())
		}
		if !reflect.DeepEqual(again.TenantNames(), trace.TenantNames()) {
			t.Fatalf("tenant names changed across the round trip: %v -> %v",
				trace.TenantNames(), again.TenantNames())
		}
		if again.Duration() != trace.Duration() {
			t.Fatalf("duration changed across the round trip: %v -> %v",
				trace.Duration(), again.Duration())
		}
	})
}

func FuzzParseFaultPlan(f *testing.F) {
	f.Add("crash:30s:60s")
	f.Add("partition:1m:45s:n=2,storm:10s:30s:sev=0.8")
	f.Add("slow:20s:40s:n=2:sev=0.5")
	f.Add("")
	f.Add("crash:30s:60s,,  ,partition:0s:0s")
	f.Add("meteor:1s:1s")
	f.Add("crash:1s:1s:n=-1:sev=2:wat=3")
	f.Add("crash:9999999h:1ns:n=2147483647")

	f.Fuzz(func(t *testing.T, s string) {
		plan, err := autonosql.ParseFaultPlan(s)
		if err != nil {
			return // rejected without panicking: fine
		}
		// Parser contract: accepted plans always pass spec validation, and
		// the parsed plan has one event per non-blank element.
		spec := autonosql.DefaultScenarioSpec()
		spec.Faults = plan
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("ParseFaultPlan(%q) accepted a plan that fails validation: %v", s, verr)
		}
		elems := 0
		for _, part := range strings.Split(s, ",") {
			if strings.TrimSpace(part) != "" {
				elems++
			}
		}
		if len(plan.Faults) != elems {
			t.Fatalf("ParseFaultPlan(%q) produced %d events for %d elements", s, len(plan.Faults), elems)
		}
	})
}
