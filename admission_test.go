package autonosql_test

// Scoped-action tests: the -admission DSL, the golden fingerprint of a
// throttled two-tenant scenario, the regression that the admission machinery
// changes nothing while disabled, suite equivalence with the admission axis
// in play, and Handle-level throttle interventions.

import (
	"strings"
	"testing"
	"time"

	"autonosql"
)

// throttledSpec is the canonical throttled scenario: the twoTenantSpec
// gold+bronze pair under the smart controller with admission control on and
// the cluster squeezed so the bronze burst pushes gold into its band.
func throttledSpec(seed int64) autonosql.ScenarioSpec {
	spec := twoTenantSpec(seed, autonosql.ControllerSmart)
	spec.Duration = 4 * time.Minute
	spec.Cluster.NodeOpsPerSec = 1200 // force pressure so the controller acts
	spec.Controller.Predictive = false
	spec.Controller.Admission = autonosql.AdmissionSpec{Enabled: true}
	return spec
}

// TestGoldenScenarioThrottle pins the throttled two-tenant path bit-for-bit:
// the planner's tenant-protection branch, the token-bucket shed path, the
// per-tenant shed/rejection ground truth and the throttle windows in the
// report all feed the fingerprint.
func TestGoldenScenarioThrottle(t *testing.T) {
	rep := runGoldenScenario(t, throttledSpec(2026))
	var shed uint64
	throttles := 0
	for _, tr := range rep.Tenants {
		shed += tr.ShedOps
		throttles += len(tr.Throttles)
	}
	if shed == 0 || throttles == 0 {
		t.Fatalf("scenario did not throttle (shed=%d windows=%d); the golden would not cover the admission path", shed, throttles)
	}
	checkGolden(t, "scenario_throttle_seed2026", fingerprintReport(rep))
}

// TestAdmissionDisabledIsByteIdentical pins the opt-in contract: a spec that
// carries admission tuning but leaves Enabled false (and the always-installed
// limiter plumbing with it) must reproduce the plain run bit-for-bit.
func TestAdmissionDisabledIsByteIdentical(t *testing.T) {
	plain := fingerprintReport(runGoldenScenario(t, twoTenantSpec(4711, autonosql.ControllerNone)))

	tuned := twoTenantSpec(4711, autonosql.ControllerNone)
	tuned.Controller.Admission = autonosql.AdmissionSpec{
		ThrottleFraction: 0.3,
		MinRate:          10,
		Cooldown:         time.Second,
		Holdoff:          time.Second,
	}
	got := fingerprintReport(runGoldenScenario(t, tuned))
	if got != plain {
		t.Fatal("admission tuning with Enabled=false changed the simulation")
	}
	// And the recorded two-tenant golden still matches, proving the scoped-
	// action refactor left untreated scenarios untouched.
	checkGolden(t, "scenario_twotenants_seed4711", got)
}

// TestThrottledTenantReportSurfaces checks the acceptance-level surface: the
// throttled run's report shows throttle windows, shed counts and scoped
// decisions that name their target.
func TestThrottledTenantReportSurfaces(t *testing.T) {
	rep := runGoldenScenario(t, throttledSpec(77))
	var bronze *autonosql.TenantReport
	for i := range rep.Tenants {
		if rep.Tenants[i].Class == "bronze" {
			bronze = &rep.Tenants[i]
		}
	}
	if bronze == nil {
		t.Fatal("no bronze tenant section")
	}
	if bronze.ShedOps == 0 || len(bronze.Throttles) == 0 || bronze.ThrottledMinutes <= 0 {
		t.Fatalf("bronze tenant not throttled: shed=%d windows=%d min=%.1f",
			bronze.ShedOps, len(bronze.Throttles), bronze.ThrottledMinutes)
	}
	// Shed operations are rejections in the tenant's ground truth.
	if bronze.FailedReads+bronze.FailedWrites < bronze.ShedOps {
		t.Errorf("shed ops (%d) not reflected in failures (%d reads + %d writes)",
			bronze.ShedOps, bronze.FailedReads, bronze.FailedWrites)
	}
	for _, w := range bronze.Throttles {
		if w.End <= w.Start || w.Rate <= 0 {
			t.Errorf("malformed throttle window %+v", w)
		}
	}
	// The rendered tenant line carries the treatment.
	if s := bronze.String(); !strings.Contains(s, "throttled=") || !strings.Contains(s, "shed") {
		t.Errorf("TenantReport.String lacks throttle info: %s", s)
	}
	// At least one decision is a scoped throttle naming the bronze tenant.
	found := false
	for _, d := range rep.Decisions {
		if strings.Contains(d, "throttle-tenant["+bronze.Name) {
			found = true
		}
	}
	if !found {
		t.Errorf("no decision names the throttled tenant:\n%s", strings.Join(rep.Decisions, "\n"))
	}
}

// TestAdmissionSuiteConcurrentEqualsSequential pins that the new admission /
// placement axis keeps the suite runner's core guarantee: a concurrent run
// produces bit-for-bit the same reports as a sequential one.
func TestAdmissionSuiteConcurrentEqualsSequential(t *testing.T) {
	off := throttledSpec(11)
	off.Duration = 60 * time.Second
	off.Controller.Admission = autonosql.AdmissionSpec{}
	on := throttledSpec(11)
	on.Duration = 60 * time.Second
	pinned := throttledSpec(11)
	pinned.Duration = 60 * time.Second
	pinned.Controller.AllowPlacement = true

	suiteSpec := autonosql.SuiteSpec{
		Variants: []autonosql.Variant{
			{Name: "admission=off", Spec: off},
			{Name: "admission=on", Spec: on},
			{Name: "admission=on placement=on", Spec: pinned},
		},
	}
	fingerprint := func(parallelism int) string {
		suiteSpec.Parallelism = parallelism
		suite, err := autonosql.NewSuite(suiteSpec)
		if err != nil {
			t.Fatalf("NewSuite: %v", err)
		}
		rep, err := suite.Run()
		if err != nil {
			t.Fatalf("suite.Run: %v", err)
		}
		var b strings.Builder
		for _, v := range rep.Variants {
			b.WriteString("== variant " + v.Name + "\n")
			b.WriteString(fingerprintReport(v.Report))
		}
		return b.String()
	}
	sequential := fingerprint(1)
	concurrent := fingerprint(3)
	if sequential != concurrent {
		t.Fatal("admission suite diverged between sequential and concurrent execution")
	}
}

// TestHandleThrottleIntervention drives admission control through a
// Scenario.At intervention instead of the controller: throttle the bronze
// tenant mid-run, release it later, and require the shed to land in the
// report.
func TestHandleThrottleIntervention(t *testing.T) {
	spec := twoTenantSpec(5, autonosql.ControllerNone)
	spec.Duration = 60 * time.Second
	scenario, err := autonosql.NewScenario(spec)
	if err != nil {
		t.Fatalf("NewScenario: %v", err)
	}
	scenario.At(10*time.Second, func(h *autonosql.Handle) {
		if err := h.ThrottleTenant("bronze", 50); err != nil {
			t.Errorf("ThrottleTenant: %v", err)
		}
		if err := h.ThrottleTenant("nobody", 50); err == nil {
			t.Error("ThrottleTenant accepted an unknown tenant")
		}
	})
	scenario.At(40*time.Second, func(h *autonosql.Handle) {
		if err := h.UnthrottleTenant("bronze"); err != nil {
			t.Errorf("UnthrottleTenant: %v", err)
		}
	})
	rep, err := scenario.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	bronze := rep.Tenants[1]
	if bronze.ShedOps == 0 {
		t.Error("intervention throttle shed nothing")
	}
	if len(bronze.Throttles) != 1 {
		t.Fatalf("throttle windows = %v, want one", bronze.Throttles)
	}
	w := bronze.Throttles[0]
	if w.Start != 10*time.Second || w.End != 40*time.Second || w.Rate != 50 {
		t.Errorf("throttle window %+v, want 10s..40s @50ops/s", w)
	}
}

// TestParseAdmissionSpec covers the -admission DSL.
func TestParseAdmissionSpec(t *testing.T) {
	t.Run("off", func(t *testing.T) {
		for _, s := range []string{"", "  ", "off", "OFF"} {
			spec, err := autonosql.ParseAdmissionSpec(s)
			if err != nil || spec.Enabled {
				t.Errorf("ParseAdmissionSpec(%q) = %+v, %v; want disabled", s, spec, err)
			}
		}
	})
	t.Run("on with options", func(t *testing.T) {
		spec, err := autonosql.ParseAdmissionSpec("on:frac=0.4:floor=100:cooldown=2m:hold=90s")
		if err != nil {
			t.Fatalf("ParseAdmissionSpec: %v", err)
		}
		if !spec.Enabled || spec.ThrottleFraction != 0.4 || spec.MinRate != 100 ||
			spec.Cooldown != 2*time.Minute || spec.Holdoff != 90*time.Second {
			t.Errorf("options not applied: %+v", spec)
		}
	})
	t.Run("bare on", func(t *testing.T) {
		spec, err := autonosql.ParseAdmissionSpec("on")
		if err != nil || !spec.Enabled {
			t.Fatalf("ParseAdmissionSpec(\"on\") = %+v, %v", spec, err)
		}
		base := autonosql.DefaultScenarioSpec()
		base.Controller.Admission = spec
		if err := base.Validate(); err != nil {
			t.Errorf("accepted spec fails validation: %v", err)
		}
	})
	for _, bad := range []string{
		"maybe",
		"off:frac=0.5", // off takes no options
		"on:frac=0",    // fraction must be in (0, 1)
		"on:frac=1",    // admitting everything is not a throttle
		"on:frac=NaN",  // NaN passes plain range comparisons
		"on:floor=-1",  // negative floor
		"on:floor=Inf", // non-finite floor
		"on:cooldown=-1s",
		"on:hold=xyz",
		"on:wat=1",
	} {
		if _, err := autonosql.ParseAdmissionSpec(bad); err == nil {
			t.Errorf("ParseAdmissionSpec(%q) accepted invalid input", bad)
		}
	}
}

// TestSuiteThrottleColumn checks the suite-level surface: the tenants table
// gains a throttle/placement column and the tenant CSV the shed/throttle
// fields.
func TestSuiteThrottleColumn(t *testing.T) {
	base := throttledSpec(9)
	base.Duration = 2 * time.Minute
	suite, err := autonosql.NewSuite(autonosql.SuiteSpec{
		Variants: []autonosql.Variant{{Name: "throttled", Spec: base}},
	})
	if err != nil {
		t.Fatalf("NewSuite: %v", err)
	}
	rep, err := suite.Run()
	if err != nil {
		t.Fatalf("suite.Run: %v", err)
	}
	table := rep.TenantsTable()
	if !strings.Contains(table, "throttle/placement") {
		t.Errorf("TenantsTable lacks throttle/placement column:\n%s", table)
	}
	if !strings.Contains(table, "shed") {
		t.Errorf("TenantsTable shows no shed treatment:\n%s", table)
	}
	var csvOut strings.Builder
	if err := rep.WriteTenantsCSV(&csvOut); err != nil {
		t.Fatalf("WriteTenantsCSV: %v", err)
	}
	header := strings.SplitN(csvOut.String(), "\n", 2)[0]
	for _, col := range []string{"shed_ops", "throttled_min", "pinned"} {
		if !strings.Contains(header, col) {
			t.Errorf("tenant CSV header lacks %q: %s", col, header)
		}
	}
}
