package autonosql_test

// Trace record/replay tests. The load-bearing guarantee is byte-identity:
// recording is a pass-through (same fingerprint as an unrecorded run, pinned
// by the committed golden), the recorded trace itself is a golden file, and
// replaying it reproduces the live run's fingerprint bit-for-bit. On top of
// that, the suite's Traces axis must stay deterministic under parallelism.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"autonosql"
)

// recordRun runs spec with trace recording armed and returns the report and
// the captured trace.
func recordRun(t *testing.T, spec autonosql.ScenarioSpec) (*autonosql.Report, *autonosql.WorkloadTrace) {
	t.Helper()
	scenario, err := autonosql.NewScenario(spec)
	if err != nil {
		t.Fatalf("NewScenario: %v", err)
	}
	if err := scenario.RecordTrace(); err != nil {
		t.Fatalf("RecordTrace: %v", err)
	}
	rep, err := scenario.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	trace, err := scenario.RecordedTrace()
	if err != nil {
		t.Fatalf("RecordedTrace: %v", err)
	}
	return rep, trace
}

func encodeTrace(t *testing.T, trace *autonosql.WorkloadTrace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.Encode(&buf); err != nil {
		t.Fatalf("encoding trace: %v", err)
	}
	return buf.Bytes()
}

// TestReplayByteIdentity is the tentpole guarantee of trace replay, checked
// against the two-tenant golden scenario:
//
//  1. recording does not perturb the run — the recorded run's fingerprint is
//     byte-identical to the committed golden, which was pinned long before
//     recording existed;
//  2. the recorded trace matches its committed golden file byte-for-byte;
//  3. replaying the committed trace reproduces the live fingerprint
//     byte-for-byte, even though the replayed run never touches the arrival
//     or key random streams;
//  4. re-recording the replayed run reproduces the trace itself.
func TestReplayByteIdentity(t *testing.T) {
	spec := twoTenantSpec(4711, autonosql.ControllerNone)
	liveRep, trace := recordRun(t, spec)
	liveFP := fingerprintReport(liveRep)

	if trace.EventCount() == 0 {
		t.Fatal("recorded trace is empty")
	}
	if got := trace.TenantNames(); len(got) != 2 || got[0] != "gold" || got[1] != "bronze" {
		t.Fatalf("recorded trace tenants = %v, want [gold bronze]", got)
	}

	// (1) Recording is a pass-through: same fingerprint as the committed
	// golden of the unrecorded run.
	goldenPath := filepath.Join("testdata", "golden_scenario_twotenants_seed4711.txt")
	if !*updateGolden {
		want, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("reading %s: %v", goldenPath, err)
		}
		if string(want) != liveFP {
			t.Fatalf("recording perturbed the run: fingerprint diverged from %s", goldenPath)
		}
	}

	// (2) The trace itself is a golden file.
	encoded := encodeTrace(t, trace)
	tracePath := filepath.Join("testdata", "golden_trace_twotenants_seed4711.jsonl")
	if *updateGolden {
		if err := os.WriteFile(tracePath, encoded, 0o644); err != nil {
			t.Fatalf("writing %s: %v", tracePath, err)
		}
		t.Logf("updated %s", tracePath)
	} else {
		want, err := os.ReadFile(tracePath)
		if err != nil {
			t.Fatalf("reading trace golden (run with -update-golden to create): %v", err)
		}
		if !bytes.Equal(want, encoded) {
			t.Fatalf("recorded trace diverged from %s", tracePath)
		}
	}

	// (3) Replaying the trace — parsed back from its canonical bytes, the
	// way a committed file would be loaded — reproduces the fingerprint.
	parsed, err := autonosql.ParseWorkloadTrace(bytes.NewReader(encoded))
	if err != nil {
		t.Fatalf("ParseWorkloadTrace: %v", err)
	}
	replaySpec := twoTenantSpec(4711, autonosql.ControllerNone)
	replaySpec.Replay = parsed
	replayRep, replayTrace := recordRun(t, replaySpec)
	if got := fingerprintReport(replayRep); got != liveFP {
		t.Fatal("replayed run's fingerprint differs from the live run: replay is not byte-identical")
	}

	// (4) Re-recording the replay reproduces the trace.
	if !bytes.Equal(encodeTrace(t, replayTrace), encoded) {
		t.Fatal("re-recorded trace differs from the trace being replayed")
	}
}

// TestReplayValidation pins the spec-level guard rails: a replay trace must
// declare exactly the spec's tenants, in order.
func TestReplayValidation(t *testing.T) {
	_, trace := recordRun(t, twoTenantSpec(4711, autonosql.ControllerNone))

	spec := twoTenantSpec(4711, autonosql.ControllerNone)
	spec.Tenants[0].Name = "platinum"
	spec.Replay = trace
	if _, err := autonosql.NewScenario(spec); err == nil {
		t.Fatal("NewScenario accepted a replay trace whose tenants do not match the spec")
	}

	spec = twoTenantSpec(4711, autonosql.ControllerNone)
	spec.Tenants = spec.Tenants[:1]
	spec.Replay = trace
	if _, err := autonosql.NewScenario(spec); err == nil {
		t.Fatal("NewScenario accepted a two-tenant trace for a one-tenant spec")
	}
}

// TestSuiteTracesAxis pins the Traces grid axis: the same recorded arrivals
// run against every controller variant, variant names carry the trace
// component, and the expansion stays bit-for-bit deterministic whatever the
// parallelism.
func TestSuiteTracesAxis(t *testing.T) {
	base := twoTenantSpec(4711, autonosql.ControllerNone)
	_, trace := recordRun(t, base)

	suiteSpec := autonosql.SuiteSpec{
		Base: base,
		Grid: autonosql.Grid{
			Controllers: []autonosql.ControllerMode{autonosql.ControllerNone, autonosql.ControllerReactive},
			Traces:      []autonosql.NamedTrace{{Name: "rec4711", Trace: trace}},
		},
	}
	fingerprint := func(parallelism int) string {
		suiteSpec.Parallelism = parallelism
		suite, err := autonosql.NewSuite(suiteSpec)
		if err != nil {
			t.Fatalf("NewSuite: %v", err)
		}
		rep, err := suite.Run()
		if err != nil {
			t.Fatalf("suite.Run: %v", err)
		}
		if len(rep.Variants) != 2 {
			t.Fatalf("suite ran %d variants, want 2", len(rep.Variants))
		}
		var b strings.Builder
		for _, v := range rep.Variants {
			if !strings.Contains(v.Name, "trace=rec4711") {
				t.Fatalf("variant %q does not carry the trace axis component", v.Name)
			}
			fmt.Fprintf(&b, "== variant %s\n%s", v.Name, fingerprintReport(v.Report))
		}
		return b.String()
	}
	sequential := fingerprint(1)
	concurrent := fingerprint(2)
	if sequential != concurrent {
		t.Fatal("Traces-axis suite diverged between sequential and concurrent execution")
	}
}
