package autonosql

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"autonosql/internal/core"
	"autonosql/internal/fault"
	"autonosql/internal/sim"
	"autonosql/internal/sla"
	"autonosql/internal/tenant"
)

// SeriesPoint is one sample of a report time series.
type SeriesPoint struct {
	// At is the virtual time of the sample.
	At time.Duration
	// Value is the sampled value (units depend on the series).
	Value float64
}

// LatencySummary summarises a latency distribution in seconds.
type LatencySummary struct {
	Mean float64
	P50  float64
	P95  float64
	P99  float64
	Max  float64
}

// Violations is the SLA violation accounting of a run, in minutes.
type Violations struct {
	// Window is the time the inconsistency-window clause was violated.
	Window float64
	// ReadLatency and WriteLatency are the latency-clause violation times.
	ReadLatency  float64
	WriteLatency float64
	// Availability is the error-rate-clause violation time.
	Availability float64
	// Total is the time at least one clause was violated (clauses can overlap).
	Total float64
}

// CostSummary is the priced outcome of a run.
type CostSummary struct {
	// NodeHours is the consumed node-hours.
	NodeHours float64
	// Infrastructure, Compensation and Penalty are the cost components.
	Infrastructure float64
	Compensation   float64
	Penalty        float64
	// Total is the sum of all components.
	Total float64
}

// ConfigurationSummary is the store/cluster configuration at one point in
// time.
type ConfigurationSummary struct {
	ClusterSize       int
	ReplicationFactor int
	ReadConsistency   ConsistencyLevel
	WriteConsistency  ConsistencyLevel
	// PinnedClass is the SLA class holding dedicated nodes, or "".
	PinnedClass string `json:",omitempty"`
}

// FaultWindow is one injected fault as it actually struck, annotated with
// the system's behaviour while it was active: the ground-truth inconsistency
// window over the report samples inside the fault interval and the fraction
// of those samples that violated the SLA's window clause.
type FaultWindow struct {
	// Kind is the fault class (crash, slow, partition, storm).
	Kind string
	// Start and End delimit the fault's active interval in virtual time.
	Start time.Duration
	End   time.Duration
	// Nodes are the IDs of the nodes the fault touched (empty for storms).
	Nodes []int
	// Severity is the injected intensity (zero for crash and partition).
	Severity float64

	// Samples is the number of report samples inside [Start, End].
	Samples int
	// WindowP95Mean and WindowP95Peak summarise the sampled ground-truth
	// p95 inconsistency window during the fault, in seconds.
	WindowP95Mean float64
	WindowP95Peak float64
	// SLAViolationFraction is the fraction of samples during the fault whose
	// window p95 exceeded the SLA bound.
	SLAViolationFraction float64
}

// String renders the window compactly.
func (w FaultWindow) String() string {
	s := fmt.Sprintf("%s %v..%v", w.Kind, w.Start, w.End)
	if len(w.Nodes) > 0 {
		s += fmt.Sprintf(" nodes=%v", w.Nodes)
	}
	if w.Severity > 0 {
		s += fmt.Sprintf(" sev=%.2f", w.Severity)
	}
	s += fmt.Sprintf(" | window p95 mean=%s peak=%s, %.0f%% of samples in violation",
		ms(w.WindowP95Mean), ms(w.WindowP95Peak), w.SLAViolationFraction*100)
	return s
}

// ThrottleWindow is one contiguous interval during which a tenant ran under
// admission control at the given admitted rate (ops/s).
type ThrottleWindow struct {
	Start time.Duration
	End   time.Duration
	Rate  float64
}

// String renders the window compactly.
func (w ThrottleWindow) String() string {
	return fmt.Sprintf("%v..%v @%.0fops/s", w.Start, w.End, w.Rate)
}

// TenantReport is one tenant's slice of a multi-tenant run: its traffic,
// its ground-truth inconsistency-window and latency distributions, its
// compliance against its own SLA class, the money its violations and stale
// reads cost, and the admission-control / placement treatment the
// controller applied to it.
type TenantReport struct {
	// Name and Class identify the tenant and its SLA class.
	Name  string
	Class string

	// Traffic and failure counts, attributed from the store's ground truth.
	// Operations shed by admission control count as failures.
	Reads         uint64
	Writes        uint64
	FailedReads   uint64
	FailedWrites  uint64
	StaleReads    uint64
	StaleReadRate float64

	// ShedOps counts operations rejected by admission control before they
	// reached the store; Throttles is the tenant's throttle timeline and
	// ThrottledMinutes its total duration. All zero for untreated tenants.
	ShedOps          uint64
	Throttles        []ThrottleWindow `json:",omitempty"`
	ThrottledMinutes float64
	// Pinned reports whether the tenant's class held dedicated nodes when
	// the run ended.
	Pinned bool

	// DelayedOps counts operations queued by delay-mode admission control
	// instead of being shed; MaxQueueDepth is the deepest the queue got and
	// QueueDepth its depth when the run ended (operations still waiting).
	// All zero unless the admission spec ran with mode=delay.
	DelayedOps    uint64 `json:",omitempty"`
	MaxQueueDepth int    `json:",omitempty"`
	QueueDepth    int    `json:",omitempty"`

	// Window is the tenant's ground-truth inconsistency-window distribution
	// (seconds) over its own writes.
	Window LatencySummary
	// ReadLatency and WriteLatency are the tenant's client-observed
	// latencies (seconds).
	ReadLatency  LatencySummary
	WriteLatency LatencySummary

	// ComplianceRatio and Violations measure the tenant against its own SLA
	// class bounds.
	ComplianceRatio float64
	Violations      Violations

	// PenaltyCost prices the tenant's violation minutes at its class rate;
	// CompensationCost prices its stale reads.
	PenaltyCost      float64
	CompensationCost float64
}

// String renders the tenant section compactly. Admission and placement
// treatment is appended only when present, so untreated tenants render
// exactly as before.
func (t TenantReport) String() string {
	s := fmt.Sprintf("%s(%s): %d reads (%d stale), %d writes, window p95=%s read p99=%s, compliance=%.2f%%, violation=%.1fmin, penalty=$%.2f",
		t.Name, t.Class, t.Reads, t.StaleReads, t.Writes,
		ms(t.Window.P95), ms(t.ReadLatency.P99),
		t.ComplianceRatio*100, t.Violations.Total, t.PenaltyCost+t.CompensationCost)
	if t.ShedOps > 0 || t.ThrottledMinutes > 0 {
		s += fmt.Sprintf(", throttled=%.1fmin (%d windows, %d shed)",
			t.ThrottledMinutes, len(t.Throttles), t.ShedOps)
	}
	if t.DelayedOps > 0 {
		s += fmt.Sprintf(", delayed=%d (max queue %d)", t.DelayedOps, t.MaxQueueDepth)
	}
	if t.Pinned {
		s += ", pinned"
	}
	return s
}

// AuditCooldown is one knowledge-base cooldown consult made while planning a
// control decision.
type AuditCooldown struct {
	// Kind is the action kind whose cooldown was consulted.
	Kind string
	// Scope is the consult's scope ("tenant:x", "class:gold"; empty for
	// cluster-wide).
	Scope string `json:",omitempty"`
	// Active reports whether the cooldown blocked the candidate.
	Active bool
}

// AuditVeto is one candidate action the planner considered and rejected.
type AuditVeto struct {
	Kind   string
	Scope  string `json:",omitempty"`
	Reason string
}

// AuditEntry is the causal account of one control interval: what the
// controller saw, which cooldowns and vetoes shaped the plan, which branch
// produced the action and how the actuation went. Recorded only when
// Observe.Audit is set; auditing changes no decision.
type AuditEntry struct {
	// At is the interval's virtual time.
	At time.Duration
	// Branch is the planning branch that produced the action.
	Branch string
	// Condition and Cause echo the analysis verdict.
	Condition string
	Cause     string `json:",omitempty"`
	// Tenant names the tenant whose penalty-weighted signal drove the
	// analysis, and WindowP95 is the driving window observation in seconds.
	Tenant    string `json:",omitempty"`
	WindowP95 float64
	// Cooldowns and Vetoes list the consults and rejections, in plan order.
	Cooldowns []AuditCooldown `json:",omitempty"`
	Vetoes    []AuditVeto     `json:",omitempty"`
	// Action, Applied and Err mirror the decision's outcome.
	Action  string
	Applied bool
	Err     string `json:",omitempty"`
}

// String renders the entry compactly for logs.
func (e AuditEntry) String() string {
	status := "noop"
	if e.Applied {
		status = "applied"
	} else if e.Err != "" {
		status = "failed: " + e.Err
	}
	s := fmt.Sprintf("[%8s] %-14s %-20s %-9s window=%.0fms cooldowns=%d vetoes=%d",
		e.At.Truncate(time.Second), e.Branch, e.Action, status,
		e.WindowP95*1000, len(e.Cooldowns), len(e.Vetoes))
	if e.Tenant != "" {
		s += " tenant=" + e.Tenant
	}
	for _, v := range e.Vetoes {
		s += fmt.Sprintf(" [veto %s: %s]", v.Kind, v.Reason)
	}
	return s
}

// SpanStats summarises the op tracer's sampling outcome.
type SpanStats struct {
	// Seen is how many operations were offered to the sampler, Sampled how
	// many were elected, and Dropped how many sampled traces the retention
	// cap evicted.
	Seen    uint64
	Sampled uint64
	Dropped uint64
}

// LaneProfile is one engine lane's self-profiling counters (sharded runs
// only). Every field is a pure function of the simulated computation.
type LaneProfile struct {
	// Lane is the lane index; Lead is its scheduling lead in events.
	Lane int
	Lead int
	// Events counts events fired on this lane's heap.
	Events uint64
	// PoolHits and PoolMisses measure the pooled-event free list.
	PoolHits   uint64
	PoolMisses uint64
	// HeapPeak is the lane's pending-event high-water mark.
	HeapPeak int
	// MailSent counts cross-lane messages this lane mailed.
	MailSent uint64
}

// ProfileReport is the engine's deterministic self-profiling section,
// populated only when Observe.Profile is set. Wall-clock quantities (lane
// occupancy, barrier stall) are deliberately absent — they vary run to run —
// and live in the benchrunner's measurements instead.
type ProfileReport struct {
	// Events counts fired events across all lanes; PoolHits/PoolMisses
	// measure the pooled-event free list, and HeapPeak is the largest
	// pending-event heap any lane reached.
	Events     uint64
	PoolHits   uint64
	PoolMisses uint64
	HeapPeak   int
	// Rounds and MailDrained describe the sharded engine's lockstep barriers
	// (zero for single-heap runs); Lanes holds the per-lane breakdown.
	Rounds      uint64        `json:",omitempty"`
	MailDrained uint64        `json:",omitempty"`
	Lanes       []LaneProfile `json:",omitempty"`
	// Feeds describes the noise-feed layer of a home-sharded run: how many
	// entropy streams were pre-generated on owner lanes and how the refill
	// protocol behaved. All fields are deterministic (the scheduling-dependent
	// steal/wait split is deliberately not exported). Nil for plain runs.
	Feeds *sim.FeedStats `json:",omitempty"`
}

// String renders the profile compactly.
func (p ProfileReport) String() string {
	total := p.PoolHits + p.PoolMisses
	hitRate := 0.0
	if total > 0 {
		hitRate = float64(p.PoolHits) / float64(total)
	}
	s := fmt.Sprintf("%d events, pool hit %.1f%%, heap peak %d", p.Events, hitRate*100, p.HeapPeak)
	if p.Rounds > 0 {
		s += fmt.Sprintf(", %d lockstep rounds, %d mail drained over %d lanes",
			p.Rounds, p.MailDrained, len(p.Lanes))
	}
	if p.Feeds != nil {
		s += fmt.Sprintf(", %d noise feeds (%d refills, %d inline, %d values)",
			p.Feeds.Feeds, p.Feeds.Refills, p.Feeds.Inline, p.Feeds.Values)
	}
	return s
}

// Report is the outcome of one scenario run.
type Report struct {
	// Spec echoes the scenario specification the run used.
	Spec ScenarioSpec
	// Duration is the simulated time covered.
	Duration time.Duration

	// Operations and failure counts, from the store's ground truth.
	Reads         uint64
	Writes        uint64
	FailedReads   uint64
	FailedWrites  uint64
	StaleReads    uint64
	StaleReadRate float64

	// Window is the ground-truth inconsistency-window distribution (seconds).
	Window LatencySummary
	// EstimatedWindowP95 is the monitor's final 95th-percentile estimate
	// (seconds), for comparing estimate vs. truth.
	EstimatedWindowP95 float64
	// ReadLatency and WriteLatency are client-observed latencies (seconds).
	ReadLatency  LatencySummary
	WriteLatency LatencySummary

	// MonitoringProbeOps is the number of extra operations issued by active
	// probing.
	MonitoringProbeOps uint64
	// MonitoringOverheadFraction is probe operations as a fraction of all
	// operations.
	MonitoringOverheadFraction float64

	// SLA compliance.
	ComplianceRatio float64
	Violations      Violations

	// Cost.
	Cost CostSummary

	// Final and extreme configurations observed.
	FinalConfiguration ConfigurationSummary
	MaxClusterSize     int
	MinClusterSize     int

	// Reconfigurations is the number of actions the controller applied.
	Reconfigurations int
	// Decisions is the controller's decision log rendered as strings
	// (empty for ControllerNone).
	Decisions []string

	// Faults is the timeline of injected faults with per-window behaviour
	// stats (empty for fault-free runs).
	Faults []FaultWindow

	// Tenants holds the per-tenant sections of a multi-tenant run, in
	// declaration order (empty for single-tenant runs).
	Tenants []TenantReport `json:",omitempty"`

	// Audit is the MAPE decision audit trail (nil unless Observe.Audit).
	Audit []AuditEntry `json:",omitempty"`
	// Spans summarises op-trace sampling (nil unless Observe.TraceOps); the
	// traces themselves export through Scenario.WriteSpans and the daemon's
	// streaming endpoints, not the report.
	Spans *SpanStats `json:",omitempty"`
	// Profile is the engine self-profiling section (nil unless
	// Observe.Profile).
	Profile *ProfileReport `json:",omitempty"`

	// Series are the sampled time series, keyed by the Series* constants.
	Series map[string][]SeriesPoint
}

// buildReport assembles the report after the simulation has finished.
func (s *Scenario) buildReport() *Report {
	stats := s.store.Stats()
	summary := s.tracker.Summary()

	totalOps := stats.Reads + stats.Writes
	probeOps := s.monitor.ProbeOps()

	r := &Report{
		Spec:         s.spec,
		Duration:     s.spec.Duration,
		Reads:        stats.Reads,
		Writes:       stats.Writes,
		FailedReads:  stats.ReadFailures,
		FailedWrites: stats.WriteFailures,
		StaleReads:   stats.StaleReads,
		Window: LatencySummary{
			Mean: stats.Window.Mean, P50: stats.Window.P50, P95: stats.Window.P95,
			P99: stats.Window.P99, Max: stats.Window.Max,
		},
		EstimatedWindowP95: s.monitor.WindowQuantile(0.95),
		ReadLatency: LatencySummary{
			Mean: stats.ReadLatency.Mean, P50: stats.ReadLatency.P50, P95: stats.ReadLatency.P95,
			P99: stats.ReadLatency.P99, Max: stats.ReadLatency.Max,
		},
		WriteLatency: LatencySummary{
			Mean: stats.WriteLatency.Mean, P50: stats.WriteLatency.P50, P95: stats.WriteLatency.P95,
			P99: stats.WriteLatency.P99, Max: stats.WriteLatency.Max,
		},
		MonitoringProbeOps: probeOps,
		ComplianceRatio:    summary.ComplianceRatio,
		MaxClusterSize:     s.maxNodes,
		MinClusterSize:     s.minNodes,
		FinalConfiguration: ConfigurationSummary{
			ClusterSize:       s.cluster.Size(),
			ReplicationFactor: s.store.ReplicationFactor(),
			ReadConsistency:   consistencyFromStore(s.store.ReadConsistency()),
			WriteConsistency:  consistencyFromStore(s.store.WriteConsistency()),
			PinnedClass:       s.store.PinnedClass(),
		},
		Series: make(map[string][]SeriesPoint, len(s.series)),
	}
	if stats.Reads > 0 {
		r.StaleReadRate = float64(stats.StaleReads) / float64(stats.Reads)
	}
	if totalOps+probeOps > 0 {
		r.MonitoringOverheadFraction = float64(probeOps) / float64(totalOps+probeOps)
	}

	r.Violations = Violations{
		Window:       s.tracker.ViolationMinutes(sla.ClauseWindow),
		ReadLatency:  s.tracker.ViolationMinutes(sla.ClauseReadLatency),
		WriteLatency: s.tracker.ViolationMinutes(sla.ClauseWriteLatency),
		Availability: s.tracker.ViolationMinutes(sla.ClauseAvailability),
		Total:        s.tracker.TotalViolationMinutes(),
	}

	nodeSeconds := s.cluster.NodeSeconds()
	cost := s.costs.Price(sla.Usage{
		NodeSeconds:   nodeSeconds,
		StaleReads:    stats.StaleReads,
		ViolationTime: summary.TotalViolationTime,
	})
	r.Cost = CostSummary{
		NodeHours:      nodeSeconds / 3600,
		Infrastructure: cost.Infrastructure,
		Compensation:   cost.Compensation,
		Penalty:        cost.Penalty,
		Total:          cost.Total(),
	}

	if s.smart != nil {
		r.Reconfigurations = s.smart.Reconfigurations()
		for _, d := range s.smart.Decisions() {
			if !d.Action.IsNoop() {
				r.Decisions = append(r.Decisions, d.String())
			}
		}
	}
	if s.reactive != nil {
		r.Reconfigurations = s.reactive.Reconfigurations()
		for _, d := range s.reactive.Decisions() {
			if !d.Action.IsNoop() {
				r.Decisions = append(r.Decisions, d.String())
			}
		}
	}

	for name, ts := range s.series {
		pts := ts.Points()
		out := make([]SeriesPoint, len(pts))
		for i, p := range pts {
			out[i] = SeriesPoint{At: p.At, Value: p.Value}
		}
		r.Series[name] = out
	}

	if s.injector != nil {
		r.Faults = buildFaultWindows(s.injector.Timeline(), r.Series[SeriesWindowP95],
			s.spec.SLA.MaxWindowP95)
	}

	for _, rt := range s.tenantRuntimes {
		r.Tenants = append(r.Tenants, buildTenantReport(s, rt))
	}

	// Observability sections. Populated only on request, so an unobserved
	// run's report stays byte-identical to pre-observability output.
	if ob := s.spec.Observe; ob != nil {
		if s.tracer != nil {
			r.Spans = &SpanStats{
				Seen:    s.tracer.Seen(),
				Sampled: s.tracer.Sampled(),
				Dropped: s.tracer.Dropped(),
			}
		}
		if ob.Audit && s.smart != nil {
			r.Audit = auditEntries(s.smart.Audit())
		}
		if ob.Profile {
			r.Profile = s.profileReport()
		}
	}
	return r
}

// auditEntries mirrors the controller's audit trail into report types.
func auditEntries(trail []core.AuditRecord) []AuditEntry {
	if len(trail) == 0 {
		return nil
	}
	out := make([]AuditEntry, len(trail))
	for i, rec := range trail {
		e := AuditEntry{
			At:        rec.At,
			Branch:    rec.Branch,
			Condition: rec.Condition,
			Cause:     rec.Cause,
			Tenant:    rec.Tenant,
			WindowP95: rec.WindowP95,
			Action:    rec.Action,
			Applied:   rec.Applied,
			Err:       rec.Err,
		}
		for _, cd := range rec.Cooldowns {
			e.Cooldowns = append(e.Cooldowns, AuditCooldown(cd))
		}
		for _, v := range rec.Vetoes {
			e.Vetoes = append(e.Vetoes, AuditVeto(v))
		}
		out[i] = e
	}
	return out
}

// profileReport snapshots the run's engine counters, aggregating lanes in a
// sharded run.
func (s *Scenario) profileReport() *ProfileReport {
	if s.sharded != nil {
		sp := s.sharded.se.Profile()
		pr := &ProfileReport{Rounds: sp.Rounds, MailDrained: sp.MailDrained}
		for _, l := range sp.Lanes {
			pr.Events += l.Processed
			pr.PoolHits += l.PoolHits
			pr.PoolMisses += l.PoolMisses
			if l.HeapPeak > pr.HeapPeak {
				pr.HeapPeak = l.HeapPeak
			}
			pr.Lanes = append(pr.Lanes, LaneProfile{
				Lane:       l.Lane,
				Lead:       l.Lead,
				Events:     l.Processed,
				PoolHits:   l.PoolHits,
				PoolMisses: l.PoolMisses,
				HeapPeak:   l.HeapPeak,
				MailSent:   l.MailSent,
			})
		}
		if s.feeds != nil {
			stats := s.feeds.Stats()
			stats.Steals = 0 // scheduling-dependent; keep the section deterministic
			pr.Feeds = &stats
		}
		return pr
	}
	p := s.engine.Profile()
	return &ProfileReport{
		Events:     p.Processed,
		PoolHits:   p.PoolHits,
		PoolMisses: p.PoolMisses,
		HeapPeak:   p.HeapPeak,
	}
}

// buildTenantReport assembles one tenant's section: store-attributed ground
// truth plus the runtime's own compliance accounting, priced at the
// tenant's class rates.
func buildTenantReport(s *Scenario, rt *tenant.Runtime) TenantReport {
	gt := s.store.TenantStats(rt.ID())
	class := rt.Class()
	tracker := rt.Tracker()
	sum := rt.Summarize()

	tr := TenantReport{
		Name:         rt.Name(),
		Class:        string(class.Class),
		Reads:        gt.Reads,
		Writes:       gt.Writes,
		FailedReads:  gt.ReadFailures,
		FailedWrites: gt.WriteFailures,
		StaleReads:   gt.StaleReads,
		ShedOps:      gt.ShedOps,
		Pinned:       s.store.ClassPinned(string(class.Class)),
		Window: LatencySummary{
			Mean: gt.Window.Mean, P50: gt.Window.P50, P95: gt.Window.P95,
			P99: gt.Window.P99, Max: gt.Window.Max,
		},
		ReadLatency: LatencySummary{
			Mean: gt.ReadLatency.Mean, P50: gt.ReadLatency.P50, P95: gt.ReadLatency.P95,
			P99: gt.ReadLatency.P99, Max: gt.ReadLatency.Max,
		},
		WriteLatency: LatencySummary{
			Mean: gt.WriteLatency.Mean, P50: gt.WriteLatency.P50, P95: gt.WriteLatency.P95,
			P99: gt.WriteLatency.P99, Max: gt.WriteLatency.Max,
		},
		ComplianceRatio: sum.Compliance.ComplianceRatio,
		Violations: Violations{
			Window:       tracker.ViolationMinutes(sla.ClauseWindow),
			ReadLatency:  tracker.ViolationMinutes(sla.ClauseReadLatency),
			WriteLatency: tracker.ViolationMinutes(sla.ClauseWriteLatency),
			Availability: tracker.ViolationMinutes(sla.ClauseAvailability),
			Total:        tracker.TotalViolationMinutes(),
		},
		PenaltyCost:      sum.Penalty,
		CompensationCost: float64(gt.StaleReads) * class.StaleReadCompensation,
	}
	if gt.Reads > 0 {
		tr.StaleReadRate = float64(gt.StaleReads) / float64(gt.Reads)
	}
	for _, w := range rt.ThrottleWindows(s.spec.Duration) {
		tr.Throttles = append(tr.Throttles, ThrottleWindow{Start: w.Start, End: w.End, Rate: w.Rate})
	}
	tr.ThrottledMinutes = rt.ThrottledTime(s.spec.Duration).Minutes()
	tr.DelayedOps = rt.DelayedOps()
	tr.MaxQueueDepth = rt.MaxQueueDepth()
	tr.QueueDepth = rt.QueueDepth()
	return tr
}

// buildFaultWindows annotates the injector's timeline with the behaviour the
// sampled series recorded while each fault was active.
func buildFaultWindows(timeline []fault.Window, windowP95 []SeriesPoint, slaBound time.Duration) []FaultWindow {
	if len(timeline) == 0 {
		return nil
	}
	boundMs := slaBound.Seconds() * 1000
	out := make([]FaultWindow, 0, len(timeline))
	for _, w := range timeline {
		fw := FaultWindow{
			Kind:     w.Kind.String(),
			Start:    w.Start,
			End:      w.End,
			Severity: w.Severity,
		}
		for _, id := range w.Nodes {
			fw.Nodes = append(fw.Nodes, int(id))
		}
		violations := 0
		for _, p := range windowP95 {
			if p.At < w.Start || p.At > w.End {
				continue
			}
			fw.Samples++
			v := p.Value / 1000 // series is in milliseconds
			fw.WindowP95Mean += v
			if v > fw.WindowP95Peak {
				fw.WindowP95Peak = v
			}
			if boundMs > 0 && p.Value > boundMs {
				violations++
			}
		}
		if fw.Samples > 0 {
			fw.WindowP95Mean /= float64(fw.Samples)
			fw.SLAViolationFraction = float64(violations) / float64(fw.Samples)
		}
		out = append(out, fw)
	}
	return out
}

// String renders the report as a human-readable summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "autonosql run: %v, controller=%s, pattern=%s\n",
		r.Duration, modeOrNone(r.Spec.Controller.Mode), patternOrConstant(r.Spec.Workload.Pattern))
	fmt.Fprintf(&b, "  operations: %d reads (%d failed, %d stale, %.3f%% stale), %d writes (%d failed)\n",
		r.Reads, r.FailedReads, r.StaleReads, r.StaleReadRate*100, r.Writes, r.FailedWrites)
	fmt.Fprintf(&b, "  inconsistency window: p50=%s p95=%s p99=%s max=%s (monitor estimate p95=%s)\n",
		ms(r.Window.P50), ms(r.Window.P95), ms(r.Window.P99), ms(r.Window.Max), ms(r.EstimatedWindowP95))
	fmt.Fprintf(&b, "  latency: read p99=%s write p99=%s\n", ms(r.ReadLatency.P99), ms(r.WriteLatency.P99))
	fmt.Fprintf(&b, "  monitoring: %d probe ops (%.2f%% of traffic)\n",
		r.MonitoringProbeOps, r.MonitoringOverheadFraction*100)
	fmt.Fprintf(&b, "  SLA: compliance=%.2f%% violation-minutes window=%.1f read=%.1f write=%.1f availability=%.1f\n",
		r.ComplianceRatio*100, r.Violations.Window, r.Violations.ReadLatency,
		r.Violations.WriteLatency, r.Violations.Availability)
	fmt.Fprintf(&b, "  cost: $%.2f (infra $%.2f over %.2f node-hours, compensation $%.2f, penalty $%.2f)\n",
		r.Cost.Total, r.Cost.Infrastructure, r.Cost.NodeHours, r.Cost.Compensation, r.Cost.Penalty)
	pinned := ""
	if r.FinalConfiguration.PinnedClass != "" {
		pinned = " pinned=" + r.FinalConfiguration.PinnedClass
	}
	fmt.Fprintf(&b, "  configuration: nodes=%d (min=%d max=%d) rf=%d cl=%s/%s%s, %d reconfigurations\n",
		r.FinalConfiguration.ClusterSize, r.MinClusterSize, r.MaxClusterSize,
		r.FinalConfiguration.ReplicationFactor, r.FinalConfiguration.ReadConsistency,
		r.FinalConfiguration.WriteConsistency, pinned, r.Reconfigurations)
	for _, fw := range r.Faults {
		fmt.Fprintf(&b, "  fault: %s\n", fw)
	}
	for _, tr := range r.Tenants {
		fmt.Fprintf(&b, "  tenant %s\n", tr)
	}
	if r.Spans != nil {
		fmt.Fprintf(&b, "  spans: %d sampled of %d ops (%d evicted)\n",
			r.Spans.Sampled, r.Spans.Seen, r.Spans.Dropped)
	}
	if len(r.Audit) > 0 {
		fmt.Fprintf(&b, "  audit: %d control intervals recorded\n", len(r.Audit))
	}
	if r.Profile != nil {
		fmt.Fprintf(&b, "  profile: %s\n", r.Profile)
	}
	return b.String()
}

// PlotSeries renders one of the report's time series as a fixed-width ASCII
// plot, bucketed to roughly 30 rows. It returns an empty string for an
// unknown series name.
func (r *Report) PlotSeries(name string, width int) string {
	pts, ok := r.Series[name]
	if !ok || len(pts) == 0 {
		return ""
	}
	if width <= 0 {
		width = 50
	}
	bucket := r.Duration / 30
	if bucket <= 0 {
		bucket = time.Second
	}
	// Re-bucket the points.
	type agg struct {
		sum float64
		n   int
	}
	buckets := make(map[int]*agg)
	for _, p := range pts {
		idx := int(p.At / bucket)
		a, ok := buckets[idx]
		if !ok {
			a = &agg{}
			buckets[idx] = a
		}
		a.sum += p.Value
		a.n++
	}
	idxs := make([]int, 0, len(buckets))
	max := 0.0
	for i, a := range buckets {
		idxs = append(idxs, i)
		if v := a.sum / float64(a.n); v > max {
			max = v
		}
	}
	sort.Ints(idxs)
	var b strings.Builder
	fmt.Fprintf(&b, "%s (max=%.4g)\n", name, max)
	for _, i := range idxs {
		v := buckets[i].sum / float64(buckets[i].n)
		bars := 0
		if max > 0 {
			bars = int(v / max * float64(width))
		}
		fmt.Fprintf(&b, "%8s |%s %.4g\n", (time.Duration(i) * bucket).Truncate(time.Second), strings.Repeat("#", bars), v)
	}
	return b.String()
}

func ms(seconds float64) string {
	return fmt.Sprintf("%.1fms", seconds*1000)
}

func modeOrNone(m ControllerMode) ControllerMode {
	if m == "" {
		return ControllerNone
	}
	return m
}

func patternOrConstant(p LoadPattern) LoadPattern {
	if p == "" {
		return LoadConstant
	}
	return p
}
