// Package autonosql is the public API of the autonosql library: a simulated
// eventually-consistent NoSQL cluster together with the SLA-driven autonomous
// monitoring and auto-scaling system described in "Advanced monitoring and
// smart auto-scaling of NoSQL systems" (Schoonjans, Lagaisse, Joosen —
// Middleware Doctoral Symposium 2015).
//
// The package wraps the lower-level building blocks (the discrete-event
// simulation engine, the cluster and network models, the replicated store,
// the workload generators, the inconsistency-window monitor, the SLA model
// and the controllers) behind a single declarative entry point:
//
//	spec := autonosql.DefaultScenarioSpec()
//	spec.Duration = 10 * time.Minute
//	spec.Workload.Pattern = autonosql.LoadDiurnal
//	spec.Controller.Mode = autonosql.ControllerSmart
//
//	scenario, err := autonosql.NewScenario(spec)
//	if err != nil { ... }
//	report, err := scenario.Run()
//	if err != nil { ... }
//	fmt.Println(report)
//
// A Scenario assembles the full simulated system, runs it for the requested
// virtual duration and produces a Report: ground-truth inconsistency-window
// percentiles, client latency, SLA violation minutes, node-hours, cost and
// the time series needed to plot how the system behaved.
//
// Mid-run interventions (changing consistency levels, adding nodes, injecting
// network congestion, partitions or node failures) are scheduled with
// Scenario.At, which hands the callback a Handle bound to the running system.
// The experiment harness uses the same mechanism to reproduce the
// reconfiguration-overhead experiments.
//
// Declarative fault injection goes through ScenarioSpec.Faults: a FaultPlan
// schedules node crashes and restarts, slow nodes, network partitions with
// heals and latency storms at fixed virtual times, with victims drawn
// deterministically from the scenario seed. The suite runner sweeps fault
// profiles as a grid axis (Grid.Faults), and the Report annotates every
// fault window with the inconsistency-window behaviour observed while it
// was active.
package autonosql
