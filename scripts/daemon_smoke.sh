#!/usr/bin/env bash
# Daemon smoke: boot nosqlsimd, drive one scenario end to end over the HTTP
# API — submit, stream at least one metrics window, fetch the aggregated
# report and the run-metadata envelope — then shut the daemon down cleanly.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${1:-127.0.0.1:7071}"
BASE="http://$ADDR"
BIN="$(mktemp -d)/nosqlsimd"

go build -o "$BIN" ./cmd/nosqlsimd
"$BIN" -addr "$ADDR" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

for _ in $(seq 1 50); do
  curl -sf "$BASE/healthz" >/dev/null && break
  sleep 0.1
done
curl -sf "$BASE/healthz" >/dev/null || { echo "daemon never became healthy"; exit 1; }

# 20 simulated seconds, sampled every 5 — four metric windows.
JOB=$(curl -sf "$BASE/api/jobs" \
  -d '{"autostart":true,"name":"smoke","scenario":{"Duration":20000000000,"SampleInterval":5000000000}}' \
  | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$JOB" ] || { echo "submission returned no job id"; exit 1; }

# The stream replays retained windows and follows the run to completion.
WINDOWS=$(curl -sfN "$BASE/api/jobs/$JOB/stream" | wc -l)
[ "$WINDOWS" -ge 1 ] || { echo "stream delivered no metric windows"; exit 1; }

STATE=""
for _ in $(seq 1 100); do
  STATE=$(curl -sf "$BASE/api/jobs/$JOB" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p')
  [ "$STATE" = "done" ] && break
  sleep 0.1
done
[ "$STATE" = "done" ] || { echo "job ended in state '$STATE', want done"; exit 1; }

curl -sf "$BASE/api/jobs/$JOB/report" | grep -q '"Spec"' \
  || { echo "report fetch failed"; exit 1; }
curl -sf "$BASE/api/jobs/$JOB/meta" | grep -q '"scenarios_per_second"' \
  || { echo "meta envelope fetch failed"; exit 1; }

curl -sf -X POST "$BASE/api/shutdown" >/dev/null
wait "$PID"
trap - EXIT
echo "daemon smoke OK: job $JOB streamed $WINDOWS windows"
