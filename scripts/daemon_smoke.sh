#!/usr/bin/env bash
# Daemon smoke: boot nosqlsimd, drive one scenario end to end over the HTTP
# API — submit, stream at least one metrics window, fetch the aggregated
# report and the run-metadata envelope — then submit an Observe-enabled job,
# stream its op-trace spans, fetch its audit trail, scrape /metrics, and
# shut the daemon down cleanly.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${1:-127.0.0.1:7071}"
BASE="http://$ADDR"
BIN="$(mktemp -d)/nosqlsimd"

go build -o "$BIN" ./cmd/nosqlsimd
"$BIN" -addr "$ADDR" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

for _ in $(seq 1 50); do
  curl -sf "$BASE/healthz" >/dev/null && break
  sleep 0.1
done
curl -sf "$BASE/healthz" >/dev/null || { echo "daemon never became healthy"; exit 1; }

# 20 simulated seconds, sampled every 5 — four metric windows.
JOB=$(curl -sf "$BASE/api/jobs" \
  -d '{"autostart":true,"name":"smoke","scenario":{"Duration":20000000000,"SampleInterval":5000000000}}' \
  | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$JOB" ] || { echo "submission returned no job id"; exit 1; }

# The stream replays retained windows and follows the run to completion.
WINDOWS=$(curl -sfN "$BASE/api/jobs/$JOB/stream" | wc -l)
[ "$WINDOWS" -ge 1 ] || { echo "stream delivered no metric windows"; exit 1; }

STATE=""
for _ in $(seq 1 100); do
  STATE=$(curl -sf "$BASE/api/jobs/$JOB" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p')
  [ "$STATE" = "done" ] && break
  sleep 0.1
done
[ "$STATE" = "done" ] || { echo "job ended in state '$STATE', want done"; exit 1; }

# Buffer responses before grepping: `curl | grep -q` under pipefail is a
# flake — grep exits at the first match, curl dies on the broken pipe.
curl -sf "$BASE/api/jobs/$JOB/report" | grep '"Spec"' >/dev/null \
  || { echo "report fetch failed"; exit 1; }
curl -sf "$BASE/api/jobs/$JOB/meta" | grep '"scenarios_per_second"' >/dev/null \
  || { echo "meta envelope fetch failed"; exit 1; }

# Observability surfaces: a smart-controller job with tracing, audit and
# profiling armed must stream spans, serve its audit trail once done, and
# show up on the Prometheus page with a non-zero span counter.
OBS=$(curl -sf "$BASE/api/jobs" \
  -d '{"autostart":true,"name":"smoke-obs","scenario":{"Duration":20000000000,"SampleInterval":5000000000,"Controller":{"Mode":"smart"},"Observe":{"TraceOps":true,"SampleEvery":200,"Audit":true,"Profile":true}}}' \
  | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$OBS" ] || { echo "observed-job submission returned no job id"; exit 1; }

SPANS=$(curl -sfN "$BASE/api/jobs/$OBS/spans" | wc -l)
[ "$SPANS" -ge 1 ] || { echo "span stream delivered no spans"; exit 1; }

STATE=""
for _ in $(seq 1 100); do
  STATE=$(curl -sf "$BASE/api/jobs/$OBS" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p')
  [ "$STATE" = "done" ] && break
  sleep 0.1
done
[ "$STATE" = "done" ] || { echo "observed job ended in state '$STATE', want done"; exit 1; }

curl -sf "$BASE/api/jobs/$OBS/audit" | grep '"audit"' >/dev/null \
  || { echo "audit trail fetch failed"; exit 1; }

METRICS=$(curl -sf "$BASE/metrics")
echo "$METRICS" | grep -q '^autonosql_jobs{state="done"} 2$' \
  || { echo "/metrics does not count both finished jobs"; echo "$METRICS"; exit 1; }
OBS_SPANS=$(echo "$METRICS" | sed -n "s/^autonosql_job_spans_total{job=\"$OBS\"} \([0-9]*\)$/\1/p")
[ -n "$OBS_SPANS" ] && [ "$OBS_SPANS" -ge 1 ] \
  || { echo "/metrics span counter empty for $OBS"; echo "$METRICS"; exit 1; }

curl -sf -X POST "$BASE/api/shutdown" >/dev/null
wait "$PID"
trap - EXIT
echo "daemon smoke OK: job $JOB streamed $WINDOWS windows; job $OBS streamed $SPANS spans ($OBS_SPANS on /metrics)"
