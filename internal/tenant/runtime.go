package tenant

import (
	"errors"
	"time"

	"autonosql/internal/metrics"
	"autonosql/internal/obs"
	"autonosql/internal/sla"
	"autonosql/internal/store"
)

// Target is the subset of the store/monitor API a tenant drives; it matches
// workload.Target structurally, so a Runtime can be handed straight to a
// workload generator and can itself wrap a monitor's tagged view.
type Target interface {
	Read(key store.Key, cb func(store.Result))
	Write(key store.Key, cb func(store.Result))
}

// Signal is the per-tenant slice of a monitoring snapshot: one tenant's
// observed state over the last sampling interval, expressed against that
// tenant's own SLA class. The tenant-aware controller consumes the worst
// penalty-weighted Signal instead of the aggregate estimate.
type Signal struct {
	// Name identifies the tenant.
	Name string
	// Class is the tenant's SLA class.
	Class Class
	// SLA holds the clause bounds of the tenant's class.
	SLA sla.SLA
	// PenaltyPerMinute is the violation price, used as the weight when
	// ranking tenants by urgency.
	PenaltyPerMinute float64

	// WindowP95 is the tenant's ground-truth p95 inconsistency window over
	// recent writes, in seconds.
	WindowP95 float64
	// ReadLatencyP99 and WriteLatencyP99 are the tenant's client-observed
	// latency percentiles over the interval, in seconds.
	ReadLatencyP99  float64
	WriteLatencyP99 float64
	// ErrorRate is the fraction of the tenant's operations that failed in
	// the interval. Operations shed by admission control count as failures:
	// a throttled tenant pays its own SLA's availability clause for the
	// protection the throttle buys everyone else.
	ErrorRate float64
	// OfferedOpsPerSec is the tenant's observed operation rate over the
	// interval, including shed arrivals.
	OfferedOpsPerSec float64

	// Throttled reports whether admission control is active on the tenant.
	// The analyzer never lets a throttled tenant drive the control loop: its
	// distress is the controller's own doing and already priced in.
	Throttled bool
	// ThrottleRate is the admitted rate in ops/s while throttled.
	ThrottleRate float64
	// ShedOpsPerSec is the rate at which the tenant's arrivals were shed by
	// admission control over the interval.
	ShedOpsPerSec float64
	// QueueDepth is the number of arrivals waiting in the delay-mode
	// admission queue at sampling time (always zero in shed mode).
	QueueDepth int
}

// observation converts the signal into the tenant's SLA observation.
func (s Signal) observation(at, interval time.Duration) sla.Observation {
	return sla.Observation{
		At:              at,
		Interval:        interval,
		WindowP95:       s.WindowP95,
		ReadLatencyP99:  s.ReadLatencyP99,
		WriteLatencyP99: s.WriteLatencyP99,
		ErrorRate:       s.ErrorRate,
	}
}

// Headroom returns the observed/limit ratio of the signal against the
// tenant's own SLA class.
func (s Signal) Headroom() sla.Headroom {
	return s.SLA.Headroom(s.observation(0, time.Second))
}

// InViolation reports whether any clause of the tenant's SLA is currently
// violated by the signal.
func (s Signal) InViolation() bool {
	return !s.SLA.Satisfied(s.observation(0, time.Second))
}

// Urgency is the penalty-weighted badness of the signal: the worst
// observed/limit ratio across the tenant's clauses, scaled by the violation
// price of the tenant's class. The analyzer drives the control loop from the
// tenant with the highest urgency.
func (s Signal) Urgency() float64 {
	w := s.PenaltyPerMinute
	if w <= 0 {
		w = 0.01
	}
	return w * s.Headroom().MaxRatio()
}

// Runtime is one tenant's client-side assembly inside a running scenario. It
// sits between the tenant's workload generator and the (monitor-tagged)
// store target: every operation flows through it, so it can keep the
// tenant's windowed client-observed latencies and interval error counts, and
// fold per-tenant SLA compliance into the tenant's own tracker.
type Runtime struct {
	id    store.TenantID
	name  string
	class ClassSpec

	inner   Target
	tracker *sla.Tracker

	readLat  *metrics.WindowedStat
	writeLat *metrics.WindowedStat

	opsInterval  uint64
	errsInterval uint64
	lastSignal   Signal

	// Admission control (nil clock = never installed). The limiter sits in
	// front of inner: a shed operation is rejected synchronously, counted as
	// a failure in the tenant's own accounting, and never reaches the store.
	limiter Limiter
	clock   func() time.Duration
	onShed  func(write bool)

	shedInterval uint64
	shedTotal    uint64

	// Delay-mode admission (nil after = shed mode). Arrivals that fail
	// admission queue here instead of being rejected; a drain scheduled via
	// after forwards them as tokens refill, folding the queueing delay into
	// each operation's observed latency. Overflow past delayQueueCap falls
	// back to shedding.
	delayMode     bool
	after         func(time.Duration, func())
	queue         []delayedOp
	drainArmed    bool
	delayedTotal  uint64
	maxQueueDepth int

	// tracer, when set, fronts the store's operation tracer: every arrival
	// passes the sampler here (with the tenant's name attached) so
	// admission-control outcomes — shed, delay-queue wait, release — appear
	// in the span tree, and the sampling decision is staged for the store to
	// adopt instead of re-sampling. traceClock supplies the virtual time for
	// runtime-side spans.
	tracer     *obs.Tracer
	traceClock func() time.Duration
}

// delayQueueCap bounds the delay-mode admission queue: a tenant whose burst
// outruns its admitted rate by more than this many operations sheds the
// overflow, so a sustained overload cannot buffer unboundedly.
const delayQueueCap = 4096

// delayedOp is one arrival waiting in the delay-mode admission queue.
type delayedOp struct {
	write bool
	key   store.Key
	cb    func(store.Result)
	// at is the arrival's original virtual time; the queueing delay
	// (forward time minus at) is added to the operation's observed latency.
	at time.Duration
	// trace is the arrival's sampled span tree, nil when unsampled.
	trace *obs.OpTrace
}

// NewRuntime creates the runtime for one tenant. The inner target is where
// operations are forwarded (typically the monitor's tagged view of the
// store).
func NewRuntime(id store.TenantID, name string, class Class, inner Target) (*Runtime, error) {
	if id <= 0 {
		return nil, errors.New("tenant: id must be positive")
	}
	if name == "" {
		return nil, errors.New("tenant: name is required")
	}
	if !class.Valid() {
		return nil, errors.New("tenant: unknown class " + string(class))
	}
	if inner == nil {
		return nil, errors.New("tenant: target is required")
	}
	spec := class.Spec()
	return &Runtime{
		id:       id,
		name:     name,
		class:    spec,
		inner:    inner,
		tracker:  sla.NewTracker(spec.SLA),
		readLat:  metrics.NewWindowedStat(2048),
		writeLat: metrics.NewWindowedStat(2048),
	}, nil
}

// ID returns the tenant's store tag.
func (r *Runtime) ID() store.TenantID { return r.id }

// Name returns the tenant's name.
func (r *Runtime) Name() string { return r.name }

// Class returns the tenant's SLA class agreement.
func (r *Runtime) Class() ClassSpec { return r.class }

// Tracker returns the tenant's SLA compliance tracker.
func (r *Runtime) Tracker() *sla.Tracker { return r.tracker }

// EnableAdmission installs admission-control plumbing on the runtime: clock
// supplies the virtual time token refills run on, and onShed (optional) is
// invoked for every shed operation so the store can count the rejection in
// the tenant's ground truth. The limiter starts disabled — traffic flows
// unchanged until Throttle is called.
func (r *Runtime) EnableAdmission(clock func() time.Duration, onShed func(write bool)) error {
	if clock == nil {
		return errors.New("tenant: admission clock is required")
	}
	r.clock = clock
	r.onShed = onShed
	return nil
}

// EnableDelayMode switches the runtime's admission control from shedding to
// queueing: arrivals that fail admission wait in a bounded queue and are
// forwarded as tokens refill, with the queueing delay folded into their
// observed latency. after schedules a callback on the simulation's event loop
// (typically sim.Engine.After); EnableAdmission must have been called first.
func (r *Runtime) EnableDelayMode(after func(time.Duration, func())) error {
	if r.clock == nil {
		return errors.New("tenant: admission control not enabled for " + r.name)
	}
	if after == nil {
		return errors.New("tenant: delay-mode scheduler is required")
	}
	r.delayMode = true
	r.after = after
	return nil
}

// SetTracer attaches the store's operation tracer to the runtime so sampling
// happens at arrival — before admission control — and the tenant's name rides
// on each sampled trace. clock supplies the virtual time for runtime-side
// spans and is required with a non-nil tracer.
func (r *Runtime) SetTracer(t *obs.Tracer, clock func() time.Duration) error {
	if t != nil && clock == nil {
		return errors.New("tenant: tracer clock is required")
	}
	r.tracer = t
	r.traceClock = clock
	return nil
}

// beginTrace offers one arrival to the sampler. Nil when unsampled or when
// tracing is off.
func (r *Runtime) beginTrace(write bool, key store.Key) *obs.OpTrace {
	if r.tracer == nil {
		return nil
	}
	now := r.traceClock()
	tr := r.tracer.Begin(r.name, write, string(key), now)
	tr.Add(now, "arrival", 0)
	return tr
}

// Throttle activates (or re-rates) the tenant's admission limiter. It fails
// when EnableAdmission was never called.
func (r *Runtime) Throttle(opsPerSec float64) error {
	if r.clock == nil {
		return errors.New("tenant: admission control not enabled for " + r.name)
	}
	if opsPerSec <= 0 {
		return errors.New("tenant: throttle rate must be positive")
	}
	r.limiter.SetRate(opsPerSec, r.clock())
	return nil
}

// Unthrottle removes the tenant's admission limit. In delay mode any queued
// arrivals are released immediately: the limiter that held them back is gone.
func (r *Runtime) Unthrottle() error {
	if r.clock == nil {
		return errors.New("tenant: admission control not enabled for " + r.name)
	}
	r.limiter.Disable(r.clock())
	r.flushQueue()
	return nil
}

// Throttled returns the tenant's current admission rate and whether the
// limiter is active.
func (r *Runtime) Throttled() (float64, bool) {
	return r.limiter.Rate(), r.limiter.Enabled()
}

// ShedOps returns the cumulative number of operations shed by admission
// control.
func (r *Runtime) ShedOps() uint64 { return r.shedTotal }

// DelayedOps returns the cumulative number of operations queued by delay-mode
// admission control (always zero in shed mode).
func (r *Runtime) DelayedOps() uint64 { return r.delayedTotal }

// MaxQueueDepth returns the deepest the delay-mode admission queue got.
func (r *Runtime) MaxQueueDepth() int { return r.maxQueueDepth }

// QueueDepth returns the number of arrivals currently waiting in the
// delay-mode admission queue.
func (r *Runtime) QueueDepth() int { return len(r.queue) }

// ThrottleWindows returns the tenant's throttle timeline, with a still-open
// window closed at end.
func (r *Runtime) ThrottleWindows(end time.Duration) []ThrottleWindow {
	return r.limiter.Windows(end)
}

// ThrottledTime returns how long the tenant has been throttled in total.
func (r *Runtime) ThrottledTime(end time.Duration) time.Duration {
	return r.limiter.ThrottledTime(end)
}

// shed rejects one arrival that failed admission: the tenant's own error
// accounting sees a failure (the SLA availability clause prices the shed),
// the ground-truth hook records the rejection, and the caller gets an
// immediate ErrAdmissionShed result — the operation never reaches the store.
func (r *Runtime) shed(write bool, key store.Key, cb func(store.Result), tr *obs.OpTrace) {
	r.errsInterval++
	r.shedInterval++
	r.shedTotal++
	if tr != nil {
		at := r.traceClock()
		tr.AddNote(at, "shed", 0, "admission")
		r.tracer.Finish(tr, at, ErrAdmissionShed.Error())
	}
	if r.onShed != nil {
		r.onShed(write)
	}
	if cb != nil {
		now := r.clock()
		kind := store.OpRead
		if write {
			kind = store.OpWrite
		}
		cb(store.Result{
			Kind:        kind,
			Key:         key,
			Err:         ErrAdmissionShed,
			IssuedAt:    now,
			CompletedAt: now,
		})
	}
}

// forward sends one admitted operation to the inner target with the tenant's
// outcome accounting wrapped around the caller's callback. queued is the time
// the operation spent in the delay-mode admission queue (zero for directly
// admitted arrivals); it is added to the client-observed latency, because the
// client has been waiting since the original arrival.
func (r *Runtime) forward(write bool, key store.Key, cb func(store.Result), queued time.Duration, tr *obs.OpTrace) {
	handler := func(res store.Result) {
		res.Latency += queued
		if res.Err != nil {
			r.errsInterval++
		} else if write {
			r.writeLat.Observe(res.Latency.Seconds())
		} else {
			r.readLat.Observe(res.Latency.Seconds())
		}
		if cb != nil {
			cb(res)
		}
	}
	// The sampling decision made at arrival is staged — trace or nil — so
	// the store adopts it instead of running its own sampler; the inner call
	// chain is synchronous down to the store, which consumes the stage.
	if r.tracer != nil {
		if tr != nil {
			if queued > 0 {
				tr.Add(r.traceClock(), "delay-release", 0)
			} else {
				tr.Add(r.traceClock(), "admit", 0)
			}
		}
		r.tracer.Stage(tr)
	}
	if write {
		r.inner.Write(key, handler)
	} else {
		r.inner.Read(key, handler)
	}
}

// enqueue places one arrival that failed admission into the delay queue and
// arms the drain. It reports false when the queue is full, in which case the
// caller sheds the arrival instead.
func (r *Runtime) enqueue(write bool, key store.Key, cb func(store.Result), tr *obs.OpTrace) bool {
	if len(r.queue) >= delayQueueCap {
		return false
	}
	if tr != nil {
		tr.Add(r.clock(), "delay-enqueue", 0)
	}
	r.queue = append(r.queue, delayedOp{write: write, key: key, cb: cb, at: r.clock(), trace: tr})
	r.delayedTotal++
	if len(r.queue) > r.maxQueueDepth {
		r.maxQueueDepth = len(r.queue)
	}
	r.armDrain()
	return true
}

// armDrain schedules the next queue drain for when the limiter will next hold
// a full token. At most one drain is in flight at a time.
func (r *Runtime) armDrain() {
	if r.drainArmed || len(r.queue) == 0 {
		return
	}
	wait := r.limiter.NextTokenWait(r.clock())
	if wait < time.Nanosecond {
		wait = time.Nanosecond
	}
	r.drainArmed = true
	r.after(wait, r.drain)
}

// drain forwards queued arrivals for as long as the limiter admits them, then
// re-arms itself for the next token if any are still waiting.
func (r *Runtime) drain() {
	r.drainArmed = false
	now := r.clock()
	for len(r.queue) > 0 {
		if r.limiter.enabled && !r.limiter.Admit(now) {
			r.armDrain()
			return
		}
		op := r.queue[0]
		r.queue[0] = delayedOp{}
		r.queue = r.queue[1:]
		r.forward(op.write, op.key, op.cb, now-op.at, op.trace)
	}
	r.queue = nil
}

// flushQueue forwards everything still waiting in the delay queue, charging
// each operation the queueing delay it accrued so far.
func (r *Runtime) flushQueue() {
	if len(r.queue) == 0 {
		return
	}
	now := r.clock()
	queue := r.queue
	r.queue = nil
	for i, op := range queue {
		queue[i] = delayedOp{}
		r.forward(op.write, op.key, op.cb, now-op.at, op.trace)
	}
}

// Read implements Target: the operation is forwarded with the tenant's
// outcome accounting wrapped around the caller's callback. Arrivals that
// fail admission control are queued (delay mode) or shed before they reach
// the store.
func (r *Runtime) Read(key store.Key, cb func(store.Result)) {
	r.opsInterval++
	tr := r.beginTrace(false, key)
	if r.limiter.enabled && !r.limiter.Admit(r.clock()) {
		if r.delayMode && r.enqueue(false, key, cb, tr) {
			return
		}
		r.shed(false, key, cb, tr)
		return
	}
	r.forward(false, key, cb, 0, tr)
}

// Write implements Target, mirroring Read.
func (r *Runtime) Write(key store.Key, cb func(store.Result)) {
	r.opsInterval++
	tr := r.beginTrace(true, key)
	if r.limiter.enabled && !r.limiter.Admit(r.clock()) {
		if r.delayMode && r.enqueue(true, key, cb, tr) {
			return
		}
		r.shed(true, key, cb, tr)
		return
	}
	r.forward(true, key, cb, 0, tr)
}

// Observe folds one sampling interval into the tenant's SLA tracker and
// returns the tenant's Signal for the interval. windowP95 is the tenant's
// ground-truth p95 inconsistency window in seconds (supplied by the store's
// per-tenant tracking); the latencies and error rate come from the runtime's
// own client-side accounting. The interval accumulators reset on return.
func (r *Runtime) Observe(at, interval time.Duration, windowP95 float64) Signal {
	sig := Signal{
		Name:             r.name,
		Class:            r.class.Class,
		SLA:              r.class.SLA,
		PenaltyPerMinute: r.class.PenaltyPerMinute,
		WindowP95:        windowP95,
		ReadLatencyP99:   r.readLat.Quantile(0.99),
		WriteLatencyP99:  r.writeLat.Quantile(0.99),
	}
	if r.opsInterval > 0 {
		sig.ErrorRate = float64(r.errsInterval) / float64(r.opsInterval)
	}
	if interval > 0 {
		sig.OfferedOpsPerSec = float64(r.opsInterval) / interval.Seconds()
		sig.ShedOpsPerSec = float64(r.shedInterval) / interval.Seconds()
	}
	sig.ThrottleRate, sig.Throttled = r.Throttled()
	sig.QueueDepth = len(r.queue)
	r.opsInterval = 0
	r.errsInterval = 0
	r.shedInterval = 0
	r.lastSignal = sig
	r.tracker.Observe(sig.observation(at, interval))
	return sig
}

// LastSignal returns the most recent signal produced by Observe.
func (r *Runtime) LastSignal() Signal { return r.lastSignal }

// Summary is the tenant's final compliance-and-cost accounting for a run.
type Summary struct {
	Name  string
	Class Class
	// Compliance is the tenant's SLA tracker summary.
	Compliance sla.Summary
	// Penalty prices the tenant's violation minutes at the class rate.
	Penalty float64
}

// Summarize prices the tenant's accumulated compliance record.
func (r *Runtime) Summarize() Summary {
	sum := r.tracker.Summary()
	return Summary{
		Name:       r.name,
		Class:      r.class.Class,
		Compliance: sum,
		Penalty:    sum.TotalViolationTime.Minutes() * r.class.PenaltyPerMinute,
	}
}
