package tenant

import (
	"errors"
	"math"
	"time"
)

// ErrAdmissionShed is the error delivered to a client whose operation was
// shed by admission control before it reached the store.
var ErrAdmissionShed = errors.New("tenant: operation shed by admission control")

// ThrottleWindow is one contiguous interval during which a tenant was
// throttled at a given admission rate. A zero End marks a window still open
// when it was read.
type ThrottleWindow struct {
	Start time.Duration
	End   time.Duration
	// Rate is the admitted rate in ops/s during the window.
	Rate float64
}

// Limiter is a deterministic token-bucket admission controller for one
// tenant. All time is the simulation's virtual clock, passed in by the
// caller, so refill is exact and runs are bit-for-bit reproducible. A
// disabled limiter admits everything at zero cost beyond one branch.
//
// The bucket holds up to one second of tokens at the configured rate, so a
// throttled tenant can still burst briefly before shedding starts — the
// behaviour of production admission controllers, and what keeps the shed
// pattern smooth instead of saw-toothed.
type Limiter struct {
	enabled bool
	rate    float64
	burst   float64
	tokens  float64
	last    time.Duration

	windows []ThrottleWindow
}

// Enabled reports whether admission control is active.
func (l *Limiter) Enabled() bool { return l.enabled }

// Rate returns the admitted rate in ops/s (zero when disabled).
func (l *Limiter) Rate() float64 {
	if !l.enabled {
		return 0
	}
	return l.rate
}

// SetRate enables admission control at the given rate (ops/s), or tightens /
// loosens an already active limiter. Each rate change closes the open
// throttle window and opens a new one, so the report can show exactly when
// the tenant ran at which admission rate. Rates <= 0 are ignored.
func (l *Limiter) SetRate(opsPerSec float64, now time.Duration) {
	if opsPerSec <= 0 {
		return
	}
	if l.enabled && l.rate == opsPerSec {
		return
	}
	if l.enabled {
		l.closeWindow(now)
		// A tightening keeps the accumulated tokens (capped below); the
		// tenant does not get a fresh burst for being throttled harder.
	} else {
		l.tokens = opsPerSec // a full second of burst on activation
		l.last = now
	}
	l.enabled = true
	l.rate = opsPerSec
	l.burst = opsPerSec
	if l.burst < 1 {
		l.burst = 1
	}
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
	l.windows = append(l.windows, ThrottleWindow{Start: now, Rate: opsPerSec})
}

// Disable removes admission control, closing the open throttle window.
func (l *Limiter) Disable(now time.Duration) {
	if !l.enabled {
		return
	}
	l.enabled = false
	l.rate = 0
	l.closeWindow(now)
}

func (l *Limiter) closeWindow(now time.Duration) {
	n := len(l.windows)
	if n == 0 || l.windows[n-1].End != 0 {
		return
	}
	if now <= l.windows[n-1].Start {
		// A window closed at the instant it opened never throttled anything;
		// drop it rather than record a zero-length window whose End of 0
		// would read as "still open" (the open-window sentinel) when the
		// throttle was engaged at virtual time zero.
		l.windows = l.windows[:n-1]
		return
	}
	l.windows[n-1].End = now
}

// Admit reports whether one arrival at virtual time now passes admission
// control, consuming a token when it does. A disabled limiter always admits.
func (l *Limiter) Admit(now time.Duration) bool {
	if !l.enabled {
		return true
	}
	if now > l.last {
		l.tokens += (now - l.last).Seconds() * l.rate
		if l.tokens > l.burst {
			l.tokens = l.burst
		}
		l.last = now
	}
	if l.tokens >= 1 {
		l.tokens--
		return true
	}
	return false
}

// NextTokenWait returns how long after now the bucket will next hold a full
// token, without consuming anything. It returns 0 when a token is already
// available (or the limiter is disabled). Delay-mode admission uses this to
// schedule its queue drain instead of polling.
func (l *Limiter) NextTokenWait(now time.Duration) time.Duration {
	if !l.enabled {
		return 0
	}
	tokens := l.tokens
	if now > l.last {
		tokens += (now - l.last).Seconds() * l.rate
		if tokens > l.burst {
			tokens = l.burst
		}
	}
	if tokens >= 1 {
		return 0
	}
	// rate is > 0 whenever the limiter is enabled. Round up so the drain
	// never fires a hair before the token exists.
	wait := time.Duration(math.Ceil((1 - tokens) / l.rate * float64(time.Second)))
	if wait < time.Nanosecond {
		wait = time.Nanosecond
	}
	return wait
}

// Windows returns the throttle windows recorded so far, with a still-open
// window closed at end for reporting.
func (l *Limiter) Windows(end time.Duration) []ThrottleWindow {
	out := make([]ThrottleWindow, len(l.windows))
	copy(out, l.windows)
	if n := len(out); n > 0 && out[n-1].End == 0 {
		out[n-1].End = end
	}
	return out
}

// ThrottledTime returns the total time the limiter has been enabled, with a
// still-open window counted up to end.
func (l *Limiter) ThrottledTime(end time.Duration) time.Duration {
	var total time.Duration
	for _, w := range l.Windows(end) {
		if w.End > w.Start {
			total += w.End - w.Start
		}
	}
	return total
}
