// Package tenant makes multi-tenant workloads first-class citizens of the
// simulation. A scenario can host any number of named tenants, each with its
// own workload, its own SLA class (gold/silver/bronze presets mapping to
// inconsistency-window and latency bounds plus penalty rates) and its own
// ground-truth metrics stream, instead of modelling co-tenants only as
// anonymous background noise.
//
// The package provides:
//
//   - Class / ClassSpec: the named SLA classes and their bounds and prices.
//   - Runtime: the per-tenant client-side assembly — it sits between a
//     workload generator and the (tagged) store target, records the tenant's
//     client-observed latencies and errors over each sampling interval, and
//     folds per-tenant SLA compliance into its own tracker.
//   - Signal: the per-tenant slice of a monitoring snapshot the tenant-aware
//     controller consumes. The analyzer acts on the worst penalty-weighted
//     tenant signal rather than the aggregate, and scale-in is vetoed while
//     a gold tenant is in violation.
//   - Limiter: a deterministic token-bucket admission controller. When the
//     planner throttles a tenant, the Runtime sheds arrivals beyond the
//     admitted rate before they reach the store; sheds are rejected with
//     ErrAdmissionShed, counted against the tenant's own SLA and recorded
//     as throttle windows for the report.
//
// Bermbach & Tai's consistency benchmarking and the noisy-neighbour
// observations the source paper builds on both frame differentiated
// per-client service as the realistic operating regime; this package is the
// repo's model of that regime.
package tenant
