package tenant

import (
	"fmt"
	"strings"
	"time"

	"autonosql/internal/sla"
)

// Class is a named per-tenant service class. Classes order by strictness:
// gold buys the tightest bounds and the highest violation penalties, bronze
// tolerates the most staleness for the smallest bill.
type Class string

// Supported classes.
const (
	// Gold is the premium class: tight window and latency bounds, expensive
	// violations. While any gold tenant is in violation the tenant-aware
	// controller refuses to scale the cluster in.
	Gold Class = "gold"
	// Silver is the standard class.
	Silver Class = "silver"
	// Bronze is the best-effort class: loose bounds, cheap violations.
	Bronze Class = "bronze"
)

// Classes lists every class from strictest to loosest.
func Classes() []Class { return []Class{Gold, Silver, Bronze} }

// ParseClass parses a class name (case-insensitive).
func ParseClass(s string) (Class, error) {
	switch Class(strings.ToLower(strings.TrimSpace(s))) {
	case Gold:
		return Gold, nil
	case Silver:
		return Silver, nil
	case Bronze:
		return Bronze, nil
	default:
		return "", fmt.Errorf("tenant: unknown SLA class %q (want gold, silver or bronze)", s)
	}
}

// Valid reports whether c is a known class.
func (c Class) Valid() bool {
	_, err := ParseClass(string(c))
	return err == nil
}

// Rank orders classes by strictness (gold highest). Unknown classes rank 0.
func (c Class) Rank() int {
	switch c {
	case Gold:
		return 3
	case Silver:
		return 2
	case Bronze:
		return 1
	default:
		return 0
	}
}

// ClassSpec is the concrete agreement a class maps to: the SLA clauses the
// tenant is promised and the prices attached to breaking them.
type ClassSpec struct {
	Class Class
	// SLA holds the per-tenant clause bounds.
	SLA sla.SLA
	// PenaltyPerMinute is the contractual penalty per minute during which any
	// clause of this tenant's SLA is violated. It doubles as the weight the
	// tenant-aware analyzer uses when picking the worst tenant signal.
	PenaltyPerMinute float64
	// StaleReadCompensation prices one stale read served to this tenant.
	StaleReadCompensation float64
}

// Spec returns the preset agreement for the class. Unknown classes fall back
// to the bronze preset so a zero-value class never divides by zero.
func (c Class) Spec() ClassSpec {
	switch c {
	case Gold:
		return ClassSpec{
			Class: Gold,
			SLA: sla.SLA{
				MaxWindowP95:       150 * time.Millisecond,
				MaxReadLatencyP99:  20 * time.Millisecond,
				MaxWriteLatencyP99: 25 * time.Millisecond,
				MaxErrorRate:       0.001,
			},
			PenaltyPerMinute:      4.00,
			StaleReadCompensation: 0.05,
		}
	case Silver:
		return ClassSpec{
			Class: Silver,
			SLA: sla.SLA{
				MaxWindowP95:       400 * time.Millisecond,
				MaxReadLatencyP99:  35 * time.Millisecond,
				MaxWriteLatencyP99: 40 * time.Millisecond,
				MaxErrorRate:       0.005,
			},
			PenaltyPerMinute:      1.00,
			StaleReadCompensation: 0.02,
		}
	default:
		return ClassSpec{
			Class: Bronze,
			SLA: sla.SLA{
				MaxWindowP95:       1500 * time.Millisecond,
				MaxReadLatencyP99:  75 * time.Millisecond,
				MaxWriteLatencyP99: 90 * time.Millisecond,
				MaxErrorRate:       0.02,
			},
			PenaltyPerMinute:      0.20,
			StaleReadCompensation: 0.005,
		}
	}
}
