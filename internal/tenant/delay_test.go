package tenant

import (
	"testing"
	"time"

	"autonosql/internal/sim"
	"autonosql/internal/store"
)

// delayRuntime assembles a runtime in delay mode on a fresh engine, with the
// drain scheduled on the engine's event loop.
func delayRuntime(t *testing.T, engine *sim.Engine, target Target, onShed func(write bool)) *Runtime {
	t.Helper()
	rt, err := NewRuntime(1, "bronze", Bronze, target)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	if err := rt.EnableAdmission(engine.Now, onShed); err != nil {
		t.Fatalf("EnableAdmission: %v", err)
	}
	if err := rt.EnableDelayMode(func(d time.Duration, fn func()) {
		engine.After(d, func(time.Duration) { fn() })
	}); err != nil {
		t.Fatalf("EnableDelayMode: %v", err)
	}
	return rt
}

// TestDelayModeQueuesInsteadOfShedding is the delay-vs-shed ground truth at
// the runtime level: under an admission rate of 1 op/s, a burst of 4 arrivals
// at t=0 admits one immediately and queues the rest, draining exactly one per
// second with the queueing delay charged as latency — where shed mode would
// have rejected all three.
func TestDelayModeQueuesInsteadOfShedding(t *testing.T) {
	engine := sim.NewEngine()
	target := &fakeTarget{}
	sheds := 0
	rt := delayRuntime(t, engine, target, func(bool) { sheds++ })

	if err := rt.Throttle(1); err != nil {
		t.Fatalf("Throttle: %v", err)
	}
	var latencies []time.Duration
	var errs []error
	engine.After(0, func(time.Duration) {
		for i := 0; i < 4; i++ {
			rt.Read(store.Key("k"), func(res store.Result) {
				latencies = append(latencies, res.Latency)
				errs = append(errs, res.Err)
			})
		}
	})
	if rtDepth := rt.QueueDepth(); rtDepth != 0 {
		t.Fatalf("queue depth before run = %d, want 0", rtDepth)
	}
	if err := engine.Run(10 * time.Second); err != nil {
		t.Fatalf("engine.Run: %v", err)
	}

	if target.reads != 4 {
		t.Errorf("target saw %d reads, want 4 (nothing dropped)", target.reads)
	}
	if sheds != 0 || rt.ShedOps() != 0 {
		t.Errorf("delay mode shed %d/%d ops, want 0", sheds, rt.ShedOps())
	}
	if rt.DelayedOps() != 3 {
		t.Errorf("DelayedOps = %d, want 3", rt.DelayedOps())
	}
	if rt.MaxQueueDepth() != 3 {
		t.Errorf("MaxQueueDepth = %d, want 3", rt.MaxQueueDepth())
	}
	if rt.QueueDepth() != 0 {
		t.Errorf("QueueDepth after drain = %d, want 0", rt.QueueDepth())
	}
	// The token bucket refills at exactly 1 token/s from t=0, so the drain
	// forwards one queued arrival at t=1s, 2s, 3s — each charged its exact
	// wait.
	want := []time.Duration{0, time.Second, 2 * time.Second, 3 * time.Second}
	if len(latencies) != len(want) {
		t.Fatalf("got %d results, want %d", len(latencies), len(want))
	}
	for i := range want {
		if errs[i] != nil {
			t.Errorf("op %d failed: %v (delay mode must not produce errors)", i, errs[i])
		}
		if latencies[i] != want[i] {
			t.Errorf("op %d latency = %v, want %v", i, latencies[i], want[i])
		}
	}
}

// TestDelayModeShedGroundTruth pins that shed mode and delay mode agree on
// the ground truth of the same burst: the shed-mode runtime rejects exactly
// the arrivals the delay-mode runtime queues.
func TestDelayModeShedGroundTruth(t *testing.T) {
	burst := 10

	// Shed mode.
	shedEngine := sim.NewEngine()
	shedTarget := &fakeTarget{}
	shedRT, err := NewRuntime(1, "bronze", Bronze, shedTarget)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	if err := shedRT.EnableAdmission(shedEngine.Now, nil); err != nil {
		t.Fatalf("EnableAdmission: %v", err)
	}
	if err := shedRT.Throttle(1); err != nil {
		t.Fatalf("Throttle: %v", err)
	}
	shedEngine.After(0, func(time.Duration) {
		for i := 0; i < burst; i++ {
			shedRT.Write(store.Key("k"), nil)
		}
	})
	if err := shedEngine.Run(time.Minute); err != nil {
		t.Fatalf("engine.Run: %v", err)
	}

	// Delay mode, same burst.
	delayEngine := sim.NewEngine()
	delayTarget := &fakeTarget{}
	delayRT := delayRuntime(t, delayEngine, delayTarget, nil)
	if err := delayRT.Throttle(1); err != nil {
		t.Fatalf("Throttle: %v", err)
	}
	delayEngine.After(0, func(time.Duration) {
		for i := 0; i < burst; i++ {
			delayRT.Write(store.Key("k"), nil)
		}
	})
	if err := delayEngine.Run(time.Minute); err != nil {
		t.Fatalf("engine.Run: %v", err)
	}

	if shedRT.ShedOps() != delayRT.DelayedOps() {
		t.Errorf("shed mode rejected %d ops, delay mode queued %d: modes disagree on the excess",
			shedRT.ShedOps(), delayRT.DelayedOps())
	}
	if want := shedTarget.writes + int(shedRT.ShedOps()); delayTarget.writes != want {
		t.Errorf("delay mode forwarded %d writes, want %d (shed-mode admits + sheds)",
			delayTarget.writes, want)
	}
	if delayRT.ShedOps() != 0 {
		t.Errorf("delay mode shed %d ops with room in the queue", delayRT.ShedOps())
	}
}

// TestDelayModeOverflowSheds pins the queue bound: arrivals past
// delayQueueCap fall back to shedding.
func TestDelayModeOverflowSheds(t *testing.T) {
	engine := sim.NewEngine()
	target := &fakeTarget{}
	sheds := 0
	rt := delayRuntime(t, engine, target, func(bool) { sheds++ })
	if err := rt.Throttle(1); err != nil {
		t.Fatalf("Throttle: %v", err)
	}
	extra := 3
	engine.After(0, func(time.Duration) {
		// One admitted by the activation burst token, delayQueueCap queued,
		// the rest shed.
		for i := 0; i < 1+delayQueueCap+extra; i++ {
			rt.Read(store.Key("k"), nil)
		}
	})
	// Run just past the burst instant; draining the full queue would take
	// delayQueueCap seconds and is not what is under test.
	if err := engine.Run(time.Millisecond); err != nil {
		t.Fatalf("engine.Run: %v", err)
	}
	if rt.DelayedOps() != delayQueueCap {
		t.Errorf("DelayedOps = %d, want %d", rt.DelayedOps(), delayQueueCap)
	}
	if sheds != extra || rt.ShedOps() != uint64(extra) {
		t.Errorf("shed %d/%d ops past the cap, want %d", sheds, rt.ShedOps(), extra)
	}
	if rt.MaxQueueDepth() != delayQueueCap {
		t.Errorf("MaxQueueDepth = %d, want %d", rt.MaxQueueDepth(), delayQueueCap)
	}
}

// TestDelayModeUnthrottleFlushes pins the release path: removing the limit
// forwards everything still queued, charging each op the wait it accrued.
func TestDelayModeUnthrottleFlushes(t *testing.T) {
	engine := sim.NewEngine()
	target := &fakeTarget{}
	rt := delayRuntime(t, engine, target, nil)
	if err := rt.Throttle(1); err != nil {
		t.Fatalf("Throttle: %v", err)
	}
	var latencies []time.Duration
	engine.After(0, func(time.Duration) {
		for i := 0; i < 3; i++ {
			rt.Read(store.Key("k"), func(res store.Result) {
				latencies = append(latencies, res.Latency)
			})
		}
	})
	engine.After(500*time.Millisecond, func(time.Duration) {
		if err := rt.Unthrottle(); err != nil {
			t.Errorf("Unthrottle: %v", err)
		}
	})
	if err := engine.Run(time.Second); err != nil {
		t.Fatalf("engine.Run: %v", err)
	}
	if target.reads != 3 {
		t.Errorf("target saw %d reads, want 3", target.reads)
	}
	if rt.QueueDepth() != 0 {
		t.Errorf("QueueDepth after unthrottle = %d, want 0", rt.QueueDepth())
	}
	// op 0 admitted at t=0; op 1 would have drained at the t=1s token but
	// the t=0.5s release flushes it (and op 2) first.
	want := []time.Duration{0, 500 * time.Millisecond, 500 * time.Millisecond}
	if len(latencies) != len(want) {
		t.Fatalf("got %d results, want %d", len(latencies), len(want))
	}
	for i := range want {
		if latencies[i] != want[i] {
			t.Errorf("op %d latency = %v, want %v", i, latencies[i], want[i])
		}
	}
}

// TestDelayModeRequiresAdmission pins the wiring order: delay mode without
// admission plumbing is an error, as is a nil scheduler.
func TestDelayModeRequiresAdmission(t *testing.T) {
	rt, err := NewRuntime(1, "x", Gold, &fakeTarget{})
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	if err := rt.EnableDelayMode(func(time.Duration, func()) {}); err == nil {
		t.Error("EnableDelayMode accepted a runtime without admission control")
	}
	engine := sim.NewEngine()
	if err := rt.EnableAdmission(engine.Now, nil); err != nil {
		t.Fatalf("EnableAdmission: %v", err)
	}
	if err := rt.EnableDelayMode(nil); err == nil {
		t.Error("EnableDelayMode accepted a nil scheduler")
	}
}

// TestNextTokenWait pins the drain scheduling arithmetic.
func TestNextTokenWait(t *testing.T) {
	var l Limiter
	if w := l.NextTokenWait(0); w != 0 {
		t.Errorf("disabled limiter wait = %v, want 0", w)
	}
	l.SetRate(2, 0) // burst of 2 tokens at activation
	if w := l.NextTokenWait(0); w != 0 {
		t.Errorf("full bucket wait = %v, want 0", w)
	}
	if !l.Admit(0) || !l.Admit(0) {
		t.Fatal("burst tokens not admitted")
	}
	// Empty bucket at rate 2/s: next token in 500ms.
	if w := l.NextTokenWait(0); w != 500*time.Millisecond {
		t.Errorf("empty bucket wait = %v, want 500ms", w)
	}
	// Waiting must not consume: asking twice gives the same answer.
	if w := l.NextTokenWait(0); w != 500*time.Millisecond {
		t.Errorf("second wait = %v, want 500ms (NextTokenWait must not consume)", w)
	}
	// Partial refill: at t=250ms half a token exists, 250ms to go.
	if w := l.NextTokenWait(250 * time.Millisecond); w != 250*time.Millisecond {
		t.Errorf("partial refill wait = %v, want 250ms", w)
	}
}
