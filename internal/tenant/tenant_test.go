package tenant

import (
	"errors"
	"testing"
	"time"

	"autonosql/internal/store"
)

func TestParseClass(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Class
	}{
		{"gold", Gold}, {"GOLD", Gold}, {" Silver ", Silver}, {"bronze", Bronze},
	} {
		got, err := ParseClass(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseClass(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"", "platinum", "g0ld"} {
		if _, err := ParseClass(bad); err == nil {
			t.Errorf("ParseClass(%q) accepted", bad)
		}
	}
}

func TestClassOrdering(t *testing.T) {
	if !(Gold.Rank() > Silver.Rank() && Silver.Rank() > Bronze.Rank()) {
		t.Errorf("class ranks not ordered: gold=%d silver=%d bronze=%d",
			Gold.Rank(), Silver.Rank(), Bronze.Rank())
	}
	var prevWindow time.Duration
	var prevPenalty = 1e18
	for _, c := range Classes() {
		spec := c.Spec()
		if err := spec.SLA.Validate(); err != nil {
			t.Errorf("class %s SLA invalid: %v", c, err)
		}
		if spec.SLA.MaxWindowP95 <= prevWindow {
			t.Errorf("class %s window bound %v not looser than previous %v", c, spec.SLA.MaxWindowP95, prevWindow)
		}
		if spec.PenaltyPerMinute >= prevPenalty {
			t.Errorf("class %s penalty %v not cheaper than previous %v", c, spec.PenaltyPerMinute, prevPenalty)
		}
		prevWindow = spec.SLA.MaxWindowP95
		prevPenalty = spec.PenaltyPerMinute
	}
}

// fakeTarget completes every operation synchronously with a fixed latency,
// failing when told to.
type fakeTarget struct {
	latency time.Duration
	fail    error
	reads   int
	writes  int
}

func (f *fakeTarget) Read(key store.Key, cb func(store.Result)) {
	f.reads++
	cb(store.Result{Kind: store.OpRead, Key: key, Err: f.fail, Latency: f.latency})
}

func (f *fakeTarget) Write(key store.Key, cb func(store.Result)) {
	f.writes++
	cb(store.Result{Kind: store.OpWrite, Key: key, Err: f.fail, Latency: f.latency})
}

func TestRuntimeObserveAndSummarize(t *testing.T) {
	target := &fakeTarget{latency: 5 * time.Millisecond}
	rt, err := NewRuntime(1, "gold", Gold, target)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	for i := 0; i < 50; i++ {
		rt.Read(store.Key("k"), nil)
		rt.Write(store.Key("k"), nil)
	}
	interval := 10 * time.Second

	// A compliant interval: window well inside the gold bound.
	sig := rt.Observe(interval, interval, 0.010)
	if sig.Name != "gold" || sig.Class != Gold {
		t.Errorf("signal identity wrong: %+v", sig)
	}
	if sig.ErrorRate != 0 || sig.InViolation() {
		t.Errorf("compliant interval flagged: %+v", sig)
	}
	if want := float64(100) / interval.Seconds(); sig.OfferedOpsPerSec != want {
		t.Errorf("offered rate = %v, want %v", sig.OfferedOpsPerSec, want)
	}

	// A violating interval: window far past the gold 150 ms bound.
	target.fail = errors.New("boom")
	for i := 0; i < 10; i++ {
		rt.Read(store.Key("k"), nil)
	}
	sig = rt.Observe(2*interval, interval, 1.0)
	if !sig.InViolation() {
		t.Errorf("violating interval not flagged: %+v", sig)
	}
	if sig.ErrorRate != 1 {
		t.Errorf("error rate = %v, want 1", sig.ErrorRate)
	}
	if sig.Urgency() <= 0 {
		t.Errorf("urgency = %v, want positive", sig.Urgency())
	}

	sum := rt.Summarize()
	if sum.Name != "gold" || sum.Class != Gold {
		t.Errorf("summary identity wrong: %+v", sum)
	}
	wantPenalty := interval.Minutes() * Gold.Spec().PenaltyPerMinute
	if diff := sum.Penalty - wantPenalty; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("penalty = %v, want %v", sum.Penalty, wantPenalty)
	}
}

func TestRuntimeValidation(t *testing.T) {
	target := &fakeTarget{}
	if _, err := NewRuntime(0, "x", Gold, target); err == nil {
		t.Error("zero id accepted")
	}
	if _, err := NewRuntime(1, "", Gold, target); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewRuntime(1, "x", Class("platinum"), target); err == nil {
		t.Error("unknown class accepted")
	}
	if _, err := NewRuntime(1, "x", Gold, nil); err == nil {
		t.Error("nil target accepted")
	}
}

func TestSignalUrgencyWeighting(t *testing.T) {
	// Identical relative badness: the gold tenant must rank above bronze
	// because its violations are pricier.
	gold := Signal{Class: Gold, SLA: Gold.Spec().SLA,
		PenaltyPerMinute: Gold.Spec().PenaltyPerMinute,
		WindowP95:        2 * Gold.Spec().SLA.MaxWindowP95.Seconds()}
	bronze := Signal{Class: Bronze, SLA: Bronze.Spec().SLA,
		PenaltyPerMinute: Bronze.Spec().PenaltyPerMinute,
		WindowP95:        2 * Bronze.Spec().SLA.MaxWindowP95.Seconds()}
	if gold.Urgency() <= bronze.Urgency() {
		t.Errorf("gold urgency %v not above bronze %v at equal relative violation",
			gold.Urgency(), bronze.Urgency())
	}
}
