package tenant

import (
	"strconv"
	"testing"
	"time"

	"autonosql/internal/store"
)

// TestLimiterTokenBucket pins the admission arithmetic: a bucket at rate r
// admits a burst of up to one second of tokens, then exactly r ops/s.
func TestLimiterTokenBucket(t *testing.T) {
	var l Limiter
	if !l.Admit(0) {
		t.Fatal("disabled limiter rejected an arrival")
	}
	l.SetRate(10, 0) // 10 ops/s, burst 10
	if r := l.Rate(); r != 10 || !l.Enabled() {
		t.Fatalf("Rate = %v enabled=%v, want 10 true", r, l.Enabled())
	}
	// The activation burst: 10 tokens available immediately.
	admitted := 0
	for i := 0; i < 20; i++ {
		if l.Admit(0) {
			admitted++
		}
	}
	if admitted != 10 {
		t.Fatalf("burst admitted %d, want 10", admitted)
	}
	// One second later exactly 10 more tokens have refilled.
	admitted = 0
	for i := 0; i < 20; i++ {
		if l.Admit(time.Second) {
			admitted++
		}
	}
	if admitted != 10 {
		t.Fatalf("refill admitted %d, want 10", admitted)
	}
	// Refill is proportional: 100 ms buys one token at 10 ops/s.
	if !l.Admit(1100 * time.Millisecond) {
		t.Error("100ms refill did not buy one token")
	}
	if l.Admit(1100 * time.Millisecond) {
		t.Error("second arrival at the same instant admitted without a token")
	}
}

// TestLimiterDeterminism pins that two identical arrival sequences make
// identical admit/shed decisions — the property the golden fingerprints
// depend on.
func TestLimiterDeterminism(t *testing.T) {
	run := func() []bool {
		var l Limiter
		l.SetRate(3, 0)
		var out []bool
		for i := 0; i < 100; i++ {
			out = append(out, l.Admit(time.Duration(i*137)*time.Millisecond))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged between identical runs", i)
		}
	}
}

// TestLimiterWindows pins the throttle timeline: every rate change closes
// the open window, Disable ends it, and a still-open window is closed at the
// query horizon.
func TestLimiterWindows(t *testing.T) {
	var l Limiter
	l.SetRate(100, 10*time.Second)
	l.SetRate(100, 11*time.Second) // same rate: no new window
	l.SetRate(50, 20*time.Second)  // tighten: close + reopen
	l.Disable(30 * time.Second)
	l.SetRate(200, 40*time.Second)

	ws := l.Windows(60 * time.Second)
	want := []ThrottleWindow{
		{Start: 10 * time.Second, End: 20 * time.Second, Rate: 100},
		{Start: 20 * time.Second, End: 30 * time.Second, Rate: 50},
		{Start: 40 * time.Second, End: 60 * time.Second, Rate: 200},
	}
	if len(ws) != len(want) {
		t.Fatalf("windows = %v, want %v", ws, want)
	}
	for i := range want {
		if ws[i] != want[i] {
			t.Errorf("window %d = %v, want %v", i, ws[i], want[i])
		}
	}
	if got := l.ThrottledTime(60 * time.Second); got != 40*time.Second {
		t.Errorf("ThrottledTime = %v, want 40s", got)
	}
	// Tightening does not grant a fresh burst.
	var tight Limiter
	tight.SetRate(1000, 0)
	for tight.Admit(0) {
	}
	tight.SetRate(10, 0)
	if tight.Admit(0) {
		t.Error("tightening refilled the bucket")
	}
}

// TestRuntimeShedsAndAccounts pins the runtime's shed path: a throttled
// runtime rejects excess arrivals synchronously with ErrAdmissionShed,
// counts them as errors in its own interval accounting and reports them
// (plus the throttle state) on the Signal.
func TestRuntimeShedsAndAccounts(t *testing.T) {
	inner := &fakeTarget{latency: time.Millisecond}
	rt, err := NewRuntime(1, "batch", Bronze, inner)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	if err := rt.Throttle(10); err == nil {
		t.Fatal("Throttle before EnableAdmission did not fail")
	}
	now := time.Duration(0)
	sheds := 0
	if err := rt.EnableAdmission(func() time.Duration { return now }, func(write bool) { sheds++ }); err != nil {
		t.Fatalf("EnableAdmission: %v", err)
	}
	if err := rt.Throttle(5); err != nil { // burst of 5
		t.Fatalf("Throttle: %v", err)
	}

	shedResults := 0
	for i := 0; i < 20; i++ {
		rt.Write(store.Key(strconv.Itoa(i)), func(r store.Result) {
			if r.Err == ErrAdmissionShed {
				shedResults++
			}
		})
	}
	if inner.writes != 5 {
		t.Errorf("inner target saw %d writes, want 5 (the burst)", inner.writes)
	}
	if shedResults != 15 || sheds != 15 || rt.ShedOps() != 15 {
		t.Errorf("shed accounting: results=%d hook=%d total=%d, want 15 each", shedResults, sheds, rt.ShedOps())
	}

	sig := rt.Observe(10*time.Second, 10*time.Second, 0.001)
	if !sig.Throttled || sig.ThrottleRate != 5 {
		t.Errorf("signal throttle state = %v @%v, want true @5", sig.Throttled, sig.ThrottleRate)
	}
	if sig.ShedOpsPerSec != 1.5 {
		t.Errorf("ShedOpsPerSec = %v, want 1.5 (15 shed over 10s)", sig.ShedOpsPerSec)
	}
	if sig.ErrorRate != 0.75 {
		t.Errorf("ErrorRate = %v, want 0.75 (15 shed of 20 offered)", sig.ErrorRate)
	}
	if rate, on := rt.Throttled(); !on || rate != 5 {
		t.Errorf("Throttled() = %v, %v", rate, on)
	}
	if err := rt.Unthrottle(); err != nil {
		t.Fatalf("Unthrottle: %v", err)
	}
	if _, on := rt.Throttled(); on {
		t.Error("runtime still throttled after Unthrottle")
	}
	// Throttle and release both happened at virtual time zero: the
	// zero-length window is dropped rather than recorded with End==0, which
	// would read as a window still open for the whole run.
	if ws := rt.ThrottleWindows(20 * time.Second); len(ws) != 0 {
		t.Errorf("instant throttle left windows %v, want none", ws)
	}
	if tt := rt.ThrottledTime(20 * time.Second); tt != 0 {
		t.Errorf("instant throttle counted %v of throttled time, want 0", tt)
	}
}

// TestLimiterInstantWindowDropped pins the degenerate timeline directly: a
// throttle engaged and released at the same instant contributes no window
// and no throttled time, and re-rating at the same instant never leaves
// overlapping windows.
func TestLimiterInstantWindowDropped(t *testing.T) {
	var l Limiter
	l.SetRate(100, 0)
	l.Disable(0)
	if ws := l.Windows(time.Minute); len(ws) != 0 {
		t.Errorf("windows = %v, want none", ws)
	}
	l.SetRate(100, 10*time.Second)
	l.SetRate(50, 10*time.Second) // re-rate at the same instant
	l.Disable(20 * time.Second)
	ws := l.Windows(time.Minute)
	if len(ws) != 1 || ws[0] != (ThrottleWindow{Start: 10 * time.Second, End: 20 * time.Second, Rate: 50}) {
		t.Errorf("windows = %v, want one 10s..20s @50", ws)
	}
	if tt := l.ThrottledTime(time.Minute); tt != 10*time.Second {
		t.Errorf("ThrottledTime = %v, want 10s", tt)
	}
}
