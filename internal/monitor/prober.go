package monitor

import (
	"errors"
	"fmt"
	"time"

	"autonosql/internal/sim"
	"autonosql/internal/store"
)

// ProberConfig configures the active read-after-write prober.
type ProberConfig struct {
	// Rate is the number of probes started per second. Rates below one are
	// supported (e.g. 0.2 starts a probe every five seconds).
	Rate float64
	// PollInterval is the delay between successive reads of the probe key.
	PollInterval time.Duration
	// Timeout abandons a probe whose write never becomes visible; the
	// timeout value itself is recorded as a (censored) estimate so that
	// severe divergence is not silently dropped.
	Timeout time.Duration
	// KeyPrefix namespaces probe keys away from application data.
	KeyPrefix string
}

// Prober performs read-after-write probes against the store, the technique
// the paper proposes for artificially measuring consistency on a dummy
// table. Each probe writes a marker and polls until the marker is visible;
// the elapsed time from write acknowledgement to first consistent read is
// the window estimate.
type Prober struct {
	cfg        ProberConfig
	engine     *sim.Engine
	store      *store.Store
	onEstimate func(windowSeconds float64, opsUsed int)

	ticker  *sim.Ticker
	seq     uint64
	started uint64
	done    uint64
	timeout uint64
	failed  uint64
}

// NewProber creates and starts a prober. onEstimate is invoked once per
// completed probe with the estimated window in seconds and the number of
// store operations the probe consumed.
func NewProber(cfg ProberConfig, engine *sim.Engine, st *store.Store, onEstimate func(float64, int)) (*Prober, error) {
	if engine == nil || st == nil || onEstimate == nil {
		return nil, errors.New("monitor: engine, store and estimate callback are required")
	}
	if cfg.Rate <= 0 {
		return nil, errors.New("monitor: probe rate must be positive")
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 5 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.KeyPrefix == "" {
		cfg.KeyPrefix = "__probe"
	}
	p := &Prober{cfg: cfg, engine: engine, store: st, onEstimate: onEstimate}
	period := time.Duration(float64(time.Second) / cfg.Rate)
	if period <= 0 {
		period = time.Millisecond
	}
	t, err := sim.NewTicker(engine, period, func(time.Duration) { p.startProbe() })
	if err != nil {
		return nil, err
	}
	p.ticker = t
	return p, nil
}

// Stop halts the prober. Probes already in flight finish.
func (p *Prober) Stop() { p.ticker.Stop() }

// Started returns the number of probes started.
func (p *Prober) Started() uint64 { return p.started }

// Completed returns the number of probes that observed their write.
func (p *Prober) Completed() uint64 { return p.done }

// TimedOut returns the number of probes abandoned at the timeout.
func (p *Prober) TimedOut() uint64 { return p.timeout }

// Failed returns the number of probes whose write was rejected outright
// (unavailable or crashed coordinator, partition-starved consistency level).
func (p *Prober) Failed() uint64 { return p.failed }

func (p *Prober) startProbe() {
	p.seq++
	p.started++
	key := store.Key(fmt.Sprintf("%s-%d", p.cfg.KeyPrefix, p.seq))
	ops := 1
	p.store.Write(key, func(w store.Result) {
		if w.Err != nil {
			// A probe write rejected by a crashed or partitioned store is a
			// consistency signal, not a gap in the data: dropping it silently
			// would leave the monitor blind exactly when divergence is worst.
			// Record the probe as failed and feed the censored timeout value
			// into the estimate series, the same way an abandoned poll does.
			p.failed++
			p.onEstimate(p.cfg.Timeout.Seconds(), ops)
			return
		}
		p.poll(key, w.Version, w.CompletedAt, w.CompletedAt, ops)
	})
}

// poll reads the probe key until the written version is visible.
func (p *Prober) poll(key store.Key, wantVersion uint64, ackedAt, deadlineBase time.Duration, ops int) {
	p.store.Read(key, func(r store.Result) {
		opsUsed := ops + 1
		now := r.CompletedAt
		switch {
		case r.Err == nil && r.Version >= wantVersion:
			p.done++
			p.onEstimate((now - ackedAt).Seconds(), opsUsed)
		case now-deadlineBase >= p.cfg.Timeout:
			p.timeout++
			p.onEstimate(p.cfg.Timeout.Seconds(), opsUsed)
		default:
			p.engine.After(p.cfg.PollInterval, func(time.Duration) {
				p.poll(key, wantVersion, ackedAt, deadlineBase, opsUsed)
			})
		}
	})
}
