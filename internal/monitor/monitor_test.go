package monitor

import (
	"fmt"
	"testing"
	"time"

	"autonosql/internal/cluster"
	"autonosql/internal/sim"
	"autonosql/internal/store"
	"autonosql/internal/workload"
)

type testRig struct {
	engine  *sim.Engine
	cluster *cluster.Cluster
	store   *store.Store
	monitor *Monitor
}

func newRig(t *testing.T, monCfg Config, storeCfg store.Config, seed int64) *testRig {
	t.Helper()
	engine := sim.NewEngine()
	src := sim.NewRandSource(seed)
	cl := cluster.New(cluster.DefaultConfig(), engine, src)
	st, err := store.New(storeCfg, engine, cl, src)
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	m, err := New(monCfg, engine, st, cl)
	if err != nil {
		t.Fatalf("monitor.New: %v", err)
	}
	return &testRig{engine: engine, cluster: cl, store: st, monitor: m}
}

// drive routes load through the monitor (as an application would) for the
// given duration.
func (r *testRig) drive(t *testing.T, opsPerSec float64, readFraction float64, dur time.Duration) {
	t.Helper()
	src := sim.NewRandSource(99)
	gen, err := workload.NewGenerator(workload.Config{
		Profile: workload.ConstantProfile{OpsPerSec: opsPerSec},
		Mix:     workload.Mix{ReadFraction: readFraction},
		Keys:    workload.NewUniformKeys(300, src.Stream("keys")),
		Until:   dur,
	}, r.engine, r.monitor, src)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	gen.Start()
	if err := r.engine.Run(r.engine.Now() + dur + time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}, nil, nil, nil); err == nil {
		t.Fatal("nil dependencies accepted")
	}
}

func TestPassiveEstimatesWithoutProbes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseActive = false
	rig := newRig(t, cfg, store.DefaultConfig(), 1)
	rig.drive(t, 500, 0.5, 5*time.Second)

	snap := rig.monitor.Snapshot()
	if snap.WindowSamples == 0 {
		t.Fatal("passive monitoring produced no window samples")
	}
	if snap.ProbeOpsPerSec != 0 || snap.ProbeOverheadFraction != 0 {
		t.Fatalf("probe overhead reported without active probing: %+v", snap)
	}
	if snap.WindowP99 < 0 {
		t.Fatalf("negative window estimate %v", snap.WindowP99)
	}
	if rig.monitor.ProbeOps() != 0 {
		t.Fatal("probe ops counted without a prober")
	}
}

func TestActiveProbingProducesEstimatesAndOverhead(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UsePassive = false
	cfg.ProbeRate = 5
	rig := newRig(t, cfg, store.DefaultConfig(), 2)
	rig.drive(t, 300, 0.5, 5*time.Second)

	snap := rig.monitor.Snapshot()
	if snap.WindowSamples == 0 {
		t.Fatal("active probing produced no window samples")
	}
	if rig.monitor.ProbeOps() == 0 {
		t.Fatal("probe ops not accounted")
	}
	if snap.ProbeOverheadFraction <= 0 || snap.ProbeOverheadFraction >= 1 {
		t.Fatalf("probe overhead fraction = %v, want in (0,1)", snap.ProbeOverheadFraction)
	}
}

func TestSnapshotClientMetrics(t *testing.T) {
	rig := newRig(t, DefaultConfig(), store.DefaultConfig(), 3)
	rig.drive(t, 400, 0.7, 5*time.Second)

	snap := rig.monitor.Snapshot()
	if snap.ObservedOpsPerSec < 200 || snap.ObservedOpsPerSec > 600 {
		t.Fatalf("ObservedOpsPerSec = %v, want ~400", snap.ObservedOpsPerSec)
	}
	if snap.ReadLatencyP99 <= 0 || snap.WriteLatencyP99 <= 0 {
		t.Fatalf("latency percentiles missing: %+v", snap)
	}
	if snap.ErrorRate != 0 {
		t.Fatalf("unexpected errors: %v", snap.ErrorRate)
	}
	if snap.ClusterSize != 3 || snap.ReplicationFactor != 3 {
		t.Fatalf("configuration view wrong: %+v", snap)
	}
	if snap.ReadConsistency != store.One || snap.WriteConsistency != store.One {
		t.Fatalf("consistency view wrong: %+v", snap)
	}
	if snap.MeanUtilization <= 0 || snap.MaxUtilization < snap.MeanUtilization {
		t.Fatalf("utilisation implausible: %+v", snap)
	}

	// Interval accumulators reset: an immediate second snapshot sees ~0 ops.
	snap2 := rig.monitor.Snapshot()
	if snap2.ObservedOpsPerSec > snap.ObservedOpsPerSec/10 {
		t.Fatalf("interval counters not reset: %v", snap2.ObservedOpsPerSec)
	}
}

func TestErrorRateReported(t *testing.T) {
	storeCfg := store.DefaultConfig()
	storeCfg.WriteConsistency = store.All
	rig := newRig(t, DefaultConfig(), storeCfg, 4)
	// Fail two nodes: CL=ALL writes become unavailable.
	nodes := rig.cluster.AvailableNodes()
	if err := rig.cluster.FailNode(nodes[0].ID()); err != nil {
		t.Fatalf("FailNode: %v", err)
	}
	if err := rig.cluster.FailNode(nodes[1].ID()); err != nil {
		t.Fatalf("FailNode: %v", err)
	}
	rig.drive(t, 200, 0.0, 3*time.Second)
	snap := rig.monitor.Snapshot()
	if snap.ErrorRate <= 0 {
		t.Fatalf("error rate = %v, want > 0 with failed replicas and CL=ALL", snap.ErrorRate)
	}
}

func TestPassiveEstimateTracksTrueWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short mode")
	}
	cfg := DefaultConfig()
	cfg.UseActive = false
	storeCfg := store.DefaultConfig()
	storeCfg.ReadRepair = false
	storeCfg.AntiEntropyInterval = 0
	rig := newRig(t, cfg, storeCfg, 5)
	rig.drive(t, 3500, 0.2, 10*time.Second)

	trueP95 := rig.store.RecentWindowQuantile(0.95)
	estP95 := rig.monitor.WindowQuantile(0.95)
	if trueP95 <= 0 {
		t.Skip("load did not produce a measurable window; nothing to compare")
	}
	if estP95 <= 0 {
		t.Fatal("estimator saw nothing although the true window is positive")
	}
	ratio := estP95 / trueP95
	if ratio < 0.2 || ratio > 5 {
		t.Fatalf("passive estimate implausibly far from truth: est=%.4fs true=%.4fs", estP95, trueP95)
	}
}

func TestProberLifecycle(t *testing.T) {
	engine := sim.NewEngine()
	src := sim.NewRandSource(6)
	cl := cluster.New(cluster.DefaultConfig(), engine, src)
	st, err := store.New(store.DefaultConfig(), engine, cl, src)
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	var estimates []float64
	p, err := NewProber(ProberConfig{Rate: 10}, engine, st, func(w float64, ops int) {
		if ops < 2 {
			t.Errorf("probe used %d ops, want >= 2", ops)
		}
		estimates = append(estimates, w)
	})
	if err != nil {
		t.Fatalf("NewProber: %v", err)
	}
	if err := engine.Run(3 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	p.Stop()
	if p.Started() == 0 || p.Completed() == 0 {
		t.Fatalf("probes started=%d completed=%d", p.Started(), p.Completed())
	}
	if len(estimates) == 0 {
		t.Fatal("no estimates delivered")
	}
	for _, e := range estimates {
		if e < 0 {
			t.Fatalf("negative window estimate %v", e)
		}
	}
}

func TestProberValidation(t *testing.T) {
	engine := sim.NewEngine()
	src := sim.NewRandSource(7)
	cl := cluster.New(cluster.DefaultConfig(), engine, src)
	st, err := store.New(store.DefaultConfig(), engine, cl, src)
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	if _, err := NewProber(ProberConfig{Rate: 1}, nil, st, func(float64, int) {}); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := NewProber(ProberConfig{Rate: 0}, engine, st, func(float64, int) {}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := NewProber(ProberConfig{Rate: 1}, engine, st, nil); err == nil {
		t.Fatal("nil callback accepted")
	}
}

func TestProberTimeoutPath(t *testing.T) {
	engine := sim.NewEngine()
	src := sim.NewRandSource(8)
	cl := cluster.New(cluster.DefaultConfig(), engine, src)
	storeCfg := store.DefaultConfig()
	storeCfg.HintedHandoff = true
	storeCfg.ReadRepair = false
	storeCfg.AntiEntropyInterval = 0
	st, err := store.New(storeCfg, engine, cl, src)
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	timeouts := 0
	p, err := NewProber(ProberConfig{Rate: 2, Timeout: 200 * time.Millisecond, PollInterval: 20 * time.Millisecond},
		engine, st, func(w float64, _ int) {
			if w >= 0.2 {
				timeouts++
			}
		})
	if err != nil {
		t.Fatalf("NewProber: %v", err)
	}
	// Fail the replica that serves CL=ONE reads for many keys: some probes
	// will poll a replica that never converges and hit the timeout.
	for i, n := range cl.AvailableNodes() {
		if i < 2 {
			if err := cl.FailNode(n.ID()); err != nil {
				t.Fatalf("FailNode: %v", err)
			}
		}
	}
	if err := engine.Run(3 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	p.Stop()
	// With two of three replicas down, CL=ONE writes land only on the
	// survivor; probes still complete because reads hit the same survivor.
	// The timeout path is exercised when reads fail or lag; accept either a
	// timeout or full completion, but the prober must not wedge.
	if p.Started() == 0 {
		t.Fatal("prober did not start any probes")
	}
	_ = timeouts
	if p.Completed()+p.TimedOut() == 0 {
		t.Fatal("no probe reached a terminal state")
	}
}

// TestProbeFailureRecordedNotSilent pins the fault-visibility regression: a
// probe whose write is rejected by a crashed/partitioned store must be
// counted as a failure AND feed a censored (timeout-valued) estimate into the
// monitor's window series, instead of silently disappearing and leaving the
// controller blind while divergence is worst.
func TestProbeFailureRecordedNotSilent(t *testing.T) {
	engine := sim.NewEngine()
	src := sim.NewRandSource(12)
	clusterCfg := cluster.DefaultConfig()
	clusterCfg.InitialNodes = 3
	cl := cluster.New(clusterCfg, engine, src)
	storeCfg := store.DefaultConfig()
	storeCfg.WriteConsistency = store.All
	st, err := store.New(storeCfg, engine, cl, src)
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	const timeout = 500 * time.Millisecond
	var estimates []float64
	p, err := NewProber(ProberConfig{Rate: 5, Timeout: timeout, PollInterval: 20 * time.Millisecond},
		engine, st, func(w float64, _ int) { estimates = append(estimates, w) })
	if err != nil {
		t.Fatalf("NewProber: %v", err)
	}
	// Fail two of three nodes: CL=ALL probe writes are rejected outright.
	nodes := cl.AvailableNodes()
	if err := cl.FailNode(nodes[0].ID()); err != nil {
		t.Fatalf("FailNode: %v", err)
	}
	if err := cl.FailNode(nodes[1].ID()); err != nil {
		t.Fatalf("FailNode: %v", err)
	}
	if err := engine.Run(3 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	p.Stop()
	if p.Failed() == 0 {
		t.Fatal("probe writes against a two-thirds-failed cluster were not counted as failures")
	}
	censored := 0
	for _, e := range estimates {
		if e == timeout.Seconds() {
			censored++
		}
	}
	if censored == 0 {
		t.Fatalf("no censored timeout estimates recorded for %d failed probes (estimates: %v)",
			p.Failed(), estimates)
	}
}

func TestSnapshotWindowGrowsUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short mode")
	}
	run := func(rate float64) float64 {
		cfg := DefaultConfig()
		cfg.ProbeRate = 2
		storeCfg := store.DefaultConfig()
		storeCfg.ReadRepair = false
		storeCfg.AntiEntropyInterval = 0
		rig := newRig(t, cfg, storeCfg, 9)
		rig.drive(t, rate, 0.3, 10*time.Second)
		return rig.monitor.WindowQuantile(0.95)
	}
	low := run(300)
	high := run(4000)
	if high <= low {
		t.Fatalf("estimated window did not grow with load: low=%v high=%v", low, high)
	}
}

func TestMonitorAsTargetKeysIndependent(t *testing.T) {
	// Sanity check that probe keys do not collide with application keys.
	rig := newRig(t, DefaultConfig(), store.DefaultConfig(), 10)
	done := false
	rig.monitor.Write(store.Key(fmt.Sprintf("%s-1", "__probe")), func(store.Result) { done = true })
	for i := 0; i < 10000 && !done; i++ {
		if !rig.engine.Step() {
			break
		}
	}
	if !done {
		t.Fatal("write through monitor never completed")
	}
}
