package monitor

import (
	"errors"
	"time"

	"autonosql/internal/cluster"
	"autonosql/internal/metrics"
	"autonosql/internal/sim"
	"autonosql/internal/store"
	"autonosql/internal/tenant"
)

// Config configures a Monitor.
type Config struct {
	// UseActive enables the read-after-write prober.
	UseActive bool
	// UsePassive enables coordinator-side observation of replica acks.
	UsePassive bool
	// ProbeRate is the number of active probes started per second.
	ProbeRate float64
	// ProbePollInterval is the delay between successive reads of a probe key.
	ProbePollInterval time.Duration
	// ProbeTimeout abandons a probe that never observes its write.
	ProbeTimeout time.Duration
	// WindowSampleSize is the number of recent window estimates retained for
	// quantile queries.
	WindowSampleSize int
	// LatencySampleSize is the number of recent client latencies retained.
	LatencySampleSize int
}

// DefaultConfig enables both techniques with one probe per second.
func DefaultConfig() Config {
	return Config{
		UseActive:         true,
		UsePassive:        true,
		ProbeRate:         1,
		ProbePollInterval: 5 * time.Millisecond,
		ProbeTimeout:      10 * time.Second,
		WindowSampleSize:  512,
		LatencySampleSize: 4096,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.ProbePollInterval <= 0 {
		c.ProbePollInterval = d.ProbePollInterval
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = d.ProbeTimeout
	}
	if c.WindowSampleSize <= 0 {
		c.WindowSampleSize = d.WindowSampleSize
	}
	if c.LatencySampleSize <= 0 {
		c.LatencySampleSize = d.LatencySampleSize
	}
	return c
}

// Snapshot is the periodic view of the system the controller works from. All
// durations are expressed in seconds.
type Snapshot struct {
	At       time.Duration
	Interval time.Duration

	// Inconsistency-window estimate.
	WindowMean    float64
	WindowP50     float64
	WindowP95     float64
	WindowP99     float64
	WindowSamples int

	// Client-observed performance over the interval.
	ReadLatencyP99    float64
	WriteLatencyP99   float64
	ObservedOpsPerSec float64
	ErrorRate         float64

	// Infrastructure utilisation over the interval.
	MeanUtilization float64
	MaxUtilization  float64

	// Monitoring overhead.
	ProbeOpsPerSec        float64
	ProbeOverheadFraction float64
	// ProbeFailures is the cumulative number of probes whose write was
	// rejected outright (crashed or partitioned store). A rising count tells
	// the controller the window estimate is censored, not healthy.
	ProbeFailures uint64

	// Current configuration, as the controller's knowledge of the plant.
	ClusterSize       int
	ReplicationFactor int
	ReadConsistency   store.ConsistencyLevel
	WriteConsistency  store.ConsistencyLevel

	// Tenants carries the per-tenant signals of a multi-tenant scenario,
	// one per declared tenant, expressed against each tenant's own SLA
	// class. It is filled by the scenario's sampling loop (the monitor has
	// no tenant knowledge of its own) and empty in single-tenant runs; the
	// tenant-aware controller acts on the worst penalty-weighted entry
	// instead of the aggregate estimate when it is non-empty.
	Tenants []tenant.Signal
}

// Monitor gathers estimates and exposes Snapshots. It implements
// workload.Target so client traffic can be routed through it, and
// store.Observer so passive estimation can piggyback on coordinator acks.
type Monitor struct {
	cfg     Config
	engine  *sim.Engine
	store   *store.Store
	cluster *cluster.Cluster

	utilSampler *cluster.UtilizationSampler
	prober      *Prober

	windowEst *metrics.WindowedStat
	readLat   *metrics.WindowedStat
	writeLat  *metrics.WindowedStat

	opsInterval    uint64
	errorsInterval uint64
	probeOpsTotal  uint64
	probeOpsPrev   uint64
	opsTotal       uint64
	lastSnapshotAt time.Duration

	// windowQuantiles is the reused result buffer for the batched window
	// quantile query issued on every snapshot.
	windowQuantiles [3]float64
}

// snapshotWindowQs are the window quantiles every snapshot reports, queried
// in one batch so the window sample buffer is sorted once per interval.
var snapshotWindowQs = []float64{0.50, 0.95, 0.99}

var (
	_ store.Observer = (*Monitor)(nil)
)

// New creates a monitor for the given store and cluster. If active probing
// is enabled the prober starts immediately.
func New(cfg Config, engine *sim.Engine, st *store.Store, cl *cluster.Cluster) (*Monitor, error) {
	if engine == nil || st == nil || cl == nil {
		return nil, errors.New("monitor: engine, store and cluster are required")
	}
	cfg = cfg.withDefaults()
	m := &Monitor{
		cfg:         cfg,
		engine:      engine,
		store:       st,
		cluster:     cl,
		utilSampler: cluster.NewUtilizationSampler(cl),
		windowEst:   metrics.NewWindowedStat(cfg.WindowSampleSize),
		readLat:     metrics.NewWindowedStat(cfg.LatencySampleSize),
		writeLat:    metrics.NewWindowedStat(cfg.LatencySampleSize),
	}
	if cfg.UsePassive {
		st.Subscribe(m)
	}
	if cfg.UseActive && cfg.ProbeRate > 0 {
		p, err := NewProber(ProberConfig{
			Rate:         cfg.ProbeRate,
			PollInterval: cfg.ProbePollInterval,
			Timeout:      cfg.ProbeTimeout,
		}, engine, st, m.onProbeEstimate)
		if err != nil {
			return nil, err
		}
		m.prober = p
	}
	return m, nil
}

// Stop halts background probing.
func (m *Monitor) Stop() {
	if m.prober != nil {
		m.prober.Stop()
	}
}

// Read implements workload.Target: it forwards to the store and records the
// client-observed outcome. It is the untagged view — identical to
// Tagged(0).Read, kept as a single implementation there.
func (m *Monitor) Read(key store.Key, cb func(store.Result)) {
	m.Tagged(0).Read(key, cb)
}

// Write implements workload.Target: it forwards to the store and records the
// client-observed outcome.
func (m *Monitor) Write(key store.Key, cb func(store.Result)) {
	m.Tagged(0).Write(key, cb)
}

// TaggedTarget routes one tenant's operations through the monitor's
// aggregate client-side accounting while tagging them with the tenant's
// store ID, so the controller's aggregate view still covers all client
// traffic and the store can attribute ground truth per tenant. It satisfies
// workload.Target and tenant.Target.
type TaggedTarget struct {
	m  *Monitor
	id store.TenantID
}

// Tagged returns the monitor's tagged view for one tenant.
func (m *Monitor) Tagged(id store.TenantID) TaggedTarget {
	return TaggedTarget{m: m, id: id}
}

// Read implements workload.Target.
func (t TaggedTarget) Read(key store.Key, cb func(store.Result)) {
	m := t.m
	m.opsInterval++
	m.opsTotal++
	m.store.ReadAs(t.id, key, func(r store.Result) {
		if r.Err != nil {
			m.errorsInterval++
		} else {
			m.readLat.Observe(r.Latency.Seconds())
		}
		if cb != nil {
			cb(r)
		}
	})
}

// Write implements workload.Target.
func (t TaggedTarget) Write(key store.Key, cb func(store.Result)) {
	m := t.m
	m.opsInterval++
	m.opsTotal++
	m.store.WriteAs(t.id, key, func(r store.Result) {
		if r.Err != nil {
			m.errorsInterval++
		} else {
			m.writeLat.Observe(r.Latency.Seconds())
		}
		if cb != nil {
			cb(r)
		}
	})
}

// ObserveWrite implements store.Observer: the spread between the client
// acknowledgement and the last replica acknowledgement is a zero-cost
// estimate of the write's inconsistency window.
func (m *Monitor) ObserveWrite(o store.WriteObservation) {
	spread := o.LastAckAt - o.AckedAt
	if spread < 0 {
		spread = 0
	}
	m.windowEst.Observe(spread.Seconds())
}

// onProbeEstimate records an active-probe window estimate along with the
// number of operations the probe consumed.
func (m *Monitor) onProbeEstimate(windowSeconds float64, opsUsed int) {
	m.windowEst.Observe(windowSeconds)
	m.probeOpsTotal += uint64(opsUsed)
}

// WindowQuantile returns the current q-quantile of the window estimate in
// seconds.
func (m *Monitor) WindowQuantile(q float64) float64 { return m.windowEst.Quantile(q) }

// ProbeOps returns the cumulative number of operations issued by the active
// prober.
func (m *Monitor) ProbeOps() uint64 { return m.probeOpsTotal }

// Snapshot builds the controller-facing view of the last interval and
// resets the interval accumulators.
func (m *Monitor) Snapshot() Snapshot {
	now := m.engine.Now()
	interval := now - m.lastSnapshotAt
	meanU, maxU := m.utilSampler.Sample(now)

	ops := m.opsInterval
	errs := m.errorsInterval
	probeOps := m.probeOpsTotal - m.probeOpsPrev
	m.opsInterval = 0
	m.errorsInterval = 0
	m.probeOpsPrev = m.probeOpsTotal
	m.lastSnapshotAt = now

	wq := m.windowEst.Quantiles(snapshotWindowQs, m.windowQuantiles[:0])
	snap := Snapshot{
		At:                now,
		Interval:          interval,
		WindowMean:        m.windowEst.Mean(),
		WindowP50:         wq[0],
		WindowP95:         wq[1],
		WindowP99:         wq[2],
		WindowSamples:     m.windowEst.Count(),
		ReadLatencyP99:    m.readLat.Quantile(0.99),
		WriteLatencyP99:   m.writeLat.Quantile(0.99),
		MeanUtilization:   meanU,
		MaxUtilization:    maxU,
		ClusterSize:       m.cluster.Size(),
		ReplicationFactor: m.store.ReplicationFactor(),
		ReadConsistency:   m.store.ReadConsistency(),
		WriteConsistency:  m.store.WriteConsistency(),
	}
	if m.prober != nil {
		snap.ProbeFailures = m.prober.Failed()
	}
	if interval > 0 {
		secs := interval.Seconds()
		snap.ObservedOpsPerSec = float64(ops) / secs
		snap.ProbeOpsPerSec = float64(probeOps) / secs
	}
	if ops > 0 {
		snap.ErrorRate = float64(errs) / float64(ops)
	}
	if total := ops + probeOps; total > 0 {
		snap.ProbeOverheadFraction = float64(probeOps) / float64(total)
	}
	return snap
}
