// Package monitor implements the measurement side of the paper's autonomous
// system: estimating the size of the inconsistency window and the health of
// the cluster with bounded, accountable overhead.
//
// Two estimation techniques are provided, mirroring the options the paper
// discusses under RQ1:
//
//   - Active probing (read-after-write on a dummy keyspace): a probe writes a
//     marker key and then polls it until the written version becomes visible,
//     yielding a client-centric window estimate at the cost of extra
//     operations against the database.
//   - Passive observation: the coordinator already learns when each replica
//     acknowledges a write; the spread between the client acknowledgement and
//     the last replica acknowledgement estimates the window with no added
//     load, at the cost of missing replicas that never acknowledge.
//
// The Monitor also acts as an instrumented pass-through in front of the
// store, so client-observed latency and error rates are measured exactly the
// way an application-side metrics library would measure them. Controllers
// consume periodic Snapshots; they never see simulator ground truth.
package monitor
