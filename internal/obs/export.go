package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSONL writes one JSON object per trace, in sampling order. Struct
// field order is fixed, so the output is byte-identical across runs that
// produced identical traces.
func WriteJSONL(w io.Writer, traces []*OpTrace) error {
	enc := json.NewEncoder(w)
	for _, tr := range traces {
		if err := enc.Encode(tr); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one entry of the Chrome trace_event JSON array format
// (chrome://tracing, Perfetto). Timestamps are microseconds.
type chromeEvent struct {
	Name  string     `json:"name"`
	Ph    string     `json:"ph"`
	Ts    float64    `json:"ts"`
	Dur   float64    `json:"dur,omitempty"`
	Pid   int        `json:"pid"`
	Tid   uint64     `json:"tid"`
	Scope string     `json:"s,omitempty"`
	Args  chromeArgs `json:"args,omitempty"`
}

type chromeArgs struct {
	Tenant string `json:"tenant,omitempty"`
	Key    string `json:"key,omitempty"`
	Node   int    `json:"node,omitempty"`
	Err    string `json:"err,omitempty"`
	Note   string `json:"note,omitempty"`
}

func micros(ns int64) float64 { return float64(ns) / 1e3 }

// WriteChromeTrace writes the traces in Chrome trace_event format: one
// complete ("X") event spanning each op, with each span phase as an instant
// ("i") event on the same track. Each op gets its own tid so fan-outs render
// as separate rows in a flamegraph viewer.
func WriteChromeTrace(w io.Writer, traces []*OpTrace) error {
	if _, err := io.WriteString(w, "["); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	first := true
	emit := func(ev chromeEvent) error {
		if !first {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		first = false
		// json.Encoder appends a newline after every value, which doubles as
		// the separator formatting inside the array.
		return enc.Encode(ev)
	}
	for _, tr := range traces {
		kind := "read"
		if tr.Write {
			kind = "write"
		}
		end := tr.End
		if !tr.Done && len(tr.Events) > 0 {
			end = tr.Events[len(tr.Events)-1].At
		}
		if end < tr.Start {
			end = tr.Start
		}
		if err := emit(chromeEvent{
			Name: fmt.Sprintf("%s %s", kind, tr.Key),
			Ph:   "X",
			Ts:   micros(int64(tr.Start)),
			Dur:  micros(int64(end - tr.Start)),
			Pid:  1,
			Tid:  tr.ID,
			Args: chromeArgs{Tenant: tr.Tenant, Key: tr.Key, Err: tr.Err},
		}); err != nil {
			return err
		}
		for _, ev := range tr.Events {
			if err := emit(chromeEvent{
				Name:  ev.Phase,
				Ph:    "i",
				Ts:    micros(int64(ev.At)),
				Pid:   1,
				Tid:   tr.ID,
				Scope: "t",
				Args:  chromeArgs{Node: ev.Node, Note: ev.Note},
			}); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}
