package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestTracerSampling pins the every-Nth election: the first op is always
// sampled, ids are dense over the sampled ops, and the counters agree.
func TestTracerSampling(t *testing.T) {
	tr := NewTracer(3, 0)
	var got []uint64
	for i := 0; i < 10; i++ {
		if sp := tr.Begin("t", true, "k", 0); sp != nil {
			got = append(got, sp.ID)
		}
	}
	if len(got) != 4 { // ops 1, 4, 7, 10
		t.Fatalf("sampled %d of 10 ops at every=3, want 4", len(got))
	}
	for i, id := range got {
		if id != uint64(i+1) {
			t.Errorf("trace id %d, want %d (ids must be dense)", id, i+1)
		}
	}
	if tr.Seen() != 10 || tr.Sampled() != 4 {
		t.Errorf("seen=%d sampled=%d, want 10/4", tr.Seen(), tr.Sampled())
	}
}

// TestTracerRetention pins the bounded-retention cap and its drop counter.
func TestTracerRetention(t *testing.T) {
	tr := NewTracer(1, 2)
	for i := 0; i < 5; i++ {
		tr.Begin("", false, "k", time.Duration(i))
	}
	if len(tr.Traces()) != 2 {
		t.Fatalf("retained %d traces, want 2", len(tr.Traces()))
	}
	if tr.Dropped() != 3 {
		t.Errorf("dropped=%d, want 3", tr.Dropped())
	}
	if tr.Traces()[0].ID != 4 || tr.Traces()[1].ID != 5 {
		t.Errorf("retained ids %d,%d, want the newest (4,5)", tr.Traces()[0].ID, tr.Traces()[1].ID)
	}
}

// TestTracerStaging pins the runtime-to-store handoff: a staged trace (even
// a nil one) is consumed exactly once, and an unstaged handoff reports ok
// false so the store begins its own trace.
func TestTracerStaging(t *testing.T) {
	tr := NewTracer(2, 0)
	sp := tr.Begin("gold", true, "k", 0) // sampled
	tr.Stage(sp)
	got, ok := tr.Handoff()
	if !ok || got != sp {
		t.Fatalf("Handoff = (%v, %v), want the staged trace", got, ok)
	}
	if _, ok := tr.Handoff(); ok {
		t.Error("second Handoff still reported a staged trace")
	}

	// Unsampled op: stage nil so the store does not re-sample.
	if sp := tr.Begin("gold", true, "k", 0); sp != nil {
		t.Fatal("second op sampled at every=2")
	}
	tr.Stage(nil)
	if got, ok := tr.Handoff(); !ok || got != nil {
		t.Fatalf("Handoff after nil stage = (%v, %v), want (nil, true)", got, ok)
	}
}

// TestTracerFinish pins the once-only finish semantics and the sink hook.
func TestTracerFinish(t *testing.T) {
	tr := NewTracer(1, 0)
	var sunk []*OpTrace
	tr.SetSink(func(sp *OpTrace) { sunk = append(sunk, sp) })
	sp := tr.Begin("", true, "k", time.Second)
	sp.Add(2*time.Second, "quorum", 3)
	tr.Finish(sp, 3*time.Second, "")
	tr.Finish(sp, 9*time.Second, "late") // must be ignored
	if sp.End != 3*time.Second || sp.Err != "" || !sp.Done {
		t.Errorf("finish state end=%v err=%q done=%v", sp.End, sp.Err, sp.Done)
	}
	if len(sunk) != 1 {
		t.Errorf("sink fired %d times, want 1", len(sunk))
	}
	var nilTrace *OpTrace
	nilTrace.Add(0, "noop", 0) // must not panic
	tr.Finish(nil, 0, "")      // must not panic
}

// TestExportDeterminism pins that both exporters emit identical bytes for
// identical traces and that the Chrome export is well-formed JSON.
func TestExportDeterminism(t *testing.T) {
	build := func() []*OpTrace {
		tr := NewTracer(1, 0)
		a := tr.Begin("gold", true, "user-1", 10*time.Millisecond)
		a.Add(11*time.Millisecond, "coordinate", 2)
		a.AddNote(12*time.Millisecond, "replica-apply", 3, "hinted")
		tr.Finish(a, 15*time.Millisecond, "")
		b := tr.Begin("bronze", false, "user-2", 20*time.Millisecond)
		tr.Finish(b, 21*time.Millisecond, "shed")
		return tr.Traces()
	}
	var j1, j2, c1, c2 bytes.Buffer
	if err := WriteJSONL(&j1, build()); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&j2, build()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
		t.Error("JSONL export differs between identical runs")
	}
	if lines := strings.Count(j1.String(), "\n"); lines != 2 {
		t.Errorf("JSONL export has %d lines, want 2", lines)
	}
	if err := WriteChromeTrace(&c1, build()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&c2, build()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1.Bytes(), c2.Bytes()) {
		t.Error("Chrome export differs between identical runs")
	}
	var events []map[string]any
	if err := json.Unmarshal(c1.Bytes(), &events); err != nil {
		t.Fatalf("Chrome export is not valid JSON: %v", err)
	}
	// 2 complete events + 2 instants for trace a's phases.
	if len(events) != 4 {
		t.Errorf("Chrome export has %d events, want 4", len(events))
	}
}
