// Package obs is the deterministic observability layer: sampled causal
// op traces, stamped exclusively with virtual time and counter-derived
// identifiers, so two runs of the same scenario — whatever the shard count
// or goroutine schedule — export byte-identical spans.
//
// The package is a leaf: it imports nothing from the rest of the module, so
// the simulation engine, the store, the tenant runtimes and the controller
// can all depend on it without cycles. Tracing is strictly opt-in: a nil
// *Tracer (the default) keeps every instrumented hot path on its existing
// 1-allocation-per-op budget, and a nil *OpTrace makes every span method a
// no-op, so call sites guard with a single pointer test.
package obs

import "time"

// SpanEvent is one phase marker inside an operation's causal span tree:
// virtual timestamp, phase name, and (when a specific replica is involved)
// the cluster node id.
type SpanEvent struct {
	At    time.Duration `json:"at"`
	Phase string        `json:"phase"`
	Node  int           `json:"node,omitempty"`
	Note  string        `json:"note,omitempty"`
}

// OpTrace is the sampled causal trace of one operation, from arrival through
// admission, coordination, per-replica fan-out and quorum to the final SLA
// accounting. IDs are allocated from the tracer's own counter in op-arrival
// order, never from wall clocks or RNGs, so the same simulation always
// produces the same ids.
type OpTrace struct {
	ID     uint64        `json:"id"`
	Tenant string        `json:"tenant,omitempty"`
	Write  bool          `json:"write"`
	Key    string        `json:"key"`
	Start  time.Duration `json:"start"`
	End    time.Duration `json:"end"`
	Err    string        `json:"err,omitempty"`
	Done   bool          `json:"done"`
	Events []SpanEvent   `json:"events"`
}

// Add appends a phase marker. It is safe on a nil receiver so unsampled
// operations cost one pointer test per call site.
func (tr *OpTrace) Add(at time.Duration, phase string, node int) {
	if tr == nil {
		return
	}
	tr.Events = append(tr.Events, SpanEvent{At: at, Phase: phase, Node: node})
}

// AddNote is Add with a free-form annotation.
func (tr *OpTrace) AddNote(at time.Duration, phase string, node int, note string) {
	if tr == nil {
		return
	}
	tr.Events = append(tr.Events, SpanEvent{At: at, Phase: phase, Node: node, Note: note})
}

// Tracer decides which operations get a trace and owns the retained trace
// list. Sampling is a plain every-Nth counter over arrivals — deterministic
// by construction — and all state is single-goroutine (the simulation's home
// lane), so no locking appears on the hot path.
type Tracer struct {
	every int
	limit int

	seen    uint64 // operations offered to Begin
	nextID  uint64 // sampled operations == allocated trace ids
	dropped uint64 // sampled traces evicted by the retention cap

	// staged hands a trace from the admission layer (tenant runtime) to the
	// store within one synchronous call chain. hasStaged distinguishes "the
	// runtime fronted this op but did not sample it" from "nobody fronted
	// it", so the store neither double-counts arrivals nor re-samples.
	staged    *OpTrace
	hasStaged bool

	traces []*OpTrace
	sink   func(*OpTrace)
}

// NewTracer creates a tracer sampling every Nth operation (every < 1 is
// treated as 1 — trace everything) and retaining at most limit traces
// (0 = unbounded).
func NewTracer(every, limit int) *Tracer {
	if every < 1 {
		every = 1
	}
	return &Tracer{every: every, limit: limit}
}

// SetSink installs a callback invoked whenever a trace finishes. The sink
// runs on the simulation goroutine; it must not block on simulation work.
func (t *Tracer) SetSink(fn func(*OpTrace)) { t.sink = fn }

// Begin offers one arriving operation to the sampler and returns its trace,
// or nil when the op is not elected. The first op is always sampled, then
// every Nth after it.
func (t *Tracer) Begin(tenant string, write bool, key string, now time.Duration) *OpTrace {
	t.seen++
	if (t.seen-1)%uint64(t.every) != 0 {
		return nil
	}
	t.nextID++
	tr := &OpTrace{ID: t.nextID, Tenant: tenant, Write: write, Key: key, Start: now}
	t.traces = append(t.traces, tr)
	if t.limit > 0 && len(t.traces) > t.limit {
		drop := len(t.traces) - t.limit
		t.traces = append(t.traces[:0], t.traces[drop:]...)
		t.dropped += uint64(drop)
	}
	return tr
}

// Stage parks a trace (possibly nil, for an op the sampler skipped) for the
// next layer of the same synchronous call chain to take over with Handoff.
func (t *Tracer) Stage(tr *OpTrace) {
	t.staged = tr
	t.hasStaged = true
}

// Handoff consumes a staged trace. ok reports whether a Stage call fronted
// the current operation at all; when false the callee should Begin its own
// trace.
func (t *Tracer) Handoff() (tr *OpTrace, ok bool) {
	if !t.hasStaged {
		return nil, false
	}
	tr = t.staged
	t.staged = nil
	t.hasStaged = false
	return tr, true
}

// Finish stamps a trace's end and outcome exactly once and feeds it to the
// sink. Safe on nil traces.
func (t *Tracer) Finish(tr *OpTrace, now time.Duration, errStr string) {
	if tr == nil || tr.Done {
		return
	}
	tr.End = now
	tr.Err = errStr
	tr.Done = true
	if t.sink != nil {
		t.sink(tr)
	}
}

// Traces returns the retained traces in sampling order. The slice is the
// tracer's own; callers must not mutate it.
func (t *Tracer) Traces() []*OpTrace { return t.traces }

// Seen returns how many operations were offered to the sampler.
func (t *Tracer) Seen() uint64 { return t.seen }

// Sampled returns how many operations were elected for tracing.
func (t *Tracer) Sampled() uint64 { return t.nextID }

// Dropped returns how many sampled traces the retention cap evicted.
func (t *Tracer) Dropped() uint64 { return t.dropped }
