package store

import (
	"errors"
	"fmt"
	"slices"

	"autonosql/internal/cluster"
)

// Placement: class-aware replica and coordinator selection. When a class is
// pinned, the tenants of that class anchor their replica sets and
// coordinators on a dedicated node pool while everyone else is steered onto
// the remainder, so a premium tenant's replica applies stop queueing behind
// a noisy neighbour's burst. With no class pinned every selection path is
// byte-for-byte the pre-placement code path.

// EnablePlacementTracking starts recording which tenant owns each written
// key, the data a later PinClass needs to repair every key onto the same
// biased replica set its tenant's reads will contact. Scenarios that allow
// placement enable it up front; scenarios that never will skip the per-write
// map insert entirely. PinClass enables it implicitly — keys written before
// that point then repair with the shared bias until a read-repair converges
// them.
func (s *Store) EnablePlacementTracking() {
	if s.keyTenant == nil {
		s.keyTenant = make(map[Key]TenantID)
	}
}

// PinClass dedicates the given nodes to one SLA class and marks the given
// tenants as members of that class. The dedicated nodes are tagged on the
// cluster (scale-in avoids them), and a rebalance is started so existing
// data converges onto the new preference lists, exactly like a replication-
// factor change. At most one class can be pinned at a time.
func (s *Store) PinClass(class string, tenants []TenantID, nodes []cluster.NodeID) error {
	if class == "" {
		return errors.New("store: placement class is required")
	}
	if s.placementClass != "" {
		return fmt.Errorf("store: class %q already pinned", s.placementClass)
	}
	if len(nodes) == 0 {
		return errors.New("store: placement needs at least one dedicated node")
	}
	s.EnablePlacementTracking()
	s.placementClass = class
	s.placementNodes = append(s.placementNodes[:0], nodes...)
	slices.Sort(s.placementNodes)
	s.pinnedTenants = make([]bool, len(s.tenants))
	for _, id := range tenants {
		if id > 0 && int(id) <= len(s.pinnedTenants) {
			s.pinnedTenants[id-1] = true
		}
	}
	for _, id := range s.placementNodes {
		if n, ok := s.cluster.Node(id); ok {
			n.SetClass(class)
		}
	}
	// Moving replica ownership streams data, the same cost model as growing
	// the replication factor; the post-rebalance repair converges existing
	// keys onto their new, biased preference lists.
	s.startRebalance()
	return nil
}

// UnpinClass releases the pinned class's nodes back into the shared pool and
// rebalances ownership back onto the unbiased ring.
func (s *Store) UnpinClass() error {
	if s.placementClass == "" {
		return errors.New("store: no class pinned")
	}
	for _, id := range s.placementNodes {
		if n, ok := s.cluster.Node(id); ok {
			n.SetClass("")
		}
	}
	s.placementClass = ""
	s.placementNodes = s.placementNodes[:0]
	s.pinnedTenants = nil
	s.startRebalance()
	return nil
}

// PinnedClass returns the SLA class currently holding dedicated nodes, or "".
func (s *Store) PinnedClass() string { return s.placementClass }

// PlacementNodes returns the IDs of the dedicated nodes (sorted), or nil.
func (s *Store) PlacementNodes() []cluster.NodeID {
	if len(s.placementNodes) == 0 {
		return nil
	}
	out := make([]cluster.NodeID, len(s.placementNodes))
	copy(out, s.placementNodes)
	return out
}

// tenantPinned reports whether the tagged tenant belongs to the pinned class.
func (s *Store) tenantPinned(id TenantID) bool {
	return id > 0 && int(id) <= len(s.pinnedTenants) && s.pinnedTenants[id-1]
}

// appendReplicasTenant resolves the preference list for one tenant's
// operation into the store's scratch buffer. Without an active placement it
// is exactly appendReplicas; with one, the walk is biased towards the
// tenant's pool (dedicated for the pinned class, shared for everyone else).
// Like appendReplicas, the result is valid until the next operation.
func (s *Store) appendReplicasTenant(tenant TenantID, key Key) []cluster.NodeID {
	if s.placementClass == "" {
		return s.appendReplicas(key)
	}
	s.replicaScratch = s.ring.AppendReplicasBiased(
		s.replicaScratch[:0], key, s.rf, s.placementNodes, s.tenantPinned(tenant))
	return s.replicaScratch
}

// replicasForRepair resolves the preference list repair paths must converge a
// key onto. Under an active placement the key's owning tenant (recorded at
// write time) decides the bias, so anti-entropy repairs the same replica set
// reads will contact.
func (s *Store) replicasForRepair(key Key) []cluster.NodeID {
	if s.placementClass == "" || s.keyTenant == nil {
		return s.appendReplicas(key)
	}
	return s.appendReplicasTenant(s.keyTenant[key], key)
}

// pickCoordinatorTenant selects the coordinator for one tenant's operation.
// Without an active placement it is exactly pickCoordinator (one rng draw);
// with one, the draw is made over the tenant's preferred pool when that pool
// has an available node, falling back to the full cluster otherwise — still
// exactly one rng draw per operation, so fault-free runs replay identically.
func (s *Store) pickCoordinatorTenant(tenant TenantID) (*cluster.Node, bool) {
	if s.placementClass == "" {
		return s.pickCoordinator()
	}
	nodes := s.cluster.AvailableNodes()
	if len(nodes) == 0 {
		return nil, false
	}
	prefer := s.tenantPinned(tenant)
	pool := s.coordScratch[:0]
	for _, n := range nodes {
		if slices.Contains(s.placementNodes, n.ID()) == prefer {
			pool = append(pool, n)
		}
	}
	s.coordScratch = pool
	if len(pool) == 0 {
		return nodes[s.rng.Intn(len(nodes))], true
	}
	return pool[s.rng.Intn(len(pool))], true
}
