package store

import (
	"errors"
	"fmt"
	"slices"

	"autonosql/internal/cluster"
)

// Placement: class-aware replica and coordinator selection. When a class is
// pinned, the tenants of that class anchor their replica sets and
// coordinators on a dedicated node pool while everyone else is steered onto
// the remainder, so a premium tenant's replica applies stop queueing behind
// a noisy neighbour's burst. Several classes can hold dedicated pools at the
// same time — each class's tenants bias onto their own pool, and unpinned
// tenants bias away from the union of all dedicated nodes. With no class
// pinned every selection path is byte-for-byte the pre-placement code path.

// classPlacement is one pinned class and its dedicated node pool (sorted).
type classPlacement struct {
	class string
	nodes []cluster.NodeID
}

// EnablePlacementTracking starts recording which tenant owns each written
// key, the data a later PinClass needs to repair every key onto the same
// biased replica set its tenant's reads will contact. Scenarios that allow
// placement enable it up front; scenarios that never will skip the per-write
// map insert entirely. PinClass enables it implicitly — keys written before
// that point then repair with the shared bias until a read-repair converges
// them.
func (s *Store) EnablePlacementTracking() {
	if s.keyTenant == nil {
		s.keyTenant = make(map[Key]TenantID)
	}
}

// PinClass dedicates the given nodes to one SLA class and marks the given
// tenants as members of that class. The dedicated nodes are tagged on the
// cluster (scale-in avoids them), and a rebalance is started so existing
// data converges onto the new preference lists, exactly like a replication-
// factor change. Pinning a second class while one is active adds a second
// dedicated pool rather than displacing the first; re-pinning an
// already-pinned class or dedicating a node two classes claim is an error.
func (s *Store) PinClass(class string, tenants []TenantID, nodes []cluster.NodeID) error {
	if class == "" {
		return errors.New("store: placement class is required")
	}
	if s.ClassPinned(class) {
		return fmt.Errorf("store: class %q already pinned", class)
	}
	if len(nodes) == 0 {
		return errors.New("store: placement needs at least one dedicated node")
	}
	for _, id := range nodes {
		if slices.Contains(s.dedicated, id) {
			return fmt.Errorf("store: node %v is already dedicated to class %q", id, s.nodeClass(id))
		}
	}
	s.EnablePlacementTracking()
	p := classPlacement{class: class, nodes: append([]cluster.NodeID(nil), nodes...)}
	slices.Sort(p.nodes)
	s.placements = append(s.placements, p)
	s.rebuildDedicated()
	if len(s.tenantPool) < len(s.tenants) {
		grown := make([]int, len(s.tenants))
		copy(grown, s.tenantPool)
		s.tenantPool = grown
	}
	for _, id := range tenants {
		if id > 0 && int(id) <= len(s.tenantPool) {
			s.tenantPool[id-1] = len(s.placements)
		}
	}
	for _, id := range p.nodes {
		if n, ok := s.cluster.Node(id); ok {
			n.SetClass(class)
		}
	}
	// Moving replica ownership streams data, the same cost model as growing
	// the replication factor; the post-rebalance repair converges existing
	// keys onto their new, biased preference lists.
	s.startRebalance()
	return nil
}

// UnpinClass releases the most recently pinned class's nodes back into the
// shared pool and rebalances ownership accordingly. With several classes
// pinned the older placements stay active.
func (s *Store) UnpinClass() error {
	if len(s.placements) == 0 {
		return errors.New("store: no class pinned")
	}
	last := len(s.placements) - 1
	for _, id := range s.placements[last].nodes {
		if n, ok := s.cluster.Node(id); ok {
			n.SetClass("")
		}
	}
	s.placements = s.placements[:last]
	s.rebuildDedicated()
	for i, p := range s.tenantPool {
		if p == last+1 {
			s.tenantPool[i] = 0
		}
	}
	if len(s.placements) == 0 {
		s.tenantPool = nil
	}
	s.startRebalance()
	return nil
}

// rebuildDedicated recomputes the sorted union of every dedicated pool.
func (s *Store) rebuildDedicated() {
	s.dedicated = s.dedicated[:0]
	for _, p := range s.placements {
		s.dedicated = append(s.dedicated, p.nodes...)
	}
	slices.Sort(s.dedicated)
	s.dedicated = slices.Compact(s.dedicated)
}

// nodeClass returns the class a node is dedicated to, or "".
func (s *Store) nodeClass(id cluster.NodeID) string {
	for _, p := range s.placements {
		if slices.Contains(p.nodes, id) {
			return p.class
		}
	}
	return ""
}

// PinnedClass returns the most recently pinned SLA class, or "".
func (s *Store) PinnedClass() string {
	if len(s.placements) == 0 {
		return ""
	}
	return s.placements[len(s.placements)-1].class
}

// ClassPinned reports whether the given class currently holds dedicated
// nodes.
func (s *Store) ClassPinned(class string) bool {
	for _, p := range s.placements {
		if p.class == class {
			return true
		}
	}
	return false
}

// PlacementNodes returns the IDs of all dedicated nodes (sorted), or nil.
func (s *Store) PlacementNodes() []cluster.NodeID {
	if len(s.dedicated) == 0 {
		return nil
	}
	out := make([]cluster.NodeID, len(s.dedicated))
	copy(out, s.dedicated)
	return out
}

// tenantPoolNodes returns the dedicated pool of the tagged tenant's pinned
// class, or nil when the tenant's class holds no dedicated nodes.
func (s *Store) tenantPoolNodes(id TenantID) []cluster.NodeID {
	if id > 0 && int(id) <= len(s.tenantPool) {
		if p := s.tenantPool[id-1]; p > 0 && p <= len(s.placements) {
			return s.placements[p-1].nodes
		}
	}
	return nil
}

// appendReplicasTenant resolves the preference list for one tenant's
// operation into the store's scratch buffer. Without an active placement it
// is exactly appendReplicas; with one, the walk is biased towards the
// tenant's pool (its class's dedicated nodes, or the shared remainder for
// unpinned tenants). Like appendReplicas, the result is valid until the next
// operation.
func (s *Store) appendReplicasTenant(tenant TenantID, key Key) []cluster.NodeID {
	if len(s.placements) == 0 {
		return s.appendReplicas(key)
	}
	if pool := s.tenantPoolNodes(tenant); pool != nil {
		s.replicaScratch = s.ring.AppendReplicasBiased(s.replicaScratch[:0], key, s.rf, pool, true)
	} else {
		s.replicaScratch = s.ring.AppendReplicasBiased(s.replicaScratch[:0], key, s.rf, s.dedicated, false)
	}
	return s.replicaScratch
}

// replicasForRepair resolves the preference list repair paths must converge a
// key onto. Under an active placement the key's owning tenant (recorded at
// write time) decides the bias, so anti-entropy repairs the same replica set
// reads will contact.
func (s *Store) replicasForRepair(key Key) []cluster.NodeID {
	if len(s.placements) == 0 || s.keyTenant == nil {
		return s.appendReplicas(key)
	}
	return s.appendReplicasTenant(s.keyTenant[key], key)
}

// pickCoordinatorTenant selects the coordinator for one tenant's operation.
// Without an active placement it is exactly pickCoordinator (one rng draw);
// with one, the draw is made over the tenant's preferred pool when that pool
// has an available node, falling back to the full cluster otherwise — still
// exactly one rng draw per operation, so fault-free runs replay identically.
func (s *Store) pickCoordinatorTenant(tenant TenantID) (*cluster.Node, bool) {
	if len(s.placements) == 0 {
		return s.pickCoordinator()
	}
	nodes := s.cluster.AvailableNodes()
	if len(nodes) == 0 {
		return nil, false
	}
	pool := s.coordScratch[:0]
	if preferred := s.tenantPoolNodes(tenant); preferred != nil {
		for _, n := range nodes {
			if slices.Contains(preferred, n.ID()) {
				pool = append(pool, n)
			}
		}
	} else {
		for _, n := range nodes {
			if !slices.Contains(s.dedicated, n.ID()) {
				pool = append(pool, n)
			}
		}
	}
	s.coordScratch = pool
	if len(pool) == 0 {
		return nodes[s.rng.Intn(len(nodes))], true
	}
	return pool[s.rng.Intn(len(pool))], true
}
