package store

import (
	"slices"
	"time"

	"autonosql/internal/cluster"
	"autonosql/internal/obs"
)

// The read and write paths are fully event-driven: every hop (client ->
// coordinator, coordinator -> replica, replica -> coordinator, coordinator ->
// client) is a scheduled event, and node work is enqueued at the virtual time
// it actually arrives at the node. This keeps the per-node queue model
// (a single busy-until executor) consistent: work is offered in arrival
// order, so queueing delays emerge from load instead of from event-creation
// order.

// writeState tracks one in-flight write at the coordinator: how many replica
// acknowledgements it still needs, how many can still arrive, and when the
// client was (or will be) acknowledged. The window tracker, the live replica
// list and the per-ack handler are embedded so one allocation covers the
// whole per-write bookkeeping.
type writeState struct {
	store    *Store
	key      Key
	ver      version
	issuedAt time.Duration
	tenant   TenantID
	cb       func(Result)
	// tracker follows the write until every replica applied it; it is
	// embedded by value and handed around as &w.tracker.
	tracker writeTracker
	// coord and live capture the coordinator and live preference list between
	// the client leg and the coordinator fan-out.
	coord *cluster.Node
	live  []cluster.NodeID
	// liveBuf backs live for the common replication factors without a second
	// allocation.
	liveBuf [8]cluster.NodeID
	// fanout holds one pre-bound dispatch slot per live replica, so the
	// coordinator fan-out schedules package-level ArgHandler events instead
	// of allocating a closure per replica. fanoutBuf backs it inline for the
	// common replication factors.
	fanout    []writeFanout
	fanoutBuf [8]writeFanout
	// trace is the sampled span tree for this write, nil for unsampled
	// operations (and always nil with tracing off).
	trace *obs.OpTrace

	required int
	// possible is the number of replicas that can still acknowledge (live
	// replicas whose mutation has not been dropped).
	possible     int
	acked        int
	ackDecidedAt time.Duration
	lastAckAt    time.Duration
	replicas     int

	clientAcked bool
	failed      bool
	observed    bool
}

// writeFanout is the per-replica slot of a write's coordinator fan-out: it
// points back at the write so the package-level event handlers below can be
// scheduled with the engine's allocation-free AfterArg path.
type writeFanout struct {
	w  *writeState
	id cluster.NodeID
}

// Package-level ArgHandler trampolines for the write path. Using named
// functions (instead of per-event closures) keeps the fan-out hot path at a
// single allocation per write: the writeState itself.
func writeDispatchEvent(arg any, arrival time.Duration) {
	w := arg.(*writeState)
	w.store.coordinateWrite(w, arrival)
}

func writeAckEvent(arg any, at time.Duration) {
	arg.(*writeState).onAck(at)
}

func writeArriveEvent(arg any, arrive time.Duration) {
	f := arg.(*writeFanout)
	f.w.store.applyOnReplica(f, arrive)
}

func writeApplyEvent(arg any, applied time.Duration) {
	f := arg.(*writeFanout)
	w := f.w
	if rep, ok := w.store.replicas[f.id]; ok {
		rep.apply(w.key, w.ver)
	}
	w.trace.Add(applied, "replica-apply", int(f.id))
	w.tracker.applied(applied)
}

func writeClientAckEvent(arg any, at time.Duration) {
	w := arg.(*writeState)
	s := w.store
	if cur, ok := s.latestAcked[w.key]; !ok || w.ver > cur {
		s.latestAcked[w.key] = w.ver
	}
	w.trace.Add(at, "client-ack", 0)
	w.tracker.setAck(at)
	latency := at - w.issuedAt
	s.writeLatency.ObserveDuration(latency)
	if t := s.tenant(w.tenant); t != nil {
		t.writeLatency.ObserveDuration(latency)
	}
	if w.cb != nil {
		w.cb(Result{
			Kind:        OpWrite,
			Key:         w.key,
			IssuedAt:    w.issuedAt,
			CompletedAt: at,
			Latency:     latency,
			Version:     uint64(w.ver),
		})
	}
}

// onAck records one replica acknowledgement arriving at the coordinator.
func (w *writeState) onAck(at time.Duration) {
	if w.failed {
		return
	}
	w.acked++
	if at > w.lastAckAt {
		w.lastAckAt = at
	}
	w.trace.Add(at, "ack", 0)
	if !w.clientAcked && w.acked >= w.required {
		w.clientAcked = true
		w.ackDecidedAt = at
		w.trace.Add(at, "quorum", 0)
		w.store.completeWrite(w, at)
	}
	if w.acked >= w.possible {
		w.emitObservation()
	}
}

// onReplicaLost records that one replica will not acknowledge (dropped
// mutation, unreachable node). If the write can no longer reach its
// consistency level it fails with ErrUnavailable, mirroring a write-timeout.
func (w *writeState) onReplicaLost() {
	if w.failed {
		return
	}
	w.possible--
	if !w.clientAcked && w.possible < w.required {
		w.failed = true
		w.store.writeFailures.Inc()
		w.store.tenantWriteFailure(w.tenant)
		w.store.finishTrace(w.trace, w.store.engine.Now(), ErrUnavailable)
		w.store.failOp(OpWrite, w.key, w.issuedAt, ErrUnavailable, w.cb)
		return
	}
	if w.clientAcked && w.acked >= w.possible {
		w.emitObservation()
	}
}

// emitObservation hands the coordinator-level view of the write to passive
// monitors once every reachable replica has acknowledged. Both timestamps are
// in the coordinator's frame: the moment the consistency level was satisfied
// and the moment the last reachable replica acknowledged.
func (w *writeState) emitObservation() {
	if w.observed || !w.clientAcked || w.acked == 0 {
		return
	}
	w.observed = true
	ob := WriteObservation{
		IssuedAt:  w.issuedAt,
		AckedAt:   w.ackDecidedAt,
		LastAckAt: w.lastAckAt,
		Replicas:  w.replicas,
		Acked:     w.acked,
	}
	for _, o := range w.store.observers {
		o.ObserveWrite(ob)
	}
}

// completeWrite acknowledges the client after the required replica
// acknowledgements have arrived at the coordinator.
func (s *Store) completeWrite(w *writeState, ackAtCoord time.Duration) {
	now := s.engine.Now()
	clientAck := ackAtCoord + s.cluster.Network().ClientToNode()
	delay := clientAck - now
	if delay < 0 {
		delay = 0
	}
	s.engine.AfterArg(delay, writeClientAckEvent, w)
}

// Write stores a new version of key and invokes cb when the client is
// acknowledged (or when the operation fails). The acknowledgement point is
// determined by the current write consistency level; remaining replicas
// converge asynchronously and the elapsed time until they do is recorded as
// the write's inconsistency window.
func (s *Store) Write(key Key, cb func(Result)) { s.WriteAs(0, key, cb) }

// WriteAs is Write with a tenant tag: the operation contributes to the
// tagged tenant's ground-truth statistics (latency, failures, inconsistency
// window) in addition to the aggregate set. Tag zero is the plain untagged
// write.
func (s *Store) WriteAs(tenant TenantID, key Key, cb func(Result)) {
	now := s.engine.Now()
	if s.closed {
		s.failOp(OpWrite, key, now, ErrStopped, cb)
		return
	}
	tr := s.beginTrace(true, key, now)
	coord, ok := s.pickCoordinatorTenant(tenant)
	if !ok {
		s.writeFailures.Inc()
		s.tenantWriteFailure(tenant)
		s.finishTrace(tr, now, ErrNoNodes)
		s.failOp(OpWrite, key, now, ErrNoNodes, cb)
		return
	}
	replicaIDs := s.appendReplicasTenant(tenant, key)
	if len(replicaIDs) == 0 {
		s.writeFailures.Inc()
		s.tenantWriteFailure(tenant)
		s.finishTrace(tr, now, ErrNoNodes)
		s.failOp(OpWrite, key, now, ErrNoNodes, cb)
		return
	}
	required := s.writeCL.Required(len(replicaIDs))
	live, down := s.partitionReplicas(coord.ID(), replicaIDs)
	if len(live) < required {
		s.writeFailures.Inc()
		s.tenantWriteFailure(tenant)
		s.finishTrace(tr, now, ErrUnavailable)
		s.failOp(OpWrite, key, now, ErrUnavailable, cb)
		return
	}

	s.writes.Inc()
	if t := s.tenant(tenant); t != nil {
		t.writes.Inc()
	}
	if s.keyTenant != nil && tenant > 0 {
		s.keyTenant[key] = tenant
	}
	s.writesSinceTick++
	s.nextVersion++
	ver := s.nextVersion

	state := &writeState{
		store:    s,
		key:      key,
		ver:      ver,
		issuedAt: now,
		tenant:   tenant,
		cb:       cb,
		coord:    coord,
		required: required,
		possible: len(live),
		replicas: len(replicaIDs),
	}
	state.trace = tr
	tr.Add(now, "dispatch", int(coord.ID()))
	state.tracker = writeTracker{
		store:     s,
		key:       key,
		ver:       ver,
		tenant:    tenant,
		remaining: len(replicaIDs),
		trace:     tr,
	}
	// live points into the per-operation scratch buffer, which the next
	// operation overwrites; keep a copy in the state's inline buffer.
	state.live = append(state.liveBuf[:0], live...)

	// Unreachable replicas get hints (or are dropped, counted as lost).
	for _, id := range down {
		s.queueHint(id, key, ver, &state.tracker, coord.ID())
	}

	// Client -> coordinator.
	clientLeg := s.cluster.Network().ClientToNode()
	s.engine.AfterArg(clientLeg, writeDispatchEvent, state)
}

// coordinateWrite runs on the coordinator once the client request arrives:
// the coordinator processes the mutation locally and fans it out to the other
// replicas.
func (s *Store) coordinateWrite(w *writeState, arrival time.Duration) {
	coordDelay, accepted := w.coord.Enqueue(arrival, cluster.ForegroundOp)
	if !accepted {
		w.failed = true
		s.writeFailures.Inc()
		s.tenantWriteFailure(w.tenant)
		w.trace.AddNote(arrival, "coordinate", int(w.coord.ID()), "reject")
		s.finishTrace(w.trace, arrival, ErrUnavailable)
		s.failOp(OpWrite, w.key, w.issuedAt, ErrUnavailable, w.cb)
		return
	}
	coordDone := arrival + coordDelay
	w.trace.Add(coordDone, "coordinate", int(w.coord.ID()))
	net := s.cluster.Network()

	// Bind one fan-out slot per live replica before scheduling anything, so
	// slot addresses are stable when the handlers fire.
	w.fanout = w.fanoutBuf[:0]
	if len(w.live) > len(w.fanoutBuf) {
		w.fanout = make([]writeFanout, 0, len(w.live))
	}
	for _, id := range w.live {
		w.fanout = append(w.fanout, writeFanout{w: w, id: id})
	}

	for i, id := range w.live {
		f := &w.fanout[i]
		if id == w.coord.ID() {
			// The coordinator applies the mutation as part of processing it
			// and acknowledges itself immediately afterwards.
			s.engine.AfterArg(delayUntil(s.engine.Now(), coordDone), writeApplyEvent, f)
			s.engine.AfterArg(delayUntil(s.engine.Now(), coordDone), writeAckEvent, w)
			continue
		}
		sendLeg := net.NodeToNode()
		s.engine.AfterArg(delayUntil(s.engine.Now(), coordDone+sendLeg), writeArriveEvent, f)
	}
}

// applyOnReplica runs on a replica when a replicated mutation arrives. The
// mutation is applied unless it would be older than the drop timeout by the
// time the replica gets to it, in which case it is dropped and becomes a
// hint — the overload behaviour of Dynamo-style stores, and the mechanism
// that blows the inconsistency window up when replicas cannot keep up.
func (s *Store) applyOnReplica(f *writeFanout, arrive time.Duration) {
	w, id := f.w, f.id
	node, ok := s.cluster.Node(id)
	if !ok || !node.Available() || !s.cluster.Network().Reachable(w.coord.ID(), id) {
		// Down, removed, or a partition opened between dispatch and arrival:
		// the mutation cannot be delivered and becomes a hint.
		w.trace.AddNote(arrive, "replica-hint", int(id), "unreachable")
		s.queueHint(id, w.key, w.ver, &w.tracker, w.coord.ID())
		w.onReplicaLost()
		return
	}
	applyDelay, accepted := node.Enqueue(arrive, cluster.ReplicationApply)
	if !accepted {
		w.trace.AddNote(arrive, "replica-hint", int(id), "overload")
		s.queueHint(id, w.key, w.ver, &w.tracker, w.coord.ID())
		w.onReplicaLost()
		return
	}
	applyAt := arrive + applyDelay
	if applyAt-w.issuedAt > s.cfg.MutationDropTimeout {
		s.droppedMutations.Inc()
		w.trace.AddNote(arrive, "replica-hint", int(id), "drop-timeout")
		s.queueHint(id, w.key, w.ver, &w.tracker, w.coord.ID())
		w.onReplicaLost()
		return
	}
	w.trace.Add(arrive, "replica-arrive", int(id))
	s.engine.AfterArg(delayUntil(s.engine.Now(), applyAt), writeApplyEvent, f)
	ackAt := applyAt + s.cluster.Network().NodeToNode()
	s.engine.AfterArg(delayUntil(s.engine.Now(), ackAt), writeAckEvent, w)
}

// readState tracks one in-flight read at the coordinator. The coordinator,
// target list and contacted list are embedded (with inline backing arrays for
// the common consistency levels) so one allocation covers the whole read.
type readState struct {
	store    *Store
	key      Key
	issuedAt time.Duration
	tenant   TenantID
	cb       func(Result)
	coord    *cluster.Node
	// targets is the preference-ordered set of replicas the read contacts.
	targets    []cluster.NodeID
	targetsBuf [8]cluster.NodeID
	// fanout mirrors writeState.fanout: one pre-bound slot per contacted
	// replica, so the read fan-out schedules no per-replica closures.
	fanout    []readFanout
	fanoutBuf [8]readFanout
	// trace is the sampled span tree for this read, nil for unsampled
	// operations (and always nil with tracing off).
	trace *obs.OpTrace

	required  int
	possible  int
	responses int

	freshest     version
	divergent    bool
	contacted    []cluster.NodeID
	contactedBuf [8]cluster.NodeID
	lastSeenAt   time.Duration
	done         bool
}

// readFanout is the per-replica slot of a read's coordinator fan-out.
type readFanout struct {
	r  *readState
	id cluster.NodeID
}

// Package-level ArgHandler trampolines for the read path, mirroring the
// write-path set above.
func readDispatchEvent(arg any, arrival time.Duration) {
	r := arg.(*readState)
	r.store.coordinateRead(r, arrival)
}

func readArriveEvent(arg any, arrive time.Duration) {
	f := arg.(*readFanout)
	f.r.store.readOnReplica(f, arrive)
}

// readRespondEvent fires when a replica's answer arrives back at the
// coordinator; the version is read at response time, as before.
func readRespondEvent(arg any, at time.Duration) {
	f := arg.(*readFanout)
	r := f.r
	v := version(0)
	if rep, ok := r.store.replicas[f.id]; ok {
		v = rep.read(r.key)
	}
	r.onResponse(f.id, v, at)
}

func readClientDoneEvent(arg any, at time.Duration) {
	r := arg.(*readState)
	s := r.store
	latest := s.latestAcked[r.key]
	stale := r.freshest < latest
	if stale {
		s.staleReads.Inc()
		r.trace.AddNote(at, "client-done", 0, "stale")
	} else {
		r.trace.Add(at, "client-done", 0)
	}
	s.finishTrace(r.trace, at, nil)
	if s.cfg.ReadRepair && (r.divergent || stale) {
		s.scheduleReadRepair(r.key, r.contacted)
	}
	latency := at - r.issuedAt
	s.readLatency.ObserveDuration(latency)
	if t := s.tenant(r.tenant); t != nil {
		if stale {
			t.staleReads.Inc()
		}
		t.readLatency.ObserveDuration(latency)
	}
	if r.cb != nil {
		r.cb(Result{
			Kind:        OpRead,
			Key:         r.key,
			IssuedAt:    r.issuedAt,
			CompletedAt: at,
			Latency:     latency,
			Version:     uint64(r.freshest),
			Stale:       stale,
		})
	}
}

// onResponse records one replica's answer arriving back at the coordinator.
func (r *readState) onResponse(id cluster.NodeID, v version, at time.Duration) {
	if r.done {
		return
	}
	r.responses++
	r.contacted = append(r.contacted, id)
	if at > r.lastSeenAt {
		r.lastSeenAt = at
	}
	r.trace.Add(at, "replica-respond", int(id))
	if v != r.freshest && r.responses > 1 {
		r.divergent = true
	}
	if v > r.freshest {
		r.freshest = v
	}
	if r.responses >= r.required {
		r.done = true
		r.trace.Add(at, "quorum", 0)
		r.store.completeRead(r, at)
	}
}

// onReplicaLost records a contacted replica that will not answer.
func (r *readState) onReplicaLost() {
	if r.done {
		return
	}
	r.possible--
	if r.possible < r.required {
		r.done = true
		r.store.readFailures.Inc()
		r.store.tenantReadFailure(r.tenant)
		r.store.finishTrace(r.trace, r.store.engine.Now(), ErrUnavailable)
		r.store.failOp(OpRead, r.key, r.issuedAt, ErrUnavailable, r.cb)
	}
}

// completeRead returns the merged result to the client.
func (s *Store) completeRead(r *readState, lastResponseAt time.Duration) {
	now := s.engine.Now()
	clientDone := lastResponseAt + s.cluster.Network().ClientToNode()
	s.engine.AfterArg(delayUntil(now, clientDone), readClientDoneEvent, r)
}

// Read fetches key and invokes cb with the freshest version observed among
// the replicas the read consistency level requires.
func (s *Store) Read(key Key, cb func(Result)) { s.ReadAs(0, key, cb) }

// ReadAs is Read with a tenant tag, mirroring WriteAs.
func (s *Store) ReadAs(tenant TenantID, key Key, cb func(Result)) {
	now := s.engine.Now()
	if s.closed {
		s.failOp(OpRead, key, now, ErrStopped, cb)
		return
	}
	tr := s.beginTrace(false, key, now)
	coord, ok := s.pickCoordinatorTenant(tenant)
	if !ok {
		s.readFailures.Inc()
		s.tenantReadFailure(tenant)
		s.finishTrace(tr, now, ErrNoNodes)
		s.failOp(OpRead, key, now, ErrNoNodes, cb)
		return
	}
	replicaIDs := s.appendReplicasTenant(tenant, key)
	if len(replicaIDs) == 0 {
		s.readFailures.Inc()
		s.tenantReadFailure(tenant)
		s.finishTrace(tr, now, ErrNoNodes)
		s.failOp(OpRead, key, now, ErrNoNodes, cb)
		return
	}
	required := s.readCL.Required(len(replicaIDs))
	live, _ := s.partitionReplicas(coord.ID(), replicaIDs)
	if len(live) < required {
		s.readFailures.Inc()
		s.tenantReadFailure(tenant)
		s.finishTrace(tr, now, ErrUnavailable)
		s.failOp(OpRead, key, now, ErrUnavailable, cb)
		return
	}

	s.reads.Inc()
	if t := s.tenant(tenant); t != nil {
		t.reads.Inc()
	}
	state := &readState{
		store:    s,
		key:      key,
		issuedAt: now,
		tenant:   tenant,
		cb:       cb,
		coord:    coord,
		required: required,
		possible: required,
	}
	state.trace = tr
	tr.Add(now, "dispatch", int(coord.ID()))
	// Contact exactly `required` live replicas in preference order, as a
	// token-aware driver would. The scratch buffer is copied into the state's
	// inline array because it is overwritten by the next operation.
	state.targets = append(state.targetsBuf[:0], live[:required]...)
	state.contacted = state.contactedBuf[:0]

	clientLeg := s.cluster.Network().ClientToNode()
	s.engine.AfterArg(clientLeg, readDispatchEvent, state)
}

// coordinateRead runs on the coordinator once the client request arrives.
func (s *Store) coordinateRead(r *readState, arrival time.Duration) {
	coordDelay, accepted := r.coord.Enqueue(arrival, cluster.ForegroundOp)
	if !accepted {
		r.done = true
		s.readFailures.Inc()
		s.tenantReadFailure(r.tenant)
		r.trace.AddNote(arrival, "coordinate", int(r.coord.ID()), "reject")
		s.finishTrace(r.trace, arrival, ErrUnavailable)
		s.failOp(OpRead, r.key, r.issuedAt, ErrUnavailable, r.cb)
		return
	}
	coordDone := arrival + coordDelay
	r.trace.Add(coordDone, "coordinate", int(r.coord.ID()))
	net := s.cluster.Network()

	r.fanout = r.fanoutBuf[:0]
	if len(r.targets) > len(r.fanoutBuf) {
		r.fanout = make([]readFanout, 0, len(r.targets))
	}
	for _, id := range r.targets {
		r.fanout = append(r.fanout, readFanout{r: r, id: id})
	}

	for i, id := range r.targets {
		f := &r.fanout[i]
		if id == r.coord.ID() {
			// The coordinator answers from its own replica once it has
			// processed the request.
			s.engine.AfterArg(delayUntil(s.engine.Now(), coordDone), readRespondEvent, f)
			continue
		}
		sendLeg := net.NodeToNode()
		s.engine.AfterArg(delayUntil(s.engine.Now(), coordDone+sendLeg), readArriveEvent, f)
	}
}

// readOnReplica runs on a replica when a read request arrives; the replica
// reports the version it holds once it has processed the request.
func (s *Store) readOnReplica(f *readFanout, arrive time.Duration) {
	r, id := f.r, f.id
	node, ok := s.cluster.Node(id)
	if !ok || !node.Available() || !s.cluster.Network().Reachable(r.coord.ID(), id) {
		r.trace.AddNote(arrive, "replica-lost", int(id), "unreachable")
		r.onReplicaLost()
		return
	}
	delay, accepted := node.Enqueue(arrive, cluster.ForegroundOp)
	if !accepted {
		r.trace.AddNote(arrive, "replica-lost", int(id), "overload")
		r.onReplicaLost()
		return
	}
	processAt := arrive + delay
	r.trace.Add(arrive, "replica-arrive", int(id))
	respondAt := processAt + s.cluster.Network().NodeToNode()
	s.engine.AfterArg(delayUntil(s.engine.Now(), respondAt), readRespondEvent, f)
}

// beginTrace fronts one operation past the tracer's sampler: a trace staged
// by an upstream layer (the tenant runtime, which already counted the op) is
// adopted, otherwise the sampler decides. Returns nil — and does no work —
// for unsampled operations or when tracing is off.
func (s *Store) beginTrace(write bool, key Key, now time.Duration) *obs.OpTrace {
	if s.tracer == nil {
		return nil
	}
	if tr, fronted := s.tracer.Handoff(); fronted {
		return tr
	}
	return s.tracer.Begin("", write, string(key), now)
}

// finishTrace closes a sampled span tree on a completion or failure path.
// Nil-safe on both the trace and the tracer, and idempotent per trace.
func (s *Store) finishTrace(tr *obs.OpTrace, at time.Duration, err error) {
	if tr == nil || s.tracer == nil {
		return
	}
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	s.tracer.Finish(tr, at, msg)
}

// failOp delivers a failure result after a minimal client round trip.
func (s *Store) failOp(kind OpKind, key Key, issued time.Duration, err error, cb func(Result)) {
	if cb == nil {
		return
	}
	delay := s.cluster.Network().ClientToNode() * 2
	s.engine.After(delay, func(at time.Duration) {
		cb(Result{
			Kind:        kind,
			Key:         key,
			Err:         err,
			IssuedAt:    issued,
			CompletedAt: at,
			Latency:     at - issued,
		})
	})
}

// pickCoordinator selects a random available node to coordinate an
// operation, mirroring a client driver with a round-robin/token-aware
// policy.
func (s *Store) pickCoordinator() (*cluster.Node, bool) {
	nodes := s.cluster.AvailableNodes()
	if len(nodes) == 0 {
		return nil, false
	}
	return nodes[s.rng.Intn(len(nodes))], true
}

// appendReplicas resolves the key's preference list into the store's scratch
// buffer. The result is valid until the next operation; callers that need to
// retain it past an event boundary must copy it.
func (s *Store) appendReplicas(key Key) []cluster.NodeID {
	s.replicaScratch = s.ring.AppendReplicasFor(s.replicaScratch[:0], key, s.rf)
	return s.replicaScratch
}

// partitionReplicas splits a preference list into live and unavailable
// replica IDs from the point of view of the coordinating node: a replica is
// live only when it is up AND reachable from the coordinator under the
// current network partition. Both results live in per-store scratch buffers
// that the next operation overwrites.
func (s *Store) partitionReplicas(coord cluster.NodeID, ids []cluster.NodeID) (live, down []cluster.NodeID) {
	s.liveScratch = s.liveScratch[:0]
	s.downScratch = s.downScratch[:0]
	net := s.cluster.Network()
	for _, id := range ids {
		if n, ok := s.cluster.Node(id); ok && n.Available() && net.Reachable(coord, id) {
			s.liveScratch = append(s.liveScratch, id)
		} else {
			s.downScratch = append(s.downScratch, id)
		}
	}
	return s.liveScratch, s.downScratch
}

// delayUntil converts an absolute virtual time into a non-negative delay from
// now.
func delayUntil(now, at time.Duration) time.Duration {
	if at <= now {
		return 0
	}
	return at - now
}

// scheduleApply arranges for a replica to apply a version at the given
// virtual time and for the write tracker to learn about it.
func (s *Store) scheduleApply(id cluster.NodeID, key Key, ver version, at time.Duration, tracker *writeTracker) {
	s.engine.After(delayUntil(s.engine.Now(), at), func(applied time.Duration) {
		if rep, ok := s.replicas[id]; ok {
			rep.apply(key, ver)
		}
		if tracker != nil {
			tracker.applied(applied)
		}
	})
}

// maxPendingHintsPerNode bounds the hint backlog kept for one replica; real
// stores bound their hint windows the same way and fall back to repair once
// the backlog overflows.
const maxPendingHintsPerNode = 100000

// hintDeliveryCapacityShare is the fraction of a replica's throughput one
// hint-delivery round may consume. Replaying hints costs the same node work
// as regular replication applies, so an unthrottled replay would keep an
// already struggling replica saturated forever; real stores throttle hint
// delivery for exactly this reason.
const hintDeliveryCapacityShare = 0.15

// maxHintsPerDelivery is the absolute ceiling on hints replayed in one round.
const maxHintsPerDelivery = 20000

// queueHint records a mutation destined for an unavailable (or overloaded)
// replica. With hinted handoff disabled and no anti-entropy, the update is
// lost until a newer write arrives (counted as a lost update) and the tracker
// is discounted so the window stays defined.
func (s *Store) queueHint(id cluster.NodeID, key Key, ver version, tracker *writeTracker, origin cluster.NodeID) {
	if !s.cfg.HintedHandoff && s.cfg.AntiEntropyInterval <= 0 {
		s.lostUpdates.Inc()
		if tracker != nil {
			tracker.discount(s.engine.Now())
		}
		return
	}
	if len(s.pendingHints[id]) >= maxPendingHintsPerNode {
		// Hint window overflow: give up on tracking this mutation and leave
		// convergence to anti-entropy.
		s.lostUpdates.Inc()
		if tracker != nil {
			tracker.discount(s.engine.Now())
		}
		return
	}
	s.hintsQueued.Inc()
	s.pendingHints[id] = append(s.pendingHints[id], pendingApply{key: key, ver: ver, tracker: tracker, origin: origin})
}

// retryHints periodically redelivers queued hints to nodes that are
// available, so dropped mutations converge without waiting for the full
// anti-entropy sweep.
func (s *Store) retryHints(time.Duration) {
	for _, id := range s.hintedNodes() {
		if node, ok := s.cluster.Node(id); ok && node.Available() {
			s.deliverHints(id)
		}
	}
}

// hintedNodes returns the nodes with queued hints in ascending ID order.
// Delivery draws network jitter from a shared random stream and schedules
// events, so iterating the pendingHints map directly would let Go's
// randomized map order leak into the simulation and break reproducibility.
// The result lives in a scratch buffer reused across sweeps.
func (s *Store) hintedNodes() []cluster.NodeID {
	ids := s.hintIDScratch[:0]
	for id := range s.pendingHints {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	s.hintIDScratch = ids
	return ids
}

// deliverHints flushes queued hints (up to maxHintsPerDelivery) to a node
// that has become available. Each hint is replayed as a replication apply at
// the time it would actually reach the node.
func (s *Store) deliverHints(id cluster.NodeID) {
	hints := s.pendingHints[id]
	if len(hints) == 0 {
		return
	}
	node, ok := s.cluster.Node(id)
	net := s.cluster.Network()
	if !ok || !node.Available() || net.Isolated(id) {
		// Still down or cut off behind a partition (hint replay originates on
		// the majority side); keep the backlog queued.
		return
	}
	// Throttle the replay to a fraction of the replica's capacity over one
	// retry interval so hint delivery cannot keep the replica saturated.
	limit := int(hintDeliveryCapacityShare * node.Config().CapacityOpsPerSec * s.cfg.HintRetryInterval.Seconds())
	if limit < 100 {
		limit = 100
	}
	if limit > maxHintsPerDelivery {
		limit = maxHintsPerDelivery
	}
	var batch []pendingApply
	if net.PartitionActive() {
		// A hint replays only when its originating coordinator's side can
		// reach the target: a write acknowledged on the minority side of a
		// partition must stay invisible to the majority until the heal, or
		// the split-brain inconsistency window would close at the first
		// retry tick instead of at the heal. Scan for a deliverable hint
		// first: when the whole backlog is cross-cut (the common case during
		// a long partition) the retry tick must not rebuild it.
		deliverable := false
		for _, h := range hints {
			if net.Reachable(h.origin, id) {
				deliverable = true
				break
			}
		}
		if !deliverable {
			return
		}
		keep := make([]pendingApply, 0, len(hints))
		for _, h := range hints {
			if len(batch) < limit && net.Reachable(h.origin, id) {
				batch = append(batch, h)
			} else {
				keep = append(keep, h)
			}
		}
		if len(keep) > 0 {
			s.pendingHints[id] = keep
		} else {
			delete(s.pendingHints, id)
		}
	} else if len(hints) > limit {
		batch = hints[:limit]
		remaining := make([]pendingApply, len(hints)-limit)
		copy(remaining, hints[limit:])
		s.pendingHints[id] = remaining
	} else {
		batch = hints
		delete(s.pendingHints, id)
	}
	if len(batch) == 0 {
		return
	}
	now := s.engine.Now()
	at := now
	for _, h := range batch {
		h := h
		at += s.cfg.HintDeliveryDelay
		arrive := at + net.NodeToNode()
		s.engine.After(delayUntil(now, arrive), func(arrived time.Duration) {
			// A partition may have opened between batch assembly and
			// arrival; a delivery that can no longer cross the (new) cut is
			// requeued rather than applied, the same arrival-time recheck
			// every other replication path performs.
			if !net.Reachable(h.origin, id) || net.Isolated(id) {
				s.pendingHints[id] = append(s.pendingHints[id], h)
				return
			}
			target, ok := s.cluster.Node(id)
			if !ok || !target.Available() {
				s.lostUpdates.Inc()
				if h.tracker != nil {
					h.tracker.discount(arrived)
				}
				return
			}
			d, okApply := target.Enqueue(arrived, cluster.ReplicationApply)
			if !okApply {
				s.lostUpdates.Inc()
				if h.tracker != nil {
					h.tracker.discount(arrived)
				}
				return
			}
			s.hintsDelivered.Inc()
			s.scheduleApply(id, h.key, h.ver, arrived+d, h.tracker)
		})
	}
}

// runAntiEntropy periodically repairs divergence: every queued hint for an
// available node is delivered, and every live replica is brought up to the
// latest acknowledged version of the keys it owns.
func (s *Store) runAntiEntropy(time.Duration) {
	s.aeRuns.Inc()
	for _, id := range s.hintedNodes() {
		s.deliverHints(id)
	}
	s.repairAll()
}

// repairAll brings every live replica up to the newest acknowledged version
// of each key it is responsible for. It models the effect of a completed
// Merkle-tree repair without tracking per-key digests. Crashed replicas are
// skipped — a repair stream cannot reach a node that is down — and the whole
// sweep aborts while a partition is active: a repair session needs the
// replica set connected, and latestAcked holds cluster-wide knowledge
// (including minority-acknowledged versions) that no single side possesses
// during the cut. Divergence therefore persists until nodes recover or the
// partition heals, which is exactly the window the fault scenarios measure.
func (s *Store) repairAll() {
	net := s.cluster.Network()
	if net.PartitionActive() {
		return
	}
	for key, ver := range s.latestAcked {
		for _, id := range s.replicasForRepair(key) {
			rep, ok := s.replicas[id]
			if !ok {
				continue
			}
			if node, up := s.cluster.Node(id); !up || !node.Available() {
				continue
			}
			if rep.read(key) < ver {
				rep.apply(key, ver)
				s.readRepairs.Inc()
			}
		}
	}
}

// scheduleReadRepair propagates the newest acknowledged version of key to
// the replicas that were contacted by a read and found (or suspected) stale.
func (s *Store) scheduleReadRepair(key Key, contacted []cluster.NodeID) {
	latest := s.latestAcked[key]
	if latest == 0 {
		return
	}
	// latestAcked is cluster-wide knowledge: while a partition is active it
	// includes versions acknowledged on the *other* side of the cut (a
	// minority coordinator keeps acking CL=ONE writes), which no repair
	// message could physically carry across. Repairing from it in either
	// direction would close the split-brain window early, so read repair
	// pauses entirely for the duration of the partition, exactly like the
	// anti-entropy sweep.
	if s.cluster.Network().PartitionActive() {
		return
	}
	for _, id := range contacted {
		rep, ok := s.replicas[id]
		if !ok || rep.read(key) >= latest {
			continue
		}
		id := id
		s.engine.After(s.cfg.ReadRepairDelay, func(time.Duration) {
			// The node may have crashed or been partitioned away since the
			// read; a repair mutation cannot reach it then.
			node, up := s.cluster.Node(id)
			if !up || !node.Available() || s.cluster.Network().Isolated(id) {
				return
			}
			if rep, ok := s.replicas[id]; ok && rep.read(key) < latest {
				rep.apply(key, latest)
				s.readRepairs.Inc()
			}
		})
	}
}

// applied is called when one replica has applied the tracked write.
func (t *writeTracker) applied(at time.Duration) {
	if t.resolved {
		return
	}
	if at > t.lastApply {
		t.lastApply = at
	}
	t.remaining--
	if t.remaining <= 0 {
		t.resolve()
	}
}

// discount removes a replica that will never apply the write (node removed
// or update dropped) from the tracker.
func (t *writeTracker) discount(at time.Duration) {
	if t.resolved {
		return
	}
	if at > t.lastApply {
		t.lastApply = at
	}
	t.remaining--
	if t.remaining <= 0 {
		t.resolve()
	}
}

// setAck records when the client was acknowledged. If every replica has
// already applied the write (possible for strict consistency levels, where
// the client acknowledgement trails the last apply), the window is recorded
// now.
func (t *writeTracker) setAck(at time.Duration) {
	t.ackAt = at
	if t.resolved {
		t.record()
	}
}

// resolve is called when no replica remains outstanding. The window is
// recorded immediately when the acknowledgement time is already known;
// otherwise setAck records it once the client acknowledgement fires.
func (t *writeTracker) resolve() {
	if t.resolved {
		return
	}
	t.resolved = true
	if t.ackAt != 0 {
		t.record()
	}
}

// record writes the window into the store's ground-truth histograms exactly
// once. Writes that were never acknowledged have no client-observable window
// and are skipped.
func (t *writeTracker) record() {
	if t.recorded || t.ackAt == 0 {
		return
	}
	t.recorded = true
	window := t.lastApply - t.ackAt
	if window < 0 {
		window = 0
	}
	if t.trace != nil {
		t.trace.Add(t.lastApply, "sla-account", 0)
		t.store.finishTrace(t.trace, t.lastApply, nil)
	}
	t.store.windowHist.ObserveDuration(window)
	t.store.recentWindow.Observe(window.Seconds())
	if ts := t.store.tenant(t.tenant); ts != nil {
		ts.windowHist.ObserveDuration(window)
		ts.recentWindow.Observe(window.Seconds())
	}
}
