package store

import "testing"

// FuzzParseConsistencyLevel pins that the parser never panics on arbitrary
// input and that accepted levels round-trip through String(): the symbolic
// names are the store's wire format in specs, CLIs and suite exports.
func FuzzParseConsistencyLevel(f *testing.F) {
	f.Add("ONE")
	f.Add("two")
	f.Add("QUORUM")
	f.Add("all")
	f.Add("")
	f.Add("QuOrUm")
	f.Add("EACH_QUORUM")
	f.Add("ONE ")

	f.Fuzz(func(t *testing.T, s string) {
		cl, err := ParseConsistencyLevel(s)
		if err != nil {
			if cl != 0 {
				t.Fatalf("ParseConsistencyLevel(%q) returned level %v alongside error %v", s, cl, err)
			}
			return
		}
		if cl < One || cl > All {
			t.Fatalf("ParseConsistencyLevel(%q) = %d outside the defined levels", s, int(cl))
		}
		back, err := ParseConsistencyLevel(cl.String())
		if err != nil || back != cl {
			t.Fatalf("level %v does not round-trip through String(): got (%v, %v)", cl, back, err)
		}
		// Required must stay within [1, rf] for any parsed level.
		for _, rf := range []int{1, 2, 3, 5, 9} {
			if n := cl.Required(rf); n < 1 || n > rf {
				t.Fatalf("%v.Required(%d) = %d outside [1, %d]", cl, rf, n, rf)
			}
		}
	})
}
