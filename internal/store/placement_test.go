package store

import (
	"slices"
	"testing"

	"autonosql/internal/cluster"
)

// TestRingAppendReplicasBiased pins the biased walk: a preferred set anchors
// the front of the preference list, the complement fills the rest, and an
// empty set (or a set covering nothing) degrades to the plain walk.
func TestRingAppendReplicasBiased(t *testing.T) {
	ring := NewRing(16)
	for id := cluster.NodeID(1); id <= 6; id++ {
		ring.Add(id)
	}
	key := Key("some-key")
	dedicated := []cluster.NodeID{2, 5}

	// preferIn=true: the dedicated nodes lead the list.
	got := ring.AppendReplicasBiased(nil, key, 3, dedicated, true)
	if len(got) != 3 {
		t.Fatalf("biased list %v, want 3 entries", got)
	}
	if !slices.Contains(dedicated, got[0]) || !slices.Contains(dedicated, got[1]) {
		t.Errorf("pinned walk %v does not lead with the dedicated nodes %v", got, dedicated)
	}
	if slices.Contains(dedicated, got[2]) {
		t.Errorf("pinned walk %v found a third dedicated node in a set of two", got)
	}

	// preferIn=false: no dedicated node appears while the shared pool can
	// satisfy rf.
	got = ring.AppendReplicasBiased(got[:0], key, 3, dedicated, false)
	for _, id := range got {
		if slices.Contains(dedicated, id) {
			t.Errorf("shared walk %v landed on a dedicated node", got)
		}
	}

	// Spill: rf beyond the shared pool falls back onto dedicated nodes
	// rather than shrinking the replica set.
	got = ring.AppendReplicasBiased(got[:0], key, 6, dedicated, false)
	if len(got) != 6 {
		t.Errorf("spill walk returned %d replicas, want 6", len(got))
	}

	// Empty set: bit-for-bit the plain walk.
	plain := ring.AppendReplicasFor(nil, key, 3)
	biased := ring.AppendReplicasBiased(nil, key, 3, nil, false)
	for i := range plain {
		if plain[i] != biased[i] {
			t.Fatalf("empty-set biased walk %v != plain walk %v", biased, plain)
		}
	}
}

// TestStorePinClass pins the store-level placement lifecycle: pinning tags
// nodes and steers the pinned tenant's replica sets and coordinators onto
// the dedicated pool, unpinning restores the plain paths, and a second pin
// is refused while one is active.
func TestStorePinClass(t *testing.T) {
	rig := newBenchRig(t, 5)
	st := rig.store
	st.RegisterTenants(2)

	plainReplicas := append([]cluster.NodeID(nil), st.appendReplicasTenant(1, rig.keys[0])...)

	nodes := st.cluster.AvailableNodes()
	dedicated := []cluster.NodeID{nodes[0].ID(), nodes[1].ID(), nodes[2].ID()}
	if err := st.PinClass("gold", []TenantID{1}, dedicated); err != nil {
		t.Fatalf("PinClass: %v", err)
	}
	if err := st.PinClass("silver", []TenantID{2}, dedicated); err == nil {
		t.Error("second PinClass accepted while one is active")
	}
	if st.PinnedClass() != "gold" {
		t.Errorf("PinnedClass = %q", st.PinnedClass())
	}
	for _, id := range dedicated {
		n, _ := st.cluster.Node(id)
		if n.Class() != "gold" {
			t.Errorf("dedicated node %v not tagged (class=%q)", id, n.Class())
		}
	}

	// The pinned tenant's replica set is anchored on the dedicated pool.
	reps := st.appendReplicasTenant(1, rig.keys[0])
	for _, id := range reps {
		if !slices.Contains(dedicated, id) {
			t.Errorf("pinned tenant replica %v outside the dedicated pool %v", id, dedicated)
		}
	}
	// The other tenant's set leads with the shared pool (2 shared nodes,
	// rf=3: two shared then one spill).
	reps = st.appendReplicasTenant(2, rig.keys[0])
	if slices.Contains(dedicated, reps[0]) || slices.Contains(dedicated, reps[1]) {
		t.Errorf("unpinned tenant set %v does not lead with the shared pool", reps)
	}

	// Coordinators are steered the same way.
	for i := 0; i < 20; i++ {
		if c, ok := st.pickCoordinatorTenant(1); !ok || !slices.Contains(dedicated, c.ID()) {
			t.Fatalf("pinned tenant coordinator %v outside the dedicated pool", c.ID())
		}
		if c, ok := st.pickCoordinatorTenant(2); !ok || slices.Contains(dedicated, c.ID()) {
			t.Fatalf("unpinned tenant coordinator %v inside the dedicated pool", c.ID())
		}
	}

	if err := st.UnpinClass(); err != nil {
		t.Fatalf("UnpinClass: %v", err)
	}
	if err := st.UnpinClass(); err == nil {
		t.Error("UnpinClass accepted with nothing pinned")
	}
	for _, id := range dedicated {
		n, _ := st.cluster.Node(id)
		if n.Class() != "" {
			t.Errorf("node %v still tagged after unpin", id)
		}
	}
	after := st.appendReplicasTenant(1, rig.keys[0])
	for i := range plainReplicas {
		if after[i] != plainReplicas[i] {
			t.Fatalf("replica set after unpin %v != original %v", after, plainReplicas)
		}
	}
}

// TestPlacementOpsAllocationFree pins that the class-aware selection paths
// add no allocations to the operation hot path: a full write and read under
// an active placement stays within the same bounds the plain path is held
// to.
func TestPlacementOpsAllocationFree(t *testing.T) {
	rig := newBenchRig(t, 5)
	st := rig.store
	st.RegisterTenants(1)
	nodes := st.cluster.AvailableNodes()
	if err := st.PinClass("gold", []TenantID{1}, []cluster.NodeID{nodes[0].ID(), nodes[1].ID(), nodes[2].ID()}); err != nil {
		t.Fatalf("PinClass: %v", err)
	}

	fired := 0
	cb := func(Result) { fired++ }
	issued := 0
	for ; issued < 128; issued++ {
		st.WriteAs(1, rig.keys[issued%len(rig.keys)], cb)
		rig.settle(t, &fired, issued+1)
	}

	avg := testing.AllocsPerRun(300, func() {
		issued++
		st.WriteAs(1, rig.keys[issued%len(rig.keys)], cb)
		rig.settle(t, &fired, issued)
	})
	if avg > maxWriteAllocs {
		t.Errorf("pinned write path allocates %.1f objects per op, want <= %d", avg, maxWriteAllocs)
	}
	avg = testing.AllocsPerRun(300, func() {
		issued++
		st.ReadAs(1, rig.keys[issued%len(rig.keys)], cb)
		rig.settle(t, &fired, issued)
	})
	if avg > maxReadAllocs {
		t.Errorf("pinned read path allocates %.1f objects per op, want <= %d", avg, maxReadAllocs)
	}

	// The biased selection helpers themselves are allocation-free with
	// warmed scratch buffers.
	coord := nodes[0].ID()
	avg = testing.AllocsPerRun(300, func() {
		replicas := st.appendReplicasTenant(1, rig.keys[0])
		st.partitionReplicas(coord, replicas)
		st.pickCoordinatorTenant(1)
	})
	if avg != 0 {
		t.Errorf("placement selection allocates %.1f objects per op, want 0", avg)
	}
}
