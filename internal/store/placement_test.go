package store

import (
	"slices"
	"testing"

	"autonosql/internal/cluster"
)

// TestRingAppendReplicasBiased pins the biased walk: a preferred set anchors
// the front of the preference list, the complement fills the rest, and an
// empty set (or a set covering nothing) degrades to the plain walk.
func TestRingAppendReplicasBiased(t *testing.T) {
	ring := NewRing(16)
	for id := cluster.NodeID(1); id <= 6; id++ {
		ring.Add(id)
	}
	key := Key("some-key")
	dedicated := []cluster.NodeID{2, 5}

	// preferIn=true: the dedicated nodes lead the list.
	got := ring.AppendReplicasBiased(nil, key, 3, dedicated, true)
	if len(got) != 3 {
		t.Fatalf("biased list %v, want 3 entries", got)
	}
	if !slices.Contains(dedicated, got[0]) || !slices.Contains(dedicated, got[1]) {
		t.Errorf("pinned walk %v does not lead with the dedicated nodes %v", got, dedicated)
	}
	if slices.Contains(dedicated, got[2]) {
		t.Errorf("pinned walk %v found a third dedicated node in a set of two", got)
	}

	// preferIn=false: no dedicated node appears while the shared pool can
	// satisfy rf.
	got = ring.AppendReplicasBiased(got[:0], key, 3, dedicated, false)
	for _, id := range got {
		if slices.Contains(dedicated, id) {
			t.Errorf("shared walk %v landed on a dedicated node", got)
		}
	}

	// Spill: rf beyond the shared pool falls back onto dedicated nodes
	// rather than shrinking the replica set.
	got = ring.AppendReplicasBiased(got[:0], key, 6, dedicated, false)
	if len(got) != 6 {
		t.Errorf("spill walk returned %d replicas, want 6", len(got))
	}

	// Empty set: bit-for-bit the plain walk.
	plain := ring.AppendReplicasFor(nil, key, 3)
	biased := ring.AppendReplicasBiased(nil, key, 3, nil, false)
	for i := range plain {
		if plain[i] != biased[i] {
			t.Fatalf("empty-set biased walk %v != plain walk %v", biased, plain)
		}
	}
}

// TestStorePinClass pins the store-level placement lifecycle: pinning tags
// nodes and steers the pinned tenant's replica sets and coordinators onto
// the dedicated pool, unpinning restores the plain paths, and a second pin
// claiming already-dedicated nodes (or re-pinning the same class) is
// refused.
func TestStorePinClass(t *testing.T) {
	rig := newBenchRig(t, 5)
	st := rig.store
	st.RegisterTenants(2)

	plainReplicas := append([]cluster.NodeID(nil), st.appendReplicasTenant(1, rig.keys[0])...)

	nodes := st.cluster.AvailableNodes()
	dedicated := []cluster.NodeID{nodes[0].ID(), nodes[1].ID(), nodes[2].ID()}
	if err := st.PinClass("gold", []TenantID{1}, dedicated); err != nil {
		t.Fatalf("PinClass: %v", err)
	}
	if err := st.PinClass("silver", []TenantID{2}, dedicated); err == nil {
		t.Error("PinClass accepted nodes already dedicated to another class")
	}
	if err := st.PinClass("gold", []TenantID{1}, []cluster.NodeID{nodes[3].ID()}); err == nil {
		t.Error("PinClass accepted an already-pinned class")
	}
	if st.PinnedClass() != "gold" {
		t.Errorf("PinnedClass = %q", st.PinnedClass())
	}
	for _, id := range dedicated {
		n, _ := st.cluster.Node(id)
		if n.Class() != "gold" {
			t.Errorf("dedicated node %v not tagged (class=%q)", id, n.Class())
		}
	}

	// The pinned tenant's replica set is anchored on the dedicated pool.
	reps := st.appendReplicasTenant(1, rig.keys[0])
	for _, id := range reps {
		if !slices.Contains(dedicated, id) {
			t.Errorf("pinned tenant replica %v outside the dedicated pool %v", id, dedicated)
		}
	}
	// The other tenant's set leads with the shared pool (2 shared nodes,
	// rf=3: two shared then one spill).
	reps = st.appendReplicasTenant(2, rig.keys[0])
	if slices.Contains(dedicated, reps[0]) || slices.Contains(dedicated, reps[1]) {
		t.Errorf("unpinned tenant set %v does not lead with the shared pool", reps)
	}

	// Coordinators are steered the same way.
	for i := 0; i < 20; i++ {
		if c, ok := st.pickCoordinatorTenant(1); !ok || !slices.Contains(dedicated, c.ID()) {
			t.Fatalf("pinned tenant coordinator %v outside the dedicated pool", c.ID())
		}
		if c, ok := st.pickCoordinatorTenant(2); !ok || slices.Contains(dedicated, c.ID()) {
			t.Fatalf("unpinned tenant coordinator %v inside the dedicated pool", c.ID())
		}
	}

	if err := st.UnpinClass(); err != nil {
		t.Fatalf("UnpinClass: %v", err)
	}
	if err := st.UnpinClass(); err == nil {
		t.Error("UnpinClass accepted with nothing pinned")
	}
	for _, id := range dedicated {
		n, _ := st.cluster.Node(id)
		if n.Class() != "" {
			t.Errorf("node %v still tagged after unpin", id)
		}
	}
	after := st.appendReplicasTenant(1, rig.keys[0])
	for i := range plainReplicas {
		if after[i] != plainReplicas[i] {
			t.Fatalf("replica set after unpin %v != original %v", after, plainReplicas)
		}
	}
}

// TestPlacementOpsAllocationFree pins that the class-aware selection paths
// add no allocations to the operation hot path: a full write and read under
// an active placement stays within the same bounds the plain path is held
// to.
func TestPlacementOpsAllocationFree(t *testing.T) {
	rig := newBenchRig(t, 5)
	st := rig.store
	st.RegisterTenants(1)
	nodes := st.cluster.AvailableNodes()
	if err := st.PinClass("gold", []TenantID{1}, []cluster.NodeID{nodes[0].ID(), nodes[1].ID(), nodes[2].ID()}); err != nil {
		t.Fatalf("PinClass: %v", err)
	}

	fired := 0
	cb := func(Result) { fired++ }
	issued := 0
	for ; issued < 128; issued++ {
		st.WriteAs(1, rig.keys[issued%len(rig.keys)], cb)
		rig.settle(t, &fired, issued+1)
	}

	avg := testing.AllocsPerRun(300, func() {
		issued++
		st.WriteAs(1, rig.keys[issued%len(rig.keys)], cb)
		rig.settle(t, &fired, issued)
	})
	if avg > maxWriteAllocs {
		t.Errorf("pinned write path allocates %.1f objects per op, want <= %d", avg, maxWriteAllocs)
	}
	avg = testing.AllocsPerRun(300, func() {
		issued++
		st.ReadAs(1, rig.keys[issued%len(rig.keys)], cb)
		rig.settle(t, &fired, issued)
	})
	if avg > maxReadAllocs {
		t.Errorf("pinned read path allocates %.1f objects per op, want <= %d", avg, maxReadAllocs)
	}

	// The biased selection helpers themselves are allocation-free with
	// warmed scratch buffers.
	coord := nodes[0].ID()
	avg = testing.AllocsPerRun(300, func() {
		replicas := st.appendReplicasTenant(1, rig.keys[0])
		st.partitionReplicas(coord, replicas)
		st.pickCoordinatorTenant(1)
	})
	if avg != 0 {
		t.Errorf("placement selection allocates %.1f objects per op, want 0", avg)
	}
}

// TestStoreMultiPinClass pins the multi-class placement semantics: pinning a
// second class adds a second dedicated pool instead of displacing the first,
// each class's tenants are steered onto their own pool, unpinned tenants are
// steered away from the union, and unpinning peels placements back one at a
// time (most recent first) without disturbing the older ones.
func TestStoreMultiPinClass(t *testing.T) {
	rig := newBenchRig(t, 7)
	st := rig.store
	st.RegisterTenants(3)

	nodes := st.cluster.AvailableNodes()
	goldPool := []cluster.NodeID{nodes[0].ID(), nodes[1].ID()}
	silverPool := []cluster.NodeID{nodes[2].ID(), nodes[3].ID()}

	if err := st.PinClass("gold", []TenantID{1}, goldPool); err != nil {
		t.Fatalf("PinClass(gold): %v", err)
	}
	if err := st.PinClass("silver", []TenantID{2}, silverPool); err != nil {
		t.Fatalf("PinClass(silver) displaced or refused while gold active: %v", err)
	}
	if !st.ClassPinned("gold") || !st.ClassPinned("silver") {
		t.Fatalf("ClassPinned gold=%v silver=%v, want both true",
			st.ClassPinned("gold"), st.ClassPinned("silver"))
	}
	for _, id := range goldPool {
		n, _ := st.cluster.Node(id)
		if n.Class() != "gold" {
			t.Errorf("gold node %v lost its tag after the second pin (class=%q)", id, n.Class())
		}
	}
	union := st.PlacementNodes()
	for _, id := range append(append([]cluster.NodeID(nil), goldPool...), silverPool...) {
		if !slices.Contains(union, id) {
			t.Errorf("dedicated union %v is missing node %v", union, id)
		}
	}

	// Each pinned tenant's replica set leads with its own class's pool; the
	// unpinned tenant's set leads with the shared remainder.
	key := rig.keys[0]
	reps := st.appendReplicasTenant(1, key)
	if !slices.Contains(goldPool, reps[0]) || !slices.Contains(goldPool, reps[1]) {
		t.Errorf("gold tenant replicas %v do not lead with the gold pool %v", reps, goldPool)
	}
	reps = st.appendReplicasTenant(2, key)
	if !slices.Contains(silverPool, reps[0]) || !slices.Contains(silverPool, reps[1]) {
		t.Errorf("silver tenant replicas %v do not lead with the silver pool %v", reps, silverPool)
	}
	reps = st.appendReplicasTenant(3, key)
	for _, id := range reps {
		if slices.Contains(union, id) {
			t.Errorf("unpinned tenant replicas %v landed on dedicated node %v", reps, id)
		}
	}

	// Coordinators are steered the same way.
	for i := 0; i < 20; i++ {
		if c, ok := st.pickCoordinatorTenant(1); !ok || !slices.Contains(goldPool, c.ID()) {
			t.Fatalf("gold tenant coordinator %v outside the gold pool", c.ID())
		}
		if c, ok := st.pickCoordinatorTenant(2); !ok || !slices.Contains(silverPool, c.ID()) {
			t.Fatalf("silver tenant coordinator %v outside the silver pool", c.ID())
		}
		if c, ok := st.pickCoordinatorTenant(3); !ok || slices.Contains(union, c.ID()) {
			t.Fatalf("unpinned tenant coordinator %v inside a dedicated pool", c.ID())
		}
	}

	// Unpinning peels the most recent placement; the older one stays intact.
	if err := st.UnpinClass(); err != nil {
		t.Fatalf("UnpinClass: %v", err)
	}
	if st.ClassPinned("silver") {
		t.Error("silver still pinned after unpin")
	}
	if !st.ClassPinned("gold") {
		t.Error("gold placement lost when silver was unpinned")
	}
	reps = st.appendReplicasTenant(1, key)
	if !slices.Contains(goldPool, reps[0]) || !slices.Contains(goldPool, reps[1]) {
		t.Errorf("gold tenant replicas %v no longer biased after silver unpin", reps)
	}
	// The former silver tenant is unpinned now and biases away from gold.
	reps = st.appendReplicasTenant(2, key)
	if slices.Contains(goldPool, reps[0]) {
		t.Errorf("former silver tenant replicas %v lead with the gold pool", reps)
	}
	if err := st.UnpinClass(); err != nil {
		t.Fatalf("UnpinClass(gold): %v", err)
	}
	if err := st.UnpinClass(); err == nil {
		t.Error("UnpinClass accepted with nothing pinned")
	}
	for _, id := range union {
		n, _ := st.cluster.Node(id)
		if n.Class() != "" {
			t.Errorf("node %v still tagged after both unpins", id)
		}
	}
}
