package store

import (
	"errors"
	"fmt"
	"math/rand"
	"slices"
	"time"

	"autonosql/internal/cluster"
	"autonosql/internal/metrics"
	"autonosql/internal/obs"
	"autonosql/internal/sim"
)

// Config is the static configuration of the store. The consistency-related
// fields (replication factor, read/write consistency levels) are the knobs
// the paper's autonomous system adjusts at run time; they can be changed
// later through the Set* methods.
type Config struct {
	// ReplicationFactor is the number of replicas per key.
	ReplicationFactor int
	// ReadConsistency is the consistency level applied to reads.
	ReadConsistency ConsistencyLevel
	// WriteConsistency is the consistency level applied to writes.
	WriteConsistency ConsistencyLevel
	// ReadRepair repairs stale replicas touched by a read in the background.
	ReadRepair bool
	// HintedHandoff queues writes destined for unavailable replicas and
	// delivers them when the replica returns.
	HintedHandoff bool
	// AntiEntropyInterval is the period of the background repair process; a
	// zero value disables anti-entropy.
	AntiEntropyInterval time.Duration
	// VirtualNodes is the number of ring tokens per node.
	VirtualNodes int
	// ReadRepairDelay is the extra delay before a read-repair mutation is
	// applied to a stale replica.
	ReadRepairDelay time.Duration
	// HintDeliveryDelay is the spacing between queued hint deliveries after
	// a replica recovers.
	HintDeliveryDelay time.Duration
	// MutationDropTimeout mirrors the dropped-mutation behaviour of
	// Dynamo-style stores: a replicated mutation that cannot be applied by a
	// replica within this delay is dropped and turned into a hint, to be
	// redelivered later. This is the mechanism that makes the inconsistency
	// window blow up when replicas are overloaded.
	MutationDropTimeout time.Duration
	// HintRetryInterval is how often queued hints for live replicas are
	// retried (dropped mutations are redelivered on this cadence, in addition
	// to the anti-entropy sweep).
	HintRetryInterval time.Duration
	// NominalNetworkOpsPerSec calibrates how much replication traffic the
	// network absorbs before replication itself causes congestion.
	NominalNetworkOpsPerSec float64
}

// DefaultConfig is the Cassandra-like configuration used by the experiments:
// RF=3, ONE/ONE consistency, read repair and hinted handoff enabled, and a
// 60 s anti-entropy sweep.
func DefaultConfig() Config {
	return Config{
		ReplicationFactor:       3,
		ReadConsistency:         One,
		WriteConsistency:        One,
		ReadRepair:              true,
		HintedHandoff:           true,
		AntiEntropyInterval:     60 * time.Second,
		VirtualNodes:            defaultVirtualNodes,
		ReadRepairDelay:         2 * time.Millisecond,
		HintDeliveryDelay:       500 * time.Microsecond,
		MutationDropTimeout:     time.Second,
		HintRetryInterval:       5 * time.Second,
		NominalNetworkOpsPerSec: 60000,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.ReplicationFactor <= 0 {
		c.ReplicationFactor = d.ReplicationFactor
	}
	if c.ReadConsistency == 0 {
		c.ReadConsistency = d.ReadConsistency
	}
	if c.WriteConsistency == 0 {
		c.WriteConsistency = d.WriteConsistency
	}
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = d.VirtualNodes
	}
	if c.ReadRepairDelay <= 0 {
		c.ReadRepairDelay = d.ReadRepairDelay
	}
	if c.HintDeliveryDelay <= 0 {
		c.HintDeliveryDelay = d.HintDeliveryDelay
	}
	if c.MutationDropTimeout <= 0 {
		c.MutationDropTimeout = d.MutationDropTimeout
	}
	if c.HintRetryInterval <= 0 {
		c.HintRetryInterval = d.HintRetryInterval
	}
	if c.NominalNetworkOpsPerSec <= 0 {
		c.NominalNetworkOpsPerSec = d.NominalNetworkOpsPerSec
	}
	return c
}

// Result is delivered to the caller's callback when an operation completes.
type Result struct {
	Kind        OpKind
	Key         Key
	Err         error
	IssuedAt    time.Duration
	CompletedAt time.Duration
	Latency     time.Duration
	// Version is the logical version written (for writes) or observed (for
	// reads). Clients can compare versions across their own operations to
	// measure consistency from the outside, exactly like the read-after-write
	// probes the paper proposes.
	Version uint64
	// Stale marks a read that returned a version older than the newest
	// acknowledged write of that key (ground truth, used for evaluation).
	Stale bool
}

// WriteObservation is what a coordinator can legitimately observe about the
// propagation of one of its writes: when the client was acknowledged and
// when the last replica acknowledgement arrived. Passive monitors build
// inconsistency-window estimates from these, without access to simulator
// ground truth.
type WriteObservation struct {
	IssuedAt  time.Duration
	AckedAt   time.Duration
	LastAckAt time.Duration
	Replicas  int
	Acked     int
}

// Observer receives coordinator-level observations. Monitors register
// observers; the store invokes them on the simulation event loop.
type Observer interface {
	ObserveWrite(WriteObservation)
}

// Stats is a snapshot of the store's cumulative ground-truth statistics.
type Stats struct {
	Reads          uint64
	Writes         uint64
	ReadFailures   uint64
	WriteFailures  uint64
	StaleReads     uint64
	ReadRepairs    uint64
	HintsQueued    uint64
	HintsDelivered uint64
	// DroppedMutations counts replicated mutations a replica could not apply
	// within the mutation-drop timeout; they are converted into hints.
	DroppedMutations uint64
	LostUpdates      uint64
	AntiEntropyRan   uint64

	ReadLatency  metrics.Snapshot
	WriteLatency metrics.Snapshot
	// Window summarises the true inconsistency window of acknowledged
	// writes, in seconds.
	Window metrics.Snapshot
}

// Store is the simulated eventually-consistent database.
type Store struct {
	engine  *sim.Engine
	cluster *cluster.Cluster
	rng     *rand.Rand

	cfg     Config
	rf      int
	readCL  ConsistencyLevel
	writeCL ConsistencyLevel

	ring        *Ring
	replicas    map[cluster.NodeID]*replicaState
	latestAcked map[Key]version
	nextVersion version

	pendingHints map[cluster.NodeID][]pendingApply

	observers []Observer

	// tenants holds per-tenant ground-truth metric sets (index id-1) when
	// the scenario registered tenants; nil in untagged single-tenant mode.
	tenants []*tenantStats

	// Placement (class-aware replica selection). placements holds one entry
	// per pinned class, in pin order (empty = placement inactive and every
	// selection path identical to the pre-placement code); dedicated is the
	// sorted union of every class's pool; tenantPool maps, by id-1, each
	// tagged tenant to its class's placements index + 1 (0 = unpinned).
	// keyTenant records which tenant last wrote each key — only once
	// EnablePlacementTracking has run, so scenarios that never allow
	// placement pay nothing — and lets repair paths converge a key onto the
	// same biased replica set reads contact.
	placements []classPlacement
	dedicated  []cluster.NodeID
	tenantPool []int
	keyTenant  map[Key]TenantID
	// coordScratch backs the per-operation preferred-coordinator pool under
	// an active placement.
	coordScratch []*cluster.Node

	// tracer, when set, records sampled per-operation span trees. Nil (the
	// default) keeps every tracing branch off the hot path.
	tracer *obs.Tracer

	// Per-operation scratch buffers. The read/write hot path resolves a
	// preference list and partitions it into live/down replicas for every
	// operation; reusing these buffers keeps that path allocation-free. They
	// are only valid within one synchronous call chain — anything that must
	// survive an event boundary is copied into the operation's state.
	replicaScratch []cluster.NodeID
	liveScratch    []cluster.NodeID
	downScratch    []cluster.NodeID
	hintIDScratch  []cluster.NodeID

	// ground-truth metrics
	readLatency      *metrics.Histogram
	writeLatency     *metrics.Histogram
	windowHist       *metrics.Histogram
	recentWindow     *metrics.WindowedStat
	reads            metrics.Counter
	writes           metrics.Counter
	readFailures     metrics.Counter
	writeFailures    metrics.Counter
	staleReads       metrics.Counter
	readRepairs      metrics.Counter
	hintsQueued      metrics.Counter
	hintsDelivered   metrics.Counter
	droppedMutations metrics.Counter
	lostUpdates      metrics.Counter
	aeRuns           metrics.Counter

	// replication-load feedback into the network model
	writesSinceTick uint64
	loadTicker      *sim.Ticker
	aeTicker        *sim.Ticker
	hintTicker      *sim.Ticker

	closed bool
}

type pendingApply struct {
	key     Key
	ver     version
	tracker *writeTracker
	// origin is the coordinator that queued the hint. Under a network
	// partition a hint replays only when its origin's side can reach the
	// target: a minority-side coordinator's writes must stay invisible to the
	// majority until the heal.
	origin cluster.NodeID
}

// writeTracker follows a single acknowledged write until every replica in
// its preference list has applied it, at which point the true inconsistency
// window is recorded.
type writeTracker struct {
	store     *Store
	key       Key
	ver       version
	tenant    TenantID
	ackAt     time.Duration
	remaining int
	lastApply time.Duration
	resolved  bool
	recorded  bool
	// trace closes the write's sampled span tree at the SLA-accounting
	// terminal; nil for unsampled writes.
	trace *obs.OpTrace
}

// New creates a store on top of the given cluster and registers for
// membership changes. All currently available nodes join the ring.
func New(cfg Config, engine *sim.Engine, cl *cluster.Cluster, rnd *sim.RandSource) (*Store, error) {
	if engine == nil || cl == nil || rnd == nil {
		return nil, errors.New("store: engine, cluster and rand source are required")
	}
	cfg = cfg.withDefaults()
	s := &Store{
		engine:       engine,
		cluster:      cl,
		rng:          rnd.Stream("store"),
		cfg:          cfg,
		rf:           cfg.ReplicationFactor,
		readCL:       cfg.ReadConsistency,
		writeCL:      cfg.WriteConsistency,
		ring:         NewRing(cfg.VirtualNodes),
		replicas:     make(map[cluster.NodeID]*replicaState),
		latestAcked:  make(map[Key]version),
		pendingHints: make(map[cluster.NodeID][]pendingApply),
		readLatency:  metrics.NewHistogram(0),
		writeLatency: metrics.NewHistogram(0),
		windowHist:   metrics.NewHistogram(0),
		recentWindow: metrics.NewWindowedStat(2048),
	}
	for _, n := range cl.AvailableNodes() {
		s.ring.Add(n.ID())
		s.replicas[n.ID()] = newReplicaState(n.ID())
	}
	cl.Subscribe(s)

	var err error
	s.loadTicker, err = sim.NewTicker(engine, time.Second, s.updateReplicationLoad)
	if err != nil {
		return nil, fmt.Errorf("store: replication load ticker: %w", err)
	}
	if cfg.AntiEntropyInterval > 0 {
		s.aeTicker, err = sim.NewTicker(engine, cfg.AntiEntropyInterval, s.runAntiEntropy)
		if err != nil {
			return nil, fmt.Errorf("store: anti-entropy ticker: %w", err)
		}
	}
	if cfg.HintedHandoff {
		s.hintTicker, err = sim.NewTicker(engine, cfg.HintRetryInterval, s.retryHints)
		if err != nil {
			return nil, fmt.Errorf("store: hint retry ticker: %w", err)
		}
	}
	return s, nil
}

var _ cluster.MembershipListener = (*Store)(nil)

// Close stops the store's background activities. Pending operations still
// complete; new operations fail with ErrStopped.
func (s *Store) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.loadTicker.Stop()
	if s.aeTicker != nil {
		s.aeTicker.Stop()
	}
	if s.hintTicker != nil {
		s.hintTicker.Stop()
	}
}

// SetTracer attaches (or, with nil, detaches) an operation tracer. Sampled
// operations record a span tree from dispatch to SLA accounting; unsampled
// operations pay one counter increment and the disabled path is untouched.
func (s *Store) SetTracer(t *obs.Tracer) { s.tracer = t }

// Subscribe registers an observer for coordinator-level write observations.
func (s *Store) Subscribe(o Observer) {
	if o != nil {
		s.observers = append(s.observers, o)
	}
}

// ReplicationFactor returns the current replication factor.
func (s *Store) ReplicationFactor() int { return s.rf }

// ReadConsistency returns the current read consistency level.
func (s *Store) ReadConsistency() ConsistencyLevel { return s.readCL }

// WriteConsistency returns the current write consistency level.
func (s *Store) WriteConsistency() ConsistencyLevel { return s.writeCL }

// SetReadConsistency changes the consistency level for subsequent reads.
func (s *Store) SetReadConsistency(cl ConsistencyLevel) {
	if cl >= One && cl <= All {
		s.readCL = cl
	}
}

// SetWriteConsistency changes the consistency level for subsequent writes.
func (s *Store) SetWriteConsistency(cl ConsistencyLevel) {
	if cl >= One && cl <= All {
		s.writeCL = cl
	}
}

// SetReplicationFactor changes the number of replicas per key for subsequent
// writes. Increasing the factor triggers a background rebalance: existing
// nodes take on streaming load for a while and replication traffic rises,
// which is why the controller must apply this action judiciously.
func (s *Store) SetReplicationFactor(rf int) error {
	if rf < 1 {
		return fmt.Errorf("store: replication factor %d out of range", rf)
	}
	if rf == s.rf {
		return nil
	}
	grow := rf > s.rf
	s.rf = rf
	if grow {
		s.startRebalance()
	}
	return nil
}

// startRebalance imposes a temporary streaming load on available nodes and
// the network, modelling the data movement caused by growing the replica
// count, then repairs all keys so new replicas converge.
func (s *Store) startRebalance() {
	const rebalanceDuration = 45 * time.Second
	for _, n := range s.cluster.AvailableNodes() {
		n.SetRebalanceLoad(0.25)
	}
	s.cluster.Network().SetReplicationLoad(clampF(s.cluster.Network().ReplicationLoad()+0.3, 0, 1))
	s.engine.After(rebalanceDuration, func(time.Duration) {
		for _, n := range s.cluster.AvailableNodes() {
			n.SetRebalanceLoad(0)
		}
		s.repairAll()
	})
}

// NodeJoined implements cluster.MembershipListener. By the time the cluster
// reports the node as joined it has finished bootstrapping, which includes
// streaming the data for the ranges it now owns: its replica state is brought
// up to the latest acknowledged versions of those keys, and any hints queued
// for it while it was joining are delivered.
func (s *Store) NodeJoined(id cluster.NodeID) {
	if _, ok := s.replicas[id]; !ok {
		s.replicas[id] = newReplicaState(id)
	}
	s.ring.Add(id)
	s.streamOwnedRanges(id)
	s.deliverHints(id)
}

// streamOwnedRanges models the data a bootstrapping node streamed from its
// peers: every key the node is now a replica for is applied at its latest
// acknowledged version. Under an active placement, ownership follows the
// biased per-tenant preference lists.
func (s *Store) streamOwnedRanges(id cluster.NodeID) {
	rep, ok := s.replicas[id]
	if !ok {
		return
	}
	for key, ver := range s.latestAcked {
		for _, owner := range s.replicasForRepair(key) {
			if owner == id {
				rep.apply(key, ver)
				break
			}
		}
	}
}

// NodeLeft implements cluster.MembershipListener. The node leaves the ring;
// write trackers waiting on it are released so windows stay well defined. A
// departing dedicated node also leaves the placement pool.
func (s *Store) NodeLeft(id cluster.NodeID) {
	s.ring.Remove(id)
	if slices.Contains(s.dedicated, id) {
		for pi := range s.placements {
			if i := slices.Index(s.placements[pi].nodes, id); i >= 0 {
				s.placements[pi].nodes = slices.Delete(s.placements[pi].nodes, i, i+1)
			}
		}
		s.rebuildDedicated()
	}
	if hints, ok := s.pendingHints[id]; ok {
		for _, h := range hints {
			if h.tracker != nil {
				h.tracker.discount(s.engine.Now())
			}
		}
		delete(s.pendingHints, id)
	}
}

// NodeFailed implements cluster.MembershipListener. A failed node keeps its
// ring position; writes destined for it accumulate as hints until it
// recovers or anti-entropy repairs it.
func (s *Store) NodeFailed(cluster.NodeID) {}

// NodeRecovered implements cluster.MembershipListener. Queued hints are
// flushed to the recovered replica.
func (s *Store) NodeRecovered(id cluster.NodeID) {
	s.deliverHints(id)
}

// Stats returns a snapshot of cumulative ground-truth statistics.
func (s *Store) Stats() Stats {
	return Stats{
		Reads:            s.reads.Value(),
		Writes:           s.writes.Value(),
		ReadFailures:     s.readFailures.Value(),
		WriteFailures:    s.writeFailures.Value(),
		StaleReads:       s.staleReads.Value(),
		ReadRepairs:      s.readRepairs.Value(),
		HintsQueued:      s.hintsQueued.Value(),
		HintsDelivered:   s.hintsDelivered.Value(),
		DroppedMutations: s.droppedMutations.Value(),
		LostUpdates:      s.lostUpdates.Value(),
		AntiEntropyRan:   s.aeRuns.Value(),
		ReadLatency:      s.readLatency.Snapshot(),
		WriteLatency:     s.writeLatency.Snapshot(),
		Window:           s.windowHist.Snapshot(),
	}
}

// RecentWindowQuantile returns the q-quantile (in seconds) of the true
// inconsistency window over the most recent writes. Experiments use it as
// ground truth; the controller does not.
func (s *Store) RecentWindowQuantile(q float64) float64 {
	return s.recentWindow.Quantile(q)
}

// ResetStats clears cumulative statistics (used between experiment phases).
func (s *Store) ResetStats() {
	s.readLatency.Reset()
	s.writeLatency.Reset()
	s.windowHist.Reset()
	s.reads.Reset()
	s.writes.Reset()
	s.readFailures.Reset()
	s.writeFailures.Reset()
	s.staleReads.Reset()
	s.readRepairs.Reset()
	s.hintsQueued.Reset()
	s.hintsDelivered.Reset()
	s.droppedMutations.Reset()
	s.lostUpdates.Reset()
	s.aeRuns.Reset()
}

// KeyCount returns the number of distinct keys acknowledged so far.
func (s *Store) KeyCount() int { return len(s.latestAcked) }

// ReplicaKeyCount returns how many keys the given node currently holds.
func (s *Store) ReplicaKeyCount(id cluster.NodeID) int {
	if r, ok := s.replicas[id]; ok {
		return r.keys()
	}
	return 0
}

// updateReplicationLoad feeds the store's recent write fan-out back into the
// network model as replication-induced congestion.
func (s *Store) updateReplicationLoad(time.Duration) {
	writes := s.writesSinceTick
	s.writesSinceTick = 0
	fanout := float64(s.rf - 1)
	if fanout < 0 {
		fanout = 0
	}
	load := float64(writes) * fanout / s.cfg.NominalNetworkOpsPerSec
	s.cluster.Network().SetReplicationLoad(clampF(load, 0, 1))
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
