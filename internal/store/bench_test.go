package store

import (
	"strconv"
	"testing"
	"time"

	"autonosql/internal/cluster"
	"autonosql/internal/sim"
)

// benchRig wires an engine, cluster and store without *testing.T so both
// benchmarks and allocation-regression tests can drive the raw op path.
type benchRig struct {
	engine *sim.Engine
	store  *Store
	keys   []Key
}

func newBenchRig(tb testing.TB, nodes int) *benchRig {
	tb.Helper()
	engine := sim.NewEngine()
	src := sim.NewRandSource(1)
	clusterCfg := cluster.DefaultConfig()
	clusterCfg.InitialNodes = nodes
	cl := cluster.New(clusterCfg, engine, src)
	st, err := New(DefaultConfig(), engine, cl, src)
	if err != nil {
		tb.Fatalf("store.New: %v", err)
	}
	keys := make([]Key, 512)
	for i := range keys {
		keys[i] = Key("key-" + strconv.Itoa(i))
	}
	return &benchRig{engine: engine, store: st, keys: keys}
}

// settle steps the engine until the given number of operation callbacks have
// fired. The store's background tickers keep the queue non-empty forever, so
// draining completely is not an option; stepping to completion of the issued
// operations is what a scenario does implicitly.
func (r *benchRig) settle(tb testing.TB, fired *int, want int) {
	tb.Helper()
	for *fired < want {
		if !r.engine.Step() {
			tb.Fatalf("engine drained with %d/%d operations outstanding", *fired, want)
		}
	}
}

// BenchmarkWritePath measures one complete write: coordinator selection, ring
// lookup, replica fan-out, acks, client acknowledgement and window tracking.
func BenchmarkWritePath(b *testing.B) {
	rig := newBenchRig(b, 3)
	fired := 0
	cb := func(Result) { fired++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rig.store.Write(rig.keys[i%len(rig.keys)], cb)
		rig.settle(b, &fired, i+1)
	}
}

// BenchmarkReadPath measures one complete read against a pre-populated
// keyspace: coordinator selection, ring lookup, replica reads and the merged
// client response.
func BenchmarkReadPath(b *testing.B) {
	rig := newBenchRig(b, 3)
	fired := 0
	cb := func(Result) { fired++ }
	for _, k := range rig.keys {
		rig.store.Write(k, cb)
	}
	rig.settle(b, &fired, len(rig.keys))
	fired = 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rig.store.Read(rig.keys[i%len(rig.keys)], cb)
		rig.settle(b, &fired, i+1)
	}
}

// BenchmarkMixedLoad measures a batch of interleaved reads and writes settled
// together, which keeps the node queues and the event heap realistically deep.
func BenchmarkMixedLoad(b *testing.B) {
	rig := newBenchRig(b, 5)
	fired := 0
	cb := func(Result) { fired++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			k := rig.keys[(i*64+j)%len(rig.keys)]
			if j%2 == 0 {
				rig.store.Write(k, cb)
			} else {
				rig.store.Read(k, cb)
			}
		}
		rig.settle(b, &fired, (i+1)*64)
	}
}

// BenchmarkRingReplicasFor measures the ring lookup on its own.
func BenchmarkRingReplicasFor(b *testing.B) {
	ring := NewRing(0)
	for id := 1; id <= 8; id++ {
		ring.Add(cluster.NodeID(id))
	}
	keys := make([]Key, 512)
	for i := range keys {
		keys[i] = Key("key-" + strconv.Itoa(i))
	}
	var buf []cluster.NodeID
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = ring.AppendReplicasFor(buf[:0], keys[i%len(keys)], 3)
	}
	_ = buf
}

// sink prevents the compiler from optimising benchmark bodies away.
var sinkDuration time.Duration

// BenchmarkDelayUntil pins the trivial helpers so regressions in inlining
// show up.
func BenchmarkDelayUntil(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkDuration = delayUntil(time.Duration(i), time.Duration(i+1))
	}
}
