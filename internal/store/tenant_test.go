package store

import (
	"testing"
	"time"
)

// TestTenantTagging drives tagged and untagged operations through the raw op
// path and checks that ground truth is attributed to the right tenant while
// the aggregate still counts everything.
func TestTenantTagging(t *testing.T) {
	rig := newBenchRig(t, 3)
	rig.store.RegisterTenants(2)
	fired := 0
	cb := func(Result) { fired++ }

	issued := 0
	for i := 0; i < 60; i++ {
		rig.store.WriteAs(1, rig.keys[i], cb)
		issued++
	}
	for i := 0; i < 40; i++ {
		rig.store.WriteAs(2, rig.keys[100+i], cb)
		issued++
	}
	for i := 0; i < 10; i++ {
		rig.store.Write(rig.keys[200+i], cb) // untagged
		issued++
	}
	rig.settle(t, &fired, issued)
	for i := 0; i < 30; i++ {
		rig.store.ReadAs(1, rig.keys[i], cb)
		issued++
	}
	for i := 0; i < 20; i++ {
		rig.store.ReadAs(2, rig.keys[100+i], cb)
		issued++
	}
	rig.settle(t, &fired, issued)
	// A write's window resolves only when its last replica applied it; the
	// burst above drops some mutations into hints, so run the clock past a
	// few hint-retry sweeps to let every tracker resolve.
	if err := rig.engine.Run(rig.engine.Now() + 30*time.Second); err != nil {
		t.Fatalf("draining engine: %v", err)
	}

	agg := rig.store.Stats()
	t1 := rig.store.TenantStats(1)
	t2 := rig.store.TenantStats(2)

	if t1.Writes != 60 || t2.Writes != 40 {
		t.Errorf("tenant writes = %d/%d, want 60/40", t1.Writes, t2.Writes)
	}
	if t1.Reads != 30 || t2.Reads != 20 {
		t.Errorf("tenant reads = %d/%d, want 30/20", t1.Reads, t2.Reads)
	}
	if agg.Writes != 110 || agg.Reads != 50 {
		t.Errorf("aggregate = %d writes / %d reads, want 110/50", agg.Writes, agg.Reads)
	}
	if t1.WriteLatency.Count != 60 || t2.WriteLatency.Count != 40 {
		t.Errorf("tenant write latency counts = %d/%d, want 60/40",
			t1.WriteLatency.Count, t2.WriteLatency.Count)
	}
	// Every acknowledged tagged write eventually resolves a window
	// observation for its tenant.
	if t1.Window.Count != 60 || t2.Window.Count != 40 {
		t.Errorf("tenant window counts = %d/%d, want 60/40", t1.Window.Count, t2.Window.Count)
	}
	if q := rig.store.TenantRecentWindowQuantile(1, 0.95); q < 0 {
		t.Errorf("tenant window quantile negative: %v", q)
	}
}

// TestTenantTaggingZeroAndUnregistered pins that tag zero and out-of-range
// tags are safe no-ops.
func TestTenantTaggingZeroAndUnregistered(t *testing.T) {
	rig := newBenchRig(t, 3)
	fired := 0
	cb := func(Result) { fired++ }
	// No tenants registered: tagged ops must not panic and must count in the
	// aggregate only.
	rig.store.WriteAs(3, rig.keys[0], cb)
	rig.store.ReadAs(-1, rig.keys[0], cb)
	rig.settle(t, &fired, 2)
	if got := rig.store.Stats().Writes; got != 1 {
		t.Errorf("aggregate writes = %d, want 1", got)
	}
	if gt := rig.store.TenantStats(3); gt.Writes != 0 {
		t.Errorf("unregistered tenant recorded %d writes", gt.Writes)
	}
	if q := rig.store.TenantRecentWindowQuantile(0, 0.95); q != 0 {
		t.Errorf("aggregate-id tenant quantile = %v, want 0", q)
	}
}

// TestTenantTaggingAllocationFree pins that tagged operations stay at the
// single-allocation hot path: the per-tenant counters and histograms are
// preallocated at registration.
func TestTenantTaggingAllocationFree(t *testing.T) {
	rig := newBenchRig(t, 3)
	rig.store.RegisterTenants(1)
	fired := 0
	cb := func(Result) { fired++ }
	issued := 0
	for ; issued < 128; issued++ {
		rig.store.WriteAs(1, rig.keys[issued%len(rig.keys)], cb)
	}
	rig.settle(t, &fired, issued)

	avg := testing.AllocsPerRun(300, func() {
		issued++
		rig.store.WriteAs(1, rig.keys[issued%len(rig.keys)], cb)
		rig.settle(t, &fired, issued)
	})
	if avg > maxWriteAllocs {
		t.Errorf("tagged write path allocates %.1f objects per op, want <= %d", avg, maxWriteAllocs)
	}
}
