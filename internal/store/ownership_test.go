package store

import (
	"testing"

	"autonosql/internal/cluster"
)

// TestOwnerSegmentStability pins the property home-side sharding leans on:
// a node's owner segment is a pure function of its identity and the segment
// count. Membership events cannot move it — the mapping never sees them — so
// the test freezes the mapping for the first 64 node IDs and re-derives it
// "after" simulated churn.
func TestOwnerSegmentStability(t *testing.T) {
	for _, segments := range []int{1, 2, 3, 4, 7} {
		before := make([]int, 64)
		for id := 1; id <= 64; id++ {
			before[id-1] = OwnerSegment(cluster.NodeID(id), segments)
		}
		// Scale-out (new IDs appear), scale-in and crash/restart (IDs
		// disappear or flap) are all invisible to the mapping: recomputing any
		// subset in any order yields the same owners.
		for id := 64; id >= 1; id-- {
			if got := OwnerSegment(cluster.NodeID(id), segments); got != before[id-1] {
				t.Fatalf("segments=%d: node %d moved from segment %d to %d", segments, id, before[id-1], got)
			}
		}
	}
}

// TestOwnerSegmentRangeAndSpread pins that every owner index is in range and
// that the ring-token mapping actually spreads a realistic cluster across the
// segments (no degenerate all-on-one-lane assignment).
func TestOwnerSegmentRangeAndSpread(t *testing.T) {
	for _, segments := range []int{2, 3, 4} {
		seen := make(map[int]int)
		for id := 1; id <= 32; id++ {
			seg := OwnerSegment(cluster.NodeID(id), segments)
			if seg < 0 || seg >= segments {
				t.Fatalf("segments=%d: node %d mapped to out-of-range segment %d", segments, id, seg)
			}
			seen[seg]++
		}
		if len(seen) < 2 {
			t.Fatalf("segments=%d: 32 nodes all landed on segment set %v", segments, seen)
		}
	}
	if got := OwnerSegment(cluster.NodeID(5), 1); got != 0 {
		t.Fatalf("single segment must own everything, got %d", got)
	}
	if got := OwnerSegment(cluster.NodeID(5), 0); got != 0 {
		t.Fatalf("degenerate segment count must map to 0, got %d", got)
	}
}
