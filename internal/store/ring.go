package store

import (
	"slices"
	"sort"
	"strconv"

	"autonosql/internal/cluster"
)

// defaultVirtualNodes is the number of ring positions each physical node
// occupies. More virtual nodes smooth key ownership when the cluster is
// small.
const defaultVirtualNodes = 64

// Ring is a consistent-hash ring mapping keys to an ordered preference list
// of replica nodes, in the style of Dynamo/Cassandra token rings.
type Ring struct {
	vnodes  int
	tokens  []ringToken
	members map[cluster.NodeID]bool
}

type ringToken struct {
	hash uint64
	node cluster.NodeID
}

// NewRing creates an empty ring. vnodes <= 0 selects the default of 64
// virtual nodes per member.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, members: make(map[cluster.NodeID]bool)}
}

// Members returns the node IDs currently on the ring, sorted.
func (r *Ring) Members() []cluster.NodeID {
	out := make([]cluster.NodeID, 0, len(r.members))
	for id := range r.members {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Size returns the number of member nodes.
func (r *Ring) Size() int { return len(r.members) }

// Contains reports whether the node is a ring member.
func (r *Ring) Contains(id cluster.NodeID) bool { return r.members[id] }

// Add inserts a node into the ring. Adding an existing member is a no-op.
func (r *Ring) Add(id cluster.NodeID) {
	if r.members[id] {
		return
	}
	r.members[id] = true
	for v := 0; v < r.vnodes; v++ {
		h := hashString(id.String() + "#" + strconv.Itoa(v))
		r.tokens = append(r.tokens, ringToken{hash: h, node: id})
	}
	sort.Slice(r.tokens, func(i, j int) bool { return r.tokens[i].hash < r.tokens[j].hash })
}

// Remove deletes a node from the ring. Removing a non-member is a no-op.
func (r *Ring) Remove(id cluster.NodeID) {
	if !r.members[id] {
		return
	}
	delete(r.members, id)
	kept := r.tokens[:0]
	for _, t := range r.tokens {
		if t.node != id {
			kept = append(kept, t)
		}
	}
	r.tokens = kept
}

// ReplicasFor returns the preference list of up to rf distinct nodes
// responsible for the key, walking the ring clockwise from the key's token.
func (r *Ring) ReplicasFor(key Key, rf int) []cluster.NodeID {
	return r.AppendReplicasFor(nil, key, rf)
}

// AppendReplicasFor appends the key's preference list to dst and returns the
// extended slice, so per-operation callers can reuse a scratch buffer instead
// of allocating. Deduplication is a linear scan over the appended tail:
// preference lists hold at most the cluster's node count entries, where a
// scan beats a map by a wide margin.
func (r *Ring) AppendReplicasFor(dst []cluster.NodeID, key Key, rf int) []cluster.NodeID {
	if rf <= 0 || len(r.tokens) == 0 {
		return dst
	}
	if rf > len(r.members) {
		rf = len(r.members)
	}
	lo := r.searchToken(hashString(string(key)))
	base := len(dst)
walk:
	for i := 0; i < len(r.tokens) && len(dst)-base < rf; i++ {
		t := r.tokens[(lo+i)%len(r.tokens)]
		for _, existing := range dst[base:] {
			if existing == t.node {
				continue walk
			}
		}
		dst = append(dst, t.node)
	}
	return dst
}

// AppendReplicasBiased is the placement-aware variant of AppendReplicasFor:
// the clockwise walk runs twice, first admitting only nodes whose membership
// in set matches preferIn (the preferred pool), then filling any remaining
// slots from the rest of the ring. A pinned tenant passes its class's
// dedicated nodes with preferIn=true and gets a replica set anchored on
// them; everyone else passes the same set with preferIn=false and is steered
// onto the shared pool, spilling onto dedicated nodes only when the shared
// pool cannot satisfy the replication factor. Like AppendReplicasFor it
// allocates nothing beyond dst's capacity.
func (r *Ring) AppendReplicasBiased(dst []cluster.NodeID, key Key, rf int, set []cluster.NodeID, preferIn bool) []cluster.NodeID {
	if rf <= 0 || len(r.tokens) == 0 {
		return dst
	}
	if rf > len(r.members) {
		rf = len(r.members)
	}
	lo := r.searchToken(hashString(string(key)))
	base := len(dst)
preferred:
	for i := 0; i < len(r.tokens) && len(dst)-base < rf; i++ {
		t := r.tokens[(lo+i)%len(r.tokens)]
		if slices.Contains(set, t.node) != preferIn {
			continue
		}
		for _, existing := range dst[base:] {
			if existing == t.node {
				continue preferred
			}
		}
		dst = append(dst, t.node)
	}
fill:
	for i := 0; i < len(r.tokens) && len(dst)-base < rf; i++ {
		t := r.tokens[(lo+i)%len(r.tokens)]
		for _, existing := range dst[base:] {
			if existing == t.node {
				continue fill
			}
		}
		dst = append(dst, t.node)
	}
	return dst
}

// searchToken returns the index of the first token with hash >= h (an
// inlined sort.Search over the token ring).
func (r *Ring) searchToken(h uint64) int {
	lo, hi := 0, len(r.tokens)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.tokens[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Primary returns the first node in the key's preference list.
func (r *Ring) Primary(key Key) (cluster.NodeID, bool) {
	reps := r.ReplicasFor(key, 1)
	if len(reps) == 0 {
		return 0, false
	}
	return reps[0], true
}

// FNV-1a 64-bit parameters, matching hash/fnv.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashString hashes s with FNV-1a and then passes the result through a
// 64-bit avalanche finaliser (MurmurHash3's fmix64). Plain FNV clusters badly
// for short, similar strings such as "node-1#17", which skews ring ownership;
// the finaliser restores uniformity. The FNV loop is written out rather than
// using hash/fnv so per-lookup callers pay no allocation for the hasher or
// the string-to-bytes conversion.
func hashString(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return fmix64(h)
}

func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
