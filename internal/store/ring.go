package store

import (
	"hash/fnv"
	"sort"
	"strconv"

	"autonosql/internal/cluster"
)

// defaultVirtualNodes is the number of ring positions each physical node
// occupies. More virtual nodes smooth key ownership when the cluster is
// small.
const defaultVirtualNodes = 64

// Ring is a consistent-hash ring mapping keys to an ordered preference list
// of replica nodes, in the style of Dynamo/Cassandra token rings.
type Ring struct {
	vnodes  int
	tokens  []ringToken
	members map[cluster.NodeID]bool
}

type ringToken struct {
	hash uint64
	node cluster.NodeID
}

// NewRing creates an empty ring. vnodes <= 0 selects the default of 64
// virtual nodes per member.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, members: make(map[cluster.NodeID]bool)}
}

// Members returns the node IDs currently on the ring, sorted.
func (r *Ring) Members() []cluster.NodeID {
	out := make([]cluster.NodeID, 0, len(r.members))
	for id := range r.members {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Size returns the number of member nodes.
func (r *Ring) Size() int { return len(r.members) }

// Contains reports whether the node is a ring member.
func (r *Ring) Contains(id cluster.NodeID) bool { return r.members[id] }

// Add inserts a node into the ring. Adding an existing member is a no-op.
func (r *Ring) Add(id cluster.NodeID) {
	if r.members[id] {
		return
	}
	r.members[id] = true
	for v := 0; v < r.vnodes; v++ {
		h := hashString(id.String() + "#" + strconv.Itoa(v))
		r.tokens = append(r.tokens, ringToken{hash: h, node: id})
	}
	sort.Slice(r.tokens, func(i, j int) bool { return r.tokens[i].hash < r.tokens[j].hash })
}

// Remove deletes a node from the ring. Removing a non-member is a no-op.
func (r *Ring) Remove(id cluster.NodeID) {
	if !r.members[id] {
		return
	}
	delete(r.members, id)
	kept := r.tokens[:0]
	for _, t := range r.tokens {
		if t.node != id {
			kept = append(kept, t)
		}
	}
	r.tokens = kept
}

// ReplicasFor returns the preference list of up to rf distinct nodes
// responsible for the key, walking the ring clockwise from the key's token.
func (r *Ring) ReplicasFor(key Key, rf int) []cluster.NodeID {
	if rf <= 0 || len(r.tokens) == 0 {
		return nil
	}
	if rf > len(r.members) {
		rf = len(r.members)
	}
	h := hashString(string(key))
	start := sort.Search(len(r.tokens), func(i int) bool { return r.tokens[i].hash >= h })
	out := make([]cluster.NodeID, 0, rf)
	seen := make(map[cluster.NodeID]bool, rf)
	for i := 0; i < len(r.tokens) && len(out) < rf; i++ {
		t := r.tokens[(start+i)%len(r.tokens)]
		if seen[t.node] {
			continue
		}
		seen[t.node] = true
		out = append(out, t.node)
	}
	return out
}

// Primary returns the first node in the key's preference list.
func (r *Ring) Primary(key Key) (cluster.NodeID, bool) {
	reps := r.ReplicasFor(key, 1)
	if len(reps) == 0 {
		return 0, false
	}
	return reps[0], true
}

// hashString hashes s with FNV-1a and then passes the result through a
// 64-bit avalanche finaliser (MurmurHash3's fmix64). Plain FNV clusters badly
// for short, similar strings such as "node-1#17", which skews ring ownership;
// the finaliser restores uniformity.
func hashString(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return fmix64(h.Sum64())
}

func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
