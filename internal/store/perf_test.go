package store

// Allocation-regression tests for the operation hot path. The thresholds are
// deliberately above the measured steady state (exactly 1 allocation per
// write and 1 per read — the operation state object — after the fan-out
// closures were replaced with pre-bound ArgHandler events, see
// PERFORMANCE.md) so routine noise does not flake, but a reintroduced
// per-operation slice, map or closure regression trips them immediately.

import (
	"testing"

	"autonosql/internal/cluster"
)

// maxWriteAllocs bounds the average allocations for one complete write
// (coordinator hop, replica fan-out, acks, client ack, window tracking).
const maxWriteAllocs = 4

// maxReadAllocs bounds the average allocations for one complete read.
const maxReadAllocs = 3

func TestWritePathAllocations(t *testing.T) {
	rig := newBenchRig(t, 3)
	fired := 0
	cb := func(Result) { fired++ }
	// Warm the event pool and the store's scratch buffers.
	issued := 0
	for ; issued < 128; issued++ {
		rig.store.Write(rig.keys[issued%len(rig.keys)], cb)
	}
	rig.settle(t, &fired, issued)

	avg := testing.AllocsPerRun(300, func() {
		issued++
		rig.store.Write(rig.keys[issued%len(rig.keys)], cb)
		rig.settle(t, &fired, issued)
	})
	if avg > maxWriteAllocs {
		t.Errorf("write path allocates %.1f objects per op, want <= %d — a per-operation allocation crept back in", avg, maxWriteAllocs)
	}
}

func TestReadPathAllocations(t *testing.T) {
	rig := newBenchRig(t, 3)
	fired := 0
	cb := func(Result) { fired++ }
	issued := 0
	for ; issued < 128; issued++ {
		rig.store.Write(rig.keys[issued%len(rig.keys)], cb)
	}
	rig.settle(t, &fired, issued)

	avg := testing.AllocsPerRun(300, func() {
		issued++
		rig.store.Read(rig.keys[issued%len(rig.keys)], cb)
		rig.settle(t, &fired, issued)
	})
	if avg > maxReadAllocs {
		t.Errorf("read path allocates %.1f objects per op, want <= %d — a per-operation allocation crept back in", avg, maxReadAllocs)
	}
}

// TestRingLookupAllocations pins the zero-allocation property of the ring
// lookup with a reused scratch buffer.
func TestRingLookupAllocations(t *testing.T) {
	rig := newBenchRig(t, 5)
	ring := rig.store.ring
	out := ring.AppendReplicasFor(nil, rig.keys[0], 3)
	avg := testing.AllocsPerRun(200, func() {
		out = ring.AppendReplicasFor(out[:0], rig.keys[1], 3)
	})
	if avg != 0 {
		t.Errorf("ring lookup allocates %.1f objects per call with a reused buffer, want 0", avg)
	}
}

// TestFaultChecksAllocationFree pins that the fault-awareness added to the
// op path — coordinator-relative replica partitioning and the network
// reachability/isolation checks — contributes zero allocations, with and
// without an active partition. Together with the write/read thresholds above
// this guarantees a scenario that declares no faults keeps the recorded
// BENCH baseline: the fault engine's entire hot-path footprint is these
// checks.
func TestFaultChecksAllocationFree(t *testing.T) {
	rig := newBenchRig(t, 5)
	net := rig.store.cluster.Network()
	ids := make([]cluster.NodeID, 0, 3)
	for _, n := range rig.store.cluster.AvailableNodes()[:3] {
		ids = append(ids, n.ID())
	}
	coord := ids[0]

	check := func(label string) {
		t.Helper()
		avg := testing.AllocsPerRun(300, func() {
			replicas := rig.store.appendReplicas(rig.keys[0])
			rig.store.partitionReplicas(coord, replicas)
			net.Reachable(coord, ids[1])
			net.Isolated(ids[2])
		})
		if avg != 0 {
			t.Errorf("%s: fault checks allocate %.1f objects per op, want 0", label, avg)
		}
	}
	check("no partition")
	net.Isolate(ids[1:2])
	check("partition active")
	net.Heal(ids[1:2])
}
