package store

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"autonosql/internal/cluster"
	"autonosql/internal/sim"
)

// harness wires an engine, a cluster and a store together for tests.
type harness struct {
	t       *testing.T
	engine  *sim.Engine
	cluster *cluster.Cluster
	store   *Store
}

func newHarness(t *testing.T, clusterCfg cluster.Config, storeCfg Config, seed int64) *harness {
	t.Helper()
	engine := sim.NewEngine()
	src := sim.NewRandSource(seed)
	cl := cluster.New(clusterCfg, engine, src)
	st, err := New(storeCfg, engine, cl, src)
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	return &harness{t: t, engine: engine, cluster: cl, store: st}
}

func defaultHarness(t *testing.T) *harness {
	return newHarness(t, cluster.DefaultConfig(), DefaultConfig(), 1)
}

// runUntil steps the engine until the predicate is satisfied or maxEvents
// events have been processed.
func (h *harness) runUntil(done func() bool, maxEvents int) {
	h.t.Helper()
	for i := 0; i < maxEvents; i++ {
		if done() {
			return
		}
		if !h.engine.Step() {
			break
		}
	}
	if !done() {
		h.t.Fatal("operation did not complete")
	}
}

func (h *harness) writeSync(key Key) Result {
	h.t.Helper()
	var res Result
	fired := false
	h.store.Write(key, func(r Result) { res = r; fired = true })
	h.runUntil(func() bool { return fired }, 100000)
	return res
}

func (h *harness) readSync(key Key) Result {
	h.t.Helper()
	var res Result
	fired := false
	h.store.Read(key, func(r Result) { res = r; fired = true })
	h.runUntil(func() bool { return fired }, 100000)
	return res
}

// generateLoad schedules writeRate writes/s and readRate reads/s of uniform
// random keys for the given duration, then runs the engine to the end of
// that period.
func (h *harness) generateLoad(writeRate, readRate float64, dur time.Duration, keys int) {
	h.t.Helper()
	rng := sim.NewRandSource(77).Stream("load")
	schedule := func(rate float64, issue func(Key)) {
		if rate <= 0 {
			return
		}
		var next func(now time.Duration)
		next = func(time.Duration) {
			k := Key(fmt.Sprintf("key-%d", rng.Intn(keys)))
			issue(k)
			gap := time.Duration(sim.Exponential(rng, float64(time.Second)/rate))
			if gap <= 0 {
				gap = time.Microsecond
			}
			if h.engine.Now()+gap < dur {
				h.engine.MustSchedule(gap, next)
			}
		}
		h.engine.MustSchedule(time.Millisecond, next)
	}
	schedule(writeRate, func(k Key) { h.store.Write(k, nil) })
	schedule(readRate, func(k Key) { h.store.Read(k, nil) })
	if err := h.engine.Run(dur + 2*time.Second); err != nil {
		h.t.Fatalf("Run: %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}, nil, nil, nil); err == nil {
		t.Fatal("New with nil dependencies should fail")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	h := defaultHarness(t)
	w := h.writeSync("user:1")
	if w.Err != nil {
		t.Fatalf("write error: %v", w.Err)
	}
	if w.Kind != OpWrite || w.Version == 0 || w.Latency <= 0 {
		t.Fatalf("unexpected write result %+v", w)
	}
	r := h.readSync("user:1")
	if r.Err != nil {
		t.Fatalf("read error: %v", r.Err)
	}
	if r.Version < w.Version {
		t.Fatalf("read version %d older than written %d", r.Version, w.Version)
	}
	stats := h.store.Stats()
	if stats.Writes != 1 || stats.Reads != 1 {
		t.Fatalf("stats = %+v, want 1 write / 1 read", stats)
	}
	if stats.WriteLatency.Count != 1 || stats.ReadLatency.Count != 1 {
		t.Fatal("latency histograms not populated")
	}
	if h.store.KeyCount() != 1 {
		t.Fatalf("KeyCount = %d, want 1", h.store.KeyCount())
	}
}

func TestReadUnknownKeyNotStale(t *testing.T) {
	h := defaultHarness(t)
	r := h.readSync("missing")
	if r.Err != nil {
		t.Fatalf("read error: %v", r.Err)
	}
	if r.Version != 0 || r.Stale {
		t.Fatalf("read of unknown key = %+v, want version 0, not stale", r)
	}
}

func TestWriteAllThenReadOneNeverStale(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WriteConsistency = All
	cfg.ReadConsistency = One
	h := newHarness(t, cluster.DefaultConfig(), cfg, 2)
	for i := 0; i < 50; i++ {
		k := Key(fmt.Sprintf("k-%d", i))
		if w := h.writeSync(k); w.Err != nil {
			t.Fatalf("write error: %v", w.Err)
		}
		r := h.readSync(k)
		if r.Err != nil {
			t.Fatalf("read error: %v", r.Err)
		}
		if r.Stale {
			t.Fatalf("stale read after CL=ALL write on key %s", k)
		}
	}
	if h.store.Stats().StaleReads != 0 {
		t.Fatal("stale reads recorded despite write CL=ALL")
	}
}

func TestQuorumQuorumReadYourWrites(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WriteConsistency = Quorum
	cfg.ReadConsistency = Quorum
	cfg.ReadRepair = false
	cfg.AntiEntropyInterval = 0
	h := newHarness(t, cluster.DefaultConfig(), cfg, 3)
	for i := 0; i < 100; i++ {
		k := Key(fmt.Sprintf("q-%d", i%10))
		w := h.writeSync(k)
		if w.Err != nil {
			t.Fatalf("write error: %v", w.Err)
		}
		r := h.readSync(k)
		if r.Err != nil {
			t.Fatalf("read error: %v", r.Err)
		}
		if r.Version < w.Version {
			t.Fatalf("quorum read returned %d after quorum write %d", r.Version, w.Version)
		}
	}
	if h.store.Stats().StaleReads != 0 {
		t.Fatalf("stale reads = %d with overlapping quorums, want 0", h.store.Stats().StaleReads)
	}
}

func TestWindowNearZeroWhenIdle(t *testing.T) {
	h := defaultHarness(t)
	for i := 0; i < 50; i++ {
		h.writeSync(Key(fmt.Sprintf("idle-%d", i)))
	}
	p95 := h.store.Stats().Window.P95
	if p95 > 0.005 {
		t.Fatalf("idle p95 window = %v s, want < 5ms", p95)
	}
}

func TestWindowGrowsWithLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short mode")
	}
	measure := func(rate float64) float64 {
		cfg := DefaultConfig()
		cfg.ReadRepair = false
		cfg.AntiEntropyInterval = 0
		h := newHarness(t, cluster.DefaultConfig(), cfg, 5)
		h.generateLoad(rate, rate/4, 10*time.Second, 500)
		return h.store.Stats().Window.P95
	}
	low := measure(300)
	high := measure(4200)
	if high <= low || high <= 0 {
		t.Fatalf("p95 window did not grow with load: low=%.6f high=%.6f", low, high)
	}
}

func TestWindowShrinksWithStricterWriteCL(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short mode")
	}
	measure := func(cl ConsistencyLevel) float64 {
		cfg := DefaultConfig()
		cfg.WriteConsistency = cl
		cfg.ReadRepair = false
		cfg.AntiEntropyInterval = 0
		h := newHarness(t, cluster.DefaultConfig(), cfg, 6)
		h.generateLoad(3800, 500, 10*time.Second, 500)
		return h.store.Stats().Window.P95
	}
	one := measure(One)
	all := measure(All)
	if all >= one || one <= 0 {
		t.Fatalf("p95 window with ALL (%.6f) not smaller than with ONE (%.6f)", all, one)
	}
}

func TestStaleReadsUnderLoadWithWeakConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short mode")
	}
	cfg := DefaultConfig()
	cfg.ReadRepair = false
	cfg.AntiEntropyInterval = 0
	h := newHarness(t, cluster.DefaultConfig(), cfg, 7)
	h.generateLoad(2500, 2500, 10*time.Second, 200)
	stats := h.store.Stats()
	if stats.StaleReads == 0 {
		t.Fatal("expected some stale reads under load with ONE/ONE")
	}
	if stats.Reads == 0 || stats.Writes == 0 {
		t.Fatal("load generator issued no operations")
	}
}

func TestUnavailableWhenTooFewReplicas(t *testing.T) {
	clusterCfg := cluster.DefaultConfig()
	clusterCfg.InitialNodes = 3
	cfg := DefaultConfig()
	cfg.WriteConsistency = All
	h := newHarness(t, clusterCfg, cfg, 8)

	// Fail two of the three nodes: ALL on RF=3 cannot be satisfied.
	nodes := h.cluster.AvailableNodes()
	if err := h.cluster.FailNode(nodes[0].ID()); err != nil {
		t.Fatalf("FailNode: %v", err)
	}
	if err := h.cluster.FailNode(nodes[1].ID()); err != nil {
		t.Fatalf("FailNode: %v", err)
	}
	w := h.writeSync("k")
	if !errors.Is(w.Err, ErrUnavailable) && !errors.Is(w.Err, ErrNoNodes) {
		t.Fatalf("write error = %v, want unavailability", w.Err)
	}
	if h.store.Stats().WriteFailures == 0 {
		t.Fatal("write failure not counted")
	}
}

func TestReadFailsWhenClusterDown(t *testing.T) {
	h := defaultHarness(t)
	for _, n := range h.cluster.AvailableNodes() {
		_ = h.cluster.FailNode(n.ID())
	}
	r := h.readSync("k")
	if r.Err == nil {
		t.Fatal("read against fully failed cluster succeeded")
	}
	if h.store.Stats().ReadFailures == 0 {
		t.Fatal("read failure not counted")
	}
}

func TestOperationsAfterCloseFail(t *testing.T) {
	h := defaultHarness(t)
	h.store.Close()
	h.store.Close() // idempotent
	w := h.writeSync("k")
	if !errors.Is(w.Err, ErrStopped) {
		t.Fatalf("write after Close = %v, want ErrStopped", w.Err)
	}
	r := h.readSync("k")
	if !errors.Is(r.Err, ErrStopped) {
		t.Fatalf("read after Close = %v, want ErrStopped", r.Err)
	}
}

func TestHintedHandoffDeliversAfterRecovery(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AntiEntropyInterval = 0 // isolate hinted handoff
	cfg.ReadRepair = false
	h := newHarness(t, cluster.DefaultConfig(), cfg, 9)

	// A failed node keeps its ring position, so writes to keys it replicates
	// queue hints for it while it is down.
	victim := h.cluster.AvailableNodes()[0].ID()
	if err := h.cluster.FailNode(victim); err != nil {
		t.Fatalf("FailNode: %v", err)
	}
	for i := 0; i < 60; i++ {
		if w := h.writeSync(Key(fmt.Sprintf("h-%d", i))); w.Err != nil {
			t.Fatalf("write error: %v", w.Err)
		}
	}
	stats := h.store.Stats()
	if stats.HintsQueued == 0 {
		t.Fatal("no hints queued while a replica was down")
	}
	if stats.HintsDelivered != 0 {
		t.Fatal("hints delivered while the replica was still down")
	}
	if h.store.ReplicaKeyCount(victim) != 0 {
		t.Fatal("failed node received writes")
	}

	if err := h.cluster.RecoverNode(victim); err != nil {
		t.Fatalf("RecoverNode: %v", err)
	}
	if err := h.engine.Run(h.engine.Now() + 5*time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	stats = h.store.Stats()
	if stats.HintsDelivered == 0 {
		t.Fatal("queued hints were never delivered after recovery")
	}
	if h.store.ReplicaKeyCount(victim) == 0 {
		t.Fatal("recovered node did not catch up from hints")
	}
	if stats.LostUpdates != 0 {
		t.Fatalf("lost updates = %d with hinted handoff enabled", stats.LostUpdates)
	}
}

// TestPartitionHoldsMinorityHintsUntilHeal pins the split-brain semantics:
// a write acknowledged by a minority-side coordinator queues hints for the
// majority replicas, and those hints must NOT replay across the active cut
// on a retry tick — the inconsistency window of a partition closes at the
// heal, not at the next hint-retry interval.
func TestPartitionHoldsMinorityHintsUntilHeal(t *testing.T) {
	clusterCfg := cluster.DefaultConfig()
	clusterCfg.InitialNodes = 4
	cfg := DefaultConfig()
	cfg.AntiEntropyInterval = 0 // isolate hinted handoff
	cfg.ReadRepair = false
	cfg.HintRetryInterval = time.Second
	h := newHarness(t, clusterCfg, cfg, 21)
	net := h.cluster.Network()

	// Isolate one node and write (CL=ONE) until a minority-side coordinator
	// acknowledges a write: its majority replicas become hints whose origin
	// is on the minority side.
	nodes := h.cluster.AvailableNodes()
	minority := nodes[0].ID()
	net.Isolate([]cluster.NodeID{minority})
	for i := 0; i < 200; i++ {
		h.writeSync(Key(fmt.Sprintf("p-%d", i)))
	}
	queued := h.store.Stats().HintsQueued
	if queued == 0 {
		t.Fatal("no hints queued across the partition")
	}

	// Run through several retry intervals with the partition still active:
	// hints whose origin cannot reach their target must stay queued.
	if err := h.engine.Run(h.engine.Now() + 5*time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	crossCut := 0
	for target, hints := range h.store.pendingHints {
		for _, hint := range hints {
			if !net.Reachable(hint.origin, target) {
				crossCut++
			}
		}
	}
	if crossCut == 0 {
		t.Fatal("no cross-cut hints retained while the partition was active — they were delivered across the cut")
	}

	// Heal and let the retry ticker run: everything converges.
	net.Heal([]cluster.NodeID{minority})
	if err := h.engine.Run(h.engine.Now() + 10*time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if h.store.Stats().HintsDelivered == 0 {
		t.Fatal("hints never delivered after the heal")
	}
	for target, hints := range h.store.pendingHints {
		if len(hints) > 0 {
			t.Fatalf("%d hints still queued for %v after the heal", len(hints), target)
		}
	}
}

// TestAntiEntropySkipsActivePartition pins that the repair sweep does not
// leak cluster-wide knowledge across an active cut: divergence on either
// side persists until the heal, then the next sweep converges it.
func TestAntiEntropySkipsActivePartition(t *testing.T) {
	clusterCfg := cluster.DefaultConfig()
	clusterCfg.InitialNodes = 4
	cfg := DefaultConfig()
	cfg.HintedHandoff = false
	cfg.ReadRepair = false
	cfg.AntiEntropyInterval = 2 * time.Second
	h := newHarness(t, clusterCfg, cfg, 22)
	net := h.cluster.Network()

	minority := h.cluster.AvailableNodes()[0].ID()
	net.Isolate([]cluster.NodeID{minority})
	for i := 0; i < 100; i++ {
		h.writeSync(Key(fmt.Sprintf("ae-%d", i)))
	}
	before := h.store.ReplicaKeyCount(minority)
	if err := h.engine.Run(h.engine.Now() + 6*time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if h.store.Stats().AntiEntropyRan == 0 {
		t.Fatal("anti-entropy never ticked")
	}
	if got := h.store.ReplicaKeyCount(minority); got != before {
		t.Fatalf("anti-entropy repaired an isolated node across the cut: %d -> %d keys", before, got)
	}

	net.Heal([]cluster.NodeID{minority})
	if err := h.engine.Run(h.engine.Now() + 6*time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := h.store.ReplicaKeyCount(minority); got <= before {
		t.Fatalf("anti-entropy did not converge the minority after the heal: still %d keys", got)
	}
}

func TestAntiEntropyRepairsJoinedNode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HintedHandoff = false
	cfg.ReadRepair = false
	cfg.AntiEntropyInterval = 10 * time.Second
	clusterCfg := cluster.DefaultConfig()
	clusterCfg.BootstrapTime = 5 * time.Second
	h := newHarness(t, clusterCfg, cfg, 10)

	for i := 0; i < 60; i++ {
		if w := h.writeSync(Key(fmt.Sprintf("ae-%d", i))); w.Err != nil {
			t.Fatalf("write error: %v", w.Err)
		}
	}
	id, err := h.cluster.AddNode()
	if err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	// Let the node bootstrap and at least one anti-entropy cycle run.
	if err := h.engine.Run(h.engine.Now() + 30*time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if h.store.Stats().AntiEntropyRan == 0 {
		t.Fatal("anti-entropy never ran")
	}
	if h.store.ReplicaKeyCount(id) == 0 {
		t.Fatal("anti-entropy did not populate the new node")
	}
}

func TestLostUpdatesWithoutRepairMechanisms(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HintedHandoff = false
	cfg.ReadRepair = false
	cfg.AntiEntropyInterval = 0
	cfg.WriteConsistency = One
	clusterCfg := cluster.DefaultConfig()
	clusterCfg.InitialNodes = 4
	h := newHarness(t, clusterCfg, cfg, 11)

	// Fail one replica: with handoff, read repair and anti-entropy all
	// disabled, updates destined for it are simply dropped.
	if err := h.cluster.FailNode(h.cluster.AvailableNodes()[0].ID()); err != nil {
		t.Fatalf("FailNode: %v", err)
	}
	for i := 0; i < 100; i++ {
		h.writeSync(Key(fmt.Sprintf("l-%d", i)))
	}
	if h.store.Stats().LostUpdates == 0 {
		t.Fatal("expected lost updates when all repair mechanisms are disabled")
	}
	if h.store.Stats().HintsQueued != 0 {
		t.Fatal("hints queued although hinted handoff and anti-entropy are disabled")
	}
}

func TestSetReplicationFactor(t *testing.T) {
	h := defaultHarness(t)
	if err := h.store.SetReplicationFactor(0); err == nil {
		t.Fatal("rf=0 accepted")
	}
	if err := h.store.SetReplicationFactor(3); err != nil {
		t.Fatalf("no-op rf change failed: %v", err)
	}
	if err := h.store.SetReplicationFactor(1); err != nil {
		t.Fatalf("rf=1: %v", err)
	}
	if h.store.ReplicationFactor() != 1 {
		t.Fatal("rf not updated")
	}
	if err := h.store.SetReplicationFactor(3); err != nil {
		t.Fatalf("rf=3: %v", err)
	}
	// Growing RF triggers a rebalance: nodes carry streaming load now.
	loaded := false
	for _, n := range h.cluster.AvailableNodes() {
		if n.RebalanceLoad() > 0 {
			loaded = true
		}
	}
	if !loaded {
		t.Fatal("rebalance load not applied after RF increase")
	}
	if err := h.engine.Run(h.engine.Now() + time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, n := range h.cluster.AvailableNodes() {
		if n.RebalanceLoad() != 0 {
			t.Fatal("rebalance load not cleared")
		}
	}
}

func TestSetConsistencyLevels(t *testing.T) {
	h := defaultHarness(t)
	h.store.SetReadConsistency(Quorum)
	h.store.SetWriteConsistency(All)
	if h.store.ReadConsistency() != Quorum || h.store.WriteConsistency() != All {
		t.Fatal("consistency setters did not apply")
	}
	h.store.SetReadConsistency(ConsistencyLevel(99))
	if h.store.ReadConsistency() != Quorum {
		t.Fatal("invalid consistency level was accepted")
	}
}

func TestObserverReceivesWriteObservations(t *testing.T) {
	h := defaultHarness(t)
	var observed []WriteObservation
	h.store.Subscribe(observerFunc(func(o WriteObservation) { observed = append(observed, o) }))
	h.store.Subscribe(nil) // ignored
	h.writeSync("obs")
	// The observation is emitted once every reachable replica has
	// acknowledged, which happens shortly after the client acknowledgement at
	// CL=ONE; drain the remaining in-flight events.
	h.runUntil(func() bool { return len(observed) > 0 }, 100000)
	if len(observed) != 1 {
		t.Fatalf("observer received %d observations, want 1", len(observed))
	}
	o := observed[0]
	if o.Replicas != 3 || o.Acked == 0 || o.AckedAt <= o.IssuedAt {
		t.Fatalf("implausible observation %+v", o)
	}
}

type observerFunc func(WriteObservation)

func (f observerFunc) ObserveWrite(o WriteObservation) { f(o) }

func TestResetStats(t *testing.T) {
	h := defaultHarness(t)
	h.writeSync("a")
	h.readSync("a")
	h.store.ResetStats()
	s := h.store.Stats()
	if s.Writes != 0 || s.Reads != 0 || s.WriteLatency.Count != 0 {
		t.Fatalf("ResetStats left residue: %+v", s)
	}
}

func TestRecentWindowQuantile(t *testing.T) {
	h := defaultHarness(t)
	for i := 0; i < 20; i++ {
		h.writeSync(Key(fmt.Sprintf("w-%d", i)))
	}
	if q := h.store.RecentWindowQuantile(0.99); q < 0 {
		t.Fatalf("recent window quantile negative: %v", q)
	}
}

func TestReadRepairConvergesReplicas(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short mode")
	}
	measure := func(readRepair bool) uint64 {
		cfg := DefaultConfig()
		cfg.ReadRepair = readRepair
		cfg.AntiEntropyInterval = 0
		h := newHarness(t, cluster.DefaultConfig(), cfg, 12)
		h.generateLoad(2000, 4000, 8*time.Second, 50)
		return h.store.Stats().ReadRepairs
	}
	withRepair := measure(true)
	withoutRepair := measure(false)
	if withRepair == 0 {
		t.Fatal("read repair enabled but never triggered under load")
	}
	if withoutRepair != 0 {
		t.Fatal("read repair triggered although disabled")
	}
}
