package store

import (
	"autonosql/internal/metrics"
)

// TenantID tags an operation with the tenant that issued it. The zero value
// is the untagged aggregate: scenarios that declare no tenants never pay for
// tenant bookkeeping beyond one nil check per recording point. Registered
// tenants are numbered 1..n.
type TenantID int

// tenantStats is one tenant's ground-truth slice of the store statistics.
// Every metric also feeds the aggregate set, so the untagged totals remain
// the sum over tenants plus any untagged traffic (probes).
type tenantStats struct {
	reads         metrics.Counter
	writes        metrics.Counter
	readFailures  metrics.Counter
	writeFailures metrics.Counter
	staleReads    metrics.Counter
	shedOps       metrics.Counter

	readLatency  *metrics.Histogram
	writeLatency *metrics.Histogram
	windowHist   *metrics.Histogram
	recentWindow *metrics.WindowedStat
}

// TenantGroundTruth is a snapshot of one tenant's cumulative ground-truth
// statistics, the per-tenant analogue of Stats.
type TenantGroundTruth struct {
	Reads         uint64
	Writes        uint64
	ReadFailures  uint64
	WriteFailures uint64
	StaleReads    uint64
	// ShedOps counts operations rejected by admission control before they
	// reached the store. Shed operations are also counted in ReadFailures /
	// WriteFailures — a shed is a rejection in the tenant's ground truth —
	// but never in the aggregate Stats, whose counters cover operations the
	// store actually saw.
	ShedOps uint64

	ReadLatency  metrics.Snapshot
	WriteLatency metrics.Snapshot
	// Window summarises the true inconsistency window of this tenant's
	// acknowledged writes, in seconds.
	Window metrics.Snapshot
}

// RegisterTenants allocates per-tenant ground-truth metric sets for tenant
// IDs 1..n. It must be called before any tagged operation is issued;
// registering zero tenants keeps the store in untagged single-tenant mode.
func (s *Store) RegisterTenants(n int) {
	if n <= 0 {
		return
	}
	s.tenants = make([]*tenantStats, n)
	for i := range s.tenants {
		s.tenants[i] = &tenantStats{
			readLatency:  metrics.NewHistogram(0),
			writeLatency: metrics.NewHistogram(0),
			windowHist:   metrics.NewHistogram(0),
			recentWindow: metrics.NewWindowedStat(1024),
		}
	}
}

// tenant resolves a tag to its metric set; it returns nil for the untagged
// aggregate (id 0) and for unregistered IDs, so every recording point can
// guard with a single nil check.
func (s *Store) tenant(id TenantID) *tenantStats {
	if id <= 0 || int(id) > len(s.tenants) {
		return nil
	}
	return s.tenants[id-1]
}

// TenantStats returns a snapshot of one tenant's cumulative ground truth.
// It returns the zero value for the aggregate ID and unregistered IDs.
func (s *Store) TenantStats(id TenantID) TenantGroundTruth {
	t := s.tenant(id)
	if t == nil {
		return TenantGroundTruth{}
	}
	return TenantGroundTruth{
		Reads:         t.reads.Value(),
		Writes:        t.writes.Value(),
		ReadFailures:  t.readFailures.Value(),
		WriteFailures: t.writeFailures.Value(),
		StaleReads:    t.staleReads.Value(),
		ShedOps:       t.shedOps.Value(),
		ReadLatency:   t.readLatency.Snapshot(),
		WriteLatency:  t.writeLatency.Snapshot(),
		Window:        t.windowHist.Snapshot(),
	}
}

// TenantShed records an operation of the tagged tenant rejected by admission
// control before it reached the store: the shed is counted as a rejection in
// the tenant's ground truth. It is a no-op for the untagged aggregate.
func (s *Store) TenantShed(id TenantID, write bool) {
	t := s.tenant(id)
	if t == nil {
		return
	}
	t.shedOps.Inc()
	if write {
		t.writeFailures.Inc()
	} else {
		t.readFailures.Inc()
	}
}

// TenantRecentWindowQuantile returns the q-quantile (in seconds) of one
// tenant's true inconsistency window over its most recent writes, the
// per-tenant analogue of RecentWindowQuantile.
func (s *Store) TenantRecentWindowQuantile(id TenantID, q float64) float64 {
	t := s.tenant(id)
	if t == nil {
		return 0
	}
	return t.recentWindow.Quantile(q)
}

// tenantWriteFailure and tenantReadFailure record a failed operation for a
// tagged tenant; they are no-ops for the untagged aggregate.
func (s *Store) tenantWriteFailure(id TenantID) {
	if t := s.tenant(id); t != nil {
		t.writeFailures.Inc()
	}
}

func (s *Store) tenantReadFailure(id TenantID) {
	if t := s.tenant(id); t != nil {
		t.readFailures.Inc()
	}
}
