package store

import (
	"autonosql/internal/cluster"
)

// version is a monotonically increasing logical version assigned by the
// coordinator; conflict resolution is last-writer-wins on version number.
type version uint64

// replicaState is the per-node view of the keyspace: for each key, the
// highest version that node has applied so far. Values themselves are not
// materialised — consistency behaviour depends only on versions.
type replicaState struct {
	node     cluster.NodeID
	versions map[Key]version
	applied  uint64
}

func newReplicaState(node cluster.NodeID) *replicaState {
	return &replicaState{node: node, versions: make(map[Key]version)}
}

// apply records that the replica has applied the given version of key,
// unless it already holds a newer one (last-writer-wins).
func (r *replicaState) apply(key Key, v version) {
	r.applied++
	if cur, ok := r.versions[key]; ok && cur >= v {
		return
	}
	r.versions[key] = v
}

// read returns the version the replica currently holds for key (zero when
// the replica has never seen the key).
func (r *replicaState) read(key Key) version {
	return r.versions[key]
}

// keys returns the number of distinct keys the replica holds.
func (r *replicaState) keys() int { return len(r.versions) }
