package store

import (
	"testing"
	"time"

	"autonosql/internal/obs"
)

// TestStoreWriteTraceSpans pins the causal span tree a sampled write records:
// dispatch, coordinator processing, per-replica arrival/apply, replica acks,
// the quorum decision, the client acknowledgement and the SLA-accounting
// terminal, in non-decreasing virtual-time order, finished exactly once.
func TestStoreWriteTraceSpans(t *testing.T) {
	rig := newBenchRig(t, 3)
	tr := obs.NewTracer(1, 0)
	rig.store.SetTracer(tr)

	fired := 0
	cb := func(Result) { fired++ }
	rig.store.WriteAs(0, rig.keys[0], cb)
	rig.settle(t, &fired, 1)
	// Drain until the tracked write resolved (all replicas applied), then a
	// little further so the late replica acks — in flight back to the
	// coordinator when the window is recorded — land in the trace too.
	for i := 0; i < 100000 && len(tr.Traces()) > 0 && !tr.Traces()[0].Done; i++ {
		if !rig.engine.Step() {
			break
		}
	}
	for i := 0; i < 20; i++ {
		rig.engine.Step()
	}

	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	got := traces[0]
	if !got.Write || got.Key != string(rig.keys[0]) {
		t.Errorf("trace identity = write:%v key:%q", got.Write, got.Key)
	}
	if !got.Done || got.Err != "" {
		t.Fatalf("trace not finished cleanly: done=%v err=%q", got.Done, got.Err)
	}
	want := map[string]int{
		"dispatch": 1, "coordinate": 1, "quorum": 1, "client-ack": 1, "sla-account": 1,
	}
	counts := map[string]int{}
	last := time.Duration(-1)
	for _, ev := range got.Events {
		counts[ev.Phase]++
		if ev.At < last {
			t.Errorf("span %q at %v out of order (previous %v)", ev.Phase, ev.At, last)
		}
		last = ev.At
	}
	for phase, n := range want {
		if counts[phase] != n {
			t.Errorf("phase %q occurs %d times, want %d (events: %+v)", phase, counts[phase], n, got.Events)
		}
	}
	// RF=3 on a 3-node ring: every replica arrives (coordinator applies
	// inline, so 2 remote arrivals), applies and acks.
	if counts["replica-apply"] != 3 || counts["ack"] != 3 {
		t.Errorf("replica-apply=%d ack=%d, want 3 each", counts["replica-apply"], counts["ack"])
	}
	if got.End < got.Start {
		t.Errorf("trace end %v before start %v", got.End, got.Start)
	}
}

// TestStoreReadTraceSpans pins the read-side span tree.
func TestStoreReadTraceSpans(t *testing.T) {
	rig := newBenchRig(t, 3)
	fired := 0
	cb := func(Result) { fired++ }
	rig.store.WriteAs(0, rig.keys[0], cb)
	rig.settle(t, &fired, 1)

	tr := obs.NewTracer(1, 0)
	rig.store.SetTracer(tr)
	rig.store.ReadAs(0, rig.keys[0], cb)
	rig.settle(t, &fired, 2)

	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	got := traces[0]
	if got.Write {
		t.Error("read trace marked as a write")
	}
	if !got.Done || got.Err != "" {
		t.Fatalf("read trace not finished cleanly: done=%v err=%q", got.Done, got.Err)
	}
	counts := map[string]int{}
	for _, ev := range got.Events {
		counts[ev.Phase]++
	}
	for _, phase := range []string{"dispatch", "coordinate", "quorum", "client-done"} {
		if counts[phase] != 1 {
			t.Errorf("phase %q occurs %d times, want 1 (events: %+v)", phase, counts[phase], got.Events)
		}
	}
	if counts["replica-respond"] < 1 {
		t.Errorf("no replica-respond span recorded (events: %+v)", got.Events)
	}
}

// TestTracedUnsampledAllocationFree pins that attaching a tracer does not
// change the hot path's allocation budget for unsampled operations: with a
// sampling period far above the op count, every op takes the counter-only
// branch and stays within the same bounds as the tracer-off path.
func TestTracedUnsampledAllocationFree(t *testing.T) {
	rig := newBenchRig(t, 5)
	rig.store.SetTracer(obs.NewTracer(1<<30, 0))

	fired := 0
	cb := func(Result) { fired++ }
	issued := 0
	for ; issued < 128; issued++ {
		rig.store.Write(rig.keys[issued%len(rig.keys)], cb)
		rig.settle(t, &fired, issued+1)
	}
	avg := testing.AllocsPerRun(300, func() {
		issued++
		rig.store.Write(rig.keys[issued%len(rig.keys)], cb)
		rig.settle(t, &fired, issued)
	})
	if avg > maxWriteAllocs {
		t.Errorf("traced-unsampled write path allocates %.1f objects per op, want <= %d", avg, maxWriteAllocs)
	}
	avg = testing.AllocsPerRun(300, func() {
		issued++
		rig.store.Read(rig.keys[issued%len(rig.keys)], cb)
		rig.settle(t, &fired, issued)
	})
	if avg > maxReadAllocs {
		t.Errorf("traced-unsampled read path allocates %.1f objects per op, want <= %d", avg, maxReadAllocs)
	}
	if sampled := rig.store.tracer.Sampled(); sampled != 1 {
		// The very first op is sampled (counter starts at the period
		// boundary); nothing after it should be.
		t.Errorf("sampled %d ops, want exactly the first", sampled)
	}
}
