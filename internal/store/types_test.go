package store

import (
	"testing"
	"testing/quick"
)

func TestConsistencyLevelString(t *testing.T) {
	cases := map[ConsistencyLevel]string{
		One:                 "ONE",
		Two:                 "TWO",
		Quorum:              "QUORUM",
		All:                 "ALL",
		ConsistencyLevel(9): "CL(9)",
	}
	for cl, want := range cases {
		if got := cl.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", cl, got, want)
		}
	}
}

func TestConsistencyLevelRequired(t *testing.T) {
	cases := []struct {
		cl   ConsistencyLevel
		rf   int
		want int
	}{
		{One, 3, 1},
		{Two, 3, 2},
		{Quorum, 3, 2},
		{Quorum, 5, 3},
		{Quorum, 1, 1},
		{All, 3, 3},
		{All, 1, 1},
		{Two, 1, 1},                 // clamped to rf
		{One, 0, 1},                 // degenerate rf
		{ConsistencyLevel(0), 3, 1}, // unknown level behaves like ONE
	}
	for _, tc := range cases {
		if got := tc.cl.Required(tc.rf); got != tc.want {
			t.Errorf("%v.Required(%d) = %d, want %d", tc.cl, tc.rf, got, tc.want)
		}
	}
}

func TestConsistencyLevelRequiredProperties(t *testing.T) {
	f := func(rfRaw uint8) bool {
		rf := int(rfRaw%9) + 1
		for _, cl := range []ConsistencyLevel{One, Two, Quorum, All} {
			n := cl.Required(rf)
			if n < 1 || n > rf {
				return false
			}
		}
		// Quorum must be a majority: two quorums always intersect.
		q := Quorum.Required(rf)
		return 2*q > rf
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatalf("Required property failed: %v", err)
	}
}

func TestStricter(t *testing.T) {
	if !All.Stricter(One, 3) {
		t.Fatal("ALL should be stricter than ONE at rf=3")
	}
	if Quorum.Stricter(All, 3) {
		t.Fatal("QUORUM should not be stricter than ALL at rf=3")
	}
	if One.Stricter(One, 3) {
		t.Fatal("a level is not stricter than itself")
	}
}

func TestParseConsistencyLevel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want ConsistencyLevel
	}{
		{"ONE", One}, {"one", One}, {"TWO", Two}, {"two", Two},
		{"QUORUM", Quorum}, {"quorum", Quorum}, {"ALL", All}, {"all", All},
	} {
		got, err := ParseConsistencyLevel(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseConsistencyLevel(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseConsistencyLevel("THREE"); err == nil {
		t.Fatal("ParseConsistencyLevel accepted unknown level")
	}
}

func TestOpKindString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" {
		t.Fatal("OpKind strings wrong")
	}
	if OpKind(9).String() != "op(9)" {
		t.Fatal("unknown OpKind string wrong")
	}
}
