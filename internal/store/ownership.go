package store

import (
	"autonosql/internal/cluster"
)

// OwnerSegment maps a node to one of segments lane segments by its position
// on the consistent-hash ring: the segment index is the node's primary ring
// token scaled into [0, segments). The assignment is a pure function of the
// node's identity and the segment count, which gives sharded runs the
// ownership stability the lockstep protocol needs for free:
//
//   - scale-out/in never moves an existing node's owner (other nodes joining
//     or leaving cannot change this node's token);
//   - crash/restart keeps the owner (the node keeps its ring position, and so
//     its token);
//   - the mapping is identical whatever the worker count or epoch length,
//     because it never looks at either.
//
// The token is the same FNV-1a/fmix64 hash the ring uses for the node's
// first virtual node, so segment boundaries correspond to contiguous arcs of
// the ring and co-located vnodes tend to share a segment.
func OwnerSegment(id cluster.NodeID, segments int) int {
	if segments <= 1 {
		return 0
	}
	tok := hashString(id.String() + "#0")
	// Split the 64-bit token space into `segments` equal arcs. The divisor
	// rounds up so the top arc cannot overflow past segments-1.
	arc := ^uint64(0)/uint64(segments) + 1
	return int(tok / arc)
}
