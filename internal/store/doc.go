// Package store implements the simulated eventually-consistent key-value
// store whose inconsistency window the paper's autonomous system monitors
// and controls. The model follows the Dynamo/Cassandra lineage: keys map to
// replicas through a consistent-hash Ring, operations run through a
// coordinator at a tunable consistency level (ONE, TWO, QUORUM, ALL), and
// replicas that were not needed for the acknowledgement converge
// asynchronously via replication applies, read repair, hinted handoff and
// anti-entropy sweeps.
//
// The consistency-related knobs — replication factor and the read and write
// consistency levels — are exactly the parameters the paper's controller
// adjusts at run time, so they can be changed on a live Store through the
// Set* methods.
//
// The Store keeps ground truth the rest of the system must not see: the true
// inconsistency window of every write (the time from client acknowledgement
// until the last replica converged) and the count of stale reads actually
// served. Experiments read these through Stats and RecentWindowQuantile to
// score the monitor's estimates and the controller's decisions; controllers
// only ever observe the monitor. An Observer hook exposes coordinator-side
// write acknowledgement spreads, which is what passive monitoring consumes.
package store
