// Package store implements a simulated eventually-consistent replicated
// key-value store in the style of Dynamo-family systems (Cassandra, Riak):
// consistent-hash partitioning, N-way replication, tunable per-operation
// consistency levels, read repair, hinted handoff and periodic anti-entropy.
//
// The store runs entirely on the discrete-event simulation engine. For every
// acknowledged write it records the *true inconsistency window*: the period
// between the client acknowledgement and the moment the last live replica of
// the key has applied the write. That window — and how it reacts to load,
// replication factor, consistency level, background platform load and
// reconfiguration actions — is the quantity the paper's autonomous system
// monitors and controls.
package store

import (
	"errors"
	"fmt"
)

// Key identifies a data item.
type Key string

// ConsistencyLevel is the number of replica acknowledgements an operation
// waits for, expressed symbolically as in Cassandra.
type ConsistencyLevel int

// Supported consistency levels.
const (
	// One waits for a single replica.
	One ConsistencyLevel = iota + 1
	// Two waits for two replicas.
	Two
	// Quorum waits for floor(RF/2)+1 replicas.
	Quorum
	// All waits for every replica.
	All
)

// String implements fmt.Stringer.
func (c ConsistencyLevel) String() string {
	switch c {
	case One:
		return "ONE"
	case Two:
		return "TWO"
	case Quorum:
		return "QUORUM"
	case All:
		return "ALL"
	default:
		return fmt.Sprintf("CL(%d)", int(c))
	}
}

// Required returns how many replica acknowledgements the level needs for a
// replication factor rf. The result is clamped to [1, rf].
func (c ConsistencyLevel) Required(rf int) int {
	if rf < 1 {
		rf = 1
	}
	var n int
	switch c {
	case One:
		n = 1
	case Two:
		n = 2
	case Quorum:
		n = rf/2 + 1
	case All:
		n = rf
	default:
		n = 1
	}
	if n < 1 {
		n = 1
	}
	if n > rf {
		n = rf
	}
	return n
}

// Stricter reports whether c requires at least as many acks as other at the
// given replication factor and more for at least one comparison point.
func (c ConsistencyLevel) Stricter(other ConsistencyLevel, rf int) bool {
	return c.Required(rf) > other.Required(rf)
}

// ParseConsistencyLevel parses a symbolic level name (case-sensitive,
// Cassandra style).
func ParseConsistencyLevel(s string) (ConsistencyLevel, error) {
	switch s {
	case "ONE", "one":
		return One, nil
	case "TWO", "two":
		return Two, nil
	case "QUORUM", "quorum":
		return Quorum, nil
	case "ALL", "all":
		return All, nil
	default:
		return 0, fmt.Errorf("store: unknown consistency level %q", s)
	}
}

// Errors returned by store operations.
var (
	// ErrUnavailable is returned when fewer replicas than the consistency
	// level requires are reachable.
	ErrUnavailable = errors.New("store: not enough replicas available")
	// ErrNoNodes is returned when the cluster has no available nodes at all.
	ErrNoNodes = errors.New("store: no available nodes")
	// ErrStopped is returned for operations submitted after Close.
	ErrStopped = errors.New("store: stopped")
)

// OpKind distinguishes reads from writes in results and metrics.
type OpKind int

// Operation kinds.
const (
	// OpRead is a client read.
	OpRead OpKind = iota + 1
	// OpWrite is a client write.
	OpWrite
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}
