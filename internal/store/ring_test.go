package store

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"autonosql/internal/cluster"
)

func ringWithNodes(n int) *Ring {
	r := NewRing(0)
	for i := 1; i <= n; i++ {
		r.Add(cluster.NodeID(i))
	}
	return r
}

func TestRingMembership(t *testing.T) {
	r := NewRing(0)
	if r.Size() != 0 {
		t.Fatal("new ring should be empty")
	}
	r.Add(1)
	r.Add(2)
	r.Add(1) // duplicate is a no-op
	if r.Size() != 2 {
		t.Fatalf("Size = %d, want 2", r.Size())
	}
	if !r.Contains(1) || r.Contains(3) {
		t.Fatal("Contains gave wrong answers")
	}
	members := r.Members()
	if len(members) != 2 || members[0] != 1 || members[1] != 2 {
		t.Fatalf("Members = %v", members)
	}
	r.Remove(1)
	r.Remove(42) // removing non-member is a no-op
	if r.Size() != 1 || r.Contains(1) {
		t.Fatal("Remove did not work")
	}
}

func TestReplicasForDistinctAndStable(t *testing.T) {
	r := ringWithNodes(5)
	key := Key("user:42")
	reps := r.ReplicasFor(key, 3)
	if len(reps) != 3 {
		t.Fatalf("got %d replicas, want 3", len(reps))
	}
	seen := map[cluster.NodeID]bool{}
	for _, id := range reps {
		if seen[id] {
			t.Fatalf("duplicate replica %v in %v", id, reps)
		}
		seen[id] = true
	}
	again := r.ReplicasFor(key, 3)
	for i := range reps {
		if reps[i] != again[i] {
			t.Fatalf("placement not deterministic: %v vs %v", reps, again)
		}
	}
}

func TestReplicasForClampsToMembers(t *testing.T) {
	r := ringWithNodes(2)
	reps := r.ReplicasFor("k", 5)
	if len(reps) != 2 {
		t.Fatalf("got %d replicas, want 2 (cluster size)", len(reps))
	}
	if got := r.ReplicasFor("k", 0); got != nil {
		t.Fatalf("rf=0 should return nil, got %v", got)
	}
	empty := NewRing(0)
	if got := empty.ReplicasFor("k", 3); got != nil {
		t.Fatalf("empty ring should return nil, got %v", got)
	}
}

func TestPrimary(t *testing.T) {
	r := ringWithNodes(3)
	p, ok := r.Primary("some-key")
	if !ok || p < 1 || p > 3 {
		t.Fatalf("Primary = %v, %v", p, ok)
	}
	empty := NewRing(0)
	if _, ok := empty.Primary("k"); ok {
		t.Fatal("Primary on empty ring should report false")
	}
}

func TestRingBalance(t *testing.T) {
	r := ringWithNodes(4)
	counts := map[cluster.NodeID]int{}
	const keys = 20000
	for i := 0; i < keys; i++ {
		p, _ := r.Primary(Key(fmt.Sprintf("key-%d", i)))
		counts[p]++
	}
	for id, c := range counts {
		share := float64(c) / keys
		if share < 0.10 || share > 0.45 {
			t.Fatalf("node %v owns %.1f%% of keys, expected roughly 25%%", id, share*100)
		}
	}
}

func TestRingMinimalDisruptionOnRemove(t *testing.T) {
	r := ringWithNodes(5)
	const keys = 5000
	before := make(map[Key]cluster.NodeID, keys)
	for i := 0; i < keys; i++ {
		k := Key(fmt.Sprintf("key-%d", i))
		before[k], _ = r.Primary(k)
	}
	r.Remove(3)
	moved := 0
	for k, prev := range before {
		now, _ := r.Primary(k)
		if now != prev {
			moved++
			if prev != 3 {
				// Keys not owned by the removed node must not move.
				t.Fatalf("key %q moved from %v to %v although %v stayed", k, prev, now, prev)
			}
		}
	}
	if moved == 0 {
		t.Fatal("no keys moved after removing a node")
	}
	if float64(moved)/keys > 0.40 {
		t.Fatalf("too many keys moved: %d/%d", moved, keys)
	}
}

func TestReplicasForPropertyPreferenceListPrefix(t *testing.T) {
	// Property: the rf-1 preference list is always a prefix of the rf list.
	rng := rand.New(rand.NewSource(4))
	r := ringWithNodes(6)
	f := func(raw uint32, rfRaw uint8) bool {
		key := Key(fmt.Sprintf("k-%d", raw))
		rf := int(rfRaw%5) + 2
		long := r.ReplicasFor(key, rf)
		short := r.ReplicasFor(key, rf-1)
		if len(short) > len(long) {
			return false
		}
		for i := range short {
			if short[i] != long[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatalf("prefix property failed: %v", err)
	}
}

func TestReplicaStateLastWriterWins(t *testing.T) {
	rs := newReplicaState(1)
	if rs.read("k") != 0 {
		t.Fatal("unseen key should read as version 0")
	}
	rs.apply("k", 5)
	rs.apply("k", 3) // stale apply must not regress
	if got := rs.read("k"); got != 5 {
		t.Fatalf("read = %d, want 5", got)
	}
	rs.apply("k", 9)
	if got := rs.read("k"); got != 9 {
		t.Fatalf("read = %d, want 9", got)
	}
	if rs.keys() != 1 {
		t.Fatalf("keys = %d, want 1", rs.keys())
	}
	if rs.applied != 3 {
		t.Fatalf("applied = %d, want 3", rs.applied)
	}
}
