// Package hunt is a deterministic adversarial search harness over scenario
// specifications: starting from a base spec it perturbs workload shape, fault
// schedules and control settings with seed-derived mutations, scores every
// run on a chosen badness objective, hill-climbs toward the worst case it can
// find and then shrinks the winner back to a minimal mutation set that still
// reproduces (a configurable fraction of) the worst score.
//
// Everything is deterministic: the same base spec and hunter seed walk the
// same mutation sequence, evaluate the same candidates and emit the same
// minimal spec, whatever the parallelism — there are no wall-clock budgets
// and no shared random state. Found cases are persisted as golden spec +
// trace pairs (see Case) and re-verified bit-for-bit in CI.
package hunt

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"autonosql"
)

// Objective names a badness score the hunter maximises.
type Objective string

// Supported objectives.
const (
	// ObjectiveGoldViolations is the total SLA violation minutes of
	// gold-class tenants (all tenants' — or the aggregate's — violation
	// minutes when no gold tenant exists).
	ObjectiveGoldViolations Objective = "gold-violations"
	// ObjectiveShedStorm is the total number of operations shed by
	// admission control across all tenants.
	ObjectiveShedStorm Objective = "shed-storm"
	// ObjectiveOscillation is the number of scaling direction changes in
	// the cluster-size series: a controller that thrashes scores high.
	ObjectiveOscillation Objective = "oscillation"
	// ObjectiveCostBlowup is the run's total priced cost — infrastructure
	// plus SLA penalties plus stale-read compensation. It hunts for inputs
	// that make the controller spend the most money.
	ObjectiveCostBlowup Objective = "cost-blowup"
)

// ParseObjective validates an objective name.
func ParseObjective(s string) (Objective, error) {
	switch o := Objective(s); o {
	case ObjectiveGoldViolations, ObjectiveShedStorm, ObjectiveOscillation, ObjectiveCostBlowup:
		return o, nil
	default:
		return "", fmt.Errorf("hunt: unknown objective %q (want %q, %q, %q or %q)",
			s, ObjectiveGoldViolations, ObjectiveShedStorm, ObjectiveOscillation, ObjectiveCostBlowup)
	}
}

// Score computes the objective's badness for one finished run. Higher is
// worse (for the system; better for the hunter).
func Score(obj Objective, rep *autonosql.Report) float64 {
	switch obj {
	case ObjectiveGoldViolations:
		if len(rep.Tenants) == 0 {
			return rep.Violations.Total
		}
		gold := 0.0
		seenGold := false
		for _, tr := range rep.Tenants {
			if tr.Class == string(autonosql.SLAGold) {
				gold += tr.Violations.Total
				seenGold = true
			}
		}
		if !seenGold {
			for _, tr := range rep.Tenants {
				gold += tr.Violations.Total
			}
		}
		return gold
	case ObjectiveShedStorm:
		total := 0.0
		for _, tr := range rep.Tenants {
			total += float64(tr.ShedOps)
		}
		return total
	case ObjectiveOscillation:
		pts := rep.Series[autonosql.SeriesClusterSize]
		changes := 0
		prevDir := 0
		for i := 1; i < len(pts); i++ {
			dir := 0
			if pts[i].Value > pts[i-1].Value {
				dir = 1
			} else if pts[i].Value < pts[i-1].Value {
				dir = -1
			}
			if dir != 0 && prevDir != 0 && dir != prevDir {
				changes++
			}
			if dir != 0 {
				prevDir = dir
			}
		}
		return float64(changes)
	case ObjectiveCostBlowup:
		return rep.Cost.Total
	default:
		return 0
	}
}

// Config parameterises one hunt.
type Config struct {
	// Base is the scenario the search perturbs. It must validate.
	Base autonosql.ScenarioSpec
	// Objective is the badness score to maximise.
	Objective Objective
	// Seed drives the mutation stream; same base + same seed = same hunt.
	Seed int64
	// Rounds is the number of hill-climbing rounds (default 4).
	Rounds int
	// Neighbors is the number of mutated candidates per round (default 6).
	Neighbors int
	// Parallelism bounds concurrent candidate evaluations (default
	// GOMAXPROCS). It affects wall-clock only, never the result.
	Parallelism int
	// ShrinkKeepFraction is the fraction of the worst score a shrunk spec
	// must retain (default 0.9).
	ShrinkKeepFraction float64
}

func (c *Config) defaults() error {
	if _, err := ParseObjective(string(c.Objective)); err != nil {
		return err
	}
	if err := c.Base.Validate(); err != nil {
		return fmt.Errorf("hunt: base spec: %w", err)
	}
	if c.Rounds <= 0 {
		c.Rounds = 4
	}
	if c.Neighbors <= 0 {
		c.Neighbors = 6
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.ShrinkKeepFraction <= 0 || c.ShrinkKeepFraction > 1 {
		c.ShrinkKeepFraction = 0.9
	}
	return nil
}

// Result is the outcome of one hunt.
type Result struct {
	// BaseScore is the objective on the unperturbed base spec.
	BaseScore float64
	// Worst is the worst spec the climb found and WorstScore its score.
	Worst      autonosql.ScenarioSpec
	WorstScore float64
	// Shrunk is the minimal mutation subset's spec, ShrunkScore its score
	// and Mutations the descriptions of the surviving mutations in
	// application order.
	Shrunk      autonosql.ScenarioSpec
	ShrunkScore float64
	Mutations   []string
	// Evaluations counts full scenario runs the hunt spent.
	Evaluations int
}

// hunter carries the search state.
type hunter struct {
	cfg   Config
	rng   *rand.Rand
	evals int
}

// Run executes one hunt: evaluate the base, hill-climb Rounds×Neighbors
// mutated candidates, then greedily shrink the winner's mutation list to a
// minimal subset that keeps ShrinkKeepFraction of the worst score.
func Run(cfg Config) (*Result, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	h := &hunter{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}

	baseScore, err := h.eval(cfg.Base)
	if err != nil {
		return nil, fmt.Errorf("hunt: base run: %w", err)
	}

	cur := []Mutation(nil)
	curScore := baseScore
	// elite is the best candidate the climb rejected in the previous round:
	// genetic material for one crossover candidate per round. Like the
	// mutation stream it is a deterministic function of base + seed, so the
	// crossover step keeps the whole hunt reproducible.
	var elite []Mutation
	for round := 0; round < cfg.Rounds; round++ {
		// Mutation generation draws from the shared stream sequentially, so
		// the candidate set is independent of evaluation order.
		candidates := make([][]Mutation, cfg.Neighbors)
		for i := range candidates {
			mut := h.newMutation(applyAll(cfg.Base, cur))
			candidates[i] = append(append([]Mutation(nil), cur...), mut)
		}
		if len(elite) > 0 {
			candidates = append(candidates, crossover(h.rng, cur, elite))
		}
		scores := h.evalAll(candidates)
		best, bestScore := -1, curScore
		for i, sc := range scores {
			if sc > bestScore { // strict: earliest index wins ties
				best, bestScore = i, sc
			}
		}
		// The best rejected candidate becomes the next round's elite mate.
		elite = nil
		eliteScore := math.Inf(-1)
		for i, sc := range scores {
			if i != best && sc > eliteScore {
				elite, eliteScore = candidates[i], sc
			}
		}
		if best >= 0 {
			cur, curScore = candidates[best], bestScore
		}
	}

	res := &Result{
		BaseScore:  baseScore,
		Worst:      applyAll(cfg.Base, cur),
		WorstScore: curScore,
	}

	// Shrink: drop mutations one at a time, keeping any removal whose spec
	// still scores at least the fixed floor. The floor is computed from the
	// original worst score, not re-tightened per pass, so shrinking can
	// never walk the score down a ratchet.
	floor := curScore * cfg.ShrinkKeepFraction
	shrunk := cur
	shrunkScore := curScore
	for changed := true; changed && len(shrunk) > 0; {
		changed = false
		for i := 0; i < len(shrunk); i++ {
			trial := make([]Mutation, 0, len(shrunk)-1)
			trial = append(trial, shrunk[:i]...)
			trial = append(trial, shrunk[i+1:]...)
			spec := applyAll(cfg.Base, trial)
			sc, err := h.eval(spec)
			if err != nil {
				continue // removal made the spec invalid; keep the mutation
			}
			if sc >= floor {
				shrunk, shrunkScore = trial, sc
				changed = true
				i--
			}
		}
	}
	res.Shrunk = applyAll(cfg.Base, shrunk)
	res.ShrunkScore = shrunkScore
	for _, m := range shrunk {
		res.Mutations = append(res.Mutations, m.Desc)
	}
	res.Evaluations = h.evals
	return res, nil
}

// eval runs one spec and scores it.
func (h *hunter) eval(spec autonosql.ScenarioSpec) (float64, error) {
	h.evals++
	scenario, err := autonosql.NewScenario(spec)
	if err != nil {
		return 0, err
	}
	rep, err := scenario.Run()
	if err != nil {
		return 0, err
	}
	return Score(h.cfg.Objective, rep), nil
}

// evalAll scores every candidate mutation list, bounded-parallel. Invalid or
// failing candidates score -Inf so they can never be adopted. The result
// slice is indexed like the input, so parallelism cannot reorder anything.
func (h *hunter) evalAll(candidates [][]Mutation) []float64 {
	scores := make([]float64, len(candidates))
	h.evals += len(candidates)
	sem := make(chan struct{}, h.cfg.Parallelism)
	var wg sync.WaitGroup
	for i, muts := range candidates {
		wg.Add(1)
		go func(i int, muts []Mutation) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			scores[i] = math.Inf(-1)
			spec := applyAll(h.cfg.Base, muts)
			scenario, err := autonosql.NewScenario(spec)
			if err != nil {
				return
			}
			rep, err := scenario.Run()
			if err != nil {
				return
			}
			scores[i] = Score(h.cfg.Objective, rep)
		}(i, muts)
	}
	wg.Wait()
	return scores
}

// applyAll clones the base and applies the mutations in order.
func applyAll(base autonosql.ScenarioSpec, muts []Mutation) autonosql.ScenarioSpec {
	spec := cloneSpec(base)
	for _, m := range muts {
		m.Apply(&spec)
	}
	return spec
}
