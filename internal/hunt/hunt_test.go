package hunt

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"autonosql"
)

// huntBase is a small two-tenant base spec: big enough for the objectives to
// move, small enough that a full hunt stays test-sized.
func huntBase() autonosql.ScenarioSpec {
	spec := autonosql.DefaultScenarioSpec()
	spec.Seed = 1
	spec.Duration = 30 * time.Second
	spec.Cluster.InitialNodes = 3
	spec.Cluster.NodeOpsPerSec = 2500
	spec.Controller.Mode = autonosql.ControllerSmart
	spec.Controller.Admission = autonosql.AdmissionSpec{Enabled: true}
	spec.Tenants = []autonosql.TenantSpec{
		{Name: "gold", Class: autonosql.SLAGold, Workload: autonosql.WorkloadSpec{
			Pattern: autonosql.LoadDiurnal, BaseOpsPerSec: 800, PeakOpsPerSec: 1400, ReadFraction: 0.6,
		}},
		{Name: "bronze", Class: autonosql.SLABronze, Workload: autonosql.WorkloadSpec{
			Pattern: autonosql.LoadSpike, BaseOpsPerSec: 300, PeakOpsPerSec: 1800, ReadFraction: 0.2,
		}},
	}
	return spec
}

// TestHuntDeterministic is the harness's core guarantee: the same base spec
// and hunter seed produce the identical hunt — same worst score, same
// minimal mutation set, same shrunk spec — whatever the parallelism. The CI
// race job runs this under -race, so the parallel evaluator is also checked
// for data races.
func TestHuntDeterministic(t *testing.T) {
	run := func(parallelism int) *Result {
		res, err := Run(Config{
			Base:        huntBase(),
			Objective:   ObjectiveGoldViolations,
			Seed:        7,
			Rounds:      2,
			Neighbors:   3,
			Parallelism: parallelism,
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a := run(1)
	b := run(4)

	if a.WorstScore != b.WorstScore || a.ShrunkScore != b.ShrunkScore || a.BaseScore != b.BaseScore {
		t.Errorf("scores diverged across parallelism: %+v vs %+v", a, b)
	}
	if !reflect.DeepEqual(a.Mutations, b.Mutations) {
		t.Errorf("minimal mutation sets diverged:\n  seq: %v\n  par: %v", a.Mutations, b.Mutations)
	}
	if !reflect.DeepEqual(a.Shrunk, b.Shrunk) {
		t.Error("shrunk specs diverged across parallelism")
	}
	if a.Evaluations != b.Evaluations {
		t.Errorf("evaluation counts diverged: %d vs %d", a.Evaluations, b.Evaluations)
	}
	// The shrunk spec must actually reproduce its score when run cold.
	scenario, err := autonosql.NewScenario(a.Shrunk)
	if err != nil {
		t.Fatalf("NewScenario(shrunk): %v", err)
	}
	rep, err := scenario.Run()
	if err != nil {
		t.Fatalf("Run(shrunk): %v", err)
	}
	if got := Score(ObjectiveGoldViolations, rep); got != a.ShrunkScore {
		t.Errorf("cold re-run of the shrunk spec scored %v, hunt reported %v", got, a.ShrunkScore)
	}
}

// TestHuntShrinkKeepsFloor pins the shrink contract: the shrunk score stays
// at or above the keep fraction of the worst score, and the mutation list
// never grows under shrinking.
func TestHuntShrinkKeepsFloor(t *testing.T) {
	res, err := Run(Config{
		Base:               huntBase(),
		Objective:          ObjectiveGoldViolations,
		Seed:               1,
		Rounds:             3,
		Neighbors:          4,
		ShrinkKeepFraction: 0.9,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.WorstScore < res.BaseScore {
		t.Errorf("hill climb went downhill: worst %v < base %v", res.WorstScore, res.BaseScore)
	}
	if res.ShrunkScore < 0.9*res.WorstScore {
		t.Errorf("shrunk score %v fell below the 0.9 floor of worst %v", res.ShrunkScore, res.WorstScore)
	}
}

// TestParseObjective covers the objective names.
func TestParseObjective(t *testing.T) {
	for _, good := range []string{"gold-violations", "shed-storm", "oscillation", "cost-blowup"} {
		if _, err := ParseObjective(good); err != nil {
			t.Errorf("ParseObjective(%q): %v", good, err)
		}
	}
	if _, err := ParseObjective("chaos"); err == nil {
		t.Error("unknown objective accepted")
	}
}

// TestScoreObjectives pins the scoring arithmetic on synthetic reports.
func TestScoreObjectives(t *testing.T) {
	rep := &autonosql.Report{
		Violations: autonosql.Violations{Total: 5},
		Cost:       autonosql.CostSummary{Total: 123.5},
		Tenants: []autonosql.TenantReport{
			{Name: "g", Class: "gold", Violations: autonosql.Violations{Total: 2}, ShedOps: 10},
			{Name: "b", Class: "bronze", Violations: autonosql.Violations{Total: 7}, ShedOps: 30},
		},
		Series: map[string][]autonosql.SeriesPoint{
			autonosql.SeriesClusterSize: {
				{Value: 3}, {Value: 4}, {Value: 5}, {Value: 4}, {Value: 4}, {Value: 5}, {Value: 3},
			},
		},
	}
	if got := Score(ObjectiveGoldViolations, rep); got != 2 {
		t.Errorf("gold-violations = %v, want 2 (gold tenant only)", got)
	}
	if got := Score(ObjectiveShedStorm, rep); got != 40 {
		t.Errorf("shed-storm = %v, want 40", got)
	}
	// up, up, down, flat, up, down -> direction changes at down(5->4),
	// up(4->5), down(5->3) = 3.
	if got := Score(ObjectiveOscillation, rep); got != 3 {
		t.Errorf("oscillation = %v, want 3", got)
	}
	if got := Score(ObjectiveCostBlowup, rep); got != 123.5 {
		t.Errorf("cost-blowup = %v, want 123.5", got)
	}
	// No tenants: gold-violations falls back to the aggregate.
	rep.Tenants = nil
	if got := Score(ObjectiveGoldViolations, rep); got != 5 {
		t.Errorf("tenantless gold-violations = %v, want 5", got)
	}
}

// TestCaseSaveLoadVerify round-trips a found case through disk and the full
// bit-for-bit verification (live re-run + trace replay).
func TestCaseSaveLoadVerify(t *testing.T) {
	cfg := Config{
		Base:      huntBase(),
		Objective: ObjectiveGoldViolations,
		Seed:      7,
		Rounds:    1,
		Neighbors: 2,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	c, trace, err := NewCase("unit_case", cfg, res)
	if err != nil {
		t.Fatalf("NewCase: %v", err)
	}
	dir := t.TempDir()
	if err := c.Save(dir, trace); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadCases(dir)
	if err != nil {
		t.Fatalf("LoadCases: %v", err)
	}
	if len(loaded) != 1 || loaded[0].Name != "unit_case" {
		t.Fatalf("LoadCases = %+v, want the one saved case", loaded)
	}
	if loaded[0].Fingerprint != c.Fingerprint || loaded[0].ScoreBits != c.ScoreBits {
		t.Fatal("case pins did not survive the JSON round trip")
	}
	if err := loaded[0].Verify(dir); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// A tampered pin must fail verification.
	loaded[0].Fingerprint += "x"
	if err := loaded[0].Verify(dir); err == nil {
		t.Fatal("Verify accepted a tampered fingerprint")
	}
}

// TestAdversarialCorpus re-verifies every committed adversarial golden under
// testdata/adversarial bit-for-bit: live re-run matches the pinned
// fingerprint and score bits, and replaying the committed trace reproduces
// the fingerprint again.
func TestAdversarialCorpus(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "adversarial")
	if _, err := os.Stat(dir); os.IsNotExist(err) {
		t.Skip("no committed adversarial corpus")
	}
	cases, err := LoadCases(dir)
	if err != nil {
		t.Fatalf("LoadCases: %v", err)
	}
	if len(cases) == 0 {
		t.Fatal("adversarial corpus directory exists but holds no cases")
	}
	for _, c := range cases {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			if err := c.Verify(dir); err != nil {
				t.Fatal(err)
			}
			if c.Score <= c.BaseScore {
				t.Errorf("case score %v does not beat its base %v: not adversarial", c.Score, c.BaseScore)
			}
		})
	}
}

// TestCrossoverSplice pins the recombination shape: a child is a prefix of
// parent a followed by a suffix of parent b, cut points drawn from the shared
// stream — so a given rng state always yields the same child, and the child's
// mutations are the parents' own (pure, hence replayable) closures.
func TestCrossoverSplice(t *testing.T) {
	mut := func(name string) Mutation {
		return Mutation{Desc: name, Apply: func(*autonosql.ScenarioSpec) {}}
	}
	a := []Mutation{mut("a0"), mut("a1"), mut("a2")}
	b := []Mutation{mut("b0"), mut("b1")}
	for seed := int64(0); seed < 20; seed++ {
		first := crossover(rand.New(rand.NewSource(seed)), a, b)
		again := crossover(rand.New(rand.NewSource(seed)), a, b)
		if len(first) != len(again) {
			t.Fatalf("seed %d: crossover not deterministic", seed)
		}
		boundary := -1
		for i, m := range first {
			if m.Desc != again[i].Desc {
				t.Fatalf("seed %d: crossover not deterministic at %d", seed, i)
			}
			fromB := m.Desc[0] == 'b'
			if fromB && boundary < 0 {
				boundary = i
			}
			if !fromB && boundary >= 0 {
				t.Fatalf("seed %d: parent-a mutation %q after the splice point", seed, m.Desc)
			}
		}
		if len(first) > len(a)+len(b) {
			t.Fatalf("seed %d: child longer than both parents combined", seed)
		}
	}
}

// TestHuntCrossoverDeterministic runs a hunt long enough for the crossover
// path (elite from round one, recombined candidate in round two) to engage and
// pins that it stays deterministic across parallelism like the rest of the
// search.
func TestHuntCrossoverDeterministic(t *testing.T) {
	run := func(parallelism int) *Result {
		res, err := Run(Config{
			Base:        huntBase(),
			Objective:   ObjectiveCostBlowup,
			Seed:        3,
			Rounds:      3,
			Neighbors:   3,
			Parallelism: parallelism,
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a := run(1)
	b := run(4)
	if a.WorstScore != b.WorstScore || a.Evaluations != b.Evaluations {
		t.Errorf("crossover hunt diverged across parallelism: %+v vs %+v", a, b)
	}
	if !reflect.DeepEqual(a.Mutations, b.Mutations) {
		t.Errorf("minimal mutation sets diverged:\n  seq: %v\n  par: %v", a.Mutations, b.Mutations)
	}
	// Rounds 2 and 3 each add one crossover candidate on top of the
	// Neighbors mutants (round 1 has no elite yet): base + 3 rounds of 3
	// + 2 crossovers + shrink evaluations >= 12 search runs.
	if a.Evaluations < 1+3*3+2 {
		t.Errorf("evaluation count %d too low for the crossover schedule", a.Evaluations)
	}
}

// TestMutationsPure pins the shrink precondition: applying a mutation twice
// to fresh clones of the same spec yields identical specs, and applying it
// never mutates the base.
func TestMutationsPure(t *testing.T) {
	base := huntBase()
	before, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	h := &hunter{cfg: Config{Base: base}, rng: rand.New(rand.NewSource(99))}
	for i := 0; i < 50; i++ {
		m := h.newMutation(base)
		a := cloneSpec(base)
		b := cloneSpec(base)
		m.Apply(&a)
		m.Apply(&b)
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		if string(aj) != string(bj) {
			t.Fatalf("mutation %q is not deterministic", m.Desc)
		}
	}
	after, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("mutations modified the base spec through aliasing")
	}
}
