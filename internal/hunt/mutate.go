package hunt

import (
	"fmt"
	"math/rand"
	"time"

	"autonosql"
)

// Mutation is one reproducible perturbation of a scenario spec. Apply must be
// a pure function of the spec it receives: the shrinker re-applies arbitrary
// subsets of a hunt's mutation list to fresh clones of the base spec.
type Mutation struct {
	// Desc names the perturbation for logs and persisted cases.
	Desc string
	// Apply performs it.
	Apply func(*autonosql.ScenarioSpec)
}

// cloneSpec deep-copies a spec so mutations on the clone cannot alias the
// base's tenant or fault slices.
func cloneSpec(s autonosql.ScenarioSpec) autonosql.ScenarioSpec {
	out := s
	out.Tenants = append([]autonosql.TenantSpec(nil), s.Tenants...)
	out.Faults.Faults = append([]autonosql.FaultSpec(nil), s.Faults.Faults...)
	return out
}

// workloadAt returns a pointer to the tenant workload at idx, or the
// scenario's single workload for a tenantless spec (idx ignored).
func workloadAt(s *autonosql.ScenarioSpec, idx int) *autonosql.WorkloadSpec {
	if len(s.Tenants) == 0 {
		return &s.Workload
	}
	return &s.Tenants[idx%len(s.Tenants)].Workload
}

// workloadName names the mutated workload for descriptions.
func workloadName(s autonosql.ScenarioSpec, idx int) string {
	if len(s.Tenants) == 0 {
		return "workload"
	}
	return "tenant " + s.Tenants[idx%len(s.Tenants)].Name
}

// pick returns a deterministic element of vals.
func pick[T any](rng *rand.Rand, vals []T) T {
	return vals[rng.Intn(len(vals))]
}

// newMutation draws the next mutation from the hunter's stream. cur is the
// spec the mutation will (first) land on; it is only used to pick sensible
// targets (tenant count, duration, existing faults) — Apply itself never
// closes over cur.
func (h *hunter) newMutation(cur autonosql.ScenarioSpec) Mutation {
	rng := h.rng
	duration := cur.Duration
	// The weights lean toward workload-shape perturbations: that is where
	// the paper's controllers live or die.
	switch rng.Intn(10) {
	case 0, 1: // scale base rate
		idx := rng.Intn(maxInt(len(cur.Tenants), 1))
		factor := pick(rng, []float64{0.5, 0.75, 1.25, 1.5, 2.0})
		return Mutation{
			Desc: fmt.Sprintf("%s: base rate x%.2f", workloadName(cur, idx), factor),
			Apply: func(s *autonosql.ScenarioSpec) {
				workloadAt(s, idx).BaseOpsPerSec *= factor
			},
		}
	case 2: // scale peak rate (burst amplitude)
		idx := rng.Intn(maxInt(len(cur.Tenants), 1))
		factor := pick(rng, []float64{0.5, 1.25, 1.5, 2.0})
		return Mutation{
			Desc: fmt.Sprintf("%s: peak rate x%.2f", workloadName(cur, idx), factor),
			Apply: func(s *autonosql.ScenarioSpec) {
				w := workloadAt(s, idx)
				if w.PeakOpsPerSec <= 0 {
					w.PeakOpsPerSec = w.BaseOpsPerSec
				}
				w.PeakOpsPerSec *= factor
			},
		}
	case 3: // move the burst
		idx := rng.Intn(maxInt(len(cur.Tenants), 1))
		frac := pick(rng, []float64{0.1, 0.25, 0.4, 0.6, 0.75})
		at := time.Duration(float64(duration) * frac)
		return Mutation{
			Desc: fmt.Sprintf("%s: peak start -> %v", workloadName(cur, idx), at),
			Apply: func(s *autonosql.ScenarioSpec) {
				workloadAt(s, idx).PeakStart = at
			},
		}
	case 4: // stretch or squeeze the burst
		idx := rng.Intn(maxInt(len(cur.Tenants), 1))
		frac := pick(rng, []float64{0.05, 0.1, 0.2, 0.3})
		d := time.Duration(float64(duration) * frac)
		return Mutation{
			Desc: fmt.Sprintf("%s: peak duration -> %v", workloadName(cur, idx), d),
			Apply: func(s *autonosql.ScenarioSpec) {
				workloadAt(s, idx).PeakDuration = d
			},
		}
	case 5: // change the read/write mix
		idx := rng.Intn(maxInt(len(cur.Tenants), 1))
		frac := pick(rng, []float64{0, 0.2, 0.5, 0.8, 1})
		return Mutation{
			Desc: fmt.Sprintf("%s: read fraction -> %.1f", workloadName(cur, idx), frac),
			Apply: func(s *autonosql.ScenarioSpec) {
				workloadAt(s, idx).ReadFraction = frac
			},
		}
	case 6: // change the load shape
		idx := rng.Intn(maxInt(len(cur.Tenants), 1))
		pattern := pick(rng, []autonosql.LoadPattern{
			autonosql.LoadConstant, autonosql.LoadStep, autonosql.LoadDiurnal,
			autonosql.LoadSpike, autonosql.LoadDiurnalSpike,
		})
		return Mutation{
			Desc: fmt.Sprintf("%s: pattern -> %s", workloadName(cur, idx), pattern),
			Apply: func(s *autonosql.ScenarioSpec) {
				workloadAt(s, idx).Pattern = pattern
			},
		}
	case 7: // inject or move a fault
		if n := len(cur.Faults.Faults); n > 0 && rng.Intn(2) == 0 {
			idx := rng.Intn(n)
			shift := time.Duration(float64(duration) * pick(rng, []float64{-0.1, -0.05, 0.05, 0.1}))
			return Mutation{
				Desc: fmt.Sprintf("fault %d: shift %v", idx, shift),
				Apply: func(s *autonosql.ScenarioSpec) {
					if idx >= len(s.Faults.Faults) {
						return
					}
					at := s.Faults.Faults[idx].At + shift
					if at < 0 {
						at = 0
					}
					if max := duration - time.Second; at > max && max > 0 {
						at = max
					}
					s.Faults.Faults[idx].At = at
				},
			}
		}
		at := time.Duration(float64(duration) * pick(rng, []float64{0.2, 0.4, 0.6}))
		dur := time.Duration(float64(duration) * pick(rng, []float64{0.1, 0.2, 0.3}))
		var fault autonosql.FaultSpec
		var desc string
		switch rng.Intn(4) {
		case 0:
			fault, desc = autonosql.CrashFault(at, dur, 1), fmt.Sprintf("add crash @%v for %v", at, dur)
		case 1:
			sev := pick(rng, []float64{0.5, 0.8})
			fault, desc = autonosql.SlowNodeFault(at, dur, 1, sev), fmt.Sprintf("add slow node @%v for %v sev=%.1f", at, dur, sev)
		case 2:
			fault, desc = autonosql.PartitionFault(at, dur, 1), fmt.Sprintf("add partition @%v heal %v", at, dur)
		default:
			level := pick(rng, []float64{0.5, 1.0})
			fault, desc = autonosql.LatencyStormFault(at, dur, level), fmt.Sprintf("add latency storm @%v for %v level=%.1f", at, dur, level)
		}
		return Mutation{
			Desc: desc,
			Apply: func(s *autonosql.ScenarioSpec) {
				s.Faults.Faults = append(s.Faults.Faults, fault)
			},
		}
	case 8: // admission settings
		if rng.Intn(2) == 0 {
			frac := pick(rng, []float64{0.25, 0.5, 0.75})
			return Mutation{
				Desc: fmt.Sprintf("admission: frac -> %.2f", frac),
				Apply: func(s *autonosql.ScenarioSpec) {
					s.Controller.Admission.ThrottleFraction = frac
				},
			}
		}
		floor := pick(rng, []float64{25, 50, 100, 200})
		return Mutation{
			Desc: fmt.Sprintf("admission: floor -> %.0f", floor),
			Apply: func(s *autonosql.ScenarioSpec) {
				s.Controller.Admission.MinRate = floor
			},
		}
	default: // starve or fatten the cluster
		if rng.Intn(2) == 0 {
			delta := pick(rng, []int{-1, 1})
			return Mutation{
				Desc: fmt.Sprintf("cluster: initial nodes %+d", delta),
				Apply: func(s *autonosql.ScenarioSpec) {
					n := s.Cluster.InitialNodes + delta
					if min := maxInt(s.Cluster.MinNodes, 1); n < min {
						n = min
					}
					if s.Cluster.MaxNodes > 0 && n > s.Cluster.MaxNodes {
						n = s.Cluster.MaxNodes
					}
					s.Cluster.InitialNodes = n
				},
			}
		}
		factor := pick(rng, []float64{0.75, 0.9, 1.1})
		return Mutation{
			Desc: fmt.Sprintf("cluster: node capacity x%.2f", factor),
			Apply: func(s *autonosql.ScenarioSpec) {
				s.Cluster.NodeOpsPerSec *= factor
			},
		}
	}
}

// crossover splices two parent mutation lists at an rng-drawn cut point per
// parent: the child keeps a prefix of a and inherits a suffix of b. Mutations
// are pure functions of the spec they land on, so recombined lists are as
// replayable as hill-climbed ones.
func crossover(rng *rand.Rand, a, b []Mutation) []Mutation {
	i := rng.Intn(len(a) + 1)
	j := rng.Intn(len(b) + 1)
	child := make([]Mutation, 0, i+len(b)-j)
	child = append(child, a[:i]...)
	child = append(child, b[j:]...)
	return child
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
