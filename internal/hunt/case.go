package hunt

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"autonosql"
)

// Case is one persisted adversarial finding: the minimal spec the hunter
// shrank to, the hunt provenance that found it, and the bit-level pins — the
// run's full report fingerprint, the objective score's exact float bits, and
// (as a sibling .trace.jsonl file) the recorded arrival trace. Verify re-runs
// the spec live and replays the trace, requiring both to reproduce the
// fingerprint byte-for-byte, so a committed case doubles as a regression
// golden for the exact behaviour it pinned.
type Case struct {
	Name       string    `json:"name"`
	Objective  Objective `json:"objective"`
	HunterSeed int64     `json:"hunter_seed"`
	BaseScore  float64   `json:"base_score"`
	Score      float64   `json:"score"`
	// ScoreBits is Score's exact float64 bit pattern in hex: JSON float
	// round-trips are not bit-exact, the pin must be.
	ScoreBits   string                 `json:"score_bits"`
	Mutations   []string               `json:"mutations"`
	Fingerprint string                 `json:"fingerprint"`
	Spec        autonosql.ScenarioSpec `json:"spec"`
}

// scoreBits renders a score for the bit-exact pin.
func scoreBits(v float64) string {
	return fmt.Sprintf("%016x", math.Float64bits(v))
}

// NewCase runs the result's shrunk spec once with trace recording armed and
// assembles the persistable case plus its trace.
func NewCase(name string, cfg Config, res *Result) (*Case, *autonosql.WorkloadTrace, error) {
	scenario, err := autonosql.NewScenario(res.Shrunk)
	if err != nil {
		return nil, nil, fmt.Errorf("hunt: case spec: %w", err)
	}
	if err := scenario.RecordTrace(); err != nil {
		return nil, nil, fmt.Errorf("hunt: %w", err)
	}
	rep, err := scenario.Run()
	if err != nil {
		return nil, nil, fmt.Errorf("hunt: case run: %w", err)
	}
	trace, err := scenario.RecordedTrace()
	if err != nil {
		return nil, nil, fmt.Errorf("hunt: %w", err)
	}
	score := Score(cfg.Objective, rep)
	return &Case{
		Name:        name,
		Objective:   cfg.Objective,
		HunterSeed:  cfg.Seed,
		BaseScore:   res.BaseScore,
		Score:       score,
		ScoreBits:   scoreBits(score),
		Mutations:   res.Mutations,
		Fingerprint: rep.Fingerprint(),
		Spec:        res.Shrunk,
	}, trace, nil
}

// tracePath is the sibling trace file of a case named name in dir.
func tracePath(dir, name string) string {
	return filepath.Join(dir, name+".trace.jsonl")
}

// Save writes the case and its trace under dir as <name>.json and
// <name>.trace.jsonl.
func (c *Case) Save(dir string, trace *autonosql.WorkloadTrace) error {
	if c.Name == "" || strings.ContainsAny(c.Name, "/\\") {
		return fmt.Errorf("hunt: case name %q must be a plain file stem", c.Name)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("hunt: %w", err)
	}
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("hunt: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(filepath.Join(dir, c.Name+".json"), data, 0o644); err != nil {
		return fmt.Errorf("hunt: %w", err)
	}
	if err := trace.WriteFile(tracePath(dir, c.Name)); err != nil {
		return fmt.Errorf("hunt: %w", err)
	}
	return nil
}

// LoadCases reads every case under dir, sorted by name.
func LoadCases(dir string) ([]*Case, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("hunt: %w", err)
	}
	var cases []*Case
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("hunt: %w", err)
		}
		var c Case
		if err := json.Unmarshal(data, &c); err != nil {
			return nil, fmt.Errorf("hunt: %s: %w", e.Name(), err)
		}
		if want := strings.TrimSuffix(e.Name(), ".json"); c.Name != want {
			return nil, fmt.Errorf("hunt: %s declares name %q", e.Name(), c.Name)
		}
		cases = append(cases, &c)
	}
	sort.Slice(cases, func(i, j int) bool { return cases[i].Name < cases[j].Name })
	return cases, nil
}

// Verify re-runs the case and requires bit-for-bit reproduction: the live run
// must match the pinned fingerprint and score bits, and replaying the
// committed trace must reproduce the same fingerprint again.
func (c *Case) Verify(dir string) error {
	scenario, err := autonosql.NewScenario(c.Spec)
	if err != nil {
		return fmt.Errorf("case %s: spec no longer builds: %w", c.Name, err)
	}
	rep, err := scenario.Run()
	if err != nil {
		return fmt.Errorf("case %s: run failed: %w", c.Name, err)
	}
	if got := rep.Fingerprint(); got != c.Fingerprint {
		return fmt.Errorf("case %s: live fingerprint diverged from the committed pin", c.Name)
	}
	score := Score(c.Objective, rep)
	if got := scoreBits(score); got != c.ScoreBits {
		return fmt.Errorf("case %s: score %v (bits %s) diverged from pinned bits %s",
			c.Name, score, got, c.ScoreBits)
	}

	trace, err := autonosql.ReadWorkloadTraceFile(tracePath(dir, c.Name))
	if err != nil {
		return fmt.Errorf("case %s: %w", c.Name, err)
	}
	replaySpec := cloneSpec(c.Spec)
	replaySpec.Replay = trace
	replayScenario, err := autonosql.NewScenario(replaySpec)
	if err != nil {
		return fmt.Errorf("case %s: replay spec: %w", c.Name, err)
	}
	replayRep, err := replayScenario.Run()
	if err != nil {
		return fmt.Errorf("case %s: replay failed: %w", c.Name, err)
	}
	if got := replayRep.Fingerprint(); got != c.Fingerprint {
		return fmt.Errorf("case %s: replayed fingerprint diverged from the committed pin", c.Name)
	}
	return nil
}

// FormatScore renders a score and its pinned bits for logs.
func FormatScore(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64) + " (bits " + scoreBits(v) + ")"
}
