package cluster

import (
	"math/rand"
	"time"

	"autonosql/internal/sim"
)

// NetworkConfig describes the datacentre network connecting nodes and
// clients.
type NetworkConfig struct {
	// BaseLatency is the median one-way latency between any two nodes.
	BaseLatency time.Duration
	// JitterSigma is the log-normal shape parameter of latency jitter.
	JitterSigma float64
	// ClientLatency is the median one-way latency between clients and the
	// coordinator node they talk to.
	ClientLatency time.Duration
	// CongestionSensitivity scales how strongly the congestion level
	// inflates latency: latency *= 1 + sensitivity*congestion.
	CongestionSensitivity float64
}

// DefaultNetworkConfig models a single-datacentre deployment with ~0.5 ms
// node-to-node latency.
func DefaultNetworkConfig() NetworkConfig {
	return NetworkConfig{
		BaseLatency:           500 * time.Microsecond,
		JitterSigma:           0.3,
		ClientLatency:         1 * time.Millisecond,
		CongestionSensitivity: 8,
	}
}

func (c NetworkConfig) withDefaults() NetworkConfig {
	d := DefaultNetworkConfig()
	if c.BaseLatency <= 0 {
		c.BaseLatency = d.BaseLatency
	}
	if c.JitterSigma <= 0 {
		c.JitterSigma = d.JitterSigma
	}
	if c.ClientLatency <= 0 {
		c.ClientLatency = d.ClientLatency
	}
	if c.CongestionSensitivity <= 0 {
		c.CongestionSensitivity = d.CongestionSensitivity
	}
	return c
}

// Network models inter-node and client-node message delays. A congestion
// level in [0, 1] uniformly inflates delays; the noisy-neighbour profile and
// experiment scenarios drive it over time. Replication traffic itself also
// contributes: each in-flight replica stream adds a small amount of
// self-congestion, which is what makes "add a replica under network
// congestion" the wrong reconfiguration action, exactly as the paper warns.
type Network struct {
	cfg        NetworkConfig
	rng        *rand.Rand
	congestion float64
	selfLoad   float64
}

// NewNetwork creates a network model.
func NewNetwork(cfg NetworkConfig, rng *rand.Rand) *Network {
	return &Network{cfg: cfg.withDefaults(), rng: rng}
}

// Config returns the network configuration.
func (n *Network) Config() NetworkConfig { return n.cfg }

// SetCongestion sets the externally imposed congestion level in [0, 1].
func (n *Network) SetCongestion(level float64) {
	n.congestion = clamp(level, 0, 1)
}

// Congestion returns the externally imposed congestion level.
func (n *Network) Congestion() float64 { return n.congestion }

// SetReplicationLoad reports the current replication fan-out intensity in
// [0, 1]; it contributes additional (self-induced) congestion.
func (n *Network) SetReplicationLoad(level float64) {
	n.selfLoad = clamp(level, 0, 1)
}

// ReplicationLoad returns the replication-induced congestion component.
func (n *Network) ReplicationLoad() float64 { return n.selfLoad }

// EffectiveCongestion is the combined congestion level in [0, 1].
func (n *Network) EffectiveCongestion() float64 {
	return clamp(n.congestion+0.5*n.selfLoad, 0, 1)
}

func (n *Network) delay(base time.Duration) time.Duration {
	inflate := 1 + n.cfg.CongestionSensitivity*n.EffectiveCongestion()
	d := time.Duration(sim.LogNormal(n.rng, float64(base)*inflate, n.cfg.JitterSigma))
	if d <= 0 {
		d = base
	}
	return d
}

// NodeToNode returns a sampled one-way delay between two cluster nodes.
func (n *Network) NodeToNode() time.Duration { return n.delay(n.cfg.BaseLatency) }

// ClientToNode returns a sampled one-way delay between a client and a node.
func (n *Network) ClientToNode() time.Duration { return n.delay(n.cfg.ClientLatency) }
