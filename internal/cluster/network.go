package cluster

import (
	"math/rand"
	"time"

	"autonosql/internal/sim"
)

// NetworkConfig describes the datacentre network connecting nodes and
// clients.
type NetworkConfig struct {
	// BaseLatency is the median one-way latency between any two nodes.
	BaseLatency time.Duration
	// JitterSigma is the log-normal shape parameter of latency jitter.
	JitterSigma float64
	// ClientLatency is the median one-way latency between clients and the
	// coordinator node they talk to.
	ClientLatency time.Duration
	// CongestionSensitivity scales how strongly the congestion level
	// inflates latency: latency *= 1 + sensitivity*congestion.
	CongestionSensitivity float64
}

// DefaultNetworkConfig models a single-datacentre deployment with ~0.5 ms
// node-to-node latency.
func DefaultNetworkConfig() NetworkConfig {
	return NetworkConfig{
		BaseLatency:           500 * time.Microsecond,
		JitterSigma:           0.3,
		ClientLatency:         1 * time.Millisecond,
		CongestionSensitivity: 8,
	}
}

func (c NetworkConfig) withDefaults() NetworkConfig {
	d := DefaultNetworkConfig()
	if c.BaseLatency <= 0 {
		c.BaseLatency = d.BaseLatency
	}
	if c.JitterSigma <= 0 {
		c.JitterSigma = d.JitterSigma
	}
	if c.ClientLatency <= 0 {
		c.ClientLatency = d.ClientLatency
	}
	if c.CongestionSensitivity <= 0 {
		c.CongestionSensitivity = d.CongestionSensitivity
	}
	return c
}

// Network models inter-node and client-node message delays. A congestion
// level in [0, 1] uniformly inflates delays; the noisy-neighbour profile and
// experiment scenarios drive it over time. Replication traffic itself also
// contributes: each in-flight replica stream adds a small amount of
// self-congestion, which is what makes "add a replica under network
// congestion" the wrong reconfiguration action, exactly as the paper warns.
//
// The network also models two injectable fault conditions: a latency storm
// (an extra congestion component composed with, not overwriting, the
// tenant-driven level) and a partition. A partition isolates a set of nodes
// from the rest of the cluster: node-to-node messages across the cut are
// undeliverable, while nodes on the same side — and clients, which reach
// every node — are unaffected.
//
// The partition model is a single cut: every isolated node is on one side,
// the connected remainder on the other. Concurrent partition faults
// therefore merge — nodes isolated by disjoint events share the isolated
// side and remain mutually reachable. Modelling k independent cuts would
// need per-group membership on the hot path; the single-cut model captures
// the phenomenon the scenarios measure (minority islands diverging from the
// majority) at a nil-map check's cost.
type Network struct {
	cfg NetworkConfig
	rng *rand.Rand
	// noise, when set, replaces direct jitter draws from rng with factors
	// pre-generated on a sharded run's owner lane (see Node.noise).
	noise      *sim.NoiseFeed
	congestion float64
	selfLoad   float64
	// storm is the fault-injected congestion component; it composes with the
	// externally imposed level so a latency-storm fault and a noisy tenant do
	// not clobber each other's settings.
	storm float64
	// isolated holds, per node currently cut off from the rest of the
	// cluster, the number of active partition faults isolating it — a
	// refcount, so overlapping partitions that share a node compose and the
	// heal of one does not reconnect a node another still isolates. The map
	// is nil when no partition is active, so the reachability checks on the
	// operation hot path cost one nil comparison in the fault-free case.
	isolated map[NodeID]int
}

// NewNetwork creates a network model.
func NewNetwork(cfg NetworkConfig, rng *rand.Rand) *Network {
	return &Network{cfg: cfg.withDefaults(), rng: rng}
}

// Config returns the network configuration.
func (n *Network) Config() NetworkConfig { return n.cfg }

// SetCongestion sets the externally imposed congestion level in [0, 1].
func (n *Network) SetCongestion(level float64) {
	n.congestion = clamp(level, 0, 1)
}

// Congestion returns the externally imposed congestion level.
func (n *Network) Congestion() float64 { return n.congestion }

// SetReplicationLoad reports the current replication fan-out intensity in
// [0, 1]; it contributes additional (self-induced) congestion.
func (n *Network) SetReplicationLoad(level float64) {
	n.selfLoad = clamp(level, 0, 1)
}

// ReplicationLoad returns the replication-induced congestion component.
func (n *Network) ReplicationLoad() float64 { return n.selfLoad }

// SetFaultCongestion sets the latency-storm congestion component in [0, 1].
// It is driven by the fault injector and composes with the externally
// imposed level.
func (n *Network) SetFaultCongestion(level float64) {
	n.storm = clamp(level, 0, 1)
}

// FaultCongestion returns the latency-storm congestion component.
func (n *Network) FaultCongestion() float64 { return n.storm }

// EffectiveCongestion is the combined congestion level in [0, 1].
func (n *Network) EffectiveCongestion() float64 {
	return clamp(n.congestion+n.storm+0.5*n.selfLoad, 0, 1)
}

// Isolate adds the given nodes to the isolated side of a partition. Messages
// between an isolated and a non-isolated node are undeliverable until Heal.
// Isolating the same node again (an overlapping partition fault) stacks: the
// node reconnects only when every isolating fault has healed.
func (n *Network) Isolate(ids []NodeID) {
	if len(ids) == 0 {
		return
	}
	if n.isolated == nil {
		n.isolated = make(map[NodeID]int, len(ids))
	}
	for _, id := range ids {
		n.isolated[id]++
	}
}

// Heal releases one isolation per given node. When the last isolation of the
// last node drains the partition is over and the reachability checks return
// to their fault-free fast path.
func (n *Network) Heal(ids []NodeID) {
	for _, id := range ids {
		if c, ok := n.isolated[id]; ok {
			if c <= 1 {
				delete(n.isolated, id)
			} else {
				n.isolated[id] = c - 1
			}
		}
	}
	if len(n.isolated) == 0 {
		n.isolated = nil
	}
}

// ClearPartition reconnects every isolated node regardless of how many
// faults isolate it.
func (n *Network) ClearPartition() { n.isolated = nil }

// Isolated reports whether the node is currently cut off from the rest of
// the cluster (and therefore from hint delivery and anti-entropy repair,
// which originate on the majority side).
func (n *Network) Isolated(id NodeID) bool {
	return n.isolated != nil && n.isolated[id] > 0
}

// IsolatedCount returns the number of currently isolated nodes.
func (n *Network) IsolatedCount() int { return len(n.isolated) }

// Reachable reports whether a node-to-node message between a and b can be
// delivered under the current partition. Nodes on the same side of the cut
// (or any pair when no partition is active) are mutually reachable.
func (n *Network) Reachable(a, b NodeID) bool {
	if n.isolated == nil {
		return true
	}
	return (n.isolated[a] > 0) == (n.isolated[b] > 0)
}

// PartitionActive reports whether any node is currently isolated.
func (n *Network) PartitionActive() bool { return n.isolated != nil }

func (n *Network) delay(base time.Duration) time.Duration {
	inflate := 1 + n.cfg.CongestionSensitivity*n.EffectiveCongestion()
	var d time.Duration
	if n.noise != nil {
		d = time.Duration(n.noise.Value(float64(base) * inflate))
	} else {
		d = time.Duration(sim.LogNormal(n.rng, float64(base)*inflate, n.cfg.JitterSigma))
	}
	if d <= 0 {
		d = base
	}
	return d
}

// NodeToNode returns a sampled one-way delay between two cluster nodes.
func (n *Network) NodeToNode() time.Duration { return n.delay(n.cfg.BaseLatency) }

// ClientToNode returns a sampled one-way delay between a client and a node.
func (n *Network) ClientToNode() time.Duration { return n.delay(n.cfg.ClientLatency) }
