package cluster

import (
	"testing"
	"time"

	"autonosql/internal/sim"
)

func newTestNode(t *testing.T) (*Node, *sim.Engine) {
	t.Helper()
	engine := sim.NewEngine()
	src := sim.NewRandSource(1)
	n := NewNode(1, DefaultNodeConfig(), engine, src.Stream("node"))
	return n, engine
}

func TestNodeStateString(t *testing.T) {
	cases := map[NodeState]string{
		NodeJoining:   "joining",
		NodeUp:        "up",
		NodeDraining:  "draining",
		NodeDown:      "down",
		NodeState(42): "state(42)",
	}
	for state, want := range cases {
		if got := state.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", state, got, want)
		}
	}
	if got := NodeID(3).String(); got != "node-3" {
		t.Errorf("NodeID.String() = %q", got)
	}
}

func TestNodeDefaults(t *testing.T) {
	n := NewNode(1, NodeConfig{}, sim.NewEngine(), sim.NewRandSource(1).Stream("n"))
	cfg := n.Config()
	if cfg.BaseServiceTime <= 0 || cfg.CapacityOpsPerSec <= 0 || cfg.ReplicationApplyTime <= 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestNodeEnqueueIdle(t *testing.T) {
	n, _ := newTestNode(t)
	delay, ok := n.Enqueue(0, ForegroundOp)
	if !ok {
		t.Fatal("Enqueue rejected on healthy node")
	}
	if delay <= 0 {
		t.Fatalf("delay = %v, want positive", delay)
	}
	if delay > 50*time.Millisecond {
		t.Fatalf("idle-node delay %v implausibly large", delay)
	}
	if n.OpsServed() != 1 {
		t.Fatalf("OpsServed = %d, want 1", n.OpsServed())
	}
}

func TestNodeQueueingIncreasesDelay(t *testing.T) {
	n, _ := newTestNode(t)
	// Saturate the node: submit far more work at t=0 than one executor can
	// finish instantly; later submissions must wait longer.
	first, _ := n.Enqueue(0, ForegroundOp)
	var last time.Duration
	for i := 0; i < 500; i++ {
		last, _ = n.Enqueue(0, ForegroundOp)
	}
	if last <= first {
		t.Fatalf("queued delay %v not larger than first %v", last, first)
	}
	if n.QueueDelay(0) <= 0 {
		t.Fatal("QueueDelay should be positive after backlog")
	}
	if n.QueueDelay(n.busyUntil+time.Second) != 0 {
		t.Fatal("QueueDelay after drain should be zero")
	}
}

func TestNodeBackgroundLoadSlowsService(t *testing.T) {
	measure := func(bg float64) time.Duration {
		engine := sim.NewEngine()
		n := NewNode(1, DefaultNodeConfig(), engine, sim.NewRandSource(7).Stream("x"))
		n.SetBackgroundLoad(bg)
		var total time.Duration
		for i := 0; i < 200; i++ {
			d, _ := n.Enqueue(n.busyUntil, ForegroundOp) // submit back-to-back
			total += d
		}
		return total
	}
	quiet := measure(0)
	noisy := measure(0.8)
	if noisy < quiet*2 {
		t.Fatalf("background load did not slow node enough: quiet=%v noisy=%v", quiet, noisy)
	}
}

func TestNodeRejectsWhenDown(t *testing.T) {
	n, _ := newTestNode(t)
	n.SetState(NodeDown)
	if _, ok := n.Enqueue(0, ForegroundOp); ok {
		t.Fatal("down node accepted work")
	}
	if n.OpsRejected() != 1 {
		t.Fatalf("OpsRejected = %d, want 1", n.OpsRejected())
	}
	n.SetState(NodeJoining)
	if _, ok := n.Enqueue(0, ForegroundOp); ok {
		t.Fatal("joining node accepted work")
	}
	n.SetState(NodeDraining)
	if _, ok := n.Enqueue(0, ForegroundOp); !ok {
		t.Fatal("draining node should still accept work")
	}
}

func TestNodeLoadClamping(t *testing.T) {
	n, _ := newTestNode(t)
	n.SetBackgroundLoad(5)
	if n.BackgroundLoad() > 0.95 {
		t.Fatalf("background load not clamped: %v", n.BackgroundLoad())
	}
	n.SetBackgroundLoad(-1)
	if n.BackgroundLoad() != 0 {
		t.Fatalf("negative background load not clamped: %v", n.BackgroundLoad())
	}
	n.SetRebalanceLoad(2)
	if n.RebalanceLoad() > 0.9 {
		t.Fatalf("rebalance load not clamped: %v", n.RebalanceLoad())
	}
}

func TestNodeReplicationApplyCheaper(t *testing.T) {
	engine := sim.NewEngine()
	cfg := DefaultNodeConfig()
	cfg.ServiceTimeSigma = 0.01 // nearly deterministic for comparison
	fg := NewNode(1, cfg, engine, sim.NewRandSource(3).Stream("a"))
	bg := NewNode(2, cfg, engine, sim.NewRandSource(3).Stream("a"))
	var fgTotal, bgTotal time.Duration
	for i := 0; i < 100; i++ {
		d1, _ := fg.Enqueue(fg.busyUntil, ForegroundOp)
		d2, _ := bg.Enqueue(bg.busyUntil, ReplicationApply)
		fgTotal += d1
		bgTotal += d2
	}
	if bgTotal >= fgTotal {
		t.Fatalf("replication apply (%v) should be cheaper than foreground (%v)", bgTotal, fgTotal)
	}
}

func TestNetworkDelays(t *testing.T) {
	rng := sim.NewRandSource(1).Stream("net")
	n := NewNetwork(DefaultNetworkConfig(), rng)
	for i := 0; i < 100; i++ {
		if d := n.NodeToNode(); d <= 0 || d > 100*time.Millisecond {
			t.Fatalf("NodeToNode delay %v out of plausible range", d)
		}
		if d := n.ClientToNode(); d <= 0 {
			t.Fatalf("ClientToNode delay %v should be positive", d)
		}
	}
}

func TestNetworkCongestionInflatesDelay(t *testing.T) {
	sample := func(congestion float64) time.Duration {
		rng := sim.NewRandSource(9).Stream("net")
		n := NewNetwork(DefaultNetworkConfig(), rng)
		n.SetCongestion(congestion)
		var total time.Duration
		for i := 0; i < 500; i++ {
			total += n.NodeToNode()
		}
		return total
	}
	calm := sample(0)
	congested := sample(0.8)
	if congested < calm*3 {
		t.Fatalf("congestion did not inflate latency enough: calm=%v congested=%v", calm, congested)
	}
}

func TestNetworkReplicationSelfLoad(t *testing.T) {
	n := NewNetwork(DefaultNetworkConfig(), sim.NewRandSource(2).Stream("n"))
	n.SetCongestion(0.4)
	n.SetReplicationLoad(0.6)
	if got := n.EffectiveCongestion(); got <= 0.4 {
		t.Fatalf("EffectiveCongestion = %v, want > 0.4", got)
	}
	if n.Congestion() != 0.4 || n.ReplicationLoad() != 0.6 {
		t.Fatal("accessors returned wrong stored values")
	}
	n.SetCongestion(3)
	if n.Congestion() != 1 {
		t.Fatalf("congestion not clamped: %v", n.Congestion())
	}
	n.SetCongestion(1)
	n.SetReplicationLoad(1)
	if n.EffectiveCongestion() != 1 {
		t.Fatalf("effective congestion not clamped: %v", n.EffectiveCongestion())
	}
}

func TestNetworkDefaults(t *testing.T) {
	n := NewNetwork(NetworkConfig{}, sim.NewRandSource(1).Stream("n"))
	cfg := n.Config()
	if cfg.BaseLatency <= 0 || cfg.ClientLatency <= 0 || cfg.CongestionSensitivity <= 0 {
		t.Fatalf("network defaults not applied: %+v", cfg)
	}
}
