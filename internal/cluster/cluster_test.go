package cluster

import (
	"errors"
	"testing"
	"time"

	"autonosql/internal/sim"
)

type recordingListener struct {
	joined    []NodeID
	left      []NodeID
	failed    []NodeID
	recovered []NodeID
}

func (r *recordingListener) NodeJoined(id NodeID)    { r.joined = append(r.joined, id) }
func (r *recordingListener) NodeLeft(id NodeID)      { r.left = append(r.left, id) }
func (r *recordingListener) NodeFailed(id NodeID)    { r.failed = append(r.failed, id) }
func (r *recordingListener) NodeRecovered(id NodeID) { r.recovered = append(r.recovered, id) }

var _ MembershipListener = (*recordingListener)(nil)

func newTestCluster(t *testing.T, nodes int) (*Cluster, *sim.Engine) {
	t.Helper()
	engine := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.InitialNodes = nodes
	cfg.BootstrapTime = 10 * time.Second
	cfg.DecommissionTime = 5 * time.Second
	c := New(cfg, engine, sim.NewRandSource(1))
	return c, engine
}

func TestClusterInitialSize(t *testing.T) {
	c, _ := newTestCluster(t, 3)
	if c.Size() != 3 || c.TotalNodes() != 3 {
		t.Fatalf("Size=%d TotalNodes=%d, want 3/3", c.Size(), c.TotalNodes())
	}
	if len(c.Nodes()) != 3 || len(c.AvailableNodes()) != 3 {
		t.Fatal("node listings inconsistent with size")
	}
	if _, ok := c.Node(c.Nodes()[0].ID()); !ok {
		t.Fatal("Node() lookup failed for existing node")
	}
	if _, ok := c.Node(999); ok {
		t.Fatal("Node() lookup succeeded for unknown node")
	}
}

func TestClusterDefaultsApplied(t *testing.T) {
	c := New(Config{}, sim.NewEngine(), sim.NewRandSource(1))
	if c.Size() != DefaultConfig().InitialNodes {
		t.Fatalf("default initial nodes = %d", c.Size())
	}
	if c.Config().MaxNodes <= 0 || c.Config().BootstrapTime <= 0 {
		t.Fatal("config defaults not applied")
	}
}

func TestAddNodeLifecycle(t *testing.T) {
	c, engine := newTestCluster(t, 2)
	var listener recordingListener
	c.Subscribe(&listener)

	id, err := c.AddNode()
	if err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if c.Size() != 2 {
		t.Fatalf("size should remain 2 while bootstrapping, got %d", c.Size())
	}
	n, _ := c.Node(id)
	if n.State() != NodeJoining {
		t.Fatalf("new node state = %v, want joining", n.State())
	}
	// Existing nodes should feel rebalance load while bootstrap is running.
	for _, existing := range c.AvailableNodes() {
		if existing.RebalanceLoad() <= 0 {
			t.Fatal("rebalance load not applied during bootstrap")
		}
	}
	if err := engine.Run(11 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if c.Size() != 3 {
		t.Fatalf("size after bootstrap = %d, want 3", c.Size())
	}
	if len(listener.joined) != 1 || listener.joined[0] != id {
		t.Fatalf("listener joined = %v, want [%v]", listener.joined, id)
	}
	for _, existing := range c.AvailableNodes() {
		if existing.RebalanceLoad() != 0 {
			t.Fatal("rebalance load not cleared after bootstrap")
		}
	}
}

func TestRemoveNodeLifecycle(t *testing.T) {
	c, engine := newTestCluster(t, 3)
	var listener recordingListener
	c.Subscribe(&listener)

	victim := c.AvailableNodes()[0].ID()
	if err := c.RemoveNode(victim); err != nil {
		t.Fatalf("RemoveNode: %v", err)
	}
	if len(listener.left) != 1 || listener.left[0] != victim {
		t.Fatalf("listener left = %v, want [%v]", listener.left, victim)
	}
	n, _ := c.Node(victim)
	if n.State() != NodeDraining {
		t.Fatalf("state = %v, want draining", n.State())
	}
	if err := engine.Run(6 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, ok := c.Node(victim); ok {
		t.Fatal("node still present after decommission")
	}
	if c.Size() != 2 {
		t.Fatalf("size = %d, want 2", c.Size())
	}
}

func TestRemoveNodeGuards(t *testing.T) {
	c, _ := newTestCluster(t, 1)
	only := c.AvailableNodes()[0].ID()
	if err := c.RemoveNode(only); !errors.Is(err, ErrMinNodes) {
		t.Fatalf("RemoveNode below MinNodes = %v, want ErrMinNodes", err)
	}
	if err := c.RemoveNode(999); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("RemoveNode unknown = %v, want ErrUnknownNode", err)
	}
}

func TestAddNodeMaxGuard(t *testing.T) {
	engine := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.InitialNodes = 2
	cfg.MaxNodes = 2
	c := New(cfg, engine, sim.NewRandSource(1))
	if _, err := c.AddNode(); !errors.Is(err, ErrMaxNodes) {
		t.Fatalf("AddNode over MaxNodes = %v, want ErrMaxNodes", err)
	}
}

func TestRemoveNodeWrongState(t *testing.T) {
	c, _ := newTestCluster(t, 3)
	id, err := c.AddNode()
	if err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if err := c.RemoveNode(id); !errors.Is(err, ErrNodeNotReady) {
		t.Fatalf("RemoveNode on joining node = %v, want ErrNodeNotReady", err)
	}
}

func TestFailAndRecoverNode(t *testing.T) {
	c, _ := newTestCluster(t, 3)
	var listener recordingListener
	c.Subscribe(&listener)
	id := c.AvailableNodes()[1].ID()
	if err := c.FailNode(id); err != nil {
		t.Fatalf("FailNode: %v", err)
	}
	if c.Size() != 2 {
		t.Fatalf("size after failure = %d, want 2", c.Size())
	}
	if err := c.FailNode(id); err != nil {
		t.Fatalf("FailNode twice should be a no-op, got %v", err)
	}
	if err := c.RecoverNode(id); err != nil {
		t.Fatalf("RecoverNode: %v", err)
	}
	if c.Size() != 3 {
		t.Fatalf("size after recovery = %d, want 3", c.Size())
	}
	if err := c.RecoverNode(id); err == nil {
		t.Fatal("RecoverNode on healthy node should fail")
	}
	if err := c.FailNode(999); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("FailNode unknown = %v, want ErrUnknownNode", err)
	}
	if err := c.RecoverNode(999); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("RecoverNode unknown = %v, want ErrUnknownNode", err)
	}
	if len(listener.failed) != 1 || len(listener.recovered) != 1 {
		t.Fatalf("listener events failed=%v recovered=%v", listener.failed, listener.recovered)
	}
	if len(listener.left) != 0 || len(listener.joined) != 0 {
		t.Fatalf("failure should not be a membership change: left=%v joined=%v", listener.left, listener.joined)
	}
}

func TestNodeSecondsAccounting(t *testing.T) {
	c, engine := newTestCluster(t, 2)
	if err := engine.Run(100 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := c.NodeSeconds()
	if got < 199 || got > 201 {
		t.Fatalf("NodeSeconds = %v, want ~200", got)
	}
	if _, err := c.AddNode(); err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if err := engine.Run(200 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// 2 nodes for 100s, then 3 billable nodes (joining nodes are paid for)
	// for another 100s => about 200 + 300.
	got = c.NodeSeconds()
	if got < 490 || got > 510 {
		t.Fatalf("NodeSeconds = %v, want ~500", got)
	}
}

func TestSetBackgroundLoadAppliesToAllNodes(t *testing.T) {
	c, _ := newTestCluster(t, 3)
	c.SetBackgroundLoad(0.3)
	for _, n := range c.Nodes() {
		if n.BackgroundLoad() != 0.3 {
			t.Fatalf("node %v background = %v, want 0.3", n.ID(), n.BackgroundLoad())
		}
	}
}

func TestUtilizationSampler(t *testing.T) {
	c, engine := newTestCluster(t, 2)
	sampler := NewUtilizationSampler(c)

	// Saturate node 1 for one second of virtual time.
	n := c.AvailableNodes()[0]
	for i := 0; i < 10000; i++ {
		n.Enqueue(0, ForegroundOp)
	}
	if err := engine.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	mean, max := sampler.Sample(engine.Now())
	if max <= 0.5 {
		t.Fatalf("max utilization = %v, want > 0.5 for saturated node", max)
	}
	if mean <= 0 || mean > 1 {
		t.Fatalf("mean utilization = %v out of range", mean)
	}
	// A second sample over an idle period should drop towards zero.
	if err := engine.Run(10 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	_, max2 := sampler.Sample(engine.Now())
	if max2 >= max {
		t.Fatalf("utilization did not decay: %v -> %v", max, max2)
	}
	// Degenerate sample with no elapsed time.
	m, mx := sampler.Sample(engine.Now())
	if m != 0 || mx != 0 {
		t.Fatal("zero-elapsed sample should return zeros")
	}
}

func TestTenantDriverQuietAndNoisy(t *testing.T) {
	engine := sim.NewEngine()
	c := New(DefaultConfig(), engine, sim.NewRandSource(5))
	quiet, err := NewTenantDriver(engine, c, QuietTenantProfile(), sim.NewRandSource(5).Stream("t"))
	if err != nil {
		t.Fatalf("NewTenantDriver: %v", err)
	}
	if err := engine.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if quiet.Current() != 0 {
		t.Fatalf("quiet profile applied load %v", quiet.Current())
	}
	quiet.Stop()

	engine2 := sim.NewEngine()
	c2 := New(DefaultConfig(), engine2, sim.NewRandSource(6))
	noisy, err := NewTenantDriver(engine2, c2, NoisyTenantProfile(), sim.NewRandSource(6).Stream("t"))
	if err != nil {
		t.Fatalf("NewTenantDriver: %v", err)
	}
	if err := engine2.Run(10 * time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if noisy.Current() <= 0 {
		t.Fatalf("noisy profile applied no load")
	}
	if c2.Nodes()[0].BackgroundLoad() <= 0 {
		t.Fatal("noisy profile did not reach nodes")
	}
	if c2.Network().Congestion() <= 0 {
		t.Fatal("noisy profile did not reach network")
	}
	noisy.Stop()
}

func TestTenantDriverDefaultInterval(t *testing.T) {
	engine := sim.NewEngine()
	c := New(DefaultConfig(), engine, sim.NewRandSource(5))
	p := NoisyTenantProfile()
	p.Interval = 0
	if _, err := NewTenantDriver(engine, c, p, sim.NewRandSource(1).Stream("x")); err != nil {
		t.Fatalf("NewTenantDriver with zero interval: %v", err)
	}
}

// TestPartitionIsolationRefcounts pins that overlapping partition faults
// compose: a node isolated by two faults reconnects only when both heal, and
// the heal of one fault never reconnects a node another still isolates.
func TestPartitionIsolationRefcounts(t *testing.T) {
	net := NewNetwork(DefaultNetworkConfig(), sim.NewRandSource(1).Stream("net"))
	a, b, c := NodeID(1), NodeID(2), NodeID(3)

	if !net.Reachable(a, b) || net.PartitionActive() {
		t.Fatal("fresh network not fully connected")
	}
	net.Isolate([]NodeID{a})    // fault 1
	net.Isolate([]NodeID{a, b}) // fault 2 overlaps on a
	if net.Reachable(a, c) || net.Reachable(b, c) {
		t.Fatal("isolated nodes reachable from the majority")
	}
	if !net.Reachable(a, b) {
		t.Fatal("nodes on the isolated side not mutually reachable")
	}
	net.Heal([]NodeID{a, b}) // fault 2 ends
	if net.Reachable(a, c) {
		t.Fatal("healing one fault reconnected a node another fault still isolates")
	}
	if !net.Reachable(b, c) {
		t.Fatal("node isolated only by the healed fault did not reconnect")
	}
	net.Heal([]NodeID{a}) // fault 1 ends
	if !net.Reachable(a, c) || net.PartitionActive() {
		t.Fatal("network not fully connected after every fault healed")
	}
	if got := net.IsolatedCount(); got != 0 {
		t.Fatalf("IsolatedCount = %d after full heal", got)
	}

	net.Isolate([]NodeID{a, b})
	net.ClearPartition()
	if net.PartitionActive() || net.IsolatedCount() != 0 {
		t.Fatal("ClearPartition left isolation behind")
	}
}
