package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"autonosql/internal/sim"
)

// Config describes a cluster: its initial size, node profile, network
// profile and provisioning behaviour.
type Config struct {
	// InitialNodes is the number of nodes present at simulation start.
	InitialNodes int
	// Node is the per-node capacity profile.
	Node NodeConfig
	// Network is the datacentre network profile.
	Network NetworkConfig
	// BootstrapTime is how long a newly provisioned node takes before it can
	// serve traffic (VM start + data streaming).
	BootstrapTime time.Duration
	// DecommissionTime is how long a node drains before it is removed.
	DecommissionTime time.Duration
	// RebalanceLoad is the extra load fraction imposed on existing nodes
	// while a node bootstraps or drains.
	RebalanceLoad float64
	// MinNodes and MaxNodes bound the cluster size reachable through
	// AddNode/RemoveNode (they model a provider quota).
	MinNodes int
	MaxNodes int
}

// DefaultConfig returns the cluster profile used by the experiments:
// three nodes, 60 s bootstrap, 30 s decommission.
func DefaultConfig() Config {
	return Config{
		InitialNodes:     3,
		Node:             DefaultNodeConfig(),
		Network:          DefaultNetworkConfig(),
		BootstrapTime:    60 * time.Second,
		DecommissionTime: 30 * time.Second,
		RebalanceLoad:    0.15,
		MinNodes:         1,
		MaxNodes:         32,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.InitialNodes <= 0 {
		c.InitialNodes = d.InitialNodes
	}
	if c.BootstrapTime <= 0 {
		c.BootstrapTime = d.BootstrapTime
	}
	if c.DecommissionTime <= 0 {
		c.DecommissionTime = d.DecommissionTime
	}
	if c.RebalanceLoad <= 0 {
		c.RebalanceLoad = d.RebalanceLoad
	}
	if c.MinNodes <= 0 {
		c.MinNodes = d.MinNodes
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = d.MaxNodes
	}
	return c
}

// Errors returned by cluster membership operations.
var (
	ErrMaxNodes     = errors.New("cluster: maximum node count reached")
	ErrMinNodes     = errors.New("cluster: minimum node count reached")
	ErrUnknownNode  = errors.New("cluster: unknown node")
	ErrNodeNotReady = errors.New("cluster: node is not in a removable state")
)

// MembershipListener is notified about changes in cluster membership and
// node health. Joins and departures are permanent membership changes (the
// store moves replica ownership); failures and recoveries are transient (the
// node keeps its ring position but is temporarily unreachable).
type MembershipListener interface {
	NodeJoined(id NodeID)
	NodeLeft(id NodeID)
	NodeFailed(id NodeID)
	NodeRecovered(id NodeID)
}

// Cluster owns the set of nodes, the network, and the provisioning
// lifecycle. All mutation happens on the simulation's event loop.
type Cluster struct {
	cfg     Config
	engine  *sim.Engine
	network *Network
	rnd     *sim.RandSource

	nodes     map[NodeID]*Node
	nextID    NodeID
	listeners []MembershipListener

	// availCache is the memoised result of AvailableNodes. The store asks for
	// the available-node list on every operation to pick a coordinator, so
	// rebuilding (and re-sorting) it per call dominated the coordinator path;
	// membership and node-state changes invalidate the cache instead.
	availCache []*Node
	availDirty bool

	// noiseFeeds, when set, builds a pre-generated noise feed for every
	// current and future entropy stream (see EnableNoiseFeeds).
	noiseFeeds NoiseFeedFactory

	// pendingJoins tracks nodes currently bootstrapping so that rebalance
	// load can be removed once they finish.
	pendingJoins int
	// nodeSeconds accumulates (node count × time) for cost accounting.
	nodeSeconds     float64
	lastAccountedAt time.Duration
}

// New creates a cluster with cfg.InitialNodes nodes already up.
func New(cfg Config, engine *sim.Engine, rnd *sim.RandSource) *Cluster {
	cfg = cfg.withDefaults()
	c := &Cluster{
		cfg:        cfg,
		engine:     engine,
		network:    NewNetwork(cfg.Network, rnd.Stream("network")),
		rnd:        rnd,
		nodes:      make(map[NodeID]*Node),
		availDirty: true,
	}
	for i := 0; i < cfg.InitialNodes; i++ {
		id := c.allocateID()
		c.nodes[id] = c.adopt(NewNode(id, cfg.Node, engine, rnd.Stream(fmt.Sprintf("node-%d", id))))
	}
	return c
}

// NoiseFeedFactory builds the pre-generated noise feed for one entropy
// stream of the cluster. node is the owning node for service-time streams and
// 0 for the network-jitter stream; the feed takes exclusive ownership of rng
// and must reproduce its draw sequence for the given log-normal sigma.
type NoiseFeedFactory func(node NodeID, rng *rand.Rand, sigma float64) *sim.NoiseFeed

// EnableNoiseFeeds routes every log-normal noise draw — node service times
// and network jitter — through feeds built by mk. Sharded runs use this to
// pre-generate the factors on ring-segment owner lanes: the values every draw
// site observes are bit-identical to direct draws, only the goroutine that
// runs the underlying rng changes. Existing streams are bound immediately;
// nodes provisioned later are bound by AddNode. Call before any draw has been
// taken, i.e. before the simulation runs.
func (c *Cluster) EnableNoiseFeeds(mk NoiseFeedFactory) {
	c.noiseFeeds = mk
	c.network.noise = mk(0, c.network.rng, c.network.cfg.JitterSigma)
	for _, n := range c.Nodes() {
		n.noise = mk(n.id, n.rng, n.cfg.ServiceTimeSigma)
	}
}

// adopt wires a node's state-change notification to the availability cache
// and marks the cache stale.
func (c *Cluster) adopt(n *Node) *Node {
	n.notify = c.invalidateAvail
	c.availDirty = true
	return n
}

func (c *Cluster) invalidateAvail() { c.availDirty = true }

func (c *Cluster) allocateID() NodeID {
	c.nextID++
	return c.nextID
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Network returns the cluster's network model.
func (c *Cluster) Network() *Network { return c.network }

// Subscribe registers a membership listener.
func (c *Cluster) Subscribe(l MembershipListener) {
	if l != nil {
		c.listeners = append(c.listeners, l)
	}
}

// Node returns the node with the given ID.
func (c *Cluster) Node(id NodeID) (*Node, bool) {
	n, ok := c.nodes[id]
	return n, ok
}

// Nodes returns all nodes (any state) ordered by ID.
func (c *Cluster) Nodes() []*Node {
	out := make([]*Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// AvailableNodes returns the nodes currently able to serve requests, ordered
// by ID. The result is memoised until the next membership or node-state
// change; callers must treat it as read-only. A fresh slice is built on every
// rebuild, so a list obtained before a change remains a valid snapshot.
func (c *Cluster) AvailableNodes() []*Node {
	if c.availDirty {
		out := make([]*Node, 0, len(c.nodes))
		for _, n := range c.nodes {
			if n.Available() {
				out = append(out, n)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
		c.availCache = out
		c.availDirty = false
	}
	return c.availCache
}

// Size returns the number of nodes that are up or draining.
func (c *Cluster) Size() int { return len(c.AvailableNodes()) }

// TotalNodes returns the number of nodes in any state (including joining).
func (c *Cluster) TotalNodes() int { return len(c.nodes) }

// AddNode provisions a new node. The node spends BootstrapTime in the
// NodeJoining state (imposing rebalance load on existing nodes) before it
// becomes available and listeners are notified.
func (c *Cluster) AddNode() (NodeID, error) {
	if len(c.nodes) >= c.cfg.MaxNodes {
		return 0, ErrMaxNodes
	}
	c.accountNodeSeconds()
	id := c.allocateID()
	node := c.adopt(NewNode(id, c.cfg.Node, c.engine, c.rnd.Stream(fmt.Sprintf("node-%d", id))))
	if c.noiseFeeds != nil {
		node.noise = c.noiseFeeds(id, node.rng, node.cfg.ServiceTimeSigma)
	}
	node.SetState(NodeJoining)
	c.nodes[id] = node
	c.pendingJoins++
	c.applyRebalanceLoad()

	c.engine.After(c.cfg.BootstrapTime, func(time.Duration) {
		// The node may have been failed or removed while bootstrapping.
		n, ok := c.nodes[id]
		if !ok || n.State() != NodeJoining {
			c.pendingJoins--
			c.applyRebalanceLoad()
			return
		}
		n.SetState(NodeUp)
		c.pendingJoins--
		c.applyRebalanceLoad()
		c.accountNodeSeconds()
		for _, l := range c.listeners {
			l.NodeJoined(id)
		}
	})
	return id, nil
}

// RemoveNode drains and then removes an available node. Listeners are
// notified immediately (so replicas move off the node) and the node is
// deleted after DecommissionTime.
func (c *Cluster) RemoveNode(id NodeID) error {
	n, ok := c.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownNode, id)
	}
	if c.Size() <= c.cfg.MinNodes {
		return ErrMinNodes
	}
	if n.State() != NodeUp {
		return fmt.Errorf("%w: %v is %v", ErrNodeNotReady, id, n.State())
	}
	c.accountNodeSeconds()
	n.SetState(NodeDraining)
	c.pendingJoins++ // draining also imposes streaming load
	c.applyRebalanceLoad()
	for _, l := range c.listeners {
		l.NodeLeft(id)
	}
	c.engine.After(c.cfg.DecommissionTime, func(time.Duration) {
		c.accountNodeSeconds()
		if cur, ok := c.nodes[id]; ok && cur.State() == NodeDraining {
			cur.SetState(NodeDown)
			delete(c.nodes, id)
			c.invalidateAvail()
		}
		c.pendingJoins--
		c.applyRebalanceLoad()
	})
	return nil
}

// FailNode marks a node as down immediately (crash failure) and notifies
// listeners of the transient failure. The node keeps its ring position and is
// still paid for until it is repaired or decommissioned.
func (c *Cluster) FailNode(id NodeID) error {
	n, ok := c.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownNode, id)
	}
	if n.State() == NodeDown {
		return nil
	}
	n.SetState(NodeDown)
	for _, l := range c.listeners {
		l.NodeFailed(id)
	}
	return nil
}

// RecoverNode brings a previously failed node back up and notifies
// listeners of the recovery.
func (c *Cluster) RecoverNode(id NodeID) error {
	n, ok := c.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownNode, id)
	}
	if n.State() != NodeDown {
		return fmt.Errorf("%w: %v is %v", ErrNodeNotReady, id, n.State())
	}
	n.SetState(NodeUp)
	for _, l := range c.listeners {
		l.NodeRecovered(id)
	}
	return nil
}

// applyRebalanceLoad recomputes the rebalance load imposed on available
// nodes from the number of in-flight joins/drains.
func (c *Cluster) applyRebalanceLoad() {
	load := clamp(float64(c.pendingJoins)*c.cfg.RebalanceLoad, 0, 0.6)
	for _, n := range c.nodes {
		if n.Available() {
			n.SetRebalanceLoad(load)
		}
	}
}

// SetBackgroundLoad applies a noisy-neighbour load fraction to every node.
func (c *Cluster) SetBackgroundLoad(f float64) {
	for _, n := range c.nodes {
		n.SetBackgroundLoad(f)
	}
}

// accountNodeSeconds folds elapsed (node × seconds) into the running total.
// It must be called before any change in the billable node count.
func (c *Cluster) accountNodeSeconds() {
	now := c.engine.Now()
	if now > c.lastAccountedAt {
		elapsed := (now - c.lastAccountedAt).Seconds()
		c.nodeSeconds += elapsed * float64(c.billableNodes())
		c.lastAccountedAt = now
	}
}

func (c *Cluster) billableNodes() int {
	count := 0
	for _, n := range c.nodes {
		if n.State() != NodeDown {
			count++
		}
	}
	return count
}

// NodeSeconds returns the accumulated node-seconds consumed so far,
// including time elapsed since the last membership change.
func (c *Cluster) NodeSeconds() float64 {
	now := c.engine.Now()
	extra := 0.0
	if now > c.lastAccountedAt {
		extra = (now - c.lastAccountedAt).Seconds() * float64(c.billableNodes())
	}
	return c.nodeSeconds + extra
}

// UtilizationSampler tracks per-node utilisation over sampling intervals by
// diffing cumulative busy time.
type UtilizationSampler struct {
	cluster  *Cluster
	lastBusy map[NodeID]time.Duration
	lastAt   time.Duration
}

// NewUtilizationSampler creates a sampler bound to a cluster.
func NewUtilizationSampler(c *Cluster) *UtilizationSampler {
	return &UtilizationSampler{cluster: c, lastBusy: make(map[NodeID]time.Duration)}
}

// Sample returns the mean and maximum utilisation across available nodes
// since the previous call. Utilisation is busy-time divided by wall time and
// clamped to [0, 1].
func (u *UtilizationSampler) Sample(now time.Duration) (mean, max float64) {
	elapsed := now - u.lastAt
	nodes := u.cluster.AvailableNodes()
	if elapsed <= 0 || len(nodes) == 0 {
		u.lastAt = now
		return 0, 0
	}
	sum := 0.0
	for _, n := range nodes {
		busy := n.BusyAccum()
		prev := u.lastBusy[n.ID()]
		util := clamp(float64(busy-prev)/float64(elapsed), 0, 1)
		sum += util
		if util > max {
			max = util
		}
		u.lastBusy[n.ID()] = busy
	}
	u.lastAt = now
	return sum / float64(len(nodes)), max
}
