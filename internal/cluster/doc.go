// Package cluster models the infrastructure an eventually-consistent store
// runs on: the nodes, the datacentre network between them, and the shared
// multi-tenant platform underneath.
//
// A Node is a serial executor with a finite capacity: foreground reads and
// writes, background replication applies and repair work all queue for the
// same per-node service time, so saturating a node visibly delays replica
// convergence — the mechanism behind the inconsistency window the paper
// studies. The Network adds log-normally jittered propagation delay and an
// externally settable congestion level.
//
// The Cluster ties the nodes together and models elasticity the way a cloud
// deployment experiences it: AddNode provisions a node that only starts
// serving after its bootstrap time, RemoveNode drains a node over its
// decommission time, and FailNode/RecoverNode model crashes. NodeSeconds
// accounts consumed capacity for the cost model.
//
// A TenantDriver replays a background-load profile on the same nodes,
// reproducing the noisy-neighbour interference that makes the window drift
// over time at an otherwise identical configuration and load.
package cluster
