// Package cluster models the infrastructure a NoSQL database runs on: nodes
// with finite processing capacity and queueing behaviour, a network with
// latency, jitter and congestion, multi-tenant background load ("noisy
// neighbours"), and cluster membership with realistic provisioning and
// decommissioning delays.
//
// The paper argues that the inconsistency window depends not only on the
// database technology and its configuration but on dynamic parameters such as
// the load on the database and on the platform it runs on. This package is
// the substrate that makes those dynamics visible to the store and to the
// autonomous controller built on top of it.
package cluster

import (
	"fmt"
	"math/rand"
	"time"

	"autonosql/internal/metrics"
	"autonosql/internal/sim"
)

// NodeID identifies a node within a cluster.
type NodeID int

// String implements fmt.Stringer.
func (id NodeID) String() string { return fmt.Sprintf("node-%d", int(id)) }

// NodeState is the lifecycle state of a node.
type NodeState int

// Node lifecycle states.
const (
	// NodeJoining is a node that has been provisioned but is still
	// bootstrapping (streaming data from its peers). It cannot yet serve
	// requests.
	NodeJoining NodeState = iota + 1
	// NodeUp is a healthy node serving requests.
	NodeUp
	// NodeDraining is a node being decommissioned; it still serves requests
	// while handing off its ranges.
	NodeDraining
	// NodeDown is a failed or removed node.
	NodeDown
)

// String implements fmt.Stringer.
func (s NodeState) String() string {
	switch s {
	case NodeJoining:
		return "joining"
	case NodeUp:
		return "up"
	case NodeDraining:
		return "draining"
	case NodeDown:
		return "down"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// NodeConfig describes the capacity and service-time characteristics of a
// node. The defaults model a modest cloud VM running a storage engine.
type NodeConfig struct {
	// BaseServiceTime is the median time to execute one operation on an
	// otherwise idle node.
	BaseServiceTime time.Duration
	// ServiceTimeSigma is the log-normal shape parameter for service-time
	// variability.
	ServiceTimeSigma float64
	// CapacityOpsPerSec is the sustainable operation throughput of the node.
	// Arrivals beyond this rate queue and inflate latency.
	CapacityOpsPerSec float64
	// ReplicationApplyTime is the median time to apply a replicated mutation
	// in the background (typically cheaper than a coordinated operation).
	ReplicationApplyTime time.Duration
	// ReplicationQueuePenalty models the lower scheduling priority of
	// background replication: a replicated mutation waits this many times
	// longer than the foreground queue delay before it is applied. Values
	// below 1 are treated as 1 (no penalty).
	ReplicationQueuePenalty float64
}

// DefaultNodeConfig returns the node profile used by the experiments: a node
// that sustains roughly 5000 ops/s with a 0.2 ms median service time.
func DefaultNodeConfig() NodeConfig {
	return NodeConfig{
		BaseServiceTime:         200 * time.Microsecond,
		ServiceTimeSigma:        0.35,
		CapacityOpsPerSec:       5000,
		ReplicationApplyTime:    150 * time.Microsecond,
		ReplicationQueuePenalty: 4,
	}
}

func (c NodeConfig) withDefaults() NodeConfig {
	d := DefaultNodeConfig()
	if c.BaseServiceTime <= 0 {
		c.BaseServiceTime = d.BaseServiceTime
	}
	if c.ServiceTimeSigma <= 0 {
		c.ServiceTimeSigma = d.ServiceTimeSigma
	}
	if c.CapacityOpsPerSec <= 0 {
		c.CapacityOpsPerSec = d.CapacityOpsPerSec
	}
	if c.ReplicationApplyTime <= 0 {
		c.ReplicationApplyTime = d.ReplicationApplyTime
	}
	if c.ReplicationQueuePenalty < 1 {
		c.ReplicationQueuePenalty = d.ReplicationQueuePenalty
	}
	return c
}

// Node is a simulated database host. Work submitted to a node is serviced by
// a single logical executor: each operation waits for the work queued before
// it and then occupies the executor for a load-dependent service time. This
// produces the characteristic latency blow-up as utilisation approaches one,
// which in turn widens the inconsistency window under load.
type Node struct {
	id     NodeID
	cfg    NodeConfig
	engine *sim.Engine
	rng    *rand.Rand
	// noise, when set, replaces direct service-time draws from rng with
	// factors pre-generated on a sharded run's owner lane. The feed owns rng
	// and reproduces its draw sequence exactly, so enabling it changes where
	// the entropy is computed, never its values.
	noise *sim.NoiseFeed

	state     NodeState
	busyUntil time.Duration
	// background is the fraction of the node's capacity consumed by
	// co-located tenants (the noisy-neighbour effect).
	background float64
	// rebalance is extra load from ongoing bootstrap/decommission streaming.
	rebalance float64
	// fault is capacity lost to an injected slow-node fault (a degraded disk,
	// a stolen CPU). It composes with the tenant and rebalance components so
	// the fault injector never clobbers what the tenant driver set.
	fault float64

	// class tags the node as dedicated to one SLA class under a placement
	// policy; empty means the node serves the shared pool. The store's
	// replica-selection path and the controller's scale-in policy consult it.
	class string

	busyAccum   time.Duration
	opsServed   metrics.Counter
	opsRejected metrics.Counter

	// notify, when set by the owning cluster, is invoked on every state
	// transition so derived views (the available-node cache) can invalidate.
	notify func()
}

// NewNode constructs a node in the NodeUp state.
func NewNode(id NodeID, cfg NodeConfig, engine *sim.Engine, rng *rand.Rand) *Node {
	return &Node{
		id:     id,
		cfg:    cfg.withDefaults(),
		engine: engine,
		rng:    rng,
		state:  NodeUp,
	}
}

// ID returns the node identifier.
func (n *Node) ID() NodeID { return n.id }

// State returns the node lifecycle state.
func (n *Node) State() NodeState { return n.state }

// SetState transitions the node lifecycle state.
func (n *Node) SetState(s NodeState) {
	n.state = s
	if n.notify != nil {
		n.notify()
	}
}

// Config returns the node's capacity configuration.
func (n *Node) Config() NodeConfig { return n.cfg }

// SetClass tags the node as dedicated to one SLA class ("" returns it to the
// shared pool).
func (n *Node) SetClass(class string) { n.class = class }

// Class returns the SLA class the node is dedicated to, or "".
func (n *Node) Class() string { return n.class }

// Available reports whether the node can serve requests.
func (n *Node) Available() bool {
	return n.state == NodeUp || n.state == NodeDraining
}

// SetBackgroundLoad sets the fraction [0, 0.95] of capacity consumed by
// other tenants sharing the underlying hardware.
func (n *Node) SetBackgroundLoad(f float64) {
	n.background = clamp(f, 0, 0.95)
}

// BackgroundLoad returns the current noisy-neighbour load fraction.
func (n *Node) BackgroundLoad() float64 { return n.background }

// SetRebalanceLoad sets the fraction of capacity consumed by bootstrap or
// decommission streaming.
func (n *Node) SetRebalanceLoad(f float64) {
	n.rebalance = clamp(f, 0, 0.9)
}

// RebalanceLoad returns the current rebalance load fraction.
func (n *Node) RebalanceLoad() float64 { return n.rebalance }

// SetFaultLoad sets the fraction [0, 0.95] of capacity lost to an injected
// slow-node fault.
func (n *Node) SetFaultLoad(f float64) {
	n.fault = clamp(f, 0, 0.95)
}

// FaultLoad returns the current slow-node fault load fraction.
func (n *Node) FaultLoad() float64 { return n.fault }

// contention is the total fraction of capacity unavailable to foreground
// work.
func (n *Node) contention() float64 {
	return clamp(n.background+n.rebalance+n.fault, 0, 0.97)
}

// WorkKind distinguishes coordinated foreground operations from background
// replication applies, which are cheaper.
type WorkKind int

// Work kinds.
const (
	// ForegroundOp is a client-facing read or write executed by the node.
	ForegroundOp WorkKind = iota + 1
	// ReplicationApply is a background application of a replicated mutation.
	ReplicationApply
)

// Enqueue submits one unit of work at virtual time now and returns the delay
// until the work completes (queue wait plus service time). Unavailable nodes
// reject work by returning ok=false.
func (n *Node) Enqueue(now time.Duration, kind WorkKind) (delay time.Duration, ok bool) {
	if !n.Available() {
		n.opsRejected.Inc()
		return 0, false
	}
	base := n.cfg.BaseServiceTime
	if kind == ReplicationApply {
		base = n.cfg.ReplicationApplyTime
	}
	// Contention from co-tenants and rebalancing effectively slows the
	// executor down: the same work occupies it for longer.
	slowdown := 1.0 / (1.0 - n.contention())
	var service time.Duration
	if n.noise != nil {
		service = time.Duration(n.noise.Value(float64(base) * slowdown))
	} else {
		service = time.Duration(sim.LogNormal(n.rng, float64(base)*slowdown, n.cfg.ServiceTimeSigma))
	}
	if service <= 0 {
		service = base
	}

	start := now
	if n.busyUntil > start {
		start = n.busyUntil
	}
	queueWait := start - now
	n.busyUntil = start + service
	n.busyAccum += service
	n.opsServed.Inc()

	completion := n.busyUntil - now
	if kind == ReplicationApply && n.cfg.ReplicationQueuePenalty > 1 {
		// Background mutations sit behind the foreground backlog: the longer
		// the queue, the further their application slips. This is the
		// mechanism that makes the inconsistency window grow sharply as the
		// node approaches saturation.
		completion += time.Duration(float64(queueWait) * (n.cfg.ReplicationQueuePenalty - 1))
	}
	return completion, true
}

// QueueDelay returns how long newly submitted work would wait before being
// serviced at virtual time now.
func (n *Node) QueueDelay(now time.Duration) time.Duration {
	if n.busyUntil <= now {
		return 0
	}
	return n.busyUntil - now
}

// BusyAccum returns the cumulative busy time of the node's executor. Callers
// can diff successive readings to derive utilisation over an interval.
func (n *Node) BusyAccum() time.Duration { return n.busyAccum }

// OpsServed returns the number of accepted work items.
func (n *Node) OpsServed() uint64 { return n.opsServed.Value() }

// OpsRejected returns the number of rejected work items.
func (n *Node) OpsRejected() uint64 { return n.opsRejected.Value() }

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
