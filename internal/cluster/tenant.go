package cluster

import (
	"math"
	"math/rand"
	"time"

	"autonosql/internal/sim"
)

// TenantProfile describes how multi-tenant background load on the shared
// infrastructure evolves over time. Bermbach & Tai observed that the
// inconsistency window of cloud storage drifts over long time scales; the
// paper attributes this to exactly this kind of shared-resource interference.
type TenantProfile struct {
	// BaseLoad is the steady background load fraction in [0, 0.9].
	BaseLoad float64
	// Amplitude is the peak additional load of slow oscillation.
	Amplitude float64
	// Period is the oscillation period (e.g. 6 h for a co-tenant batch job).
	Period time.Duration
	// BurstProbability is the per-interval probability of a short burst.
	BurstProbability float64
	// BurstLoad is the extra load during a burst.
	BurstLoad float64
	// BurstDuration is how long a burst lasts.
	BurstDuration time.Duration
	// NetworkShare is the fraction of the background load that also appears
	// as network congestion.
	NetworkShare float64
	// Interval is how often the profile is re-evaluated.
	Interval time.Duration
}

// QuietTenantProfile returns a profile with no background interference.
func QuietTenantProfile() TenantProfile {
	return TenantProfile{Interval: 5 * time.Second}
}

// NoisyTenantProfile returns the default noisy-neighbour profile used in the
// experiments: a 20% base load oscillating by ±15% over two hours with
// occasional 30-second bursts.
func NoisyTenantProfile() TenantProfile {
	return TenantProfile{
		BaseLoad:         0.20,
		Amplitude:        0.15,
		Period:           2 * time.Hour,
		BurstProbability: 0.02,
		BurstLoad:        0.35,
		BurstDuration:    30 * time.Second,
		NetworkShare:     0.5,
		Interval:         5 * time.Second,
	}
}

// TenantDriver applies a TenantProfile to a cluster on a periodic tick.
type TenantDriver struct {
	profile  TenantProfile
	cluster  *Cluster
	rng      *rand.Rand
	ticker   *sim.Ticker
	burstEnd time.Duration
	current  float64
}

// NewTenantDriver starts driving the profile on the cluster. A zero Interval
// defaults to five seconds.
func NewTenantDriver(engine *sim.Engine, c *Cluster, profile TenantProfile, rng *rand.Rand) (*TenantDriver, error) {
	if profile.Interval <= 0 {
		profile.Interval = 5 * time.Second
	}
	d := &TenantDriver{profile: profile, cluster: c, rng: rng}
	t, err := sim.NewTicker(engine, profile.Interval, d.tick)
	if err != nil {
		return nil, err
	}
	d.ticker = t
	return d, nil
}

// Current returns the background load applied at the last tick.
func (d *TenantDriver) Current() float64 { return d.current }

// Stop halts the driver.
func (d *TenantDriver) Stop() { d.ticker.Stop() }

func (d *TenantDriver) tick(now time.Duration) {
	p := d.profile
	load := p.BaseLoad
	if p.Period > 0 && p.Amplitude > 0 {
		phase := float64(now%p.Period) / float64(p.Period)
		load += p.Amplitude * math.Sin(2*math.Pi*phase)
	}
	if now < d.burstEnd {
		load += p.BurstLoad
	} else if p.BurstProbability > 0 && d.rng.Float64() < p.BurstProbability {
		d.burstEnd = now + p.BurstDuration
		load += p.BurstLoad
	}
	load = clamp(load, 0, 0.9)
	d.current = load
	d.cluster.SetBackgroundLoad(load)
	d.cluster.Network().SetCongestion(load * p.NetworkShare)
}
