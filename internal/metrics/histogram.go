// Package metrics provides the measurement primitives used throughout the
// autonosql simulator: duration histograms with percentile estimation,
// exponentially weighted moving averages, counters, gauges, time series and
// windowed aggregation.
//
// The package is deliberately dependency-free and allocation-conscious: the
// simulator records millions of samples per experiment, and the controller
// consumes aggregated snapshots of these structures every control interval.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Histogram accumulates float64 samples and answers quantile queries.
//
// Samples are kept exactly (not sketched) up to a configurable cap, after
// which reservoir sampling keeps an unbiased subset. This keeps percentile
// estimates accurate for the sample volumes produced by experiments while
// bounding memory.
type Histogram struct {
	samples  []float64
	count    uint64
	sum      float64
	min      float64
	max      float64
	cap      int
	sorted   bool
	rngState uint64
}

// DefaultHistogramCap is the default maximum number of retained samples.
const DefaultHistogramCap = 65536

// NewHistogram creates a histogram retaining at most cap samples. A cap of
// zero or less uses DefaultHistogramCap.
func NewHistogram(cap int) *Histogram {
	if cap <= 0 {
		cap = DefaultHistogramCap
	}
	return &Histogram{
		samples:  make([]float64, 0, minInt(cap, 4096)),
		min:      math.Inf(1),
		max:      math.Inf(-1),
		cap:      cap,
		rngState: 0x853c49e6748fea9b,
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.sorted = false
	if len(h.samples) < h.cap {
		h.samples = append(h.samples, v)
		return
	}
	// Reservoir sampling: replace a random existing sample with probability
	// cap/count, preserving a uniform sample of the stream.
	idx := h.nextRand() % h.count
	if idx < uint64(h.cap) {
		h.samples[idx] = v
	}
}

// ObserveDuration records a sample expressed as a duration, in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// nextRand is a small xorshift generator private to the histogram so that
// reservoir replacement is deterministic for a deterministic input stream.
func (h *Histogram) nextRand() uint64 {
	x := h.rngState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	h.rngState = x
	return x
}

// Count returns the number of observed samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the mean of all observed samples, or zero when empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observed sample, or zero when empty.
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observed sample, or zero when empty.
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the q-quantile (0 <= q <= 1) of the retained samples using
// linear interpolation. It returns zero for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	pos := q * float64(len(h.samples)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return h.samples[lo]
	}
	frac := pos - float64(lo)
	return h.samples[lo]*(1-frac) + h.samples[hi]*frac
}

// QuantileDuration returns the q-quantile interpreted as a duration in
// seconds.
func (h *Histogram) QuantileDuration(q float64) time.Duration {
	return time.Duration(h.Quantile(q) * float64(time.Second))
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.samples = h.samples[:0]
	h.count = 0
	h.sum = 0
	h.min = math.Inf(1)
	h.max = math.Inf(-1)
	h.sorted = false
}

// Snapshot captures the common summary statistics of a histogram.
type Snapshot struct {
	Count uint64
	Mean  float64
	Min   float64
	Max   float64
	P50   float64
	P95   float64
	P99   float64
}

// Snapshot returns summary statistics for the histogram.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// String renders the snapshot compactly for logs and CLI output.
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g",
		s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max)
}
