package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestTimeSeriesBasics(t *testing.T) {
	ts := NewTimeSeries("window")
	if ts.Name() != "window" {
		t.Fatalf("Name = %q", ts.Name())
	}
	if _, ok := ts.Last(); ok {
		t.Fatal("Last on empty series should report false")
	}
	ts.Append(1*time.Second, 10)
	ts.Append(2*time.Second, 20)
	ts.Append(3*time.Second, 30)
	if ts.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ts.Len())
	}
	if ts.Mean() != 20 {
		t.Fatalf("Mean = %v, want 20", ts.Mean())
	}
	if ts.Max() != 30 {
		t.Fatalf("Max = %v, want 30", ts.Max())
	}
	last, ok := ts.Last()
	if !ok || last.Value != 30 {
		t.Fatalf("Last = %+v, %v", last, ok)
	}
}

func TestTimeSeriesBetweenAndSorting(t *testing.T) {
	ts := NewTimeSeries("x")
	ts.Append(3*time.Second, 3)
	ts.Append(1*time.Second, 1)
	ts.Append(2*time.Second, 2)
	pts := ts.Points()
	for i := 1; i < len(pts); i++ {
		if pts[i].At < pts[i-1].At {
			t.Fatal("Points() not sorted by time")
		}
	}
	between := ts.Between(1*time.Second, 3*time.Second)
	if len(between) != 2 {
		t.Fatalf("Between returned %d points, want 2", len(between))
	}
}

func TestTimeSeriesResample(t *testing.T) {
	ts := NewTimeSeries("load")
	for i := 0; i < 10; i++ {
		ts.Append(time.Duration(i)*time.Second, float64(i))
	}
	pts := ts.Resample(2*time.Second, 10*time.Second)
	if len(pts) != 5 {
		t.Fatalf("Resample returned %d buckets, want 5", len(pts))
	}
	if pts[0].Value != 0.5 {
		t.Fatalf("bucket 0 = %v, want 0.5", pts[0].Value)
	}
	if pts[4].Value != 8.5 {
		t.Fatalf("bucket 4 = %v, want 8.5", pts[4].Value)
	}
	if ts.Resample(0, time.Second) != nil {
		t.Fatal("Resample with zero bucket should return nil")
	}
}

func TestTimeSeriesResampleCarriesForward(t *testing.T) {
	ts := NewTimeSeries("sparse")
	ts.Append(0, 5)
	ts.Append(9*time.Second, 10)
	pts := ts.Resample(time.Second, 10*time.Second)
	if pts[4].Value != 5 {
		t.Fatalf("empty bucket should carry previous value, got %v", pts[4].Value)
	}
}

func TestASCIIPlot(t *testing.T) {
	ts := NewTimeSeries("plot")
	ts.Append(0, 1)
	ts.Append(time.Second, 2)
	out := ts.ASCIIPlot(time.Second, 2*time.Second, 10)
	if !strings.Contains(out, "plot") || !strings.Contains(out, "#") {
		t.Fatalf("unexpected plot output: %q", out)
	}
	empty := NewTimeSeries("e")
	if got := empty.ASCIIPlot(0, 0, 10); got != "(empty series)" {
		t.Fatalf("empty plot = %q", got)
	}
}

func TestWindowedStat(t *testing.T) {
	w := NewWindowedStat(3)
	if w.Count() != 0 || w.Mean() != 0 || w.Max() != 0 {
		t.Fatal("empty window should report zeros")
	}
	w.Observe(1)
	w.Observe(2)
	w.Observe(3)
	w.Observe(10) // evicts 1
	if w.Count() != 3 {
		t.Fatalf("Count = %d, want 3", w.Count())
	}
	if w.Mean() != 5 {
		t.Fatalf("Mean = %v, want 5", w.Mean())
	}
	if w.Max() != 10 {
		t.Fatalf("Max = %v, want 10", w.Max())
	}
	if q := w.Quantile(1); q != 10 {
		t.Fatalf("p100 = %v, want 10", q)
	}
	if q := w.Quantile(0); q != 2 {
		t.Fatalf("p0 = %v, want 2", q)
	}
}

// TestWindowedStatQuantilesMatchQuantile pins that the batched query is
// bit-for-bit identical to repeated one-shot queries: the monitor switched
// the sampler's p50/p95/p99 reads to one batch, and any divergence would
// break the golden-report fingerprints.
func TestWindowedStatQuantilesMatchQuantile(t *testing.T) {
	w := NewWindowedStat(64)
	qs := []float64{0, 0.25, 0.50, 0.95, 0.99, 1}
	check := func() {
		t.Helper()
		got := w.Quantiles(qs, nil)
		if len(got) != len(qs) {
			t.Fatalf("Quantiles returned %d values for %d quantiles", len(got), len(qs))
		}
		for i, q := range qs {
			if want := w.Quantile(q); got[i] != want {
				t.Fatalf("Quantiles[%v] = %v, Quantile = %v", q, got[i], want)
			}
		}
	}
	check() // empty window: all zeros
	for i := 0; i < 100; i++ {
		w.Observe(float64((i * 37) % 101))
	}
	check()
}

// TestWindowedStatQuantilesAllocFree pins the sampler-facing contract: a
// batched quantile query over a warmed window with a reused result buffer
// performs zero allocations.
func TestWindowedStatQuantilesAllocFree(t *testing.T) {
	w := NewWindowedStat(2048)
	for i := 0; i < 4096; i++ {
		w.Observe(float64(i % 997))
	}
	qs := []float64{0.50, 0.95, 0.99}
	var buf [3]float64
	w.Quantiles(qs, buf[:0]) // warm the sort scratch
	avg := testing.AllocsPerRun(100, func() {
		w.Observe(1)
		_ = w.Quantiles(qs, buf[:0])
	})
	if avg != 0 {
		t.Errorf("batched quantile query allocates %.1f objects per call, want 0", avg)
	}
}

func TestWindowedStatTrend(t *testing.T) {
	w := NewWindowedStat(10)
	for i := 0; i < 10; i++ {
		w.Observe(float64(i) * 2)
	}
	if math.Abs(w.Trend()-2) > 1e-9 {
		t.Fatalf("Trend = %v, want 2", w.Trend())
	}
	flat := NewWindowedStat(5)
	for i := 0; i < 5; i++ {
		flat.Observe(7)
	}
	if flat.Trend() != 0 {
		t.Fatalf("Trend of constant = %v, want 0", flat.Trend())
	}
	short := NewWindowedStat(5)
	short.Observe(1)
	if short.Trend() != 0 {
		t.Fatal("Trend with one sample should be 0")
	}
}

func TestWindowedStatSizeClamp(t *testing.T) {
	w := NewWindowedStat(0)
	w.Observe(4)
	w.Observe(6)
	if w.Count() != 1 || w.Mean() != 6 {
		t.Fatalf("size-0 window should clamp to 1, got count=%d mean=%v", w.Count(), w.Mean())
	}
}
