package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0)
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be zero")
	}
}

func TestHistogramBasicStats(t *testing.T) {
	h := NewHistogram(0)
	for _, v := range []float64{1, 2, 3, 4, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if h.Mean() != 3 {
		t.Fatalf("Mean = %v, want 3", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v, want 1/5", h.Min(), h.Max())
	}
	if got := h.Quantile(0.5); got != 3 {
		t.Fatalf("p50 = %v, want 3", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("p0 = %v, want 1", got)
	}
	if got := h.Quantile(1); got != 5 {
		t.Fatalf("p100 = %v, want 5", got)
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	h := NewHistogram(0)
	h.Observe(0)
	h.Observe(10)
	if got := h.Quantile(0.5); got != 5 {
		t.Fatalf("p50 = %v, want 5 (interpolated)", got)
	}
	if got := h.Quantile(0.25); got != 2.5 {
		t.Fatalf("p25 = %v, want 2.5", got)
	}
}

func TestHistogramDuration(t *testing.T) {
	h := NewHistogram(0)
	h.ObserveDuration(100 * time.Millisecond)
	h.ObserveDuration(300 * time.Millisecond)
	got := h.QuantileDuration(1)
	if got != 300*time.Millisecond {
		t.Fatalf("QuantileDuration(1) = %v, want 300ms", got)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(0)
	h.Observe(42)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("Reset did not clear histogram")
	}
	h.Observe(1)
	if h.Mean() != 1 {
		t.Fatalf("Mean after reset = %v, want 1", h.Mean())
	}
}

func TestHistogramReservoirKeepsDistribution(t *testing.T) {
	h := NewHistogram(1000)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100000; i++ {
		h.Observe(rng.Float64() * 100)
	}
	if h.Count() != 100000 {
		t.Fatalf("Count = %d, want 100000", h.Count())
	}
	p50 := h.Quantile(0.5)
	if p50 < 40 || p50 > 60 {
		t.Fatalf("p50 of uniform(0,100) = %v, want roughly 50", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 90 {
		t.Fatalf("p99 of uniform(0,100) = %v, want > 90", p99)
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		h := NewHistogram(0)
		n := 10 + local.Intn(500)
		for i := 0; i < n; i++ {
			h.Observe(local.NormFloat64() * 100)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return h.Quantile(0) >= h.Min()-1e-9 && h.Quantile(1) <= h.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Fatalf("quantile monotonicity property failed: %v", err)
	}
}

func TestSnapshotString(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if s.Count != 100 || s.P50 < 49 || s.P50 > 52 {
		t.Fatalf("unexpected snapshot %+v", s)
	}
	if s.String() == "" {
		t.Fatal("Snapshot.String() is empty")
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Initialized() {
		t.Fatal("new EWMA should not be initialized")
	}
	if got := e.Update(10); got != 10 {
		t.Fatalf("first update = %v, want 10", got)
	}
	if got := e.Update(20); got != 15 {
		t.Fatalf("second update = %v, want 15", got)
	}
	if e.Value() != 15 {
		t.Fatalf("Value = %v, want 15", e.Value())
	}
	e.Reset()
	if e.Initialized() || e.Value() != 0 {
		t.Fatal("Reset did not clear EWMA")
	}
}

func TestEWMAClampsAlpha(t *testing.T) {
	for _, alpha := range []float64{-1, 0, 2} {
		e := NewEWMA(alpha)
		e.Update(1)
		e.Update(2)
		v := e.Value()
		if math.IsNaN(v) || v < 1 || v > 2 {
			t.Fatalf("alpha=%v produced out-of-range value %v", alpha, v)
		}
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(0.2)
	for i := 0; i < 200; i++ {
		e.Update(7)
	}
	if math.Abs(e.Value()-7) > 1e-9 {
		t.Fatalf("EWMA of constant stream = %v, want 7", e.Value())
	}
}

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Counter = %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("Counter reset failed")
	}
	var g Gauge
	g.Set(3.5)
	if g.Value() != 3.5 {
		t.Fatalf("Gauge = %v, want 3.5", g.Value())
	}
}

func TestMeanVariance(t *testing.T) {
	var m MeanVariance
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Update(v)
	}
	if m.Count() != 8 {
		t.Fatalf("Count = %d, want 8", m.Count())
	}
	if math.Abs(m.Mean()-5) > 1e-9 {
		t.Fatalf("Mean = %v, want 5", m.Mean())
	}
	if math.Abs(m.Variance()-32.0/7.0) > 1e-9 {
		t.Fatalf("Variance = %v, want %v", m.Variance(), 32.0/7.0)
	}
	if m.StdDev() <= 0 {
		t.Fatal("StdDev should be positive")
	}
	var single MeanVariance
	single.Update(1)
	if single.Variance() != 0 {
		t.Fatal("variance of one sample should be 0")
	}
}
