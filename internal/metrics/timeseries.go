package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Point is a single (virtual time, value) observation.
type Point struct {
	At    time.Duration
	Value float64
}

// TimeSeries stores timestamped observations in arrival order. Experiments
// use it to record how metrics such as the inconsistency window, cluster
// size or cost evolve over a run, and to render figure-like series output.
type TimeSeries struct {
	name   string
	points []Point
}

// NewTimeSeries creates an empty named series.
func NewTimeSeries(name string) *TimeSeries {
	return &TimeSeries{name: name}
}

// Name returns the series name.
func (ts *TimeSeries) Name() string { return ts.name }

// Append records a point. Points are expected in non-decreasing time order;
// out-of-order points are accepted but sorted lazily on query.
func (ts *TimeSeries) Append(at time.Duration, value float64) {
	ts.points = append(ts.points, Point{At: at, Value: value})
}

// Len returns the number of points.
func (ts *TimeSeries) Len() int { return len(ts.points) }

// Points returns a copy of the stored points sorted by time.
func (ts *TimeSeries) Points() []Point {
	out := make([]Point, len(ts.points))
	copy(out, ts.points)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Last returns the most recently appended point and whether one exists.
func (ts *TimeSeries) Last() (Point, bool) {
	if len(ts.points) == 0 {
		return Point{}, false
	}
	return ts.points[len(ts.points)-1], true
}

// Mean returns the mean of all values (zero when empty).
func (ts *TimeSeries) Mean() float64 {
	if len(ts.points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range ts.points {
		sum += p.Value
	}
	return sum / float64(len(ts.points))
}

// Max returns the maximum value (zero when empty).
func (ts *TimeSeries) Max() float64 {
	max := 0.0
	for i, p := range ts.points {
		if i == 0 || p.Value > max {
			max = p.Value
		}
	}
	return max
}

// Between returns the points with At in [from, to).
func (ts *TimeSeries) Between(from, to time.Duration) []Point {
	var out []Point
	for _, p := range ts.Points() {
		if p.At >= from && p.At < to {
			out = append(out, p)
		}
	}
	return out
}

// Resample aggregates the series into fixed buckets of the given width,
// averaging the values inside each bucket. Empty buckets carry the previous
// bucket's value forward (or zero at the start). The result always covers
// [0, horizon).
func (ts *TimeSeries) Resample(bucket, horizon time.Duration) []Point {
	if bucket <= 0 || horizon <= 0 {
		return nil
	}
	n := int(horizon / bucket)
	if n == 0 {
		n = 1
	}
	sums := make([]float64, n)
	counts := make([]int, n)
	for _, p := range ts.points {
		idx := int(p.At / bucket)
		if idx < 0 || idx >= n {
			continue
		}
		sums[idx] += p.Value
		counts[idx]++
	}
	out := make([]Point, n)
	prev := 0.0
	for i := 0; i < n; i++ {
		v := prev
		if counts[i] > 0 {
			v = sums[i] / float64(counts[i])
		}
		out[i] = Point{At: time.Duration(i) * bucket, Value: v}
		prev = v
	}
	return out
}

// ASCIIPlot renders a crude fixed-width plot of the series, useful for
// figure-like output from the benchmark harness and examples.
func (ts *TimeSeries) ASCIIPlot(bucket, horizon time.Duration, width int) string {
	pts := ts.Resample(bucket, horizon)
	if len(pts) == 0 {
		return "(empty series)"
	}
	if width <= 0 {
		width = 50
	}
	max := 0.0
	for _, p := range pts {
		if p.Value > max {
			max = p.Value
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (max=%.4g)\n", ts.name, max)
	for _, p := range pts {
		bars := 0
		if max > 0 {
			bars = int(p.Value / max * float64(width))
		}
		fmt.Fprintf(&b, "%8s |%s %.4g\n", p.At.Truncate(time.Second), strings.Repeat("#", bars), p.Value)
	}
	return b.String()
}

// WindowedStat maintains summary statistics over a sliding window of the
// last N samples. Controllers use it to look at recent behaviour only.
type WindowedStat struct {
	size   int
	buf    []float64
	next   int
	filled bool
	// scratch is the reusable sort buffer for quantile queries, which run
	// several times per sampling interval over windows of thousands of
	// samples.
	scratch []float64
}

// NewWindowedStat creates a sliding window over the last size samples.
func NewWindowedStat(size int) *WindowedStat {
	if size <= 0 {
		size = 1
	}
	return &WindowedStat{size: size, buf: make([]float64, size)}
}

// Observe records a sample, evicting the oldest when full.
func (w *WindowedStat) Observe(v float64) {
	w.buf[w.next] = v
	w.next++
	if w.next == w.size {
		w.next = 0
		w.filled = true
	}
}

// Count returns the number of samples currently in the window.
func (w *WindowedStat) Count() int {
	if w.filled {
		return w.size
	}
	return w.next
}

func (w *WindowedStat) values() []float64 {
	if w.filled {
		return w.buf
	}
	return w.buf[:w.next]
}

// Mean returns the mean of the samples in the window.
func (w *WindowedStat) Mean() float64 {
	vs := w.values()
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// Max returns the maximum sample in the window.
func (w *WindowedStat) Max() float64 {
	vs := w.values()
	max := 0.0
	for i, v := range vs {
		if i == 0 || v > max {
			max = v
		}
	}
	return max
}

// Quantile returns the q-quantile of the window contents.
func (w *WindowedStat) Quantile(q float64) float64 {
	cp := w.sortedScratch()
	if len(cp) == 0 {
		return 0
	}
	return quantileOfSorted(cp, q)
}

// Quantiles appends the qs[i]-quantiles of the window contents to dst and
// returns the extended slice, one result per requested quantile in order.
// The window is copied and sorted exactly once, so a sampler that reads
// several quantiles per report interval (p50/p95/p99) pays one O(n log n)
// sort instead of one per quantile. Callers on a hot path pass a reused
// buffer (sliced to [:0]) with capacity len(qs) to stay allocation-free.
func (w *WindowedStat) Quantiles(qs []float64, dst []float64) []float64 {
	cp := w.sortedScratch()
	for _, q := range qs {
		if len(cp) == 0 {
			dst = append(dst, 0)
			continue
		}
		dst = append(dst, quantileOfSorted(cp, q))
	}
	return dst
}

// sortedScratch copies the window contents into the reusable scratch buffer
// and sorts it. The result is valid until the next Observe or quantile query.
func (w *WindowedStat) sortedScratch() []float64 {
	vs := w.values()
	cp := append(w.scratch[:0], vs...)
	w.scratch = cp
	sort.Float64s(cp)
	return cp
}

// quantileOfSorted interpolates the q-quantile over an already sorted,
// non-empty sample slice. It is the single implementation behind Quantile and
// Quantiles, so batched and one-shot queries agree bit for bit.
func quantileOfSorted(cp []float64, q float64) float64 {
	if q <= 0 {
		return cp[0]
	}
	if q >= 1 {
		return cp[len(cp)-1]
	}
	pos := q * float64(len(cp)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(cp) {
		return cp[lo]
	}
	return cp[lo]*(1-frac) + cp[lo+1]*frac
}

// Trend returns a least-squares slope over the window contents interpreted
// as equally spaced samples: positive when the metric is rising. The
// controller's predictor uses it for simple load forecasting.
func (w *WindowedStat) Trend() float64 {
	vs := w.values()
	n := float64(len(vs))
	if n < 2 {
		return 0
	}
	var sumX, sumY, sumXY, sumXX float64
	for i, v := range vs {
		x := float64(i)
		sumX += x
		sumY += v
		sumXY += x * v
		sumXX += x * x
	}
	denom := n*sumXX - sumX*sumX
	if denom == 0 {
		return 0
	}
	return (n*sumXY - sumX*sumY) / denom
}
