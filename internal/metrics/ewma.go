package metrics

import "math"

// EWMA is an exponentially weighted moving average. Monitors use it to
// smooth inconsistency-window and latency estimates before handing them to
// the controller, so that single outliers do not trigger reconfiguration.
type EWMA struct {
	alpha       float64
	value       float64
	initialized bool
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1]. Larger
// alpha weights recent samples more heavily. Out-of-range alphas are clamped.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 {
		alpha = 0.01
	}
	if alpha > 1 {
		alpha = 1
	}
	return &EWMA{alpha: alpha}
}

// Update folds a new sample into the average and returns the new value.
func (e *EWMA) Update(sample float64) float64 {
	if !e.initialized {
		e.value = sample
		e.initialized = true
		return e.value
	}
	e.value = e.alpha*sample + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current average (zero before the first sample).
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether at least one sample has been observed.
func (e *EWMA) Initialized() bool { return e.initialized }

// Reset clears the average.
func (e *EWMA) Reset() {
	e.value = 0
	e.initialized = false
}

// Counter is a monotonically increasing event counter.
type Counter struct {
	n uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n++ }

// Add adds delta to the counter.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Gauge holds a single instantaneous value.
type Gauge struct {
	v float64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.v = v }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return g.v }

// MeanVariance accumulates mean and variance online (Welford's algorithm).
// The controller's knowledge base uses it to track the observed effect of
// reconfiguration actions.
type MeanVariance struct {
	n    uint64
	mean float64
	m2   float64
}

// Update folds in a new sample.
func (m *MeanVariance) Update(x float64) {
	m.n++
	delta := x - m.mean
	m.mean += delta / float64(m.n)
	m.m2 += delta * (x - m.mean)
}

// Count returns the number of samples.
func (m *MeanVariance) Count() uint64 { return m.n }

// Mean returns the running mean.
func (m *MeanVariance) Mean() float64 { return m.mean }

// Variance returns the sample variance (zero for fewer than two samples).
func (m *MeanVariance) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// StdDev returns the sample standard deviation.
func (m *MeanVariance) StdDev() float64 { return math.Sqrt(m.Variance()) }
