// Package metrics provides the small measurement primitives the simulator
// and controllers share: a streaming Histogram with quantile estimation (the
// backbone of every latency and inconsistency-window percentile in the
// reports), an exponentially weighted moving average, counters, gauges,
// running mean/variance, and a TimeSeries of timestamped observations used
// to record how metrics evolve over a run and to render the figure-like
// ASCII series output.
package metrics
