package metrics

import (
	"testing"
	"time"
)

// BenchmarkHistogramObserve measures the per-sample recording cost on the
// store's latency/window path, including reservoir replacement once full.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 0.001)
	}
}

// BenchmarkHistogramObserveDuration measures the duration-typed entry point
// used by the store for every completed operation.
func BenchmarkHistogramObserveDuration(b *testing.B) {
	h := NewHistogram(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ObserveDuration(time.Duration(i%1000) * time.Microsecond)
	}
}

// BenchmarkHistogramSnapshot measures the controller-facing aggregation: one
// sort amortised over three quantile queries.
func BenchmarkHistogramSnapshot(b *testing.B) {
	h := NewHistogram(4096)
	for i := 0; i < 8192; i++ {
		h.Observe(float64(i%997) * 0.001)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i) * 0.0001) // dirty the sort between snapshots
		_ = h.Snapshot()
	}
}

// BenchmarkWindowedObserve measures the monitor's sliding-window recording.
func BenchmarkWindowedObserve(b *testing.B) {
	w := NewWindowedStat(2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Observe(float64(i % 1000))
	}
}

// BenchmarkWindowedQuantile measures the quantile query the sampler and the
// controller issue several times per control interval.
func BenchmarkWindowedQuantile(b *testing.B) {
	w := NewWindowedStat(2048)
	for i := 0; i < 4096; i++ {
		w.Observe(float64(i % 997))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Observe(float64(i % 997))
		_ = w.Quantile(0.95)
	}
}

// BenchmarkWindowedQuantilesBatch measures the batched three-quantile query
// the monitor issues on every snapshot: one sort amortised over p50/p95/p99
// instead of one sort per quantile.
func BenchmarkWindowedQuantilesBatch(b *testing.B) {
	w := NewWindowedStat(2048)
	for i := 0; i < 4096; i++ {
		w.Observe(float64(i % 997))
	}
	qs := []float64{0.50, 0.95, 0.99}
	var buf [3]float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Observe(float64(i % 997))
		_ = w.Quantiles(qs, buf[:0])
	}
}

// BenchmarkWindowedQuantilesSeparate is the pre-batching baseline for
// comparison: the same three quantiles as three independent queries, each
// paying its own copy and sort.
func BenchmarkWindowedQuantilesSeparate(b *testing.B) {
	w := NewWindowedStat(2048)
	for i := 0; i < 4096; i++ {
		w.Observe(float64(i % 997))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Observe(float64(i % 997))
		_ = w.Quantile(0.50)
		_ = w.Quantile(0.95)
		_ = w.Quantile(0.99)
	}
}

// BenchmarkTimeSeriesAppend measures the sampler's per-tick series append.
func BenchmarkTimeSeriesAppend(b *testing.B) {
	ts := NewTimeSeries("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts.Append(time.Duration(i)*time.Millisecond, float64(i))
	}
}
