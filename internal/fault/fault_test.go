package fault

import (
	"math"
	"testing"
	"time"

	"autonosql/internal/cluster"
	"autonosql/internal/sim"
)

type rig struct {
	engine  *sim.Engine
	cluster *cluster.Cluster
	inj     *Injector
}

func newRig(t *testing.T, nodes int, seed int64) *rig {
	t.Helper()
	engine := sim.NewEngine()
	src := sim.NewRandSource(seed)
	cfg := cluster.DefaultConfig()
	cfg.InitialNodes = nodes
	cl := cluster.New(cfg, engine, src)
	inj, err := NewInjector(engine, cl, src.Stream("fault"), 10*time.Minute)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	return &rig{engine: engine, cluster: cl, inj: inj}
}

func TestInjectorValidation(t *testing.T) {
	engine := sim.NewEngine()
	src := sim.NewRandSource(1)
	cl := cluster.New(cluster.DefaultConfig(), engine, src)
	if _, err := NewInjector(nil, cl, src.Stream("fault"), time.Minute); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := NewInjector(engine, nil, src.Stream("fault"), time.Minute); err == nil {
		t.Error("nil cluster accepted")
	}
	if _, err := NewInjector(engine, cl, nil, time.Minute); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := NewInjector(engine, cl, src.Stream("fault"), 0); err == nil {
		t.Error("zero run duration accepted")
	}
	inj, err := NewInjector(engine, cl, src.Stream("fault"), time.Minute)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	if err := inj.Schedule(Plan{Events: []Event{{Kind: KindCrash, At: -time.Second}}}); err == nil {
		t.Error("negative strike time accepted")
	}
	if err := inj.Schedule(Plan{Events: []Event{{Kind: KindCrash, At: time.Second, Duration: -time.Second}}}); err == nil {
		t.Error("negative duration accepted")
	}
}

func TestCrashAndRestart(t *testing.T) {
	r := newRig(t, 3, 7)
	plan := Plan{Events: []Event{{Kind: KindCrash, At: 10 * time.Second, Duration: 20 * time.Second, Nodes: 1}}}
	if err := r.inj.Schedule(plan); err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := r.engine.Run(15 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := r.cluster.Size(); got != 2 {
		t.Fatalf("cluster size during crash = %d, want 2", got)
	}
	if err := r.engine.Run(40 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := r.cluster.Size(); got != 3 {
		t.Fatalf("cluster size after restart = %d, want 3", got)
	}
	tl := r.inj.Timeline()
	if len(tl) != 1 || tl[0].Kind != KindCrash || len(tl[0].Nodes) != 1 {
		t.Fatalf("timeline = %v, want one single-node crash window", tl)
	}
	if tl[0].Start != 10*time.Second || tl[0].End != 30*time.Second {
		t.Fatalf("crash window = %v..%v, want 10s..30s", tl[0].Start, tl[0].End)
	}
}

func TestPartitionIsolatesAndHeals(t *testing.T) {
	r := newRig(t, 4, 9)
	plan := Plan{Events: []Event{{Kind: KindPartition, At: 5 * time.Second, Duration: 10 * time.Second, Nodes: 2}}}
	if err := r.inj.Schedule(plan); err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := r.engine.Run(6 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	net := r.cluster.Network()
	if !net.PartitionActive() {
		t.Fatal("partition not active after strike")
	}
	tl := r.inj.Timeline()
	if len(tl) != 1 || len(tl[0].Nodes) != 2 {
		t.Fatalf("timeline = %v, want one two-node partition", tl)
	}
	iso, majority := tl[0].Nodes[0], cluster.NodeID(0)
	for _, n := range r.cluster.AvailableNodes() {
		if !net.Isolated(n.ID()) {
			majority = n.ID()
			break
		}
	}
	if majority == 0 {
		t.Fatal("no majority-side node found")
	}
	if net.Reachable(iso, majority) {
		t.Fatal("isolated node reachable across the cut")
	}
	if !net.Reachable(tl[0].Nodes[0], tl[0].Nodes[1]) {
		t.Fatal("nodes on the same side of the cut not mutually reachable")
	}
	// All nodes stay available to clients: partition is a network condition.
	if got := r.cluster.Size(); got != 4 {
		t.Fatalf("cluster size during partition = %d, want 4", got)
	}
	if err := r.engine.Run(20 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if net.PartitionActive() {
		t.Fatal("partition still active after heal")
	}
	if !net.Reachable(iso, majority) {
		t.Fatal("nodes not reachable after heal")
	}
}

func TestSlowNodeAndStorm(t *testing.T) {
	r := newRig(t, 3, 11)
	plan := Plan{Events: []Event{
		{Kind: KindSlow, At: time.Second, Duration: 5 * time.Second, Nodes: 1, Severity: 0.5},
		{Kind: KindStorm, At: 2 * time.Second, Duration: 4 * time.Second, Severity: 0.8},
	}}
	if err := r.inj.Schedule(plan); err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := r.engine.Run(3 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	slowed := 0
	for _, n := range r.cluster.AvailableNodes() {
		if n.FaultLoad() == 0.5 {
			slowed++
		}
	}
	if slowed != 1 {
		t.Fatalf("%d nodes slowed, want 1", slowed)
	}
	if got := r.cluster.Network().FaultCongestion(); got != 0.8 {
		t.Fatalf("storm congestion = %v, want 0.8", got)
	}
	if err := r.engine.Run(10 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, n := range r.cluster.AvailableNodes() {
		if n.FaultLoad() != 0 {
			t.Fatalf("fault load %v persists after the fault ended", n.FaultLoad())
		}
	}
	if got := r.cluster.Network().FaultCongestion(); got != 0 {
		t.Fatalf("storm congestion %v persists after the storm ended", got)
	}
	if len(r.inj.Timeline()) != 2 {
		t.Fatalf("timeline has %d windows, want 2", len(r.inj.Timeline()))
	}
}

// TestOverflowDurationHoldsToRunEnd pins that an absurd-but-valid duration
// (now + Duration overflowing int64) neither panics the engine nor schedules
// a bogus undo: the fault simply holds for the rest of the run.
func TestOverflowDurationHoldsToRunEnd(t *testing.T) {
	r := newRig(t, 3, 19)
	plan := Plan{Events: []Event{
		{Kind: KindCrash, At: time.Second, Duration: time.Duration(math.MaxInt64), Nodes: 1},
	}}
	if err := r.inj.Schedule(plan); err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := r.engine.Run(5 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := r.cluster.Size(); got != 2 {
		t.Fatalf("cluster size = %d, want the crash to hold", got)
	}
	tl := r.inj.Timeline()
	if len(tl) != 1 || tl[0].End != 10*time.Minute {
		t.Fatalf("timeline = %v, want one window ending at the run end", tl)
	}
}

// TestNeverKillsLastNode pins the survival guarantee: however many nodes a
// crash or partition asks for, at least one node is left untouched.
func TestNeverKillsLastNode(t *testing.T) {
	r := newRig(t, 3, 13)
	plan := Plan{Events: []Event{{Kind: KindCrash, At: time.Second, Nodes: 99}}}
	if err := r.inj.Schedule(plan); err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := r.engine.Run(5 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := r.cluster.Size(); got != 1 {
		t.Fatalf("cluster size = %d, want exactly one survivor", got)
	}
}

// TestComposedPartitionsLeaveConnectedSurvivor pins that victim selection
// excludes already-isolated nodes: however many partition (or crash) events
// a plan composes, at least one connected serving node remains, so the
// cluster never degrades into a silent all-isolated repair freeze.
func TestComposedPartitionsLeaveConnectedSurvivor(t *testing.T) {
	r := newRig(t, 4, 17)
	plan := Plan{Events: []Event{
		{Kind: KindPartition, At: 10 * time.Second, Duration: 2 * time.Minute, Nodes: 2},
		{Kind: KindPartition, At: 20 * time.Second, Duration: 2 * time.Minute, Nodes: 2},
		{Kind: KindCrash, At: 30 * time.Second, Duration: time.Minute, Nodes: 4},
	}}
	if err := r.inj.Schedule(plan); err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := r.engine.Run(40 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	net := r.cluster.Network()
	connected := 0
	for _, n := range r.cluster.AvailableNodes() {
		if !net.Isolated(n.ID()) {
			connected++
		}
	}
	if connected == 0 {
		t.Fatal("composed faults left no connected serving node")
	}
}

// TestDeterministicTargetSelection pins that the same seed picks the same
// victims.
func TestDeterministicTargetSelection(t *testing.T) {
	pick := func() []cluster.NodeID {
		r := newRig(t, 8, 21)
		plan := Plan{Events: []Event{{Kind: KindCrash, At: time.Second, Duration: time.Second, Nodes: 3}}}
		if err := r.inj.Schedule(plan); err != nil {
			t.Fatalf("Schedule: %v", err)
		}
		if err := r.engine.Run(2 * time.Second); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return r.inj.Timeline()[0].Nodes
	}
	a, b := pick(), pick()
	if len(a) != 3 {
		t.Fatalf("picked %d nodes, want 3", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("target selection not deterministic: %v vs %v", a, b)
		}
	}
}
