package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"autonosql/internal/cluster"
	"autonosql/internal/sim"
)

// Kind identifies a class of injected fault.
type Kind uint8

// Fault kinds.
const (
	// KindCrash fails one or more nodes; they recover after the event's
	// duration (or stay down for the rest of the run when it is zero).
	KindCrash Kind = iota + 1
	// KindSlow degrades the capacity of one or more nodes by the event's
	// severity fraction — the straggler/degraded-disk condition.
	KindSlow
	// KindPartition isolates a group of nodes from the rest of the cluster;
	// the partition heals after the event's duration.
	KindPartition
	// KindStorm raises network congestion by the event's severity for the
	// event's duration — a latency storm.
	KindStorm
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCrash:
		return "crash"
	case KindSlow:
		return "slow"
	case KindPartition:
		return "partition"
	case KindStorm:
		return "storm"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one planned fault: what happens, when it starts, how long it
// lasts, how many nodes it touches and how severe it is.
type Event struct {
	Kind Kind
	// At is the virtual time the fault strikes.
	At time.Duration
	// Duration is how long the fault lasts before the injector undoes it
	// (restart, speed recovery, heal, storm end). Zero means the fault holds
	// for the remainder of the run.
	Duration time.Duration
	// Nodes is how many nodes the fault touches (crash, slow, partition
	// minority size). Zero defaults to one.
	Nodes int
	// Severity is the fault intensity in [0, 1]: capacity fraction lost for
	// slow nodes, congestion level for storms. Crash and partition ignore it.
	Severity float64
}

// Plan is an ordered set of fault events injected over one run.
type Plan struct {
	Events []Event
}

// Window records one fault as actually injected: the planned interval, the
// concrete nodes chosen at strike time and the severity applied.
type Window struct {
	Kind  Kind
	Start time.Duration
	// End is the planned end of the fault; for zero-duration (permanent)
	// events it is the run duration.
	End time.Duration
	// Nodes are the node IDs the fault touched (empty for storms).
	Nodes    []cluster.NodeID
	Severity float64
}

// String renders the window compactly, e.g. "crash[node-2] 30s..90s".
func (w Window) String() string {
	s := fmt.Sprintf("%s%v %v..%v", w.Kind, w.Nodes, w.Start, w.End)
	if w.Severity > 0 {
		s += fmt.Sprintf(" sev=%.2f", w.Severity)
	}
	return s
}

// Injector schedules a Plan's events on the simulation engine and records
// the timeline of what was actually injected.
type Injector struct {
	engine      *sim.Engine
	cluster     *cluster.Cluster
	rng         *rand.Rand
	runDuration time.Duration

	timeline []Window
	// stormLevel is the sum of the severities of currently active latency
	// storms; tracking it here lets overlapping storms compose additively
	// instead of the end of one resetting the others.
	stormLevel float64
	// slowLoad is the per-node sum of active slow-fault severities, for the
	// same reason.
	slowLoad map[cluster.NodeID]float64
	// crashHold counts, per node, the crash faults currently holding it
	// down, so the undo of an earlier crash never revives a node a later,
	// still-active crash fault owns.
	crashHold map[cluster.NodeID]int
}

// NewInjector creates an injector bound to a cluster and engine. rng must be
// a dedicated stream (conventionally "fault") so injection choices never
// perturb the other random streams of the scenario.
func NewInjector(engine *sim.Engine, cl *cluster.Cluster, rng *rand.Rand, runDuration time.Duration) (*Injector, error) {
	if engine == nil || cl == nil || rng == nil {
		return nil, errors.New("fault: engine, cluster and rand stream are required")
	}
	if runDuration <= 0 {
		return nil, errors.New("fault: run duration must be positive")
	}
	return &Injector{engine: engine, cluster: cl, rng: rng, runDuration: runDuration}, nil
}

// Schedule registers every event of the plan on the engine. Events whose
// strike time lies beyond the run duration are scheduled anyway and simply
// never fire. Schedule may be called once per plan before the engine runs.
func (in *Injector) Schedule(plan Plan) error {
	for i, ev := range plan.Events {
		ev := ev
		if ev.At < 0 {
			return fmt.Errorf("fault: event %d strikes at negative time %v", i, ev.At)
		}
		if ev.Duration < 0 {
			return fmt.Errorf("fault: event %d has negative duration %v", i, ev.Duration)
		}
		if _, err := in.engine.ScheduleAt(ev.At, func(now time.Duration) { in.strike(ev, now) }); err != nil {
			return fmt.Errorf("fault: scheduling event %d: %w", i, err)
		}
	}
	return nil
}

// Timeline returns the windows of every fault injected so far, in strike
// order.
func (in *Injector) Timeline() []Window {
	out := make([]Window, len(in.timeline))
	copy(out, in.timeline)
	return out
}

// strike fires one fault event at its planned time.
func (in *Injector) strike(ev Event, now time.Duration) {
	// A fault whose planned end lies at or beyond the run end (including a
	// now+Duration overflow for absurd-but-valid durations) simply holds for
	// the rest of the run: no undo is scheduled, same as Duration == 0.
	end := in.runDuration
	undo := false
	if ev.Duration > 0 {
		if e := now + ev.Duration; e > now && e < in.runDuration {
			end = e
			undo = true
		}
	}
	w := Window{Kind: ev.Kind, Start: now, End: end, Severity: ev.Severity}

	switch ev.Kind {
	case KindCrash:
		targets := in.pickNodes(ev.nodeCount())
		if len(targets) == 0 {
			// No eligible victim (a lone surviving node is never touched):
			// the fault did not strike, so it does not enter the timeline.
			return
		}
		w.Nodes = targets
		w.Severity = 0
		in.failNodes(targets)
		if undo {
			in.engine.AfterAt(end, func(time.Duration) {
				in.recoverNodes(targets)
			})
		}

	case KindSlow:
		targets := in.pickNodes(ev.nodeCount())
		if len(targets) == 0 {
			return
		}
		w.Nodes = targets
		in.addSlowLoad(targets, ev.Severity)
		if undo {
			in.engine.AfterAt(end, func(time.Duration) {
				in.addSlowLoad(targets, -ev.Severity)
			})
		}

	case KindPartition:
		targets := in.pickNodes(ev.nodeCount())
		if len(targets) == 0 {
			return
		}
		w.Nodes = targets
		w.Severity = 0
		net := in.cluster.Network()
		net.Isolate(targets)
		if undo {
			in.engine.AfterAt(end, func(time.Duration) {
				net.Heal(targets)
			})
		}

	case KindStorm:
		in.addStorm(ev.Severity)
		if undo {
			in.engine.AfterAt(end, func(time.Duration) {
				in.addStorm(-ev.Severity)
			})
		}

	default:
		return
	}
	in.timeline = append(in.timeline, w)
}

// failNodes crashes the targets, counting how many crash faults hold each
// one down. A node may have been decommissioned since selection began; a
// vanished target is simply a no-op crash.
func (in *Injector) failNodes(ids []cluster.NodeID) {
	if in.crashHold == nil {
		in.crashHold = make(map[cluster.NodeID]int)
	}
	for _, id := range ids {
		in.crashHold[id]++
		_ = in.cluster.FailNode(id)
	}
}

// recoverNodes releases one crash hold per target and restarts nodes whose
// last hold drained. A node still held by a later, overlapping crash fault
// stays down; recovery of a node that is up (repaired mid-fault by an
// intervention) or removed is a no-op.
func (in *Injector) recoverNodes(ids []cluster.NodeID) {
	for _, id := range ids {
		if c := in.crashHold[id]; c > 1 {
			in.crashHold[id] = c - 1
			continue
		}
		delete(in.crashHold, id)
		_ = in.cluster.RecoverNode(id)
	}
}

// addStorm adjusts the summed severity of active storms and pushes the new
// level (clamped by the network) so overlapping storms compose instead of
// clobbering each other.
func (in *Injector) addStorm(delta float64) {
	in.stormLevel += delta
	if in.stormLevel < 0 {
		in.stormLevel = 0
	}
	in.cluster.Network().SetFaultCongestion(in.stormLevel)
}

// addSlowLoad adjusts each target's summed slow-fault severity, so two slow
// faults overlapping on one node degrade it by their sum and the end of one
// leaves the other in force.
func (in *Injector) addSlowLoad(ids []cluster.NodeID, delta float64) {
	if in.slowLoad == nil {
		in.slowLoad = make(map[cluster.NodeID]float64)
	}
	for _, id := range ids {
		load := in.slowLoad[id] + delta
		if load <= 0 {
			load = 0
			delete(in.slowLoad, id)
		} else {
			in.slowLoad[id] = load
		}
		if node, ok := in.cluster.Node(id); ok {
			node.SetFaultLoad(load)
		}
	}
}

func (ev Event) nodeCount() int {
	if ev.Nodes <= 0 {
		return 1
	}
	return ev.Nodes
}

// pickNodes chooses n distinct victims uniformly at random from the
// injector's dedicated stream. Eligible victims are the *connected* serving
// nodes — up or draining AND not already behind a partition — so composed
// fault plans cannot isolate or kill every reachable node: whatever the
// plan, at least one connected serving node survives every selection.
// AvailableNodes is ordered by ID, so the choice depends only on the stream
// state and the (deterministic) cluster state — never on map iteration
// order.
func (in *Injector) pickNodes(n int) []cluster.NodeID {
	avail := in.cluster.AvailableNodes()
	if net := in.cluster.Network(); net.PartitionActive() {
		connected := make([]*cluster.Node, 0, len(avail))
		for _, node := range avail {
			if !net.Isolated(node.ID()) {
				connected = append(connected, node)
			}
		}
		avail = connected
	}
	if len(avail) <= 1 {
		// Never touch the last connected surviving node.
		return nil
	}
	if limit := len(avail) - 1; n > limit {
		n = limit
	}
	// Partial Fisher–Yates over the index space.
	idx := make([]int, len(avail))
	for i := range idx {
		idx[i] = i
	}
	out := make([]cluster.NodeID, 0, n)
	for i := 0; i < n; i++ {
		j := i + in.rng.Intn(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
		out = append(out, avail[idx[i]].ID())
	}
	return out
}
