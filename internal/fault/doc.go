// Package fault is the fault-injection engine of the simulator. It turns a
// declarative plan of fault events — node crashes and restarts, slow nodes
// (capacity degradation), network partitions with later heals, and latency
// storms — into scheduled interventions on the simulation event loop, driving
// the hooks the cluster and network models already expose
// (Cluster.FailNode/RecoverNode, Node.SetFaultLoad, Network.Isolate/Heal,
// Network.SetFaultCongestion).
//
// The paper's central observation is that the inconsistency window depends on
// dynamic conditions: the load on the database and on the platform it runs
// on. Real deployments add a third dynamic dimension — degraded
// infrastructure. Grid-deployment experience reports show node loss and
// degraded links dominating operations; this package makes those conditions
// reproducible, so the autonomous controller can be evaluated under exactly
// the circumstances where SLA-driven reconfiguration matters most.
//
// Determinism: every choice the injector makes (which nodes to crash, which
// group to isolate) is drawn from a dedicated named random stream, and every
// action fires at a planned virtual time on the engine. The same seed and
// plan therefore produce bit-for-bit identical fault schedules, which is what
// lets fault scenarios participate in the golden-report determinism tests.
package fault
