// Package baseline implements the two alternatives the paper's autonomous
// system is motivated against:
//
//   - StaticController: a fixed configuration chosen once at deployment
//     time. Over-strict static configurations over-allocate resources; loose
//     ones let the inconsistency window drift past what the application can
//     tolerate.
//   - ReactiveAutoscaler: the classic cloud autoscaler that watches CPU
//     utilisation only. It is completely blind to the inconsistency window,
//     so it neither reacts to consistency drift under moderate CPU load nor
//     anticipates load it has not seen yet.
//
// Both satisfy the same stepping contract as the smart controller
// (core.Controller), so experiment harnesses can swap controllers without
// changing anything else.
package baseline

import (
	"errors"
	"time"

	"autonosql/internal/core"
	"autonosql/internal/monitor"
	"autonosql/internal/sim"
)

// Stepper is the common contract experiment harnesses drive controllers
// through: one control step per monitoring snapshot. core.Controller,
// StaticController and ReactiveAutoscaler all satisfy it.
type Stepper interface {
	Step(snap monitor.Snapshot) core.Decision
	Reconfigurations() int
}

var (
	_ Stepper = (*core.Controller)(nil)
	_ Stepper = (*StaticController)(nil)
	_ Stepper = (*ReactiveAutoscaler)(nil)
)

// StaticController never reconfigures anything. It exists so that static
// provisioning participates in experiments through exactly the same code
// path as the other controllers.
type StaticController struct {
	decisions int
}

// NewStaticController creates a do-nothing controller.
func NewStaticController() *StaticController { return &StaticController{} }

// Step implements Stepper: it observes and does nothing.
func (s *StaticController) Step(snap monitor.Snapshot) core.Decision {
	s.decisions++
	return core.Decision{
		At:                snap.At,
		Action:            core.Action{Kind: core.ActionNone, Reason: "static configuration"},
		ClusterSize:       snap.ClusterSize,
		ReplicationFactor: snap.ReplicationFactor,
		ReadConsistency:   snap.ReadConsistency,
		WriteConsistency:  snap.WriteConsistency,
	}
}

// Reconfigurations implements Stepper; it is always zero.
func (s *StaticController) Reconfigurations() int { return 0 }

// Steps returns how many snapshots the controller has observed.
func (s *StaticController) Steps() int { return s.decisions }

// ReactiveConfig configures the CPU-threshold autoscaler.
type ReactiveConfig struct {
	// ScaleOutUtilization is the mean utilisation above which a node is added.
	ScaleOutUtilization float64
	// ScaleInUtilization is the mean utilisation below which a node is removed.
	ScaleInUtilization float64
	// ScaleOutCooldown is the minimum time between node additions.
	ScaleOutCooldown time.Duration
	// ScaleInCooldown is the minimum time between node removals.
	ScaleInCooldown time.Duration
	// MinNodes and MaxNodes bound the cluster size.
	MinNodes int
	MaxNodes int
}

// DefaultReactiveConfig mirrors a typical cloud provider autoscaling policy:
// scale out above 75% CPU, scale in below 30%, with conservative cooldowns.
func DefaultReactiveConfig() ReactiveConfig {
	return ReactiveConfig{
		ScaleOutUtilization: 0.75,
		ScaleInUtilization:  0.30,
		ScaleOutCooldown:    90 * time.Second,
		ScaleInCooldown:     5 * time.Minute,
		MinNodes:            2,
		MaxNodes:            32,
	}
}

func (c ReactiveConfig) withDefaults() ReactiveConfig {
	d := DefaultReactiveConfig()
	if c.ScaleOutUtilization <= 0 || c.ScaleOutUtilization > 1 {
		c.ScaleOutUtilization = d.ScaleOutUtilization
	}
	if c.ScaleInUtilization <= 0 || c.ScaleInUtilization >= c.ScaleOutUtilization {
		c.ScaleInUtilization = d.ScaleInUtilization
	}
	if c.ScaleOutCooldown <= 0 {
		c.ScaleOutCooldown = d.ScaleOutCooldown
	}
	if c.ScaleInCooldown <= 0 {
		c.ScaleInCooldown = d.ScaleInCooldown
	}
	if c.MinNodes <= 0 {
		c.MinNodes = d.MinNodes
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = d.MaxNodes
	}
	return c
}

// ReactiveAutoscaler is the classic utilisation-threshold autoscaler. It only
// ever adds or removes nodes and only looks at CPU utilisation.
type ReactiveAutoscaler struct {
	cfg      ReactiveConfig
	actuator core.Actuator

	lastScaleOut time.Duration
	lastScaleIn  time.Duration
	scaledOut    bool
	scaledIn     bool

	applied   int
	failed    int
	decisions []core.Decision
	ticker    *sim.Ticker
	stopped   bool
}

// NewReactiveAutoscaler creates an autoscaler driving the given actuator.
func NewReactiveAutoscaler(cfg ReactiveConfig, actuator core.Actuator) (*ReactiveAutoscaler, error) {
	if actuator == nil {
		return nil, errors.New("baseline: actuator is required")
	}
	return &ReactiveAutoscaler{cfg: cfg.withDefaults(), actuator: actuator}, nil
}

// Config returns the autoscaler configuration with defaults applied.
func (r *ReactiveAutoscaler) Config() ReactiveConfig { return r.cfg }

// Attach starts the autoscaler on the simulation engine with the given
// control interval, pulling snapshots from source.
func (r *ReactiveAutoscaler) Attach(engine *sim.Engine, source core.SnapshotSource, interval time.Duration) error {
	if engine == nil || source == nil {
		return errors.New("baseline: engine and snapshot source are required")
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	if r.ticker != nil {
		return errors.New("baseline: autoscaler already attached")
	}
	t, err := sim.NewTicker(engine, interval, func(time.Duration) {
		if r.stopped {
			return
		}
		r.Step(source.Snapshot())
	})
	if err != nil {
		return err
	}
	r.ticker = t
	return nil
}

// Stop halts the control loop.
func (r *ReactiveAutoscaler) Stop() {
	r.stopped = true
	if r.ticker != nil {
		r.ticker.Stop()
	}
}

// Step implements Stepper: a pure CPU-threshold policy.
func (r *ReactiveAutoscaler) Step(snap monitor.Snapshot) core.Decision {
	d := core.Decision{At: snap.At}
	size := r.actuator.ClusterSize()

	switch {
	case snap.MeanUtilization > r.cfg.ScaleOutUtilization && size < r.cfg.MaxNodes &&
		(!r.scaledOut || snap.At-r.lastScaleOut >= r.cfg.ScaleOutCooldown):
		d.Action = core.Action{Kind: core.ActionAddNode, Reason: "mean utilisation above scale-out threshold"}
		if err := r.actuator.AddNode(); err != nil {
			d.Err = err
			r.failed++
		} else {
			d.Applied = true
			r.applied++
			r.lastScaleOut = snap.At
			r.scaledOut = true
		}

	case snap.MeanUtilization < r.cfg.ScaleInUtilization && size > r.cfg.MinNodes &&
		(!r.scaledIn || snap.At-r.lastScaleIn >= r.cfg.ScaleInCooldown) &&
		(!r.scaledOut || snap.At-r.lastScaleOut >= r.cfg.ScaleInCooldown):
		d.Action = core.Action{Kind: core.ActionRemoveNode, Reason: "mean utilisation below scale-in threshold"}
		if err := r.actuator.RemoveNode(); err != nil {
			d.Err = err
			r.failed++
		} else {
			d.Applied = true
			r.applied++
			r.lastScaleIn = snap.At
			r.scaledIn = true
		}

	default:
		d.Action = core.Action{Kind: core.ActionNone, Reason: "utilisation within thresholds"}
	}

	d.ClusterSize = r.actuator.ClusterSize()
	d.ReplicationFactor = r.actuator.ReplicationFactor()
	d.ReadConsistency = r.actuator.ReadConsistency()
	d.WriteConsistency = r.actuator.WriteConsistency()
	r.decisions = append(r.decisions, d)
	return d
}

// Reconfigurations implements Stepper.
func (r *ReactiveAutoscaler) Reconfigurations() int { return r.applied }

// FailedActions returns how many scale actions failed to apply.
func (r *ReactiveAutoscaler) FailedActions() int { return r.failed }

// Decisions returns a copy of every decision taken so far.
func (r *ReactiveAutoscaler) Decisions() []core.Decision {
	out := make([]core.Decision, len(r.decisions))
	copy(out, r.decisions)
	return out
}
