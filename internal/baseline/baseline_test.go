package baseline

import (
	"errors"
	"testing"
	"time"

	"autonosql/internal/cluster"
	"autonosql/internal/core"
	"autonosql/internal/monitor"
	"autonosql/internal/sim"
	"autonosql/internal/store"
	"autonosql/internal/workload"
)

// fakeActuator mirrors the in-memory plant used by the core tests.
type fakeActuator struct {
	size    int
	rf      int
	readCL  store.ConsistencyLevel
	writeCL store.ConsistencyLevel
	fail    error

	adds    int
	removes int
}

func newFakeActuator(size int) *fakeActuator {
	return &fakeActuator{size: size, rf: 3, readCL: store.One, writeCL: store.One}
}

func (f *fakeActuator) ClusterSize() int                                   { return f.size }
func (f *fakeActuator) ReplicationFactor() int                             { return f.rf }
func (f *fakeActuator) ReadConsistency() store.ConsistencyLevel            { return f.readCL }
func (f *fakeActuator) WriteConsistency() store.ConsistencyLevel           { return f.writeCL }
func (f *fakeActuator) SetReadConsistency(cl store.ConsistencyLevel) error { f.readCL = cl; return nil }
func (f *fakeActuator) SetWriteConsistency(cl store.ConsistencyLevel) error {
	f.writeCL = cl
	return nil
}
func (f *fakeActuator) SetReplicationFactor(rf int) error { f.rf = rf; return nil }
func (f *fakeActuator) AddNode() error {
	if f.fail != nil {
		return f.fail
	}
	f.size++
	f.adds++
	return nil
}
func (f *fakeActuator) RemoveNode() error {
	if f.fail != nil {
		return f.fail
	}
	f.size--
	f.removes++
	return nil
}

var _ core.Actuator = (*fakeActuator)(nil)

func snap(at time.Duration, util float64, size int) monitor.Snapshot {
	return monitor.Snapshot{
		At:                at,
		Interval:          10 * time.Second,
		MeanUtilization:   util,
		MaxUtilization:    util,
		ClusterSize:       size,
		ReplicationFactor: 3,
		ReadConsistency:   store.One,
		WriteConsistency:  store.One,
		WindowSamples:     100,
	}
}

func TestStaticControllerNeverActs(t *testing.T) {
	s := NewStaticController()
	for i := 1; i <= 10; i++ {
		d := s.Step(snap(time.Duration(i)*10*time.Second, 0.99, 3))
		if !d.Action.IsNoop() || d.Applied {
			t.Fatalf("static controller acted: %+v", d)
		}
	}
	if s.Reconfigurations() != 0 {
		t.Fatalf("Reconfigurations = %d, want 0", s.Reconfigurations())
	}
	if s.Steps() != 10 {
		t.Fatalf("Steps = %d, want 10", s.Steps())
	}
}

func TestReactiveScalesOutOnHighUtilization(t *testing.T) {
	act := newFakeActuator(3)
	r, err := NewReactiveAutoscaler(DefaultReactiveConfig(), act)
	if err != nil {
		t.Fatalf("NewReactiveAutoscaler: %v", err)
	}
	d := r.Step(snap(10*time.Second, 0.9, 3))
	if !d.Applied || d.Action.Kind != core.ActionAddNode {
		t.Fatalf("decision %+v, want applied add-node", d)
	}
	if act.adds != 1 {
		t.Fatalf("adds = %d, want 1", act.adds)
	}
	if r.Reconfigurations() != 1 {
		t.Fatalf("Reconfigurations = %d", r.Reconfigurations())
	}
}

func TestReactiveScaleOutCooldown(t *testing.T) {
	act := newFakeActuator(3)
	r, err := NewReactiveAutoscaler(DefaultReactiveConfig(), act)
	if err != nil {
		t.Fatalf("NewReactiveAutoscaler: %v", err)
	}
	r.Step(snap(10*time.Second, 0.9, 3))
	d := r.Step(snap(20*time.Second, 0.9, 4))
	if d.Applied {
		t.Fatal("second scale-out applied within the cooldown")
	}
	d = r.Step(snap(10*time.Second+DefaultReactiveConfig().ScaleOutCooldown, 0.9, 4))
	if !d.Applied {
		t.Fatal("scale-out after cooldown expired was not applied")
	}
}

func TestReactiveScalesInOnLowUtilization(t *testing.T) {
	act := newFakeActuator(6)
	r, err := NewReactiveAutoscaler(DefaultReactiveConfig(), act)
	if err != nil {
		t.Fatalf("NewReactiveAutoscaler: %v", err)
	}
	d := r.Step(snap(10*time.Minute, 0.1, 6))
	if !d.Applied || d.Action.Kind != core.ActionRemoveNode {
		t.Fatalf("decision %+v, want applied remove-node", d)
	}
	// Immediately afterwards the scale-in cooldown blocks further removals.
	d = r.Step(snap(10*time.Minute+10*time.Second, 0.1, 5))
	if d.Applied {
		t.Fatal("second scale-in applied within the cooldown")
	}
}

func TestReactiveRespectsBounds(t *testing.T) {
	cfg := DefaultReactiveConfig()
	cfg.MinNodes = 3
	cfg.MaxNodes = 4
	act := newFakeActuator(4)
	r, err := NewReactiveAutoscaler(cfg, act)
	if err != nil {
		t.Fatalf("NewReactiveAutoscaler: %v", err)
	}
	if d := r.Step(snap(10*time.Second, 0.95, 4)); d.Applied {
		t.Fatal("scaled out beyond MaxNodes")
	}
	act2 := newFakeActuator(3)
	r2, err := NewReactiveAutoscaler(cfg, act2)
	if err != nil {
		t.Fatalf("NewReactiveAutoscaler: %v", err)
	}
	if d := r2.Step(snap(10*time.Second, 0.05, 3)); d.Applied {
		t.Fatal("scaled in below MinNodes")
	}
}

func TestReactiveIsBlindToTheWindow(t *testing.T) {
	// The defining weakness of the baseline: an enormous inconsistency window
	// with moderate CPU produces no reaction at all.
	act := newFakeActuator(3)
	r, err := NewReactiveAutoscaler(DefaultReactiveConfig(), act)
	if err != nil {
		t.Fatalf("NewReactiveAutoscaler: %v", err)
	}
	s := snap(10*time.Second, 0.5, 3)
	s.WindowP95 = 10.0 // ten-second window
	d := r.Step(s)
	if d.Applied || !d.Action.IsNoop() {
		t.Fatalf("CPU-only autoscaler reacted to the window: %+v", d)
	}
}

func TestReactiveRecordsActuationFailures(t *testing.T) {
	act := newFakeActuator(3)
	act.fail = errors.New("quota exceeded")
	r, err := NewReactiveAutoscaler(DefaultReactiveConfig(), act)
	if err != nil {
		t.Fatalf("NewReactiveAutoscaler: %v", err)
	}
	d := r.Step(snap(10*time.Second, 0.9, 3))
	if d.Applied || d.Err == nil {
		t.Fatalf("decision %+v, want failure", d)
	}
	if r.FailedActions() != 1 {
		t.Fatalf("FailedActions = %d, want 1", r.FailedActions())
	}
}

func TestReactiveValidation(t *testing.T) {
	if _, err := NewReactiveAutoscaler(DefaultReactiveConfig(), nil); err == nil {
		t.Fatal("nil actuator accepted")
	}
	r, err := NewReactiveAutoscaler(ReactiveConfig{}, newFakeActuator(3))
	if err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	if r.Config().ScaleOutUtilization <= 0 {
		t.Fatal("zero config did not receive defaults")
	}
	if err := r.Attach(nil, nil, 0); err == nil {
		t.Fatal("nil engine accepted by Attach")
	}
}

func TestReactiveAttachIntegration(t *testing.T) {
	engine := sim.NewEngine()
	src := sim.NewRandSource(17)
	ccfg := cluster.DefaultConfig()
	ccfg.InitialNodes = 2
	cl := cluster.New(ccfg, engine, src)
	st, err := store.New(store.DefaultConfig(), engine, cl, src)
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	mon, err := monitor.New(monitor.DefaultConfig(), engine, st, cl)
	if err != nil {
		t.Fatalf("monitor.New: %v", err)
	}
	actuator, err := core.NewSystemActuator(st, cl)
	if err != nil {
		t.Fatalf("NewSystemActuator: %v", err)
	}
	r, err := NewReactiveAutoscaler(DefaultReactiveConfig(), actuator)
	if err != nil {
		t.Fatalf("NewReactiveAutoscaler: %v", err)
	}
	if err := r.Attach(engine, mon, 10*time.Second); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if err := r.Attach(engine, mon, 10*time.Second); err == nil {
		t.Fatal("double Attach accepted")
	}

	// Overload two small nodes so utilisation crosses the scale-out threshold.
	gen, err := workload.NewGenerator(workload.Config{
		Profile: workload.ConstantProfile{OpsPerSec: 8000},
		Mix:     workload.Mix{ReadFraction: 0.5},
		Keys:    workload.NewUniformKeys(200, src.Stream("keys")),
		Until:   2 * time.Minute,
	}, engine, mon, src)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	gen.Start()
	if err := engine.Run(2 * time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.Reconfigurations() == 0 {
		t.Fatal("reactive autoscaler never scaled out under overload")
	}
	if len(r.Decisions()) == 0 {
		t.Fatal("no decisions recorded")
	}
	r.Stop()
	n := len(r.Decisions())
	if err := engine.Run(engine.Now() + 30*time.Second); err != nil {
		t.Fatalf("Run after stop: %v", err)
	}
	if len(r.Decisions()) != n {
		t.Fatal("autoscaler kept deciding after Stop")
	}
}
