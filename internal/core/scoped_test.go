package core

import (
	"strings"
	"testing"
	"time"

	"autonosql/internal/tenant"
)

// TestKnowledgeBaseScopedCooldowns pins the cooldown-bookkeeping fix:
// cooldowns key on (kind, scope), so throttling tenant A must not put tenant
// B's throttle in cooldown, while the legacy cluster-scoped queries keep
// their exact pre-scope behaviour.
func TestKnowledgeBaseScopedCooldowns(t *testing.T) {
	kb := NewKnowledgeBase()
	a := TenantScope("a")
	b := TenantScope("b")

	kb.RecordApplied(Action{Kind: ActionThrottleTenant, Scope: a, Rate: 100},
		10*time.Minute, 0.1, 0.01, time.Minute)

	if !kb.InCooldownScoped(ActionThrottleTenant, a, 10*time.Minute+time.Second, time.Minute) {
		t.Error("throttling tenant a did not start tenant a's cooldown")
	}
	if kb.InCooldownScoped(ActionThrottleTenant, b, 10*time.Minute+time.Second, time.Minute) {
		t.Error("throttling tenant a put tenant b's throttle in cooldown")
	}
	if kb.InCooldown(ActionThrottleTenant, 10*time.Minute+time.Second, time.Minute) {
		t.Error("tenant-scoped action leaked into the cluster-scoped cooldown")
	}
	if _, ok := kb.LastAppliedScoped(ActionThrottleTenant, a); !ok {
		t.Error("LastAppliedScoped lost the tenant-a application")
	}
	if _, ok := kb.LastAppliedScoped(ActionThrottleTenant, b); ok {
		t.Error("LastAppliedScoped invented a tenant-b application")
	}

	// Cluster-scoped actions stay keyed on the empty scope.
	kb.RecordApplied(Action{Kind: ActionAddNode}, 20*time.Minute, 0.1, 0.01, time.Minute)
	if !kb.InCooldown(ActionAddNode, 20*time.Minute+time.Second, time.Minute) {
		t.Error("cluster-scoped cooldown broken")
	}
	if at, ok := kb.LastApplied(ActionAddNode); !ok || at != 20*time.Minute {
		t.Errorf("LastApplied = %v, %v", at, ok)
	}
}

// TestActionStringScoped pins the decision-log rendering of scoped actions:
// the scope target and, for throttles, the admitted rate are named.
func TestActionStringScoped(t *testing.T) {
	a := Action{Kind: ActionThrottleTenant, Scope: TenantScope("batch"), Rate: 400, Reason: "x"}
	if s := a.String(); !strings.Contains(s, "throttle-tenant[batch @400ops/s]") {
		t.Errorf("throttle action renders %q", s)
	}
	p := Action{Kind: ActionPinTenantClass, Scope: ClassScope("gold")}
	if s := p.String(); !strings.Contains(s, "pin-class[gold]") {
		t.Errorf("pin action renders %q", s)
	}
	if s := (Action{Kind: ActionAddNode, Reason: "y"}).String(); strings.Contains(s, "[") {
		t.Errorf("cluster-scoped action grew a scope suffix: %q", s)
	}
	if ClusterScope().String() != "cluster" || TenantScope("a").String() != "tenant a" ||
		ClassScope("gold").String() != "class gold" {
		t.Error("Scope.String changed")
	}
}

// protectionAnalysis builds an Analysis in which a gold tenant is in
// violation and a bronze tenant offers throttleable load.
func protectionAnalysis(at time.Duration) Analysis {
	gold := tenantSignal("gold", tenant.Gold, 0.30)
	bronze := tenantSignal("bronze", tenant.Bronze, 0.10)
	bronze.OfferedOpsPerSec = 1000
	snap := makeSnapshot(snapshotOpts{at: at, windowP95: 0.30, meanUtil: 0.9})
	snap.Tenants = []tenant.Signal{gold, bronze}
	return Analysis{
		At:                    at,
		Snapshot:              snap,
		Primary:               ConditionWindowHigh,
		Cause:                 CauseCPUSaturation,
		Tenant:                "gold",
		TenantClass:           string(tenant.Gold),
		GoldViolation:         true,
		ThrottleCandidate:     "bronze",
		ThrottleCandidateRate: 1000,
	}
}

// TestPlannerThrottlesBeforeScaling pins the tentpole ordering: with
// admission control enabled and a gold tenant in violation, the planner
// sheds the noisy neighbour instead of reaching for capacity.
func TestPlannerThrottlesBeforeScaling(t *testing.T) {
	cfg := DefaultConfig(testSLA())
	cfg.EnableAdmissionControl = true
	p := NewPlanner(cfg, nil)
	plant := PlantState{ClusterSize: 4, ReplicationFactor: 3, ReadConsistency: 1, WriteConsistency: 1}

	a := p.Plan(protectionAnalysis(10*time.Minute), plant)
	if a.Kind != ActionThrottleTenant || a.Scope.Tenant != "bronze" {
		t.Fatalf("planned %v, want throttle-tenant[bronze]", a)
	}
	if want := 1000 * cfg.ThrottleFraction; a.Rate != want {
		t.Errorf("throttle rate = %v, want %v", a.Rate, want)
	}

	// Without admission control the same analysis falls through to the
	// cluster-wide window branch (add-node under CPU saturation).
	cfg.EnableAdmissionControl = false
	p2 := NewPlanner(cfg, nil)
	if a := p2.Plan(protectionAnalysis(10*time.Minute), plant); a.Kind != ActionAddNode {
		t.Fatalf("with admission off: planned %v, want add-node", a)
	}
}

// TestPlannerThrottleCooldownPerTenant is the planner-level regression for
// the cooldown fix: throttling tenant A in one interval must not block
// throttling tenant B in the next.
func TestPlannerThrottleCooldownPerTenant(t *testing.T) {
	cfg := DefaultConfig(testSLA())
	cfg.EnableAdmissionControl = true
	kb := NewKnowledgeBase()
	p := NewPlanner(cfg, kb)
	plant := PlantState{ClusterSize: 4, ReplicationFactor: 3, ReadConsistency: 1, WriteConsistency: 1}

	an := protectionAnalysis(10 * time.Minute)
	first := p.Plan(an, plant)
	if first.Kind != ActionThrottleTenant || first.Scope.Tenant != "bronze" {
		t.Fatalf("planned %v, want throttle-tenant[bronze]", first)
	}
	kb.RecordApplied(first, an.At, 0.3, 0.01, time.Minute)

	// Ten seconds later bronze is throttled and a silver tenant is now the
	// candidate; its throttle must be available immediately.
	an2 := protectionAnalysis(10*time.Minute + 10*time.Second)
	an2.ThrottleCandidate = "silver"
	an2.ThrottleCandidateRate = 600
	an2.Throttled = []ThrottledTenant{{Name: "bronze", Rate: 500, Offered: 1000}}
	second := p.Plan(an2, plant)
	if second.Kind != ActionThrottleTenant || second.Scope.Tenant != "silver" {
		t.Fatalf("tenant-a cooldown blocked tenant b: planned %v, want throttle-tenant[silver]", second)
	}
}

// TestPlannerUnthrottleOnRecovery pins the release path: a throttle is
// lifted only once it has stopped binding (the tenant offers less than the
// bucket admits) for the full holdoff — a one-interval dip mid-burst never
// releases it, and binding again resets the clock.
func TestPlannerUnthrottleOnRecovery(t *testing.T) {
	cfg := DefaultConfig(testSLA())
	cfg.EnableAdmissionControl = true
	kb := NewKnowledgeBase()
	p := NewPlanner(cfg, kb)
	plant := PlantState{ClusterSize: 4, ReplicationFactor: 3, ReadConsistency: 1, WriteConsistency: 1}
	kb.RecordApplied(Action{Kind: ActionThrottleTenant, Scope: TenantScope("bronze"), Rate: 500},
		10*time.Minute, 0.3, 0.01, time.Minute)

	recoveredAt := func(at time.Duration, offered float64) Analysis {
		an := Analysis{
			At:       at,
			Snapshot: makeSnapshot(snapshotOpts{at: at, windowP95: 0.01, meanUtil: 0.5}),
			Primary:  ConditionNominal,
			Tenant:   "gold", TenantClass: string(tenant.Gold),
			Throttled: []ThrottledTenant{{Name: "bronze", Rate: 500, Offered: offered}},
		}
		an.Snapshot.Tenants = []tenant.Signal{tenantSignal("gold", tenant.Gold, 0.01)}
		return an
	}

	// Still binding: never released, however old the throttle is.
	if a := p.Plan(recoveredAt(20*time.Minute, 1000), plant); a.Kind == ActionUnthrottleTenant {
		t.Fatalf("released a still-binding throttle: %v", a)
	}
	// First non-binding observation only starts the holdoff clock.
	if a := p.Plan(recoveredAt(20*time.Minute+10*time.Second, 300), plant); a.Kind == ActionUnthrottleTenant {
		t.Fatalf("released on the first non-binding observation: %v", a)
	}
	// A dip that rebinds resets the clock.
	if a := p.Plan(recoveredAt(20*time.Minute+20*time.Second, 1000), plant); a.Kind == ActionUnthrottleTenant {
		t.Fatalf("released while binding again: %v", a)
	}
	if a := p.Plan(recoveredAt(20*time.Minute+30*time.Second, 300), plant); a.Kind == ActionUnthrottleTenant {
		t.Fatalf("dip did not reset the holdoff clock: %v", a)
	}
	// Non-binding for the full holdoff: released.
	at := 20*time.Minute + 30*time.Second + cfg.UnthrottleHoldoff
	if a := p.Plan(recoveredAt(at, 300), plant); a.Kind != ActionUnthrottleTenant || a.Scope.Tenant != "bronze" {
		t.Fatalf("planned %v, want unthrottle-tenant[bronze]", a)
	}
}

// TestPlannerSkipsNonBindingThrottle pins the floor interaction: a candidate
// whose clamped rate would admit everything it offers is not throttled — the
// action could shed nothing and would only burn the interval and the
// per-tenant cooldown.
func TestPlannerSkipsNonBindingThrottle(t *testing.T) {
	cfg := DefaultConfig(testSLA())
	cfg.EnableAdmissionControl = true
	p := NewPlanner(cfg, nil)
	plant := PlantState{ClusterSize: 4, ReplicationFactor: 3, ReadConsistency: 1, WriteConsistency: 1}

	an := protectionAnalysis(10 * time.Minute)
	an.ThrottleCandidateRate = cfg.MinThrottleRate * 0.8 // floor-clamped rate >= offered
	if a := p.Plan(an, plant); a.Kind == ActionThrottleTenant {
		t.Fatalf("planned a throttle that cannot bind: %v", a)
	}
}

// TestPlannerPinsClassWhenThrottleUnavailable pins the escalation: with
// placement enabled and no throttle candidate left, a persisting gold
// violation dedicates nodes to the gold class; on recovery the pin is
// lifted only after every throttle is released.
func TestPlannerPinsClassWhenThrottleUnavailable(t *testing.T) {
	cfg := DefaultConfig(testSLA())
	cfg.EnableAdmissionControl = true
	cfg.EnablePlacementActions = true
	p := NewPlanner(cfg, nil)
	plant := PlantState{ClusterSize: 5, ReplicationFactor: 3, ReadConsistency: 1, WriteConsistency: 1}

	an := protectionAnalysis(10 * time.Minute)
	an.ThrottleCandidate = "" // everyone already throttled (or gold-only)
	// At the floor: no tightening possible even though the throttle binds.
	an.Throttled = []ThrottledTenant{{Name: "bronze", Rate: cfg.MinThrottleRate, Offered: 1000}}
	if a := p.Plan(an, plant); a.Kind != ActionPinTenantClass || a.Scope.Class != string(tenant.Gold) {
		t.Fatalf("planned %v, want pin-class[gold]", a)
	}

	// Recovery with the class pinned but a tenant still throttled: release
	// the throttle first, the pin after.
	rec := Analysis{
		At:       30 * time.Minute,
		Snapshot: an.Snapshot,
		Primary:  ConditionNominal,
		Tenant:   "gold", TenantClass: string(tenant.Gold),
		Throttled: []ThrottledTenant{{Name: "bronze", Rate: cfg.MinThrottleRate, Offered: 10}},
	}
	pinnedPlant := plant
	pinnedPlant.PinnedClass = string(tenant.Gold)
	// First non-binding observation starts the holdoff clock; after the
	// holdoff the throttle is released before the pin.
	if a := p.Plan(rec, pinnedPlant); a.Kind != ActionNone {
		t.Fatalf("planned %v before the holdoff elapsed", a)
	}
	rec.At += cfg.UnthrottleHoldoff
	if a := p.Plan(rec, pinnedPlant); a.Kind != ActionUnthrottleTenant {
		t.Fatalf("planned %v, want unthrottle before unpin", a)
	}
	rec.Throttled = nil
	if a := p.Plan(rec, pinnedPlant); a.Kind != ActionUnpinTenantClass || a.Scope.Class != string(tenant.Gold) {
		t.Fatalf("planned %v, want unpin-class[gold]", a)
	}
}

// TestAnalyzerAdmissionAnnotations pins the analyzer side of the scoped
// actions: throttled tenants never drive the loop, and the throttle
// candidate is the unthrottled non-gold tenant with the most offered load
// per dollar of penalty.
func TestAnalyzerAdmissionAnnotations(t *testing.T) {
	a := NewAnalyzer(DefaultConfig(testSLA()))
	snap := makeSnapshot(snapshotOpts{at: time.Minute, windowP95: 0.010, meanUtil: 0.5})

	gold := tenantSignal("gold", tenant.Gold, 0.30)
	silver := tenantSignal("silver", tenant.Silver, 0.05)
	silver.OfferedOpsPerSec = 400
	bronze := tenantSignal("bronze", tenant.Bronze, 0.05)
	bronze.OfferedOpsPerSec = 500
	throttled := tenantSignal("batch", tenant.Bronze, 5.0) // huge window, but self-inflicted
	throttled.Throttled = true
	throttled.ThrottleRate = 100
	throttled.ErrorRate = 0.9
	snap.Tenants = []tenant.Signal{gold, silver, bronze, throttled}

	an := a.Analyze(snap)
	if an.Tenant != "gold" {
		t.Errorf("driving tenant = %q; a throttled tenant's self-inflicted distress must not drive the loop", an.Tenant)
	}
	// bronze: 500 ops / $0.20 = 2500; silver: 400 / $1.00 = 400.
	if an.ThrottleCandidate != "bronze" || an.ThrottleCandidateRate != 500 {
		t.Errorf("candidate = %q @%v, want bronze @500", an.ThrottleCandidate, an.ThrottleCandidateRate)
	}
	if len(an.Throttled) != 1 || an.Throttled[0] != (ThrottledTenant{Name: "batch", Rate: 100}) {
		t.Errorf("throttled bookkeeping wrong: %v", an.Throttled)
	}
}

// fakeTenantActuator extends the fake plant with the scoped-action surface.
type fakeTenantActuator struct {
	*fakeActuator
	throttled map[string]float64
	pinned    string
}

func newFakeTenantActuator() *fakeTenantActuator {
	return &fakeTenantActuator{fakeActuator: newFakeActuator(), throttled: map[string]float64{}}
}

func (f *fakeTenantActuator) ThrottleTenant(name string, rate float64) error {
	f.throttled[name] = rate
	return nil
}
func (f *fakeTenantActuator) UnthrottleTenant(name string) error {
	delete(f.throttled, name)
	return nil
}
func (f *fakeTenantActuator) ThrottledRate(name string) (float64, bool) {
	r, ok := f.throttled[name]
	return r, ok
}
func (f *fakeTenantActuator) PinClass(class string) error { f.pinned = class; return nil }
func (f *fakeTenantActuator) UnpinClass() error           { f.pinned = ""; return nil }
func (f *fakeTenantActuator) PinnedClass() string         { return f.pinned }

var _ TenantActuator = (*fakeTenantActuator)(nil)

// TestControllerExecutesScopedActions drives one MAPE step end to end
// against the fake tenant actuator and requires the planned throttle to be
// executed on the named tenant.
func TestControllerExecutesScopedActions(t *testing.T) {
	cfg := DefaultConfig(testSLA())
	cfg.EnableAdmissionControl = true
	fta := newFakeTenantActuator()
	c, err := New(cfg, fta)
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	snap := makeSnapshot(snapshotOpts{at: 10 * time.Minute, windowP95: 0.30, meanUtil: 0.9, samples: 100})
	gold := tenantSignal("gold", tenant.Gold, 0.30)
	bronze := tenantSignal("bronze", tenant.Bronze, 0.10)
	bronze.OfferedOpsPerSec = 1000
	snap.Tenants = []tenant.Signal{gold, bronze}

	d := c.Step(snap)
	if d.Action.Kind != ActionThrottleTenant || !d.Applied {
		t.Fatalf("decision %v (applied=%v), want applied throttle", d.Action, d.Applied)
	}
	rate, ok := fta.throttled["bronze"]
	if !ok || rate != d.Action.Rate {
		t.Fatalf("actuator throttled %v, want bronze @%v", fta.throttled, d.Action.Rate)
	}
	if !strings.Contains(d.String(), "throttle-tenant[bronze") {
		t.Errorf("decision string lacks scoped action: %s", d)
	}
}

// TestControllerRejectsScopedActionsWithoutTenantActuator pins the failure
// mode: a tenant-scoped action against a plain actuator fails cleanly with
// ErrNoTenantActuator instead of panicking or silently no-oping.
func TestControllerRejectsScopedActionsWithoutTenantActuator(t *testing.T) {
	c, err := New(DefaultConfig(testSLA()), newFakeActuator())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := c.execute(Action{Kind: ActionThrottleTenant, Scope: TenantScope("x"), Rate: 1}, PlantState{}); err != ErrNoTenantActuator {
		t.Errorf("execute returned %v, want ErrNoTenantActuator", err)
	}
}

// TestAnalyzerRanksThrottleCandidates pins the ranked candidate list: every
// eligible (unthrottled, non-gold, offering) tenant appears best-first by
// offered load per penalty dollar, the legacy ThrottleCandidate fields mirror
// the top entry, and throttled or gold tenants never appear.
func TestAnalyzerRanksThrottleCandidates(t *testing.T) {
	gold := tenantSignal("gold", tenant.Gold, 0.30)
	gold.OfferedOpsPerSec = 5000 // gold never becomes a target, however loud
	bronze := tenantSignal("bronze", tenant.Bronze, 0.10)
	bronze.OfferedOpsPerSec = 1000
	silver := tenantSignal("silver", tenant.Silver, 0.10)
	silver.OfferedOpsPerSec = 900
	capped := tenantSignal("capped", tenant.Bronze, 0.10)
	capped.OfferedOpsPerSec = 400
	capped.Throttled = true
	capped.ThrottleRate = 300

	var an Analysis
	an.annotateAdmission([]tenant.Signal{gold, silver, bronze, capped})

	if len(an.ThrottleCandidates) != 2 {
		t.Fatalf("candidates = %+v, want exactly bronze and silver", an.ThrottleCandidates)
	}
	// Bronze: 1000 ops/s at the bronze penalty; silver: 900 ops/s at the
	// (pricier) silver penalty — bronze must rank first.
	if an.ThrottleCandidates[0].Name != "bronze" || an.ThrottleCandidates[1].Name != "silver" {
		t.Fatalf("ranking = %+v, want [bronze silver]", an.ThrottleCandidates)
	}
	if an.ThrottleCandidate != "bronze" || an.ThrottleCandidateRate != 1000 {
		t.Fatalf("legacy candidate fields = %q/%v, want bronze/1000",
			an.ThrottleCandidate, an.ThrottleCandidateRate)
	}
	if len(an.Throttled) != 1 || an.Throttled[0].Name != "capped" {
		t.Fatalf("throttled list = %+v, want [capped]", an.Throttled)
	}
}

// ineffectiveThrottleHistory feeds the knowledge base two settled throttles
// of the tenant that bought no window improvement at all.
func ineffectiveThrottleHistory(kb *KnowledgeBase, name string) {
	for i := 0; i < 2; i++ {
		at := time.Duration(i+1) * time.Hour
		kb.RecordApplied(Action{Kind: ActionThrottleTenant, Scope: TenantScope(name), Rate: 500},
			at, 0.200, 0.01, time.Minute)
		kb.RecordObservation(at+2*time.Minute, 0.200, 0.01)
	}
}

// TestPlannerPrefersEffectiveThrottleTarget pins the learned-throttle
// preference: when the pressure-ranked best candidate's past throttles
// demonstrably did nothing, the planner throttles the next candidate instead
// — and surfaces the passed-over tenant as an audit veto. With no
// alternative, or with every alternative equally discredited, the pressure
// ranking stands exactly as before.
func TestPlannerPrefersEffectiveThrottleTarget(t *testing.T) {
	cfg := DefaultConfig(testSLA())
	cfg.EnableAdmissionControl = true
	plant := PlantState{ClusterSize: 4, ReplicationFactor: 3, ReadConsistency: 1, WriteConsistency: 1}
	twoCandidates := func() Analysis {
		an := protectionAnalysis(30 * time.Hour)
		an.ThrottleCandidates = []ThrottleTarget{{Name: "bronze", Rate: 1000}, {Name: "silver", Rate: 600}}
		return an
	}

	// Bronze's throttles never moved the window: silver is next in line.
	kb := NewKnowledgeBase()
	ineffectiveThrottleHistory(kb, "bronze")
	p := NewPlanner(cfg, kb)
	p.trace = &AuditRecord{}
	a := p.Plan(twoCandidates(), plant)
	if a.Kind != ActionThrottleTenant || a.Scope.Tenant != "silver" {
		t.Fatalf("planned %v, want throttle-tenant[silver] past the ineffective bronze", a)
	}
	if want := 600 * cfg.ThrottleFraction; a.Rate != want {
		t.Errorf("throttle rate = %v, want %v (derived from silver's offered rate)", a.Rate, want)
	}
	found := false
	for _, v := range p.trace.Vetoes {
		if v.Kind == ActionThrottleTenant.String() && v.Scope == TenantScope("bronze").String() {
			found = true
		}
	}
	if !found {
		t.Errorf("passing over bronze left no audit veto: %+v", p.trace.Vetoes)
	}

	// Every candidate discredited: fall back to the raw pressure ranking.
	kb2 := NewKnowledgeBase()
	ineffectiveThrottleHistory(kb2, "bronze")
	ineffectiveThrottleHistory(kb2, "silver")
	p2 := NewPlanner(cfg, kb2)
	if a := p2.Plan(twoCandidates(), plant); a.Kind != ActionThrottleTenant || a.Scope.Tenant != "bronze" {
		t.Fatalf("with all candidates ineffective planned %v, want throttle-tenant[bronze]", a)
	}

	// A single candidate is throttled regardless of its history: skipping it
	// would abandon the cheapest protection step with nothing to replace it.
	kb3 := NewKnowledgeBase()
	ineffectiveThrottleHistory(kb3, "bronze")
	p3 := NewPlanner(cfg, kb3)
	an := protectionAnalysis(30 * time.Hour)
	an.ThrottleCandidates = []ThrottleTarget{{Name: "bronze", Rate: 1000}}
	if a := p3.Plan(an, plant); a.Kind != ActionThrottleTenant || a.Scope.Tenant != "bronze" {
		t.Fatalf("single ineffective candidate planned %v, want throttle-tenant[bronze]", a)
	}
}
