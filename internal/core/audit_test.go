package core

import (
	"testing"
	"time"

	"autonosql/internal/store"
)

// TestControllerAuditTrail pins the audit trail's causal content: an audited
// step records the analysis verdict, the planning branch, the cooldown
// consults behind the decision and the final action outcome — and an
// unaudited controller records nothing.
func TestControllerAuditTrail(t *testing.T) {
	act := newFakeActuator()
	c, err := New(DefaultConfig(testSLA()), act)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c.EnableAudit()

	// Interval 1: window far beyond the SLA with idle resources → the window
	// branch tightens write consistency.
	d := c.Step(makeSnapshot(snapshotOpts{
		at: 10 * time.Second, windowP95: 0.5, readP99: 0.005, writeP99: 0.005, meanUtil: 0.2,
	}))
	if d.Action.Kind != ActionTightenWriteConsistency {
		t.Fatalf("step 1 action %v, want tighten-write-cl", d.Action.Kind)
	}
	// Interval 2: same pressure, but the consistency cooldown now blocks the
	// tighten — the consult must appear in the trail as active.
	c.Step(makeSnapshot(snapshotOpts{
		at: 20 * time.Second, windowP95: 0.5, readP99: 0.005, writeP99: 0.005, meanUtil: 0.2,
		writeCL: store.Two,
	}))

	trail := c.Audit()
	if len(trail) != 2 {
		t.Fatalf("audit trail has %d records, want 2", len(trail))
	}
	first := trail[0]
	if first.Branch != "window" || first.Condition != "window-high" {
		t.Errorf("record 1 branch=%q condition=%q, want window/window-high", first.Branch, first.Condition)
	}
	if first.Action == "" || !first.Applied {
		t.Errorf("record 1 action=%q applied=%v, want applied tighten", first.Action, first.Applied)
	}
	if first.WindowP95 != 0.5 {
		t.Errorf("record 1 window_p95 = %v, want 0.5", first.WindowP95)
	}
	found := false
	for _, cd := range first.Cooldowns {
		if cd.Kind == ActionTightenWriteConsistency.String() && !cd.Active {
			found = true
		}
	}
	if !found {
		t.Errorf("record 1 cooldown consults %+v missing inactive tighten-write-cl", first.Cooldowns)
	}
	second := trail[1]
	blocked := false
	for _, cd := range second.Cooldowns {
		if cd.Kind == ActionTightenWriteConsistency.String() && cd.Active {
			blocked = true
		}
	}
	if !blocked {
		t.Errorf("record 2 cooldown consults %+v do not show the active tighten cooldown", second.Cooldowns)
	}

	// An unaudited controller records nothing and plans identically.
	plain, err := New(DefaultConfig(testSLA()), newFakeActuator())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	p := plain.Step(makeSnapshot(snapshotOpts{
		at: 10 * time.Second, windowP95: 0.5, readP99: 0.005, writeP99: 0.005, meanUtil: 0.2,
	}))
	if p.Action.Kind != ActionTightenWriteConsistency {
		t.Errorf("unaudited action %v differs from audited %v", p.Action.Kind, d.Action.Kind)
	}
	if plain.Audit() != nil {
		t.Error("unaudited controller produced an audit trail")
	}
}

// TestAuditRecordsVeto pins that a rejected candidate lands in the trail: a
// gold violation vetoes scale-in on the cost-recovery branch.
func TestAuditRecordsVeto(t *testing.T) {
	act := newFakeActuator()
	act.size = 6
	c, err := New(DefaultConfig(testSLA()), act)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c.EnableAudit()

	an := Analysis{
		At:            10 * time.Second,
		Primary:       ConditionOverProvisioned,
		GoldViolation: true,
	}
	plant := PlantState{ClusterSize: 6, ReplicationFactor: 3, ReadConsistency: store.One, WriteConsistency: store.One}
	rec := &AuditRecord{}
	c.planner.trace = rec
	c.planner.Plan(an, plant)
	c.planner.trace = nil

	found := false
	for _, v := range rec.Vetoes {
		if v.Kind == ActionRemoveNode.String() && v.Reason != "" {
			found = true
		}
	}
	if !found {
		t.Errorf("vetoes %+v missing the gold-violation scale-in veto", rec.Vetoes)
	}
}
