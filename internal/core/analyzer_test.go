package core

import (
	"testing"
	"time"

	"autonosql/internal/store"
)

func TestAnalyzerNominal(t *testing.T) {
	a := NewAnalyzer(DefaultConfig(testSLA()))
	an := a.Analyze(makeSnapshot(snapshotOpts{
		at: 10 * time.Second, windowP95: 0.02, readP99: 0.005, writeP99: 0.008,
		meanUtil: 0.5, opsPerSec: 1000,
	}))
	if an.Primary != ConditionNominal {
		t.Fatalf("primary = %v, want nominal", an.Primary)
	}
	if !an.WindowTrusted {
		t.Fatal("snapshot with 100 samples should be trusted")
	}
}

func TestAnalyzerAvailabilityDominates(t *testing.T) {
	a := NewAnalyzer(DefaultConfig(testSLA()))
	an := a.Analyze(makeSnapshot(snapshotOpts{
		at: 10 * time.Second, windowP95: 1.0, readP99: 0.1, writeP99: 0.1,
		errorRate: 0.5, meanUtil: 0.95,
	}))
	if an.Primary != ConditionAvailabilityLow {
		t.Fatalf("primary = %v, want availability-low", an.Primary)
	}
	if an.Cause != CauseCPUSaturation {
		t.Fatalf("cause = %v, want cpu-saturation when utilisation is high", an.Cause)
	}
}

func TestAnalyzerWindowHighCPUSaturation(t *testing.T) {
	a := NewAnalyzer(DefaultConfig(testSLA()))
	an := a.Analyze(makeSnapshot(snapshotOpts{
		at: 10 * time.Second, windowP95: 0.5, readP99: 0.01, writeP99: 0.01,
		meanUtil: 0.9, maxUtil: 0.97,
	}))
	if an.Primary != ConditionWindowHigh || an.Cause != CauseCPUSaturation {
		t.Fatalf("got %v/%v, want window-high/cpu-saturation", an.Primary, an.Cause)
	}
}

func TestAnalyzerWindowHighLooseConsistency(t *testing.T) {
	a := NewAnalyzer(DefaultConfig(testSLA()))
	// Window high while nodes are mostly idle and write latency is small:
	// the configuration, not a resource, is the problem.
	an := a.Analyze(makeSnapshot(snapshotOpts{
		at: 10 * time.Second, windowP95: 0.5, readP99: 0.005, writeP99: 0.005,
		meanUtil: 0.2, maxUtil: 0.3,
	}))
	if an.Primary != ConditionWindowHigh || an.Cause != CauseLooseConsistency {
		t.Fatalf("got %v/%v, want window-high/loose-consistency", an.Primary, an.Cause)
	}
}

func TestAnalyzerWindowHighNetworkCongestion(t *testing.T) {
	a := NewAnalyzer(DefaultConfig(testSLA()))
	// Window high, nodes idle, but writes are slow: propagation is delayed in
	// the network.
	an := a.Analyze(makeSnapshot(snapshotOpts{
		at: 10 * time.Second, windowP95: 0.5, readP99: 0.01, writeP99: 0.020,
		meanUtil: 0.2, maxUtil: 0.3,
	}))
	if an.Primary != ConditionWindowHigh || an.Cause != CauseNetworkCongestion {
		t.Fatalf("got %v/%v, want window-high/network-congestion", an.Primary, an.Cause)
	}
}

func TestAnalyzerUntrustedWindowIsIgnored(t *testing.T) {
	a := NewAnalyzer(DefaultConfig(testSLA()))
	an := a.Analyze(makeSnapshot(snapshotOpts{
		at: 10 * time.Second, windowP95: 5.0, readP99: 0.005, writeP99: 0.005,
		meanUtil: 0.5, samples: 2, // far below MinWindowSamples
	}))
	if an.WindowTrusted {
		t.Fatal("2 samples should not be trusted")
	}
	if an.Primary == ConditionWindowHigh {
		t.Fatal("untrusted window estimate must not trigger the window condition")
	}
}

func TestAnalyzerLatencyHighCauses(t *testing.T) {
	cfg := DefaultConfig(testSLA())

	// Saturated nodes.
	a := NewAnalyzer(cfg)
	an := a.Analyze(makeSnapshot(snapshotOpts{
		at: 10 * time.Second, windowP95: 0.02, readP99: 0.05, writeP99: 0.01,
		meanUtil: 0.9, maxUtil: 0.95,
	}))
	if an.Primary != ConditionLatencyHigh || an.Cause != CauseCPUSaturation {
		t.Fatalf("got %v/%v, want latency-high/cpu-saturation", an.Primary, an.Cause)
	}

	// Idle nodes with strict write consistency and slow writes.
	a2 := NewAnalyzer(cfg)
	an2 := a2.Analyze(makeSnapshot(snapshotOpts{
		at: 10 * time.Second, windowP95: 0.02, readP99: 0.002, writeP99: 0.05,
		meanUtil: 0.2, writeCL: store.All, readCL: store.One,
	}))
	if an2.Primary != ConditionLatencyHigh || an2.Cause != CauseLooseConsistency {
		t.Fatalf("got %v/%v, want latency-high/loose-consistency", an2.Primary, an2.Cause)
	}

	// Idle nodes, symmetric latency inflation: the network.
	a3 := NewAnalyzer(cfg)
	an3 := a3.Analyze(makeSnapshot(snapshotOpts{
		at: 10 * time.Second, windowP95: 0.02, readP99: 0.05, writeP99: 0.05,
		meanUtil: 0.2,
	}))
	if an3.Primary != ConditionLatencyHigh || an3.Cause != CauseNetworkCongestion {
		t.Fatalf("got %v/%v, want latency-high/network-congestion", an3.Primary, an3.Cause)
	}
}

func TestAnalyzerOverProvisioned(t *testing.T) {
	a := NewAnalyzer(DefaultConfig(testSLA()))
	an := a.Analyze(makeSnapshot(snapshotOpts{
		at: 10 * time.Second, windowP95: 0.005, readP99: 0.001, writeP99: 0.002,
		meanUtil: 0.1, clusterSize: 8,
	}))
	if an.Primary != ConditionOverProvisioned || an.Cause != CauseExcessCapacity {
		t.Fatalf("got %v/%v, want over-provisioned/excess-capacity", an.Primary, an.Cause)
	}
}

func TestAnalyzerTracksLoadTrend(t *testing.T) {
	a := NewAnalyzer(DefaultConfig(testSLA()))
	var last Analysis
	for i := 1; i <= 10; i++ {
		last = a.Analyze(makeSnapshot(snapshotOpts{
			at: time.Duration(i) * 10 * time.Second, windowP95: 0.02,
			readP99: 0.005, writeP99: 0.005, meanUtil: 0.5,
			opsPerSec: float64(i) * 200,
		}))
	}
	if last.LoadTrend <= 0 {
		t.Fatalf("rising load should have positive trend, got %v", last.LoadTrend)
	}
	if last.ForecastOpsPerSec <= 2000 {
		t.Fatalf("forecast should exceed the latest observation for a rising load, got %v", last.ForecastOpsPerSec)
	}
}

func TestConditionAndCauseStrings(t *testing.T) {
	conds := []Condition{ConditionAvailabilityLow, ConditionWindowHigh, ConditionLatencyHigh, ConditionOverProvisioned, ConditionNominal}
	for _, c := range conds {
		if c.String() == "" || c.String() == "condition("+string(rune('0'+int(c)))+")" {
			t.Errorf("condition %d has no symbolic name", int(c))
		}
	}
	if Condition(99).String() != "condition(99)" {
		t.Error("unknown condition should render numerically")
	}
	causes := []Cause{CauseUnknown, CauseCPUSaturation, CauseNetworkCongestion, CauseLooseConsistency, CauseExcessCapacity}
	for _, c := range causes {
		if c.String() == "" {
			t.Errorf("cause %d has no name", int(c))
		}
	}
	if Cause(99).String() != "cause(99)" {
		t.Error("unknown cause should render numerically")
	}
}
