package core

import (
	"errors"
	"time"

	"autonosql/internal/sla"
	"autonosql/internal/store"
)

// Config parameterises the autonomous controller. DefaultConfig provides the
// values used by the experiments; callers typically start from it and adjust
// the SLA and the enable flags.
type Config struct {
	// SLA is the agreement the controller must keep the system within.
	SLA sla.SLA

	// ControlInterval is the period of the MAPE loop.
	ControlInterval time.Duration

	// HighFraction is the fraction of an SLA limit above which the controller
	// considers the corresponding clause "at risk" and acts (hysteresis upper
	// band). Acting before the limit is reached absorbs monitoring noise and
	// actuation delay.
	HighFraction float64
	// LowFraction is the fraction of an SLA limit below which the controller
	// considers the clause comfortably met and may trade slack for cost
	// (hysteresis lower band).
	LowFraction float64

	// TargetUtilization is the CPU utilisation above which the cluster is
	// considered saturated.
	TargetUtilization float64
	// LowUtilization is the CPU utilisation below which the cluster is
	// considered over-provisioned.
	LowUtilization float64

	// ScaleOutCooldown is the minimum time between node additions.
	ScaleOutCooldown time.Duration
	// ScaleInCooldown is the minimum time between node removals.
	ScaleInCooldown time.Duration
	// ConsistencyCooldown is the minimum time between consistency-level
	// changes.
	ConsistencyCooldown time.Duration
	// ReplicationCooldown is the minimum time between replication-factor
	// changes.
	ReplicationCooldown time.Duration

	// MinNodes and MaxNodes bound the cluster sizes the controller will
	// request.
	MinNodes int
	MaxNodes int
	// MinReplication and MaxReplication bound the replication factors the
	// controller will request.
	MinReplication int
	MaxReplication int
	// MinWriteConsistency and MaxWriteConsistency bound the write consistency
	// levels the controller will request.
	MinWriteConsistency store.ConsistencyLevel
	MaxWriteConsistency store.ConsistencyLevel

	// EnableScaling allows add-node / remove-node actions.
	EnableScaling bool
	// EnableConsistencyActions allows consistency-level changes.
	EnableConsistencyActions bool
	// EnableReplicationActions allows replication-factor changes.
	EnableReplicationActions bool
	// EnablePrediction turns on proactive scaling from the load forecast.
	EnablePrediction bool
	// EnableAdmissionControl allows tenant-scoped throttle / unthrottle
	// actions: while a gold tenant is in violation the planner sheds a noisy
	// non-gold tenant's load before it reaches for more capacity.
	EnableAdmissionControl bool
	// EnablePlacementActions allows class-scoped pin / unpin actions that
	// dedicate nodes to one SLA class.
	EnablePlacementActions bool

	// PredictionHorizon is how far ahead the load predictor looks. It should
	// be at least the node bootstrap time, so capacity arrives before it is
	// needed.
	PredictionHorizon time.Duration
	// PredictorWindow is the number of recent control intervals the predictor
	// fits its trend over.
	PredictorWindow int
	// NodeCapacityOpsPerSec is the controller's belief about how many
	// operations per second one node sustains; the predictor sizes the
	// cluster with it.
	NodeCapacityOpsPerSec float64

	// MinWindowSamples is the minimum number of window estimates a snapshot
	// must carry before the controller trusts it enough to act on the window
	// clause.
	MinWindowSamples int

	// ThrottleFraction is the share of a tenant's observed offered rate a
	// throttle action admits (each further throttle of an already throttled
	// tenant multiplies again).
	ThrottleFraction float64
	// MinThrottleRate is the floor (ops/s) below which the planner never
	// throttles a tenant: admission control sheds bursts, it does not starve
	// a tenant outright.
	MinThrottleRate float64
	// ThrottleCooldown is the minimum time between admission actions on the
	// same tenant. Cooldowns are keyed per (action, tenant), so throttling
	// one tenant never delays protecting the cluster from another.
	ThrottleCooldown time.Duration
	// UnthrottleHoldoff is how long the driving pressure must have been gone
	// before a throttled tenant is released, preventing a throttle/unthrottle
	// oscillation at the violation boundary.
	UnthrottleHoldoff time.Duration
	// PlacementCooldown is the minimum time between class pin / unpin
	// actions.
	PlacementCooldown time.Duration
}

// DefaultConfig returns the controller profile used by the experiments.
func DefaultConfig(agreement sla.SLA) Config {
	return Config{
		SLA:                      agreement,
		ControlInterval:          10 * time.Second,
		HighFraction:             0.85,
		LowFraction:              0.35,
		TargetUtilization:        0.75,
		LowUtilization:           0.35,
		ScaleOutCooldown:         90 * time.Second,
		ScaleInCooldown:          5 * time.Minute,
		ConsistencyCooldown:      60 * time.Second,
		ReplicationCooldown:      10 * time.Minute,
		MinNodes:                 2,
		MaxNodes:                 32,
		MinReplication:           2,
		MaxReplication:           5,
		MinWriteConsistency:      store.One,
		MaxWriteConsistency:      store.All,
		EnableScaling:            true,
		EnableConsistencyActions: true,
		EnableReplicationActions: false,
		EnablePrediction:         true,
		PredictionHorizon:        2 * time.Minute,
		PredictorWindow:          12,
		NodeCapacityOpsPerSec:    5000,
		MinWindowSamples:         8,
		ThrottleFraction:         0.5,
		MinThrottleRate:          50,
		ThrottleCooldown:         60 * time.Second,
		UnthrottleHoldoff:        90 * time.Second,
		PlacementCooldown:        3 * time.Minute,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig(c.SLA)
	if c.ControlInterval <= 0 {
		c.ControlInterval = d.ControlInterval
	}
	if c.HighFraction <= 0 || c.HighFraction > 1 {
		c.HighFraction = d.HighFraction
	}
	if c.LowFraction <= 0 || c.LowFraction >= c.HighFraction {
		c.LowFraction = d.LowFraction
	}
	if c.TargetUtilization <= 0 || c.TargetUtilization > 1 {
		c.TargetUtilization = d.TargetUtilization
	}
	if c.LowUtilization <= 0 || c.LowUtilization >= c.TargetUtilization {
		c.LowUtilization = d.LowUtilization
	}
	if c.ScaleOutCooldown <= 0 {
		c.ScaleOutCooldown = d.ScaleOutCooldown
	}
	if c.ScaleInCooldown <= 0 {
		c.ScaleInCooldown = d.ScaleInCooldown
	}
	if c.ConsistencyCooldown <= 0 {
		c.ConsistencyCooldown = d.ConsistencyCooldown
	}
	if c.ReplicationCooldown <= 0 {
		c.ReplicationCooldown = d.ReplicationCooldown
	}
	if c.MinNodes <= 0 {
		c.MinNodes = d.MinNodes
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = d.MaxNodes
	}
	if c.MinReplication <= 0 {
		c.MinReplication = d.MinReplication
	}
	if c.MaxReplication <= 0 {
		c.MaxReplication = d.MaxReplication
	}
	if c.MinWriteConsistency == 0 {
		c.MinWriteConsistency = d.MinWriteConsistency
	}
	if c.MaxWriteConsistency == 0 {
		c.MaxWriteConsistency = d.MaxWriteConsistency
	}
	if c.PredictionHorizon <= 0 {
		c.PredictionHorizon = d.PredictionHorizon
	}
	if c.PredictorWindow <= 0 {
		c.PredictorWindow = d.PredictorWindow
	}
	if c.NodeCapacityOpsPerSec <= 0 {
		c.NodeCapacityOpsPerSec = d.NodeCapacityOpsPerSec
	}
	if c.MinWindowSamples <= 0 {
		c.MinWindowSamples = d.MinWindowSamples
	}
	if c.ThrottleFraction <= 0 || c.ThrottleFraction >= 1 {
		c.ThrottleFraction = d.ThrottleFraction
	}
	if c.MinThrottleRate <= 0 {
		c.MinThrottleRate = d.MinThrottleRate
	}
	if c.ThrottleCooldown <= 0 {
		c.ThrottleCooldown = d.ThrottleCooldown
	}
	if c.UnthrottleHoldoff <= 0 {
		c.UnthrottleHoldoff = d.UnthrottleHoldoff
	}
	if c.PlacementCooldown <= 0 {
		c.PlacementCooldown = d.PlacementCooldown
	}
	return c
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	if err := c.SLA.Validate(); err != nil {
		return err
	}
	if c.MinNodes > c.MaxNodes {
		return errors.New("core: MinNodes exceeds MaxNodes")
	}
	if c.MinReplication > c.MaxReplication {
		return errors.New("core: MinReplication exceeds MaxReplication")
	}
	if c.MinWriteConsistency > c.MaxWriteConsistency {
		return errors.New("core: MinWriteConsistency stricter than MaxWriteConsistency")
	}
	if c.LowFraction >= c.HighFraction {
		return errors.New("core: LowFraction must be below HighFraction")
	}
	if c.LowUtilization >= c.TargetUtilization {
		return errors.New("core: LowUtilization must be below TargetUtilization")
	}
	return nil
}
