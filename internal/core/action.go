package core

import (
	"errors"
	"fmt"

	"autonosql/internal/cluster"
	"autonosql/internal/store"
)

// ActionKind enumerates the reconfiguration actions the planner can take.
// These are exactly the knobs the paper lists: the consistency levels of
// query operations, the replication factor and the number of nodes.
type ActionKind int

// Reconfiguration actions.
const (
	// ActionNone leaves the system unchanged.
	ActionNone ActionKind = iota + 1
	// ActionTightenWriteConsistency raises the write consistency level one
	// step (ONE -> TWO -> QUORUM -> ALL), shrinking the client-observable
	// inconsistency window at the cost of write latency.
	ActionTightenWriteConsistency
	// ActionRelaxWriteConsistency lowers the write consistency level one
	// step, trading consistency for latency and availability.
	ActionRelaxWriteConsistency
	// ActionTightenReadConsistency raises the read consistency level one step.
	ActionTightenReadConsistency
	// ActionRelaxReadConsistency lowers the read consistency level one step.
	ActionRelaxReadConsistency
	// ActionIncreaseReplication raises the replication factor by one.
	ActionIncreaseReplication
	// ActionDecreaseReplication lowers the replication factor by one.
	ActionDecreaseReplication
	// ActionAddNode provisions one extra node.
	ActionAddNode
	// ActionRemoveNode decommissions one node.
	ActionRemoveNode
	// ActionThrottleTenant enables (or tightens) admission control on one
	// tenant: the tenant's arrivals are rate-limited by a token bucket and
	// excess operations are shed before they reach the store. It is the
	// planner's way to protect a premium tenant from a noisy neighbour
	// without paying for extra capacity. Tenant-scoped.
	ActionThrottleTenant
	// ActionUnthrottleTenant removes admission control from one tenant once
	// the pressure that justified it has passed. Tenant-scoped.
	ActionUnthrottleTenant
	// ActionPinTenantClass dedicates a set of nodes to one SLA class: the
	// class's tenants place their replica sets (and coordinators) on the
	// dedicated nodes, everyone else prefers the remainder. Class-scoped.
	ActionPinTenantClass
	// ActionUnpinTenantClass releases a class's dedicated nodes back into the
	// shared pool. Class-scoped.
	ActionUnpinTenantClass
)

// String implements fmt.Stringer.
func (k ActionKind) String() string {
	switch k {
	case ActionNone:
		return "none"
	case ActionTightenWriteConsistency:
		return "tighten-write-cl"
	case ActionRelaxWriteConsistency:
		return "relax-write-cl"
	case ActionTightenReadConsistency:
		return "tighten-read-cl"
	case ActionRelaxReadConsistency:
		return "relax-read-cl"
	case ActionIncreaseReplication:
		return "increase-rf"
	case ActionDecreaseReplication:
		return "decrease-rf"
	case ActionAddNode:
		return "add-node"
	case ActionRemoveNode:
		return "remove-node"
	case ActionThrottleTenant:
		return "throttle-tenant"
	case ActionUnthrottleTenant:
		return "unthrottle-tenant"
	case ActionPinTenantClass:
		return "pin-class"
	case ActionUnpinTenantClass:
		return "unpin-class"
	default:
		return fmt.Sprintf("action(%d)", int(k))
	}
}

// ActionKinds lists every concrete action (excluding ActionNone) in a stable
// order, for iteration in tests and reports.
func ActionKinds() []ActionKind {
	return []ActionKind{
		ActionTightenWriteConsistency,
		ActionRelaxWriteConsistency,
		ActionTightenReadConsistency,
		ActionRelaxReadConsistency,
		ActionIncreaseReplication,
		ActionDecreaseReplication,
		ActionAddNode,
		ActionRemoveNode,
		ActionThrottleTenant,
		ActionUnthrottleTenant,
		ActionPinTenantClass,
		ActionUnpinTenantClass,
	}
}

// Scope identifies what an action applies to. The zero value is the
// cluster-wide scope every pre-existing action kind uses; tenant-scoped
// actions (admission control) name the tenant, class-scoped actions
// (placement) name the SLA class. Carrying the scope on the action — instead
// of leaving every knob global — is what lets the execute stage act on the
// context that triggered the adaptation.
type Scope struct {
	// Tenant names the tenant a tenant-scoped action applies to.
	Tenant string
	// Class names the SLA class a class-scoped action applies to.
	Class string
}

// ClusterScope returns the cluster-wide scope.
func ClusterScope() Scope { return Scope{} }

// TenantScope returns the scope of an action applying to one tenant.
func TenantScope(name string) Scope { return Scope{Tenant: name} }

// ClassScope returns the scope of an action applying to one SLA class.
func ClassScope(class string) Scope { return Scope{Class: class} }

// IsCluster reports whether the scope is cluster-wide.
func (s Scope) IsCluster() bool { return s.Tenant == "" && s.Class == "" }

// Target returns the scoped entity's name (the tenant or class), or "" for
// the cluster-wide scope.
func (s Scope) Target() string {
	if s.Tenant != "" {
		return s.Tenant
	}
	return s.Class
}

// String implements fmt.Stringer.
func (s Scope) String() string {
	switch {
	case s.Tenant != "":
		return "tenant " + s.Tenant
	case s.Class != "":
		return "class " + s.Class
	default:
		return "cluster"
	}
}

// key renders the scope as a compact cooldown-map key. Tenant and class
// names live in separate namespaces so a tenant named like a class cannot
// alias its cooldowns.
func (s Scope) key() string {
	switch {
	case s.Tenant != "":
		return "t:" + s.Tenant
	case s.Class != "":
		return "c:" + s.Class
	default:
		return ""
	}
}

// Action is a planned reconfiguration with the reason the planner chose it.
type Action struct {
	Kind ActionKind
	// Scope is what the action applies to: the whole cluster (zero value),
	// one tenant, or one SLA class.
	Scope Scope
	// Count is how many times the action is applied in one decision; it is
	// only meaningful for add-node / remove-node, where the planner sizes the
	// step proportionally to the capacity shortfall (zero means one).
	Count int
	// Rate is the admission rate in ops/s a throttle action imposes; zero for
	// every other kind.
	Rate   float64
	Reason string
}

// IsNoop reports whether the action changes nothing.
func (a Action) IsNoop() bool { return a.Kind == ActionNone || a.Kind == 0 }

// Steps returns how many times the action should be applied (at least one).
func (a Action) Steps() int {
	if a.Count < 1 {
		return 1
	}
	return a.Count
}

// String implements fmt.Stringer. Scoped actions name their target, and
// throttle actions carry the imposed admission rate, so a decision log line
// reads e.g. "throttle-tenant[batch @400ops/s] (...)".
func (a Action) String() string {
	if a.IsNoop() {
		return "none"
	}
	name := a.Kind.String()
	if !a.Scope.IsCluster() {
		if a.Rate > 0 {
			name = fmt.Sprintf("%s[%s @%.0fops/s]", name, a.Scope.Target(), a.Rate)
		} else {
			name = fmt.Sprintf("%s[%s]", name, a.Scope.Target())
		}
	}
	if a.Steps() > 1 {
		name = fmt.Sprintf("%s x%d", name, a.Steps())
	}
	if a.Reason == "" {
		return name
	}
	return fmt.Sprintf("%s (%s)", name, a.Reason)
}

// Actuator is the interface through which controllers observe and change the
// configuration and deployment of the database system. It abstracts the
// store's consistency knobs and the cluster's membership operations so that
// controllers can be unit-tested against a fake plant.
type Actuator interface {
	// ClusterSize returns the number of nodes currently able to serve traffic.
	ClusterSize() int
	// ReplicationFactor returns the current replication factor.
	ReplicationFactor() int
	// ReadConsistency returns the current read consistency level.
	ReadConsistency() store.ConsistencyLevel
	// WriteConsistency returns the current write consistency level.
	WriteConsistency() store.ConsistencyLevel

	// SetReadConsistency changes the read consistency level.
	SetReadConsistency(cl store.ConsistencyLevel) error
	// SetWriteConsistency changes the write consistency level.
	SetWriteConsistency(cl store.ConsistencyLevel) error
	// SetReplicationFactor changes the replication factor.
	SetReplicationFactor(rf int) error
	// AddNode provisions one extra node.
	AddNode() error
	// RemoveNode decommissions one node.
	RemoveNode() error
}

// TenantActuator is the optional actuator extension scoped actions execute
// through. A plant that hosts named tenants implements it alongside Actuator;
// the controller discovers it with a type assertion and fails tenant- or
// class-scoped actions cleanly when the plant does not support them.
type TenantActuator interface {
	// ThrottleTenant imposes (or tightens) admission control on the named
	// tenant: arrivals beyond opsPerSec are shed before they reach the store.
	ThrottleTenant(name string, opsPerSec float64) error
	// UnthrottleTenant removes admission control from the named tenant.
	UnthrottleTenant(name string) error
	// ThrottledRate returns the tenant's current admission rate in ops/s and
	// whether the tenant is throttled at all.
	ThrottledRate(name string) (float64, bool)

	// PinClass dedicates nodes to the named SLA class: the class's tenants
	// place replica sets and coordinators on the dedicated nodes, everyone
	// else prefers the remainder. At most one class is pinned at a time.
	PinClass(class string) error
	// UnpinClass releases the pinned class's nodes back into the shared pool.
	UnpinClass() error
	// PinnedClass returns the currently pinned class, or "".
	PinnedClass() string
}

// Errors returned by actuators.
var (
	// ErrConsistencyBound is returned when a consistency level cannot be
	// tightened or relaxed any further.
	ErrConsistencyBound = errors.New("core: consistency level already at bound")
	// ErrReplicationBound is returned when the replication factor cannot move
	// further in the requested direction.
	ErrReplicationBound = errors.New("core: replication factor already at bound")
	// ErrNoRemovableNode is returned when no node is eligible for removal.
	ErrNoRemovableNode = errors.New("core: no removable node")
	// ErrNoTenantActuator is returned when a tenant- or class-scoped action is
	// executed against a plant that does not implement TenantActuator.
	ErrNoTenantActuator = errors.New("core: actuator does not support tenant-scoped actions")
)

// consistencyLadder is the ordered set of levels the controller steps
// through.
var consistencyLadder = []store.ConsistencyLevel{store.One, store.Two, store.Quorum, store.All}

// TightenConsistency returns the next stricter level, or an error when the
// level is already the strictest.
func TightenConsistency(cl store.ConsistencyLevel) (store.ConsistencyLevel, error) {
	for i, l := range consistencyLadder {
		if l == cl {
			if i+1 < len(consistencyLadder) {
				return consistencyLadder[i+1], nil
			}
			return cl, ErrConsistencyBound
		}
	}
	return cl, fmt.Errorf("core: unknown consistency level %v", cl)
}

// RelaxConsistency returns the next looser level, or an error when the level
// is already the loosest.
func RelaxConsistency(cl store.ConsistencyLevel) (store.ConsistencyLevel, error) {
	for i, l := range consistencyLadder {
		if l == cl {
			if i > 0 {
				return consistencyLadder[i-1], nil
			}
			return cl, ErrConsistencyBound
		}
	}
	return cl, fmt.Errorf("core: unknown consistency level %v", cl)
}

// SystemActuator binds the Actuator interface to the simulated store and
// cluster. Node removal always targets the newest (highest-ID) node that is
// fully up, which mirrors the scale-in policy of common cloud autoscalers.
type SystemActuator struct {
	store   *store.Store
	cluster *cluster.Cluster
}

var _ Actuator = (*SystemActuator)(nil)

// NewSystemActuator creates an actuator bound to the given store and cluster.
func NewSystemActuator(st *store.Store, cl *cluster.Cluster) (*SystemActuator, error) {
	if st == nil || cl == nil {
		return nil, errors.New("core: store and cluster are required")
	}
	return &SystemActuator{store: st, cluster: cl}, nil
}

// ClusterSize implements Actuator.
func (a *SystemActuator) ClusterSize() int { return a.cluster.Size() }

// ReplicationFactor implements Actuator.
func (a *SystemActuator) ReplicationFactor() int { return a.store.ReplicationFactor() }

// ReadConsistency implements Actuator.
func (a *SystemActuator) ReadConsistency() store.ConsistencyLevel { return a.store.ReadConsistency() }

// WriteConsistency implements Actuator.
func (a *SystemActuator) WriteConsistency() store.ConsistencyLevel {
	return a.store.WriteConsistency()
}

// SetReadConsistency implements Actuator.
func (a *SystemActuator) SetReadConsistency(cl store.ConsistencyLevel) error {
	if cl < store.One || cl > store.All {
		return fmt.Errorf("core: invalid read consistency %v", cl)
	}
	a.store.SetReadConsistency(cl)
	return nil
}

// SetWriteConsistency implements Actuator.
func (a *SystemActuator) SetWriteConsistency(cl store.ConsistencyLevel) error {
	if cl < store.One || cl > store.All {
		return fmt.Errorf("core: invalid write consistency %v", cl)
	}
	a.store.SetWriteConsistency(cl)
	return nil
}

// SetReplicationFactor implements Actuator.
func (a *SystemActuator) SetReplicationFactor(rf int) error {
	return a.store.SetReplicationFactor(rf)
}

// AddNode implements Actuator.
func (a *SystemActuator) AddNode() error {
	_, err := a.cluster.AddNode()
	return err
}

// RemoveNode implements Actuator. It removes the newest node that is fully
// up; joining or draining nodes are left alone. Nodes dedicated to a pinned
// SLA class are only removed when no shared node is eligible: scale-in must
// not quietly dismantle the placement the controller set up for the premium
// class.
func (a *SystemActuator) RemoveNode() error {
	nodes := a.cluster.Nodes()
	for i := len(nodes) - 1; i >= 0; i-- {
		if nodes[i].State() == cluster.NodeUp && nodes[i].Class() == "" {
			return a.cluster.RemoveNode(nodes[i].ID())
		}
	}
	for i := len(nodes) - 1; i >= 0; i-- {
		if nodes[i].State() == cluster.NodeUp {
			return a.cluster.RemoveNode(nodes[i].ID())
		}
	}
	return ErrNoRemovableNode
}
