package core

import (
	"testing"
	"time"
)

func TestKnowledgeCooldowns(t *testing.T) {
	kb := NewKnowledgeBase()
	if kb.InCooldown(ActionAddNode, time.Minute, time.Hour) {
		t.Fatal("never-applied action reported in cooldown")
	}
	kb.RecordApplied(Action{Kind: ActionAddNode}, 10*time.Minute, 0.1, 0.01, time.Minute)
	if !kb.InCooldown(ActionAddNode, 11*time.Minute, 5*time.Minute) {
		t.Fatal("recently applied action should be in cooldown")
	}
	if kb.InCooldown(ActionAddNode, 20*time.Minute, 5*time.Minute) {
		t.Fatal("cooldown should have expired")
	}
	at, ok := kb.LastApplied(ActionAddNode)
	if !ok || at != 10*time.Minute {
		t.Fatalf("LastApplied = %v, %v", at, ok)
	}
	if _, ok := kb.LastApplied(ActionRemoveNode); ok {
		t.Fatal("LastApplied for never-applied action should report false")
	}
}

func TestKnowledgeEffectRecording(t *testing.T) {
	kb := NewKnowledgeBase()
	kb.RecordApplied(Action{Kind: ActionTightenWriteConsistency}, time.Minute, 0.200, 0.01, 30*time.Second)

	// Observations before the settle time must not complete the record.
	kb.RecordObservation(time.Minute+10*time.Second, 0.500, 0.02)
	if got := kb.Effectiveness(ActionTightenWriteConsistency).Samples; got != 0 {
		t.Fatalf("effect recorded before settle time: %d samples", got)
	}

	// After settling, the window dropped from 200 ms to 50 ms: 75% improvement.
	kb.RecordObservation(2*time.Minute, 0.050, 0.02)
	eff := kb.Effectiveness(ActionTightenWriteConsistency)
	if eff.Samples != 1 {
		t.Fatalf("samples = %d, want 1", eff.Samples)
	}
	if eff.MeanWindowImprovement < 0.74 || eff.MeanWindowImprovement > 0.76 {
		t.Fatalf("mean improvement = %v, want ~0.75", eff.MeanWindowImprovement)
	}
	if eff.Harmful() {
		t.Fatal("a helpful action flagged harmful")
	}

	hist := kb.History()
	if len(hist) != 1 || hist[0].Action.Kind != ActionTightenWriteConsistency {
		t.Fatalf("unexpected history %+v", hist)
	}
	if kb.Applications() != 1 {
		t.Fatalf("Applications = %d, want 1", kb.Applications())
	}
}

func TestKnowledgeHarmfulDetection(t *testing.T) {
	kb := NewKnowledgeBase()
	// Two applications of increase-rf that both made the window worse.
	for i := 0; i < 2; i++ {
		at := time.Duration(i+1) * 10 * time.Minute
		kb.RecordApplied(Action{Kind: ActionIncreaseReplication}, at, 0.100, 0.01, time.Minute)
		kb.RecordObservation(at+2*time.Minute, 0.300, 0.02) // window tripled
	}
	eff := kb.Effectiveness(ActionIncreaseReplication)
	if eff.Samples != 2 {
		t.Fatalf("samples = %d, want 2", eff.Samples)
	}
	if !eff.Harmful() {
		t.Fatalf("action that doubled the window twice should be harmful: %+v", eff)
	}
	// A single bad observation is not enough to call an action harmful.
	kb2 := NewKnowledgeBase()
	kb2.RecordApplied(Action{Kind: ActionAddNode}, time.Minute, 0.1, 0.01, time.Second)
	kb2.RecordObservation(2*time.Minute, 0.2, 0.02)
	if kb2.Effectiveness(ActionAddNode).Harmful() {
		t.Fatal("one observation should not mark an action harmful")
	}
}

func TestKnowledgeEffectWithZeroBaseline(t *testing.T) {
	kb := NewKnowledgeBase()
	kb.RecordApplied(Action{Kind: ActionAddNode}, time.Minute, 0, 0, time.Second)
	kb.RecordObservation(2*time.Minute, 0.1, 0.01)
	eff := kb.Effectiveness(ActionAddNode)
	if eff.Samples != 1 || eff.MeanWindowImprovement != 0 {
		t.Fatalf("zero baseline should yield zero improvement, got %+v", eff)
	}
}

func TestKnowledgeUnknownActionEffectiveness(t *testing.T) {
	kb := NewKnowledgeBase()
	eff := kb.Effectiveness(ActionRemoveNode)
	if eff.Samples != 0 || eff.Harmful() {
		t.Fatalf("unknown action should have empty effectiveness, got %+v", eff)
	}
}

func TestKnowledgeTenantThrottleEffectiveness(t *testing.T) {
	kb := NewKnowledgeBase()
	// Two bronze throttles that bought nothing: the window never moved.
	for i := 0; i < 2; i++ {
		at := time.Duration(i+1) * 10 * time.Minute
		kb.RecordApplied(Action{Kind: ActionThrottleTenant, Scope: TenantScope("bronze"), Rate: 500},
			at, 0.200, 0.01, time.Minute)
		kb.RecordObservation(at+2*time.Minute, 0.200, 0.01)
	}
	// One silver throttle that halved the window.
	kb.RecordApplied(Action{Kind: ActionThrottleTenant, Scope: TenantScope("silver"), Rate: 300},
		40*time.Minute, 0.200, 0.01, time.Minute)
	kb.RecordObservation(42*time.Minute, 0.100, 0.01)

	bronze := kb.ThrottleEffectiveness("bronze")
	if bronze.Samples != 2 || !bronze.Ineffective() {
		t.Fatalf("two do-nothing throttles should read ineffective, got %+v", bronze)
	}
	if bronze.Harmful() {
		t.Fatalf("do-nothing throttles are not harmful, got %+v", bronze)
	}
	silver := kb.ThrottleEffectiveness("silver")
	if silver.Samples != 1 || silver.Ineffective() {
		t.Fatalf("a working throttle should not read ineffective, got %+v", silver)
	}
	if eff := kb.ThrottleEffectiveness("gold"); eff.Samples != 0 || eff.Ineffective() {
		t.Fatalf("never-throttled tenant should report empty effectiveness, got %+v", eff)
	}
	// The per-kind aggregate still sees all three observations.
	if eff := kb.Effectiveness(ActionThrottleTenant); eff.Samples != 3 {
		t.Fatalf("per-kind throttle effectiveness lost samples: %+v", eff)
	}
	// A single useless observation is not enough to deprioritise a tenant.
	kb2 := NewKnowledgeBase()
	kb2.RecordApplied(Action{Kind: ActionThrottleTenant, Scope: TenantScope("b"), Rate: 500},
		time.Minute, 0.2, 0.01, time.Second)
	kb2.RecordObservation(2*time.Minute, 0.2, 0.01)
	if kb2.ThrottleEffectiveness("b").Ineffective() {
		t.Fatal("one observation should not mark a tenant's throttles ineffective")
	}
}

func TestKnowledgeHistoryIsCopy(t *testing.T) {
	kb := NewKnowledgeBase()
	kb.RecordApplied(Action{Kind: ActionAddNode}, time.Minute, 0.2, 0.01, time.Second)
	kb.RecordObservation(2*time.Minute, 0.1, 0.01)
	h := kb.History()
	h[0].WindowAfter = 99
	if kb.History()[0].WindowAfter == 99 {
		t.Fatal("History must return a copy")
	}
}
