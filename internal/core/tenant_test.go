package core

import (
	"strings"
	"testing"
	"time"

	"autonosql/internal/tenant"
)

// tenantSignal builds a Signal for one class with the given window (seconds).
func tenantSignal(name string, class tenant.Class, windowP95 float64) tenant.Signal {
	spec := class.Spec()
	return tenant.Signal{
		Name:             name,
		Class:            class,
		SLA:              spec.SLA,
		PenaltyPerMinute: spec.PenaltyPerMinute,
		WindowP95:        windowP95,
	}
}

// TestAnalyzerPicksWorstPenaltyWeightedTenant pins the tentpole behaviour:
// with tenants on the snapshot, the analysis is driven by the worst
// penalty-weighted tenant — a gold tenant near its tight bound outranks a
// bronze tenant that is further past its loose one in absolute terms.
func TestAnalyzerPicksWorstPenaltyWeightedTenant(t *testing.T) {
	a := NewAnalyzer(DefaultConfig(testSLA()))
	snap := makeSnapshot(snapshotOpts{
		at:        time.Minute,
		windowP95: 0.010, // aggregate estimate looks healthy
		meanUtil:  0.5,
	})
	snap.Tenants = []tenant.Signal{
		// 0.30s vs gold bound 0.15s: ratio 2, weight 4 -> urgency 8.
		tenantSignal("gold", tenant.Gold, 0.30),
		// 3.0s vs bronze bound 1.5s: ratio 2, weight 0.2 -> urgency 0.4.
		tenantSignal("bronze", tenant.Bronze, 3.0),
	}
	an := a.Analyze(snap)
	if an.Tenant != "gold" {
		t.Errorf("driving tenant = %q, want gold", an.Tenant)
	}
	if an.TenantClass != string(tenant.Gold) {
		t.Errorf("driving class = %q, want gold", an.TenantClass)
	}
	if an.Primary != ConditionWindowHigh {
		t.Errorf("primary = %v, want window-high (gold window at 2x its bound)", an.Primary)
	}
	if !an.GoldViolation {
		t.Error("gold tenant at 2x its window bound not flagged as gold violation")
	}
}

// TestAnalyzerSingleTenantUnchanged pins back-compat: without tenant
// signals, the analysis carries no tenant attribution and classifies from
// the aggregate as before.
func TestAnalyzerSingleTenantUnchanged(t *testing.T) {
	a := NewAnalyzer(DefaultConfig(testSLA()))
	an := a.Analyze(makeSnapshot(snapshotOpts{at: time.Minute, windowP95: 0.010, meanUtil: 0.5}))
	if an.Tenant != "" || an.TenantClass != "" || an.GoldViolation {
		t.Errorf("single-tenant analysis carries tenant attribution: %+v", an)
	}
	if an.Primary != ConditionNominal {
		t.Errorf("primary = %v, want nominal", an.Primary)
	}
}

// TestPlannerVetoesScaleInDuringGoldViolation pins the scale-in veto: an
// over-provisioned cluster is normally shrunk, but not while a gold tenant
// is in violation.
func TestPlannerVetoesScaleInDuringGoldViolation(t *testing.T) {
	cfg := DefaultConfig(testSLA())
	cfg.EnablePrediction = false
	p := NewPlanner(cfg, nil)
	plant := PlantState{ClusterSize: 8, ReplicationFactor: 3, ReadConsistency: 1, WriteConsistency: 1}

	an := Analysis{
		At:      30 * time.Minute,
		Primary: ConditionOverProvisioned,
		Cause:   CauseExcessCapacity,
	}
	if action := p.Plan(an, plant); action.Kind != ActionRemoveNode {
		t.Fatalf("without gold violation: planned %v, want remove-node", action.Kind)
	}
	an.GoldViolation = true
	if action := p.Plan(an, plant); action.Kind == ActionRemoveNode {
		t.Fatalf("gold violation did not veto scale-in: planned %v", action)
	}
}

// TestDecisionStringNamesTenant pins the decision log format: multi-tenant
// decisions name the driving tenant and flag gold violations.
func TestDecisionStringNamesTenant(t *testing.T) {
	d := Decision{
		At:     time.Minute,
		Action: Action{Kind: ActionAddNode, Reason: "window high"},
		Analysis: Analysis{
			Tenant:        "checkout",
			TenantClass:   "gold",
			GoldViolation: true,
		},
	}
	s := d.String()
	if !strings.Contains(s, "tenant=checkout(gold)") || !strings.Contains(s, "gold-violation") {
		t.Errorf("decision string lacks tenant attribution: %s", s)
	}
	d.Analysis.Tenant = ""
	if strings.Contains(d.String(), "tenant=") {
		t.Errorf("single-tenant decision string carries tenant attribution: %s", d.String())
	}
}
