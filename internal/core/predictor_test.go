package core

import (
	"testing"
	"testing/quick"
	"time"
)

func TestPredictorEmptyAndSingleSample(t *testing.T) {
	p := NewLoadPredictor(8)
	if got := p.Forecast(time.Minute); got != 0 {
		t.Fatalf("empty forecast = %v, want 0", got)
	}
	if got := p.TrendPerSecond(); got != 0 {
		t.Fatalf("empty trend = %v, want 0", got)
	}
	p.Observe(10*time.Second, 100)
	if got := p.Forecast(time.Minute); got != 100 {
		t.Fatalf("single-sample forecast = %v, want 100 (last observation)", got)
	}
}

func TestPredictorLinearRamp(t *testing.T) {
	p := NewLoadPredictor(10)
	// Rate grows by 10 ops/s every 10 s.
	for i := 1; i <= 10; i++ {
		p.Observe(time.Duration(i)*10*time.Second, float64(i)*10)
	}
	trend := p.TrendPerSecond()
	if trend < 0.9 || trend > 1.1 {
		t.Fatalf("trend = %v ops/s per s, want ~1.0", trend)
	}
	// At t=150 s the line predicts 150 ops/s.
	got := p.Forecast(150 * time.Second)
	if got < 140 || got > 160 {
		t.Fatalf("forecast = %v, want ~150", got)
	}
}

func TestPredictorConstantLoadHasNoTrend(t *testing.T) {
	p := NewLoadPredictor(6)
	for i := 1; i <= 12; i++ {
		p.Observe(time.Duration(i)*10*time.Second, 500)
	}
	if trend := p.TrendPerSecond(); trend < -0.01 || trend > 0.01 {
		t.Fatalf("constant load trend = %v, want ~0", trend)
	}
	if got := p.Forecast(500 * time.Second); got < 499 || got > 501 {
		t.Fatalf("constant load forecast = %v, want ~500", got)
	}
}

func TestPredictorForecastClamped(t *testing.T) {
	p := NewLoadPredictor(4)
	// Very steep ramp.
	p.Observe(10*time.Second, 10)
	p.Observe(20*time.Second, 1000)
	got := p.Forecast(10 * time.Minute)
	if got > 2000 {
		t.Fatalf("forecast = %v, want clamped to at most 2x the observed maximum (2000)", got)
	}
	// Falling load never forecasts negative.
	p2 := NewLoadPredictor(4)
	p2.Observe(10*time.Second, 1000)
	p2.Observe(20*time.Second, 10)
	if got := p2.Forecast(10 * time.Minute); got < 0 {
		t.Fatalf("forecast = %v, want >= 0", got)
	}
}

func TestPredictorWindowSlides(t *testing.T) {
	p := NewLoadPredictor(4)
	// Old falling samples followed by a newer rising ramp; only the ramp
	// should remain in the window.
	for i := 1; i <= 4; i++ {
		p.Observe(time.Duration(i)*10*time.Second, float64(1000-100*i))
	}
	for i := 5; i <= 8; i++ {
		p.Observe(time.Duration(i)*10*time.Second, float64(i)*100)
	}
	if trend := p.TrendPerSecond(); trend <= 0 {
		t.Fatalf("trend after ramp = %v, want positive (old samples evicted)", trend)
	}
	if p.Samples() != 8 {
		t.Fatalf("Samples = %d, want 8", p.Samples())
	}
}

func TestPredictorNegativeRatesClamped(t *testing.T) {
	p := NewLoadPredictor(4)
	p.Observe(time.Second, -50)
	p.Observe(2*time.Second, -10)
	if got := p.Forecast(3 * time.Second); got < 0 {
		t.Fatalf("forecast from negative observations = %v, want >= 0", got)
	}
}

func TestRequiredNodes(t *testing.T) {
	cases := []struct {
		ops, capacity, util float64
		want                int
	}{
		{0, 5000, 0.7, 1},
		{3000, 5000, 0.7, 1},
		{3501, 5000, 0.7, 2},
		{35000, 5000, 0.7, 10},
		{100, 0, 0.7, 1},  // degenerate capacity
		{100, 5000, 0, 1}, // degenerate utilisation target
	}
	for _, c := range cases {
		if got := RequiredNodes(c.ops, c.capacity, c.util); got != c.want {
			t.Errorf("RequiredNodes(%v, %v, %v) = %d, want %d", c.ops, c.capacity, c.util, got, c.want)
		}
	}
}

// Property: forecasts are always finite and non-negative regardless of the
// observation sequence.
func TestPredictorForecastAlwaysSaneProperty(t *testing.T) {
	f := func(rates []uint16, horizonSec uint8) bool {
		p := NewLoadPredictor(8)
		for i, r := range rates {
			p.Observe(time.Duration(i+1)*5*time.Second, float64(r))
		}
		got := p.Forecast(time.Duration(horizonSec) * time.Second)
		return got >= 0 && got < 1e9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
