package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"autonosql/internal/cluster"
	"autonosql/internal/sim"
	"autonosql/internal/store"
)

func TestConsistencyLadder(t *testing.T) {
	steps := []struct {
		from, want store.ConsistencyLevel
	}{
		{store.One, store.Two},
		{store.Two, store.Quorum},
		{store.Quorum, store.All},
	}
	for _, s := range steps {
		got, err := TightenConsistency(s.from)
		if err != nil || got != s.want {
			t.Errorf("Tighten(%v) = %v, %v; want %v", s.from, got, err, s.want)
		}
		back, err := RelaxConsistency(s.want)
		if err != nil || back != s.from {
			t.Errorf("Relax(%v) = %v, %v; want %v", s.want, back, err, s.from)
		}
	}
}

func TestConsistencyLadderBounds(t *testing.T) {
	if _, err := TightenConsistency(store.All); !errors.Is(err, ErrConsistencyBound) {
		t.Errorf("tightening ALL should hit the bound, got %v", err)
	}
	if _, err := RelaxConsistency(store.One); !errors.Is(err, ErrConsistencyBound) {
		t.Errorf("relaxing ONE should hit the bound, got %v", err)
	}
	if _, err := TightenConsistency(store.ConsistencyLevel(42)); err == nil {
		t.Error("unknown level should be rejected")
	}
	if _, err := RelaxConsistency(store.ConsistencyLevel(42)); err == nil {
		t.Error("unknown level should be rejected")
	}
}

func TestActionStringsAndNoop(t *testing.T) {
	for _, k := range ActionKinds() {
		if strings.HasPrefix(k.String(), "action(") {
			t.Errorf("action kind %d has no symbolic name", int(k))
		}
		if (Action{Kind: k}).IsNoop() {
			t.Errorf("%v should not be a no-op", k)
		}
	}
	if !(Action{Kind: ActionNone}).IsNoop() || !(Action{}).IsNoop() {
		t.Error("ActionNone and the zero Action must be no-ops")
	}
	a := Action{Kind: ActionAddNode, Reason: "forecast"}
	if got := a.String(); !strings.Contains(got, "add-node") || !strings.Contains(got, "forecast") {
		t.Errorf("Action.String() = %q", got)
	}
	if got := (Action{}).String(); got != "none" {
		t.Errorf("zero action String() = %q, want none", got)
	}
}

func TestSystemActuatorRequiresDependencies(t *testing.T) {
	if _, err := NewSystemActuator(nil, nil); err == nil {
		t.Fatal("nil dependencies accepted")
	}
}

func TestSystemActuatorReadsAndWritesConfig(t *testing.T) {
	engine := sim.NewEngine()
	src := sim.NewRandSource(7)
	cl := cluster.New(cluster.DefaultConfig(), engine, src)
	st, err := store.New(store.DefaultConfig(), engine, cl, src)
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	act, err := NewSystemActuator(st, cl)
	if err != nil {
		t.Fatalf("NewSystemActuator: %v", err)
	}

	if act.ClusterSize() != 3 || act.ReplicationFactor() != 3 {
		t.Fatalf("unexpected initial plant state: size=%d rf=%d", act.ClusterSize(), act.ReplicationFactor())
	}
	if act.ReadConsistency() != store.One || act.WriteConsistency() != store.One {
		t.Fatal("unexpected initial consistency levels")
	}

	if err := act.SetWriteConsistency(store.Quorum); err != nil {
		t.Fatalf("SetWriteConsistency: %v", err)
	}
	if st.WriteConsistency() != store.Quorum {
		t.Fatal("write consistency not propagated to store")
	}
	if err := act.SetReadConsistency(store.Two); err != nil {
		t.Fatalf("SetReadConsistency: %v", err)
	}
	if st.ReadConsistency() != store.Two {
		t.Fatal("read consistency not propagated to store")
	}
	if err := act.SetWriteConsistency(store.ConsistencyLevel(99)); err == nil {
		t.Fatal("invalid write consistency accepted")
	}
	if err := act.SetReadConsistency(store.ConsistencyLevel(0)); err == nil {
		t.Fatal("invalid read consistency accepted")
	}

	if err := act.SetReplicationFactor(4); err != nil {
		t.Fatalf("SetReplicationFactor: %v", err)
	}
	if st.ReplicationFactor() != 4 {
		t.Fatal("replication factor not propagated")
	}
	if err := act.SetReplicationFactor(0); err == nil {
		t.Fatal("invalid replication factor accepted")
	}
}

func TestSystemActuatorAddAndRemoveNode(t *testing.T) {
	engine := sim.NewEngine()
	src := sim.NewRandSource(11)
	ccfg := cluster.DefaultConfig()
	cl := cluster.New(ccfg, engine, src)
	st, err := store.New(store.DefaultConfig(), engine, cl, src)
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	act, err := NewSystemActuator(st, cl)
	if err != nil {
		t.Fatalf("NewSystemActuator: %v", err)
	}

	if err := act.AddNode(); err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	// The new node only becomes available after the bootstrap time.
	if err := engine.Run(ccfg.BootstrapTime + time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := act.ClusterSize(); got != 4 {
		t.Fatalf("cluster size after add = %d, want 4", got)
	}

	if err := act.RemoveNode(); err != nil {
		t.Fatalf("RemoveNode: %v", err)
	}
	if err := engine.Run(engine.Now() + ccfg.DecommissionTime + time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := act.ClusterSize(); got != 3 {
		t.Fatalf("cluster size after remove = %d, want 3", got)
	}
}

func TestSystemActuatorRemoveNodeNoCandidate(t *testing.T) {
	engine := sim.NewEngine()
	src := sim.NewRandSource(3)
	ccfg := cluster.DefaultConfig()
	ccfg.InitialNodes = 1
	ccfg.MinNodes = 1
	cl := cluster.New(ccfg, engine, src)
	st, err := store.New(store.DefaultConfig(), engine, cl, src)
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	act, err := NewSystemActuator(st, cl)
	if err != nil {
		t.Fatalf("NewSystemActuator: %v", err)
	}
	// Only one node and MinNodes=1: the cluster refuses removal.
	if err := act.RemoveNode(); err == nil {
		t.Fatal("removing the last node should fail")
	}
}
