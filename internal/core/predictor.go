package core

import (
	"math"
	"time"
)

// LoadPredictor forecasts the offered load a short horizon ahead using a
// least-squares linear fit over the most recent observations. This is the
// "smart" in smart auto-scaling: provisioning a node takes minutes, so the
// controller must order capacity before the load arrives, not after the
// window has already blown past the SLA.
type LoadPredictor struct {
	size    int
	times   []float64 // seconds
	rates   []float64 // ops/s
	next    int
	filled  bool
	samples int
}

// NewLoadPredictor creates a predictor fitting over the last window samples.
func NewLoadPredictor(window int) *LoadPredictor {
	if window < 2 {
		window = 2
	}
	return &LoadPredictor{
		size:  window,
		times: make([]float64, window),
		rates: make([]float64, window),
	}
}

// Observe records one (time, offered rate) sample.
func (p *LoadPredictor) Observe(at time.Duration, opsPerSec float64) {
	if opsPerSec < 0 {
		opsPerSec = 0
	}
	p.times[p.next] = at.Seconds()
	p.rates[p.next] = opsPerSec
	p.next++
	p.samples++
	if p.next == p.size {
		p.next = 0
		p.filled = true
	}
}

// Samples returns the number of samples observed so far.
func (p *LoadPredictor) Samples() int { return p.samples }

func (p *LoadPredictor) window() (ts, rs []float64) {
	if p.filled {
		return p.times, p.rates
	}
	return p.times[:p.next], p.rates[:p.next]
}

// fit returns the least-squares intercept and slope of rate over time, and
// whether a fit was possible.
func (p *LoadPredictor) fit() (intercept, slope float64, ok bool) {
	ts, rs := p.window()
	n := float64(len(ts))
	if n < 2 {
		return 0, 0, false
	}
	var sumT, sumR, sumTR, sumTT float64
	for i := range ts {
		sumT += ts[i]
		sumR += rs[i]
		sumTR += ts[i] * rs[i]
		sumTT += ts[i] * ts[i]
	}
	denom := n*sumTT - sumT*sumT
	if denom == 0 {
		return sumR / n, 0, true
	}
	slope = (n*sumTR - sumT*sumR) / denom
	intercept = (sumR - slope*sumT) / n
	return intercept, slope, true
}

// TrendPerSecond returns the fitted change in offered load per second of
// virtual time (zero until at least two samples are available).
func (p *LoadPredictor) TrendPerSecond() float64 {
	_, slope, ok := p.fit()
	if !ok || math.IsNaN(slope) || math.IsInf(slope, 0) {
		return 0
	}
	return slope
}

// Forecast predicts the offered load at the given virtual time. The forecast
// is clamped to be non-negative and to at most double the largest observed
// rate, so a steep short-lived ramp cannot demand an absurd cluster size.
func (p *LoadPredictor) Forecast(at time.Duration) float64 {
	ts, rs := p.window()
	if len(rs) == 0 {
		return 0
	}
	last := rs[0]
	maxSeen := 0.0
	for i := range rs {
		if rs[i] > maxSeen {
			maxSeen = rs[i]
		}
	}
	if len(ts) > 0 {
		// Most recent sample is the one written just before next (circular).
		idx := p.next - 1
		if idx < 0 {
			idx = len(rs) - 1
		}
		last = rs[idx]
	}
	intercept, slope, ok := p.fit()
	if !ok {
		return last
	}
	pred := intercept + slope*at.Seconds()
	if math.IsNaN(pred) || math.IsInf(pred, 0) {
		return last
	}
	if pred < 0 {
		pred = 0
	}
	cap := 2 * maxSeen
	if cap > 0 && pred > cap {
		pred = cap
	}
	return pred
}

// RequiredNodes converts a forecast offered load into a node count, keeping
// per-node utilisation at or below targetUtil. It never returns less than
// one.
func RequiredNodes(opsPerSec, nodeCapacity, targetUtil float64) int {
	if nodeCapacity <= 0 || targetUtil <= 0 {
		return 1
	}
	n := int(math.Ceil(opsPerSec / (nodeCapacity * targetUtil)))
	if n < 1 {
		n = 1
	}
	return n
}
