package core

import (
	"errors"
	"testing"
	"time"

	"autonosql/internal/cluster"
	"autonosql/internal/monitor"
	"autonosql/internal/sim"
	"autonosql/internal/sla"
	"autonosql/internal/store"
)

// fakeActuator is an in-memory plant for unit tests of the planner and
// controller: no simulation, actions simply mutate fields.
type fakeActuator struct {
	size    int
	rf      int
	readCL  store.ConsistencyLevel
	writeCL store.ConsistencyLevel

	minSize int
	maxSize int

	addCalls    int
	removeCalls int
	failNext    error
}

func newFakeActuator() *fakeActuator {
	return &fakeActuator{size: 3, rf: 3, readCL: store.One, writeCL: store.One, minSize: 1, maxSize: 64}
}

func (f *fakeActuator) ClusterSize() int                         { return f.size }
func (f *fakeActuator) ReplicationFactor() int                   { return f.rf }
func (f *fakeActuator) ReadConsistency() store.ConsistencyLevel  { return f.readCL }
func (f *fakeActuator) WriteConsistency() store.ConsistencyLevel { return f.writeCL }
func (f *fakeActuator) SetReadConsistency(cl store.ConsistencyLevel) error {
	if err := f.consumeFailure(); err != nil {
		return err
	}
	f.readCL = cl
	return nil
}
func (f *fakeActuator) SetWriteConsistency(cl store.ConsistencyLevel) error {
	if err := f.consumeFailure(); err != nil {
		return err
	}
	f.writeCL = cl
	return nil
}
func (f *fakeActuator) SetReplicationFactor(rf int) error {
	if err := f.consumeFailure(); err != nil {
		return err
	}
	f.rf = rf
	return nil
}
func (f *fakeActuator) AddNode() error {
	if err := f.consumeFailure(); err != nil {
		return err
	}
	if f.size >= f.maxSize {
		return errors.New("fake: max size")
	}
	f.size++
	f.addCalls++
	return nil
}
func (f *fakeActuator) RemoveNode() error {
	if err := f.consumeFailure(); err != nil {
		return err
	}
	if f.size <= f.minSize {
		return errors.New("fake: min size")
	}
	f.size--
	f.removeCalls++
	return nil
}

func (f *fakeActuator) consumeFailure() error {
	if f.failNext != nil {
		err := f.failNext
		f.failNext = nil
		return err
	}
	return nil
}

var _ Actuator = (*fakeActuator)(nil)

// testSLA is the agreement used throughout the controller unit tests:
// 200 ms window, 20 ms read / 30 ms write latency, 1% error rate.
func testSLA() sla.SLA {
	return sla.SLA{
		MaxWindowP95:       200 * time.Millisecond,
		MaxReadLatencyP99:  20 * time.Millisecond,
		MaxWriteLatencyP99: 30 * time.Millisecond,
		MaxErrorRate:       0.01,
	}
}

// snapshot builds a monitoring snapshot with sensible defaults that tests
// override per case.
type snapshotOpts struct {
	at          time.Duration
	windowP95   float64
	readP99     float64
	writeP99    float64
	errorRate   float64
	meanUtil    float64
	maxUtil     float64
	opsPerSec   float64
	samples     int
	clusterSize int
	rf          int
	readCL      store.ConsistencyLevel
	writeCL     store.ConsistencyLevel
}

func makeSnapshot(o snapshotOpts) monitor.Snapshot {
	if o.samples == 0 {
		o.samples = 100
	}
	if o.clusterSize == 0 {
		o.clusterSize = 3
	}
	if o.rf == 0 {
		o.rf = 3
	}
	if o.readCL == 0 {
		o.readCL = store.One
	}
	if o.writeCL == 0 {
		o.writeCL = store.One
	}
	if o.maxUtil == 0 {
		o.maxUtil = o.meanUtil
	}
	return monitor.Snapshot{
		At:                o.at,
		Interval:          10 * time.Second,
		WindowMean:        o.windowP95 * 0.6,
		WindowP50:         o.windowP95 * 0.5,
		WindowP95:         o.windowP95,
		WindowP99:         o.windowP95 * 1.2,
		WindowSamples:     o.samples,
		ReadLatencyP99:    o.readP99,
		WriteLatencyP99:   o.writeP99,
		ObservedOpsPerSec: o.opsPerSec,
		ErrorRate:         o.errorRate,
		MeanUtilization:   o.meanUtil,
		MaxUtilization:    o.maxUtil,
		ClusterSize:       o.clusterSize,
		ReplicationFactor: o.rf,
		ReadConsistency:   o.readCL,
		WriteConsistency:  o.writeCL,
	}
}

// simRig wires a full simulated system (engine, cluster, store, monitor) for
// integration tests of the controller against the real plant.
type simRig struct {
	engine  *sim.Engine
	cluster *cluster.Cluster
	store   *store.Store
	monitor *monitor.Monitor
}

func newSimRig(t *testing.T, seed int64, nodes int) *simRig {
	t.Helper()
	engine := sim.NewEngine()
	src := sim.NewRandSource(seed)
	ccfg := cluster.DefaultConfig()
	if nodes > 0 {
		ccfg.InitialNodes = nodes
	}
	cl := cluster.New(ccfg, engine, src)
	st, err := store.New(store.DefaultConfig(), engine, cl, src)
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	mon, err := monitor.New(monitor.DefaultConfig(), engine, st, cl)
	if err != nil {
		t.Fatalf("monitor.New: %v", err)
	}
	return &simRig{engine: engine, cluster: cl, store: st, monitor: mon}
}
