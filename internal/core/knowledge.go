package core

import (
	"time"

	"autonosql/internal/metrics"
)

// EffectRecord is one completed observation of an action's effect: the window
// and latency estimates in the control interval before the action and in the
// interval after it had time to act.
type EffectRecord struct {
	Action        Action
	AppliedAt     time.Duration
	WindowBefore  float64
	WindowAfter   float64
	LatencyBefore float64
	LatencyAfter  float64
}

// WindowImprovement is the relative reduction of the window estimate
// (positive means the action helped).
func (r EffectRecord) WindowImprovement() float64 {
	if r.WindowBefore <= 0 {
		return 0
	}
	return (r.WindowBefore - r.WindowAfter) / r.WindowBefore
}

// Effectiveness summarises what the controller has learned about one action
// kind in the current environment.
type Effectiveness struct {
	// Samples is the number of completed effect observations.
	Samples uint64
	// MeanWindowImprovement is the mean relative window reduction.
	MeanWindowImprovement float64
	// StdDev is the standard deviation of the relative window reduction.
	StdDev float64
}

// Harmful reports whether the action has, on average, made the window worse
// across at least two observations. The planner avoids repeating actions the
// knowledge base has flagged as harmful — this is how "add a replica under
// network congestion made things worse" stops being repeated.
func (e Effectiveness) Harmful() bool {
	return e.Samples >= 2 && e.MeanWindowImprovement < -0.05
}

// Ineffective reports whether the action has, across at least two
// observations, failed to buy any window improvement on average. Weaker than
// Harmful — the action did not make things worse, it just did nothing — it is
// the signal the planner uses to deprioritise a target, never to rule one
// out entirely.
func (e Effectiveness) Ineffective() bool {
	return e.Samples >= 2 && e.MeanWindowImprovement <= 0
}

// actionKey is the cooldown-map key: an action kind together with the scope
// it applied to. Keying cooldowns on the pair — not the kind alone — is what
// lets the planner throttle tenant B immediately after throttling tenant A:
// each tenant's admission actions cool down independently, while cluster-wide
// actions (the empty scope) behave exactly as before.
type actionKey struct {
	kind  ActionKind
	scope string
}

// KnowledgeBase is the K in MAPE-K: it remembers when each (action kind,
// scope) pair was last applied (for cooldown enforcement) and what effect
// applied actions had on the window (for action ranking and post-mortem
// analysis). Effectiveness is learned per kind — what tightening consistency
// does to the window does not depend on who triggered it — except for tenant
// throttles, which are additionally learned per tenant: whether shedding one
// particular neighbour's load actually moves the window depends entirely on
// how much pressure that neighbour was contributing.
type KnowledgeBase struct {
	lastApplied map[actionKey]time.Duration
	everApplied map[actionKey]bool
	effects     map[ActionKind]*metrics.MeanVariance
	// tenantThrottle tracks, per throttled tenant, the window improvement
	// observed after each of that tenant's throttles settled.
	tenantThrottle map[string]*metrics.MeanVariance
	history        []EffectRecord

	// pending is the most recently applied action still waiting for its
	// "after" observation.
	pending        *EffectRecord
	pendingSettled time.Duration
}

// NewKnowledgeBase creates an empty knowledge base.
func NewKnowledgeBase() *KnowledgeBase {
	return &KnowledgeBase{
		lastApplied:    make(map[actionKey]time.Duration),
		everApplied:    make(map[actionKey]bool),
		effects:        make(map[ActionKind]*metrics.MeanVariance),
		tenantThrottle: make(map[string]*metrics.MeanVariance),
	}
}

// RecordApplied notes that the action was applied at the given time with the
// given pre-action window and latency estimates (seconds). settleTime is how
// long to wait before attributing post-action measurements to the action.
func (k *KnowledgeBase) RecordApplied(a Action, at time.Duration, windowBefore, latencyBefore float64, settleTime time.Duration) {
	key := actionKey{kind: a.Kind, scope: a.Scope.key()}
	k.lastApplied[key] = at
	k.everApplied[key] = true
	k.pending = &EffectRecord{
		Action:        a,
		AppliedAt:     at,
		WindowBefore:  windowBefore,
		LatencyBefore: latencyBefore,
	}
	k.pendingSettled = at + settleTime
}

// RecordObservation feeds the current window and latency estimates. If an
// applied action is waiting for its post-action measurement and enough time
// has passed for the action to take effect, the effect record is completed.
func (k *KnowledgeBase) RecordObservation(at time.Duration, window, latency float64) {
	if k.pending == nil || at < k.pendingSettled {
		return
	}
	rec := *k.pending
	rec.WindowAfter = window
	rec.LatencyAfter = latency
	k.pending = nil

	mv, ok := k.effects[rec.Action.Kind]
	if !ok {
		mv = &metrics.MeanVariance{}
		k.effects[rec.Action.Kind] = mv
	}
	mv.Update(rec.WindowImprovement())
	if rec.Action.Kind == ActionThrottleTenant && rec.Action.Scope.Tenant != "" {
		tmv, ok := k.tenantThrottle[rec.Action.Scope.Tenant]
		if !ok {
			tmv = &metrics.MeanVariance{}
			k.tenantThrottle[rec.Action.Scope.Tenant] = tmv
		}
		tmv.Update(rec.WindowImprovement())
	}
	k.history = append(k.history, rec)
}

// LastApplied returns when the cluster-scoped action kind was last applied
// and whether it ever was.
func (k *KnowledgeBase) LastApplied(kind ActionKind) (time.Duration, bool) {
	return k.LastAppliedScoped(kind, ClusterScope())
}

// LastAppliedScoped returns when the action kind was last applied to the
// given scope and whether it ever was.
func (k *KnowledgeBase) LastAppliedScoped(kind ActionKind, scope Scope) (time.Duration, bool) {
	at, ok := k.lastApplied[actionKey{kind: kind, scope: scope.key()}]
	return at, ok
}

// InCooldown reports whether the cluster-scoped action kind was applied more
// recently than cooldown before now.
func (k *KnowledgeBase) InCooldown(kind ActionKind, now, cooldown time.Duration) bool {
	return k.InCooldownScoped(kind, ClusterScope(), now, cooldown)
}

// InCooldownScoped reports whether the action kind was applied to the given
// scope more recently than cooldown before now. Different scopes never block
// each other: throttling tenant A leaves tenant B's throttle immediately
// available.
func (k *KnowledgeBase) InCooldownScoped(kind ActionKind, scope Scope, now, cooldown time.Duration) bool {
	at, ok := k.lastApplied[actionKey{kind: kind, scope: scope.key()}]
	if !ok {
		return false
	}
	return now-at < cooldown
}

// Effectiveness returns what has been learned about an action kind.
func (k *KnowledgeBase) Effectiveness(kind ActionKind) Effectiveness {
	mv, ok := k.effects[kind]
	if !ok {
		return Effectiveness{}
	}
	return Effectiveness{
		Samples:               mv.Count(),
		MeanWindowImprovement: mv.Mean(),
		StdDev:                mv.StdDev(),
	}
}

// ThrottleEffectiveness returns what has been learned about throttling one
// specific tenant: the window improvement observed after each of that
// tenant's throttles settled. A tenant never throttled (or whose throttles
// never settled) reports zero samples.
func (k *KnowledgeBase) ThrottleEffectiveness(tenantName string) Effectiveness {
	mv, ok := k.tenantThrottle[tenantName]
	if !ok {
		return Effectiveness{}
	}
	return Effectiveness{
		Samples:               mv.Count(),
		MeanWindowImprovement: mv.Mean(),
		StdDev:                mv.StdDev(),
	}
}

// History returns a copy of all completed effect records in application
// order.
func (k *KnowledgeBase) History() []EffectRecord {
	out := make([]EffectRecord, len(k.history))
	copy(out, k.history)
	return out
}

// Applications returns how many actions have been applied (including ones
// whose effect has not settled yet).
func (k *KnowledgeBase) Applications() int {
	n := len(k.history)
	if k.pending != nil {
		n++
	}
	return n
}
