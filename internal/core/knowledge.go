package core

import (
	"time"

	"autonosql/internal/metrics"
)

// EffectRecord is one completed observation of an action's effect: the window
// and latency estimates in the control interval before the action and in the
// interval after it had time to act.
type EffectRecord struct {
	Action        Action
	AppliedAt     time.Duration
	WindowBefore  float64
	WindowAfter   float64
	LatencyBefore float64
	LatencyAfter  float64
}

// WindowImprovement is the relative reduction of the window estimate
// (positive means the action helped).
func (r EffectRecord) WindowImprovement() float64 {
	if r.WindowBefore <= 0 {
		return 0
	}
	return (r.WindowBefore - r.WindowAfter) / r.WindowBefore
}

// Effectiveness summarises what the controller has learned about one action
// kind in the current environment.
type Effectiveness struct {
	// Samples is the number of completed effect observations.
	Samples uint64
	// MeanWindowImprovement is the mean relative window reduction.
	MeanWindowImprovement float64
	// StdDev is the standard deviation of the relative window reduction.
	StdDev float64
}

// Harmful reports whether the action has, on average, made the window worse
// across at least two observations. The planner avoids repeating actions the
// knowledge base has flagged as harmful — this is how "add a replica under
// network congestion made things worse" stops being repeated.
func (e Effectiveness) Harmful() bool {
	return e.Samples >= 2 && e.MeanWindowImprovement < -0.05
}

// KnowledgeBase is the K in MAPE-K: it remembers when each action kind was
// last applied (for cooldown enforcement) and what effect applied actions had
// on the window (for action ranking and post-mortem analysis).
type KnowledgeBase struct {
	lastApplied map[ActionKind]time.Duration
	everApplied map[ActionKind]bool
	effects     map[ActionKind]*metrics.MeanVariance
	history     []EffectRecord

	// pending is the most recently applied action still waiting for its
	// "after" observation.
	pending        *EffectRecord
	pendingSettled time.Duration
}

// NewKnowledgeBase creates an empty knowledge base.
func NewKnowledgeBase() *KnowledgeBase {
	return &KnowledgeBase{
		lastApplied: make(map[ActionKind]time.Duration),
		everApplied: make(map[ActionKind]bool),
		effects:     make(map[ActionKind]*metrics.MeanVariance),
	}
}

// RecordApplied notes that the action was applied at the given time with the
// given pre-action window and latency estimates (seconds). settleTime is how
// long to wait before attributing post-action measurements to the action.
func (k *KnowledgeBase) RecordApplied(a Action, at time.Duration, windowBefore, latencyBefore float64, settleTime time.Duration) {
	k.lastApplied[a.Kind] = at
	k.everApplied[a.Kind] = true
	k.pending = &EffectRecord{
		Action:        a,
		AppliedAt:     at,
		WindowBefore:  windowBefore,
		LatencyBefore: latencyBefore,
	}
	k.pendingSettled = at + settleTime
}

// RecordObservation feeds the current window and latency estimates. If an
// applied action is waiting for its post-action measurement and enough time
// has passed for the action to take effect, the effect record is completed.
func (k *KnowledgeBase) RecordObservation(at time.Duration, window, latency float64) {
	if k.pending == nil || at < k.pendingSettled {
		return
	}
	rec := *k.pending
	rec.WindowAfter = window
	rec.LatencyAfter = latency
	k.pending = nil

	mv, ok := k.effects[rec.Action.Kind]
	if !ok {
		mv = &metrics.MeanVariance{}
		k.effects[rec.Action.Kind] = mv
	}
	mv.Update(rec.WindowImprovement())
	k.history = append(k.history, rec)
}

// LastApplied returns when the action kind was last applied and whether it
// ever was.
func (k *KnowledgeBase) LastApplied(kind ActionKind) (time.Duration, bool) {
	at, ok := k.lastApplied[kind]
	return at, ok
}

// InCooldown reports whether the action kind was applied more recently than
// cooldown before now.
func (k *KnowledgeBase) InCooldown(kind ActionKind, now, cooldown time.Duration) bool {
	at, ok := k.lastApplied[kind]
	if !ok {
		return false
	}
	return now-at < cooldown
}

// Effectiveness returns what has been learned about an action kind.
func (k *KnowledgeBase) Effectiveness(kind ActionKind) Effectiveness {
	mv, ok := k.effects[kind]
	if !ok {
		return Effectiveness{}
	}
	return Effectiveness{
		Samples:               mv.Count(),
		MeanWindowImprovement: mv.Mean(),
		StdDev:                mv.StdDev(),
	}
}

// History returns a copy of all completed effect records in application
// order.
func (k *KnowledgeBase) History() []EffectRecord {
	out := make([]EffectRecord, len(k.history))
	copy(out, k.history)
	return out
}

// Applications returns how many actions have been applied (including ones
// whose effect has not settled yet).
func (k *KnowledgeBase) Applications() int {
	n := len(k.history)
	if k.pending != nil {
		n++
	}
	return n
}
