package core

import (
	"errors"
	"fmt"
	"time"

	"autonosql/internal/monitor"
	"autonosql/internal/sim"
	"autonosql/internal/store"
)

// Decision is the record of one control interval: what the controller saw,
// what it concluded, what it did and whether the actuation succeeded.
type Decision struct {
	At       time.Duration
	Analysis Analysis
	Action   Action
	Applied  bool
	Err      error

	// Plant state after the decision was executed.
	ClusterSize       int
	ReplicationFactor int
	ReadConsistency   store.ConsistencyLevel
	WriteConsistency  store.ConsistencyLevel
	// PinnedClass is the SLA class holding dedicated nodes after execution
	// ("" when none, or when the plant has no TenantActuator).
	PinnedClass string
}

// String renders the decision compactly for logs. In a multi-tenant run the
// line names the tenant whose penalty-weighted signal drove the decision; a
// scoped action additionally names its scope and target (the Action renders
// them), and an active class pin is shown as part of the plant state.
func (d Decision) String() string {
	status := "noop"
	if d.Applied {
		status = "applied"
	} else if d.Err != nil {
		status = "failed: " + d.Err.Error()
	}
	s := fmt.Sprintf("[%8s] %-20s %-9s window=%.0fms util=%.2f nodes=%d cl=%s/%s rf=%d",
		d.At.Truncate(time.Second), d.Action.String(), status,
		d.Analysis.Snapshot.WindowP95*1000, d.Analysis.Snapshot.MeanUtilization,
		d.ClusterSize, d.ReadConsistency, d.WriteConsistency, d.ReplicationFactor)
	if d.PinnedClass != "" {
		s += " pinned=" + d.PinnedClass
	}
	if d.Analysis.Tenant != "" {
		s += fmt.Sprintf(" tenant=%s(%s)", d.Analysis.Tenant, d.Analysis.TenantClass)
		if d.Analysis.GoldViolation {
			s += " gold-violation"
		}
	}
	return s
}

// SnapshotSource supplies periodic monitoring snapshots. *monitor.Monitor
// satisfies it.
type SnapshotSource interface {
	Snapshot() monitor.Snapshot
}

var _ SnapshotSource = (*monitor.Monitor)(nil)

// Controller is the SLA-driven autonomous controller: the paper's
// contribution. Each control interval it analyses the latest monitoring
// snapshot, plans at most one reconfiguration action and executes it through
// the actuator, recording everything it did.
type Controller struct {
	cfg      Config
	actuator Actuator
	analyzer *Analyzer
	planner  *Planner
	kb       *KnowledgeBase

	decisions []Decision
	applied   int
	failed    int
	ticker    *sim.Ticker
	stopped   bool

	// audit, when enabled, records one AuditRecord per Step with the causal
	// inputs behind the decision (driving signal, cooldown consults, vetoes,
	// planning branch). Off by default; enabling it changes no decision.
	audit    bool
	auditLog []AuditRecord
}

// New creates a controller driving the given actuator. Call Attach to run it
// on a simulation engine, or Step to drive it manually (tests, baselines
// comparisons).
func New(cfg Config, actuator Actuator) (*Controller, error) {
	if actuator == nil {
		return nil, errors.New("core: actuator is required")
	}
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	kb := NewKnowledgeBase()
	return &Controller{
		cfg:      cfg,
		actuator: actuator,
		analyzer: NewAnalyzer(cfg),
		planner:  NewPlanner(cfg, kb),
		kb:       kb,
	}, nil
}

// Config returns the controller configuration (with defaults applied).
func (c *Controller) Config() Config { return c.cfg }

// Knowledge returns the controller's knowledge base.
func (c *Controller) Knowledge() *KnowledgeBase { return c.kb }

// Attach starts the MAPE loop on the simulation engine, pulling a snapshot
// from source every control interval.
func (c *Controller) Attach(engine *sim.Engine, source SnapshotSource) error {
	if engine == nil || source == nil {
		return errors.New("core: engine and snapshot source are required")
	}
	if c.ticker != nil {
		return errors.New("core: controller already attached")
	}
	t, err := sim.NewTicker(engine, c.cfg.ControlInterval, func(time.Duration) {
		if c.stopped {
			return
		}
		c.Step(source.Snapshot())
	})
	if err != nil {
		return err
	}
	c.ticker = t
	return nil
}

// Stop halts the control loop.
func (c *Controller) Stop() {
	c.stopped = true
	if c.ticker != nil {
		c.ticker.Stop()
	}
}

// Step runs one MAPE iteration on the given snapshot and returns the
// decision taken.
func (c *Controller) Step(snap monitor.Snapshot) Decision {
	// Monitor + Analyze.
	analysis := c.analyzer.Analyze(snap)
	// Feed the knowledge base so a previously applied action gets its
	// post-action measurement.
	c.kb.RecordObservation(snap.At, snap.WindowP95, snap.WriteLatencyP99)

	// Plan.
	plant := PlantState{
		ClusterSize:       c.actuator.ClusterSize(),
		ReplicationFactor: c.actuator.ReplicationFactor(),
		ReadConsistency:   c.actuator.ReadConsistency(),
		WriteConsistency:  c.actuator.WriteConsistency(),
	}
	if ta, ok := c.actuator.(TenantActuator); ok {
		plant.PinnedClass = ta.PinnedClass()
	}
	var rec *AuditRecord
	if c.audit {
		rec = &AuditRecord{
			At:        snap.At,
			Condition: analysis.Primary.String(),
			Cause:     analysis.Cause.String(),
			Tenant:    analysis.Tenant,
			WindowP95: analysis.Snapshot.WindowP95,
		}
		c.planner.trace = rec
	}
	action := c.planner.Plan(analysis, plant)
	c.planner.trace = nil

	// Execute.
	decision := Decision{At: snap.At, Analysis: analysis, Action: action}
	if !action.IsNoop() {
		err := c.execute(action, plant)
		decision.Err = err
		decision.Applied = err == nil
		if err == nil {
			c.applied++
			// Give membership changes longer to show their effect than pure
			// configuration flips.
			settle := 2 * c.cfg.ControlInterval
			if action.Kind == ActionAddNode || action.Kind == ActionRemoveNode ||
				action.Kind == ActionIncreaseReplication {
				settle = 4 * c.cfg.ControlInterval
			}
			c.kb.RecordApplied(action, snap.At, snap.WindowP95, snap.WriteLatencyP99, settle)
		} else {
			c.failed++
		}
	}

	decision.ClusterSize = c.actuator.ClusterSize()
	decision.ReplicationFactor = c.actuator.ReplicationFactor()
	decision.ReadConsistency = c.actuator.ReadConsistency()
	decision.WriteConsistency = c.actuator.WriteConsistency()
	if ta, ok := c.actuator.(TenantActuator); ok {
		decision.PinnedClass = ta.PinnedClass()
	}
	c.decisions = append(c.decisions, decision)
	if rec != nil {
		rec.Action = action.String()
		rec.Applied = decision.Applied
		if decision.Err != nil {
			rec.Err = decision.Err.Error()
		}
		c.auditLog = append(c.auditLog, *rec)
	}
	return decision
}

// execute applies the planned action through the actuator.
func (c *Controller) execute(a Action, plant PlantState) error {
	switch a.Kind {
	case ActionTightenWriteConsistency:
		next, err := TightenConsistency(plant.WriteConsistency)
		if err != nil {
			return err
		}
		return c.actuator.SetWriteConsistency(next)
	case ActionRelaxWriteConsistency:
		next, err := RelaxConsistency(plant.WriteConsistency)
		if err != nil {
			return err
		}
		return c.actuator.SetWriteConsistency(next)
	case ActionTightenReadConsistency:
		next, err := TightenConsistency(plant.ReadConsistency)
		if err != nil {
			return err
		}
		return c.actuator.SetReadConsistency(next)
	case ActionRelaxReadConsistency:
		next, err := RelaxConsistency(plant.ReadConsistency)
		if err != nil {
			return err
		}
		return c.actuator.SetReadConsistency(next)
	case ActionIncreaseReplication:
		return c.actuator.SetReplicationFactor(plant.ReplicationFactor + 1)
	case ActionDecreaseReplication:
		return c.actuator.SetReplicationFactor(plant.ReplicationFactor - 1)
	case ActionAddNode:
		var firstErr error
		for i := 0; i < a.Steps(); i++ {
			if err := c.actuator.AddNode(); err != nil {
				firstErr = err
				break
			}
		}
		return firstErr
	case ActionRemoveNode:
		var firstErr error
		for i := 0; i < a.Steps(); i++ {
			if err := c.actuator.RemoveNode(); err != nil {
				firstErr = err
				break
			}
		}
		return firstErr
	case ActionThrottleTenant, ActionUnthrottleTenant, ActionPinTenantClass, ActionUnpinTenantClass:
		ta, ok := c.actuator.(TenantActuator)
		if !ok {
			return ErrNoTenantActuator
		}
		switch a.Kind {
		case ActionThrottleTenant:
			return ta.ThrottleTenant(a.Scope.Tenant, a.Rate)
		case ActionUnthrottleTenant:
			return ta.UnthrottleTenant(a.Scope.Tenant)
		case ActionPinTenantClass:
			return ta.PinClass(a.Scope.Class)
		default:
			return ta.UnpinClass()
		}
	default:
		return fmt.Errorf("core: cannot execute action %v", a.Kind)
	}
}

// Decisions returns a copy of every decision taken so far.
func (c *Controller) Decisions() []Decision {
	out := make([]Decision, len(c.decisions))
	copy(out, c.decisions)
	return out
}

// Reconfigurations returns how many actions were successfully applied.
func (c *Controller) Reconfigurations() int { return c.applied }

// FailedActions returns how many planned actions failed to apply.
func (c *Controller) FailedActions() int { return c.failed }

// Converged reports whether the controller has settled: no action was
// applied in the most recent n decisions (n >= 1). It is the convergence
// criterion the stability experiments check.
func (c *Controller) Converged(n int) bool {
	if n < 1 {
		n = 1
	}
	if len(c.decisions) < n {
		return false
	}
	for _, d := range c.decisions[len(c.decisions)-n:] {
		if d.Applied {
			return false
		}
	}
	return true
}
