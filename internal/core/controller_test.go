package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"autonosql/internal/sim"
	"autonosql/internal/sla"
	"autonosql/internal/store"
	"autonosql/internal/workload"
)

func TestNewControllerValidation(t *testing.T) {
	if _, err := New(DefaultConfig(testSLA()), nil); err == nil {
		t.Fatal("nil actuator accepted")
	}
	bad := DefaultConfig(testSLA())
	bad.MinNodes = 10
	bad.MaxNodes = 2
	if _, err := New(bad, newFakeActuator()); err == nil {
		t.Fatal("inconsistent config accepted")
	}
	badSLA := DefaultConfig(sla.SLA{})
	if _, err := New(badSLA, newFakeActuator()); err == nil {
		t.Fatal("empty SLA accepted")
	}
}

func TestControllerStepAppliesWindowAction(t *testing.T) {
	act := newFakeActuator()
	c, err := New(DefaultConfig(testSLA()), act)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	d := c.Step(makeSnapshot(snapshotOpts{
		at: 10 * time.Second, windowP95: 0.5, readP99: 0.005, writeP99: 0.005, meanUtil: 0.2,
	}))
	if !d.Applied || d.Action.Kind != ActionTightenWriteConsistency {
		t.Fatalf("decision %+v, want applied tighten-write-cl", d)
	}
	if act.writeCL != store.Two {
		t.Fatalf("actuator write CL = %v, want TWO", act.writeCL)
	}
	if c.Reconfigurations() != 1 {
		t.Fatalf("Reconfigurations = %d, want 1", c.Reconfigurations())
	}
	if len(c.Decisions()) != 1 {
		t.Fatalf("decision log has %d entries, want 1", len(c.Decisions()))
	}
	if got := d.String(); !strings.Contains(got, "tighten-write-cl") || !strings.Contains(got, "applied") {
		t.Errorf("Decision.String() = %q", got)
	}
}

func TestControllerStepRecordsActuationFailure(t *testing.T) {
	act := newFakeActuator()
	act.failNext = errors.New("provider quota")
	c, err := New(DefaultConfig(testSLA()), act)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	d := c.Step(makeSnapshot(snapshotOpts{
		at: 10 * time.Second, windowP95: 0.5, readP99: 0.01, writeP99: 0.01, meanUtil: 0.9, maxUtil: 0.95,
	}))
	if d.Applied || d.Err == nil {
		t.Fatalf("decision %+v, want failed actuation", d)
	}
	if c.FailedActions() != 1 || c.Reconfigurations() != 0 {
		t.Fatalf("failed=%d applied=%d, want 1 and 0", c.FailedActions(), c.Reconfigurations())
	}
	if got := d.String(); !strings.Contains(got, "failed") {
		t.Errorf("Decision.String() = %q, want failure marker", got)
	}
}

func TestControllerConvergesUnderSteadyCompliantLoad(t *testing.T) {
	act := newFakeActuator()
	c, err := New(DefaultConfig(testSLA()), act)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 1; i <= 20; i++ {
		c.Step(makeSnapshot(snapshotOpts{
			at: time.Duration(i) * 10 * time.Second, windowP95: 0.03,
			readP99: 0.005, writeP99: 0.006, meanUtil: 0.5, opsPerSec: 2000,
		}))
	}
	if c.Reconfigurations() != 0 {
		t.Fatalf("steady compliant load triggered %d reconfigurations", c.Reconfigurations())
	}
	if !c.Converged(10) {
		t.Fatal("controller should report convergence")
	}
}

func TestControllerConvergedRequiresEnoughHistory(t *testing.T) {
	act := newFakeActuator()
	c, err := New(DefaultConfig(testSLA()), act)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if c.Converged(1) {
		t.Fatal("no decisions yet but Converged reported true")
	}
	c.Step(makeSnapshot(snapshotOpts{at: 10 * time.Second, windowP95: 0.5, readP99: 0.005, writeP99: 0.005, meanUtil: 0.2}))
	if c.Converged(0) {
		t.Fatal("a just-applied action should defeat convergence")
	}
}

func TestControllerDoesNotOscillate(t *testing.T) {
	// A window hovering exactly at the SLA boundary must not cause the
	// controller to flip consistency levels back and forth every interval:
	// hysteresis and cooldowns bound the number of reconfigurations.
	act := newFakeActuator()
	cfg := DefaultConfig(testSLA())
	c, err := New(cfg, act)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	window := 0.21 // just above the 200 ms limit
	applied := 0
	for i := 1; i <= 60; i++ {
		// Pretend every applied tightening helps a little, then the window
		// creeps back up — the worst case for oscillation.
		d := c.Step(makeSnapshot(snapshotOpts{
			at: time.Duration(i) * 10 * time.Second, windowP95: window,
			readP99: 0.005, writeP99: 0.006, meanUtil: 0.4,
			writeCL: act.writeCL, readCL: act.readCL,
		}))
		if d.Applied {
			applied++
			window = 0.05
		} else if window < 0.21 {
			window += 0.04
		}
	}
	if applied > 12 {
		t.Fatalf("%d reconfigurations in 10 minutes: controller is oscillating", applied)
	}
}

func TestControllerAttachRunsOnEngine(t *testing.T) {
	rig := newSimRig(t, 21, 3)
	actuator, err := NewSystemActuator(rig.store, rig.cluster)
	if err != nil {
		t.Fatalf("NewSystemActuator: %v", err)
	}
	agreement := sla.SLA{
		MaxWindowP95:       30 * time.Millisecond,
		MaxReadLatencyP99:  50 * time.Millisecond,
		MaxWriteLatencyP99: 60 * time.Millisecond,
		MaxErrorRate:       0.05,
	}
	cfg := DefaultConfig(agreement)
	cfg.ControlInterval = 5 * time.Second
	cfg.ConsistencyCooldown = 10 * time.Second
	ctl, err := New(cfg, actuator)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := ctl.Attach(rig.engine, rig.monitor); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if err := ctl.Attach(rig.engine, rig.monitor); err == nil {
		t.Fatal("double Attach accepted")
	}

	// Drive enough write-heavy load that the default ONE/ONE configuration
	// leaves a measurable window; the controller should react.
	src := sim.NewRandSource(5)
	gen, err := workload.NewGenerator(workload.Config{
		Profile: workload.ConstantProfile{OpsPerSec: 2500},
		Mix:     workload.Mix{ReadFraction: 0.5},
		Keys:    workload.NewUniformKeys(500, src.Stream("keys")),
		Until:   2 * time.Minute,
	}, rig.engine, rig.monitor, src)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	gen.Start()
	if err := rig.engine.Run(2 * time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}

	if len(ctl.Decisions()) < 10 {
		t.Fatalf("controller took only %d decisions in 2 minutes at a 5 s interval", len(ctl.Decisions()))
	}
	ctl.Stop()
	decisionsAfterStop := len(ctl.Decisions())
	if err := rig.engine.Run(rig.engine.Now() + 30*time.Second); err != nil {
		t.Fatalf("Run after stop: %v", err)
	}
	if len(ctl.Decisions()) != decisionsAfterStop {
		t.Fatal("controller kept deciding after Stop")
	}
}

func TestControllerAttachValidation(t *testing.T) {
	c, err := New(DefaultConfig(testSLA()), newFakeActuator())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := c.Attach(nil, nil); err == nil {
		t.Fatal("nil engine and source accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(testSLA())
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.MinNodes = 5; c.MaxNodes = 2 },
		func(c *Config) { c.MinReplication = 4; c.MaxReplication = 2 },
		func(c *Config) { c.MinWriteConsistency = store.All; c.MaxWriteConsistency = store.One },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig(testSLA())
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config validated", i)
		}
	}
}
