package core

import "time"

// Audit trail: every MAPE iteration can record not just what the controller
// decided (the Decision) but *why* — which tenant signal drove the analysis,
// which cooldowns the planner consulted and whether they were active, which
// candidate actions were vetoed and for what reason, and which planning
// branch produced the final action. The trail is append-only, deterministic
// (everything in it derives from the virtual-time control loop) and entirely
// absent unless enabled, so audited and unaudited runs take identical
// decisions.

// CooldownCheck is one knowledge-base cooldown consult made while planning.
type CooldownCheck struct {
	// Kind is the action kind whose cooldown was consulted.
	Kind string `json:"kind"`
	// Scope is the consult's scope ("cluster", "tenant:x" or "class:gold").
	Scope string `json:"scope,omitempty"`
	// Active reports whether the cooldown blocked the candidate.
	Active bool `json:"active"`
}

// Veto is one candidate action the planner considered and rejected.
type Veto struct {
	// Kind is the vetoed action kind.
	Kind string `json:"kind"`
	// Scope is the candidate's scope, when not cluster-wide.
	Scope string `json:"scope,omitempty"`
	// Reason is why the candidate was rejected.
	Reason string `json:"reason"`
}

// AuditRecord is the causal account of one control interval.
type AuditRecord struct {
	// At is the interval's virtual time.
	At time.Duration `json:"at"`
	// Branch is the planning branch that produced the action
	// ("tenant-protection", or the condition branch that dispatched).
	Branch string `json:"branch"`
	// Condition and Cause echo the analysis verdict.
	Condition string `json:"condition"`
	Cause     string `json:"cause,omitempty"`
	// Tenant names the tenant whose penalty-weighted signal drove the
	// analysis ("" in single-tenant runs), and WindowP95 is the driving
	// window observation in seconds.
	Tenant    string  `json:"tenant,omitempty"`
	WindowP95 float64 `json:"window_p95"`
	// Cooldowns lists every knowledge-base cooldown consult, in consult
	// order; Vetoes lists every candidate rejected outside a cooldown.
	Cooldowns []CooldownCheck `json:"cooldowns,omitempty"`
	Vetoes    []Veto          `json:"vetoes,omitempty"`
	// Action, Applied and Err mirror the decision's outcome.
	Action  string `json:"action"`
	Applied bool   `json:"applied"`
	Err     string `json:"err,omitempty"`
}

// noteCooldown records one cooldown consult into the active audit record.
func (p *Planner) noteCooldown(kind ActionKind, scope Scope, active bool) {
	if p.trace == nil {
		return
	}
	p.trace.Cooldowns = append(p.trace.Cooldowns, CooldownCheck{
		Kind:   kind.String(),
		Scope:  scopeLabel(scope),
		Active: active,
	})
}

// noteVeto records one rejected candidate into the active audit record.
func (p *Planner) noteVeto(kind ActionKind, scope Scope, reason string) {
	if p.trace == nil {
		return
	}
	p.trace.Vetoes = append(p.trace.Vetoes, Veto{
		Kind:   kind.String(),
		Scope:  scopeLabel(scope),
		Reason: reason,
	})
}

// noteBranch records which planning branch produced the action.
func (p *Planner) noteBranch(branch string) {
	if p.trace != nil {
		p.trace.Branch = branch
	}
}

// scopeLabel renders a scope for the audit record; cluster scope is omitted.
func scopeLabel(s Scope) string {
	if s == (Scope{}) {
		return ""
	}
	return s.String()
}

// inCooldown is the audited form of kb.InCooldown: the consult and its
// outcome land in the active audit record.
func (p *Planner) inCooldown(kind ActionKind, at, cooldown time.Duration) bool {
	active := p.kb.InCooldown(kind, at, cooldown)
	p.noteCooldown(kind, ClusterScope(), active)
	return active
}

// inCooldownScoped is the audited form of kb.InCooldownScoped.
func (p *Planner) inCooldownScoped(kind ActionKind, scope Scope, at, cooldown time.Duration) bool {
	active := p.kb.InCooldownScoped(kind, scope, at, cooldown)
	p.noteCooldown(kind, scope, active)
	return active
}

// EnableAudit turns on the controller's decision audit trail. Enabling it
// does not change any decision: the trail only observes.
func (c *Controller) EnableAudit() { c.audit = true }

// Audit returns a copy of the audit trail recorded so far (nil when auditing
// was never enabled).
func (c *Controller) Audit() []AuditRecord {
	if len(c.auditLog) == 0 {
		return nil
	}
	out := make([]AuditRecord, len(c.auditLog))
	copy(out, c.auditLog)
	return out
}
