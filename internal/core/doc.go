// Package core implements the paper's primary contribution: an SLA-driven
// autonomous controller that continuously monitors the inconsistency window
// of an eventually-consistent store and reconfigures / re-provisions the
// database cluster to keep the window, latency, availability and cost within
// the application's SLA.
//
// The controller follows the MAPE-K pattern:
//
//   - Monitor: the controller consumes periodic monitor.Snapshot values. It
//     never sees simulator ground truth, so monitoring error propagates into
//     its decisions exactly as it would in a real deployment.
//   - Analyze: the Analyzer classifies the system state (window too high,
//     latency too high, availability low, over-provisioned, nominal) and
//     attributes a likely root cause (CPU saturation, network congestion,
//     loose consistency configuration, excess capacity).
//   - Plan: the Planner selects the single most appropriate reconfiguration
//     action — change read/write consistency level, change the replication
//     factor, add or remove a node — honouring per-action cooldowns,
//     hysteresis bands around the SLA targets and the paper's explicit
//     warning that adding replicas under network congestion only makes the
//     problem worse.
//   - Execute: the Controller applies the action through an Actuator bound to
//     the store and cluster.
//   - Knowledge: the KnowledgeBase records the observed effect of every
//     applied action so the planner can learn which actions actually help in
//     the current environment, and so experiments can audit the decisions.
//
// A LoadPredictor adds the "smart" part of smart auto-scaling: it forecasts
// the offered load one bootstrap-time ahead and provisions capacity before
// the window or latency deteriorates, instead of reacting after the fact.
package core
