package core

import (
	"fmt"
	"sort"
	"time"

	"autonosql/internal/metrics"
	"autonosql/internal/monitor"
	"autonosql/internal/sla"
	"autonosql/internal/tenant"
)

// Condition is the analyzer's classification of the system state relative to
// the SLA and the resource bands.
type Condition int

// Conditions, in decreasing order of urgency.
const (
	// ConditionAvailabilityLow means operations are failing beyond the SLA's
	// error-rate clause.
	ConditionAvailabilityLow Condition = iota + 1
	// ConditionWindowHigh means the inconsistency window estimate is at or
	// beyond the SLA band.
	ConditionWindowHigh
	// ConditionLatencyHigh means read or write latency is at or beyond the
	// SLA band.
	ConditionLatencyHigh
	// ConditionOverProvisioned means every clause is comfortably met and the
	// cluster is mostly idle, so cost can be recovered.
	ConditionOverProvisioned
	// ConditionNominal means no action is warranted.
	ConditionNominal
)

// String implements fmt.Stringer.
func (c Condition) String() string {
	switch c {
	case ConditionAvailabilityLow:
		return "availability-low"
	case ConditionWindowHigh:
		return "window-high"
	case ConditionLatencyHigh:
		return "latency-high"
	case ConditionOverProvisioned:
		return "over-provisioned"
	case ConditionNominal:
		return "nominal"
	default:
		return fmt.Sprintf("condition(%d)", int(c))
	}
}

// Cause is the analyzer's attribution of why the primary condition holds.
// Choosing the right reconfiguration action depends on the cause: the paper's
// example is that adding a replica under network congestion only makes the
// congestion worse.
type Cause int

// Causes.
const (
	// CauseUnknown means the analyzer could not attribute the condition.
	CauseUnknown Cause = iota + 1
	// CauseCPUSaturation means the nodes are the bottleneck.
	CauseCPUSaturation
	// CauseNetworkCongestion means replica propagation is delayed by the
	// network rather than by node queues.
	CauseNetworkCongestion
	// CauseLooseConsistency means the configured consistency level leaves the
	// window unbounded even though resources are fine.
	CauseLooseConsistency
	// CauseExcessCapacity means the cluster is larger or stricter than the
	// workload needs.
	CauseExcessCapacity
)

// String implements fmt.Stringer.
func (c Cause) String() string {
	switch c {
	case CauseUnknown:
		return "unknown"
	case CauseCPUSaturation:
		return "cpu-saturation"
	case CauseNetworkCongestion:
		return "network-congestion"
	case CauseLooseConsistency:
		return "loose-consistency"
	case CauseExcessCapacity:
		return "excess-capacity"
	default:
		return fmt.Sprintf("cause(%d)", int(c))
	}
}

// Analysis is the analyzer's verdict for one control interval.
type Analysis struct {
	// At is the virtual time of the snapshot.
	At time.Duration
	// Snapshot is the monitoring snapshot the analysis is based on.
	Snapshot monitor.Snapshot
	// Headroom is the observed/limit ratio for each SLA clause. In a
	// multi-tenant snapshot it is the driving tenant's headroom against that
	// tenant's own SLA class.
	Headroom sla.Headroom
	// Primary is the most urgent condition detected.
	Primary Condition
	// Cause attributes the primary condition.
	Cause Cause
	// LoadTrend is the estimated change in offered load, in ops/s per second.
	LoadTrend float64
	// ForecastOpsPerSec is the predicted offered load at the prediction
	// horizon.
	ForecastOpsPerSec float64
	// WindowTrusted reports whether the snapshot carried enough window
	// samples for window-driven decisions.
	WindowTrusted bool

	// Tenant names the tenant whose penalty-weighted signal drove this
	// analysis; it is empty for single-tenant snapshots, where the analyzer
	// works from the aggregate estimate.
	Tenant string
	// TenantClass is the driving tenant's SLA class (empty when Tenant is).
	TenantClass string
	// GoldViolation reports whether any gold-class tenant is currently in
	// violation of its own SLA; while it holds, the planner vetoes scale-in
	// and prefers tenant-scoped protection over cluster-wide growth.
	GoldViolation bool

	// ThrottleCandidate names the best admission-control target: the
	// unthrottled non-gold tenant shedding whose load buys the most relief
	// per dollar of contractual penalty. Empty when no such tenant exists.
	ThrottleCandidate string
	// ThrottleCandidateRate is the candidate's observed offered rate in
	// ops/s, the base the planner derives the admission rate from.
	ThrottleCandidateRate float64
	// ThrottleCandidates ranks every eligible throttle target best-first by
	// the same offered-load-per-penalty score that picks ThrottleCandidate
	// (which is always the first entry when any exist). The planner walks the
	// ranking so it can pass over a candidate whose past throttles the
	// knowledge base has learned do nothing.
	ThrottleCandidates []ThrottleTarget
	// Throttled lists the currently throttled tenants in declaration order,
	// with each tenant's admission state, for the planner's escalation and
	// recovery paths.
	Throttled []ThrottledTenant
}

// ThrottleTarget is one eligible admission-control target in the analyzer's
// ranking.
type ThrottleTarget struct {
	// Name identifies the tenant.
	Name string
	// Rate is the tenant's observed offered rate in ops/s.
	Rate float64
}

// ThrottledTenant is one currently throttled tenant's admission state as
// seen by the analyzer.
type ThrottledTenant struct {
	// Name identifies the tenant.
	Name string
	// Rate is the admitted rate in ops/s.
	Rate float64
	// Offered is the tenant's observed offered rate (including shed
	// arrivals) over the interval.
	Offered float64
}

// Binding reports whether the throttle is actively shedding: the tenant
// offers more than the bucket admits. Releasing a binding throttle would
// only re-create the pressure it sheds.
func (t ThrottledTenant) Binding() bool { return t.Offered > t.Rate }

// Analyzer turns monitoring snapshots into Analyses. It keeps a short history
// of load and utilisation so it can estimate trends.
type Analyzer struct {
	cfg       Config
	predictor *LoadPredictor
	util      *metrics.EWMA
}

// NewAnalyzer creates an analyzer for the given controller configuration.
func NewAnalyzer(cfg Config) *Analyzer {
	cfg = cfg.withDefaults()
	return &Analyzer{
		cfg:       cfg,
		predictor: NewLoadPredictor(cfg.PredictorWindow),
		util:      metrics.NewEWMA(0.4),
	}
}

// Analyze classifies one snapshot. For a multi-tenant snapshot the analysis
// is driven by the worst penalty-weighted tenant signal — each tenant's
// observations are ranked against its own SLA class, scaled by its violation
// price — instead of the aggregate estimate, so a gold tenant pushed towards
// its bound by a bronze tenant's burst wins the controller's attention even
// while the aggregate still looks healthy.
func (a *Analyzer) Analyze(snap monitor.Snapshot) Analysis {
	obs := sla.Observation{
		At:              snap.At,
		Interval:        snap.Interval,
		WindowP95:       snap.WindowP95,
		ReadLatencyP99:  snap.ReadLatencyP99,
		WriteLatencyP99: snap.WriteLatencyP99,
		ErrorRate:       snap.ErrorRate,
	}
	agreement := a.cfg.SLA

	an := Analysis{
		At:       snap.At,
		Snapshot: snap,
	}

	// Multi-tenant snapshot: substitute the driving tenant's observations and
	// agreement for the aggregate ones before classification. Throttled
	// tenants never drive the loop — their distress is the shed the
	// controller itself imposed, already priced into their own SLA — unless
	// every tenant is throttled, in which case the worst overall still wins
	// so the analysis reflects reality.
	if len(snap.Tenants) > 0 {
		worst, found := tenant.Signal{}, false
		for _, sig := range snap.Tenants {
			if sig.Throttled {
				continue
			}
			if !found || sig.Urgency() > worst.Urgency() {
				worst, found = sig, true
			}
		}
		if !found {
			worst = snap.Tenants[0]
			for _, sig := range snap.Tenants[1:] {
				if sig.Urgency() > worst.Urgency() {
					worst = sig
				}
			}
		}
		obs.WindowP95 = worst.WindowP95
		obs.ReadLatencyP99 = worst.ReadLatencyP99
		obs.WriteLatencyP99 = worst.WriteLatencyP99
		obs.ErrorRate = worst.ErrorRate
		agreement = worst.SLA
		an.Tenant = worst.Name
		an.TenantClass = string(worst.Class)
		for _, sig := range snap.Tenants {
			if sig.Class == tenant.Gold && sig.InViolation() {
				an.GoldViolation = true
				break
			}
		}
		an.annotateAdmission(snap.Tenants)
	}

	head := agreement.Headroom(obs)

	a.predictor.Observe(snap.At, snap.ObservedOpsPerSec)
	smoothedUtil := a.util.Update(snap.MeanUtilization)

	an.Headroom = head
	an.LoadTrend = a.predictor.TrendPerSecond()
	an.ForecastOpsPerSec = a.predictor.Forecast(snap.At + a.cfg.PredictionHorizon)
	an.WindowTrusted = snap.WindowSamples >= a.cfg.MinWindowSamples

	an.Primary, an.Cause = a.classify(snap, obs, agreement, head, smoothedUtil, an.WindowTrusted)
	return an
}

// annotateAdmission derives the admission-control view of the tenant
// signals: who is already throttled, and which unthrottled non-gold tenant
// is the best next throttle target. The target maximises offered load per
// dollar of penalty — shedding the tenant that contributes the most pressure
// at the least contractual cost — with ties broken by declaration order so
// the choice is deterministic.
func (an *Analysis) annotateAdmission(sigs []tenant.Signal) {
	type scoredTarget struct {
		target ThrottleTarget
		score  float64
	}
	var ranked []scoredTarget
	for _, sig := range sigs {
		if sig.Throttled {
			an.Throttled = append(an.Throttled, ThrottledTenant{
				Name:    sig.Name,
				Rate:    sig.ThrottleRate,
				Offered: sig.OfferedOpsPerSec,
			})
			continue
		}
		if sig.Class == tenant.Gold || sig.OfferedOpsPerSec <= 0 {
			continue
		}
		weight := sig.PenaltyPerMinute
		if weight < 0.01 {
			weight = 0.01
		}
		ranked = append(ranked, scoredTarget{
			target: ThrottleTarget{Name: sig.Name, Rate: sig.OfferedOpsPerSec},
			score:  sig.OfferedOpsPerSec / weight,
		})
	}
	// Rank best-first; the stable sort keeps declaration order as the tie
	// break, so the top entry is exactly the tenant the strictly-greater scan
	// used to pick.
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].score > ranked[j].score })
	for _, r := range ranked {
		an.ThrottleCandidates = append(an.ThrottleCandidates, r.target)
	}
	if len(ranked) > 0 {
		an.ThrottleCandidate = ranked[0].target.Name
		an.ThrottleCandidateRate = ranked[0].target.Rate
	}
}

// classify applies the condition hierarchy: availability first, then the
// window, then latency, then cost recovery. obs and agreement are the
// effective observation and SLA — the aggregate pair for single-tenant
// snapshots, the driving tenant's pair otherwise.
func (a *Analyzer) classify(snap monitor.Snapshot, obs sla.Observation, agreement sla.SLA, head sla.Headroom, smoothedUtil float64, windowTrusted bool) (Condition, Cause) {
	high := a.cfg.HighFraction
	low := a.cfg.LowFraction

	switch {
	case head.Availability > high:
		// Failing operations are almost always a capacity or membership
		// problem; saturation is the default attribution.
		if snap.MaxUtilization >= a.cfg.TargetUtilization {
			return ConditionAvailabilityLow, CauseCPUSaturation
		}
		return ConditionAvailabilityLow, CauseUnknown

	case windowTrusted && head.Window > high:
		return ConditionWindowHigh, a.windowCause(snap, obs, agreement, smoothedUtil)

	case head.ReadLatency > high || head.WriteLatency > high:
		if snap.MaxUtilization >= a.cfg.TargetUtilization || smoothedUtil >= a.cfg.TargetUtilization {
			return ConditionLatencyHigh, CauseCPUSaturation
		}
		// Latency high while nodes are idle: either the network is congested
		// or the configured consistency level forces extra round trips.
		if snap.WriteConsistency > snap.ReadConsistency && head.WriteLatency > head.ReadLatency {
			return ConditionLatencyHigh, CauseLooseConsistency
		}
		return ConditionLatencyHigh, CauseNetworkCongestion

	case head.Window < low && head.ReadLatency < low && head.WriteLatency < low &&
		head.Availability < low && smoothedUtil < a.cfg.LowUtilization:
		return ConditionOverProvisioned, CauseExcessCapacity

	default:
		return ConditionNominal, CauseUnknown
	}
}

// windowCause attributes a too-large inconsistency window.
//
// The heuristic mirrors what an operator would conclude from the same
// signals: if the nodes are busy, replica applies are queueing behind
// foreground work (CPU saturation); if the nodes are idle but the window is
// still large, propagation is delayed in the network; if neither holds, the
// configuration itself (asynchronous replication at CL=ONE) leaves the window
// unbounded and should be tightened.
func (a *Analyzer) windowCause(snap monitor.Snapshot, obs sla.Observation, agreement sla.SLA, smoothedUtil float64) Cause {
	if snap.MaxUtilization >= a.cfg.TargetUtilization || smoothedUtil >= a.cfg.TargetUtilization {
		return CauseCPUSaturation
	}
	if smoothedUtil < a.cfg.TargetUtilization*0.7 {
		// Plenty of CPU headroom yet replicas lag: latency inflation points at
		// the network when writes are slow too, otherwise at loose consistency.
		writeLatencyElevated := agreement.MaxWriteLatencyP99 > 0 &&
			obs.WriteLatencyP99 > 0.5*agreement.MaxWriteLatencyP99.Seconds()
		if writeLatencyElevated {
			return CauseNetworkCongestion
		}
		return CauseLooseConsistency
	}
	return CauseUnknown
}
