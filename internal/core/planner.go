package core

import (
	"fmt"
	"time"

	"autonosql/internal/store"
	"autonosql/internal/tenant"
)

// PlantState is the configuration of the system at planning time, read from
// the actuator.
type PlantState struct {
	ClusterSize       int
	ReplicationFactor int
	ReadConsistency   store.ConsistencyLevel
	WriteConsistency  store.ConsistencyLevel
	// PinnedClass is the SLA class currently holding dedicated nodes, or ""
	// (always "" for plants without a TenantActuator).
	PinnedClass string
}

// Planner turns an Analysis into at most one reconfiguration Action per
// control interval. Acting one step at a time, inside hysteresis bands and
// per-action cooldowns, is what makes the controller converge instead of
// oscillating — the stability concern the paper raises under RQ3.
type Planner struct {
	cfg Config
	kb  *KnowledgeBase

	// trace, when non-nil, is the audit record of the interval currently
	// being planned; the cooldown/veto/branch helpers in audit.go append to
	// it. Nil keeps planning untouched.
	trace *AuditRecord

	// nonBindingSince records, per throttled tenant, when its throttle was
	// first observed no longer binding (offered rate at or below the
	// admitted rate). The unthrottle holdoff runs against this timestamp —
	// the pressure must have been *gone* for the holdoff, not merely the
	// last admission action be old — so a one-interval dip in a burst never
	// releases the throttle. Keys are only ever looked up, never iterated,
	// so the map cannot leak ordering into the simulation.
	nonBindingSince map[string]time.Duration
}

// NewPlanner creates a planner using the given configuration and knowledge
// base. The knowledge base may be shared with the controller's executor.
func NewPlanner(cfg Config, kb *KnowledgeBase) *Planner {
	if kb == nil {
		kb = NewKnowledgeBase()
	}
	return &Planner{cfg: cfg.withDefaults(), kb: kb, nonBindingSince: make(map[string]time.Duration)}
}

// Plan selects the action for this control interval. It returns an
// ActionNone action (with a reason) when no change is warranted or every
// candidate is blocked by a cooldown or bound. Tenant protection — scoped
// admission and placement actions — is considered before the cluster-wide
// condition dispatch: when a gold tenant is in violation, shedding the noisy
// neighbour is tried before paying for more capacity, and when the pressure
// has passed, throttles are released before any other recovery.
func (p *Planner) Plan(an Analysis, plant PlantState) Action {
	if a, ok := p.planTenantProtection(an, plant); ok {
		p.noteBranch("tenant-protection")
		return a
	}
	switch an.Primary {
	case ConditionAvailabilityLow:
		p.noteBranch("availability")
		return p.planAvailability(an, plant)
	case ConditionWindowHigh:
		p.noteBranch("window")
		return p.planWindow(an, plant)
	case ConditionLatencyHigh:
		p.noteBranch("latency")
		return p.planLatency(an, plant)
	case ConditionOverProvisioned:
		p.noteBranch("cost-recovery")
		return p.planCostRecovery(an, plant)
	default:
		p.noteBranch("nominal")
		return p.planNominal(an, plant)
	}
}

// planTenantProtection is the scoped-action branch of the planner. While a
// gold tenant is in violation it escalates, cheapest first:
//
//  1. throttle the best unthrottled non-gold candidate (admission control
//     sheds the noisy neighbour's load before it reaches the store);
//  2. pin the gold class to dedicated nodes (placement isolates what
//     admission alone could not);
//  3. tighten an existing throttle another notch.
//
// Each step is guarded by a per-(kind, scope) cooldown, so protecting the
// cluster from tenant B is never delayed because tenant A was throttled a
// moment ago. On recovery — no gold violation and the driving tenant
// comfortably inside its bounds — throttles are released one per interval
// after a holdoff, then the class pin is lifted.
func (p *Planner) planTenantProtection(an Analysis, plant PlantState) (Action, bool) {
	if len(an.Snapshot.Tenants) == 0 {
		return Action{}, false
	}
	now := an.At
	// Maintain the non-binding clocks on every interval, whichever branch
	// runs below: a binding observation must reset a tenant's clock even
	// while gold pressure keeps the recovery loop from executing, or a
	// stale timestamp from before an interleaved burst would let a later
	// release bypass the holdoff entirely.
	for _, tt := range an.Throttled {
		if tt.Binding() {
			delete(p.nonBindingSince, tt.Name)
		} else if _, seen := p.nonBindingSince[tt.Name]; !seen {
			p.nonBindingSince[tt.Name] = now
		}
	}
	// Protection triggers inside the hysteresis band, not only at the hard
	// violation: the whole controller acts before a limit is reached, and
	// waiting for gold to actually breach would let the latency branch scale
	// out first — the exact action admission control exists to avoid.
	goldPressure := an.GoldViolation ||
		(tenant.Class(an.TenantClass) == tenant.Gold && an.Headroom.MaxRatio() >= p.cfg.HighFraction)
	if goldPressure {
		if p.cfg.EnableAdmissionControl && an.ThrottleCandidate != "" {
			name, offered := p.pickThrottleTarget(an)
			scope := TenantScope(name)
			rate := offered * p.cfg.ThrottleFraction
			if rate < p.cfg.MinThrottleRate {
				rate = p.cfg.MinThrottleRate
			}
			// A floor-clamped rate at or above what the candidate offers
			// would shed nothing: do not burn the control interval (and the
			// per-tenant cooldown) on a throttle that cannot bind — let the
			// escalation continue instead.
			if rate < offered &&
				!p.inCooldownScoped(ActionThrottleTenant, scope, now, p.cfg.ThrottleCooldown) &&
				!p.inCooldownScoped(ActionUnthrottleTenant, scope, now, p.cfg.ThrottleCooldown) {
				return Action{
					Kind:   ActionThrottleTenant,
					Scope:  scope,
					Rate:   rate,
					Reason: "gold tenant at risk; shed the noisy neighbour before scaling",
				}, true
			}
		}
		if p.cfg.EnablePlacementActions && plant.PinnedClass == "" &&
			plant.ClusterSize > plant.ReplicationFactor {
			scope := ClassScope(string(tenant.Gold))
			if !p.inCooldownScoped(ActionPinTenantClass, scope, now, p.cfg.PlacementCooldown) &&
				!p.inCooldownScoped(ActionUnpinTenantClass, scope, now, p.cfg.PlacementCooldown) {
				return Action{
					Kind:   ActionPinTenantClass,
					Scope:  scope,
					Reason: "gold tenant still at risk; dedicate replicas to the gold class",
				}, true
			}
		}
		if p.cfg.EnableAdmissionControl {
			// Tighten an already throttled tenant another notch, floor
			// permitting — but only when the tightened rate would actually
			// bind: squeezing a tenant that already offers less than the new
			// rate sheds nothing, and returning here would pre-empt the
			// cluster-wide action gold actually needs.
			for _, tt := range an.Throttled {
				rate := tt.Rate * p.cfg.ThrottleFraction
				if rate < p.cfg.MinThrottleRate || tt.Offered <= rate {
					continue
				}
				scope := TenantScope(tt.Name)
				if p.inCooldownScoped(ActionThrottleTenant, scope, now, p.cfg.ThrottleCooldown) {
					continue
				}
				return Action{
					Kind:   ActionThrottleTenant,
					Scope:  scope,
					Rate:   rate,
					Reason: "gold tenant still at risk; tighten the throttle",
				}, true
			}
		}
		return Action{}, false
	}

	// Recovery: release scoped protection once the driving tenant is
	// comfortably inside its bounds, throttles first, placement last.
	if an.Headroom.MaxRatio() >= p.cfg.HighFraction {
		return Action{}, false
	}
	if p.cfg.EnableAdmissionControl {
		for _, tt := range an.Throttled {
			// A binding throttle is still shedding an in-progress burst;
			// releasing it would only re-create the pressure (and, with the
			// throttle then in cooldown, push the planner into the scale-out
			// it was avoiding). The holdoff runs against how long the
			// throttle has been continuously non-binding — maintained at the
			// top of this function — so a single-interval dip mid-burst
			// never releases it.
			if tt.Binding() || now-p.nonBindingSince[tt.Name] < p.cfg.UnthrottleHoldoff {
				continue
			}
			scope := TenantScope(tt.Name)
			if p.inCooldownScoped(ActionThrottleTenant, scope, now, p.cfg.UnthrottleHoldoff) ||
				p.inCooldownScoped(ActionUnthrottleTenant, scope, now, p.cfg.UnthrottleHoldoff) {
				continue
			}
			delete(p.nonBindingSince, tt.Name)
			return Action{
				Kind:   ActionUnthrottleTenant,
				Scope:  scope,
				Reason: "pressure passed; release the throttled tenant",
			}, true
		}
	}
	if p.cfg.EnablePlacementActions && plant.PinnedClass != "" && len(an.Throttled) == 0 {
		scope := ClassScope(plant.PinnedClass)
		if !p.inCooldownScoped(ActionPinTenantClass, scope, now, p.cfg.PlacementCooldown) &&
			!p.inCooldownScoped(ActionUnpinTenantClass, scope, now, p.cfg.PlacementCooldown) {
			return Action{
				Kind:   ActionUnpinTenantClass,
				Scope:  scope,
				Reason: "pressure passed; return dedicated nodes to the shared pool",
			}, true
		}
	}
	return Action{}, false
}

// pickThrottleTarget chooses the tenant to throttle from the analyzer's
// pressure-ranked candidates, consulting the knowledge base's per-tenant
// throttle history: a candidate whose past throttles demonstrably bought no
// window improvement is passed over — but only when an alternative exists.
// When every candidate's history is equally useless (or there is only one
// candidate), the raw pressure ranking decides exactly as before, so learning
// can deprioritise a target but never paralyse the protection branch.
func (p *Planner) pickThrottleTarget(an Analysis) (name string, offered float64) {
	name, offered = an.ThrottleCandidate, an.ThrottleCandidateRate
	if len(an.ThrottleCandidates) < 2 {
		return name, offered
	}
	chosen := -1
	for i, cand := range an.ThrottleCandidates {
		if p.kb.ThrottleEffectiveness(cand.Name).Ineffective() {
			continue
		}
		chosen = i
		break
	}
	if chosen <= 0 {
		// Either the top candidate's history is fine (chosen == 0) or every
		// candidate's is bad (chosen == -1): the pressure ranking stands.
		return name, offered
	}
	for _, cand := range an.ThrottleCandidates[:chosen] {
		p.noteVeto(ActionThrottleTenant, TenantScope(cand.Name),
			"knowledge base rates this tenant's throttles ineffective")
	}
	return an.ThrottleCandidates[chosen].Name, an.ThrottleCandidates[chosen].Rate
}

// planAvailability reacts to failing operations: capacity is added if
// possible, otherwise the write consistency level is relaxed so fewer
// replicas must acknowledge each operation.
func (p *Planner) planAvailability(an Analysis, plant PlantState) Action {
	if a, ok := p.tryAddNode(an, plant, "operations failing beyond SLA"); ok {
		return a
	}
	if a, ok := p.tryRelaxWrite(an, plant, "operations failing and cluster cannot grow"); ok {
		return a
	}
	return Action{Kind: ActionNone, Reason: "availability low but no action available"}
}

// planWindow reacts to an inconsistency window at or beyond the SLA band,
// choosing the action by attributed cause.
func (p *Planner) planWindow(an Analysis, plant PlantState) Action {
	switch an.Cause {
	case CauseCPUSaturation:
		// Replica applies are queueing behind foreground work: more nodes
		// shrink per-node queues and with them the window.
		if a, ok := p.tryAddNode(an, plant, "window high, nodes saturated"); ok {
			return a
		}
		if a, ok := p.tryTightenWrite(an, plant, "window high, nodes saturated, cluster at maximum"); ok {
			return a
		}

	case CauseNetworkCongestion:
		// The paper's explicit example of the wrong action: adding a replica
		// (or a node, which triggers rebalance streaming) under network
		// congestion only adds traffic. Tightening the write consistency level
		// bounds the client-visible window without any extra replication
		// traffic.
		if a, ok := p.tryTightenWrite(an, plant, "window high under network congestion"); ok {
			return a
		}
		return Action{Kind: ActionNone, Reason: "window high under congestion; consistency already strict"}

	case CauseLooseConsistency:
		if a, ok := p.tryTightenWrite(an, plant, "window high with idle resources"); ok {
			return a
		}
		if a, ok := p.tryTightenRead(an, plant, "window high, write consistency already strict"); ok {
			return a
		}

	default:
		if an.Snapshot.MeanUtilization >= p.cfg.TargetUtilization {
			if a, ok := p.tryAddNode(an, plant, "window high, utilisation above target"); ok {
				return a
			}
		}
		if a, ok := p.tryTightenWrite(an, plant, "window high"); ok {
			return a
		}
		if a, ok := p.tryAddNode(an, plant, "window high, consistency already strict"); ok {
			return a
		}
	}
	return Action{Kind: ActionNone, Reason: "window high but all actions blocked"}
}

// planLatency reacts to latency at or beyond the SLA band.
func (p *Planner) planLatency(an Analysis, plant PlantState) Action {
	switch an.Cause {
	case CauseCPUSaturation:
		if a, ok := p.tryAddNode(an, plant, "latency high, nodes saturated"); ok {
			return a
		}
	case CauseLooseConsistency:
		// Strict write consistency is inflating latency; relax it only when
		// the window has real headroom, otherwise the cure re-creates the
		// original disease.
		if an.Headroom.Window < p.cfg.LowFraction {
			if a, ok := p.tryRelaxWrite(an, plant, "write latency high, window has headroom"); ok {
				return a
			}
		}
	case CauseNetworkCongestion:
		// More nodes will not help a congested network; wait it out.
		return Action{Kind: ActionNone, Reason: "latency high under network congestion; scaling would add traffic"}
	}
	if a, ok := p.tryAddNode(an, plant, "latency high"); ok {
		return a
	}
	return Action{Kind: ActionNone, Reason: "latency high but all actions blocked"}
}

// planCostRecovery trades comfortable SLA slack for lower cost.
func (p *Planner) planCostRecovery(an Analysis, plant PlantState) Action {
	// Do not scale in if the forecast says the capacity will be needed again
	// within the prediction horizon.
	if p.cfg.EnablePrediction && p.cfg.EnableScaling {
		needed := RequiredNodes(an.ForecastOpsPerSec, p.cfg.NodeCapacityOpsPerSec, p.cfg.TargetUtilization)
		if needed >= plant.ClusterSize {
			return Action{Kind: ActionNone, Reason: "over-provisioned now but forecast needs current capacity"}
		}
	}
	if a, ok := p.tryRemoveNode(an, plant, "cluster over-provisioned"); ok {
		return a
	}
	// With the smallest allowed cluster, relax consistency back towards the
	// configured minimum to recover write latency and availability headroom.
	if plant.WriteConsistency > p.cfg.MinWriteConsistency && an.Headroom.Window < p.cfg.LowFraction/2 {
		if a, ok := p.tryRelaxWrite(an, plant, "window far below SLA at minimum cluster size"); ok {
			return a
		}
	}
	return Action{Kind: ActionNone, Reason: "over-provisioned but scale-in blocked"}
}

// planNominal handles the steady state: the only proactive work is
// prediction-driven scaling ahead of a rising load.
func (p *Planner) planNominal(an Analysis, plant PlantState) Action {
	if !p.cfg.EnablePrediction || !p.cfg.EnableScaling {
		return Action{Kind: ActionNone, Reason: "nominal"}
	}
	if an.LoadTrend <= 0 {
		return Action{Kind: ActionNone, Reason: "nominal"}
	}
	needed := RequiredNodes(an.ForecastOpsPerSec, p.cfg.NodeCapacityOpsPerSec, p.cfg.TargetUtilization)
	if needed > plant.ClusterSize {
		reason := fmt.Sprintf("forecast %.0f ops/s needs %d nodes", an.ForecastOpsPerSec, needed)
		if a, ok := p.tryAddNode(an, plant, reason); ok {
			return a
		}
	}
	return Action{Kind: ActionNone, Reason: "nominal"}
}

// --- candidate helpers -------------------------------------------------------

// candidate wraps the common bound / enable / cooldown / harmfulness checks.
func (p *Planner) candidate(kind ActionKind, an Analysis, enabled bool, cooldownOK bool, reason string) (Action, bool) {
	if !enabled {
		p.noteVeto(kind, ClusterScope(), "action kind disabled by configuration")
		return Action{}, false
	}
	if !cooldownOK {
		return Action{}, false
	}
	if p.kb.Effectiveness(kind).Harmful() {
		p.noteVeto(kind, ClusterScope(), "knowledge base rates the action harmful")
		return Action{}, false
	}
	return Action{Kind: kind, Reason: reason}, true
}

func (p *Planner) tryAddNode(an Analysis, plant PlantState, reason string) (Action, bool) {
	if plant.ClusterSize >= p.cfg.MaxNodes {
		return Action{}, false
	}
	cooldownOK := !p.inCooldown(ActionAddNode, an.At, p.cfg.ScaleOutCooldown)
	a, ok := p.candidate(ActionAddNode, an, p.cfg.EnableScaling, cooldownOK, reason)
	if !ok {
		return a, false
	}
	// Size the step proportionally to the shortfall: enough nodes to bring
	// the larger of the observed and forecast load back to the target
	// utilisation, bounded by the configured maximum.
	demand := an.Snapshot.ObservedOpsPerSec
	if p.cfg.EnablePrediction && an.ForecastOpsPerSec > demand {
		demand = an.ForecastOpsPerSec
	}
	needed := RequiredNodes(demand, p.cfg.NodeCapacityOpsPerSec, p.cfg.TargetUtilization)
	step := needed - plant.ClusterSize
	if step < 1 {
		step = 1
	}
	if plant.ClusterSize+step > p.cfg.MaxNodes {
		step = p.cfg.MaxNodes - plant.ClusterSize
	}
	a.Count = step
	return a, true
}

func (p *Planner) tryRemoveNode(an Analysis, plant PlantState, reason string) (Action, bool) {
	if plant.ClusterSize <= p.cfg.MinNodes || plant.ClusterSize <= plant.ReplicationFactor {
		return Action{}, false
	}
	// A gold tenant in violation vetoes scale-in outright: shrinking the
	// cluster while the premium class is already breaching its SLA trades
	// the most expensive violation minutes for the cheapest node-hours.
	if an.GoldViolation {
		p.noteVeto(ActionRemoveNode, ClusterScope(), "gold tenant in violation vetoes scale-in")
		return Action{}, false
	}
	// Removing a node shortly after adding one is the oscillation the paper
	// warns about; the scale-in cooldown also applies to recent scale-outs.
	cooldownOK := !p.inCooldown(ActionRemoveNode, an.At, p.cfg.ScaleInCooldown) &&
		!p.inCooldown(ActionAddNode, an.At, p.cfg.ScaleInCooldown)
	return p.candidate(ActionRemoveNode, an, p.cfg.EnableScaling, cooldownOK, reason)
}

func (p *Planner) tryTightenWrite(an Analysis, plant PlantState, reason string) (Action, bool) {
	next, err := TightenConsistency(plant.WriteConsistency)
	if err != nil || next > p.cfg.MaxWriteConsistency {
		return Action{}, false
	}
	// Tightening trades write latency for consistency; refuse when write
	// latency is itself near the SLA.
	if an.Headroom.WriteLatency > p.cfg.HighFraction {
		p.noteVeto(ActionTightenWriteConsistency, ClusterScope(), "write latency too close to SLA to tighten")
		return Action{}, false
	}
	cooldownOK := !p.inCooldown(ActionTightenWriteConsistency, an.At, p.cfg.ConsistencyCooldown)
	return p.candidate(ActionTightenWriteConsistency, an, p.cfg.EnableConsistencyActions, cooldownOK, reason)
}

func (p *Planner) tryRelaxWrite(an Analysis, plant PlantState, reason string) (Action, bool) {
	next, err := RelaxConsistency(plant.WriteConsistency)
	if err != nil || next < p.cfg.MinWriteConsistency {
		return Action{}, false
	}
	cooldownOK := !p.inCooldown(ActionRelaxWriteConsistency, an.At, p.cfg.ConsistencyCooldown) &&
		!p.inCooldown(ActionTightenWriteConsistency, an.At, p.cfg.ConsistencyCooldown)
	return p.candidate(ActionRelaxWriteConsistency, an, p.cfg.EnableConsistencyActions, cooldownOK, reason)
}

func (p *Planner) tryTightenRead(an Analysis, plant PlantState, reason string) (Action, bool) {
	if _, err := TightenConsistency(plant.ReadConsistency); err != nil {
		return Action{}, false
	}
	if an.Headroom.ReadLatency > p.cfg.HighFraction {
		p.noteVeto(ActionTightenReadConsistency, ClusterScope(), "read latency too close to SLA to tighten")
		return Action{}, false
	}
	cooldownOK := !p.inCooldown(ActionTightenReadConsistency, an.At, p.cfg.ConsistencyCooldown)
	return p.candidate(ActionTightenReadConsistency, an, p.cfg.EnableConsistencyActions, cooldownOK, reason)
}

// PlanReplication is exposed for completeness and for the ablation
// experiments: when replication actions are enabled, a window persistently
// beyond the SLA with idle resources and strict consistency can be attacked
// by lowering the replication factor (fewer replicas have to converge), and
// durability-driven policies can raise it again. The main planning paths use
// it sparingly because the paper flags replication changes as the most
// expensive reconfiguration.
func (p *Planner) PlanReplication(an Analysis, plant PlantState, raise bool) (Action, bool) {
	if !p.cfg.EnableReplicationActions {
		return Action{}, false
	}
	if raise {
		if plant.ReplicationFactor >= p.cfg.MaxReplication || plant.ReplicationFactor >= plant.ClusterSize {
			return Action{}, false
		}
		// Raising RF under congestion is the paper's canonical wrong action.
		if an.Cause == CauseNetworkCongestion {
			p.noteVeto(ActionIncreaseReplication, ClusterScope(), "network congestion vetoes raising replication")
			return Action{}, false
		}
		cooldownOK := !p.inCooldown(ActionIncreaseReplication, an.At, p.cfg.ReplicationCooldown)
		return p.candidate(ActionIncreaseReplication, an, true, cooldownOK, "raise replication factor")
	}
	if plant.ReplicationFactor <= p.cfg.MinReplication {
		return Action{}, false
	}
	cooldownOK := !p.inCooldown(ActionDecreaseReplication, an.At, p.cfg.ReplicationCooldown)
	return p.candidate(ActionDecreaseReplication, an, true, cooldownOK, "lower replication factor")
}
