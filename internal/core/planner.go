package core

import (
	"fmt"

	"autonosql/internal/store"
)

// PlantState is the configuration of the system at planning time, read from
// the actuator.
type PlantState struct {
	ClusterSize       int
	ReplicationFactor int
	ReadConsistency   store.ConsistencyLevel
	WriteConsistency  store.ConsistencyLevel
}

// Planner turns an Analysis into at most one reconfiguration Action per
// control interval. Acting one step at a time, inside hysteresis bands and
// per-action cooldowns, is what makes the controller converge instead of
// oscillating — the stability concern the paper raises under RQ3.
type Planner struct {
	cfg Config
	kb  *KnowledgeBase
}

// NewPlanner creates a planner using the given configuration and knowledge
// base. The knowledge base may be shared with the controller's executor.
func NewPlanner(cfg Config, kb *KnowledgeBase) *Planner {
	if kb == nil {
		kb = NewKnowledgeBase()
	}
	return &Planner{cfg: cfg.withDefaults(), kb: kb}
}

// Plan selects the action for this control interval. It returns an
// ActionNone action (with a reason) when no change is warranted or every
// candidate is blocked by a cooldown or bound.
func (p *Planner) Plan(an Analysis, plant PlantState) Action {
	switch an.Primary {
	case ConditionAvailabilityLow:
		return p.planAvailability(an, plant)
	case ConditionWindowHigh:
		return p.planWindow(an, plant)
	case ConditionLatencyHigh:
		return p.planLatency(an, plant)
	case ConditionOverProvisioned:
		return p.planCostRecovery(an, plant)
	default:
		return p.planNominal(an, plant)
	}
}

// planAvailability reacts to failing operations: capacity is added if
// possible, otherwise the write consistency level is relaxed so fewer
// replicas must acknowledge each operation.
func (p *Planner) planAvailability(an Analysis, plant PlantState) Action {
	if a, ok := p.tryAddNode(an, plant, "operations failing beyond SLA"); ok {
		return a
	}
	if a, ok := p.tryRelaxWrite(an, plant, "operations failing and cluster cannot grow"); ok {
		return a
	}
	return Action{Kind: ActionNone, Reason: "availability low but no action available"}
}

// planWindow reacts to an inconsistency window at or beyond the SLA band,
// choosing the action by attributed cause.
func (p *Planner) planWindow(an Analysis, plant PlantState) Action {
	switch an.Cause {
	case CauseCPUSaturation:
		// Replica applies are queueing behind foreground work: more nodes
		// shrink per-node queues and with them the window.
		if a, ok := p.tryAddNode(an, plant, "window high, nodes saturated"); ok {
			return a
		}
		if a, ok := p.tryTightenWrite(an, plant, "window high, nodes saturated, cluster at maximum"); ok {
			return a
		}

	case CauseNetworkCongestion:
		// The paper's explicit example of the wrong action: adding a replica
		// (or a node, which triggers rebalance streaming) under network
		// congestion only adds traffic. Tightening the write consistency level
		// bounds the client-visible window without any extra replication
		// traffic.
		if a, ok := p.tryTightenWrite(an, plant, "window high under network congestion"); ok {
			return a
		}
		return Action{Kind: ActionNone, Reason: "window high under congestion; consistency already strict"}

	case CauseLooseConsistency:
		if a, ok := p.tryTightenWrite(an, plant, "window high with idle resources"); ok {
			return a
		}
		if a, ok := p.tryTightenRead(an, plant, "window high, write consistency already strict"); ok {
			return a
		}

	default:
		if an.Snapshot.MeanUtilization >= p.cfg.TargetUtilization {
			if a, ok := p.tryAddNode(an, plant, "window high, utilisation above target"); ok {
				return a
			}
		}
		if a, ok := p.tryTightenWrite(an, plant, "window high"); ok {
			return a
		}
		if a, ok := p.tryAddNode(an, plant, "window high, consistency already strict"); ok {
			return a
		}
	}
	return Action{Kind: ActionNone, Reason: "window high but all actions blocked"}
}

// planLatency reacts to latency at or beyond the SLA band.
func (p *Planner) planLatency(an Analysis, plant PlantState) Action {
	switch an.Cause {
	case CauseCPUSaturation:
		if a, ok := p.tryAddNode(an, plant, "latency high, nodes saturated"); ok {
			return a
		}
	case CauseLooseConsistency:
		// Strict write consistency is inflating latency; relax it only when
		// the window has real headroom, otherwise the cure re-creates the
		// original disease.
		if an.Headroom.Window < p.cfg.LowFraction {
			if a, ok := p.tryRelaxWrite(an, plant, "write latency high, window has headroom"); ok {
				return a
			}
		}
	case CauseNetworkCongestion:
		// More nodes will not help a congested network; wait it out.
		return Action{Kind: ActionNone, Reason: "latency high under network congestion; scaling would add traffic"}
	}
	if a, ok := p.tryAddNode(an, plant, "latency high"); ok {
		return a
	}
	return Action{Kind: ActionNone, Reason: "latency high but all actions blocked"}
}

// planCostRecovery trades comfortable SLA slack for lower cost.
func (p *Planner) planCostRecovery(an Analysis, plant PlantState) Action {
	// Do not scale in if the forecast says the capacity will be needed again
	// within the prediction horizon.
	if p.cfg.EnablePrediction && p.cfg.EnableScaling {
		needed := RequiredNodes(an.ForecastOpsPerSec, p.cfg.NodeCapacityOpsPerSec, p.cfg.TargetUtilization)
		if needed >= plant.ClusterSize {
			return Action{Kind: ActionNone, Reason: "over-provisioned now but forecast needs current capacity"}
		}
	}
	if a, ok := p.tryRemoveNode(an, plant, "cluster over-provisioned"); ok {
		return a
	}
	// With the smallest allowed cluster, relax consistency back towards the
	// configured minimum to recover write latency and availability headroom.
	if plant.WriteConsistency > p.cfg.MinWriteConsistency && an.Headroom.Window < p.cfg.LowFraction/2 {
		if a, ok := p.tryRelaxWrite(an, plant, "window far below SLA at minimum cluster size"); ok {
			return a
		}
	}
	return Action{Kind: ActionNone, Reason: "over-provisioned but scale-in blocked"}
}

// planNominal handles the steady state: the only proactive work is
// prediction-driven scaling ahead of a rising load.
func (p *Planner) planNominal(an Analysis, plant PlantState) Action {
	if !p.cfg.EnablePrediction || !p.cfg.EnableScaling {
		return Action{Kind: ActionNone, Reason: "nominal"}
	}
	if an.LoadTrend <= 0 {
		return Action{Kind: ActionNone, Reason: "nominal"}
	}
	needed := RequiredNodes(an.ForecastOpsPerSec, p.cfg.NodeCapacityOpsPerSec, p.cfg.TargetUtilization)
	if needed > plant.ClusterSize {
		reason := fmt.Sprintf("forecast %.0f ops/s needs %d nodes", an.ForecastOpsPerSec, needed)
		if a, ok := p.tryAddNode(an, plant, reason); ok {
			return a
		}
	}
	return Action{Kind: ActionNone, Reason: "nominal"}
}

// --- candidate helpers -------------------------------------------------------

// candidate wraps the common bound / enable / cooldown / harmfulness checks.
func (p *Planner) candidate(kind ActionKind, an Analysis, enabled bool, cooldownOK bool, reason string) (Action, bool) {
	if !enabled || !cooldownOK {
		return Action{}, false
	}
	if p.kb.Effectiveness(kind).Harmful() {
		return Action{}, false
	}
	return Action{Kind: kind, Reason: reason}, true
}

func (p *Planner) tryAddNode(an Analysis, plant PlantState, reason string) (Action, bool) {
	if plant.ClusterSize >= p.cfg.MaxNodes {
		return Action{}, false
	}
	cooldownOK := !p.kb.InCooldown(ActionAddNode, an.At, p.cfg.ScaleOutCooldown)
	a, ok := p.candidate(ActionAddNode, an, p.cfg.EnableScaling, cooldownOK, reason)
	if !ok {
		return a, false
	}
	// Size the step proportionally to the shortfall: enough nodes to bring
	// the larger of the observed and forecast load back to the target
	// utilisation, bounded by the configured maximum.
	demand := an.Snapshot.ObservedOpsPerSec
	if p.cfg.EnablePrediction && an.ForecastOpsPerSec > demand {
		demand = an.ForecastOpsPerSec
	}
	needed := RequiredNodes(demand, p.cfg.NodeCapacityOpsPerSec, p.cfg.TargetUtilization)
	step := needed - plant.ClusterSize
	if step < 1 {
		step = 1
	}
	if plant.ClusterSize+step > p.cfg.MaxNodes {
		step = p.cfg.MaxNodes - plant.ClusterSize
	}
	a.Count = step
	return a, true
}

func (p *Planner) tryRemoveNode(an Analysis, plant PlantState, reason string) (Action, bool) {
	if plant.ClusterSize <= p.cfg.MinNodes || plant.ClusterSize <= plant.ReplicationFactor {
		return Action{}, false
	}
	// A gold tenant in violation vetoes scale-in outright: shrinking the
	// cluster while the premium class is already breaching its SLA trades
	// the most expensive violation minutes for the cheapest node-hours.
	if an.GoldViolation {
		return Action{}, false
	}
	// Removing a node shortly after adding one is the oscillation the paper
	// warns about; the scale-in cooldown also applies to recent scale-outs.
	cooldownOK := !p.kb.InCooldown(ActionRemoveNode, an.At, p.cfg.ScaleInCooldown) &&
		!p.kb.InCooldown(ActionAddNode, an.At, p.cfg.ScaleInCooldown)
	return p.candidate(ActionRemoveNode, an, p.cfg.EnableScaling, cooldownOK, reason)
}

func (p *Planner) tryTightenWrite(an Analysis, plant PlantState, reason string) (Action, bool) {
	next, err := TightenConsistency(plant.WriteConsistency)
	if err != nil || next > p.cfg.MaxWriteConsistency {
		return Action{}, false
	}
	// Tightening trades write latency for consistency; refuse when write
	// latency is itself near the SLA.
	if an.Headroom.WriteLatency > p.cfg.HighFraction {
		return Action{}, false
	}
	cooldownOK := !p.kb.InCooldown(ActionTightenWriteConsistency, an.At, p.cfg.ConsistencyCooldown)
	return p.candidate(ActionTightenWriteConsistency, an, p.cfg.EnableConsistencyActions, cooldownOK, reason)
}

func (p *Planner) tryRelaxWrite(an Analysis, plant PlantState, reason string) (Action, bool) {
	next, err := RelaxConsistency(plant.WriteConsistency)
	if err != nil || next < p.cfg.MinWriteConsistency {
		return Action{}, false
	}
	cooldownOK := !p.kb.InCooldown(ActionRelaxWriteConsistency, an.At, p.cfg.ConsistencyCooldown) &&
		!p.kb.InCooldown(ActionTightenWriteConsistency, an.At, p.cfg.ConsistencyCooldown)
	return p.candidate(ActionRelaxWriteConsistency, an, p.cfg.EnableConsistencyActions, cooldownOK, reason)
}

func (p *Planner) tryTightenRead(an Analysis, plant PlantState, reason string) (Action, bool) {
	if _, err := TightenConsistency(plant.ReadConsistency); err != nil {
		return Action{}, false
	}
	if an.Headroom.ReadLatency > p.cfg.HighFraction {
		return Action{}, false
	}
	cooldownOK := !p.kb.InCooldown(ActionTightenReadConsistency, an.At, p.cfg.ConsistencyCooldown)
	return p.candidate(ActionTightenReadConsistency, an, p.cfg.EnableConsistencyActions, cooldownOK, reason)
}

// PlanReplication is exposed for completeness and for the ablation
// experiments: when replication actions are enabled, a window persistently
// beyond the SLA with idle resources and strict consistency can be attacked
// by lowering the replication factor (fewer replicas have to converge), and
// durability-driven policies can raise it again. The main planning paths use
// it sparingly because the paper flags replication changes as the most
// expensive reconfiguration.
func (p *Planner) PlanReplication(an Analysis, plant PlantState, raise bool) (Action, bool) {
	if !p.cfg.EnableReplicationActions {
		return Action{}, false
	}
	if raise {
		if plant.ReplicationFactor >= p.cfg.MaxReplication || plant.ReplicationFactor >= plant.ClusterSize {
			return Action{}, false
		}
		// Raising RF under congestion is the paper's canonical wrong action.
		if an.Cause == CauseNetworkCongestion {
			return Action{}, false
		}
		cooldownOK := !p.kb.InCooldown(ActionIncreaseReplication, an.At, p.cfg.ReplicationCooldown)
		return p.candidate(ActionIncreaseReplication, an, true, cooldownOK, "raise replication factor")
	}
	if plant.ReplicationFactor <= p.cfg.MinReplication {
		return Action{}, false
	}
	cooldownOK := !p.kb.InCooldown(ActionDecreaseReplication, an.At, p.cfg.ReplicationCooldown)
	return p.candidate(ActionDecreaseReplication, an, true, cooldownOK, "lower replication factor")
}
