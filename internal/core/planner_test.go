package core

import (
	"testing"
	"time"

	"autonosql/internal/store"
)

func defaultPlant() PlantState {
	return PlantState{ClusterSize: 3, ReplicationFactor: 3, ReadConsistency: store.One, WriteConsistency: store.One}
}

// analyze is a shortcut that runs a fresh analyzer over a single snapshot so
// planner tests exercise the same classification path the controller uses.
func analyze(cfg Config, o snapshotOpts) Analysis {
	return NewAnalyzer(cfg).Analyze(makeSnapshot(o))
}

func TestPlannerNominalDoesNothing(t *testing.T) {
	cfg := DefaultConfig(testSLA())
	p := NewPlanner(cfg, nil)
	an := analyze(cfg, snapshotOpts{at: 10 * time.Second, windowP95: 0.02, readP99: 0.005, writeP99: 0.005, meanUtil: 0.5})
	if a := p.Plan(an, defaultPlant()); !a.IsNoop() {
		t.Fatalf("nominal state planned %v", a)
	}
}

func TestPlannerWindowHighSaturationAddsNode(t *testing.T) {
	cfg := DefaultConfig(testSLA())
	p := NewPlanner(cfg, nil)
	an := analyze(cfg, snapshotOpts{at: 10 * time.Second, windowP95: 0.5, readP99: 0.01, writeP99: 0.01, meanUtil: 0.9, maxUtil: 0.95})
	a := p.Plan(an, defaultPlant())
	if a.Kind != ActionAddNode {
		t.Fatalf("planned %v, want add-node", a)
	}
}

func TestPlannerWindowHighSaturationAtMaxNodesTightensConsistency(t *testing.T) {
	cfg := DefaultConfig(testSLA())
	cfg.MaxNodes = 3
	p := NewPlanner(cfg, nil)
	an := analyze(cfg, snapshotOpts{at: 10 * time.Second, windowP95: 0.5, readP99: 0.01, writeP99: 0.01, meanUtil: 0.9, maxUtil: 0.95})
	a := p.Plan(an, defaultPlant())
	if a.Kind != ActionTightenWriteConsistency {
		t.Fatalf("planned %v, want tighten-write-cl when the cluster cannot grow", a)
	}
}

func TestPlannerWindowHighCongestionAvoidsScaling(t *testing.T) {
	// The paper's canonical wrong action: growing the cluster (or the
	// replication factor) under network congestion. The planner must pick a
	// consistency-level change instead.
	cfg := DefaultConfig(testSLA())
	p := NewPlanner(cfg, nil)
	an := analyze(cfg, snapshotOpts{at: 10 * time.Second, windowP95: 0.5, readP99: 0.01, writeP99: 0.02, meanUtil: 0.2})
	if an.Cause != CauseNetworkCongestion {
		t.Fatalf("precondition: cause = %v, want network-congestion", an.Cause)
	}
	a := p.Plan(an, defaultPlant())
	if a.Kind == ActionAddNode || a.Kind == ActionIncreaseReplication {
		t.Fatalf("planner chose %v under network congestion", a)
	}
	if a.Kind != ActionTightenWriteConsistency {
		t.Fatalf("planned %v, want tighten-write-cl", a)
	}
}

func TestPlannerWindowHighCongestionStrictConsistencyNoops(t *testing.T) {
	cfg := DefaultConfig(testSLA())
	p := NewPlanner(cfg, nil)
	an := analyze(cfg, snapshotOpts{at: 10 * time.Second, windowP95: 0.5, readP99: 0.01, writeP99: 0.02, meanUtil: 0.2, writeCL: store.All})
	plant := defaultPlant()
	plant.WriteConsistency = store.All
	a := p.Plan(an, plant)
	if !a.IsNoop() {
		t.Fatalf("with ALL consistency under congestion the planner should wait, planned %v", a)
	}
}

func TestPlannerWindowHighLooseConsistencyTightens(t *testing.T) {
	cfg := DefaultConfig(testSLA())
	p := NewPlanner(cfg, nil)
	an := analyze(cfg, snapshotOpts{at: 10 * time.Second, windowP95: 0.5, readP99: 0.005, writeP99: 0.005, meanUtil: 0.2})
	a := p.Plan(an, defaultPlant())
	if a.Kind != ActionTightenWriteConsistency {
		t.Fatalf("planned %v, want tighten-write-cl", a)
	}
}

func TestPlannerTightenRefusedWhenWriteLatencyNearSLA(t *testing.T) {
	cfg := DefaultConfig(testSLA())
	p := NewPlanner(cfg, nil)
	// Window high with idle CPU, but write latency is already at 97% of its
	// limit: tightening would trade one violation for another.
	an := analyze(cfg, snapshotOpts{at: 10 * time.Second, windowP95: 0.5, readP99: 0.005, writeP99: 0.029, meanUtil: 0.2})
	a := p.Plan(an, defaultPlant())
	if a.Kind == ActionTightenWriteConsistency {
		t.Fatalf("tightened write consistency with write latency at the SLA edge")
	}
}

func TestPlannerAvailabilityAddsNode(t *testing.T) {
	cfg := DefaultConfig(testSLA())
	p := NewPlanner(cfg, nil)
	an := analyze(cfg, snapshotOpts{at: 10 * time.Second, windowP95: 0.1, readP99: 0.01, writeP99: 0.01, errorRate: 0.2, meanUtil: 0.9})
	a := p.Plan(an, defaultPlant())
	if a.Kind != ActionAddNode {
		t.Fatalf("planned %v, want add-node for availability", a)
	}
}

func TestPlannerAvailabilityAtMaxRelaxesWrites(t *testing.T) {
	cfg := DefaultConfig(testSLA())
	cfg.MaxNodes = 3
	p := NewPlanner(cfg, nil)
	an := analyze(cfg, snapshotOpts{at: 10 * time.Second, windowP95: 0.1, readP99: 0.01, writeP99: 0.01, errorRate: 0.2, meanUtil: 0.9, writeCL: store.Quorum})
	plant := defaultPlant()
	plant.WriteConsistency = store.Quorum
	a := p.Plan(an, plant)
	if a.Kind != ActionRelaxWriteConsistency {
		t.Fatalf("planned %v, want relax-write-cl when the cluster cannot grow", a)
	}
}

func TestPlannerLatencyHighFromStrictConsistencyRelaxes(t *testing.T) {
	cfg := DefaultConfig(testSLA())
	p := NewPlanner(cfg, nil)
	an := analyze(cfg, snapshotOpts{at: 10 * time.Second, windowP95: 0.01, readP99: 0.002, writeP99: 0.05, meanUtil: 0.2, writeCL: store.All})
	plant := defaultPlant()
	plant.WriteConsistency = store.All
	a := p.Plan(an, plant)
	if a.Kind != ActionRelaxWriteConsistency {
		t.Fatalf("planned %v, want relax-write-cl", a)
	}
}

func TestPlannerLatencyHighCongestionWaits(t *testing.T) {
	cfg := DefaultConfig(testSLA())
	p := NewPlanner(cfg, nil)
	an := analyze(cfg, snapshotOpts{at: 10 * time.Second, windowP95: 0.01, readP99: 0.05, writeP99: 0.05, meanUtil: 0.2})
	if an.Cause != CauseNetworkCongestion {
		t.Fatalf("precondition: cause = %v", an.Cause)
	}
	a := p.Plan(an, defaultPlant())
	if !a.IsNoop() {
		t.Fatalf("planned %v under congested network, want none", a)
	}
}

func TestPlannerOverProvisionedRemovesNode(t *testing.T) {
	cfg := DefaultConfig(testSLA())
	cfg.EnablePrediction = false
	p := NewPlanner(cfg, nil)
	an := analyze(cfg, snapshotOpts{at: 10 * time.Second, windowP95: 0.005, readP99: 0.001, writeP99: 0.001, meanUtil: 0.1, clusterSize: 8})
	plant := PlantState{ClusterSize: 8, ReplicationFactor: 3, ReadConsistency: store.One, WriteConsistency: store.One}
	a := p.Plan(an, plant)
	if a.Kind != ActionRemoveNode {
		t.Fatalf("planned %v, want remove-node", a)
	}
}

func TestPlannerOverProvisionedRespectsMinNodesAndRF(t *testing.T) {
	cfg := DefaultConfig(testSLA())
	cfg.EnablePrediction = false
	cfg.MinNodes = 3
	p := NewPlanner(cfg, nil)
	an := analyze(cfg, snapshotOpts{at: 10 * time.Second, windowP95: 0.005, readP99: 0.001, writeP99: 0.001, meanUtil: 0.1})
	a := p.Plan(an, defaultPlant()) // 3 nodes, RF 3
	if a.Kind == ActionRemoveNode {
		t.Fatal("removed a node at the minimum cluster size")
	}
}

func TestPlannerOverProvisionedKeepsCapacityForForecast(t *testing.T) {
	cfg := DefaultConfig(testSLA())
	cfg.NodeCapacityOpsPerSec = 1000
	kb := NewKnowledgeBase()
	p := NewPlanner(cfg, kb)
	analyzer := NewAnalyzer(cfg)
	// Feed a rising load history so the forecast stays high even though the
	// instantaneous utilisation is low.
	var an Analysis
	for i := 1; i <= 10; i++ {
		an = analyzer.Analyze(makeSnapshot(snapshotOpts{
			at: time.Duration(i) * 10 * time.Second, windowP95: 0.005,
			readP99: 0.001, writeP99: 0.001, meanUtil: 0.1,
			opsPerSec: float64(i) * 600, clusterSize: 8,
		}))
	}
	if an.Primary != ConditionOverProvisioned {
		t.Fatalf("precondition: primary = %v", an.Primary)
	}
	plant := PlantState{ClusterSize: 8, ReplicationFactor: 3, ReadConsistency: store.One, WriteConsistency: store.One}
	a := p.Plan(an, plant)
	if a.Kind == ActionRemoveNode {
		t.Fatal("scaled in despite a forecast that needs the capacity")
	}
}

func TestPlannerPredictiveScaleOut(t *testing.T) {
	cfg := DefaultConfig(testSLA())
	cfg.NodeCapacityOpsPerSec = 1000
	p := NewPlanner(cfg, nil)
	analyzer := NewAnalyzer(cfg)
	var an Analysis
	for i := 1; i <= 12; i++ {
		an = analyzer.Analyze(makeSnapshot(snapshotOpts{
			at: time.Duration(i) * 10 * time.Second, windowP95: 0.02,
			readP99: 0.005, writeP99: 0.005, meanUtil: 0.55,
			opsPerSec: 1500 + float64(i)*150,
		}))
	}
	if an.Primary != ConditionNominal {
		t.Fatalf("precondition: primary = %v, want nominal", an.Primary)
	}
	a := p.Plan(an, defaultPlant())
	if a.Kind != ActionAddNode {
		t.Fatalf("planned %v, want predictive add-node", a)
	}

	// With prediction disabled the same state plans nothing.
	cfgNoPred := cfg
	cfgNoPred.EnablePrediction = false
	p2 := NewPlanner(cfgNoPred, nil)
	if a2 := p2.Plan(an, defaultPlant()); !a2.IsNoop() {
		t.Fatalf("prediction disabled but planned %v", a2)
	}
}

func TestPlannerCooldownBlocksRepeatedScaleOut(t *testing.T) {
	cfg := DefaultConfig(testSLA())
	kb := NewKnowledgeBase()
	p := NewPlanner(cfg, kb)
	an := analyze(cfg, snapshotOpts{at: 100 * time.Second, windowP95: 0.5, readP99: 0.01, writeP99: 0.01, meanUtil: 0.9, maxUtil: 0.95})
	a := p.Plan(an, defaultPlant())
	if a.Kind != ActionAddNode {
		t.Fatalf("first plan = %v, want add-node", a)
	}
	kb.RecordApplied(a, an.At, an.Snapshot.WindowP95, an.Snapshot.WriteLatencyP99, time.Minute)

	// Same situation 10 s later: the scale-out cooldown (90 s) blocks another
	// node addition; the planner falls back to tightening consistency.
	an2 := analyze(cfg, snapshotOpts{at: 110 * time.Second, windowP95: 0.5, readP99: 0.01, writeP99: 0.01, meanUtil: 0.9, maxUtil: 0.95})
	a2 := p.Plan(an2, PlantState{ClusterSize: 4, ReplicationFactor: 3, ReadConsistency: store.One, WriteConsistency: store.One})
	if a2.Kind == ActionAddNode {
		t.Fatal("scale-out cooldown not enforced")
	}
}

func TestPlannerSkipsHarmfulAction(t *testing.T) {
	cfg := DefaultConfig(testSLA())
	kb := NewKnowledgeBase()
	// Teach the knowledge base that tightening write consistency made the
	// window worse twice (e.g. because coordinator queues exploded).
	for i := 0; i < 2; i++ {
		at := time.Duration(i+1) * 10 * time.Minute
		kb.RecordApplied(Action{Kind: ActionTightenWriteConsistency}, at, 0.1, 0.01, time.Minute)
		kb.RecordObservation(at+2*time.Minute, 0.4, 0.02)
	}
	p := NewPlanner(cfg, kb)
	an := analyze(cfg, snapshotOpts{at: time.Hour, windowP95: 0.5, readP99: 0.005, writeP99: 0.005, meanUtil: 0.2})
	a := p.Plan(an, defaultPlant())
	if a.Kind == ActionTightenWriteConsistency {
		t.Fatal("planner repeated an action the knowledge base marked harmful")
	}
}

func TestPlannerScalingDisabled(t *testing.T) {
	cfg := DefaultConfig(testSLA())
	cfg.EnableScaling = false
	p := NewPlanner(cfg, nil)
	an := analyze(cfg, snapshotOpts{at: 10 * time.Second, windowP95: 0.5, readP99: 0.01, writeP99: 0.01, meanUtil: 0.9, maxUtil: 0.95})
	a := p.Plan(an, defaultPlant())
	if a.Kind == ActionAddNode || a.Kind == ActionRemoveNode {
		t.Fatalf("scaling disabled but planned %v", a)
	}
}

func TestPlannerConsistencyActionsDisabled(t *testing.T) {
	cfg := DefaultConfig(testSLA())
	cfg.EnableConsistencyActions = false
	p := NewPlanner(cfg, nil)
	an := analyze(cfg, snapshotOpts{at: 10 * time.Second, windowP95: 0.5, readP99: 0.005, writeP99: 0.005, meanUtil: 0.2})
	a := p.Plan(an, defaultPlant())
	if a.Kind == ActionTightenWriteConsistency || a.Kind == ActionRelaxWriteConsistency {
		t.Fatalf("consistency actions disabled but planned %v", a)
	}
}

func TestPlanReplication(t *testing.T) {
	cfg := DefaultConfig(testSLA())
	cfg.EnableReplicationActions = true
	p := NewPlanner(cfg, nil)
	an := analyze(cfg, snapshotOpts{at: 10 * time.Second, windowP95: 0.02, readP99: 0.005, writeP99: 0.005, meanUtil: 0.5, clusterSize: 6})
	plant := PlantState{ClusterSize: 6, ReplicationFactor: 3, ReadConsistency: store.One, WriteConsistency: store.One}

	if a, ok := p.PlanReplication(an, plant, true); !ok || a.Kind != ActionIncreaseReplication {
		t.Fatalf("raise replication = %v, %v", a, ok)
	}
	if a, ok := p.PlanReplication(an, plant, false); !ok || a.Kind != ActionDecreaseReplication {
		t.Fatalf("lower replication = %v, %v", a, ok)
	}

	// RF cannot exceed the cluster size or the configured maximum.
	plantSmall := PlantState{ClusterSize: 3, ReplicationFactor: 3}
	if _, ok := p.PlanReplication(an, plantSmall, true); ok {
		t.Fatal("raised RF beyond the cluster size")
	}
	plantMin := PlantState{ClusterSize: 6, ReplicationFactor: cfg.MinReplication}
	if _, ok := p.PlanReplication(an, plantMin, false); ok {
		t.Fatal("lowered RF below the minimum")
	}

	// Raising RF under congestion is refused.
	anCong := analyze(cfg, snapshotOpts{at: 20 * time.Second, windowP95: 0.5, readP99: 0.01, writeP99: 0.02, meanUtil: 0.2, clusterSize: 6})
	if anCong.Cause != CauseNetworkCongestion {
		t.Fatalf("precondition: cause = %v", anCong.Cause)
	}
	if _, ok := p.PlanReplication(anCong, plant, true); ok {
		t.Fatal("raised RF under network congestion")
	}

	// Disabled replication actions plan nothing.
	cfgOff := DefaultConfig(testSLA())
	pOff := NewPlanner(cfgOff, nil)
	if _, ok := pOff.PlanReplication(an, plant, true); ok {
		t.Fatal("replication actions disabled but planned one")
	}
}
