package sim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrDeterminism is returned by ShardedEngine.Run when a cross-lane message
// would fire in its receiver's past. It indicates a mis-structured lane
// topology (the sender's lead does not exceed the receiver's), never
// scheduling luck: whether it trips is a pure function of the simulated
// computation.
var ErrDeterminism = errors.New("sim: cross-lane message would fire in the receiver's past")

// laneSeqShift positions the lane id in the high bits of every event sequence
// number. Each lane's engine starts its seq counter at id<<laneSeqShift, so
// the (at, seq) total order every heap already pops in becomes a global
// (at, lane, per-lane seq) order: when a drained message ties on virtual time
// with a receiver-local event, the tie is broken by lane id and then by the
// sender's own scheduling order — a pure function of the computation,
// independent of epoch length, worker count and goroutine scheduling. Lane 0
// keeps base 0, so a single-lane engine is bit-for-bit the plain Engine.
const laneSeqShift = 48

// maxLanes bounds the lane count so lane ids cannot collide in the seq high
// bits and per-lane counters keep 2^48 sequence numbers of headroom.
const maxLanes = 1 << (64 - laneSeqShift)

// mailMsg is one cross-lane message waiting in a mailbox: the virtual time
// it belongs to, the sequence number its sender claimed for it (Send/SendAt
// only), and the ArgHandler payload. A handoff message is not an event — the
// drain invokes its handler at the barrier instead of pushing it into the
// receiver's heap.
type mailMsg struct {
	at      time.Duration
	seq     uint64
	h       ArgHandler
	arg     any
	handoff bool
}

// BarrierTask is auxiliary work a lane runs at the start of each of its
// windows, before any of its events fire. Tasks are how the coordinator
// off-loads order-independent computation (noise-feed refills, pre-sorts) to
// lanes whose windows would otherwise under-fill their worker. RunBarrierTask
// reports whether the task did work this window; tasks must synchronise any
// state they share with other goroutines themselves (see NoiseFeed for the
// claim/publish pattern).
type BarrierTask interface {
	RunBarrierTask() bool
}

// Lane is one shard of a ShardedEngine: a plain Engine plus its position in
// the lockstep schedule. Lanes with lead 0 run at the barrier front; a lane
// with lead N runs N epochs ahead of the front, so everything it mails to a
// lower-lead lane is in the receiver's mailbox before the receiver's clock
// gets there. Only handlers running on the lane's own engine may call Send.
type Lane struct {
	se     *ShardedEngine
	eng    *Engine
	id     int
	lead   int
	target time.Duration
	// tasks run at the start of every window of this lane. Appended only
	// while the lanes are parked (before Run or from an OnBarrier hook).
	tasks []BarrierTask
	// tasksRun counts tasks that reported doing work. Scheduling-dependent
	// (a consumer may steal a task's work first); excluded from deterministic
	// report surfaces.
	tasksRun uint64
	// sent counts cross-lane messages this lane mailed (Send/SendAt/Handoff).
	sent uint64
	// busy accumulates the wall-clock time the lane's worker spent running
	// this lane's windows. Written only by the lane's worker between
	// barriers, read by the coordinator after the join — no races.
	busy time.Duration
}

// AddBarrierTask registers t to run at the start of every window of this
// lane. It must be called while the lanes are parked: before Run, or on the
// coordinating goroutine from an OnBarrier hook.
func (l *Lane) AddBarrierTask(t BarrierTask) { l.tasks = append(l.tasks, t) }

// runBarrierTasks runs the lane's tasks at a window start, on the lane's
// worker goroutine.
func (l *Lane) runBarrierTasks() {
	for _, t := range l.tasks {
		if t.RunBarrierTask() {
			l.tasksRun++
		}
	}
}

// Engine returns the lane's event engine. All scheduling inside the lane
// (After, AfterArg, tickers) goes through it exactly as in single-engine
// mode.
func (l *Lane) Engine() *Engine { return l.eng }

// ID returns the lane's index, which is also its tie-breaking rank: at equal
// virtual time, events of a lower lane fire first.
func (l *Lane) ID() int { return l.id }

// Round returns the current lockstep round, incremented before every
// parallel step (including the bootstrap step). Senders that hand out
// pointers into reusable buffers key double-buffering off its parity: a
// message produced in round r has fired by the end of round r+1, so its
// buffer can be reclaimed in round r+2.
func (l *Lane) Round() uint64 { return l.se.round }

// Send mails h(arg) to fire on dst at the sender's current virtual time. The
// message is enqueued at the next barrier with a sequence number claimed from
// the sending lane's own counter, so delivery order is (at, lane, send
// order) regardless of epoch length or worker count. It must be called from
// a handler running on l's engine during ShardedEngine.Run.
func (l *Lane) Send(dst *Lane, h ArgHandler, arg any) {
	l.SendAt(dst, l.eng.now, h, arg)
}

// SendAt is Send with an absolute virtual timestamp at >= the sender's now.
// The receiver's clock must not have passed at by the time the message is
// drained (guaranteed when the sender's lead exceeds the receiver's);
// otherwise Run fails with ErrDeterminism.
func (l *Lane) SendAt(dst *Lane, at time.Duration, h ArgHandler, arg any) {
	if h == nil {
		panic(errors.New("sim: nil handler"))
	}
	if at < l.eng.now {
		panic(fmt.Errorf("%w: at=%v now=%v", ErrPastEvent, at, l.eng.now))
	}
	l.eng.seq++
	l.sent++
	box := &l.se.mail[l.id*len(l.se.lanes)+dst.id]
	*box = append(*box, mailMsg{at: at, seq: l.eng.seq, h: h, arg: arg})
}

// Handoff mails h(arg) to run on the coordinating goroutine at the next
// barrier drain instead of at a virtual time. Both the sender and the
// receiver are parked when the handler runs, so it may freely inspect
// receiver-side state and schedule into the receiver's heap — typically via
// ReserveSeq/ScheduleReserved chains that reproduce the exact sequence
// positions the receiver's own handlers would have allocated. at records the
// sender's virtual time for the message and is subject to the same
// must-not-be-in-the-receiver's-past check as Send.
func (l *Lane) Handoff(dst *Lane, at time.Duration, h ArgHandler, arg any) {
	if h == nil {
		panic(errors.New("sim: nil handler"))
	}
	if at < l.eng.now {
		panic(fmt.Errorf("%w: at=%v now=%v", ErrPastEvent, at, l.eng.now))
	}
	l.sent++
	box := &l.se.mail[l.id*len(l.se.lanes)+dst.id]
	*box = append(*box, mailMsg{at: at, h: h, arg: arg, handoff: true})
}

// ReserveSeq claims the next sequence number from the engine's counter
// without scheduling an event. Paired with ScheduleReserved it splits an
// allocation from its heap insertion: the event fires in exactly the
// (at, seq) position an event scheduled at the reservation point would
// occupy, no matter how much later it is actually pushed. The sharded
// scenario bridge uses this to replay a workload driver's chained arrival
// allocations on the home lane bit-for-bit.
func (e *Engine) ReserveSeq() uint64 {
	e.seq++
	return e.seq
}

// ScheduleReserved schedules h(arg) at absolute virtual time at under a
// sequence number previously claimed with ReserveSeq. at must not precede
// the engine's clock.
func (e *Engine) ScheduleReserved(at time.Duration, seq uint64, h ArgHandler, arg any) {
	if h == nil {
		panic(errors.New("sim: nil handler"))
	}
	if at < e.now {
		panic(fmt.Errorf("%w: at=%v now=%v", ErrPastEvent, at, e.now))
	}
	e.pushMail(at, seq, h, arg)
}

// pushMail enqueues a drained cross-lane message as a pooled event carrying
// its sender-assigned sequence number. The caller (the barrier drain) has
// already checked at >= e.now.
func (e *Engine) pushMail(at time.Duration, seq uint64, h ArgHandler, arg any) {
	ev := e.free
	if ev != nil {
		e.free = ev.next
		ev.next = nil
		ev.canceled = false
		e.poolHits++
	} else {
		ev = &Event{}
		e.poolMisses++
	}
	ev.at = at
	ev.seq = seq
	ev.argHandler = h
	ev.arg = arg
	ev.pooled = true
	e.queue.push(ev)
	e.notePush()
}

// ShardedEngine drives N per-lane event heaps in deterministic lockstep
// epochs. Each round, every lane runs its own Engine up to its window end
// (the barrier front plus lead×epoch) — concurrently across a bounded worker
// pool — then all cross-lane messages are drained, in (receiver, sender,
// send order) order, into the receivers' heaps. Because drained events carry
// sender-assigned (lane, seq) keys and every heap pops in (at, seq) order,
// the global firing order is a pure function of (virtual time, lane id,
// per-lane sequence): bit-for-bit identical whatever the worker count, the
// epoch length, or how the OS schedules the workers.
//
// Construct with NewShardedEngine, add lanes with NewLane, then call Run
// once.
type ShardedEngine struct {
	epoch   time.Duration
	workers int

	lanes []*Lane
	// mail is the flattened [sender][receiver] mailbox matrix, built when Run
	// seals the lane set. Boxes are truncated (capacity retained) at every
	// drain, so a steady-state run stops allocating once each pair's
	// high-water mark is reached.
	mail []([]mailMsg)

	// hooks run on the coordinating goroutine after every barrier drain,
	// while all lanes are parked.
	hooks []func()

	round uint64
	front time.Duration
	ran   bool
	// halted stops Run at the next barrier. It is set from a handler firing
	// on one of the lanes — a lane-worker goroutine running concurrently with
	// the coordinator — hence the atomic.
	halted atomic.Bool

	// Self-profiling: drained counts mailbox messages moved at barriers
	// (deterministic); stepWall and drainWall accumulate the coordinator's
	// wall-clock time inside the parallel lane phase and the barrier drain
	// (wall-clock, so reported only through performance tooling, never in
	// determinism-sensitive outputs).
	drained   uint64
	stepWall  time.Duration
	drainWall time.Duration
}

// LaneProfile is one lane's self-profiling snapshot. All fields except Busy
// are pure functions of the simulated computation.
type LaneProfile struct {
	Lane int `json:"lane"`
	Lead int `json:"lead"`
	// Engine counters of the lane's own event heap.
	Profile
	// MailSent counts cross-lane messages this lane mailed.
	MailSent uint64 `json:"mail_sent"`
	// TasksRun counts barrier tasks that did work on this lane. Like Busy it
	// is scheduling-dependent (a starved consumer may steal a task's work),
	// so it is excluded from deterministic report surfaces.
	TasksRun uint64 `json:"-"`
	// Busy is the wall-clock time the lane's worker spent executing this
	// lane. Not deterministic; excluded from report surfaces.
	Busy time.Duration `json:"-"`
}

// ShardedProfile is the sharded engine's self-profiling snapshot.
type ShardedProfile struct {
	// Rounds is the number of lockstep rounds run (including bootstrap).
	Rounds uint64 `json:"rounds"`
	// MailDrained counts cross-lane messages moved at barriers.
	MailDrained uint64 `json:"mail_drained"`
	// Lanes holds one entry per lane, in lane order.
	Lanes []LaneProfile `json:"lanes"`
	// StepWall and DrainWall are the coordinator's cumulative wall-clock
	// time spent in the parallel lane phase and the barrier drains. With
	// Lanes[i].Busy they give per-lane occupancy (Busy/StepWall) and
	// barrier-stall time (StepWall-Busy). Not deterministic; excluded from
	// report surfaces.
	StepWall  time.Duration `json:"-"`
	DrainWall time.Duration `json:"-"`
}

// Profile returns the sharded engine's self-profiling counters. Call it
// after Run; it reads lane state the workers wrote before the final barrier.
func (se *ShardedEngine) Profile() ShardedProfile {
	p := ShardedProfile{
		Rounds:      se.round,
		MailDrained: se.drained,
		StepWall:    se.stepWall,
		DrainWall:   se.drainWall,
		Lanes:       make([]LaneProfile, len(se.lanes)),
	}
	for i, l := range se.lanes {
		p.Lanes[i] = LaneProfile{
			Lane:     l.id,
			Lead:     l.lead,
			Profile:  l.eng.Profile(),
			MailSent: l.sent,
			TasksRun: l.tasksRun,
			Busy:     l.busy,
		}
	}
	return p
}

// NewShardedEngine creates a sharded engine with the given lockstep epoch
// and worker bound. workers is clamped to [1, number of lanes] at Run; a
// single worker runs every lane inline on the calling goroutine.
func NewShardedEngine(epoch time.Duration, workers int) (*ShardedEngine, error) {
	if epoch <= 0 {
		return nil, fmt.Errorf("sim: epoch must be positive, got %v", epoch)
	}
	if workers < 1 {
		workers = 1
	}
	return &ShardedEngine{epoch: epoch, workers: workers}, nil
}

// Epoch returns the lockstep window length.
func (se *ShardedEngine) Epoch() time.Duration { return se.epoch }

// Lanes returns the number of lanes added so far.
func (se *ShardedEngine) Lanes() int { return len(se.lanes) }

// NewLane adds a lane running lead epochs ahead of the barrier front. Lanes
// must all be added before Run; their creation order fixes their tie-breaking
// rank. A lane that receives messages must have a smaller lead than every
// lane that sends to it (producers run ahead of consumers), which Run
// enforces per message via ErrDeterminism.
func (se *ShardedEngine) NewLane(lead int) (*Lane, error) {
	if se.ran {
		return nil, errors.New("sim: cannot add a lane after Run")
	}
	if lead < 0 {
		return nil, fmt.Errorf("sim: lane lead must be non-negative, got %d", lead)
	}
	if len(se.lanes) >= maxLanes {
		return nil, fmt.Errorf("sim: at most %d lanes", maxLanes)
	}
	eng := NewEngine()
	l := &Lane{se: se, eng: eng, id: len(se.lanes), lead: lead}
	eng.seq = uint64(l.id) << laneSeqShift
	se.lanes = append(se.lanes, l)
	return l, nil
}

// Run drives every lane to virtual time until in lockstep epochs. It can be
// called once per engine; like Engine.Run it advances each lane's clock to
// its window end even when the lane's queue drains early.
func (se *ShardedEngine) Run(until time.Duration) error {
	if se.ran {
		return ErrRunning
	}
	if len(se.lanes) == 0 {
		return errors.New("sim: sharded engine has no lanes")
	}
	if until < 0 {
		return fmt.Errorf("%w: until=%v", ErrPastEvent, until)
	}
	se.ran = true
	se.mail = make([]([]mailMsg), len(se.lanes)*len(se.lanes))

	workers := se.workers
	if workers > len(se.lanes) {
		workers = len(se.lanes)
	}
	var pool *lanePool
	if workers > 1 {
		pool = newLanePool(se.lanes, workers)
		defer pool.stop()
	}

	// Bootstrap step: lanes with lead > 0 pull ahead of the front (lead 0
	// lanes no-op), so every message destined for the first front window is
	// mailed and drained before the front starts moving.
	if err := se.step(pool, se.front, until); err != nil {
		return err
	}
	for se.front < until && !se.halted.Load() {
		t := se.front - se.front%se.epoch + se.epoch
		if t > until {
			t = until
		}
		if err := se.step(pool, t, until); err != nil {
			return err
		}
		se.front = t
	}
	return nil
}

// OnBarrier registers h to run on the coordinating goroutine after every
// barrier drain, while all lanes are parked. Hooks may inspect lane-side
// state and append barrier tasks; the lockstep schedule orders those accesses
// against the lanes' windows. Register before Run.
func (se *ShardedEngine) OnBarrier(h func()) { se.hooks = append(se.hooks, h) }

// Halt stops Run at the next epoch barrier: the current round's lanes finish
// their windows, the mailboxes drain, and Run returns. Call it from a handler
// firing on one of the lanes (pair it with that lane's Engine.Halt to also
// cut the lane's own window short). A halted run is abandoned, not resumable.
func (se *ShardedEngine) Halt() { se.halted.Store(true) }

// step runs one lockstep round: every lane advances to front + lead×epoch
// (capped at until), then the mailboxes are drained at the barrier.
func (se *ShardedEngine) step(pool *lanePool, front, until time.Duration) error {
	se.round++
	for _, l := range se.lanes {
		t := front + time.Duration(l.lead)*se.epoch
		if t > until {
			t = until
		}
		if t < l.eng.now {
			t = l.eng.now
		}
		l.target = t
	}
	stepStart := time.Now()
	if pool == nil {
		for _, l := range se.lanes {
			laneStart := time.Now()
			l.runBarrierTasks()
			err := l.eng.Run(l.target)
			l.busy += time.Since(laneStart)
			if err != nil {
				return err
			}
		}
	} else if err := pool.step(); err != nil {
		return err
	}
	se.stepWall += time.Since(stepStart)
	drainStart := time.Now()
	err := se.drain()
	se.drainWall += time.Since(drainStart)
	if err != nil {
		return err
	}
	for _, h := range se.hooks {
		h()
	}
	return nil
}

// drain moves every mailed message into its receiver's heap. The drain order
// (receiver ascending, sender ascending, send order) is itself irrelevant to
// the firing order — the heap orders by (at, seq) — but every message must
// still be at or ahead of its receiver's clock.
func (se *ShardedEngine) drain() error {
	n := len(se.lanes)
	for di, dst := range se.lanes {
		eng := dst.eng
		for si := 0; si < n; si++ {
			box := &se.mail[si*n+di]
			msgs := *box
			if len(msgs) == 0 {
				continue
			}
			for i := range msgs {
				m := &msgs[i]
				if m.at < eng.now {
					return fmt.Errorf("%w: lane %d -> lane %d at %v, receiver already at %v",
						ErrDeterminism, si, di, m.at, eng.now)
				}
				if m.handoff {
					m.h(m.arg, m.at)
				} else {
					eng.pushMail(m.at, m.seq, m.h, m.arg)
				}
				m.h, m.arg = nil, nil
			}
			se.drained += uint64(len(msgs))
			*box = msgs[:0]
		}
	}
	return nil
}

// lanePool is the persistent worker pool one Run spans: W goroutines, each
// owning a fixed subset of lanes, woken once per round through per-worker
// channels. Waking and joining a round allocates nothing, which keeps the
// sharded steady state as allocation-lean as the plain engine's.
type lanePool struct {
	workers []*laneWorker
	wg      sync.WaitGroup
}

type laneWorker struct {
	pool  *lanePool
	lanes []*Lane
	start chan struct{}
	err   error
}

func newLanePool(lanes []*Lane, n int) *lanePool {
	p := &lanePool{workers: make([]*laneWorker, n)}
	for i := range p.workers {
		p.workers[i] = &laneWorker{pool: p, start: make(chan struct{}, 1)}
	}
	for i, l := range lanes {
		w := p.workers[i%n]
		w.lanes = append(w.lanes, l)
	}
	for _, w := range p.workers {
		go w.loop()
	}
	return p
}

func (w *laneWorker) loop() {
	for range w.start {
		for _, l := range w.lanes {
			laneStart := time.Now()
			l.runBarrierTasks()
			err := l.eng.Run(l.target)
			l.busy += time.Since(laneStart)
			if err != nil {
				w.err = err
				break
			}
		}
		w.pool.wg.Done()
	}
}

// step wakes every worker for one round and waits for all of them.
func (p *lanePool) step() error {
	p.wg.Add(len(p.workers))
	for _, w := range p.workers {
		w.start <- struct{}{}
	}
	p.wg.Wait()
	for _, w := range p.workers {
		if w.err != nil {
			return w.err
		}
	}
	return nil
}

func (p *lanePool) stop() {
	for _, w := range p.workers {
		close(w.start)
	}
}
