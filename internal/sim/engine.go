package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Handler is a callback executed when an event fires. The engine passes the
// current virtual time to the handler.
type Handler func(now time.Duration)

// Event is a scheduled callback inside the simulation.
type Event struct {
	at       time.Duration
	seq      uint64
	handler  Handler
	canceled bool
	index    int // heap index, -1 once popped
}

// At returns the virtual time the event is scheduled for.
func (e *Event) At() time.Duration { return e.at }

// Cancel marks the event so that it will not fire. Cancelling an already
// fired event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.canceled = true
	}
}

// Canceled reports whether the event has been cancelled.
func (e *Event) Canceled() bool { return e != nil && e.canceled }

var (
	// ErrPastEvent is returned when scheduling an event before the current
	// virtual time.
	ErrPastEvent = errors.New("sim: cannot schedule event in the past")
	// ErrRunning is returned when Run is invoked re-entrantly.
	ErrRunning = errors.New("sim: engine is already running")
)

// Engine is a discrete-event simulation engine with a virtual clock.
//
// The zero value is not usable; construct engines with NewEngine.
type Engine struct {
	now     time.Duration
	queue   eventQueue
	seq     uint64
	running bool
	// processed counts events that have fired (excluding cancelled ones).
	processed uint64
}

// NewEngine returns an engine whose clock starts at virtual time zero.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.queue)
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending returns the number of events currently scheduled (including
// cancelled events that have not been drained yet).
func (e *Engine) Pending() int { return e.queue.Len() }

// Processed returns the number of events that have fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Schedule schedules handler to run after delay from the current virtual
// time. A negative delay is an error; a zero delay schedules the handler at
// the current time, after all handlers already scheduled for that time.
func (e *Engine) Schedule(delay time.Duration, handler Handler) (*Event, error) {
	if delay < 0 {
		return nil, fmt.Errorf("%w: delay %v", ErrPastEvent, delay)
	}
	return e.ScheduleAt(e.now+delay, handler)
}

// ScheduleAt schedules handler to run at absolute virtual time at.
func (e *Engine) ScheduleAt(at time.Duration, handler Handler) (*Event, error) {
	if handler == nil {
		return nil, errors.New("sim: nil handler")
	}
	if at < e.now {
		return nil, fmt.Errorf("%w: at=%v now=%v", ErrPastEvent, at, e.now)
	}
	e.seq++
	ev := &Event{at: at, seq: e.seq, handler: handler}
	heap.Push(&e.queue, ev)
	return ev, nil
}

// MustSchedule is Schedule but panics on error. It is intended for internal
// simulator wiring where a scheduling error indicates a programming bug.
func (e *Engine) MustSchedule(delay time.Duration, handler Handler) *Event {
	ev, err := e.Schedule(delay, handler)
	if err != nil {
		panic(err)
	}
	return ev
}

// Step fires the next pending event, advancing the clock to its timestamp.
// It returns false when no events remain.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev, ok := heap.Pop(&e.queue).(*Event)
		if !ok {
			return false
		}
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.processed++
		ev.handler(e.now)
		return true
	}
	return false
}

// Run processes events until the virtual clock reaches until or the event
// queue drains, whichever comes first. The clock is advanced to until even if
// the queue drains earlier, so repeated Run calls observe monotonic time.
func (e *Engine) Run(until time.Duration) error {
	if e.running {
		return ErrRunning
	}
	if until < e.now {
		return fmt.Errorf("%w: until=%v now=%v", ErrPastEvent, until, e.now)
	}
	e.running = true
	defer func() { e.running = false }()

	for e.queue.Len() > 0 {
		next := e.queue[0]
		if next.canceled {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > until {
			break
		}
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
	return nil
}

// RunAll processes events until the queue drains. A safety cap bounds the
// number of processed events to protect tests against runaway feedback loops;
// it returns an error when the cap is hit.
func (e *Engine) RunAll(maxEvents uint64) error {
	if e.running {
		return ErrRunning
	}
	e.running = true
	defer func() { e.running = false }()
	start := e.processed
	for e.queue.Len() > 0 {
		if maxEvents > 0 && e.processed-start >= maxEvents {
			return fmt.Errorf("sim: exceeded event cap of %d", maxEvents)
		}
		next := e.queue[0]
		if next.canceled {
			heap.Pop(&e.queue)
			continue
		}
		e.Step()
	}
	return nil
}

// eventQueue is a min-heap ordered by (time, sequence).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		return
	}
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
