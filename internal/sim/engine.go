package sim

import (
	"errors"
	"fmt"
	"time"
)

// Handler is a callback executed when an event fires. The engine passes the
// current virtual time to the handler.
type Handler func(now time.Duration)

// ArgHandler is a Handler with a pre-bound argument. The argument rides
// inside the event and is handed back when it fires, so hot paths that
// schedule one event per item (for example a coordinator fanning a write out
// to each replica) can use a single package-level function instead of
// allocating a fresh closure per item. Passing a pointer as arg does not
// allocate.
type ArgHandler func(arg any, now time.Duration)

// Event is a scheduled callback inside the simulation.
type Event struct {
	at      time.Duration
	seq     uint64
	handler Handler
	// argHandler and arg carry an ArgHandler event (scheduled with
	// AfterArg/AfterArgAt); handler and argHandler are mutually exclusive.
	argHandler ArgHandler
	arg        any
	canceled   bool
	// pooled marks events scheduled through After/AfterAt: no reference to
	// them ever escapes the engine, so they are recycled after firing.
	pooled bool
	// next links recycled events into the engine's free list.
	next *Event
}

// At returns the virtual time the event is scheduled for.
func (e *Event) At() time.Duration { return e.at }

// Cancel marks the event so that it will not fire. Cancelling an already
// fired event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.canceled = true
	}
}

// Canceled reports whether the event has been cancelled.
func (e *Event) Canceled() bool { return e != nil && e.canceled }

var (
	// ErrPastEvent is returned when scheduling an event before the current
	// virtual time.
	ErrPastEvent = errors.New("sim: cannot schedule event in the past")
	// ErrRunning is returned when Run is invoked re-entrantly.
	ErrRunning = errors.New("sim: engine is already running")
)

// Engine is a discrete-event simulation engine with a virtual clock.
//
// The zero value is not usable; construct engines with NewEngine.
type Engine struct {
	now     time.Duration
	queue   eventQueue
	seq     uint64
	running bool
	// processed counts events that have fired (excluding cancelled ones).
	processed uint64
	// free is the head of the recycled-event list. Events scheduled with
	// After/AfterAt return here after firing, so a steady-state simulation
	// schedules millions of events with a handful of allocations.
	free *Event
	// halted stops the current Run after the in-flight event completes. It is
	// only ever set from a handler firing on this engine (same goroutine), so
	// it needs no synchronisation.
	halted bool
	// Self-profiling counters: free-list effectiveness of the pooled schedule
	// paths and the high-water mark of the pending-event heap. All of them
	// are pure functions of the simulated computation, so they are safe to
	// surface in determinism-sensitive reports.
	poolHits   uint64
	poolMisses uint64
	heapPeak   int
}

// Profile is a snapshot of the engine's self-profiling counters.
type Profile struct {
	// Processed counts events that have fired (excluding cancelled ones).
	Processed uint64 `json:"processed"`
	// PoolHits counts pooled schedules served from the free list;
	// PoolMisses counts those that had to allocate a fresh event.
	PoolHits   uint64 `json:"pool_hits"`
	PoolMisses uint64 `json:"pool_misses"`
	// HeapPeak is the maximum number of simultaneously pending events.
	HeapPeak int `json:"heap_peak"`
}

// Profile returns the engine's self-profiling counters.
func (e *Engine) Profile() Profile {
	return Profile{
		Processed:  e.processed,
		PoolHits:   e.poolHits,
		PoolMisses: e.poolMisses,
		HeapPeak:   e.heapPeak,
	}
}

// notePush tracks the pending-heap high-water mark; call after queue.push.
func (e *Engine) notePush() {
	if len(e.queue) > e.heapPeak {
		e.heapPeak = len(e.queue)
	}
}

// NewEngine returns an engine whose clock starts at virtual time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending returns the number of events currently scheduled (including
// cancelled events that have not been drained yet).
func (e *Engine) Pending() int { return len(e.queue) }

// Processed returns the number of events that have fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Schedule schedules handler to run after delay from the current virtual
// time. A negative delay is an error; a zero delay schedules the handler at
// the current time, after all handlers already scheduled for that time.
func (e *Engine) Schedule(delay time.Duration, handler Handler) (*Event, error) {
	if delay < 0 {
		return nil, fmt.Errorf("%w: delay %v", ErrPastEvent, delay)
	}
	return e.ScheduleAt(e.now+delay, handler)
}

// ScheduleAt schedules handler to run at absolute virtual time at. The
// returned event is never recycled, so the caller may hold it indefinitely
// (e.g. to cancel it); hot paths that do not need the handle should prefer
// After/AfterAt.
func (e *Engine) ScheduleAt(at time.Duration, handler Handler) (*Event, error) {
	if handler == nil {
		return nil, errors.New("sim: nil handler")
	}
	if at < e.now {
		return nil, fmt.Errorf("%w: at=%v now=%v", ErrPastEvent, at, e.now)
	}
	e.seq++
	ev := &Event{at: at, seq: e.seq, handler: handler}
	e.queue.push(ev)
	e.notePush()
	return ev, nil
}

// MustSchedule is Schedule but panics on error. It is intended for internal
// simulator wiring where a scheduling error indicates a programming bug.
func (e *Engine) MustSchedule(delay time.Duration, handler Handler) *Event {
	ev, err := e.Schedule(delay, handler)
	if err != nil {
		panic(err)
	}
	return ev
}

// After schedules handler to run after delay without handing out the event,
// panicking on error. It is the fire-and-forget variant of MustSchedule for
// hot paths that never cancel: because no reference escapes, the engine
// recycles the event object after it fires instead of allocating a new one
// per schedule.
func (e *Engine) After(delay time.Duration, handler Handler) {
	if delay < 0 {
		panic(fmt.Errorf("%w: delay %v", ErrPastEvent, delay))
	}
	e.AfterAt(e.now+delay, handler)
}

// AfterAt is After with an absolute virtual timestamp.
func (e *Engine) AfterAt(at time.Duration, handler Handler) {
	if handler == nil {
		panic(errors.New("sim: nil handler"))
	}
	if at < e.now {
		panic(fmt.Errorf("%w: at=%v now=%v", ErrPastEvent, at, e.now))
	}
	ev := e.free
	if ev != nil {
		e.free = ev.next
		ev.next = nil
		ev.canceled = false
		e.poolHits++
	} else {
		ev = &Event{}
		e.poolMisses++
	}
	e.seq++
	ev.at = at
	ev.seq = e.seq
	ev.handler = handler
	ev.pooled = true
	e.queue.push(ev)
	e.notePush()
}

// AfterArg schedules h(arg) to run after delay. Like After it is
// fire-and-forget and pooled; unlike After the handler is a plain function
// plus a pre-bound argument, so scheduling allocates nothing when h is a
// package-level function and arg is a pointer.
func (e *Engine) AfterArg(delay time.Duration, h ArgHandler, arg any) {
	if delay < 0 {
		panic(fmt.Errorf("%w: delay %v", ErrPastEvent, delay))
	}
	e.AfterArgAt(e.now+delay, h, arg)
}

// AfterArgAt is AfterArg with an absolute virtual timestamp.
func (e *Engine) AfterArgAt(at time.Duration, h ArgHandler, arg any) {
	if h == nil {
		panic(errors.New("sim: nil handler"))
	}
	if at < e.now {
		panic(fmt.Errorf("%w: at=%v now=%v", ErrPastEvent, at, e.now))
	}
	ev := e.free
	if ev != nil {
		e.free = ev.next
		ev.next = nil
		ev.canceled = false
		e.poolHits++
	} else {
		ev = &Event{}
		e.poolMisses++
	}
	e.seq++
	ev.at = at
	ev.seq = e.seq
	ev.argHandler = h
	ev.arg = arg
	ev.pooled = true
	e.queue.push(ev)
	e.notePush()
}

// release returns a pooled event to the free list. The handler and argument
// references are dropped so the closure (and anything it captures) can be
// collected.
func (e *Engine) release(ev *Event) {
	ev.handler = nil
	ev.argHandler = nil
	ev.arg = nil
	ev.pooled = false
	ev.next = e.free
	e.free = ev
}

// fire advances the clock to ev's timestamp and invokes its handler. The
// event must already be popped and not cancelled. Pooled events are recycled
// before the handler runs: the event is fully off the queue, so the handler
// (which may schedule new work) can reuse it immediately.
func (e *Engine) fire(ev *Event) {
	e.now = ev.at
	e.processed++
	h := ev.handler
	ah, arg := ev.argHandler, ev.arg
	if ev.pooled {
		e.release(ev)
	}
	if h != nil {
		h(e.now)
		return
	}
	ah(arg, e.now)
}

// discard drops a cancelled event that has been popped, recycling it when
// pooled.
func (e *Engine) discard(ev *Event) {
	if ev.pooled {
		e.release(ev)
	}
}

// Step fires the next pending event, advancing the clock to its timestamp.
// It returns false when no events remain.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := e.queue.pop()
		if ev.canceled {
			e.discard(ev)
			continue
		}
		e.fire(ev)
		return true
	}
	return false
}

// Halt stops the engine's current (or next) Run after the in-flight event
// completes, leaving the clock wherever it was. It must only be called from a
// handler firing on this engine — the same goroutine Run is looping on. A
// halted run is abandoned, not resumable: the engine makes no promise about
// the events still queued.
func (e *Engine) Halt() { e.halted = true }

// Halted reports whether Halt has been called.
func (e *Engine) Halted() bool { return e.halted }

// Run processes events until the virtual clock reaches until or the event
// queue drains, whichever comes first. The clock is advanced to until even if
// the queue drains earlier, so repeated Run calls observe monotonic time.
func (e *Engine) Run(until time.Duration) error {
	if e.running {
		return ErrRunning
	}
	if until < e.now {
		return fmt.Errorf("%w: until=%v now=%v", ErrPastEvent, until, e.now)
	}
	e.running = true
	defer func() { e.running = false }()

	for len(e.queue) > 0 && !e.halted {
		next := e.queue[0]
		if next.canceled {
			e.discard(e.queue.pop())
			continue
		}
		if next.at > until {
			break
		}
		e.fire(e.queue.pop())
	}
	if e.now < until && !e.halted {
		e.now = until
	}
	return nil
}

// RunAll processes events until the queue drains. A safety cap bounds the
// number of processed events to protect tests against runaway feedback loops;
// it returns an error when the cap is hit.
func (e *Engine) RunAll(maxEvents uint64) error {
	if e.running {
		return ErrRunning
	}
	e.running = true
	defer func() { e.running = false }()
	start := e.processed
	for len(e.queue) > 0 {
		if maxEvents > 0 && e.processed-start >= maxEvents {
			return fmt.Errorf("sim: exceeded event cap of %d", maxEvents)
		}
		next := e.queue.pop()
		if next.canceled {
			e.discard(next)
			continue
		}
		e.fire(next)
	}
	return nil
}

// eventQueue is a hand-rolled 4-ary min-heap ordered by (time, sequence).
// Compared to container/heap over a 2-ary heap this avoids the interface
// boxing on every push/pop, halves the sift-down depth (pop-heavy workloads
// dominate a simulator), and lets the comparisons inline. Because (at, seq)
// is a total order — seq is unique — the pop order is exactly ascending
// (at, seq) whatever the internal arity, which keeps simulations bit-for-bit
// reproducible.
type eventQueue []*Event

// eventBefore reports whether a fires before b.
func eventBefore(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts ev, sifting it up with the hole-movement idiom (the event is
// written once at its final position instead of swapping at every level).
func (q *eventQueue) push(ev *Event) {
	s := append(*q, ev)
	*q = s
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !eventBefore(ev, s[parent]) {
			break
		}
		s[i] = s[parent]
		i = parent
	}
	s[i] = ev
}

// pop removes and returns the earliest event.
func (q *eventQueue) pop() *Event {
	s := *q
	top := s[0]
	n := len(s) - 1
	last := s[n]
	s[n] = nil
	s = s[:n]
	*q = s
	if n > 0 {
		// Sift the former tail down from the root.
		i := 0
		for {
			first := i<<2 + 1
			if first >= n {
				break
			}
			best := first
			end := first + 4
			if end > n {
				end = n
			}
			for c := first + 1; c < end; c++ {
				if eventBefore(s[c], s[best]) {
					best = c
				}
			}
			if !eventBefore(s[best], last) {
				break
			}
			s[i] = s[best]
			i = best
		}
		s[i] = last
	}
	return top
}
