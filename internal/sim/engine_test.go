package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestScheduleAndRunOrdersByTime(t *testing.T) {
	e := NewEngine()
	var order []int
	e.MustSchedule(30*time.Millisecond, func(time.Duration) { order = append(order, 3) })
	e.MustSchedule(10*time.Millisecond, func(time.Duration) { order = append(order, 1) })
	e.MustSchedule(20*time.Millisecond, func(time.Duration) { order = append(order, 2) })
	if err := e.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("got %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("got %v, want %v", order, want)
		}
	}
	if e.Now() != time.Second {
		t.Fatalf("Now() = %v, want 1s", e.Now())
	}
}

func TestSameTimestampFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.MustSchedule(5*time.Millisecond, func(time.Duration) { order = append(order, i) })
	}
	if err := e.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("event %d fired out of order: %v", i, order)
		}
	}
}

func TestScheduleInPastFails(t *testing.T) {
	e := NewEngine()
	e.MustSchedule(10*time.Millisecond, func(time.Duration) {})
	if err := e.Run(20 * time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, err := e.ScheduleAt(5*time.Millisecond, func(time.Duration) {}); err == nil {
		t.Fatal("ScheduleAt in the past succeeded, want error")
	}
	if _, err := e.Schedule(-time.Millisecond, func(time.Duration) {}); err == nil {
		t.Fatal("Schedule with negative delay succeeded, want error")
	}
}

func TestScheduleNilHandlerFails(t *testing.T) {
	e := NewEngine()
	if _, err := e.Schedule(time.Millisecond, nil); err == nil {
		t.Fatal("Schedule(nil handler) succeeded, want error")
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.MustSchedule(10*time.Millisecond, func(time.Duration) { fired = true })
	ev.Cancel()
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	if err := e.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Processed() != 0 {
		t.Fatalf("Processed() = %d, want 0", e.Processed())
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []time.Duration
	e.MustSchedule(10*time.Millisecond, func(now time.Duration) {
		times = append(times, now)
		e.MustSchedule(15*time.Millisecond, func(now time.Duration) {
			times = append(times, now)
		})
	})
	if err := e.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(times) != 2 {
		t.Fatalf("len(times) = %d, want 2", len(times))
	}
	if times[0] != 10*time.Millisecond || times[1] != 25*time.Millisecond {
		t.Fatalf("times = %v, want [10ms 25ms]", times)
	}
}

func TestRunStopsAtBoundary(t *testing.T) {
	e := NewEngine()
	fired := false
	e.MustSchedule(100*time.Millisecond, func(time.Duration) { fired = true })
	if err := e.Run(50 * time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if e.Now() != 50*time.Millisecond {
		t.Fatalf("Now() = %v, want 50ms", e.Now())
	}
	if err := e.Run(200 * time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !fired {
		t.Fatal("event did not fire after horizon extended")
	}
}

func TestRunBackwardsFails(t *testing.T) {
	e := NewEngine()
	if err := e.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := e.Run(500 * time.Millisecond); err == nil {
		t.Fatal("Run into the past succeeded, want error")
	}
}

func TestRunAllCap(t *testing.T) {
	e := NewEngine()
	var loop func(now time.Duration)
	loop = func(time.Duration) { e.MustSchedule(time.Millisecond, loop) }
	e.MustSchedule(time.Millisecond, loop)
	if err := e.RunAll(100); err == nil {
		t.Fatal("RunAll with runaway loop succeeded, want cap error")
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step() on empty queue returned true")
	}
}

func TestTickerFiresPeriodically(t *testing.T) {
	e := NewEngine()
	var ticks []time.Duration
	tk, err := NewTicker(e, 10*time.Millisecond, func(now time.Duration) {
		ticks = append(ticks, now)
	})
	if err != nil {
		t.Fatalf("NewTicker: %v", err)
	}
	if err := e.Run(55 * time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(ticks) != 5 {
		t.Fatalf("len(ticks) = %d, want 5 (%v)", len(ticks), ticks)
	}
	if tk.Fired() != 5 {
		t.Fatalf("Fired() = %d, want 5", tk.Fired())
	}
	for i, at := range ticks {
		want := time.Duration(i+1) * 10 * time.Millisecond
		if at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestTickerStop(t *testing.T) {
	e := NewEngine()
	count := 0
	var tk *Ticker
	var err error
	tk, err = NewTicker(e, 10*time.Millisecond, func(time.Duration) {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	if err != nil {
		t.Fatalf("NewTicker: %v", err)
	}
	if err := e.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestTickerValidation(t *testing.T) {
	e := NewEngine()
	if _, err := NewTicker(nil, time.Second, func(time.Duration) {}); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := NewTicker(e, 0, func(time.Duration) {}); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := NewTicker(e, time.Second, nil); err == nil {
		t.Fatal("nil handler accepted")
	}
}

func TestRandStreamsIndependentAndDeterministic(t *testing.T) {
	a1 := NewRandSource(42).Stream("alpha")
	a2 := NewRandSource(42).Stream("alpha")
	b := NewRandSource(42).Stream("beta")
	for i := 0; i < 100; i++ {
		va, vb := a1.Int63(), a2.Int63()
		if va != vb {
			t.Fatalf("same-named streams diverged at %d: %d vs %d", i, va, vb)
		}
		_ = b.Int63()
	}
	c := NewRandSource(43).Stream("alpha")
	same := true
	a3 := NewRandSource(42).Stream("alpha")
	for i := 0; i < 10; i++ {
		if a3.Int63() != c.Int63() {
			same = false
		}
	}
	if same {
		t.Fatal("streams from different seeds produced identical output")
	}
}

func TestExponentialProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		mean := 10.0
		sum := 0.0
		const n = 2000
		local := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			v := Exponential(local, mean)
			if v < 0 {
				return false
			}
			sum += v
		}
		avg := sum / n
		return avg > mean*0.8 && avg < mean*1.2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rng}); err != nil {
		t.Fatalf("exponential property failed: %v", err)
	}
	if Exponential(rng, 0) != 0 {
		t.Fatal("Exponential with zero mean should be 0")
	}
}

func TestLogNormalPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		if v := LogNormal(rng, 5, 0.5); v <= 0 {
			t.Fatalf("LogNormal returned non-positive %v", v)
		}
	}
	if LogNormal(rng, 0, 1) != 0 {
		t.Fatal("LogNormal with zero median should be 0")
	}
}

func TestZipfInRangeAndSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	z := NewZipf(rng, 1.3, 1000)
	counts := make(map[uint64]int)
	for i := 0; i < 10000; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("zipf sample %d out of range", v)
		}
		counts[v]++
	}
	if counts[0] < counts[500] {
		t.Fatalf("zipf not skewed: counts[0]=%d counts[500]=%d", counts[0], counts[500])
	}
	u := NewZipf(rng, 1.0, 10)
	for i := 0; i < 1000; i++ {
		if v := u.Next(); v >= 10 {
			t.Fatalf("uniform fallback sample %d out of range", v)
		}
	}
	zero := NewZipf(rng, 1.3, 0)
	if v := zero.Next(); v != 0 {
		t.Fatalf("n=0 zipf returned %d, want 0", v)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []time.Duration {
		e := NewEngine()
		src := NewRandSource(99)
		rng := src.Stream("load")
		var out []time.Duration
		var gen func(now time.Duration)
		gen = func(now time.Duration) {
			out = append(out, now)
			if len(out) < 50 {
				d := time.Duration(Exponential(rng, float64(time.Millisecond)))
				e.MustSchedule(d+time.Microsecond, gen)
			}
		}
		e.MustSchedule(time.Millisecond, gen)
		if err := e.Run(time.Hour); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
