package sim

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// RandSource hands out independent, deterministically seeded random number
// streams. Each named stream is derived from the root seed and the stream
// name, so adding a new consumer of randomness does not perturb the sequences
// observed by existing consumers.
type RandSource struct {
	seed int64
}

// NewRandSource returns a source rooted at seed.
func NewRandSource(seed int64) *RandSource {
	return &RandSource{seed: seed}
}

// Seed returns the root seed of the source.
func (s *RandSource) Seed() int64 { return s.seed }

// DeriveSeed deterministically derives a child seed from a root seed and a
// name. Distinct names yield independent child seeds for the same root, and
// the derivation is stable across runs and platforms, so both the random
// streams inside one scenario and the per-variant seeds of a scenario suite
// can be derived without coordination.
func DeriveSeed(root int64, name string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	const mix = int64(0x9E3779B97F4A7C15 >> 1)
	return int64(h.Sum64()) ^ (root * mix)
}

// Stream returns a dedicated *rand.Rand for the named consumer.
func (s *RandSource) Stream(name string) *rand.Rand {
	return rand.New(rand.NewSource(DeriveSeed(s.seed, name))) //nolint:gosec // simulation determinism, not crypto
}

// Exponential draws an exponentially distributed duration with the given
// mean from rng. It is the inter-arrival primitive used by Poisson arrival
// processes throughout the simulator.
func Exponential(rng *rand.Rand, mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	u := rng.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(u)
}

// LogNormal draws a log-normally distributed value parameterised by the
// median and a shape sigma. Service times and network jitter use this shape,
// matching the heavy-tailed latencies seen in real storage clusters.
func LogNormal(rng *rand.Rand, median, sigma float64) float64 {
	if median <= 0 {
		return 0
	}
	return median * math.Exp(sigma*rng.NormFloat64())
}

// Zipf builds a zipfian integer generator over [0, n) with exponent s >= 1.
// It falls back to uniform when parameters are degenerate.
type Zipf struct {
	rng     *rand.Rand
	zipf    *rand.Zipf
	n       uint64
	uniform bool
}

// NewZipf constructs a zipfian generator. n must be >= 1.
func NewZipf(rng *rand.Rand, s float64, n uint64) *Zipf {
	if n == 0 {
		n = 1
	}
	if s <= 1 {
		return &Zipf{rng: rng, n: n, uniform: true}
	}
	return &Zipf{rng: rng, zipf: rand.NewZipf(rng, s, 1, n-1), n: n}
}

// Next returns the next sample in [0, n).
func (z *Zipf) Next() uint64 {
	if z.uniform || z.zipf == nil {
		return uint64(z.rng.Int63n(int64(z.n)))
	}
	return z.zipf.Uint64()
}
