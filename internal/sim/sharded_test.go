package sim

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"
)

// shardedDigest runs a synthetic producer/consumer topology — one home lane
// plus producers producer lanes each mailing ops at exponential-ish virtual
// times — and folds the home lane's delivery order into a digest string.
// Identical digests mean identical firing order, bit for bit.
func shardedDigest(t *testing.T, epoch time.Duration, workers, producers int, until time.Duration) string {
	t.Helper()
	se, err := NewShardedEngine(epoch, workers)
	if err != nil {
		t.Fatalf("NewShardedEngine: %v", err)
	}
	home, err := se.NewLane(0)
	if err != nil {
		t.Fatalf("NewLane(home): %v", err)
	}
	digest := ""
	deliver := func(arg any, now time.Duration) {
		digest += fmt.Sprintf("%d@%d;", arg.(int), now)
	}
	for p := 0; p < producers; p++ {
		lane, err := se.NewLane(1)
		if err != nil {
			t.Fatalf("NewLane(producer %d): %v", p, err)
		}
		// Deterministic, lane-dependent arrival pattern with deliberate
		// cross-lane virtual-time collisions (gcd of strides > 0 hits shared
		// multiples), so the (at, lane, seq) tie-break is actually exercised.
		stride := time.Duration(p+1) * 100 * time.Microsecond
		id := p * 1_000_000
		var tick Handler
		tick = func(now time.Duration) {
			lane.Send(home, deliver, id)
			id++
			// Occasionally mail a deliberately future-dated op.
			if id%7 == 0 {
				lane.SendAt(home, now+3*stride, deliver, id)
				id++
			}
			if next := now + stride; next <= until {
				lane.Engine().AfterAt(next, tick)
			}
		}
		lane.Engine().AfterAt(0, tick)
	}
	// Home-local traffic colliding with mailed times.
	count := 0
	var local Handler
	local = func(now time.Duration) {
		digest += fmt.Sprintf("local@%d;", now)
		count++
		if next := now + 250*time.Microsecond; next <= until {
			home.Engine().AfterAt(next, local)
		}
	}
	home.Engine().AfterAt(0, local)

	if err := se.Run(until); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count == 0 {
		t.Fatal("home lane processed no local events")
	}
	return digest
}

// TestShardedWorkerInvariance pins the core determinism claim: the firing
// order on every lane is identical whatever the worker count.
func TestShardedWorkerInvariance(t *testing.T) {
	const until = 50 * time.Millisecond
	want := shardedDigest(t, time.Millisecond, 1, 3, until)
	for _, workers := range []int{2, 4, 8} {
		got := shardedDigest(t, time.Millisecond, workers, 3, until)
		if got != want {
			t.Fatalf("digest diverged at workers=%d", workers)
		}
	}
}

// TestShardedEpochInvariance pins that the lockstep window length only
// decides when mail is drained, never the firing order.
func TestShardedEpochInvariance(t *testing.T) {
	const until = 50 * time.Millisecond
	want := shardedDigest(t, time.Millisecond, 2, 3, until)
	for _, epoch := range []time.Duration{250 * time.Microsecond, 5 * time.Millisecond, 50 * time.Millisecond, 70 * time.Millisecond} {
		got := shardedDigest(t, epoch, 2, 3, until)
		if got != want {
			t.Fatalf("digest diverged at epoch=%v", epoch)
		}
	}
}

// TestShardedTieOrder pins the cross-lane tie-break exactly: at equal virtual
// time, the receiver's own events fire before lane 1's, lane 1's before lane
// 2's, and each lane's in its own send order.
func TestShardedTieOrder(t *testing.T) {
	se, err := NewShardedEngine(time.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	home, _ := se.NewLane(0)
	a, _ := se.NewLane(1)
	b, _ := se.NewLane(1)
	var got []string
	deliver := func(arg any, _ time.Duration) { got = append(got, arg.(string)) }
	at := 500 * time.Microsecond
	// b schedules its sends before a in wall-clock terms (lane creation order
	// does not matter — only lane id does).
	b.Engine().AfterAt(0, func(time.Duration) {
		b.SendAt(home, at, deliver, "b0")
		b.SendAt(home, at, deliver, "b1")
	})
	a.Engine().AfterAt(0, func(time.Duration) {
		a.SendAt(home, at, deliver, "a0")
		a.SendAt(home, at, deliver, "a1")
	})
	home.Engine().AfterArgAt(at, deliver, "home0")
	if err := se.Run(2 * time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"home0", "a0", "a1", "b0", "b1"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("tie order = %v, want %v", got, want)
	}
}

// TestShardedDeterminismViolation pins that an illegal topology — a lane
// mailing into a peer that runs at the same lead — fails loudly with
// ErrDeterminism instead of silently reordering.
func TestShardedDeterminismViolation(t *testing.T) {
	se, err := NewShardedEngine(time.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := se.NewLane(0)
	b, _ := se.NewLane(0)
	deliver := func(any, time.Duration) {}
	// a mails b mid-window; by the barrier b's clock has already passed it.
	a.Engine().AfterAt(500*time.Microsecond, func(time.Duration) {
		a.Send(b, deliver, nil)
	})
	if err := se.Run(10 * time.Millisecond); !errors.Is(err, ErrDeterminism) {
		t.Fatalf("Run = %v, want ErrDeterminism", err)
	}
}

// TestShardedRunOnce pins the single-shot contract.
func TestShardedRunOnce(t *testing.T) {
	se, err := NewShardedEngine(time.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	se.NewLane(0)
	if err := se.Run(time.Millisecond); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	if err := se.Run(2 * time.Millisecond); !errors.Is(err, ErrRunning) {
		t.Fatalf("second Run = %v, want ErrRunning", err)
	}
	if _, err := se.NewLane(0); err == nil {
		t.Fatal("NewLane after Run succeeded")
	}
}

// TestShardedSingleLaneMatchesEngine pins that a one-lane sharded engine is
// bit-for-bit the plain engine: lane 0 keeps seq base 0, so the same event
// program produces the same (at, seq) schedule.
func TestShardedSingleLaneMatchesEngine(t *testing.T) {
	program := func(e *Engine) *string {
		out := new(string)
		var tick Handler
		tick = func(now time.Duration) {
			*out += fmt.Sprintf("%d;", now)
			if now < 10*time.Millisecond {
				e.After(700*time.Microsecond, tick)
			}
		}
		e.AfterAt(0, tick)
		return out
	}

	plain := NewEngine()
	wantOut := program(plain)
	if err := plain.Run(20 * time.Millisecond); err != nil {
		t.Fatal(err)
	}

	se, err := NewShardedEngine(time.Millisecond, 4)
	if err != nil {
		t.Fatal(err)
	}
	lane, _ := se.NewLane(0)
	gotOut := program(lane.Engine())
	if err := se.Run(20 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if *gotOut != *wantOut {
		t.Fatalf("single-lane sharded run diverged from plain engine:\n got %q\nwant %q", *gotOut, *wantOut)
	}
	if lane.Engine().Now() != plain.Now() {
		t.Fatalf("final clocks differ: %v vs %v", lane.Engine().Now(), plain.Now())
	}
}

// shardedSteadyState builds a producer/consumer engine whose per-epoch mail
// volume is constant and runs it for the given number of epochs.
func shardedSteadyState(epochs int) {
	const epoch = time.Millisecond
	se, _ := NewShardedEngine(epoch, 1)
	home, _ := se.NewLane(0)
	lane, _ := se.NewLane(1)
	sink := 0
	deliver := func(arg any, _ time.Duration) { sink += arg.(int) }
	until := time.Duration(epochs) * epoch
	var tick Handler
	tick = func(now time.Duration) {
		for i := 0; i < 20; i++ {
			lane.Send(home, deliver, i)
		}
		if now < until {
			lane.Engine().After(200*time.Microsecond, tick)
		}
	}
	lane.Engine().AfterAt(0, tick)
	if err := se.Run(until); err != nil {
		panic(err)
	}
}

// TestShardedSteadyStateAllocs pins that the sharded path stops allocating
// once warm: mailboxes and the event pool are reused, so doubling the number
// of epochs must not add allocations beyond noise. Run at workers=1 so the
// measurement sees no goroutine machinery.
func TestShardedSteadyStateAllocs(t *testing.T) {
	measure := func(epochs int) uint64 {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		shardedSteadyState(epochs)
		runtime.ReadMemStats(&m1)
		return m1.Mallocs - m0.Mallocs
	}
	measure(50) // warm up any lazy runtime state
	short := measure(200)
	long := measure(400)
	// 200 extra epochs carry ~20k messages; any per-message or per-epoch
	// allocation regression shows up thousands of times over this slack.
	if long > short+500 {
		t.Fatalf("sharded steady state allocates: %d mallocs for 200 epochs vs %d for 400", short, long)
	}
}

// BenchmarkShardedEngine measures a decomposable synthetic load — P producer
// lanes each burning scheduling work and mailing a fraction of it home — at
// several worker counts. On a multi-CPU machine sim-ops/s scales with
// workers; on one CPU the worker variants only pin that the lockstep overhead
// is small.
func BenchmarkShardedEngine(b *testing.B) {
	const (
		producers = 4
		epoch     = time.Millisecond
		until     = 100 * time.Millisecond
		stride    = 2 * time.Microsecond
	)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var events uint64
			for i := 0; i < b.N; i++ {
				se, _ := NewShardedEngine(epoch, workers)
				home, _ := se.NewLane(0)
				sink := time.Duration(0)
				deliver := func(arg any, now time.Duration) { sink += now - arg.(time.Duration) }
				for p := 0; p < producers; p++ {
					lane, _ := se.NewLane(1)
					n := 0
					var tick Handler
					tick = func(now time.Duration) {
						n++
						if n%50 == 0 {
							lane.Send(home, deliver, now)
						}
						if now < until {
							lane.Engine().After(stride, tick)
						}
					}
					lane.Engine().AfterAt(0, tick)
				}
				if err := se.Run(until); err != nil {
					b.Fatal(err)
				}
				events = 0
				for _, l := range se.lanes {
					events += l.eng.processed
				}
			}
			b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// laneHandoffRun drives a bridge-like handoff topology: one driver lane hands
// off perTick records per 100µs tick; each handoff runs at the barrier and
// replays onto the home lane through ReserveSeq/ScheduleReserved, mirroring
// the scenario lane bridge. Returns the number of messages that crossed.
func laneHandoffRun(workers, epochs int) uint64 {
	const (
		epoch   = time.Millisecond
		perTick = 8
	)
	se, _ := NewShardedEngine(epoch, workers)
	home, _ := se.NewLane(0)
	lane, _ := se.NewLane(1)
	var crossed uint64
	sink := time.Duration(0)
	deliver := func(_ any, now time.Duration) { sink += now }
	handoff := func(arg any, at time.Duration) {
		crossed++
		home.Engine().ScheduleReserved(at, home.Engine().ReserveSeq(), deliver, arg)
	}
	until := time.Duration(epochs) * epoch
	var tick Handler
	tick = func(now time.Duration) {
		for i := 0; i < perTick; i++ {
			lane.Handoff(home, now, handoff, nil)
		}
		if now < until {
			lane.Engine().After(100*time.Microsecond, tick)
		}
	}
	lane.Engine().AfterAt(0, tick)
	if err := se.Run(until); err != nil {
		panic(err)
	}
	return crossed
}

// BenchmarkLaneHandoff measures cross-lane Handoff + barrier-drain + reserved
// replay throughput — the cost every message of the scenario lane bridge and
// any future replica mail pays per crossing.
func BenchmarkLaneHandoff(b *testing.B) {
	for _, workers := range []int{1, 2} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			// ~80 messages cross per epoch.
			crossed := laneHandoffRun(workers, b.N/80+1)
			b.ReportMetric(float64(crossed)/b.Elapsed().Seconds(), "msgs/s")
		})
	}
}

// TestLaneHandoffAllocBound pins the per-crossed-message allocation cost at
// zero once warm: mailbox slots, pooled events and reserved replays are all
// reused, so doubling the run length (≈16k extra crossings) must not add
// allocations beyond noise.
func TestLaneHandoffAllocBound(t *testing.T) {
	measure := func(epochs int) uint64 {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		laneHandoffRun(1, epochs)
		runtime.ReadMemStats(&m1)
		return m1.Mallocs - m0.Mallocs
	}
	measure(50) // warm up lazy runtime state
	short := measure(200)
	long := measure(400)
	if long > short+500 {
		t.Fatalf("handoff path allocates per message: %d mallocs for 200 epochs vs %d for 400", short, long)
	}
}
