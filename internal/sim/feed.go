package sim

import (
	"math"
	"math/rand"
	"runtime"
	"sync/atomic"
)

// NoiseFeed pre-generates the noise factors of one log-normal draw stream in
// batches, so a sharded run can compute them on an otherwise idle lane while
// the home lane only pays a slice read per draw.
//
// The feed owns its *rand.Rand exclusively and produces factors
// exp(sigma*Norm) in batch order, so consuming `median * feed` factors yields
// bit-for-bit the values LogNormal(rng, median, sigma) would have produced at
// the same call sites: the multiplication by the (call-site-dependent) median
// is the last operation in both forms, and sigma is fixed per stream. That is
// what lets a sharded run offload the store's service-time and network-jitter
// entropy to ring-segment owner lanes without perturbing a single golden
// fingerprint.
//
// Concurrency protocol (all fields without atomics are single-writer):
//
//   - The consumer side (cur, pos, ready, outstanding and the deterministic
//     counters) is touched only by the lane that draws from the feed during
//     its windows and by the coordinator at barriers, which the lockstep
//     schedule already orders.
//   - A refill is armed by the coordinator at a barrier (claimed=false), runs
//     on the owner lane at its next window start (RunBarrierTask), and is
//     collected by the coordinator at the following barrier. spare and rng are
//     guarded by winning the claimed CAS; published releases the filled spare
//     to the consumer.
//   - If the consumer drains the active batch before the refill is collected,
//     it steals the armed refill: either its claim CAS wins (the owner has not
//     started, the consumer fills inline) or it spins until the owner
//     publishes. Which side computes a batch is scheduling-dependent, but the
//     batch contents and every consumed value are not.
type NoiseFeed struct {
	rng   *rand.Rand
	sigma float64
	batch int

	// cur is the active batch; pos indexes the next factor. ready is a
	// collected refill waiting to become active. spare is the buffer an armed
	// refill fills.
	cur   []float64
	pos   int
	ready []float64
	spare []float64

	// outstanding marks an armed refill that has not been collected.
	outstanding bool

	claimed   atomic.Bool
	published atomic.Bool

	// Deterministic counters: pure functions of the simulated computation.
	consumed  uint64
	refills   uint64
	inline    uint64
	exhausted uint64
	// steals counts refills the consumer claimed before the owner lane got to
	// them. Scheduling-dependent; excluded from deterministic surfaces.
	steals uint64
}

// newNoiseFeed constructs a prefilled feed. The feed takes exclusive
// ownership of rng: no other draws may be taken from it afterwards.
func newNoiseFeed(rng *rand.Rand, sigma float64, batch int) *NoiseFeed {
	f := &NoiseFeed{rng: rng, sigma: sigma, batch: batch}
	f.cur = f.fill(make([]float64, 0, batch))
	f.claimed.Store(true) // disarmed
	return f
}

// fill appends one batch of factors drawn from the feed's stream.
func (f *NoiseFeed) fill(buf []float64) []float64 {
	for i := 0; i < f.batch; i++ {
		buf = append(buf, math.Exp(f.sigma*f.rng.NormFloat64()))
	}
	return buf
}

// Value returns median * nextFactor, reproducing LogNormal(rng, median,
// sigma) exactly — including its guard that a non-positive median returns 0
// without consuming a draw.
func (f *NoiseFeed) Value(median float64) float64 {
	if median <= 0 {
		return 0
	}
	if f.pos == len(f.cur) {
		f.advance()
	}
	v := f.cur[f.pos]
	f.pos++
	f.consumed++
	return median * v
}

// advance makes the next batch active. The fast path swaps in a collected
// refill; the slow paths (steal an armed refill, or draw inline when none is
// in flight) only run when consumption outpaces the refill cadence.
func (f *NoiseFeed) advance() {
	if f.ready != nil {
		old := f.cur
		f.cur, f.ready = f.ready, nil
		f.pos = 0
		if f.spare == nil {
			f.spare = old[:0]
		}
		return
	}
	if f.outstanding {
		f.exhausted++
		if f.claimed.CompareAndSwap(false, true) {
			// The owner lane has not started this refill; compute it here.
			f.steals++
			f.spare = f.fill(f.spare[:0])
		} else {
			for !f.published.Load() {
				runtime.Gosched()
			}
		}
		old := f.cur
		f.cur, f.spare = f.spare, old[:0]
		f.pos = 0
		f.outstanding = false
		return
	}
	// No refill in flight (the feed is not yet adopted by a barrier hook, or
	// one window consumed more than half a batch): draw synchronously.
	f.inline++
	f.cur = f.fill(f.cur[:0])
	f.pos = 0
}

// remaining is the number of factors available without producing a batch.
func (f *NoiseFeed) remaining() int { return len(f.cur) - f.pos + len(f.ready) }

// arm opens a refill for the owner lane's next window. Coordinator-only, at
// a barrier.
func (f *NoiseFeed) arm() {
	if f.spare == nil {
		f.spare = make([]float64, 0, f.batch)
	}
	f.published.Store(false)
	f.claimed.Store(false)
	f.outstanding = true
	f.refills++
}

// collect moves a produced refill into ready. Coordinator-only, at a barrier;
// the owner lane's window has ended, so an uncollected refill is published
// unless the consumer already stole it (outstanding=false).
func (f *NoiseFeed) collect() {
	if !f.outstanding {
		return
	}
	if !f.published.Load() {
		// The owner lane never claimed the refill this round (it had no
		// window). Produce it here, at the barrier, where nothing races.
		if f.claimed.CompareAndSwap(false, true) {
			f.spare = f.fill(f.spare[:0])
		} else {
			for !f.published.Load() {
				runtime.Gosched()
			}
		}
	}
	f.ready = f.spare
	f.spare = nil
	f.outstanding = false
}

// RunBarrierTask produces the armed refill on the owner lane. It implements
// BarrierTask and runs at the lane's window start, off the home lane's
// critical path.
func (f *NoiseFeed) RunBarrierTask() bool {
	if !f.claimed.CompareAndSwap(false, true) {
		return false
	}
	f.spare = f.fill(f.spare[:0])
	f.published.Store(true)
	return true
}

// FeedSet owns the noise feeds of one sharded run and drives their refill
// protocol from the engine's barrier hook.
type FeedSet struct {
	batch int
	// feeds are the adopted feeds (coordinator-only). pending holds feeds
	// created but not yet adopted — appended on the home side (at construction
	// or from a mid-run scale-out), merged by the coordinator at the next
	// barrier.
	feeds   []*NoiseFeed
	pending []pendingFeed
}

type pendingFeed struct {
	feed  *NoiseFeed
	owner *Lane
}

// DefaultFeedBatch is the batch size used when NewFeedSet gets batch <= 0:
// large enough that quick-scenario windows consume well under half a batch
// (so refills stay ahead of the consumer), small enough to stay cache-warm.
const DefaultFeedBatch = 512

// NewFeedSet creates an empty feed set.
func NewFeedSet(batch int) *FeedSet {
	if batch <= 0 {
		batch = DefaultFeedBatch
	}
	return &FeedSet{batch: batch}
}

// Attach registers the set's refill protocol on the engine's barrier.
func (fs *FeedSet) Attach(se *ShardedEngine) { se.OnBarrier(fs.barrier) }

// NewFeed creates a prefilled feed whose refills run on owner's windows. The
// feed takes exclusive ownership of rng. A nil owner leaves the feed in pure
// inline mode (it is never armed); feeds created mid-run are adopted at the
// next barrier and fill inline until then.
func (fs *FeedSet) NewFeed(owner *Lane, rng *rand.Rand, sigma float64) *NoiseFeed {
	f := newNoiseFeed(rng, sigma, fs.batch)
	fs.pending = append(fs.pending, pendingFeed{feed: f, owner: owner})
	return f
}

// barrier adopts pending feeds, collects produced refills and arms feeds
// below the low-water mark. It runs on the coordinator with all lanes parked.
func (fs *FeedSet) barrier() {
	if len(fs.pending) > 0 {
		for _, p := range fs.pending {
			if p.owner == nil {
				continue
			}
			p.owner.AddBarrierTask(p.feed)
			fs.feeds = append(fs.feeds, p.feed)
		}
		fs.pending = fs.pending[:0]
	}
	for _, f := range fs.feeds {
		f.collect()
		if !f.outstanding && f.remaining() <= f.batch/2 {
			f.arm()
		}
	}
}

// FeedStats aggregates the set's counters. All fields except Steals are pure
// functions of the simulated computation.
type FeedStats struct {
	// Feeds is the number of feeds ever created (including pending ones).
	Feeds int `json:"feeds"`
	// Refills counts batches armed for owner-lane production.
	Refills uint64 `json:"refills"`
	// Inline counts batches drawn synchronously with no refill in flight.
	Inline uint64 `json:"inline"`
	// Exhausted counts times a consumer drained its batch with a refill still
	// uncollected (and stole or awaited it).
	Exhausted uint64 `json:"exhausted"`
	// Values counts factors consumed across all feeds.
	Values uint64 `json:"values"`
	// Steals counts armed refills the consumer computed before the owner lane
	// got to them. Scheduling-dependent; excluded from report surfaces.
	Steals uint64 `json:"-"`
}

// Stats returns the set's aggregated counters. Call it after Run.
func (fs *FeedSet) Stats() FeedStats {
	s := FeedStats{Feeds: len(fs.feeds) + len(fs.pending)}
	tally := func(f *NoiseFeed) {
		s.Refills += f.refills
		s.Inline += f.inline
		s.Exhausted += f.exhausted
		s.Values += f.consumed
		s.Steals += f.steals
	}
	for _, f := range fs.feeds {
		tally(f)
	}
	for _, p := range fs.pending {
		tally(p.feed)
	}
	return s
}
