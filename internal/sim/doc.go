// Package sim provides a deterministic discrete-event simulation engine.
//
// All components of the autonosql simulator (the replicated store, the
// cluster resource model, workload generators, monitors and controllers) are
// driven by a single virtual clock owned by an Engine. Events are ordered by
// virtual time and, for events scheduled at the same instant, by insertion
// order, which makes every run fully reproducible for a given set of seeds.
package sim
