package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// TestNoiseFeedMatchesLogNormal pins the feed's core contract: consuming
// median * factor values from a feed reproduces LogNormal(rng, median, sigma)
// bit for bit over the same seed — including the non-positive-median guard,
// which must not consume a draw on either side.
func TestNoiseFeedMatchesLogNormal(t *testing.T) {
	const sigma = 0.35
	direct := rand.New(rand.NewSource(99))
	feed := NewFeedSet(16).NewFeed(nil, rand.New(rand.NewSource(99)), sigma)
	medians := []float64{200, 0, 1e-9, 350.5, -4, 0.25, 1e6}
	for i := 0; i < 1000; i++ {
		m := medians[i%len(medians)]
		want := LogNormal(direct, m, sigma)
		got := feed.Value(m)
		if got != want {
			t.Fatalf("draw %d (median %g): feed %v, direct %v", i, m, got, want)
		}
	}
}

// feedDigest runs a sharded topology where the home lane consumes one feed
// value per 100µs tick while the feed's refills run on a producer lane, and
// returns the consumed values as a digest plus the feed-set stats.
func feedDigest(t *testing.T, workers, batch int, seed int64, until time.Duration) (string, FeedStats) {
	t.Helper()
	se, err := NewShardedEngine(time.Millisecond, workers)
	if err != nil {
		t.Fatal(err)
	}
	home, _ := se.NewLane(0)
	owner, _ := se.NewLane(1)
	fs := NewFeedSet(batch)
	fs.Attach(se)
	feed := fs.NewFeed(owner, rand.New(rand.NewSource(seed)), 0.35)

	digest := ""
	var tick Handler
	tick = func(now time.Duration) {
		digest += fmt.Sprintf("%x;", feed.Value(200))
		if now < until {
			home.Engine().After(100*time.Microsecond, tick)
		}
	}
	home.Engine().AfterAt(0, tick)
	// The owner lane needs its own activity so its windows exist.
	var idle Handler
	idle = func(now time.Duration) {
		if now < until {
			owner.Engine().After(time.Millisecond, idle)
		}
	}
	owner.Engine().AfterAt(0, idle)
	if err := se.Run(until); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return digest, fs.Stats()
}

// TestNoiseFeedShardedDeterminism pins that the refill protocol never changes
// the consumed values: a sharded run consuming through owner-lane refills
// yields exactly the direct LogNormal sequence, at any worker count and batch
// size, and the deterministic counters agree across worker counts.
func TestNoiseFeedShardedDeterminism(t *testing.T) {
	const until = 200 * time.Millisecond
	direct := rand.New(rand.NewSource(7))
	want := ""
	for i := 0; i <= int(until/(100*time.Microsecond)); i++ {
		want += fmt.Sprintf("%x;", LogNormal(direct, 200, 0.35))
	}
	var wantStats FeedStats
	for i, cfg := range []struct{ workers, batch int }{
		{1, 64}, {2, 64}, {4, 64}, {1, 16}, {2, 16},
	} {
		got, stats := feedDigest(t, cfg.workers, cfg.batch, 7, until)
		if got != want {
			t.Fatalf("workers=%d batch=%d: consumed values diverged from direct draws", cfg.workers, cfg.batch)
		}
		if stats.Refills == 0 {
			t.Fatalf("workers=%d batch=%d: no refills were armed", cfg.workers, cfg.batch)
		}
		if stats.Values == 0 {
			t.Fatalf("workers=%d batch=%d: no values consumed", cfg.workers, cfg.batch)
		}
		// Deterministic counters must not depend on the worker count (they may
		// depend on the batch size, which changes the refill cadence).
		stats.Steals = 0
		if cfg.batch == 64 {
			if i == 0 {
				wantStats = stats
			} else if stats != wantStats {
				t.Fatalf("workers=%d: deterministic feed stats diverged: %+v vs %+v", cfg.workers, stats, wantStats)
			}
		}
	}
}

// TestNoiseFeedMidRunAdoption pins the scale-out path: a feed created from a
// home-lane handler mid-run fills inline until the next barrier adopts it,
// then refills on its owner lane — and the consumed values still match the
// direct sequence exactly.
func TestNoiseFeedMidRunAdoption(t *testing.T) {
	const until = 100 * time.Millisecond
	se, err := NewShardedEngine(time.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	home, _ := se.NewLane(0)
	owner, _ := se.NewLane(1)
	fs := NewFeedSet(16)
	fs.Attach(se)

	var feed *NoiseFeed
	digest := ""
	var tick Handler
	tick = func(now time.Duration) {
		if now >= 20*time.Millisecond {
			if feed == nil {
				feed = fs.NewFeed(owner, rand.New(rand.NewSource(11)), 0.35)
			}
			digest += fmt.Sprintf("%x;", feed.Value(200))
		}
		if now < until {
			home.Engine().After(100*time.Microsecond, tick)
		}
	}
	home.Engine().AfterAt(0, tick)
	var idle Handler
	idle = func(now time.Duration) {
		if now < until {
			owner.Engine().After(time.Millisecond, idle)
		}
	}
	owner.Engine().AfterAt(0, idle)
	if err := se.Run(until); err != nil {
		t.Fatalf("Run: %v", err)
	}

	direct := rand.New(rand.NewSource(11))
	want := ""
	for i := 0; i < int((until-20*time.Millisecond)/(100*time.Microsecond))+1; i++ {
		want += fmt.Sprintf("%x;", LogNormal(direct, 200, 0.35))
	}
	if digest != want {
		t.Fatal("mid-run adopted feed diverged from direct draws")
	}
	if stats := fs.Stats(); stats.Refills == 0 {
		t.Fatalf("adopted feed never refilled on its owner lane: %+v", stats)
	}
}
