package sim

import (
	"errors"
	"time"
)

// Ticker invokes a handler at a fixed virtual-time period until stopped.
// It is the building block for control loops, anti-entropy sweeps and
// metric aggregation windows inside the simulator.
type Ticker struct {
	engine  *Engine
	period  time.Duration
	handler Handler
	// tickFn is the bound tick method, created once so re-arming does not
	// allocate a new method value per period.
	tickFn  Handler
	next    *Event
	stopped bool
	fired   uint64
}

// NewTicker creates and starts a ticker on engine with the given period.
// The first tick fires one period from now.
func NewTicker(engine *Engine, period time.Duration, handler Handler) (*Ticker, error) {
	if engine == nil {
		return nil, errors.New("sim: nil engine")
	}
	if period <= 0 {
		return nil, errors.New("sim: ticker period must be positive")
	}
	if handler == nil {
		return nil, errors.New("sim: nil ticker handler")
	}
	t := &Ticker{engine: engine, period: period, handler: handler}
	t.tickFn = t.tick
	if err := t.schedule(); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *Ticker) schedule() error {
	ev, err := t.engine.Schedule(t.period, t.tickFn)
	if err != nil {
		return err
	}
	t.next = ev
	return nil
}

func (t *Ticker) tick(now time.Duration) {
	if t.stopped {
		return
	}
	t.fired++
	t.handler(now)
	if t.stopped {
		return
	}
	// Re-arm. Scheduling from within an event handler cannot fail with a
	// past timestamp because the period is positive.
	_ = func() error { return t.schedule() }()
}

// Fired returns how many times the ticker has invoked its handler.
func (t *Ticker) Fired() uint64 { return t.fired }

// Period returns the tick period.
func (t *Ticker) Period() time.Duration { return t.period }

// Stop cancels future ticks. It is safe to call multiple times and from
// within the ticker's own handler.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.next != nil {
		t.next.Cancel()
	}
}
