package sim

import (
	"testing"
	"time"
)

// BenchmarkScheduleFire measures the cost of one schedule + fire cycle on an
// otherwise empty engine: the floor for every hop in the simulator.
func BenchmarkScheduleFire(b *testing.B) {
	e := NewEngine()
	noop := func(time.Duration) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(time.Microsecond, noop)
		e.Step()
	}
}

// BenchmarkQueueChurn keeps a deep queue (as a loaded scenario does) while
// scheduling and firing, exercising the heap's sift paths at realistic depth.
func BenchmarkQueueChurn(b *testing.B) {
	e := NewEngine()
	noop := func(time.Duration) {}
	const depth = 4096
	for i := 0; i < depth; i++ {
		e.After(time.Duration(i+1)*time.Millisecond, noop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(time.Duration(depth)*time.Millisecond, noop)
		e.Step()
	}
}

// BenchmarkEventCascade measures a self-sustaining event chain, the shape of
// the open-loop workload generator: each fired event schedules its successor.
func BenchmarkEventCascade(b *testing.B) {
	e := NewEngine()
	remaining := b.N
	var loop Handler
	loop = func(time.Duration) {
		if remaining > 0 {
			remaining--
			e.After(time.Microsecond, loop)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.After(time.Microsecond, loop)
	for e.Step() {
	}
}

// BenchmarkTicker measures the periodic-callback path used by control loops,
// anti-entropy sweeps and samplers.
func BenchmarkTicker(b *testing.B) {
	e := NewEngine()
	tk, err := NewTicker(e, time.Millisecond, func(time.Duration) {})
	if err != nil {
		b.Fatalf("NewTicker: %v", err)
	}
	defer tk.Stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}
