package sla

import (
	"strings"
	"testing"
	"time"
)

func TestTrackerAccumulatesViolationTime(t *testing.T) {
	s := SLA{MaxWindowP95: 100 * time.Millisecond, MaxReadLatencyP99: 10 * time.Millisecond}
	tr := NewTracker(s)

	// Three 10-second intervals: compliant, window violation, both violated.
	tr.Observe(Observation{Interval: 10 * time.Second, WindowP95: 0.05, ReadLatencyP99: 0.005})
	tr.Observe(Observation{Interval: 10 * time.Second, WindowP95: 0.5, ReadLatencyP99: 0.005})
	tr.Observe(Observation{Interval: 10 * time.Second, WindowP95: 0.5, ReadLatencyP99: 0.5})

	if got := tr.TotalTime(); got != 30*time.Second {
		t.Fatalf("TotalTime = %v, want 30s", got)
	}
	if got := tr.ViolationTime(ClauseWindow); got != 20*time.Second {
		t.Fatalf("window violation time = %v, want 20s", got)
	}
	if got := tr.ViolationTime(ClauseReadLatency); got != 10*time.Second {
		t.Fatalf("read-latency violation time = %v, want 10s", got)
	}
	if got := tr.TotalViolationTime(); got != 20*time.Second {
		t.Fatalf("total violation time = %v, want 20s (overlapping violations must not double count)", got)
	}
	if got := tr.ComplianceRatio(); !approx(got, 1.0/3.0) {
		t.Fatalf("compliance ratio = %v, want 1/3", got)
	}
	if tr.Checks() != 3 || tr.ViolatedChecks() != 2 {
		t.Fatalf("checks=%d violated=%d, want 3 and 2", tr.Checks(), tr.ViolatedChecks())
	}
}

func TestTrackerIgnoresZeroIntervals(t *testing.T) {
	tr := NewTracker(Default())
	if v := tr.Observe(Observation{Interval: 0, WindowP95: 100}); v != nil {
		t.Fatalf("zero-interval observation should be ignored, got %v", v)
	}
	if tr.Checks() != 0 || tr.TotalTime() != 0 {
		t.Fatal("zero-interval observation affected accounting")
	}
}

func TestTrackerComplianceRatioEmpty(t *testing.T) {
	tr := NewTracker(Default())
	if got := tr.ComplianceRatio(); got != 1 {
		t.Fatalf("empty tracker compliance = %v, want 1", got)
	}
}

func TestTrackerViolationMinutes(t *testing.T) {
	tr := NewTracker(SLA{MaxWindowP95: time.Millisecond})
	tr.Observe(Observation{Interval: 90 * time.Second, WindowP95: 10})
	if got := tr.ViolationMinutes(ClauseWindow); !approx(got, 1.5) {
		t.Fatalf("ViolationMinutes = %v, want 1.5", got)
	}
	if got := tr.TotalViolationMinutes(); !approx(got, 1.5) {
		t.Fatalf("TotalViolationMinutes = %v, want 1.5", got)
	}
}

func TestTrackerSummary(t *testing.T) {
	tr := NewTracker(SLA{MaxWindowP95: 100 * time.Millisecond})
	tr.Observe(Observation{Interval: time.Minute, WindowP95: 0.01})
	tr.Observe(Observation{Interval: time.Minute, WindowP95: 1})

	sum := tr.Summary()
	if sum.TotalTime != 2*time.Minute || sum.TotalViolationTime != time.Minute {
		t.Fatalf("unexpected summary %+v", sum)
	}
	if sum.Checks != 2 || sum.ViolatedChecks != 1 {
		t.Fatalf("unexpected summary counts %+v", sum)
	}
	if got := sum.ViolationTimeByCause[ClauseWindow]; got != time.Minute {
		t.Fatalf("per-clause time = %v, want 1m", got)
	}
	text := sum.String()
	if !strings.Contains(text, "compliance 50.00%") || !strings.Contains(text, "window=1.0min") {
		t.Fatalf("summary string %q missing expected fields", text)
	}

	// The summary map must be a copy: mutating it must not affect the tracker.
	sum.ViolationTimeByCause[ClauseWindow] = 0
	if tr.ViolationTime(ClauseWindow) != time.Minute {
		t.Fatal("summary shares state with tracker")
	}
}

func TestTrackerObserveReturnsViolatedClauses(t *testing.T) {
	tr := NewTracker(Default())
	v := tr.Observe(Observation{Interval: time.Second, WindowP95: 100, ErrorRate: 1})
	if len(v) != 2 || v[0] != ClauseWindow || v[1] != ClauseAvailability {
		t.Fatalf("Observe returned %v, want [window availability]", v)
	}
}
