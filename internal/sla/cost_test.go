package sla

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestDefaultCostModelValidates(t *testing.T) {
	if err := DefaultCostModel().Validate(); err != nil {
		t.Fatalf("default cost model invalid: %v", err)
	}
}

func TestCostModelValidateRejectsNegative(t *testing.T) {
	bad := []CostModel{
		{NodeCostPerHour: -1},
		{StaleReadCompensation: -0.01},
		{ViolationPenaltyPerMinute: -5},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: negative cost model validated", i)
		}
	}
}

func TestPriceBreakdown(t *testing.T) {
	m := CostModel{NodeCostPerHour: 1.0, StaleReadCompensation: 0.10, ViolationPenaltyPerMinute: 2.0}
	c := m.Price(Usage{
		NodeSeconds:   2 * 3600, // two node-hours
		StaleReads:    30,
		ViolationTime: 90 * time.Second,
	})
	if !approx(c.Infrastructure, 2.0) {
		t.Errorf("infrastructure = %v, want 2.0", c.Infrastructure)
	}
	if !approx(c.Compensation, 3.0) {
		t.Errorf("compensation = %v, want 3.0", c.Compensation)
	}
	if !approx(c.Penalty, 3.0) {
		t.Errorf("penalty = %v, want 3.0", c.Penalty)
	}
	if !approx(c.Total(), 8.0) {
		t.Errorf("total = %v, want 8.0", c.Total())
	}
}

func TestPriceZeroUsageIsFree(t *testing.T) {
	c := DefaultCostModel().Price(Usage{})
	if c.Total() != 0 {
		t.Fatalf("zero usage cost = %v, want 0", c.Total())
	}
}

// Property: cost components are non-negative and monotone in their usage
// dimension for a non-negative cost model.
func TestPriceMonotoneProperty(t *testing.T) {
	m := DefaultCostModel()
	f := func(nodeSec uint32, stale uint16, violSec uint16, extraNodeSec uint16) bool {
		base := Usage{
			NodeSeconds:   float64(nodeSec),
			StaleReads:    uint64(stale),
			ViolationTime: time.Duration(violSec) * time.Second,
		}
		more := base
		more.NodeSeconds += float64(extraNodeSec)
		c1, c2 := m.Price(base), m.Price(more)
		if c1.Infrastructure < 0 || c1.Compensation < 0 || c1.Penalty < 0 {
			return false
		}
		return c2.Total() >= c1.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCostString(t *testing.T) {
	c := Cost{Infrastructure: 1.5, Compensation: 0.25, Penalty: 0.75}
	s := c.String()
	for _, want := range []string{"total=$2.50", "infra=$1.50", "compensation=$0.25", "penalty=$0.75"} {
		if !strings.Contains(s, want) {
			t.Errorf("cost string %q missing %q", s, want)
		}
	}
}
