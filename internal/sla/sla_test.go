package sla

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default SLA invalid: %v", err)
	}
}

func TestValidateRejectsNegativeLimits(t *testing.T) {
	cases := []SLA{
		{MaxWindowP95: -time.Second},
		{MaxReadLatencyP99: -time.Millisecond},
		{MaxWriteLatencyP99: -time.Millisecond},
		{MaxWindowP95: time.Second, MaxErrorRate: -0.1},
		{MaxWindowP95: time.Second, MaxErrorRate: 1.5},
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: SLA %+v validated but should not", i, s)
		}
	}
}

func TestValidateRejectsUnconstrained(t *testing.T) {
	if err := (SLA{}).Validate(); err == nil {
		t.Fatal("completely unconstrained SLA should be invalid")
	}
}

func TestCheckEachClauseIndependently(t *testing.T) {
	s := SLA{
		MaxWindowP95:       100 * time.Millisecond,
		MaxReadLatencyP99:  10 * time.Millisecond,
		MaxWriteLatencyP99: 20 * time.Millisecond,
		MaxErrorRate:       0.01,
	}
	ok := Observation{WindowP95: 0.05, ReadLatencyP99: 0.005, WriteLatencyP99: 0.01, ErrorRate: 0.001}
	if got := s.Check(ok); len(got) != 0 {
		t.Fatalf("compliant observation flagged: %v", got)
	}
	if !s.Satisfied(ok) {
		t.Fatal("Satisfied should be true for compliant observation")
	}

	cases := []struct {
		name   string
		obs    Observation
		expect Clause
	}{
		{"window", Observation{WindowP95: 0.2}, ClauseWindow},
		{"read latency", Observation{ReadLatencyP99: 0.05}, ClauseReadLatency},
		{"write latency", Observation{WriteLatencyP99: 0.05}, ClauseWriteLatency},
		{"availability", Observation{ErrorRate: 0.5}, ClauseAvailability},
	}
	for _, tc := range cases {
		got := s.Check(tc.obs)
		if len(got) != 1 || got[0] != tc.expect {
			t.Errorf("%s: Check = %v, want [%v]", tc.name, got, tc.expect)
		}
		if s.Satisfied(tc.obs) {
			t.Errorf("%s: Satisfied should be false", tc.name)
		}
	}
}

func TestCheckDisabledClausesNeverViolate(t *testing.T) {
	s := SLA{MaxWindowP95: 50 * time.Millisecond} // only the window clause
	obs := Observation{WindowP95: 0.01, ReadLatencyP99: 99, WriteLatencyP99: 99, ErrorRate: 1}
	if got := s.Check(obs); len(got) != 0 {
		t.Fatalf("disabled clauses flagged: %v", got)
	}
}

func TestCheckMultipleViolationsOrdered(t *testing.T) {
	s := Default()
	obs := Observation{WindowP95: 10, ReadLatencyP99: 10, WriteLatencyP99: 10, ErrorRate: 1}
	got := s.Check(obs)
	want := []Clause{ClauseWindow, ClauseReadLatency, ClauseWriteLatency, ClauseAvailability}
	if len(got) != len(want) {
		t.Fatalf("Check = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Check = %v, want %v", got, want)
		}
	}
}

func TestHeadroomRatios(t *testing.T) {
	s := SLA{
		MaxWindowP95:       100 * time.Millisecond,
		MaxReadLatencyP99:  10 * time.Millisecond,
		MaxWriteLatencyP99: 20 * time.Millisecond,
		MaxErrorRate:       0.01,
	}
	h := s.Headroom(Observation{WindowP95: 0.05, ReadLatencyP99: 0.02, WriteLatencyP99: 0.01, ErrorRate: 0.005})
	if !approx(h.Window, 0.5) || !approx(h.ReadLatency, 2.0) || !approx(h.WriteLatency, 0.5) || !approx(h.Availability, 0.5) {
		t.Fatalf("unexpected headroom %+v", h)
	}
	if !approx(h.MaxRatio(), 2.0) {
		t.Fatalf("MaxRatio = %v, want 2.0", h.MaxRatio())
	}
}

func TestHeadroomDisabledClausesAreZero(t *testing.T) {
	s := SLA{MaxWindowP95: time.Second}
	h := s.Headroom(Observation{WindowP95: 0.5, ReadLatencyP99: 100, ErrorRate: 1})
	if h.ReadLatency != 0 || h.WriteLatency != 0 || h.Availability != 0 {
		t.Fatalf("disabled clauses should have zero headroom ratio: %+v", h)
	}
	if !approx(h.Window, 0.5) {
		t.Fatalf("window headroom = %v, want 0.5", h.Window)
	}
}

// Property: an observation violates a clause exactly when its headroom ratio
// for that clause exceeds one.
func TestCheckMatchesHeadroomProperty(t *testing.T) {
	s := Default()
	f := func(window, rlat, wlat, errRate uint16) bool {
		obs := Observation{
			WindowP95:       float64(window) / 1e4,
			ReadLatencyP99:  float64(rlat) / 1e6,
			WriteLatencyP99: float64(wlat) / 1e6,
			ErrorRate:       float64(errRate) / float64(1<<16),
		}
		violated := make(map[Clause]bool)
		for _, c := range s.Check(obs) {
			violated[c] = true
		}
		h := s.Headroom(obs)
		return violated[ClauseWindow] == (h.Window > 1) &&
			violated[ClauseReadLatency] == (h.ReadLatency > 1) &&
			violated[ClauseWriteLatency] == (h.WriteLatency > 1) &&
			violated[ClauseAvailability] == (h.Availability > 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestClauseStrings(t *testing.T) {
	for _, c := range Clauses() {
		if strings.HasPrefix(c.String(), "clause(") {
			t.Errorf("clause %d has no symbolic name", int(c))
		}
	}
	if Clause(99).String() != "clause(99)" {
		t.Errorf("unknown clause should fall back to numeric form")
	}
}

func TestSLAString(t *testing.T) {
	s := Default().String()
	for _, want := range []string{"window", "read", "write", "error rate"} {
		if !strings.Contains(s, want) {
			t.Errorf("SLA string %q missing %q", s, want)
		}
	}
	if got := (SLA{}).String(); got != "SLA{unconstrained}" {
		t.Errorf("empty SLA string = %q", got)
	}
}

func approx(got, want float64) bool {
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	return diff < 1e-9
}
