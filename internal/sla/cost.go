package sla

import (
	"fmt"
	"time"
)

// CostModel prices a run: infrastructure cost per node-hour, compensation
// cost per stale read served to a client (the paper's double-booking
// example) and a contractual penalty per minute of SLA violation.
//
// The paper motivates the autonomous system with exactly this trade-off: a
// too-strict static configuration over-allocates resources (high
// infrastructure cost), a too-loose one causes inconsistencies the business
// has to compensate for.
type CostModel struct {
	// NodeCostPerHour is the price of one database node for one hour.
	NodeCostPerHour float64
	// StaleReadCompensation is the expected business cost of serving one
	// stale read (compensation vouchers, double-booking resolution, ...).
	StaleReadCompensation float64
	// ViolationPenaltyPerMinute is the contractual penalty per minute during
	// which the SLA was violated.
	ViolationPenaltyPerMinute float64
}

// DefaultCostModel prices nodes at $0.50/hour, stale reads at $0.02 each and
// SLA violations at $1.00 per violation-minute.
func DefaultCostModel() CostModel {
	return CostModel{
		NodeCostPerHour:           0.50,
		StaleReadCompensation:     0.02,
		ViolationPenaltyPerMinute: 1.00,
	}
}

// Validate reports whether the cost model is usable.
func (c CostModel) Validate() error {
	if c.NodeCostPerHour < 0 || c.StaleReadCompensation < 0 || c.ViolationPenaltyPerMinute < 0 {
		return fmt.Errorf("sla: cost model components must be non-negative: %+v", c)
	}
	return nil
}

// Usage captures the billable quantities of a run.
type Usage struct {
	// NodeSeconds is accumulated (node count × seconds).
	NodeSeconds float64
	// StaleReads is the number of reads that returned stale data.
	StaleReads uint64
	// ViolationTime is the total time during which the SLA was violated.
	ViolationTime time.Duration
}

// Cost is the priced breakdown of a run.
type Cost struct {
	// Infrastructure is the node-hour cost.
	Infrastructure float64
	// Compensation is the stale-read compensation cost.
	Compensation float64
	// Penalty is the SLA violation penalty.
	Penalty float64
}

// Total returns the sum of all components.
func (c Cost) Total() float64 { return c.Infrastructure + c.Compensation + c.Penalty }

// String renders the breakdown for CLI output.
func (c Cost) String() string {
	return fmt.Sprintf("total=$%.2f (infra=$%.2f compensation=$%.2f penalty=$%.2f)",
		c.Total(), c.Infrastructure, c.Compensation, c.Penalty)
}

// Price converts usage into a cost breakdown.
func (c CostModel) Price(u Usage) Cost {
	return Cost{
		Infrastructure: u.NodeSeconds / 3600 * c.NodeCostPerHour,
		Compensation:   float64(u.StaleReads) * c.StaleReadCompensation,
		Penalty:        u.ViolationTime.Minutes() * c.ViolationPenaltyPerMinute,
	}
}
