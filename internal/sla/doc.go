// Package sla implements the extended service-level agreement the paper
// builds its autonomous system around: next to the usual bounds on
// performance (latency) and availability (error rate), the SLA also bounds
// the maximum size of the inconsistency window of the eventually-consistent
// store.
//
// The package provides three pieces:
//
//   - SLA: the agreement itself, with a Check method that evaluates a single
//     observation interval against every clause.
//   - Tracker: violation accounting over a whole run, expressed as
//     violation-minutes per clause, which is how the experiments report SLA
//     compliance.
//   - CostModel: the financial side of the paper's motivation — the cost of
//     infrastructure (node-hours), the compensation cost of stale reads
//     (e.g. double bookings in the e-commerce example), and contractual
//     penalties for SLA violations.
package sla
