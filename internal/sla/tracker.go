package sla

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Tracker accumulates SLA compliance over a run. Each observation interval
// is checked against every clause; intervals in violation contribute their
// length to the violation time of the violated clauses.
type Tracker struct {
	sla SLA

	totalTime     time.Duration
	violationTime map[Clause]time.Duration
	// anyViolation is time during which at least one clause was violated
	// (clause violations can overlap, so it is not the sum of the per-clause
	// times).
	anyViolation time.Duration

	checks   uint64
	violated uint64
}

// NewTracker creates a tracker for the given SLA.
func NewTracker(s SLA) *Tracker {
	return &Tracker{
		sla:           s,
		violationTime: make(map[Clause]time.Duration),
	}
}

// SLA returns the agreement being tracked.
func (t *Tracker) SLA() SLA { return t.sla }

// Observe folds one measurement interval into the compliance accounting and
// returns the clauses it violated.
func (t *Tracker) Observe(o Observation) []Clause {
	if o.Interval <= 0 {
		return nil
	}
	t.checks++
	t.totalTime += o.Interval
	violated := t.sla.Check(o)
	if len(violated) > 0 {
		t.violated++
		t.anyViolation += o.Interval
		for _, c := range violated {
			t.violationTime[c] += o.Interval
		}
	}
	return violated
}

// TotalTime returns the total observed time.
func (t *Tracker) TotalTime() time.Duration { return t.totalTime }

// Checks returns the number of observed intervals.
func (t *Tracker) Checks() uint64 { return t.checks }

// ViolatedChecks returns the number of intervals with at least one violation.
func (t *Tracker) ViolatedChecks() uint64 { return t.violated }

// ViolationTime returns the accumulated violation time for one clause.
func (t *Tracker) ViolationTime(c Clause) time.Duration { return t.violationTime[c] }

// ViolationMinutes returns the accumulated violation time for one clause in
// minutes, the unit the experiment tables report.
func (t *Tracker) ViolationMinutes(c Clause) float64 {
	return t.violationTime[c].Minutes()
}

// TotalViolationTime returns the time during which at least one clause was
// violated.
func (t *Tracker) TotalViolationTime() time.Duration { return t.anyViolation }

// TotalViolationMinutes returns TotalViolationTime in minutes.
func (t *Tracker) TotalViolationMinutes() float64 { return t.anyViolation.Minutes() }

// ComplianceRatio returns the fraction of observed time during which every
// clause held. It returns 1 when nothing has been observed yet.
func (t *Tracker) ComplianceRatio() float64 {
	if t.totalTime <= 0 {
		return 1
	}
	return 1 - float64(t.anyViolation)/float64(t.totalTime)
}

// Summary is an exportable snapshot of the tracker state.
type Summary struct {
	TotalTime            time.Duration
	TotalViolationTime   time.Duration
	ComplianceRatio      float64
	ViolationTimeByCause map[Clause]time.Duration
	Checks               uint64
	ViolatedChecks       uint64
}

// Summary returns a copy of the accumulated compliance accounting.
func (t *Tracker) Summary() Summary {
	byClause := make(map[Clause]time.Duration, len(t.violationTime))
	for c, d := range t.violationTime {
		byClause[c] = d
	}
	return Summary{
		TotalTime:            t.totalTime,
		TotalViolationTime:   t.anyViolation,
		ComplianceRatio:      t.ComplianceRatio(),
		ViolationTimeByCause: byClause,
		Checks:               t.checks,
		ViolatedChecks:       t.violated,
	}
}

// String renders the summary for CLI output.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "compliance %.2f%% over %v (%d/%d intervals violated)",
		s.ComplianceRatio*100, s.TotalTime, s.ViolatedChecks, s.Checks)
	if len(s.ViolationTimeByCause) > 0 {
		clauses := make([]Clause, 0, len(s.ViolationTimeByCause))
		for c := range s.ViolationTimeByCause {
			clauses = append(clauses, c)
		}
		sort.Slice(clauses, func(i, j int) bool { return clauses[i] < clauses[j] })
		parts := make([]string, 0, len(clauses))
		for _, c := range clauses {
			parts = append(parts, fmt.Sprintf("%v=%.1fmin", c, s.ViolationTimeByCause[c].Minutes()))
		}
		fmt.Fprintf(&b, " [%s]", strings.Join(parts, " "))
	}
	return b.String()
}
