package sla

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// SLA is the extended service-level agreement: limits on the inconsistency
// window, client-observed latency and availability. A zero limit disables
// the corresponding clause.
type SLA struct {
	// MaxWindowP95 bounds the 95th percentile of the inconsistency window.
	MaxWindowP95 time.Duration
	// MaxReadLatencyP99 bounds the 99th percentile of client read latency.
	MaxReadLatencyP99 time.Duration
	// MaxWriteLatencyP99 bounds the 99th percentile of client write latency.
	MaxWriteLatencyP99 time.Duration
	// MaxErrorRate bounds the fraction of failed operations per interval
	// (the availability clause).
	MaxErrorRate float64
}

// Default returns the SLA used by the end-to-end experiments: a 250 ms
// inconsistency-window bound, 20 ms read and 25 ms write latency bounds and
// 99.9% availability.
func Default() SLA {
	return SLA{
		MaxWindowP95:       250 * time.Millisecond,
		MaxReadLatencyP99:  20 * time.Millisecond,
		MaxWriteLatencyP99: 25 * time.Millisecond,
		MaxErrorRate:       0.001,
	}
}

// Validate reports whether the SLA is internally consistent.
func (s SLA) Validate() error {
	if s.MaxWindowP95 < 0 || s.MaxReadLatencyP99 < 0 || s.MaxWriteLatencyP99 < 0 {
		return errors.New("sla: limits must be non-negative")
	}
	if s.MaxErrorRate < 0 || s.MaxErrorRate > 1 {
		return errors.New("sla: error-rate limit must be within [0, 1]")
	}
	if s.MaxWindowP95 == 0 && s.MaxReadLatencyP99 == 0 && s.MaxWriteLatencyP99 == 0 && s.MaxErrorRate == 0 {
		return errors.New("sla: at least one clause must be set")
	}
	return nil
}

// String renders the SLA clauses compactly.
func (s SLA) String() string {
	parts := make([]string, 0, 4)
	if s.MaxWindowP95 > 0 {
		parts = append(parts, fmt.Sprintf("window p95 <= %v", s.MaxWindowP95))
	}
	if s.MaxReadLatencyP99 > 0 {
		parts = append(parts, fmt.Sprintf("read p99 <= %v", s.MaxReadLatencyP99))
	}
	if s.MaxWriteLatencyP99 > 0 {
		parts = append(parts, fmt.Sprintf("write p99 <= %v", s.MaxWriteLatencyP99))
	}
	if s.MaxErrorRate > 0 {
		parts = append(parts, fmt.Sprintf("error rate <= %.4f", s.MaxErrorRate))
	}
	if len(parts) == 0 {
		return "SLA{unconstrained}"
	}
	return "SLA{" + strings.Join(parts, ", ") + "}"
}

// Clause identifies one clause of the SLA.
type Clause int

// SLA clauses.
const (
	// ClauseWindow is the inconsistency-window bound.
	ClauseWindow Clause = iota + 1
	// ClauseReadLatency is the read latency bound.
	ClauseReadLatency
	// ClauseWriteLatency is the write latency bound.
	ClauseWriteLatency
	// ClauseAvailability is the error-rate bound.
	ClauseAvailability
)

// Clauses lists every clause in a stable order.
func Clauses() []Clause {
	return []Clause{ClauseWindow, ClauseReadLatency, ClauseWriteLatency, ClauseAvailability}
}

// String implements fmt.Stringer.
func (c Clause) String() string {
	switch c {
	case ClauseWindow:
		return "window"
	case ClauseReadLatency:
		return "read-latency"
	case ClauseWriteLatency:
		return "write-latency"
	case ClauseAvailability:
		return "availability"
	default:
		return fmt.Sprintf("clause(%d)", int(c))
	}
}

// Observation is one measurement interval, as seen by whoever is evaluating
// the SLA (the controller uses monitor estimates; experiments use simulator
// ground truth). All values are expressed in seconds and fractions.
type Observation struct {
	// At is the virtual time at the end of the interval.
	At time.Duration
	// Interval is the length of the measurement interval.
	Interval time.Duration
	// WindowP95 is the 95th-percentile inconsistency window in seconds.
	WindowP95 float64
	// ReadLatencyP99 is the 99th-percentile read latency in seconds.
	ReadLatencyP99 float64
	// WriteLatencyP99 is the 99th-percentile write latency in seconds.
	WriteLatencyP99 float64
	// ErrorRate is the fraction of failed operations in the interval.
	ErrorRate float64
}

// Check returns the clauses violated by the observation, in Clauses() order.
func (s SLA) Check(o Observation) []Clause {
	var out []Clause
	if s.MaxWindowP95 > 0 && o.WindowP95 > s.MaxWindowP95.Seconds() {
		out = append(out, ClauseWindow)
	}
	if s.MaxReadLatencyP99 > 0 && o.ReadLatencyP99 > s.MaxReadLatencyP99.Seconds() {
		out = append(out, ClauseReadLatency)
	}
	if s.MaxWriteLatencyP99 > 0 && o.WriteLatencyP99 > s.MaxWriteLatencyP99.Seconds() {
		out = append(out, ClauseWriteLatency)
	}
	if s.MaxErrorRate > 0 && o.ErrorRate > s.MaxErrorRate {
		out = append(out, ClauseAvailability)
	}
	return out
}

// Satisfied reports whether the observation violates no clause.
func (s SLA) Satisfied(o Observation) bool { return len(s.Check(o)) == 0 }

// Headroom expresses how close the observation is to each limit as a ratio
// observed/limit (1.0 means exactly at the limit, >1 means violated).
// Clauses without a limit report zero.
type Headroom struct {
	Window       float64
	ReadLatency  float64
	WriteLatency float64
	Availability float64
}

// Headroom computes the observed/limit ratio for every clause.
func (s SLA) Headroom(o Observation) Headroom {
	var h Headroom
	if s.MaxWindowP95 > 0 {
		h.Window = o.WindowP95 / s.MaxWindowP95.Seconds()
	}
	if s.MaxReadLatencyP99 > 0 {
		h.ReadLatency = o.ReadLatencyP99 / s.MaxReadLatencyP99.Seconds()
	}
	if s.MaxWriteLatencyP99 > 0 {
		h.WriteLatency = o.WriteLatencyP99 / s.MaxWriteLatencyP99.Seconds()
	}
	if s.MaxErrorRate > 0 {
		h.Availability = o.ErrorRate / s.MaxErrorRate
	}
	return h
}

// MaxRatio returns the largest ratio across all clauses — a single "how bad
// is it" number used for ranking configurations.
func (h Headroom) MaxRatio() float64 {
	max := h.Window
	for _, v := range []float64{h.ReadLatency, h.WriteLatency, h.Availability} {
		if v > max {
			max = v
		}
	}
	return max
}
