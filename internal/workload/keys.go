package workload

import (
	"math/rand"
	"strconv"
	"sync"

	"autonosql/internal/sim"
	"autonosql/internal/store"
)

// KeyChooser selects which key the next operation targets.
type KeyChooser interface {
	// NextRead returns the key for a read operation.
	NextRead() store.Key
	// NextWrite returns the key for a write operation.
	NextWrite() store.Key
}

// UniformKeys picks keys uniformly from a fixed keyspace.
type UniformKeys struct {
	n   int
	rng *rand.Rand
}

// NewUniformKeys creates a uniform chooser over n keys.
func NewUniformKeys(n int, rng *rand.Rand) *UniformKeys {
	if n <= 0 {
		n = 1
	}
	return &UniformKeys{n: n, rng: rng}
}

// NextRead implements KeyChooser.
func (u *UniformKeys) NextRead() store.Key { return keyName(u.rng.Intn(u.n)) }

// NextWrite implements KeyChooser.
func (u *UniformKeys) NextWrite() store.Key { return keyName(u.rng.Intn(u.n)) }

// ZipfianKeys picks keys with a zipfian popularity distribution, as YCSB
// does: a small set of hot keys receives most of the traffic.
type ZipfianKeys struct {
	n    int
	zipf *sim.Zipf
}

// NewZipfianKeys creates a zipfian chooser over n keys with exponent s
// (YCSB's default skew corresponds to s≈1.3 here).
func NewZipfianKeys(n int, s float64, rng *rand.Rand) *ZipfianKeys {
	if n <= 0 {
		n = 1
	}
	return &ZipfianKeys{n: n, zipf: sim.NewZipf(rng, s, uint64(n))}
}

// NextRead implements KeyChooser.
func (z *ZipfianKeys) NextRead() store.Key { return keyName(int(z.zipf.Next())) }

// NextWrite implements KeyChooser.
func (z *ZipfianKeys) NextWrite() store.Key { return keyName(int(z.zipf.Next())) }

// LatestKeys models YCSB workload D: writes append new keys and reads are
// skewed towards the most recently inserted ones.
type LatestKeys struct {
	next int
	zipf *sim.Zipf
	rng  *rand.Rand
}

// NewLatestKeys creates a latest-skewed chooser seeded with initial existing
// keys.
func NewLatestKeys(initial int, rng *rand.Rand) *LatestKeys {
	if initial <= 0 {
		initial = 1
	}
	return &LatestKeys{next: initial, zipf: sim.NewZipf(rng, 1.3, 1024), rng: rng}
}

// NextRead implements KeyChooser: reads target recent keys.
func (l *LatestKeys) NextRead() store.Key {
	offset := int(l.zipf.Next())
	idx := l.next - 1 - offset
	if idx < 0 {
		idx = 0
	}
	return keyName(idx)
}

// NextWrite implements KeyChooser: each write inserts the next key.
func (l *LatestKeys) NextWrite() store.Key {
	k := keyName(l.next)
	l.next++
	return k
}

// keyTableSize bounds the precomputed key-name table. The default keyspace
// (10000 keys) fits comfortably; indices beyond the table fall back to
// formatting. 1<<14 entries cost ~400 KB once per process.
const keyTableSize = 1 << 14

var (
	keyTableOnce sync.Once
	keyTable     []store.Key
)

// keyName returns the canonical name of key i. Key choosers call it once per
// operation, so the common indices are served from a shared immutable table
// instead of allocating a fresh string per operation.
func keyName(i int) store.Key {
	if i >= 0 && i < keyTableSize {
		keyTableOnce.Do(func() {
			t := make([]store.Key, keyTableSize)
			for j := range t {
				t[j] = store.Key("key-" + strconv.Itoa(j))
			}
			keyTable = t
		})
		return keyTable[i]
	}
	return store.Key("key-" + strconv.Itoa(i))
}
