package workload

import (
	"math/rand"
	"strconv"
	"sync"

	"autonosql/internal/sim"
	"autonosql/internal/store"
)

// KeyChooser selects which key the next operation targets.
type KeyChooser interface {
	// NextRead returns the key for a read operation.
	NextRead() store.Key
	// NextWrite returns the key for a write operation.
	NextWrite() store.Key
}

// Slicer is implemented by key choosers that can confine themselves to a
// fixed window of the shared key namespace. Multi-tenant scenarios use it to
// carve a disjoint slice per tenant, so tenants never collide on keys
// whatever their individual distributions do — including append-style
// distributions whose keyspace would otherwise grow without bound.
type Slicer interface {
	// Slice confines every key the chooser picks to [base, base+size).
	Slice(base, size int)
}

// Slice confines c to the key window [base, base+size) when the chooser
// supports slicing; it reports whether the window was applied.
func Slice(c KeyChooser, base, size int) bool {
	if s, ok := c.(Slicer); ok && size > 0 && base >= 0 {
		s.Slice(base, size)
		return true
	}
	return false
}

// UniformKeys picks keys uniformly from a fixed keyspace.
type UniformKeys struct {
	n    int
	base int
	rng  *rand.Rand
}

// NewUniformKeys creates a uniform chooser over n keys.
func NewUniformKeys(n int, rng *rand.Rand) *UniformKeys {
	if n <= 0 {
		n = 1
	}
	return &UniformKeys{n: n, rng: rng}
}

// Slice implements Slicer.
func (u *UniformKeys) Slice(base, size int) {
	u.base = base
	if size < u.n {
		u.n = size
	}
}

// NextRead implements KeyChooser.
func (u *UniformKeys) NextRead() store.Key { return keyName(u.base + u.rng.Intn(u.n)) }

// NextWrite implements KeyChooser.
func (u *UniformKeys) NextWrite() store.Key { return keyName(u.base + u.rng.Intn(u.n)) }

// ZipfianKeys picks keys with a zipfian popularity distribution, as YCSB
// does: a small set of hot keys receives most of the traffic.
type ZipfianKeys struct {
	n    int
	base int
	zipf *sim.Zipf
}

// NewZipfianKeys creates a zipfian chooser over n keys with exponent s
// (YCSB's default skew corresponds to s≈1.3 here).
func NewZipfianKeys(n int, s float64, rng *rand.Rand) *ZipfianKeys {
	if n <= 0 {
		n = 1
	}
	return &ZipfianKeys{n: n, zipf: sim.NewZipf(rng, s, uint64(n))}
}

// Slice implements Slicer. The zipf generator already draws from [0, n), so
// only the base moves; a size below n clamps by wrapping the tail indices.
func (z *ZipfianKeys) Slice(base, size int) {
	z.base = base
	if size < z.n {
		z.n = size
	}
}

// NextRead implements KeyChooser.
func (z *ZipfianKeys) NextRead() store.Key { return keyName(z.base + int(z.zipf.Next())%z.n) }

// NextWrite implements KeyChooser.
func (z *ZipfianKeys) NextWrite() store.Key { return keyName(z.base + int(z.zipf.Next())%z.n) }

// LatestKeys models YCSB workload D: writes append new keys and reads are
// skewed towards the most recently inserted ones.
type LatestKeys struct {
	next int
	base int
	// bound, when positive, wraps the append sequence so a sliced chooser
	// stays inside its window: logical insert i lands on physical key
	// base + i%bound. Unsliced choosers keep the unbounded append-only
	// keyspace of YCSB workload D.
	bound int
	zipf  *sim.Zipf
	rng   *rand.Rand
}

// NewLatestKeys creates a latest-skewed chooser seeded with initial existing
// keys.
func NewLatestKeys(initial int, rng *rand.Rand) *LatestKeys {
	if initial <= 0 {
		initial = 1
	}
	return &LatestKeys{next: initial, zipf: sim.NewZipf(rng, 1.3, 1024), rng: rng}
}

// Slice implements Slicer. The append sequence keeps its "latest" recency
// shape but wraps physically inside the window, so a latest-distribution
// tenant can never write into a neighbouring tenant's slice.
func (l *LatestKeys) Slice(base, size int) {
	l.base = base
	l.bound = size
	if l.next > size {
		l.next = size
	}
}

// key maps a logical insert index onto the physical key, wrapping sliced
// choosers inside their window.
func (l *LatestKeys) key(idx int) store.Key {
	if l.bound > 0 {
		idx %= l.bound
	}
	return keyName(l.base + idx)
}

// NextRead implements KeyChooser: reads target recent keys.
func (l *LatestKeys) NextRead() store.Key {
	offset := int(l.zipf.Next())
	idx := l.next - 1 - offset
	if idx < 0 {
		idx = 0
	}
	return l.key(idx)
}

// NextWrite implements KeyChooser: each write inserts the next key.
func (l *LatestKeys) NextWrite() store.Key {
	k := l.key(l.next)
	l.next++
	return k
}

// keyTableSize bounds the precomputed key-name table. The default keyspace
// (10000 keys) fits comfortably; indices beyond the table fall back to
// formatting. 1<<14 entries cost ~400 KB once per process.
const keyTableSize = 1 << 14

var (
	keyTableOnce sync.Once
	keyTable     []store.Key
)

// KeyIndex reports the index i of a key in the canonical "key-<i>" namespace
// every built-in chooser draws from. Keys outside the namespace (including
// non-canonical spellings like "key-007") report ok=false; trace recording
// falls back to carrying such keys verbatim.
func KeyIndex(k store.Key) (int, bool) {
	s := string(k)
	if len(s) < 5 || s[:4] != "key-" {
		return 0, false
	}
	i, err := strconv.Atoi(s[4:])
	if err != nil || i < 0 || keyName(i) != k {
		return 0, false
	}
	return i, true
}

// keyName returns the canonical name of key i. Key choosers call it once per
// operation, so the common indices are served from a shared immutable table
// instead of allocating a fresh string per operation.
func keyName(i int) store.Key {
	if i >= 0 && i < keyTableSize {
		keyTableOnce.Do(func() {
			t := make([]store.Key, keyTableSize)
			for j := range t {
				t[j] = store.Key("key-" + strconv.Itoa(j))
			}
			keyTable = t
		})
		return keyTable[i]
	}
	return store.Key("key-" + strconv.Itoa(i))
}
