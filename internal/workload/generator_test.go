package workload

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"autonosql/internal/sim"
	"autonosql/internal/store"
)

// fakeTarget implements Target and records issued operations, completing
// them immediately with configurable results.
type fakeTarget struct {
	engine *sim.Engine
	reads  int
	writes int
	fail   bool
	stale  bool
}

func (f *fakeTarget) Read(key store.Key, cb func(store.Result)) {
	f.reads++
	res := store.Result{Kind: store.OpRead, Key: key, Latency: time.Millisecond, Stale: f.stale}
	if f.fail {
		res.Err = errors.New("injected")
	}
	if cb != nil {
		f.engine.MustSchedule(time.Millisecond, func(time.Duration) { cb(res) })
	}
}

func (f *fakeTarget) Write(key store.Key, cb func(store.Result)) {
	f.writes++
	res := store.Result{Kind: store.OpWrite, Key: key, Latency: 2 * time.Millisecond}
	if f.fail {
		res.Err = errors.New("injected")
	}
	if cb != nil {
		f.engine.MustSchedule(time.Millisecond, func(time.Duration) { cb(res) })
	}
}

func newGenerator(t *testing.T, cfg Config, target Target, engine *sim.Engine) *Generator {
	t.Helper()
	g, err := NewGenerator(cfg, engine, target, sim.NewRandSource(1))
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	return g
}

func TestGeneratorValidation(t *testing.T) {
	engine := sim.NewEngine()
	target := &fakeTarget{engine: engine}
	valid := Config{
		Profile: ConstantProfile{OpsPerSec: 10},
		Mix:     Mix{ReadFraction: 0.5},
		Keys:    NewUniformKeys(10, sim.NewRandSource(1).Stream("k")),
	}
	if _, err := NewGenerator(valid, nil, target, sim.NewRandSource(1)); err == nil {
		t.Fatal("nil engine accepted")
	}
	bad := valid
	bad.Profile = nil
	if _, err := NewGenerator(bad, engine, target, sim.NewRandSource(1)); err == nil {
		t.Fatal("nil profile accepted")
	}
	bad = valid
	bad.Keys = nil
	if _, err := NewGenerator(bad, engine, target, sim.NewRandSource(1)); err == nil {
		t.Fatal("nil keys accepted")
	}
	bad = valid
	bad.Mix.ReadFraction = 1.5
	if _, err := NewGenerator(bad, engine, target, sim.NewRandSource(1)); err == nil {
		t.Fatal("invalid mix accepted")
	}
}

func TestGeneratorIssuesApproximateRate(t *testing.T) {
	engine := sim.NewEngine()
	target := &fakeTarget{engine: engine}
	g := newGenerator(t, Config{
		Profile: ConstantProfile{OpsPerSec: 200},
		Mix:     Mix{ReadFraction: 0.5},
		Keys:    NewUniformKeys(100, sim.NewRandSource(2).Stream("k")),
		Until:   10 * time.Second,
	}, target, engine)
	g.Start()
	if err := engine.Run(12 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	total := target.reads + target.writes
	if total < 1500 || total > 2500 {
		t.Fatalf("issued %d ops at 200 ops/s over 10 s, want ~2000", total)
	}
	stats := g.Stats()
	if stats.ReadsIssued+stats.WritesIssued != uint64(total) {
		t.Fatal("generator stats disagree with target counts")
	}
	// 50/50 mix should be roughly balanced.
	ratio := float64(target.reads) / float64(total)
	if ratio < 0.4 || ratio > 0.6 {
		t.Fatalf("read ratio = %.2f, want ~0.5", ratio)
	}
	if stats.ReadLatency.Count == 0 || stats.WriteLatency.Count == 0 {
		t.Fatal("latency histograms not populated")
	}
	if stats.LastIssueRate != 200 {
		t.Fatalf("LastIssueRate = %v, want 200", stats.LastIssueRate)
	}
}

func TestGeneratorStops(t *testing.T) {
	engine := sim.NewEngine()
	target := &fakeTarget{engine: engine}
	g := newGenerator(t, Config{
		Profile: ConstantProfile{OpsPerSec: 100},
		Mix:     Mix{ReadFraction: 1},
		Keys:    NewUniformKeys(10, sim.NewRandSource(3).Stream("k")),
	}, target, engine)
	g.Start()
	if err := engine.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	g.Stop()
	countAtStop := target.reads
	if err := engine.Run(3 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// A single already-scheduled arrival may still fire; no more than that.
	if target.reads > countAtStop+1 {
		t.Fatalf("generator kept issuing after Stop: %d -> %d", countAtStop, target.reads)
	}
}

func TestGeneratorZeroRateIdles(t *testing.T) {
	engine := sim.NewEngine()
	target := &fakeTarget{engine: engine}
	g := newGenerator(t, Config{
		Profile: StepProfile{Base: 0, Peak: 100, From: 2 * time.Second, To: 3 * time.Second},
		Mix:     Mix{ReadFraction: 1},
		Keys:    NewUniformKeys(10, sim.NewRandSource(4).Stream("k")),
		Until:   4 * time.Second,
	}, target, engine)
	g.Start()
	if err := engine.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if target.reads != 0 {
		t.Fatalf("ops issued during zero-rate period: %d", target.reads)
	}
	if err := engine.Run(5 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if target.reads == 0 {
		t.Fatal("no ops issued during the peak period")
	}
}

func TestGeneratorMaxRateCap(t *testing.T) {
	engine := sim.NewEngine()
	target := &fakeTarget{engine: engine}
	g := newGenerator(t, Config{
		Profile: ConstantProfile{OpsPerSec: 100000},
		Mix:     Mix{ReadFraction: 1},
		Keys:    NewUniformKeys(10, sim.NewRandSource(5).Stream("k")),
		Until:   time.Second,
		MaxRate: 100,
	}, target, engine)
	g.Start()
	if err := engine.Run(2 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if target.reads > 200 {
		t.Fatalf("rate cap not applied: %d ops in 1s", target.reads)
	}
}

func TestGeneratorErrorAndStaleAccounting(t *testing.T) {
	engine := sim.NewEngine()
	target := &fakeTarget{engine: engine, fail: true}
	g := newGenerator(t, Config{
		Profile: ConstantProfile{OpsPerSec: 100},
		Mix:     Mix{ReadFraction: 0.5},
		Keys:    NewUniformKeys(10, sim.NewRandSource(6).Stream("k")),
		Until:   2 * time.Second,
	}, target, engine)
	g.Start()
	if err := engine.Run(3 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	stats := g.Stats()
	if stats.ReadErrors == 0 || stats.WriteErrors == 0 {
		t.Fatalf("errors not counted: %+v", stats)
	}
	if stats.ReadLatency.Count != 0 {
		t.Fatal("failed reads should not contribute latency samples")
	}

	engine2 := sim.NewEngine()
	staleTarget := &fakeTarget{engine: engine2, stale: true}
	g2, err := NewGenerator(Config{
		Profile: ConstantProfile{OpsPerSec: 100},
		Mix:     Mix{ReadFraction: 1},
		Keys:    NewUniformKeys(10, sim.NewRandSource(7).Stream("k")),
		Until:   2 * time.Second,
	}, engine2, staleTarget, sim.NewRandSource(7))
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	g2.Start()
	if err := engine2.Run(3 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if g2.Stats().StaleReads == 0 {
		t.Fatal("stale reads not counted")
	}
}

func TestKeyChoosers(t *testing.T) {
	rng := sim.NewRandSource(1).Stream("k")
	u := NewUniformKeys(100, rng)
	for i := 0; i < 1000; i++ {
		if !strings.HasPrefix(string(u.NextRead()), "key-") {
			t.Fatal("uniform key format wrong")
		}
		_ = u.NextWrite()
	}
	z := NewZipfianKeys(1000, 1.3, rng)
	counts := map[store.Key]int{}
	for i := 0; i < 5000; i++ {
		counts[z.NextRead()]++
		_ = z.NextWrite()
	}
	if counts["key-0"] < counts["key-500"] {
		t.Fatal("zipfian keys not skewed towards low indices")
	}
	l := NewLatestKeys(10, rng)
	first := l.NextWrite()
	second := l.NextWrite()
	if first == second {
		t.Fatal("latest writer should generate fresh keys")
	}
	for i := 0; i < 100; i++ {
		if l.NextRead() == "" {
			t.Fatal("latest reader returned empty key")
		}
	}
	zeroU := NewUniformKeys(0, rng)
	if zeroU.NextRead() != "key-0" {
		t.Fatal("degenerate uniform keyspace should clamp to one key")
	}
	zeroL := NewLatestKeys(0, rng)
	if zeroL.NextRead() == "" {
		t.Fatal("degenerate latest keyspace should still work")
	}
}

// TestSlicedChoosersStayInWindow pins the multi-tenant disjointness
// guarantee: a chooser confined with Slice never emits a key outside
// [base, base+size), whatever its distribution — including the append-only
// "latest" distribution, whose unbounded growth must wrap inside the window
// instead of running into the next tenant's slice.
func TestSlicedChoosersStayInWindow(t *testing.T) {
	src := sim.NewRandSource(2)
	const base, size = 1000, 200
	inWindow := func(k store.Key) bool {
		var idx int
		if _, err := fmt.Sscanf(string(k), "key-%d", &idx); err != nil {
			return false
		}
		return idx >= base && idx < base+size
	}
	choosers := map[string]KeyChooser{
		"uniform": NewUniformKeys(size, src.Stream("u")),
		"zipfian": NewZipfianKeys(size, 1.3, src.Stream("z")),
		"latest":  NewLatestKeys(size, src.Stream("l")),
	}
	for name, c := range choosers {
		if !Slice(c, base, size) {
			t.Fatalf("%s: Slice not applied", name)
		}
		// Far more writes than the window holds, so an unbounded appender
		// would escape.
		for i := 0; i < 5*size; i++ {
			if k := c.NextWrite(); !inWindow(k) {
				t.Fatalf("%s: write %d escaped the window: %s", name, i, k)
			}
			if k := c.NextRead(); !inWindow(k) {
				t.Fatalf("%s: read %d escaped the window: %s", name, i, k)
			}
		}
	}
	// Unsliced latest keeps its unbounded append-only keyspace.
	l := NewLatestKeys(10, src.Stream("l2"))
	var last store.Key
	for i := 0; i < 50; i++ {
		last = l.NextWrite()
	}
	if last != "key-59" {
		t.Fatalf("unsliced latest chooser changed behaviour: last write %s, want key-59", last)
	}
}

func TestPresetSpecs(t *testing.T) {
	for _, p := range []Preset{PresetA, PresetB, PresetC, PresetD, PresetF} {
		mix, keys, err := PresetSpec(p, 1000, sim.NewRandSource(1))
		if err != nil {
			t.Fatalf("PresetSpec(%s): %v", p, err)
		}
		if keys == nil {
			t.Fatalf("PresetSpec(%s): nil key chooser", p)
		}
		if mix.ReadFraction < 0 || mix.ReadFraction > 1 {
			t.Fatalf("PresetSpec(%s): bad mix %v", p, mix)
		}
	}
	if _, _, err := PresetSpec("Z", 10, sim.NewRandSource(1)); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestGeneratorAgainstRealStore(t *testing.T) {
	engine := sim.NewEngine()
	src := sim.NewRandSource(11)
	cl := clusterForTest(engine, src)
	st, err := store.New(store.DefaultConfig(), engine, cl, src)
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	mix, keys, err := PresetSpec(PresetA, 500, src)
	if err != nil {
		t.Fatalf("PresetSpec: %v", err)
	}
	g, err := NewGenerator(Config{
		Profile: ConstantProfile{OpsPerSec: 400},
		Mix:     mix,
		Keys:    keys,
		Until:   5 * time.Second,
	}, engine, st, src)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	g.Start()
	if err := engine.Run(7 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	stats := g.Stats()
	if stats.ReadsIssued == 0 || stats.WritesIssued == 0 {
		t.Fatal("no traffic issued against real store")
	}
	if st.Stats().Writes == 0 {
		t.Fatal("store saw no writes")
	}
}
