package workload

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestConstantProfile(t *testing.T) {
	p := ConstantProfile{OpsPerSec: 100}
	if p.Rate(0) != 100 || p.Rate(time.Hour) != 100 {
		t.Fatal("constant profile should be constant")
	}
	neg := ConstantProfile{OpsPerSec: -5}
	if neg.Rate(0) != 0 {
		t.Fatal("negative rate not clamped")
	}
}

func TestStepProfile(t *testing.T) {
	p := StepProfile{Base: 100, Peak: 500, From: time.Minute, To: 2 * time.Minute}
	if p.Rate(0) != 100 {
		t.Fatal("before step should be base")
	}
	if p.Rate(90*time.Second) != 500 {
		t.Fatal("inside step should be peak")
	}
	if p.Rate(2*time.Minute) != 100 {
		t.Fatal("step end is exclusive")
	}
}

func TestDiurnalProfileBounds(t *testing.T) {
	p := DiurnalProfile{Min: 100, Max: 1000, Period: 24 * time.Hour}
	if got := p.Rate(0); math.Abs(got-100) > 1 {
		t.Fatalf("trough at t=0 = %v, want ~100", got)
	}
	if got := p.Rate(12 * time.Hour); math.Abs(got-1000) > 1 {
		t.Fatalf("peak at half period = %v, want ~1000", got)
	}
	f := func(seconds uint32) bool {
		r := p.Rate(time.Duration(seconds) * time.Second)
		return r >= 99 && r <= 1001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatalf("diurnal bounds property failed: %v", err)
	}
	flat := DiurnalProfile{Min: 50, Max: 100, Period: 0}
	if flat.Rate(time.Hour) != 50 {
		t.Fatal("zero period should return Min")
	}
}

func TestSpikeProfile(t *testing.T) {
	p := SpikeProfile{Base: 100, SpikeTo: 1000, At: time.Minute, Duration: time.Minute}
	if p.Rate(0) != 100 || p.Rate(3*time.Minute) != 100 {
		t.Fatal("outside spike should be base")
	}
	if p.Rate(90*time.Second) != 1000 {
		t.Fatal("inside square spike should be SpikeTo")
	}
	ramped := SpikeProfile{Base: 100, SpikeTo: 1100, At: time.Minute, Duration: time.Minute, RampFraction: 0.25}
	mid := ramped.Rate(90 * time.Second)
	if mid != 1100 {
		t.Fatalf("plateau of ramped spike = %v, want 1100", mid)
	}
	early := ramped.Rate(time.Minute + 7*time.Second)
	if early <= 100 || early >= 1100 {
		t.Fatalf("ramp-up value = %v, want between base and peak", early)
	}
}

func TestCompositeProfile(t *testing.T) {
	p := CompositeProfile{Parts: []LoadProfile{
		ConstantProfile{OpsPerSec: 100},
		SpikeProfile{Base: 0, SpikeTo: 400, At: time.Minute, Duration: time.Minute},
		nil,
	}}
	if p.Rate(0) != 100 {
		t.Fatalf("composite base = %v, want 100", p.Rate(0))
	}
	if p.Rate(90*time.Second) != 500 {
		t.Fatalf("composite with spike = %v, want 500", p.Rate(90*time.Second))
	}
}

func TestTraceProfile(t *testing.T) {
	p := TraceProfile{Points: []TracePoint{
		{At: 0, Rate: 10},
		{At: time.Minute, Rate: 50},
		{At: 2 * time.Minute, Rate: 20},
	}}
	if p.Rate(30*time.Second) != 10 {
		t.Fatal("trace before second point should use first rate")
	}
	if p.Rate(90*time.Second) != 50 {
		t.Fatal("trace mid-segment wrong")
	}
	if p.Rate(time.Hour) != 20 {
		t.Fatal("trace after last point should hold last rate")
	}
	empty := TraceProfile{}
	if empty.Rate(0) != 0 {
		t.Fatal("empty trace should be zero")
	}
}
