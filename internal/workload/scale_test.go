package workload

import (
	"bytes"
	"testing"
	"time"
)

// TestTraceScale pins the scaling semantics: factor 1 is a bit-for-bit copy
// (byte-identical on the wire), other factors multiply arrival times with
// monotone rounding so the scaled trace always validates, and non-positive or
// non-finite factors are rejected.
func TestTraceScale(t *testing.T) {
	src := &Trace{
		Tenants: []string{"gold", "bronze"},
		Events: []TraceEvent{
			{At: 0, Tenant: "gold", Write: true, Key: 1},
			{At: 10 * time.Millisecond, Tenant: "bronze", Key: 2},
			{At: 10 * time.Millisecond, Tenant: "gold", Key: 3},
			{At: 25 * time.Millisecond, Tenant: "bronze", Write: true, Key: 4},
		},
	}

	same, err := src.Scale(1)
	if err != nil {
		t.Fatalf("Scale(1): %v", err)
	}
	var a, b bytes.Buffer
	if err := EncodeTrace(src, &a); err != nil {
		t.Fatalf("encode original: %v", err)
	}
	if err := EncodeTrace(same, &b); err != nil {
		t.Fatalf("encode scaled: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("Scale(1) is not byte-identical on the wire")
	}
	// The copy must not alias the original.
	same.Events[0].At = time.Second
	if src.Events[0].At != 0 {
		t.Error("Scale(1) aliases the original event slice")
	}

	half, err := src.Scale(0.5)
	if err != nil {
		t.Fatalf("Scale(0.5): %v", err)
	}
	if err := half.Validate(); err != nil {
		t.Fatalf("scaled trace does not validate: %v", err)
	}
	if got := half.Events[3].At; got != 12500*time.Microsecond {
		t.Errorf("event 3 scaled to %v, want 12.5ms", got)
	}
	if half.Duration() != src.Duration()/2 {
		t.Errorf("half-scaled duration %v, want %v", half.Duration(), src.Duration()/2)
	}

	double, err := src.Scale(2)
	if err != nil {
		t.Fatalf("Scale(2): %v", err)
	}
	if double.Duration() != 50*time.Millisecond {
		t.Errorf("double-scaled duration %v, want 50ms", double.Duration())
	}

	for _, bad := range []float64{0, -1} {
		if _, err := src.Scale(bad); err == nil {
			t.Errorf("Scale(%v) accepted", bad)
		}
	}
}
