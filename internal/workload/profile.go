// Package workload generates client traffic against the simulated store:
// open-loop Poisson arrivals whose rate follows a configurable load profile
// (constant, stepped, diurnal, spiky or composed), with YCSB-style operation
// mixes and key-popularity distributions.
//
// The paper's problem statement is that the inconsistency window drifts with
// load; these profiles provide the load shapes used to demonstrate and then
// control that drift.
package workload

import (
	"math"
	"time"
)

// LoadProfile yields the offered operation rate (operations per second) at a
// given virtual time.
type LoadProfile interface {
	Rate(at time.Duration) float64
}

// ConstantProfile offers a fixed rate.
type ConstantProfile struct {
	// OpsPerSec is the constant offered rate.
	OpsPerSec float64
}

// Rate implements LoadProfile.
func (p ConstantProfile) Rate(time.Duration) float64 { return nonNegative(p.OpsPerSec) }

// StepProfile offers Base ops/s, switching to Peak between From and To.
type StepProfile struct {
	Base float64
	Peak float64
	From time.Duration
	To   time.Duration
}

// Rate implements LoadProfile.
func (p StepProfile) Rate(at time.Duration) float64 {
	if at >= p.From && at < p.To {
		return nonNegative(p.Peak)
	}
	return nonNegative(p.Base)
}

// DiurnalProfile models a day/night cycle: the rate oscillates sinusoidally
// between Min and Max with the given period.
type DiurnalProfile struct {
	Min    float64
	Max    float64
	Period time.Duration
	// Phase shifts the peak; zero places the trough at t=0.
	Phase time.Duration
}

// Rate implements LoadProfile.
func (p DiurnalProfile) Rate(at time.Duration) float64 {
	if p.Period <= 0 {
		return nonNegative(p.Min)
	}
	frac := float64((at+p.Phase)%p.Period) / float64(p.Period)
	// Cosine shaped so that t=0 (no phase) is the trough.
	mid := (p.Min + p.Max) / 2
	amp := (p.Max - p.Min) / 2
	return nonNegative(mid - amp*math.Cos(2*math.Pi*frac))
}

// SpikeProfile overlays a flash-crowd spike on a base rate.
type SpikeProfile struct {
	Base     float64
	SpikeTo  float64
	At       time.Duration
	Duration time.Duration
	// RampFraction is the fraction of Duration spent ramping up and down
	// (each); 0 means a square spike.
	RampFraction float64
}

// Rate implements LoadProfile.
func (p SpikeProfile) Rate(at time.Duration) float64 {
	if at < p.At || at >= p.At+p.Duration {
		return nonNegative(p.Base)
	}
	if p.RampFraction <= 0 {
		return nonNegative(p.SpikeTo)
	}
	ramp := time.Duration(float64(p.Duration) * p.RampFraction)
	into := at - p.At
	remaining := p.At + p.Duration - at
	scale := 1.0
	if into < ramp {
		scale = float64(into) / float64(ramp)
	} else if remaining < ramp {
		scale = float64(remaining) / float64(ramp)
	}
	return nonNegative(p.Base + (p.SpikeTo-p.Base)*scale)
}

// CompositeProfile sums the rates of its parts, allowing e.g. a diurnal
// baseline plus a flash crowd.
type CompositeProfile struct {
	Parts []LoadProfile
}

// Rate implements LoadProfile.
func (p CompositeProfile) Rate(at time.Duration) float64 {
	total := 0.0
	for _, part := range p.Parts {
		if part != nil {
			total += part.Rate(at)
		}
	}
	return total
}

// TracePoint is one sample of a recorded load trace.
type TracePoint struct {
	At   time.Duration
	Rate float64
}

// TraceProfile replays a piecewise-constant recorded trace. Points must be
// sorted by time; the rate before the first point is the first point's rate.
type TraceProfile struct {
	Points []TracePoint
}

// Rate implements LoadProfile.
func (p TraceProfile) Rate(at time.Duration) float64 {
	if len(p.Points) == 0 {
		return 0
	}
	rate := p.Points[0].Rate
	for _, pt := range p.Points {
		if pt.At > at {
			break
		}
		rate = pt.Rate
	}
	return nonNegative(rate)
}

func nonNegative(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}
