package workload

import (
	"autonosql/internal/cluster"
	"autonosql/internal/sim"
)

// clusterForTest builds a small default cluster for integration tests in
// this package.
func clusterForTest(engine *sim.Engine, src *sim.RandSource) *cluster.Cluster {
	return cluster.New(cluster.DefaultConfig(), engine, src)
}
