package workload

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"autonosql/internal/sim"
	"autonosql/internal/store"
)

func TestKeyIndex(t *testing.T) {
	cases := []struct {
		key store.Key
		idx int
		ok  bool
	}{
		{"key-0", 0, true},
		{"key-17", 17, true},
		{"key-16384", 16384, true}, // past the precomputed table
		{"key-007", 0, false},      // non-canonical spelling
		{"key-+7", 0, false},
		{"key--1", 0, false},
		{"key-", 0, false},
		{"probe-3", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		idx, ok := KeyIndex(c.key)
		if ok != c.ok || (ok && idx != c.idx) {
			t.Errorf("KeyIndex(%q) = (%d, %v), want (%d, %v)", c.key, idx, ok, c.idx, c.ok)
		}
	}
	// Every canonical name round-trips.
	for _, i := range []int{0, 1, 9999, keyTableSize - 1, keyTableSize, keyTableSize + 12345} {
		idx, ok := KeyIndex(keyName(i))
		if !ok || idx != i {
			t.Errorf("KeyIndex(keyName(%d)) = (%d, %v), want (%d, true)", i, idx, ok, i)
		}
	}
}

func sampleTrace() *Trace {
	return &Trace{
		Tenants: []string{"gold", "bronze"},
		Events: []TraceEvent{
			{At: 0, Tenant: "gold", Write: false, Key: 3},
			{At: 1500 * time.Microsecond, Tenant: "bronze", Write: true, Key: 10007},
			{At: 1500 * time.Microsecond, Tenant: "gold", Write: true, RawKey: "probe-1"},
			{At: 2 * time.Second, Tenant: "bronze", Write: false, Key: 0},
		},
	}
}

func TestTraceRoundTrip(t *testing.T) {
	want := sampleTrace()
	var buf bytes.Buffer
	if err := EncodeTrace(want, &buf); err != nil {
		t.Fatalf("EncodeTrace: %v", err)
	}
	got, err := ParseTrace(&buf)
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	if len(got.Tenants) != len(want.Tenants) || len(got.Events) != len(want.Events) {
		t.Fatalf("round trip changed shape: %+v vs %+v", got, want)
	}
	for i := range want.Events {
		if got.Events[i] != want.Events[i] {
			t.Errorf("event %d round-tripped to %+v, want %+v", i, got.Events[i], want.Events[i])
		}
	}
	// A second encode must be byte-identical (canonical form).
	var buf2 bytes.Buffer
	if err := EncodeTrace(got, &buf2); err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	var buf1 bytes.Buffer
	if err := EncodeTrace(want, &buf1); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("encoding is not canonical across a parse round trip")
	}
}

func TestParseTraceErrors(t *testing.T) {
	header := `{"v":1,"tenants":["gold"]}` + "\n"
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"no header", `{"t":0,"op":"r","k":1}` + "\n"},
		{"bad version", `{"v":2}` + "\n"},
		{"malformed header", `{"v":` + "\n"},
		{"duplicate tenant", `{"v":1,"tenants":["a","a"]}` + "\n"},
		{"empty tenant name", `{"v":1,"tenants":[""]}` + "\n"},
		{"malformed event", header + `{"t":nope}` + "\n"},
		{"unknown field", header + `{"t":0,"tn":"gold","op":"r","k":1,"zz":9}` + "\n"},
		{"trailing garbage", header + `{"t":0,"tn":"gold","op":"r","k":1} extra` + "\n"},
		{"negative time", header + `{"t":-5,"tn":"gold","op":"r","k":1}` + "\n"},
		{"fractional time", header + `{"t":1.5,"tn":"gold","op":"r","k":1}` + "\n"},
		{"out of order", header +
			`{"t":100,"tn":"gold","op":"r","k":1}` + "\n" +
			`{"t":99,"tn":"gold","op":"r","k":1}` + "\n"},
		{"unknown tenant", header + `{"t":0,"tn":"silver","op":"r","k":1}` + "\n"},
		{"missing tenant", header + `{"t":0,"op":"r","k":1}` + "\n"},
		{"tenant in tenantless trace", `{"v":1}` + "\n" + `{"t":0,"tn":"gold","op":"r","k":1}` + "\n"},
		{"bad op", header + `{"t":0,"tn":"gold","op":"x","k":1}` + "\n"},
		{"missing key", header + `{"t":0,"tn":"gold","op":"r"}` + "\n"},
		{"negative key", header + `{"t":0,"tn":"gold","op":"r","k":-1}` + "\n"},
		{"both keys", header + `{"t":0,"tn":"gold","op":"r","k":1,"raw":"x"}` + "\n"},
		{"overlong line", header + `{"raw":"` + strings.Repeat("a", maxTraceLine+1) + `"}` + "\n"},
	}
	for _, c := range cases {
		if _, err := ParseTrace(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: ParseTrace accepted invalid input", c.name)
		}
	}
}

// stampTarget records the virtual time and kind of every arrival it receives.
type stampTarget struct {
	engine *sim.Engine
	ops    []TraceEvent
}

func (f *stampTarget) Read(key store.Key, cb func(store.Result)) {
	f.ops = append(f.ops, TraceEvent{At: f.engine.Now(), RawKey: key})
}

func (f *stampTarget) Write(key store.Key, cb func(store.Result)) {
	f.ops = append(f.ops, TraceEvent{At: f.engine.Now(), Write: true, RawKey: key})
}

// TestTraceSourceReplaysExactTimes drives a source from a hand-built trace
// and checks every arrival hits the target at its recorded time, in order,
// including same-time events.
func TestTraceSourceReplaysExactTimes(t *testing.T) {
	engine := sim.NewEngine()
	target := &stampTarget{engine: engine}
	events := []TraceEvent{
		{At: 0, Write: false, Key: 1},
		{At: 10 * time.Millisecond, Write: true, Key: 2},
		{At: 10 * time.Millisecond, Write: false, Key: 3},
		{At: time.Second, Write: true, RawKey: "probe-9"},
	}
	src, err := NewTraceSource(engine, target, events)
	if err != nil {
		t.Fatalf("NewTraceSource: %v", err)
	}
	src.Start()
	if err := engine.Run(2 * time.Second); err != nil {
		t.Fatalf("engine.Run: %v", err)
	}
	if src.Remaining() != 0 {
		t.Fatalf("%d events left unissued", src.Remaining())
	}
	if len(target.ops) != len(events) {
		t.Fatalf("target saw %d ops, want %d", len(target.ops), len(events))
	}
	for i, e := range events {
		got := target.ops[i]
		if got.At != e.At || got.Write != e.Write || got.RawKey != e.key() {
			t.Errorf("op %d = %+v, want at=%v write=%v key=%s", i, got, e.At, e.Write, e.key())
		}
	}
}

// TestRecorderRoundTrip records a generator's arrivals, replays them through a
// source, and re-records the replay: both traces must be identical.
func TestRecorderRoundTrip(t *testing.T) {
	run := func(replay *Trace) *Trace {
		engine := sim.NewEngine()
		rnd := sim.NewRandSource(99)
		target := &stampTarget{engine: engine}
		rec, err := NewTraceRecorder(engine.Now, nil)
		if err != nil {
			t.Fatalf("NewTraceRecorder: %v", err)
		}
		if replay == nil {
			gen, err := NewGenerator(Config{
				Profile: ConstantProfile{OpsPerSec: 500},
				Mix:     Mix{ReadFraction: 0.5},
				Keys:    NewUniformKeys(100, rnd.Stream("keys")),
				Until:   2 * time.Second,
			}, engine, target, rnd)
			if err != nil {
				t.Fatalf("NewGenerator: %v", err)
			}
			gen.Intercept(func(inner Target) Target { return rec.Wrap("", inner) })
			gen.Start()
		} else {
			src, err := NewTraceSource(engine, target, replay.Events)
			if err != nil {
				t.Fatalf("NewTraceSource: %v", err)
			}
			src.Intercept(func(inner Target) Target { return rec.Wrap("", inner) })
			src.Start()
		}
		if err := engine.Run(2 * time.Second); err != nil {
			t.Fatalf("engine.Run: %v", err)
		}
		return rec.Trace()
	}
	live := run(nil)
	if len(live.Events) == 0 {
		t.Fatal("recorded no events")
	}
	if err := live.Validate(); err != nil {
		t.Fatalf("recorded trace invalid: %v", err)
	}
	replayed := run(live)
	if len(replayed.Events) != len(live.Events) {
		t.Fatalf("replay recorded %d events, want %d", len(replayed.Events), len(live.Events))
	}
	for i := range live.Events {
		if live.Events[i] != replayed.Events[i] {
			t.Fatalf("event %d drifted on replay: %+v vs %+v", i, live.Events[i], replayed.Events[i])
		}
	}
}
