package workload

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"autonosql/internal/sim"
	"autonosql/internal/store"
)

// TraceEvent is one recorded client arrival: the virtual time an operation
// entered the system, which tenant issued it, whether it was a write, and the
// key it targeted. Keys in the canonical "key-<i>" namespace are stored by
// index; anything else is carried verbatim in RawKey.
type TraceEvent struct {
	// At is the virtual arrival time.
	At time.Duration
	// Tenant names the issuing tenant; it is empty in single-workload traces.
	Tenant string
	// Write reports whether the operation was a write.
	Write bool
	// Key is the canonical key index ("key-<Key>"); ignored when RawKey is set.
	Key int
	// RawKey carries a key outside the canonical namespace verbatim.
	RawKey store.Key
}

// key returns the store key the event targets.
func (e TraceEvent) key() store.Key {
	if e.RawKey != "" {
		return e.RawKey
	}
	return keyName(e.Key)
}

// Trace is a recorded arrival stream: the tenant population it was captured
// from and every arrival in fire order (non-decreasing time). A trace decouples
// the arrivals from the random streams that produced them, so the exact same
// workload can be replayed against any controller configuration.
type Trace struct {
	// Tenants are the declared tenant names, in declaration order; empty for a
	// single anonymous workload.
	Tenants []string
	// Events are the arrivals in fire order.
	Events []TraceEvent
}

// Validate reports whether the trace is internally consistent: known tenants
// only, non-negative and non-decreasing times, and tenant tags present exactly
// when the trace declares tenants.
func (t *Trace) Validate() error {
	names := make(map[string]struct{}, len(t.Tenants))
	for i, n := range t.Tenants {
		if n == "" {
			return fmt.Errorf("workload: trace tenant %d has no name", i)
		}
		if _, dup := names[n]; dup {
			return fmt.Errorf("workload: duplicate trace tenant %q", n)
		}
		names[n] = struct{}{}
	}
	var last time.Duration
	for i, e := range t.Events {
		if e.At < 0 {
			return fmt.Errorf("workload: trace event %d at negative time %v", i, e.At)
		}
		if e.At < last {
			return fmt.Errorf("workload: trace event %d out of order: %v after %v", i, e.At, last)
		}
		last = e.At
		if len(t.Tenants) == 0 {
			if e.Tenant != "" {
				return fmt.Errorf("workload: trace event %d names tenant %q but the trace declares no tenants", i, e.Tenant)
			}
		} else if _, ok := names[e.Tenant]; !ok {
			return fmt.Errorf("workload: trace event %d names unknown tenant %q", i, e.Tenant)
		}
		if e.RawKey == "" && e.Key < 0 {
			return fmt.Errorf("workload: trace event %d has negative key index %d", i, e.Key)
		}
	}
	return nil
}

// EventsFor returns the events of one tenant (or of the anonymous workload for
// the empty name), in fire order. The returned slice aliases the trace.
func (t *Trace) EventsFor(tenant string) []TraceEvent {
	if len(t.Tenants) == 0 && tenant == "" {
		return t.Events
	}
	var out []TraceEvent
	for _, e := range t.Events {
		if e.Tenant == tenant {
			out = append(out, e)
		}
	}
	return out
}

// Duration returns the time of the last event, or zero for an empty trace.
func (t *Trace) Duration() time.Duration {
	if len(t.Events) == 0 {
		return 0
	}
	return t.Events[len(t.Events)-1].At
}

// Scale returns a copy of the trace with every arrival time multiplied by
// factor: factor > 1 stretches the trace (lower arrival rate), factor < 1
// compresses it (higher rate). A factor of exactly 1 returns a bit-for-bit
// copy, so a 1.0-scaled replay stays byte-identical to the original. Scaled
// times are rounded to whole nanoseconds and clamped monotone, so the result
// always validates.
func (t *Trace) Scale(factor float64) (*Trace, error) {
	if math.IsNaN(factor) || math.IsInf(factor, 0) || factor <= 0 {
		return nil, fmt.Errorf("workload: scale factor %v out of range (want finite > 0)", factor)
	}
	out := &Trace{
		Tenants: append([]string(nil), t.Tenants...),
		Events:  append([]TraceEvent(nil), t.Events...),
	}
	if factor == 1 {
		return out, nil
	}
	var last time.Duration
	for i := range out.Events {
		at := time.Duration(math.Round(float64(out.Events[i].At) * factor))
		if at < last {
			at = last
		}
		out.Events[i].At = at
		last = at
	}
	return out, nil
}

// --- JSON-lines wire format --------------------------------------------------

// The trace file format is JSON lines: a header object followed by one object
// per arrival, e.g.
//
//	{"v":1,"tenants":["gold","bronze"]}
//	{"t":1234567,"tn":"gold","op":"r","k":17}
//	{"t":2345678,"tn":"bronze","op":"w","k":10023}
//
// where t is the virtual arrival time in nanoseconds, op is "r" or "w" and k
// is the canonical key index ("key-<k>"). Non-canonical keys are carried as
// {"raw":"..."} instead of k. Single-workload traces omit "tenants" in the
// header and "tn" on every event.

type traceHeader struct {
	V       int      `json:"v"`
	Tenants []string `json:"tenants,omitempty"`
}

type traceLine struct {
	T   int64  `json:"t"`
	Tn  string `json:"tn,omitempty"`
	Op  string `json:"op"`
	K   *int   `json:"k,omitempty"`
	Raw string `json:"raw,omitempty"`
}

// traceFormatVersion is the wire format version ParseTrace accepts.
const traceFormatVersion = 1

// maxTraceLine bounds one line of a trace file; a line longer than this is a
// parse error, not an allocation storm.
const maxTraceLine = 1 << 20

// EncodeTrace writes the trace in the JSON-lines wire format.
func EncodeTrace(t *Trace, w io.Writer) error {
	if err := t.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(traceHeader{V: traceFormatVersion, Tenants: t.Tenants}); err != nil {
		return fmt.Errorf("workload: encoding trace header: %w", err)
	}
	for i := range t.Events {
		e := &t.Events[i]
		line := traceLine{T: int64(e.At), Tn: e.Tenant}
		if e.Write {
			line.Op = "w"
		} else {
			line.Op = "r"
		}
		if e.RawKey != "" {
			line.Raw = string(e.RawKey)
		} else {
			k := e.Key
			line.K = &k
		}
		if err := enc.Encode(line); err != nil {
			return fmt.Errorf("workload: encoding trace event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ParseTrace reads a trace in the JSON-lines wire format. Malformed JSON,
// unknown fields, unknown tenants, negative times, out-of-order events and
// bad opcodes are all errors; ParseTrace never panics on hostile input.
func ParseTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxTraceLine)
	t := &Trace{}
	names := make(map[string]struct{})
	headerSeen := false
	lineNo := 0
	var last time.Duration
	for sc.Scan() {
		lineNo++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if !headerSeen {
			var h traceHeader
			if err := strictUnmarshal(raw, &h); err != nil {
				return nil, fmt.Errorf("workload: trace line %d: bad header: %w", lineNo, err)
			}
			if h.V != traceFormatVersion {
				return nil, fmt.Errorf("workload: trace line %d: unsupported version %d", lineNo, h.V)
			}
			for i, n := range h.Tenants {
				if n == "" {
					return nil, fmt.Errorf("workload: trace line %d: tenant %d has no name", lineNo, i)
				}
				if _, dup := names[n]; dup {
					return nil, fmt.Errorf("workload: trace line %d: duplicate tenant %q", lineNo, n)
				}
				names[n] = struct{}{}
			}
			t.Tenants = h.Tenants
			headerSeen = true
			continue
		}
		var line traceLine
		if err := strictUnmarshal(raw, &line); err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", lineNo, err)
		}
		e := TraceEvent{At: time.Duration(line.T), Tenant: line.Tn}
		if e.At < 0 {
			return nil, fmt.Errorf("workload: trace line %d: negative time %d", lineNo, line.T)
		}
		if e.At < last {
			return nil, fmt.Errorf("workload: trace line %d: out of order: %v after %v", lineNo, e.At, last)
		}
		last = e.At
		switch line.Op {
		case "r":
		case "w":
			e.Write = true
		default:
			return nil, fmt.Errorf("workload: trace line %d: bad op %q (want \"r\" or \"w\")", lineNo, line.Op)
		}
		if len(t.Tenants) == 0 {
			if e.Tenant != "" {
				return nil, fmt.Errorf("workload: trace line %d: tenant %q in a trace that declares no tenants", lineNo, e.Tenant)
			}
		} else if _, ok := names[e.Tenant]; !ok {
			return nil, fmt.Errorf("workload: trace line %d: unknown tenant %q", lineNo, e.Tenant)
		}
		switch {
		case line.K != nil && line.Raw != "":
			return nil, fmt.Errorf("workload: trace line %d: both k and raw set", lineNo)
		case line.K != nil:
			if *line.K < 0 {
				return nil, fmt.Errorf("workload: trace line %d: negative key index %d", lineNo, *line.K)
			}
			e.Key = *line.K
		case line.Raw != "":
			e.RawKey = store.Key(line.Raw)
		default:
			return nil, fmt.Errorf("workload: trace line %d: no key (want k or raw)", lineNo)
		}
		t.Events = append(t.Events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	if !headerSeen {
		return nil, errors.New("workload: trace has no header line")
	}
	return t, nil
}

// strictUnmarshal decodes one JSON object rejecting unknown fields and
// trailing garbage on the line.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON object")
	}
	return nil
}

// --- recording ---------------------------------------------------------------

// TraceRecorder captures the arrival stream of a running scenario. It wraps
// each generator's target with a pure pass-through that appends one TraceEvent
// per arrival before forwarding: no random draws, no scheduled events, so
// arming a recorder can never perturb the run it records.
type TraceRecorder struct {
	clock   func() time.Duration
	tenants []string
	events  []TraceEvent
}

// NewTraceRecorder creates a recorder. clock supplies the virtual time
// arrivals are stamped with; tenants is the scenario's tenant population in
// declaration order (empty for a single anonymous workload).
func NewTraceRecorder(clock func() time.Duration, tenants []string) (*TraceRecorder, error) {
	if clock == nil {
		return nil, errors.New("workload: trace recorder needs a clock")
	}
	return &TraceRecorder{clock: clock, tenants: tenants}, nil
}

// Wrap returns a Target that records every arrival under the given tenant name
// (empty for the anonymous workload) before forwarding it to inner.
func (r *TraceRecorder) Wrap(tenant string, inner Target) Target {
	return &recordingTarget{rec: r, tenant: tenant, inner: inner}
}

// record appends one arrival. Arrivals flow in from event handlers in fire
// order, so the resulting event list is time-ordered by construction.
func (r *TraceRecorder) record(write bool, tenant string, key store.Key) {
	e := TraceEvent{At: r.clock(), Tenant: tenant, Write: write}
	if idx, ok := KeyIndex(key); ok {
		e.Key = idx
	} else {
		e.RawKey = key
	}
	r.events = append(r.events, e)
}

// Trace returns a snapshot of everything recorded so far.
func (r *TraceRecorder) Trace() *Trace {
	return &Trace{
		Tenants: append([]string(nil), r.tenants...),
		Events:  append([]TraceEvent(nil), r.events...),
	}
}

type recordingTarget struct {
	rec    *TraceRecorder
	tenant string
	inner  Target
}

func (t *recordingTarget) Read(key store.Key, cb func(store.Result)) {
	t.rec.record(false, t.tenant, key)
	t.inner.Read(key, cb)
}

func (t *recordingTarget) Write(key store.Key, cb func(store.Result)) {
	t.rec.record(true, t.tenant, key)
	t.inner.Write(key, cb)
}

// --- replay ------------------------------------------------------------------

// TraceSource drives a Target from a recorded arrival stream instead of a
// Poisson generator: each event is issued at exactly its recorded virtual
// time. Scheduling is chained — the source holds at most one pending engine
// event and schedules the next arrival from the current one — which is the
// same discipline the live generator uses, so a replayed run reproduces the
// live run's event ordering exactly (see the replay byte-identity test).
type TraceSource struct {
	engine *sim.Engine
	target Target
	events []TraceEvent

	next    int
	stopped bool
	tickFn  sim.Handler
	cbFn    func(store.Result)
}

// NewTraceSource creates a source replaying events (already filtered to one
// tenant's stream, in fire order) against target. Start must be called to
// begin issuing.
func NewTraceSource(engine *sim.Engine, target Target, events []TraceEvent) (*TraceSource, error) {
	if engine == nil || target == nil {
		return nil, errors.New("workload: engine and target are required")
	}
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			return nil, fmt.Errorf("workload: trace source event %d out of order", i)
		}
	}
	s := &TraceSource{engine: engine, target: target, events: events}
	s.tickFn = s.tick
	s.cbFn = func(store.Result) {}
	return s, nil
}

// Intercept replaces the source's target with wrap(target), mirroring
// Generator.Intercept so a replayed run can itself be recorded. It must be
// called before Start.
func (s *TraceSource) Intercept(wrap func(Target) Target) {
	s.target = wrap(s.target)
}

// Start schedules the first recorded arrival.
func (s *TraceSource) Start() { s.scheduleNext() }

// Stop halts further arrivals. In-flight operations still complete.
func (s *TraceSource) Stop() { s.stopped = true }

// Remaining returns how many recorded arrivals have not been issued yet.
func (s *TraceSource) Remaining() int { return len(s.events) - s.next }

func (s *TraceSource) scheduleNext() {
	if s.stopped || s.next >= len(s.events) {
		return
	}
	at := s.events[s.next].At
	now := s.engine.Now()
	if at < now {
		// Cannot happen for a validated trace (times are non-decreasing and
		// the previous event fired at its own time), but guard the engine's
		// negative-delay panic anyway.
		at = now
	}
	s.engine.After(at-now, s.tickFn)
}

// tick issues the due arrival and chains the next one, mirroring the live
// generator's issue-then-schedule order inside one event handler.
func (s *TraceSource) tick(time.Duration) {
	if s.stopped || s.next >= len(s.events) {
		return
	}
	e := s.events[s.next]
	s.next++
	if e.Write {
		s.target.Write(e.key(), s.cbFn)
	} else {
		s.target.Read(e.key(), s.cbFn)
	}
	s.scheduleNext()
}
