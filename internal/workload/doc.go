// Package workload generates the client traffic offered to the store: a
// Poisson arrival process whose rate follows a LoadProfile, a read/write Mix,
// and a KeyChooser selecting which keys operations touch.
//
// LoadProfiles cover the shapes the experiments need — constant, step,
// diurnal cycle, flash-crowd spike, their composition and replayed traces —
// and the KeyChoosers mirror the YCSB core-workload distributions (uniform,
// zipfian, latest-skewed).
//
// The Generator drives operations into any Target; scenarios pass the
// monitor, so client-observed latency and error rates are measured the way
// an application-side metrics library would measure them. All randomness
// comes from named sim.RandSource streams, keeping runs reproducible.
package workload
