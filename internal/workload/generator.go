package workload

import (
	"errors"
	"math/rand"
	"time"

	"autonosql/internal/metrics"
	"autonosql/internal/sim"
	"autonosql/internal/store"
)

// Mix describes the read/write composition of a workload.
type Mix struct {
	// ReadFraction is the fraction of operations that are reads, in [0, 1].
	ReadFraction float64
}

// YCSB-style workload presets. The key distributions follow the published
// YCSB core workloads; absolute rates come from the load profile.
type Preset string

// Presets.
const (
	// PresetA is update heavy: 50% reads, 50% writes, zipfian keys.
	PresetA Preset = "A"
	// PresetB is read mostly: 95% reads, zipfian keys.
	PresetB Preset = "B"
	// PresetC is read only, zipfian keys.
	PresetC Preset = "C"
	// PresetD is read latest: 95% reads skewed to recent inserts.
	PresetD Preset = "D"
	// PresetF is read-modify-write approximated as 50/50 on zipfian keys.
	PresetF Preset = "F"
)

// PresetSpec returns the mix and a key chooser factory for a preset.
func PresetSpec(p Preset, keyspace int, rnd *sim.RandSource) (Mix, KeyChooser, error) {
	rng := rnd.Stream("keys-" + string(p))
	switch p {
	case PresetA:
		return Mix{ReadFraction: 0.5}, NewZipfianKeys(keyspace, 1.3, rng), nil
	case PresetB:
		return Mix{ReadFraction: 0.95}, NewZipfianKeys(keyspace, 1.3, rng), nil
	case PresetC:
		return Mix{ReadFraction: 1.0}, NewZipfianKeys(keyspace, 1.3, rng), nil
	case PresetD:
		return Mix{ReadFraction: 0.95}, NewLatestKeys(keyspace, rng), nil
	case PresetF:
		return Mix{ReadFraction: 0.5}, NewZipfianKeys(keyspace, 1.3, rng), nil
	default:
		return Mix{}, nil, errors.New("workload: unknown preset " + string(p))
	}
}

// Target is the subset of the store API the generator drives. *store.Store
// satisfies it.
type Target interface {
	Read(key store.Key, cb func(store.Result))
	Write(key store.Key, cb func(store.Result))
}

// Stats summarises the traffic a generator has produced and the outcomes it
// observed from the client side.
type Stats struct {
	ReadsIssued   uint64
	WritesIssued  uint64
	ReadErrors    uint64
	WriteErrors   uint64
	StaleReads    uint64
	ReadLatency   metrics.Snapshot
	WriteLatency  metrics.Snapshot
	LastIssueRate float64
}

// Config configures a Generator.
type Config struct {
	// Profile drives the offered rate over time.
	Profile LoadProfile
	// Mix is the read/write split.
	Mix Mix
	// Keys selects keys per operation.
	Keys KeyChooser
	// Until stops the generator at this virtual time (0 = run until Stop).
	Until time.Duration
	// MaxRate caps the instantaneous rate to protect the event queue from
	// runaway profiles; zero means no cap.
	MaxRate float64
	// ArrivalStream names the random stream the inter-arrival draws come
	// from; it defaults to "arrivals". Scenarios hosting several generators
	// (one per tenant) must give each its own name, or every generator would
	// replay the same arrival sequence.
	ArrivalStream string
}

// Generator issues open-loop Poisson traffic against a Target.
type Generator struct {
	cfg    Config
	engine *sim.Engine
	target Target
	rng    *sim.RandSource

	stopped      bool
	readsIssued  metrics.Counter
	writesIssued metrics.Counter
	readErrors   metrics.Counter
	writeErrors  metrics.Counter
	staleReads   metrics.Counter
	readLat      *metrics.Histogram
	writeLat     *metrics.Histogram
	lastRate     float64

	// arrivals is the dedicated inter-arrival random stream, bound at Start.
	arrivals *rand.Rand
	// idleTickFn, if set, runs whenever an arrival tick fires without issuing
	// an operation (the rate sampled at scheduling time was not positive).
	// Such ticks are invisible through the target yet still allocate the next
	// arrival event; observers that mirror the arrival chain on another
	// engine need to see them.
	idleTickFn func()
	// tickFn, onReadFn and onWriteFn are the per-arrival handlers, bound once
	// so the open-loop arrival chain does not allocate a closure per
	// operation.
	tickFn    sim.Handler
	onReadFn  func(store.Result)
	onWriteFn func(store.Result)
}

// NewGenerator creates a generator. Start must be called to begin issuing
// traffic.
func NewGenerator(cfg Config, engine *sim.Engine, target Target, rnd *sim.RandSource) (*Generator, error) {
	if engine == nil || target == nil || rnd == nil {
		return nil, errors.New("workload: engine, target and rand source are required")
	}
	if cfg.Profile == nil {
		return nil, errors.New("workload: load profile is required")
	}
	if cfg.Keys == nil {
		return nil, errors.New("workload: key chooser is required")
	}
	if cfg.Mix.ReadFraction < 0 || cfg.Mix.ReadFraction > 1 {
		return nil, errors.New("workload: read fraction must be within [0, 1]")
	}
	g := &Generator{
		cfg:      cfg,
		engine:   engine,
		target:   target,
		rng:      rnd,
		readLat:  metrics.NewHistogram(0),
		writeLat: metrics.NewHistogram(0),
	}
	g.tickFn = g.tick
	g.onReadFn = g.onRead
	g.onWriteFn = g.onWrite
	return g, nil
}

// OnIdleTick registers fn to run whenever an arrival tick fires without
// issuing an operation. The sharded scenario bridge mirrors such ticks onto
// the home lane so the home engine's allocation order stays identical to a
// single-engine run. It must be called before Start.
func (g *Generator) OnIdleTick(fn func()) { g.idleTickFn = fn }

// Intercept replaces the generator's target with wrap(target). Trace
// recording uses it to splice a recorder between the generator and the system
// under test. It must be called before Start.
func (g *Generator) Intercept(wrap func(Target) Target) {
	g.target = wrap(g.target)
}

// Start schedules the first arrival.
func (g *Generator) Start() {
	name := g.cfg.ArrivalStream
	if name == "" {
		name = "arrivals"
	}
	g.arrivals = g.rng.Stream(name)
	g.scheduleNext()
}

func (g *Generator) scheduleNext() {
	now := g.engine.Now()
	if g.stopped {
		return
	}
	if g.cfg.Until > 0 && now >= g.cfg.Until {
		return
	}
	rate := g.cfg.Profile.Rate(now)
	if g.cfg.MaxRate > 0 && rate > g.cfg.MaxRate {
		rate = g.cfg.MaxRate
	}
	g.lastRate = rate
	var gap time.Duration
	if rate <= 0 {
		// Idle period: re-evaluate the profile shortly.
		gap = 100 * time.Millisecond
	} else {
		gap = time.Duration(sim.Exponential(g.arrivals, float64(time.Second)/rate))
		if gap <= 0 {
			gap = time.Microsecond
		}
		if gap > 10*time.Second {
			gap = 10 * time.Second
		}
	}
	g.engine.After(gap, g.tickFn)
}

// tick fires one arrival: issue an operation at the rate captured when the
// arrival was scheduled (zero-rate ticks only re-evaluate the profile), then
// schedule the next arrival.
func (g *Generator) tick(time.Duration) {
	if g.stopped {
		return
	}
	if g.lastRate > 0 {
		g.issueOne(g.arrivals)
	} else if g.idleTickFn != nil {
		g.idleTickFn()
	}
	g.scheduleNext()
}

func (g *Generator) issueOne(rng *rand.Rand) {
	if rng.Float64() < g.cfg.Mix.ReadFraction {
		key := g.cfg.Keys.NextRead()
		g.readsIssued.Inc()
		g.target.Read(key, g.onReadFn)
		return
	}
	key := g.cfg.Keys.NextWrite()
	g.writesIssued.Inc()
	g.target.Write(key, g.onWriteFn)
}

func (g *Generator) onRead(r store.Result) {
	if r.Err != nil {
		g.readErrors.Inc()
		return
	}
	if r.Stale {
		g.staleReads.Inc()
	}
	g.readLat.ObserveDuration(r.Latency)
}

func (g *Generator) onWrite(r store.Result) {
	if r.Err != nil {
		g.writeErrors.Inc()
		return
	}
	g.writeLat.ObserveDuration(r.Latency)
}

// Stop halts further arrivals. In-flight operations still complete.
func (g *Generator) Stop() { g.stopped = true }

// Stats returns the generator's client-side statistics.
func (g *Generator) Stats() Stats {
	return Stats{
		ReadsIssued:   g.readsIssued.Value(),
		WritesIssued:  g.writesIssued.Value(),
		ReadErrors:    g.readErrors.Value(),
		WriteErrors:   g.writeErrors.Value(),
		StaleReads:    g.staleReads.Value(),
		ReadLatency:   g.readLat.Snapshot(),
		WriteLatency:  g.writeLat.Snapshot(),
		LastIssueRate: g.lastRate,
	}
}
