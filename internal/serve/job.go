package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"autonosql"
	"autonosql/internal/obs"
)

// State is a job's lifecycle state.
type State string

const (
	StatePending  State = "pending"  // submitted, not started
	StateRunning  State = "running"  // simulating
	StatePaused   State = "paused"   // frozen at a sample window (virtual time stopped)
	StateDone     State = "done"     // finished, report available
	StateFailed   State = "failed"   // finished with an error
	StateCanceled State = "canceled" // canceled by request
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// errCanceled flows out of the sample hook when a job is canceled; the
// scenario aborts at the current event and the run returns it.
var errCanceled = errors.New("canceled by request")

// MetricWindow is one closed sampling window of one running variant — the
// unit of the daemon's streaming surface. Windows carry a job-wide sequence
// number so a client can resume a stream from where it left off.
type MetricWindow struct {
	Job     string `json:"job"`
	Variant string `json:"variant,omitempty"`
	Seq     int    `json:"seq"`
	// AtSeconds is the window's virtual-time close in seconds.
	AtSeconds float64 `json:"at_s"`
	// Series maps every sampled series name to its value in this window.
	Series map[string]float64 `json:"series"`
}

// SpanRecord is one finished op trace on the daemon's span stream. Spans
// carry a job-wide sequence number, like metric windows, so a client can
// resume from where it left off.
type SpanRecord struct {
	Job     string `json:"job"`
	Variant string `json:"variant,omitempty"`
	Seq     int    `json:"seq"`
	// Span is the op trace in its canonical JSON form (the same bytes
	// Scenario.WriteSpans emits per line).
	Span json.RawMessage `json:"span"`
}

// MetaEnvelope is the run-metadata record the daemon keeps per job. The
// report exports (WriteJSON/WriteCSV) deliberately exclude wall-clock
// metadata so identical runs export identical bytes; this envelope is where
// that metadata lives instead, so ScenariosPerSecond survives a round trip.
type MetaEnvelope struct {
	Job       string     `json:"job"`
	Name      string     `json:"name,omitempty"`
	Kind      string     `json:"kind"`
	State     State      `json:"state"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	// Meta is the run's measurement metadata: wall-clock elapsed, worker
	// parallelism, variants attempted and failed.
	Meta               autonosql.RunMeta `json:"meta"`
	ScenariosPerSecond float64           `json:"scenarios_per_second"`
}

// JobStatus is the poll-facing summary of a job.
type JobStatus struct {
	ID        string             `json:"id"`
	Name      string             `json:"name,omitempty"`
	Kind      string             `json:"kind"`
	State     State              `json:"state"`
	Submitted time.Time          `json:"submitted"`
	Started   *time.Time         `json:"started,omitempty"`
	Finished  *time.Time         `json:"finished,omitempty"`
	Error     string             `json:"error,omitempty"`
	Variants  int                `json:"variants"`
	Windows   int                `json:"windows"`
	Meta      *autonosql.RunMeta `json:"meta,omitempty"`
	Failures  []string           `json:"failures,omitempty"`
}

const (
	kindScenario = "scenario"
	kindSuite    = "suite"
)

// Job hosts one scenario or suite run: lifecycle, retained metric windows,
// and the aggregated results. All exported methods are safe for concurrent
// use; the sample hook runs on the simulation goroutines.
type Job struct {
	id   string
	name string
	kind string

	spec         autonosql.ScenarioSpec // kindScenario
	suite        *autonosql.Suite       // kindSuite
	variants     int
	maxViolation float64
	retain       int

	mu        sync.Mutex
	cond      *sync.Cond // wakes paused sample hooks
	state     State
	paused    bool
	canceled  bool
	submitted time.Time
	started   time.Time
	finished  time.Time
	runErr    error

	// Retained stream: a sliding window of the most recent metric windows.
	// windows[0] has sequence firstSeq; nextSeq is one past the newest.
	windows  []MetricWindow
	firstSeq int
	nextSeq  int
	// Retained span stream, mirroring the window ring. Empty unless the
	// job's spec enables Observe.TraceOps.
	spans        []SpanRecord
	firstSpanSeq int
	nextSpanSeq  int
	// notify is closed and replaced whenever windows or state change;
	// streamers wait on the channel they saw instead of holding the lock.
	notify chan struct{}

	// Aggregated results, written by the run goroutine and its suite
	// workers, read by handlers only after the state turns terminal (the
	// state transition under mu orders the accesses).
	meta       autonosql.RunMeta
	report     *autonosql.Report // kindScenario only
	reportJSON bytes.Buffer
	csv        bytes.Buffer
	tenantsCSV bytes.Buffer
	tables     string
	failures   []string
}

func newJob(id, name, kind string, retain int) *Job {
	j := &Job{
		id:        id,
		name:      name,
		kind:      kind,
		retain:    retain,
		state:     StatePending,
		submitted: time.Now(),
		notify:    make(chan struct{}),
	}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// wakeLocked wakes streamers and paused hooks; callers hold mu.
func (j *Job) wakeLocked() {
	close(j.notify)
	j.notify = make(chan struct{})
	j.cond.Broadcast()
}

// Start launches the job's simulation goroutine. Only pending jobs start.
func (j *Job) Start() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StatePending {
		return fmt.Errorf("job %s is %s, not pending", j.id, j.state)
	}
	j.state = StateRunning
	j.started = time.Now()
	j.wakeLocked()
	go j.run()
	return nil
}

// Pause freezes the job at its next sample window: the hook blocks on the
// simulation goroutine, so virtual time stops dead — no drift, no skipped
// samples. With suite parallelism above one, each in-flight variant freezes
// at its own next window.
func (j *Job) Pause() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRunning {
		return fmt.Errorf("job %s is %s, not running", j.id, j.state)
	}
	j.paused = true
	j.state = StatePaused
	j.wakeLocked()
	return nil
}

// Resume unfreezes a paused job.
func (j *Job) Resume() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StatePaused {
		return fmt.Errorf("job %s is %s, not paused", j.id, j.state)
	}
	j.paused = false
	j.state = StateRunning
	j.wakeLocked()
	return nil
}

// Cancel stops the job: a pending job terminates immediately; a running or
// paused one aborts at its next sample window, halting the engine at the
// current event.
func (j *Job) Cancel() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return fmt.Errorf("job %s is already %s", j.id, j.state)
	}
	if j.state == StatePending {
		j.state = StateCanceled
		j.finished = time.Now()
		j.wakeLocked()
		return nil
	}
	j.canceled = true
	j.paused = false
	j.wakeLocked()
	return nil
}

// sampleGate implements pause and cancel from inside the sample hook. It
// runs on a simulation goroutine: blocking here blocks the engine.
func (j *Job) sampleGate() error {
	j.mu.Lock()
	for j.paused && !j.canceled {
		j.cond.Wait()
	}
	canceled := j.canceled
	j.mu.Unlock()
	if canceled {
		return errCanceled
	}
	return nil
}

// observe returns the OnSample hook for one variant: gate (pause/cancel),
// then retain and publish the window.
func (j *Job) observe(variant string) func(autonosql.SampleWindow) error {
	return func(w autonosql.SampleWindow) error {
		if err := j.sampleGate(); err != nil {
			return err
		}
		j.mu.Lock()
		mw := MetricWindow{
			Job:       j.id,
			Variant:   variant,
			Seq:       j.nextSeq,
			AtSeconds: w.At.Seconds(),
			Series:    w.Values,
		}
		j.nextSeq++
		j.windows = append(j.windows, mw)
		if j.retain > 0 && len(j.windows) > j.retain {
			drop := len(j.windows) - j.retain
			j.windows = append(j.windows[:0], j.windows[drop:]...)
			j.firstSeq += drop
		}
		j.wakeLocked()
		j.mu.Unlock()
		return nil
	}
}

// publishSpan returns the OnSpan sink for one variant: the finished trace is
// marshalled once and appended to the span ring. It runs on a simulation
// goroutine, so the span stream follows the run live.
func (j *Job) publishSpan(variant string) func(*obs.OpTrace) {
	return func(tr *obs.OpTrace) {
		raw, err := json.Marshal(tr)
		if err != nil {
			return
		}
		j.mu.Lock()
		j.spans = append(j.spans, SpanRecord{Job: j.id, Variant: variant, Seq: j.nextSpanSeq, Span: raw})
		j.nextSpanSeq++
		if j.retain > 0 && len(j.spans) > j.retain {
			drop := len(j.spans) - j.retain
			j.spans = append(j.spans[:0], j.spans[drop:]...)
			j.firstSpanSeq += drop
		}
		j.wakeLocked()
		j.mu.Unlock()
	}
}

// run executes the job to completion. It owns the result buffers until the
// terminal state transition publishes them.
func (j *Job) run() {
	var err error
	switch j.kind {
	case kindScenario:
		err = j.runScenario()
	case kindSuite:
		err = j.runSuite()
	default:
		err = fmt.Errorf("unknown job kind %q", j.kind)
	}
	j.mu.Lock()
	j.finished = time.Now()
	j.runErr = err
	switch {
	case j.canceled:
		j.state = StateCanceled
	case err != nil:
		j.state = StateFailed
	default:
		j.state = StateDone
	}
	j.wakeLocked()
	j.mu.Unlock()
}

func (j *Job) runScenario() error {
	sc, err := autonosql.NewScenario(j.spec)
	if err != nil {
		return err
	}
	sc.OnSample(j.observe(""))
	sc.OnSpan(j.publishSpan("")) // no-op unless Observe.TraceOps is set
	started := time.Now()
	rep, err := sc.Run()
	j.meta = autonosql.RunMeta{Elapsed: time.Since(started), Parallelism: 1, Variants: 1}
	if err != nil {
		j.meta.Failed = 1
		return err
	}
	j.report = rep
	enc := json.NewEncoder(&j.reportJSON)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return fmt.Errorf("encoding scenario report: %w", err)
	}
	j.tables = rep.String()
	return nil
}

func (j *Job) runSuite() error {
	agg := autonosql.NewSuiteAggregator(autonosql.SuiteAggregatorOptions{
		CSV:                 &j.csv,
		TenantsCSV:          &j.tenantsCSV,
		JSON:                &j.reportJSON,
		MaxViolationMinutes: j.maxViolation,
	})
	meta, runErr := j.suite.RunStream(agg.Consume())
	closeErr := agg.Close()
	j.meta = meta
	j.tables = agg.String()
	for _, e := range agg.Failures() {
		j.failures = append(j.failures, e.Error())
	}
	if runErr != nil {
		return runErr
	}
	return closeErr
}

// Status snapshots the job for polling.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.id,
		Name:      j.name,
		Kind:      j.kind,
		State:     j.state,
		Submitted: j.submitted,
		Variants:  j.variants,
		Windows:   j.nextSeq,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if j.state.Terminal() {
		if j.runErr != nil {
			st.Error = j.runErr.Error()
		}
		meta := j.meta
		st.Meta = &meta
		st.Failures = append([]string(nil), j.failures...)
	}
	return st
}

// Meta returns the job's run-metadata envelope.
func (j *Job) Meta() MetaEnvelope {
	st := j.Status()
	env := MetaEnvelope{
		Job:       st.ID,
		Name:      st.Name,
		Kind:      st.Kind,
		State:     st.State,
		Submitted: st.Submitted,
		Started:   st.Started,
		Finished:  st.Finished,
	}
	if st.Meta != nil {
		env.Meta = *st.Meta
		env.ScenariosPerSecond = st.Meta.ScenariosPerSecond()
	}
	return env
}

// results exposes the aggregated outputs once the job is terminal.
func (j *Job) results() (reportJSON, csv, tenantsCSV []byte, tables string, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.Terminal() {
		return nil, nil, nil, "", false
	}
	return j.reportJSON.Bytes(), j.csv.Bytes(), j.tenantsCSV.Bytes(), j.tables, true
}

// snapshotFrom copies the retained windows with sequence >= from and
// reports whether more may come. Streamers call it in a loop, waiting on
// the returned channel between calls.
func (j *Job) snapshotFrom(from int) (batch []MetricWindow, next int, terminal bool, wait <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < j.firstSeq {
		from = j.firstSeq
	}
	for i := from - j.firstSeq; i < len(j.windows); i++ {
		batch = append(batch, j.windows[i])
	}
	return batch, from + len(batch), j.state.Terminal(), j.notify
}

// snapshotSpansFrom is snapshotFrom over the span ring.
func (j *Job) snapshotSpansFrom(from int) (batch []SpanRecord, next int, terminal bool, wait <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < j.firstSpanSeq {
		from = j.firstSpanSeq
	}
	for i := from - j.firstSpanSeq; i < len(j.spans); i++ {
		batch = append(batch, j.spans[i])
	}
	return batch, from + len(batch), j.state.Terminal(), j.notify
}

// audit exposes a finished scenario job's MAPE audit trail.
func (j *Job) audit() (trail []autonosql.AuditEntry, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.Terminal() || j.report == nil {
		return nil, false
	}
	return j.report.Audit, true
}

// jobMetrics is one job's counters for the /metrics surface.
type jobMetrics struct {
	id       string
	kind     string
	state    State
	variants int
	windows  int
	spans    int
}

func (j *Job) metrics() jobMetrics {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobMetrics{
		id:       j.id,
		kind:     j.kind,
		state:    j.state,
		variants: j.variants,
		windows:  j.nextSeq,
		spans:    j.nextSpanSeq,
	}
}
