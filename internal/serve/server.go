package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"autonosql"
)

// Options configures a Server.
type Options struct {
	// RetainWindows bounds the metric windows each job keeps for stream
	// replay; older windows fall off the front (streamers resume from the
	// oldest retained sequence). Zero keeps every window.
	RetainWindows int
}

// Server owns the job registry and the HTTP API. Wire its Handler into an
// http.Server; watch ShutdownRequested to honour POST /api/shutdown.
type Server struct {
	opts Options
	mux  *http.ServeMux

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	nextID int

	shutdownOnce sync.Once
	shutdown     chan struct{}
}

// NewServer creates a Server with an empty job registry.
func NewServer(opts Options) *Server {
	s := &Server{
		opts:     opts,
		mux:      http.NewServeMux(),
		jobs:     make(map[string]*Job),
		shutdown: make(chan struct{}),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("POST /api/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /api/jobs", s.handleList)
	s.mux.HandleFunc("GET /api/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("POST /api/jobs/{id}/start", s.handleLifecycle((*Job).Start))
	s.mux.HandleFunc("POST /api/jobs/{id}/pause", s.handleLifecycle((*Job).Pause))
	s.mux.HandleFunc("POST /api/jobs/{id}/resume", s.handleLifecycle((*Job).Resume))
	s.mux.HandleFunc("POST /api/jobs/{id}/cancel", s.handleLifecycle((*Job).Cancel))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /api/jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /api/jobs/{id}/spans", s.handleSpans)
	s.mux.HandleFunc("GET /api/jobs/{id}/audit", s.handleAudit)
	s.mux.HandleFunc("GET /api/jobs/{id}/report", s.handleReport)
	s.mux.HandleFunc("GET /api/jobs/{id}/report.csv", s.handleReportCSV)
	s.mux.HandleFunc("GET /api/jobs/{id}/tenants.csv", s.handleTenantsCSV)
	s.mux.HandleFunc("GET /api/jobs/{id}/tables", s.handleTables)
	s.mux.HandleFunc("GET /api/jobs/{id}/meta", s.handleMeta)
	s.mux.HandleFunc("POST /api/shutdown", s.handleShutdown)
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// ShutdownRequested is closed when a client POSTs /api/shutdown.
func (s *Server) ShutdownRequested() <-chan struct{} { return s.shutdown }

// JobRequest is the submission body for POST /api/jobs. Exactly one of
// Scenario or Suite describes the work; Kind is inferred when omitted.
// Scenario and Suite.Base decode onto DefaultScenarioSpec, so a submission
// states only what it overrides. Durations are nanosecond integers
// (time.Duration's JSON form).
type JobRequest struct {
	Kind string `json:"kind,omitempty"` // "scenario" or "suite"
	Name string `json:"name,omitempty"`
	// Scenario overrides DefaultScenarioSpec for a single-run job.
	Scenario json.RawMessage `json:"scenario,omitempty"`
	// Suite describes a grid job.
	Suite *SuiteRequest `json:"suite,omitempty"`
	// Autostart starts the job on submission.
	Autostart bool `json:"autostart,omitempty"`
}

// SuiteRequest describes a suite job: a base spec (onto defaults) swept by
// a grid. The Traces axis is not submittable — recorded traces have no JSON
// form — and is rejected.
type SuiteRequest struct {
	Base                json.RawMessage `json:"base,omitempty"`
	Grid                json.RawMessage `json:"grid,omitempty"`
	Parallelism         int             `json:"parallelism,omitempty"`
	MaxViolationMinutes float64         `json:"max_violation_minutes,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := len(s.jobs)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "jobs": n})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req JobRequest
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding job request: %w", err))
		return
	}
	job, err := s.buildJob(&req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	s.jobs[job.id] = job
	s.order = append(s.order, job.id)
	s.mu.Unlock()
	if req.Autostart {
		if err := job.Start(); err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
	}
	writeJSON(w, http.StatusCreated, job.Status())
}

// buildJob validates a submission and constructs the job — including the
// full suite expansion, so an invalid variant fails the submission rather
// than the run.
func (s *Server) buildJob(req *JobRequest) (*Job, error) {
	kind := req.Kind
	switch {
	case kind == "" && req.Suite != nil:
		kind = kindSuite
	case kind == "":
		kind = kindScenario
	}
	switch kind {
	case kindScenario:
		if req.Suite != nil {
			return nil, fmt.Errorf("scenario job carries a suite body")
		}
		spec := autonosql.DefaultScenarioSpec()
		if len(req.Scenario) > 0 {
			if err := decodeStrict(req.Scenario, &spec); err != nil {
				return nil, fmt.Errorf("decoding scenario spec: %w", err)
			}
		}
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		j := newJob(s.allocateID(), req.Name, kindScenario, s.opts.RetainWindows)
		j.spec = spec
		j.variants = 1
		return j, nil
	case kindSuite:
		if req.Suite == nil {
			return nil, fmt.Errorf("suite job without a suite body")
		}
		if len(req.Scenario) > 0 {
			return nil, fmt.Errorf("suite job carries a scenario body; put the base spec in suite.base")
		}
		base := autonosql.DefaultScenarioSpec()
		if len(req.Suite.Base) > 0 {
			if err := decodeStrict(req.Suite.Base, &base); err != nil {
				return nil, fmt.Errorf("decoding suite base spec: %w", err)
			}
		}
		var grid autonosql.Grid
		if len(req.Suite.Grid) > 0 {
			if err := decodeStrict(req.Suite.Grid, &grid); err != nil {
				return nil, fmt.Errorf("decoding suite grid: %w", err)
			}
		}
		if len(grid.Traces) > 0 {
			return nil, fmt.Errorf("the traces axis cannot be submitted over JSON: recorded traces are in-process values (record with suiterunner -record-trace and replay locally)")
		}
		j := newJob(s.allocateID(), req.Name, kindSuite, s.opts.RetainWindows)
		j.maxViolation = req.Suite.MaxViolationMinutes
		variants := autonosql.ExpandGrid(base, grid)
		for i := range variants {
			name := variants[i].Name
			variants[i].Configure = func(sc *autonosql.Scenario) error {
				sc.OnSample(j.observe(name))
				sc.OnSpan(j.publishSpan(name)) // no-op unless Observe.TraceOps
				return nil
			}
		}
		suite, err := autonosql.NewSuite(autonosql.SuiteSpec{
			Variants:    variants,
			Parallelism: req.Suite.Parallelism,
		})
		if err != nil {
			return nil, err
		}
		j.suite = suite
		j.variants = len(variants)
		return j, nil
	default:
		return nil, fmt.Errorf("unknown job kind %q (want %q or %q)", kind, kindScenario, kindSuite)
	}
}

func (s *Server) allocateID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	return fmt.Sprintf("job-%04d", s.nextID)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	statuses := make([]JobStatus, 0, len(s.order))
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	for _, j := range jobs {
		statuses = append(statuses, j.Status())
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": statuses})
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *Job {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.lookup(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleLifecycle(op func(*Job) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j := s.lookup(w, r)
		if j == nil {
			return
		}
		if err := op(j); err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, j.Status())
	}
}

// handleStream replays the retained metric windows from the requested
// sequence (?from=N, default oldest retained) as JSON lines, then follows
// the live run — one line per closed sample window, flushed as it closes —
// until the job reaches a terminal state or the client disconnects.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad from sequence %q", q))
			return
		}
		from = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush() // commit headers before the first window closes
	}
	enc := json.NewEncoder(w)
	next := from
	for {
		batch, n, terminal, wait := j.snapshotFrom(next)
		next = n
		for _, mw := range batch {
			if err := enc.Encode(mw); err != nil {
				return // client gone
			}
		}
		if len(batch) > 0 && flusher != nil {
			flusher.Flush()
		}
		if terminal {
			// One final snapshot raced nothing: terminal was read after the
			// batch, and windows only grow before the terminal transition.
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-wait:
		}
	}
}

// handleSpans replays the retained op-trace spans from the requested
// sequence (?from=N, default oldest retained) as JSON lines, then follows
// the live run until the job finishes or the client disconnects. Jobs
// submitted without Observe.TraceOps stream nothing and close at the
// terminal state.
func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad from sequence %q", q))
			return
		}
		from = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	next := from
	for {
		batch, n, terminal, wait := j.snapshotSpansFrom(next)
		next = n
		for _, rec := range batch {
			if err := enc.Encode(rec); err != nil {
				return // client gone
			}
		}
		if len(batch) > 0 && flusher != nil {
			flusher.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-wait:
		}
	}
}

// handleAudit serves a finished scenario job's MAPE decision audit trail.
// The trail is part of the report (Observe.Audit), so it follows the same
// results-only-after-terminal contract.
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	if j.kind != kindScenario {
		httpError(w, http.StatusNotFound, fmt.Errorf("job %s is a %s job; the audit trail is a scenario surface", j.id, j.kind))
		return
	}
	trail, ok := j.audit()
	if !ok {
		httpError(w, http.StatusConflict, fmt.Errorf("job %s is %s; the audit trail is available once it finishes", j.id, j.Status().State))
		return
	}
	if trail == nil {
		trail = []autonosql.AuditEntry{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"job": j.id, "audit": trail})
}

// handleMetrics serves a Prometheus text exposition of the daemon's state:
// job counts by state, plus per-job window, span and variant counters in
// submission order. Everything here is cheap to collect, so the endpoint is
// safe to scrape frequently.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()

	byState := map[State]int{}
	snaps := make([]jobMetrics, 0, len(jobs))
	for _, j := range jobs {
		m := j.metrics()
		byState[m.state]++
		snaps = append(snaps, m)
	}

	var b strings.Builder
	b.WriteString("# HELP autonosql_jobs Number of jobs in each lifecycle state.\n")
	b.WriteString("# TYPE autonosql_jobs gauge\n")
	for _, st := range []State{StatePending, StateRunning, StatePaused, StateDone, StateFailed, StateCanceled} {
		fmt.Fprintf(&b, "autonosql_jobs{state=%q} %d\n", st, byState[st])
	}
	b.WriteString("# HELP autonosql_job_info Per-job kind and state (value is always 1).\n")
	b.WriteString("# TYPE autonosql_job_info gauge\n")
	for _, m := range snaps {
		fmt.Fprintf(&b, "autonosql_job_info{job=%q,kind=%q,state=%q} 1\n", m.id, m.kind, m.state)
	}
	b.WriteString("# HELP autonosql_job_windows_total Metric windows published by each job.\n")
	b.WriteString("# TYPE autonosql_job_windows_total counter\n")
	for _, m := range snaps {
		fmt.Fprintf(&b, "autonosql_job_windows_total{job=%q} %d\n", m.id, m.windows)
	}
	b.WriteString("# HELP autonosql_job_spans_total Op-trace spans published by each job.\n")
	b.WriteString("# TYPE autonosql_job_spans_total counter\n")
	for _, m := range snaps {
		fmt.Fprintf(&b, "autonosql_job_spans_total{job=%q} %d\n", m.id, m.spans)
	}
	b.WriteString("# HELP autonosql_job_variants Scenario variants each job runs.\n")
	b.WriteString("# TYPE autonosql_job_variants gauge\n")
	for _, m := range snaps {
		fmt.Fprintf(&b, "autonosql_job_variants{job=%q} %d\n", m.id, m.variants)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, b.String())
}

// finished fetches a job and its results, enforcing the
// results-only-after-terminal contract.
func (s *Server) finished(w http.ResponseWriter, r *http.Request) (*Job, []byte, []byte, []byte, string, bool) {
	j := s.lookup(w, r)
	if j == nil {
		return nil, nil, nil, nil, "", false
	}
	reportJSON, csvB, tenantsB, tables, ok := j.results()
	if !ok {
		httpError(w, http.StatusConflict, fmt.Errorf("job %s is %s; results are available once it finishes", j.id, j.Status().State))
		return nil, nil, nil, nil, "", false
	}
	return j, reportJSON, csvB, tenantsB, tables, true
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	_, reportJSON, _, _, _, ok := s.finished(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(reportJSON)
}

func (s *Server) handleReportCSV(w http.ResponseWriter, r *http.Request) {
	j, _, csvB, _, _, ok := s.finished(w, r)
	if !ok {
		return
	}
	if j.kind != kindSuite {
		httpError(w, http.StatusNotFound, fmt.Errorf("job %s is a %s job; CSV export is a suite surface", j.id, j.kind))
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(csvB)
}

func (s *Server) handleTenantsCSV(w http.ResponseWriter, r *http.Request) {
	j, _, _, tenantsB, _, ok := s.finished(w, r)
	if !ok {
		return
	}
	if j.kind != kindSuite {
		httpError(w, http.StatusNotFound, fmt.Errorf("job %s is a %s job; CSV export is a suite surface", j.id, j.kind))
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(tenantsB)
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	_, _, _, _, tables, ok := s.finished(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(tables))
}

func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request) {
	if j := s.lookup(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.Meta())
	}
}

func (s *Server) handleShutdown(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusAccepted, map[string]any{"shutting_down": true})
	s.shutdownOnce.Do(func() { close(s.shutdown) })
}

func decodeStrict(raw json.RawMessage, into any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	return dec.Decode(into)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
