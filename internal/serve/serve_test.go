package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"autonosql"
)

// smallSpec is a scenario small enough that a daemon round trip takes well
// under a second, with enough sample windows to stream.
func smallSpec() autonosql.ScenarioSpec {
	spec := autonosql.DefaultScenarioSpec()
	spec.Duration = 20 * time.Second
	spec.SampleInterval = 5 * time.Second
	spec.Workload.BaseOpsPerSec = 600
	spec.Workload.PeakOpsPerSec = 1200
	spec.Workload.Keyspace = 1000
	spec.Controller.Mode = autonosql.ControllerNone
	return spec
}

func newTestDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(NewServer(Options{RetainWindows: 4096}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal request: %v", err)
		}
		rd = bytes.NewReader(b)
	}
	resp, err := http.Post(url, "application/json", rd)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp, b
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp, b
}

func submit(t *testing.T, ts *httptest.Server, req JobRequest) JobStatus {
	t.Helper()
	resp, body := post(t, ts.URL+"/api/jobs", req)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	return st
}

func waitState(t *testing.T, ts *httptest.Server, id string, want State) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		_, body := get(t, ts.URL+"/api/jobs/"+id)
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("decoding status: %v", err)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, st.State, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestDaemonScenarioRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	ts := newTestDaemon(t)
	spec := smallSpec()
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}

	st := submit(t, ts, JobRequest{Name: "round-trip", Scenario: raw, Autostart: true})
	if st.Kind != kindScenario || st.Variants != 1 {
		t.Fatalf("submitted job status %+v, want scenario with 1 variant", st)
	}

	// Stream the run: JSON lines, sequenced, with sampled series values.
	resp, err := http.Get(ts.URL + "/api/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatalf("GET stream: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream Content-Type = %q, want application/x-ndjson", ct)
	}
	var windows []MetricWindow
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var mw MetricWindow
		if err := json.Unmarshal(sc.Bytes(), &mw); err != nil {
			t.Fatalf("decoding stream line %q: %v", sc.Text(), err)
		}
		windows = append(windows, mw)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	if len(windows) == 0 {
		t.Fatal("stream delivered no metric windows")
	}
	for i, mw := range windows {
		if mw.Seq != i {
			t.Fatalf("window %d has seq %d, want contiguous from 0", i, mw.Seq)
		}
		if mw.Job != st.ID || len(mw.Series) == 0 {
			t.Fatalf("window %d = %+v, want series values for job %s", i, mw, st.ID)
		}
	}

	final := waitState(t, ts, st.ID, StateDone)
	if final.Windows != len(windows) {
		t.Errorf("status reports %d windows, stream delivered %d", final.Windows, len(windows))
	}

	// The daemon's report must be byte-identical to the same spec offline.
	offline, err := autonosql.NewScenario(spec)
	if err != nil {
		t.Fatalf("NewScenario: %v", err)
	}
	rep, err := offline.Run()
	if err != nil {
		t.Fatalf("offline run: %v", err)
	}
	var want bytes.Buffer
	enc := json.NewEncoder(&want)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		t.Fatalf("encoding offline report: %v", err)
	}
	gresp, got := get(t, ts.URL+"/api/jobs/"+st.ID+"/report")
	if gresp.StatusCode != http.StatusOK {
		t.Fatalf("report: status %d, body %s", gresp.StatusCode, got)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("daemon report differs from offline run (%d vs %d bytes)", len(got), want.Len())
	}

	// The /meta envelope restores what the report deliberately omits.
	_, metaBody := get(t, ts.URL+"/api/jobs/"+st.ID+"/meta")
	var env MetaEnvelope
	if err := json.Unmarshal(metaBody, &env); err != nil {
		t.Fatalf("decoding meta envelope: %v", err)
	}
	if env.State != StateDone || env.Meta.Variants != 1 || env.Meta.Elapsed <= 0 {
		t.Errorf("meta envelope = %+v, want a finished single-variant run with elapsed time", env)
	}
	if env.ScenariosPerSecond <= 0 {
		t.Errorf("meta envelope ScenariosPerSecond = %v, want > 0", env.ScenariosPerSecond)
	}
}

func TestDaemonSuiteJob(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	ts := newTestDaemon(t)
	base := smallSpec()
	rawBase, err := json.Marshal(base)
	if err != nil {
		t.Fatalf("marshal base: %v", err)
	}
	grid := autonosql.Grid{ClusterSizes: []int{2, 3}}
	rawGrid, err := json.Marshal(grid)
	if err != nil {
		t.Fatalf("marshal grid: %v", err)
	}

	st := submit(t, ts, JobRequest{Name: "grid", Suite: &SuiteRequest{
		Base: rawBase, Grid: rawGrid, Parallelism: 2,
	}})
	if st.Kind != kindSuite || st.Variants != 2 || st.State != StatePending {
		t.Fatalf("submitted job status %+v, want pending suite with 2 variants", st)
	}

	// Results before the job runs are a conflict, not an empty report.
	if resp, _ := get(t, ts.URL+"/api/jobs/"+st.ID+"/report"); resp.StatusCode != http.StatusConflict {
		t.Errorf("report of a pending job: status %d, want %d", resp.StatusCode, http.StatusConflict)
	}

	if resp, body := post(t, ts.URL+"/api/jobs/"+st.ID+"/start", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("start: status %d, body %s", resp.StatusCode, body)
	}
	final := waitState(t, ts, st.ID, StateDone)
	if final.Meta == nil || final.Meta.Variants != 2 || final.Meta.Failed != 0 {
		t.Fatalf("final status meta = %+v, want 2 variants, 0 failed", final.Meta)
	}

	// Byte-identical to the same suite offline, streamed aggregation and all.
	suite, err := autonosql.NewSuite(autonosql.SuiteSpec{Base: base, Grid: grid})
	if err != nil {
		t.Fatalf("NewSuite: %v", err)
	}
	report, err := suite.Run()
	if err != nil {
		t.Fatalf("offline suite run: %v", err)
	}
	var wantJSON, wantCSV bytes.Buffer
	if err := report.WriteJSON(&wantJSON); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := report.WriteCSV(&wantCSV); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if _, got := get(t, ts.URL+"/api/jobs/"+st.ID+"/report"); !bytes.Equal(got, wantJSON.Bytes()) {
		t.Errorf("daemon suite report differs from offline export (%d vs %d bytes)", len(got), wantJSON.Len())
	}
	if _, got := get(t, ts.URL+"/api/jobs/"+st.ID+"/report.csv"); !bytes.Equal(got, wantCSV.Bytes()) {
		t.Errorf("daemon suite CSV differs from offline export:\n got %q\nwant %q", got, wantCSV.String())
	}
	if _, got := get(t, ts.URL+"/api/jobs/"+st.ID+"/tables"); !strings.Contains(string(got), "suite comparison — SLA outcomes") {
		t.Errorf("tables output missing the comparison table:\n%s", got)
	}

	// Both variants streamed windows, tagged with their variant names.
	_, streamBody := get(t, ts.URL+"/api/jobs/"+st.ID+"/stream")
	variants := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(string(streamBody)), "\n") {
		var mw MetricWindow
		if err := json.Unmarshal([]byte(line), &mw); err != nil {
			t.Fatalf("decoding stream line %q: %v", line, err)
		}
		variants[mw.Variant] = true
	}
	if len(variants) != 2 {
		t.Errorf("stream carried windows for variants %v, want both grid variants", variants)
	}
}

func TestDaemonPauseResumeCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	ts := newTestDaemon(t)
	spec := smallSpec()
	spec.Duration = time.Hour // long enough that the test controls the end
	spec.SampleInterval = time.Second
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	st := submit(t, ts, JobRequest{Scenario: raw, Autostart: true})

	// Pausing is only meaningful once the run is sampling; wait for the
	// first window.
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, body := get(t, ts.URL+"/api/jobs/"+st.ID)
		var cur JobStatus
		if err := json.Unmarshal(body, &cur); err != nil {
			t.Fatalf("decoding status: %v", err)
		}
		if cur.Windows > 0 {
			break
		}
		if cur.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job never sampled: %+v", cur)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if resp, body := post(t, ts.URL+"/api/jobs/"+st.ID+"/pause", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("pause: status %d, body %s", resp.StatusCode, body)
	}
	// Paused means frozen: the window count stops advancing because the
	// sample hook blocks on the simulation goroutine (virtual time stopped).
	frozen := waitState(t, ts, st.ID, StatePaused)
	time.Sleep(100 * time.Millisecond)
	after := waitState(t, ts, st.ID, StatePaused)
	if after.Windows != frozen.Windows {
		t.Errorf("windows advanced from %d to %d while paused", frozen.Windows, after.Windows)
	}
	// Pausing a paused job is a conflict.
	if resp, _ := post(t, ts.URL+"/api/jobs/"+st.ID+"/pause", nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("double pause: status %d, want %d", resp.StatusCode, http.StatusConflict)
	}

	if resp, body := post(t, ts.URL+"/api/jobs/"+st.ID+"/resume", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("resume: status %d, body %s", resp.StatusCode, body)
	}
	if resp, body := post(t, ts.URL+"/api/jobs/"+st.ID+"/cancel", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d, body %s", resp.StatusCode, body)
	}
	final := waitState(t, ts, st.ID, StateCanceled)
	if final.Error == "" || !strings.Contains(final.Error, "canceled") {
		t.Errorf("canceled job error = %q, want one mentioning cancelation", final.Error)
	}
}

func TestDaemonRejectsBadSubmissions(t *testing.T) {
	ts := newTestDaemon(t)
	for name, body := range map[string]string{
		"unknown top-level field": `{"scenaroi": {}}`,
		"unknown spec field":      `{"scenario": {"Duratoin": 5}}`,
		"invalid spec":            `{"scenario": {"Duration": -5}}`,
		"unknown kind":            `{"kind": "batch"}`,
		"suite without body":      `{"kind": "suite"}`,
		"scenario with suite":     `{"kind": "scenario", "suite": {}}`,
		"traces axis":             `{"suite": {"grid": {"Traces": [{"Name": "t"}]}}}`,
	} {
		t.Run(name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/api/jobs", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatalf("POST: %v", err)
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status %d (body %s), want %d", resp.StatusCode, b, http.StatusBadRequest)
			}
		})
	}

	if resp, _ := get(t, ts.URL+"/api/jobs/nope"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status %d, want 404", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/api/jobs/nope/start", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("starting unknown job: status %d, want 404", resp.StatusCode)
	}
}

func TestDaemonHealthListShutdown(t *testing.T) {
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok": true`) {
		t.Fatalf("healthz: status %d, body %s", resp.StatusCode, body)
	}

	// Submit two pending jobs; the list preserves submission order.
	spec := smallSpec()
	raw, _ := json.Marshal(spec)
	a := submit(t, ts, JobRequest{Name: "first", Scenario: raw})
	b := submit(t, ts, JobRequest{Name: "second", Scenario: raw})
	_, listBody := get(t, ts.URL+"/api/jobs")
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.Unmarshal(listBody, &list); err != nil {
		t.Fatalf("decoding job list: %v", err)
	}
	if len(list.Jobs) != 2 || list.Jobs[0].ID != a.ID || list.Jobs[1].ID != b.ID {
		t.Fatalf("job list %+v, want [%s %s]", list.Jobs, a.ID, b.ID)
	}

	// A pending job cancels immediately.
	if resp, _ := post(t, ts.URL+"/api/jobs/"+a.ID+"/cancel", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel pending: status %d", resp.StatusCode)
	}
	st := waitState(t, ts, a.ID, StateCanceled)
	if st.Error != "" {
		t.Errorf("canceled pending job has error %q, want none (it never ran)", st.Error)
	}

	resp, _ = post(t, ts.URL+"/api/shutdown", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("shutdown: status %d, want %d", resp.StatusCode, http.StatusAccepted)
	}
	select {
	case <-srv.ShutdownRequested():
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown request not signalled")
	}
}

func TestMetricWindowRetentionBound(t *testing.T) {
	j := newJob("job-0001", "", kindScenario, 3)
	obs := j.observe("v")
	j.state = StateRunning
	for i := 0; i < 10; i++ {
		if err := obs(autonosql.SampleWindow{
			At:     time.Duration(i) * time.Second,
			Values: map[string]float64{"x": float64(i)},
		}); err != nil {
			t.Fatalf("observe window %d: %v", i, err)
		}
	}
	batch, next, _, _ := j.snapshotFrom(0)
	if len(batch) != 3 {
		t.Fatalf("retained %d windows, want 3", len(batch))
	}
	if batch[0].Seq != 7 || next != 10 {
		t.Fatalf("oldest retained seq %d, next %d; want 7 and 10", batch[0].Seq, next)
	}
	if fmt.Sprintf("%v", batch[2].Series["x"]) != "9" {
		t.Fatalf("newest window = %+v, want the last observed", batch[2])
	}
}
