package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"autonosql"
)

// TestDaemonObservabilitySurfaces pins the daemon's observability API: a job
// submitted with Observe enabled streams its op-trace spans, serves its MAPE
// audit trail once finished, and shows up on the Prometheus /metrics page
// with non-zero span and window counters.
func TestDaemonObservabilitySurfaces(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	ts := newTestDaemon(t)
	spec := smallSpec()
	spec.Controller.Mode = autonosql.ControllerSmart
	spec.Observe = &autonosql.ObserveSpec{TraceOps: true, SampleEvery: 500, Audit: true, Profile: true}
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}

	st := submit(t, ts, JobRequest{Name: "observed", Scenario: raw, Autostart: true})

	// The audit trail is a results surface: conflict until terminal.
	if resp, _ := get(t, ts.URL+"/api/jobs/"+st.ID+"/audit"); resp.StatusCode == http.StatusOK {
		// The tiny run may already be done; only a non-conflict non-OK is wrong.
	} else if resp.StatusCode != http.StatusConflict {
		t.Errorf("audit before terminal: status %d, want 200 or 409", resp.StatusCode)
	}

	// Stream the spans to completion: JSON lines, sequenced from zero, each
	// carrying the op trace in its canonical form.
	resp, err := http.Get(ts.URL + "/api/jobs/" + st.ID + "/spans")
	if err != nil {
		t.Fatalf("GET spans: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("spans Content-Type = %q, want application/x-ndjson", ct)
	}
	var spans []SpanRecord
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("decoding span line %q: %v", sc.Text(), err)
		}
		spans = append(spans, rec)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading span stream: %v", err)
	}
	if len(spans) == 0 {
		t.Fatal("span stream produced no spans")
	}
	for i, rec := range spans {
		if rec.Seq != i {
			t.Fatalf("span %d has sequence %d", i, rec.Seq)
		}
		var span struct {
			ID     uint64 `json:"id"`
			Events []any  `json:"events"`
		}
		if err := json.Unmarshal(rec.Span, &span); err != nil {
			t.Fatalf("decoding span payload %d: %v", i, err)
		}
		if span.ID == 0 || len(span.Events) == 0 {
			t.Fatalf("span %d has id=%d with %d events, want a populated trace", i, span.ID, len(span.Events))
		}
	}

	waitState(t, ts, st.ID, StateDone)

	// The audit trail names the control decisions and their causal inputs.
	respA, body := get(t, ts.URL+"/api/jobs/"+st.ID+"/audit")
	if respA.StatusCode != http.StatusOK {
		t.Fatalf("audit after terminal: status %d, body %s", respA.StatusCode, body)
	}
	var auditResp struct {
		Job   string                 `json:"job"`
		Audit []autonosql.AuditEntry `json:"audit"`
	}
	if err := json.Unmarshal(body, &auditResp); err != nil {
		t.Fatalf("decoding audit response: %v", err)
	}
	if len(auditResp.Audit) == 0 {
		t.Fatal("audit trail is empty for a smart-controller run")
	}
	for _, e := range auditResp.Audit {
		if e.Condition == "" || e.Action == "" {
			t.Fatalf("audit entry %+v missing condition or action", e)
		}
	}

	// The report carries the observability sections.
	_, repBody := get(t, ts.URL+"/api/jobs/"+st.ID+"/report")
	var rep autonosql.Report
	if err := json.Unmarshal(repBody, &rep); err != nil {
		t.Fatalf("decoding report: %v", err)
	}
	if rep.Spans == nil || rep.Spans.Sampled == 0 {
		t.Errorf("report Spans = %+v, want sampled > 0", rep.Spans)
	}
	if rep.Profile == nil || rep.Profile.Events == 0 {
		t.Errorf("report Profile = %+v, want events > 0", rep.Profile)
	}
	if len(rep.Audit) != len(auditResp.Audit) {
		t.Errorf("report audit has %d entries, endpoint served %d", len(rep.Audit), len(auditResp.Audit))
	}

	// The Prometheus page counts the job and its published spans/windows.
	respM, metrics := get(t, ts.URL+"/metrics")
	if respM.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", respM.StatusCode)
	}
	if ct := respM.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q, want text/plain exposition", ct)
	}
	page := string(metrics)
	for _, want := range []string{
		`autonosql_jobs{state="done"} 1`,
		`autonosql_job_info{job="` + st.ID + `",kind="scenario",state="done"} 1`,
		`autonosql_job_windows_total{job="` + st.ID + `"}`,
		`autonosql_job_spans_total{job="` + st.ID + `"}`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("/metrics missing %q\npage:\n%s", want, page)
		}
	}
	var spanCount int
	for _, line := range strings.Split(page, "\n") {
		if strings.HasPrefix(line, `autonosql_job_spans_total{job="`+st.ID+`"}`) {
			if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &spanCount); err != nil {
				t.Fatalf("parsing span counter from %q: %v", line, err)
			}
		}
	}
	if spanCount != len(spans) {
		t.Errorf("/metrics reports %d spans, stream delivered %d", spanCount, len(spans))
	}
}
