// Package serve hosts simulation scenarios and suites as jobs behind an
// HTTP/JSON API — the engine room of the nosqlsimd daemon.
//
// A job wraps one scenario or one suite grid. Clients submit a job (POST
// /api/jobs), drive its lifecycle (start, pause, resume, cancel), poll its
// status, stream metric windows as the simulation closes them (GET
// /api/jobs/{id}/stream, JSON lines), and fetch the aggregated results once
// the job finishes (report JSON/CSV, rendered tables, and the run-metadata
// envelope that the determinism-stable report exports deliberately omit).
//
// The daemon rides entirely on public autonosql surfaces: Scenario.OnSample
// observes windows on the simulation goroutine (so pausing a job blocks the
// hook and freezes virtual time — no sampling drift), Suite.RunStream feeds
// a SuiteAggregator (so million-variant grids never hold more than
// Parallelism reports in memory), and cancellation returns an error from the
// hook, halting the engine at the current event. None of this perturbs the
// simulation: a job's report is byte-identical to the same spec run offline.
package serve
