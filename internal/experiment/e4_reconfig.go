package experiment

import (
	"fmt"
	"time"

	"autonosql"
)

// e4Action is one reconfiguration action applied mid-run.
type e4Action struct {
	name  string
	apply func(h *autonosql.Handle) error
}

// e4Timeline summarises a window timeline around a reconfiguration applied at
// actionAt.
type e4Timeline struct {
	before      float64 // mean window p95 (s) in the pre-action steady phase
	peak        float64 // maximum window p95 (s) in the transient after the action
	after       float64 // mean window p95 (s) in the final steady phase
	convergence time.Duration
	converged   bool
}

// RunE4 reproduces the reconfiguration-overhead study (RQ3: "what is the
// overhead of possible reconfiguration actions on the inconsistency window
// and the overall performance?").
//
// Under steady load (and, in the second half of the table, under injected
// network congestion) a single reconfiguration action is applied mid-run with
// no controller involved: changing the write consistency level, adding a
// node, raising the replication factor and removing a node. The table
// reports the window before the action, the worst transient after it, the
// final steady window and how long the system took to converge — including
// the paper's explicit wrong-action case: growing the replica set while the
// network is congested.
func RunE4(scale Scale) (*Result, error) {
	started := time.Now()
	res := &Result{ID: "E4", Title: "Reconfiguration overhead and convergence"}

	duration := 5 * time.Minute
	sample := 5 * time.Second
	if scale == ScaleQuick {
		duration = 2 * time.Minute
	}
	actionAt := duration / 2
	congestionAt := duration / 4

	baseSpec := func(seed int64) autonosql.ScenarioSpec {
		spec := autonosql.DefaultScenarioSpec()
		spec.Seed = seed
		spec.Duration = duration
		spec.SampleInterval = sample
		spec.Cluster.InitialNodes = 3
		spec.Cluster.MinNodes = 2
		spec.Cluster.MaxNodes = 8
		spec.Cluster.NodeOpsPerSec = 2000
		spec.Cluster.BootstrapTime = 30 * time.Second
		spec.Cluster.DecommissionTime = 20 * time.Second
		// High enough that replica applies queue visibly behind foreground
		// work: this is the regime in which the choice of reconfiguration
		// action actually matters.
		spec.Workload.BaseOpsPerSec = 0.80 * effectiveCapacity(3, 2000, 0.5, 3)
		spec.Workload.ReadFraction = 0.5
		spec.Workload.Keyspace = 5000
		spec.Controller.Mode = autonosql.ControllerNone
		spec.SLA.MaxWindowP95 = 10 * time.Second
		return spec
	}

	actions := []e4Action{
		{name: "tighten write CL (ONE->QUORUM)", apply: func(h *autonosql.Handle) error {
			return h.SetWriteConsistency(autonosql.ConsistencyQuorum)
		}},
		{name: "add node", apply: func(h *autonosql.Handle) error { return h.AddNode() }},
		{name: "increase RF (3->4)", apply: func(h *autonosql.Handle) error { return h.SetReplicationFactor(4) }},
		{name: "remove node", apply: func(h *autonosql.Handle) error { return h.RemoveNode() }},
	}
	if scale == ScaleQuick {
		actions = actions[:3]
	}

	t := Table{
		ID:    "E4",
		Title: "Transient impact and convergence of single reconfiguration actions (load=80%, RF=3, CL=ONE)",
		Columns: []string{"action", "network congestion", "window p95 before (ms)", "transient peak (ms)",
			"window p95 after (ms)", "after/before", "converged", "time to converge (s)"},
	}

	// One variant per (action, congestion) cell. The mid-run intervention and
	// the optional congestion injection are registered through the variant's
	// Configure hook; action errors are captured per cell and checked after
	// the suite has run.
	type e4Cell struct {
		name      string
		action    e4Action
		congested bool
		applyErr  error
	}
	var cells []*e4Cell
	var variants []autonosql.Variant
	for _, congested := range []bool{false, true} {
		for i, action := range actions {
			cell := &e4Cell{
				name:      fmt.Sprintf("%s congested=%v", action.name, congested),
				action:    action,
				congested: congested,
			}
			cells = append(cells, cell)
			spec := baseSpec(401 + int64(i))
			variants = append(variants, autonosql.Variant{
				Name: cell.name,
				Spec: spec,
				Configure: func(sc *autonosql.Scenario) error {
					if cell.congested {
						sc.At(congestionAt, func(h *autonosql.Handle) { h.SetNetworkCongestion(0.6) })
					}
					sc.At(actionAt, func(h *autonosql.Handle) { cell.applyErr = cell.action.apply(h) })
					return nil
				},
			})
		}
	}
	reports, err := runSuite(variants)
	if err != nil {
		return nil, fmt.Errorf("E4: %w", err)
	}

	var figures []string
	for _, cell := range cells {
		if cell.applyErr != nil {
			return nil, fmt.Errorf("E4 %s: applying action: %w", cell.action.name, cell.applyErr)
		}
		rep := reports[cell.name]

		tl := analyzeTimeline(rep.Series[autonosql.SeriesWindowP95], actionAt, congestionAt, cell.congested, duration)
		ratio := 0.0
		if tl.before > 0 {
			ratio = tl.after / tl.before
		}
		convergence := "-"
		if tl.converged {
			convergence = fmt.Sprintf("%.0f", tl.convergence.Seconds())
		}
		t.AddRow(cell.action.name, fbool(cell.congested), fms(tl.before), fms(tl.peak), fms(tl.after),
			fnum(ratio), fbool(tl.converged), convergence)

		// Keep two representative figures: the helpful action under normal
		// conditions and the paper's wrong action under congestion.
		if !cell.congested && cell.action.name == "tighten write CL (ONE->QUORUM)" {
			figures = append(figures, "Figure E4-1: window p95 timeline, tighten write CL at t="+actionAt.String()+"\n"+
				rep.PlotSeries(autonosql.SeriesWindowP95, 50))
		}
		if cell.congested && cell.action.name == "increase RF (3->4)" {
			figures = append(figures, "Figure E4-2: window p95 timeline, increase RF under network congestion "+
				"(congestion from t="+congestionAt.String()+", action at t="+actionAt.String()+")\n"+
				rep.PlotSeries(autonosql.SeriesWindowP95, 50))
		}
	}
	t.AddNote("expected shape: tightening the write consistency level shrinks the window almost immediately; " +
		"adding a node helps only after its bootstrap transient; growing the replica set or the cluster while the " +
		"network is congested makes the window worse — the wrong-action case the paper warns about")
	res.Tables = append(res.Tables, t)
	res.Figures = figures

	res.Elapsed = time.Since(started)
	return res, nil
}

// analyzeTimeline extracts before/peak/after/convergence numbers from a
// window time series (values in milliseconds, converted back to seconds).
func analyzeTimeline(series []autonosql.SeriesPoint, actionAt, congestionAt time.Duration, congested bool, duration time.Duration) e4Timeline {
	var tl e4Timeline
	if len(series) == 0 {
		return tl
	}

	// Pre-action steady phase: after warm-up (and after congestion has been
	// injected, when applicable) up to the action.
	preFrom := actionAt / 2
	if congested && congestionAt+20*time.Second > preFrom {
		preFrom = congestionAt + 20*time.Second
	}
	var preSum float64
	var preN int
	for _, p := range series {
		if p.At >= preFrom && p.At < actionAt {
			preSum += p.Value
			preN++
		}
	}
	if preN > 0 {
		tl.before = preSum / float64(preN) / 1000
	}

	// Final steady phase: the last 20% of the run.
	finalFrom := duration - duration/5
	var postSum float64
	var postN int
	for _, p := range series {
		if p.At >= finalFrom {
			postSum += p.Value
			postN++
		}
	}
	if postN > 0 {
		tl.after = postSum / float64(postN) / 1000
	}

	// Transient peak between the action and the final phase.
	for _, p := range series {
		if p.At >= actionAt && p.At < finalFrom && p.Value/1000 > tl.peak {
			tl.peak = p.Value / 1000
		}
	}
	if tl.peak < tl.after {
		tl.peak = tl.after
	}

	// Convergence: the first post-action time from which every later sample
	// stays within 30% (or 5 ms) of the final steady value.
	tolerance := tl.after * 0.3
	if tolerance < 0.005 {
		tolerance = 0.005
	}
	lastOutside := actionAt
	for _, p := range series {
		if p.At < actionAt {
			continue
		}
		if diff := p.Value/1000 - tl.after; diff > tolerance || diff < -tolerance {
			lastOutside = p.At
		}
	}
	if lastOutside < duration-duration/10 {
		tl.converged = true
		tl.convergence = lastOutside - actionAt
		if tl.convergence < 0 {
			tl.convergence = 0
		}
	}
	return tl
}
