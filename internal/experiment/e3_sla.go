package experiment

import (
	"fmt"
	"time"

	"autonosql"
)

// e3StaticConfig is one candidate static configuration for the exhaustive
// search the SLA-driven controller is compared against.
type e3StaticConfig struct {
	name    string
	nodes   int
	writeCL autonosql.ConsistencyLevel
}

// e3Outcome is the measured outcome of one configuration under the E3
// workload.
type e3Outcome struct {
	windowP95  float64 // seconds
	writeP99   float64 // seconds
	totalCost  float64
	compliance float64
	violations float64 // minutes
	finalNodes int
	finalCL    autonosql.ConsistencyLevel
	reconfigs  int
}

// RunE3 reproduces the SLA-derivation study (RQ2: "to which extent is it
// possible to derive consistency-related parameters from an SLA?").
//
// For a range of SLA window limits, the smart controller starts from the
// loosest configuration and must find a configuration that meets the limit;
// its final configuration and cost are compared against (a) an exhaustive
// search over static configurations — the offline optimum — and (b) the two
// static policies the paper's motivation describes: permanently strict and
// permanently loose.
func RunE3(scale Scale) (*Result, error) {
	started := time.Now()
	res := &Result{ID: "E3", Title: "Deriving configuration from the SLA"}

	duration := 6 * time.Minute
	if scale == ScaleQuick {
		duration = 90 * time.Second
	}

	baseSpec := func() autonosql.ScenarioSpec {
		spec := autonosql.DefaultScenarioSpec()
		spec.Seed = 301
		spec.Duration = duration
		spec.SampleInterval = 5 * time.Second
		spec.Cluster.InitialNodes = 3
		spec.Cluster.MinNodes = 3
		spec.Cluster.MaxNodes = 8
		spec.Cluster.NodeOpsPerSec = 2000
		spec.Cluster.BootstrapTime = 30 * time.Second
		spec.Workload.BaseOpsPerSec = 0.70 * effectiveCapacity(3, 2000, 0.5, 3)
		spec.Workload.ReadFraction = 0.5
		spec.Workload.Keyspace = 5000
		spec.Controller.Mode = autonosql.ControllerNone
		spec.Controller.ControlInterval = 10 * time.Second
		spec.SLA.MaxReadLatencyP99 = 30 * time.Millisecond
		spec.SLA.MaxWriteLatencyP99 = 40 * time.Millisecond
		spec.SLA.MaxErrorRate = 0.01
		return spec
	}

	outcomeOf := func(rep *autonosql.Report) e3Outcome {
		return e3Outcome{
			windowP95:  rep.Window.P95,
			writeP99:   rep.WriteLatency.P99,
			totalCost:  rep.Cost.Total,
			compliance: rep.ComplianceRatio,
			violations: rep.Violations.Total,
			finalNodes: rep.FinalConfiguration.ClusterSize,
			finalCL:    rep.FinalConfiguration.WriteConsistency,
			reconfigs:  rep.Reconfigurations,
		}
	}

	// --- Exhaustive static search ------------------------------------------
	// Candidate static configurations, from loose-and-cheap to
	// strict-and-expensive. Their window and cost are measured once (they do
	// not depend on the SLA limit; only the penalty term does, which is why
	// the offline optimum is recomputed per SLA from the same measurements).
	statics := []e3StaticConfig{
		{name: "3 nodes, CL=ONE", nodes: 3, writeCL: autonosql.ConsistencyOne},
		{name: "3 nodes, CL=QUORUM", nodes: 3, writeCL: autonosql.ConsistencyQuorum},
		{name: "3 nodes, CL=ALL", nodes: 3, writeCL: autonosql.ConsistencyAll},
		{name: "5 nodes, CL=ONE", nodes: 5, writeCL: autonosql.ConsistencyOne},
		{name: "5 nodes, CL=QUORUM", nodes: 5, writeCL: autonosql.ConsistencyQuorum},
		{name: "6 nodes, CL=ONE", nodes: 6, writeCL: autonosql.ConsistencyOne},
	}
	if scale == ScaleQuick {
		statics = statics[:4]
	}

	limits := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond, 250 * time.Millisecond,
		500 * time.Millisecond, 1500 * time.Millisecond}
	if scale == ScaleQuick {
		limits = []time.Duration{100 * time.Millisecond, 500 * time.Millisecond}
	}

	// The static measurements and the per-limit controller runs are all
	// independent, so they form one suite. The static measurement runs use a
	// permissive window clause so the penalty term does not distort the
	// measured infrastructure/compensation cost; compliance against each SLA
	// limit is evaluated afterwards from the measured window.
	var variants []autonosql.Variant
	for _, sc := range statics {
		spec := baseSpec()
		spec.SLA.MaxWindowP95 = 10 * time.Second
		spec.Cluster.InitialNodes = sc.nodes
		spec.Cluster.MinNodes = sc.nodes
		spec.Store.WriteConsistency = sc.writeCL
		variants = append(variants, autonosql.Variant{Name: "static " + sc.name, Spec: spec})
	}
	for _, limit := range limits {
		spec := baseSpec()
		spec.SLA.MaxWindowP95 = limit
		spec.Controller.Mode = autonosql.ControllerSmart
		spec.Controller.Predictive = true
		spec.Controller.AllowConsistencyChanges = true
		spec.Controller.AllowScaling = true
		variants = append(variants, autonosql.Variant{Name: "controller limit=" + limit.String(), Spec: spec})
	}
	reports, err := runSuite(variants)
	if err != nil {
		return nil, fmt.Errorf("E3: %w", err)
	}

	staticOutcomes := make([]e3Outcome, len(statics))
	for i, sc := range statics {
		staticOutcomes[i] = outcomeOf(reports["static "+sc.name])
	}

	staticTable := Table{
		ID:      "E3a",
		Title:   "Static configuration candidates under the E3 workload (load=70% of 3 nodes)",
		Columns: []string{"configuration", "window p95 (ms)", "write p99 (ms)", "infra+compensation cost"},
	}
	for i, sc := range statics {
		staticTable.AddRow(sc.name, fms(staticOutcomes[i].windowP95), fms(staticOutcomes[i].writeP99),
			fdollar(staticOutcomes[i].totalCost))
	}
	res.Tables = append(res.Tables, staticTable)

	// --- SLA sweep: controller vs offline optimum vs static extremes --------
	t := Table{
		ID:    "E3b",
		Title: "SLA-driven configuration vs offline optimum and static policies",
		Columns: []string{"SLA window p95 limit", "controller final config", "controller window p95 (ms)",
			"controller met SLA", "controller cost", "offline optimum", "optimum cost",
			"static-loose met / cost", "static-strict met / cost"},
	}

	strictIdx := 2 // 3 nodes CL=ALL
	if strictIdx >= len(statics) {
		strictIdx = len(statics) - 1
	}
	for _, limit := range limits {
		// Smart controller run: starts loose, must satisfy this SLA.
		ctl := outcomeOf(reports["controller limit="+limit.String()])

		// Offline optimum: the cheapest static candidate whose measured
		// window meets the limit.
		optIdx := -1
		for i := range statics {
			if staticOutcomes[i].windowP95 <= limit.Seconds() {
				if optIdx == -1 || staticOutcomes[i].totalCost < staticOutcomes[optIdx].totalCost {
					optIdx = i
				}
			}
		}
		optName, optCost := "none feasible", "-"
		if optIdx >= 0 {
			optName = statics[optIdx].name
			optCost = fdollar(staticOutcomes[optIdx].totalCost)
		}

		loose := staticOutcomes[0]
		strict := staticOutcomes[strictIdx]
		ctlConfig := fmt.Sprintf("%d nodes, CL=%s (%d actions)", ctl.finalNodes, ctl.finalCL, ctl.reconfigs)
		t.AddRow(
			limit.String(),
			ctlConfig,
			fms(ctl.windowP95),
			fbool(ctl.windowP95 <= limit.Seconds()),
			fdollar(ctl.totalCost),
			optName,
			optCost,
			fmt.Sprintf("%s / %s", fbool(loose.windowP95 <= limit.Seconds()), fdollar(loose.totalCost)),
			fmt.Sprintf("%s / %s", fbool(strict.windowP95 <= limit.Seconds()), fdollar(strict.totalCost)),
		)
	}
	t.AddNote("expected shape: the controller lands on (or near) the offline-optimal configuration — strict limits " +
		"force stricter consistency or more nodes, loose limits let it stay cheap; static-loose misses tight limits " +
		"and static-strict overpays for loose ones")
	res.Tables = append(res.Tables, t)

	res.Elapsed = time.Since(started)
	return res, nil
}
