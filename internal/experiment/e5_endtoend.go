package experiment

import (
	"fmt"
	"time"

	"autonosql"
)

// e5Policy is one provisioning/configuration policy compared in the
// end-to-end experiment.
type e5Policy struct {
	name    string
	nodes   int
	writeCL autonosql.ConsistencyLevel
	mode    autonosql.ControllerMode
}

// RunE5 reproduces the end-to-end comparison the paper's aims and motivation
// sections describe: a full day-like load pattern (diurnal cycle plus a flash
// crowd) served under four policies — static loose, static strict
// (over-provisioned), the classic reactive CPU autoscaler and the SLA-driven
// smart controller — scored on SLA compliance and total cost.
func RunE5(scale Scale) (*Result, error) {
	started := time.Now()
	res := &Result{ID: "E5", Title: "End-to-end smart auto-scaling vs. baselines"}

	duration := 30 * time.Minute
	if scale == ScaleQuick {
		duration = 10 * time.Minute
	}

	baseSpec := func() autonosql.ScenarioSpec {
		spec := autonosql.DefaultScenarioSpec()
		spec.Seed = 501
		spec.Duration = duration
		spec.SampleInterval = 10 * time.Second
		spec.Cluster.InitialNodes = 3
		spec.Cluster.MinNodes = 2
		spec.Cluster.MaxNodes = 10
		spec.Cluster.NodeOpsPerSec = 2000
		spec.Cluster.BootstrapTime = 30 * time.Second
		spec.Cluster.DecommissionTime = 20 * time.Second
		// The platform-interference drift is studied in isolation in E1d; here
		// the comparison is about provisioning policy, so the platform is kept
		// quiet to keep the capacity of each configuration well defined.
		spec.Cluster.NoisyNeighbour = false
		spec.Store.ReplicationFactor = 3
		spec.Workload.Pattern = autonosql.LoadDiurnalSpike
		spec.Workload.BaseOpsPerSec = 1000
		spec.Workload.PeakOpsPerSec = 2800
		spec.Workload.Period = duration
		spec.Workload.PeakStart = duration * 3 / 5
		spec.Workload.PeakDuration = duration / 10
		spec.Workload.ReadFraction = 0.6
		spec.Workload.Keyspace = 8000
		spec.SLA.MaxWindowP95 = 150 * time.Millisecond
		spec.SLA.MaxReadLatencyP99 = 30 * time.Millisecond
		spec.SLA.MaxWriteLatencyP99 = 40 * time.Millisecond
		spec.SLA.MaxErrorRate = 0.01
		spec.Controller.ControlInterval = 10 * time.Second
		spec.Controller.Predictive = true
		spec.Controller.AllowConsistencyChanges = true
		spec.Controller.AllowScaling = true
		return spec
	}

	policies := []e5Policy{
		{name: "static loose (3 nodes, CL=ONE)", nodes: 3, writeCL: autonosql.ConsistencyOne, mode: autonosql.ControllerNone},
		{name: "static strict (8 nodes, CL=QUORUM)", nodes: 8, writeCL: autonosql.ConsistencyQuorum, mode: autonosql.ControllerNone},
		{name: "reactive CPU autoscaler", nodes: 3, writeCL: autonosql.ConsistencyOne, mode: autonosql.ControllerReactive},
		{name: "smart SLA-driven controller", nodes: 3, writeCL: autonosql.ConsistencyOne, mode: autonosql.ControllerSmart},
	}

	compliance := Table{
		ID:    "E5a",
		Title: "SLA compliance over a diurnal + flash-crowd day (window limit 150 ms p95)",
		Columns: []string{"policy", "window p95 (ms)", "read p99 (ms)", "write p99 (ms)", "stale reads",
			"violation minutes (window)", "violation minutes (latency)", "violation minutes (total)", "compliance"},
	}
	cost := Table{
		ID:    "E5b",
		Title: "Cost over the same day ($0.50/node-hour, $0.02/stale read, $1/violation-minute)",
		Columns: []string{"policy", "node-hours", "infrastructure", "compensation", "SLA penalty", "total cost",
			"reconfigurations", "max nodes"},
	}

	// One variant per policy; the four policy runs are independent and share
	// the same diurnal + flash-crowd day, so they run as one suite.
	variants := make([]autonosql.Variant, 0, len(policies))
	for _, p := range policies {
		spec := baseSpec()
		spec.Cluster.InitialNodes = p.nodes
		if p.mode == autonosql.ControllerNone {
			spec.Cluster.MinNodes = p.nodes
		}
		spec.Store.WriteConsistency = p.writeCL
		spec.Controller.Mode = p.mode
		variants = append(variants, autonosql.Variant{Name: p.name, Spec: spec})
	}
	reports, err := runSuite(variants)
	if err != nil {
		return nil, fmt.Errorf("E5: %w", err)
	}

	var figures []string
	for _, p := range policies {
		rep := reports[p.name]

		compliance.AddRow(p.name, fms(rep.Window.P95), fms(rep.ReadLatency.P99), fms(rep.WriteLatency.P99),
			fmt.Sprintf("%d", rep.StaleReads), fminutes(rep.Violations.Window),
			fminutes(rep.Violations.ReadLatency+rep.Violations.WriteLatency),
			fminutes(rep.Violations.Total), fpct(rep.ComplianceRatio))
		cost.AddRow(p.name, fnum(rep.Cost.NodeHours), fdollar(rep.Cost.Infrastructure), fdollar(rep.Cost.Compensation),
			fdollar(rep.Cost.Penalty), fdollar(rep.Cost.Total), fint(rep.Reconfigurations), fint(rep.MaxClusterSize))

		switch p.mode {
		case autonosql.ControllerSmart:
			figures = append(figures,
				"Figure E5-1: offered load (smart controller run)\n"+rep.PlotSeries(autonosql.SeriesOfferedLoad, 50),
				"Figure E5-2: cluster size under the smart controller\n"+rep.PlotSeries(autonosql.SeriesClusterSize, 50),
				"Figure E5-3: ground-truth window p95 under the smart controller\n"+rep.PlotSeries(autonosql.SeriesWindowP95, 50))
		case autonosql.ControllerReactive:
			figures = append(figures,
				"Figure E5-4: cluster size under the reactive autoscaler\n"+rep.PlotSeries(autonosql.SeriesClusterSize, 50))
		}
	}
	compliance.AddNote("expected shape: static-loose violates the window clause for long stretches; the reactive " +
		"autoscaler reacts late (it only sees CPU) and still violates around the flash crowd; the smart controller " +
		"keeps violation minutes lowest")
	cost.AddNote("expected shape: static-strict buys compliance with the most node-hours; the smart controller " +
		"reaches comparable compliance at a total cost closer to static-loose")
	res.Tables = append(res.Tables, compliance, cost)
	res.Figures = figures

	res.Elapsed = time.Since(started)
	return res, nil
}
