package experiment

import (
	"strings"
	"testing"
)

func TestTableAddRowPadsAndTruncates(t *testing.T) {
	tab := Table{ID: "T", Title: "test", Columns: []string{"a", "b", "c"}}
	tab.AddRow("1")
	tab.AddRow("1", "2", "3", "4")
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	if len(tab.Rows[0]) != 3 || tab.Rows[0][1] != "" {
		t.Fatalf("short row not padded: %v", tab.Rows[0])
	}
	if len(tab.Rows[1]) != 3 {
		t.Fatalf("long row not truncated: %v", tab.Rows[1])
	}
}

func TestTableFormatAlignsColumns(t *testing.T) {
	tab := Table{ID: "E9", Title: "alignment", Columns: []string{"name", "value"}}
	tab.AddRow("short", "1")
	tab.AddRow("a much longer name", "2")
	tab.AddNote("a note about %d rows", 2)
	text := tab.Format()

	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if len(lines) != 6 { // title, header, separator, 2 rows, note
		t.Fatalf("unexpected line count %d:\n%s", len(lines), text)
	}
	if !strings.HasPrefix(lines[0], "E9 — alignment") {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Errorf("header line = %q", lines[1])
	}
	if !strings.Contains(lines[5], "note: a note about 2 rows") {
		t.Errorf("note line = %q", lines[5])
	}
	// The value column should start at the same offset in both data rows.
	idx1 := strings.Index(lines[3], "1")
	idx2 := strings.Index(lines[4], "2")
	if idx1 != idx2 {
		t.Errorf("columns misaligned: %q vs %q", lines[3], lines[4])
	}
}

func TestFormattingHelpers(t *testing.T) {
	cases := []struct{ got, want string }{
		{fms(0.1234), "123.4"},
		{fpct(0.1234), "12.34%"},
		{fnum(1.5), "1.50"},
		{fint(7), "7"},
		{fdollar(2.5), "$2.50"},
		{fops(1234.4), "1234"},
		{fminutes(1.25), "1.2"},
		{fbool(true), "yes"},
		{fbool(false), "no"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q, want %q", c.got, c.want)
		}
	}
}

func TestRunnersRegistry(t *testing.T) {
	runners := Runners()
	if len(runners) != 5 {
		t.Fatalf("Runners = %d, want 5", len(runners))
	}
	for _, r := range runners {
		if r.Run == nil || r.ID == "" || r.Title == "" {
			t.Errorf("incomplete runner %+v", r)
		}
		got, ok := Lookup(strings.ToUpper(r.ID))
		if !ok || got.ID != r.ID {
			t.Errorf("Lookup(%q) failed", r.ID)
		}
	}
	if _, ok := Lookup("e99"); ok {
		t.Error("Lookup accepted an unknown experiment")
	}
	if len(IDs()) != 5 {
		t.Errorf("IDs = %v", IDs())
	}
	if ScaleQuick.String() != "quick" || ScaleFull.String() != "full" {
		t.Error("scale names wrong")
	}
}

func TestResultFormat(t *testing.T) {
	res := Result{ID: "E1", Title: "demo"}
	tab := Table{ID: "E1a", Title: "t", Columns: []string{"x"}}
	tab.AddRow("1")
	res.Tables = append(res.Tables, tab)
	res.Figures = append(res.Figures, "figure body")
	text := res.Format()
	for _, want := range []string{"E1: demo", "E1a — t", "figure body"} {
		if !strings.Contains(text, want) {
			t.Errorf("Result.Format missing %q:\n%s", want, text)
		}
	}
}
