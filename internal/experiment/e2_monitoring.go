package experiment

import (
	"fmt"
	"math"
	"time"

	"autonosql"
)

// RunE2 reproduces the monitoring-cost study (RQ1: "is it possible to measure
// the size of the inconsistency window in an efficient way?").
//
// A fixed moderately loaded cluster is monitored with the two techniques the
// paper proposes — passive coordinator-side observation and active
// read-after-write probing at increasing probe rates — and each configuration
// is scored on estimation error against the simulator's ground truth, on the
// extra operations it adds, and on what it does to client latency.
func RunE2(scale Scale) (*Result, error) {
	started := time.Now()
	res := &Result{ID: "E2", Title: "Monitoring cost and accuracy"}

	baseSpec := func() autonosql.ScenarioSpec {
		spec := autonosql.DefaultScenarioSpec()
		spec.Seed = 201
		spec.Duration = 3 * time.Minute
		if scale == ScaleQuick {
			spec.Duration = 40 * time.Second
		}
		spec.SampleInterval = 5 * time.Second
		spec.Cluster.InitialNodes = 3
		spec.Cluster.NodeOpsPerSec = 2000
		spec.Workload.BaseOpsPerSec = 0.70 * effectiveCapacity(3, 2000, 0.5, 3)
		spec.Workload.ReadFraction = 0.5
		spec.Workload.Keyspace = 5000
		spec.Controller.Mode = autonosql.ControllerNone
		spec.SLA.MaxWindowP95 = 10 * time.Second
		return spec
	}

	type cell struct {
		name      string
		active    bool
		passive   bool
		probeRate float64
	}
	cells := []cell{
		{name: "passive only", passive: true},
		{name: "active 0.2/s", active: true, probeRate: 0.2},
		{name: "active 1/s", active: true, probeRate: 1},
		{name: "active 5/s", active: true, probeRate: 5},
		{name: "active 20/s", active: true, probeRate: 20},
		{name: "active 100/s", active: true, probeRate: 100},
		{name: "active+passive 1/s", active: true, passive: true, probeRate: 1},
	}
	if scale == ScaleQuick {
		cells = []cell{
			{name: "passive only", passive: true},
			{name: "active 1/s", active: true, probeRate: 1},
			{name: "active 20/s", active: true, probeRate: 20},
		}
	}

	// Reference run without any monitoring overhead, plus one variant per
	// monitoring technique, all concurrent.
	const refName = "unmonitored reference"
	reference := baseSpec()
	reference.Monitor.ActiveProbes = false
	reference.Monitor.PassiveObservation = false
	variants := []autonosql.Variant{{Name: refName, Spec: reference}}
	for _, c := range cells {
		spec := baseSpec()
		spec.Monitor.ActiveProbes = c.active
		spec.Monitor.PassiveObservation = c.passive
		spec.Monitor.ProbeRate = c.probeRate
		variants = append(variants, autonosql.Variant{Name: c.name, Spec: spec})
	}
	reports, err := runSuite(variants)
	if err != nil {
		return nil, fmt.Errorf("E2: %w", err)
	}
	refRep := reports[refName]

	t := Table{
		ID:    "E2",
		Title: "Window-monitoring techniques: accuracy vs overhead (load=70%, RF=3, CL=ONE)",
		Columns: []string{"technique", "true p95 (ms)", "estimate p95 (ms)", "relative error",
			"probe ops", "overhead (% of ops)", "read p99 delta (ms)"},
	}
	t.AddRow(refName, fms(refRep.Window.P95), "-", "-", "0", fpct(0), fms(0))

	for _, c := range cells {
		rep := reports[c.name]
		relErr := 0.0
		if rep.Window.P95 > 0 {
			relErr = math.Abs(rep.EstimatedWindowP95-rep.Window.P95) / rep.Window.P95
		}
		latencyDelta := rep.ReadLatency.P99 - refRep.ReadLatency.P99
		t.AddRow(c.name, fms(rep.Window.P95), fms(rep.EstimatedWindowP95), fpct(relErr),
			fmt.Sprintf("%d", rep.MonitoringProbeOps), fpct(rep.MonitoringOverheadFraction), fms(latencyDelta))
	}
	t.AddNote("expected shape: passive observation is free but under-estimates (it only sees replica acks); " +
		"active probing converges on the true window as the probe rate rises, while its overhead grows roughly " +
		"linearly with the probe rate and eventually inflates the very window it measures")
	t.AddNote("the paper's efficiency criterion: monitoring is only useful while its cost stays below the cost of " +
		"over-allocating resources to keep the window low without measuring it")
	res.Tables = append(res.Tables, t)

	res.Elapsed = time.Since(started)
	return res, nil
}
