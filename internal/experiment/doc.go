// Package experiment reproduces the evaluation of "Advanced monitoring and
// smart auto-scaling of NoSQL systems". The paper is a doctoral-symposium
// vision paper without a numbered evaluation section, so the experiments here
// (E1–E5) are derived from its research questions and research plan; the
// repository's ARCHITECTURE.md documents the mapping.
//
//	E1 — which parameters drive the inconsistency window (research plan step 1)
//	E2 — cost and accuracy of window monitoring (RQ1)
//	E3 — deriving configuration from the SLA (RQ2)
//	E4 — reconfiguration overhead, convergence and wrong actions (RQ3)
//	E5 — end-to-end smart auto-scaling vs. the baselines (aims & motivation)
//
// Every experiment is deterministic for a given scale and produces one or
// more Tables plus figure-like ASCII series where a timeline matters.
//
// The experiments do not run their scenarios by hand: each one declares its
// parameter cells as named autonosql suite variants and executes them through
// the public suite runner, which spreads the independent simulations across a
// bounded goroutine pool. Per-cell seeds are fixed in the specs, so the
// numbers are identical whatever the parallelism.
package experiment
