package experiment

import (
	"strconv"
	"strings"
	"testing"
)

// parseMs pulls a millisecond cell back into a float for shape assertions.
func parseMs(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
	if err != nil {
		t.Fatalf("cell %q is not a number: %v", cell, err)
	}
	return v
}

func findTable(t *testing.T, res *Result, id string) Table {
	t.Helper()
	for _, tab := range res.Tables {
		if tab.ID == id {
			return tab
		}
	}
	t.Fatalf("result %s has no table %s", res.ID, id)
	return Table{}
}

func TestRunE1QuickShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res, err := RunE1(ScaleQuick)
	if err != nil {
		t.Fatalf("RunE1: %v", err)
	}
	if len(res.Tables) != 4 {
		t.Fatalf("E1 produced %d tables, want 4", len(res.Tables))
	}

	// E1a: the window at the highest load must exceed the window at the
	// lowest load (super-linear growth towards saturation).
	e1a := findTable(t, res, "E1a")
	first := parseMs(t, e1a.Rows[0][3])
	last := parseMs(t, e1a.Rows[len(e1a.Rows)-1][3])
	if last <= first {
		t.Errorf("E1a: window p95 at 95%% load (%v ms) should exceed the one at 30%% load (%v ms)", last, first)
	}

	// E1c: CL=ALL must have a (much) smaller window than CL=ONE, and higher
	// write latency.
	e1c := findTable(t, res, "E1c")
	oneWindow := parseMs(t, e1c.Rows[0][2])
	allWindow := parseMs(t, e1c.Rows[len(e1c.Rows)-1][2])
	oneLatency := parseMs(t, e1c.Rows[0][4])
	allLatency := parseMs(t, e1c.Rows[len(e1c.Rows)-1][4])
	if allWindow >= oneWindow {
		t.Errorf("E1c: window p95 at ALL (%v ms) should be below ONE (%v ms)", allWindow, oneWindow)
	}
	if allLatency <= oneLatency {
		t.Errorf("E1c: write p99 at ALL (%v ms) should exceed ONE (%v ms)", allLatency, oneLatency)
	}

	// E1d: noisy neighbours widen the window.
	e1d := findTable(t, res, "E1d")
	quiet := parseMs(t, e1d.Rows[0][2])
	noisy := parseMs(t, e1d.Rows[1][2])
	if noisy <= quiet {
		t.Errorf("E1d: noisy-neighbour window p95 (%v ms) should exceed the quiet one (%v ms)", noisy, quiet)
	}

	if !strings.Contains(res.Format(), "E1a") {
		t.Error("formatted result missing table E1a")
	}
}

func TestRunE2QuickShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res, err := RunE2(ScaleQuick)
	if err != nil {
		t.Fatalf("RunE2: %v", err)
	}
	tab := findTable(t, res, "E2")
	if len(tab.Rows) < 4 { // reference + 3 techniques
		t.Fatalf("E2 has %d rows, want at least 4", len(tab.Rows))
	}
	// The unmonitored reference must report zero probe overhead, and the
	// highest-rate active cell must report more probe ops than the low-rate
	// one.
	if tab.Rows[0][5] != "0.00%" {
		t.Errorf("reference overhead = %q, want 0.00%%", tab.Rows[0][5])
	}
	lowProbe, _ := strconv.Atoi(tab.Rows[2][4])
	highProbe, _ := strconv.Atoi(tab.Rows[3][4])
	if highProbe <= lowProbe {
		t.Errorf("probe ops should grow with the probe rate: %d vs %d", lowProbe, highProbe)
	}
}

func TestRunE3QuickShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res, err := RunE3(ScaleQuick)
	if err != nil {
		t.Fatalf("RunE3: %v", err)
	}
	statics := findTable(t, res, "E3a")
	if len(statics.Rows) < 4 {
		t.Fatalf("E3a has %d rows", len(statics.Rows))
	}
	// Static CL=ALL (row 3) must show a smaller window than static CL=ONE (row 1).
	one := parseMs(t, statics.Rows[0][1])
	all := parseMs(t, statics.Rows[2][1])
	if all >= one {
		t.Errorf("static ALL window (%v ms) should be below static ONE (%v ms)", all, one)
	}

	sweep := findTable(t, res, "E3b")
	if len(sweep.Rows) < 2 {
		t.Fatalf("E3b has %d rows", len(sweep.Rows))
	}
	for _, row := range sweep.Rows {
		if row[1] == "" || row[4] == "" {
			t.Errorf("incomplete sweep row %v", row)
		}
	}
}

func TestRunE4QuickShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res, err := RunE4(ScaleQuick)
	if err != nil {
		t.Fatalf("RunE4: %v", err)
	}
	tab := findTable(t, res, "E4")
	if len(tab.Rows) != 6 { // 3 actions x 2 conditions at quick scale
		t.Fatalf("E4 has %d rows, want 6", len(tab.Rows))
	}
	// Tightening the write CL under normal conditions must reduce the window.
	var tightenRatio, rfCongestedRatio float64
	var foundTighten, foundRF bool
	for _, row := range tab.Rows {
		if strings.HasPrefix(row[0], "tighten write CL") && row[1] == "no" {
			tightenRatio = parseMs(t, row[5]) // after/before ratio (plain number)
			foundTighten = true
		}
		if strings.HasPrefix(row[0], "increase RF") && row[1] == "yes" {
			rfCongestedRatio = parseMs(t, row[5])
			foundRF = true
		}
	}
	if !foundTighten || !foundRF {
		t.Fatalf("expected rows not found in E4 table: %+v", tab.Rows)
	}
	if tightenRatio >= 1 {
		t.Errorf("tightening the write CL should shrink the window (after/before=%v)", tightenRatio)
	}
	if rfCongestedRatio <= tightenRatio {
		t.Errorf("raising RF under congestion (ratio %v) should be worse than tightening CL (%v)",
			rfCongestedRatio, tightenRatio)
	}
	if len(res.Figures) == 0 {
		t.Error("E4 should produce timeline figures")
	}
}

func TestRunE5QuickShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res, err := RunE5(ScaleQuick)
	if err != nil {
		t.Fatalf("RunE5: %v", err)
	}
	compliance := findTable(t, res, "E5a")
	cost := findTable(t, res, "E5b")
	if len(compliance.Rows) != 4 || len(cost.Rows) != 4 {
		t.Fatalf("E5 tables have %d/%d rows, want 4/4", len(compliance.Rows), len(cost.Rows))
	}

	// Row order: loose, strict, reactive, smart.
	looseViolation := parseMs(t, compliance.Rows[0][7])
	smartViolation := parseMs(t, compliance.Rows[3][7])
	if smartViolation >= looseViolation {
		t.Errorf("smart controller violation minutes (%v) should be below static-loose (%v)",
			smartViolation, looseViolation)
	}

	strictNodeHours := parseMs(t, cost.Rows[1][1])
	smartNodeHours := parseMs(t, cost.Rows[3][1])
	if smartNodeHours >= strictNodeHours {
		t.Errorf("smart controller node-hours (%v) should be below static-strict (%v)",
			smartNodeHours, strictNodeHours)
	}
	if len(res.Figures) < 3 {
		t.Errorf("E5 produced %d figures, want at least 3", len(res.Figures))
	}
}
