package experiment

import (
	"fmt"

	"autonosql/internal/text"
)

// Table is one result table of an experiment, formatted like the tables a
// paper's evaluation section would print.
type Table struct {
	// ID is the experiment identifier, e.g. "E1a".
	ID string
	// Title describes what the table shows.
	Title string
	// Columns are the column headers.
	Columns []string
	// Rows are the data rows; each row must have len(Columns) cells.
	Rows [][]string
	// Notes are free-form remarks printed under the table.
	Notes []string
}

// AddRow appends a row. Rows shorter than the header are padded with empty
// cells; longer rows are truncated.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a remark printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Format renders the table as aligned plain text.
func (t *Table) Format() string {
	return text.FormatAligned(fmt.Sprintf("%s — %s", t.ID, t.Title), t.Columns, t.Rows, t.Notes)
}

// formatting helpers shared by the experiment runners.

func fms(seconds float64) string { return fmt.Sprintf("%.1f", seconds*1000) }
func fpct(frac float64) string   { return fmt.Sprintf("%.2f%%", frac*100) }
func fnum(v float64) string      { return fmt.Sprintf("%.2f", v) }
func fint(v int) string          { return fmt.Sprintf("%d", v) }
func fdollar(v float64) string   { return fmt.Sprintf("$%.2f", v) }
func fops(v float64) string      { return fmt.Sprintf("%.0f", v) }
func fminutes(v float64) string  { return fmt.Sprintf("%.1f", v) }
func fbool(v bool) string {
	if v {
		return "yes"
	}
	return "no"
}
