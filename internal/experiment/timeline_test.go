package experiment

import (
	"testing"
	"time"

	"autonosql"
)

// buildSeries converts (second, ms) pairs into a report series.
func buildSeries(points [][2]float64) []autonosql.SeriesPoint {
	out := make([]autonosql.SeriesPoint, len(points))
	for i, p := range points {
		out[i] = autonosql.SeriesPoint{At: time.Duration(p[0] * float64(time.Second)), Value: p[1]}
	}
	return out
}

func TestAnalyzeTimelineImprovement(t *testing.T) {
	// Window at ~100 ms before the action at t=150 s, a transient spike to
	// 300 ms, then steady at ~20 ms.
	var pts [][2]float64
	for s := 10.0; s < 150; s += 10 {
		pts = append(pts, [2]float64{s, 100})
	}
	pts = append(pts, [2]float64{155, 300})
	for s := 160.0; s <= 300; s += 10 {
		pts = append(pts, [2]float64{s, 20})
	}
	tl := analyzeTimeline(buildSeries(pts), 150*time.Second, 0, false, 300*time.Second)

	if tl.before < 0.095 || tl.before > 0.105 {
		t.Fatalf("before = %v, want ~0.1", tl.before)
	}
	if tl.after < 0.015 || tl.after > 0.025 {
		t.Fatalf("after = %v, want ~0.02", tl.after)
	}
	if tl.peak < 0.29 {
		t.Fatalf("peak = %v, want ~0.3", tl.peak)
	}
	if !tl.converged {
		t.Fatal("timeline should converge")
	}
	if tl.convergence > 20*time.Second {
		t.Fatalf("convergence = %v, want within 20s (last outlier at t=155)", tl.convergence)
	}
}

func TestAnalyzeTimelineNeverConverges(t *testing.T) {
	// The window keeps oscillating wildly until the end of the run.
	var pts [][2]float64
	for s := 10.0; s <= 300; s += 10 {
		v := 50.0
		if int(s/10)%2 == 0 {
			v = 400
		}
		pts = append(pts, [2]float64{s, v})
	}
	tl := analyzeTimeline(buildSeries(pts), 150*time.Second, 0, false, 300*time.Second)
	if tl.converged {
		t.Fatal("an oscillating timeline must not be reported as converged")
	}
}

func TestAnalyzeTimelineEmpty(t *testing.T) {
	tl := analyzeTimeline(nil, time.Minute, 0, false, 2*time.Minute)
	if tl.before != 0 || tl.after != 0 || tl.peak != 0 || tl.converged {
		t.Fatalf("empty series should produce a zero timeline, got %+v", tl)
	}
}

func TestAnalyzeTimelineCongestionWindowStartsLater(t *testing.T) {
	// With congestion injected at t=75 s, the pre-action phase must not
	// include the cheap pre-congestion samples.
	var pts [][2]float64
	for s := 10.0; s < 75; s += 5 {
		pts = append(pts, [2]float64{s, 10})
	}
	for s := 100.0; s < 150; s += 5 {
		pts = append(pts, [2]float64{s, 200})
	}
	for s := 150.0; s <= 300; s += 5 {
		pts = append(pts, [2]float64{s, 200})
	}
	tl := analyzeTimeline(buildSeries(pts), 150*time.Second, 75*time.Second, true, 300*time.Second)
	if tl.before < 0.19 {
		t.Fatalf("before = %v, want ~0.2 (pre-congestion samples must be excluded)", tl.before)
	}
}
