// Package experiment reproduces the evaluation of "Advanced monitoring and
// smart auto-scaling of NoSQL systems". The paper is a doctoral-symposium
// vision paper without a numbered evaluation section, so the experiments here
// (E1–E5) are derived from its research questions and research plan; DESIGN.md
// documents the mapping and EXPERIMENTS.md records the measured outcomes.
//
//	E1 — which parameters drive the inconsistency window (research plan step 1)
//	E2 — cost and accuracy of window monitoring (RQ1)
//	E3 — deriving configuration from the SLA (RQ2)
//	E4 — reconfiguration overhead, convergence and wrong actions (RQ3)
//	E5 — end-to-end smart auto-scaling vs. the baselines (aims & motivation)
//
// Every experiment is deterministic for a given scale and produces one or
// more Tables plus figure-like ASCII series where a timeline matters.
package experiment

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Scale selects how much virtual time and parameter coverage an experiment
// uses. Quick keeps unit tests and -short benchmarks fast; Full is what
// cmd/benchrunner and the recorded EXPERIMENTS.md results use.
type Scale int

// Scales.
const (
	// ScaleQuick runs a reduced sweep (seconds of virtual time per cell).
	ScaleQuick Scale = iota + 1
	// ScaleFull runs the complete sweep used for the recorded results.
	ScaleFull
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	if s == ScaleFull {
		return "full"
	}
	return "quick"
}

// Result is the outcome of one experiment.
type Result struct {
	// ID is the experiment identifier ("E1" .. "E5").
	ID string
	// Title is the experiment's one-line description.
	Title string
	// Tables are the result tables.
	Tables []Table
	// Figures are figure-like ASCII timelines, where applicable.
	Figures []string
	// Elapsed is the wall-clock time the experiment took to run.
	Elapsed time.Duration
}

// Format renders the whole result as plain text.
func (r *Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "==== %s: %s (completed in %v) ====\n\n", r.ID, r.Title, r.Elapsed.Round(time.Millisecond))
	for i := range r.Tables {
		b.WriteString(r.Tables[i].Format())
		b.WriteByte('\n')
	}
	for _, f := range r.Figures {
		b.WriteString(f)
		b.WriteByte('\n')
	}
	return b.String()
}

// Runner is a named experiment.
type Runner struct {
	// ID is the experiment identifier.
	ID string
	// Title is the one-line description.
	Title string
	// Run executes the experiment at the given scale.
	Run func(scale Scale) (*Result, error)
}

// Runners returns every experiment in order.
func Runners() []Runner {
	return []Runner{
		{ID: "e1", Title: "Inconsistency-window parameter study", Run: RunE1},
		{ID: "e2", Title: "Monitoring cost and accuracy", Run: RunE2},
		{ID: "e3", Title: "Deriving configuration from the SLA", Run: RunE3},
		{ID: "e4", Title: "Reconfiguration overhead and convergence", Run: RunE4},
		{ID: "e5", Title: "End-to-end smart auto-scaling vs. baselines", Run: RunE5},
	}
}

// Lookup returns the runner with the given ID (case-insensitive).
func Lookup(id string) (Runner, bool) {
	id = strings.ToLower(strings.TrimSpace(id))
	for _, r := range Runners() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// IDs returns the sorted experiment identifiers.
func IDs() []string {
	rs := Runners()
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.ID
	}
	sort.Strings(out)
	return out
}
