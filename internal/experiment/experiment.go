package experiment

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"autonosql"
)

// Scale selects how much virtual time and parameter coverage an experiment
// uses. Quick keeps unit tests and -short benchmarks fast; Full is what
// cmd/benchrunner and the recorded EXPERIMENTS.md results use.
type Scale int

// Scales.
const (
	// ScaleQuick runs a reduced sweep (seconds of virtual time per cell).
	ScaleQuick Scale = iota + 1
	// ScaleFull runs the complete sweep used for the recorded results.
	ScaleFull
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	if s == ScaleFull {
		return "full"
	}
	return "quick"
}

// Result is the outcome of one experiment.
type Result struct {
	// ID is the experiment identifier ("E1" .. "E5").
	ID string
	// Title is the experiment's one-line description.
	Title string
	// Tables are the result tables.
	Tables []Table
	// Figures are figure-like ASCII timelines, where applicable.
	Figures []string
	// Elapsed is the wall-clock time the experiment took to run.
	Elapsed time.Duration
}

// Format renders the whole result as plain text.
func (r *Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "==== %s: %s (completed in %v) ====\n\n", r.ID, r.Title, r.Elapsed.Round(time.Millisecond))
	for i := range r.Tables {
		b.WriteString(r.Tables[i].Format())
		b.WriteByte('\n')
	}
	for _, f := range r.Figures {
		b.WriteString(f)
		b.WriteByte('\n')
	}
	return b.String()
}

// Runner is a named experiment.
type Runner struct {
	// ID is the experiment identifier.
	ID string
	// Title is the one-line description.
	Title string
	// Run executes the experiment at the given scale.
	Run func(scale Scale) (*Result, error)
}

// Runners returns every experiment in order.
func Runners() []Runner {
	return []Runner{
		{ID: "e1", Title: "Inconsistency-window parameter study", Run: RunE1},
		{ID: "e2", Title: "Monitoring cost and accuracy", Run: RunE2},
		{ID: "e3", Title: "Deriving configuration from the SLA", Run: RunE3},
		{ID: "e4", Title: "Reconfiguration overhead and convergence", Run: RunE4},
		{ID: "e5", Title: "End-to-end smart auto-scaling vs. baselines", Run: RunE5},
	}
}

// Lookup returns the runner with the given ID (case-insensitive).
func Lookup(id string) (Runner, bool) {
	id = strings.ToLower(strings.TrimSpace(id))
	for _, r := range Runners() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// IDs returns the sorted experiment identifiers.
func IDs() []string {
	rs := Runners()
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.ID
	}
	sort.Strings(out)
	return out
}

// runSuite executes the given named variants concurrently through the public
// suite runner and returns their reports keyed by variant name. Every
// experiment routes its parameter cells through here instead of running
// scenarios one by one.
func runSuite(variants []autonosql.Variant) (map[string]*autonosql.Report, error) {
	suite, err := autonosql.NewSuite(autonosql.SuiteSpec{Variants: variants})
	if err != nil {
		return nil, err
	}
	report, err := suite.Run()
	if err != nil {
		return nil, err
	}
	return report.Reports(), nil
}
