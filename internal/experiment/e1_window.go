package experiment

import (
	"fmt"
	"time"

	"autonosql"
)

// e1BaseSpec is the common scenario every E1 cell starts from: a three-node
// cluster of 2000 ops/s nodes, RF=3, ONE/ONE consistency, a 50/50 YCSB-A
// style workload and no controller, so the raw dependence of the window on
// each parameter is visible.
func e1BaseSpec(scale Scale) autonosql.ScenarioSpec {
	spec := autonosql.DefaultScenarioSpec()
	spec.Seed = 101
	spec.Duration = 2 * time.Minute
	if scale == ScaleQuick {
		spec.Duration = 30 * time.Second
	}
	spec.SampleInterval = 5 * time.Second
	spec.Cluster.InitialNodes = 3
	spec.Cluster.NodeOpsPerSec = 2000
	spec.Store.ReplicationFactor = 3
	spec.Store.WriteConsistency = autonosql.ConsistencyOne
	spec.Store.ReadConsistency = autonosql.ConsistencyOne
	spec.Workload.Pattern = autonosql.LoadConstant
	spec.Workload.ReadFraction = 0.5
	spec.Workload.Keyspace = 5000
	spec.Monitor.ActiveProbes = false // E1 measures ground truth only
	spec.Controller.Mode = autonosql.ControllerNone
	// A permissive SLA: E1 is not about compliance, only about the window.
	spec.SLA.MaxWindowP95 = 10 * time.Second
	return spec
}

// effectiveCapacity estimates the sustainable client operation rate of a
// cluster for a given mix: every operation costs one coordinator service
// time, reads additionally touch the contacted replicas that are not the
// coordinator, and writes additionally place a (cheaper) replication apply on
// every other replica. Load levels in the experiments are expressed as
// fractions of this capacity, so "70% load" means the same thing regardless
// of cluster size, replication factor or read/write mix.
func effectiveCapacity(nodes int, nodeOpsPerSec, readFraction float64, rf int) float64 {
	if nodes <= 0 || nodeOpsPerSec <= 0 {
		return 0
	}
	if rf > nodes {
		rf = nodes
	}
	service := 1.0 / nodeOpsPerSec // seconds of node time per foreground op
	replApply := 0.75 * service
	n := float64(nodes)
	// A read at CL=ONE contacts one replica, which coincides with the
	// coordinator 1/n of the time.
	readCost := service * (2 - 1/n)
	// A write occupies the coordinator once and ships a replication apply to
	// every replica that is not the coordinator.
	writeCost := service + replApply*float64(rf)*(1-1/n)
	perOp := readFraction*readCost + (1-readFraction)*writeCost
	// perOp is in node-seconds per operation; the cluster supplies `nodes`
	// node-seconds per second.
	return n / perOp
}

// RunE1 reproduces the window parameter study (research plan step 1 and the
// Bermbach & Tai drift observation): how the inconsistency window depends on
// offered load, replication factor, write consistency level and
// noisy-neighbour interference. All cells of all four sub-studies are
// independent, so they run as one concurrent suite.
func RunE1(scale Scale) (*Result, error) {
	started := time.Now()
	res := &Result{ID: "E1", Title: "Inconsistency-window parameter study"}

	loads := []float64{0.30, 0.50, 0.70, 0.85, 0.95}
	rfs := []int{1, 2, 3, 5}
	levels := []autonosql.ConsistencyLevel{autonosql.ConsistencyOne, autonosql.ConsistencyTwo,
		autonosql.ConsistencyQuorum, autonosql.ConsistencyAll}
	if scale == ScaleQuick {
		loads = []float64{0.30, 0.70, 0.95}
		rfs = []int{1, 3, 5}
		levels = []autonosql.ConsistencyLevel{autonosql.ConsistencyOne, autonosql.ConsistencyQuorum, autonosql.ConsistencyAll}
	}
	noisies := []bool{false, true}

	var variants []autonosql.Variant
	for _, frac := range loads {
		spec := e1BaseSpec(scale)
		spec.Workload.BaseOpsPerSec = frac * effectiveCapacity(3, 2000, 0.5, 3)
		variants = append(variants, autonosql.Variant{Name: fmt.Sprintf("E1a load=%.2f", frac), Spec: spec})
	}
	for _, rf := range rfs {
		spec := e1BaseSpec(scale)
		spec.Seed = 102
		spec.Cluster.InitialNodes = 5 // room for RF=5
		spec.Workload.BaseOpsPerSec = 0.6 * effectiveCapacity(5, 2000, 0.5, 3)
		spec.Store.ReplicationFactor = rf
		variants = append(variants, autonosql.Variant{Name: fmt.Sprintf("E1b rf=%d", rf), Spec: spec})
	}
	for _, cl := range levels {
		spec := e1BaseSpec(scale)
		spec.Seed = 103
		spec.Workload.BaseOpsPerSec = 0.6 * effectiveCapacity(3, 2000, 0.5, 3)
		spec.Store.WriteConsistency = cl
		variants = append(variants, autonosql.Variant{Name: fmt.Sprintf("E1c cl=%s", cl), Spec: spec})
	}
	for _, noisy := range noisies {
		spec := e1BaseSpec(scale)
		spec.Seed = 104
		spec.Workload.BaseOpsPerSec = 0.6 * effectiveCapacity(3, 2000, 0.5, 3)
		spec.Cluster.NoisyNeighbour = noisy
		variants = append(variants, autonosql.Variant{Name: fmt.Sprintf("E1d noisy=%v", noisy), Spec: spec})
	}

	reports, err := runSuite(variants)
	if err != nil {
		return nil, fmt.Errorf("E1: %w", err)
	}

	// --- E1a: window vs offered load -------------------------------------
	ta := Table{
		ID:    "E1a",
		Title: "Inconsistency window vs offered load (RF=3, write CL=ONE, quiet platform)",
		Columns: []string{"load (frac of capacity)", "ops/s", "window p50 (ms)", "window p95 (ms)",
			"window p99 (ms)", "write p99 (ms)", "stale reads"},
	}
	for _, frac := range loads {
		rep := reports[fmt.Sprintf("E1a load=%.2f", frac)]
		ta.AddRow(fnum(frac), fops(rep.Spec.Workload.BaseOpsPerSec), fms(rep.Window.P50), fms(rep.Window.P95),
			fms(rep.Window.P99), fms(rep.WriteLatency.P99), fpct(rep.StaleReadRate))
	}
	ta.AddNote("expected shape: the window grows super-linearly as the load approaches the cluster capacity")
	res.Tables = append(res.Tables, ta)

	// --- E1b: window vs replication factor --------------------------------
	tb := Table{
		ID:    "E1b",
		Title: "Inconsistency window vs replication factor (load=60%, write CL=ONE)",
		Columns: []string{"replication factor", "window p50 (ms)", "window p95 (ms)", "window p99 (ms)",
			"write p99 (ms)", "stale reads"},
	}
	for _, rf := range rfs {
		rep := reports[fmt.Sprintf("E1b rf=%d", rf)]
		tb.AddRow(fint(rf), fms(rep.Window.P50), fms(rep.Window.P95), fms(rep.Window.P99),
			fms(rep.WriteLatency.P99), fpct(rep.StaleReadRate))
	}
	tb.AddNote("expected shape: at CL=ONE more replicas must converge asynchronously, so the window grows with RF")
	res.Tables = append(res.Tables, tb)

	// --- E1c: window vs write consistency level ---------------------------
	tc := Table{
		ID:    "E1c",
		Title: "Inconsistency window vs write consistency level (load=60%, RF=3)",
		Columns: []string{"write consistency", "window p50 (ms)", "window p95 (ms)", "window p99 (ms)",
			"write p99 (ms)", "stale reads"},
	}
	for _, cl := range levels {
		rep := reports[fmt.Sprintf("E1c cl=%s", cl)]
		tc.AddRow(string(cl), fms(rep.Window.P50), fms(rep.Window.P95), fms(rep.Window.P99),
			fms(rep.WriteLatency.P99), fpct(rep.StaleReadRate))
	}
	tc.AddNote("expected shape: stricter write consistency shrinks the window but inflates write latency")
	res.Tables = append(res.Tables, tc)

	// --- E1d: noisy-neighbour drift ---------------------------------------
	td := Table{
		ID:    "E1d",
		Title: "Inconsistency window with and without noisy-neighbour platform load (load=60%, RF=3, CL=ONE)",
		Columns: []string{"noisy neighbour", "window p50 (ms)", "window p95 (ms)", "window p99 (ms)",
			"write p99 (ms)", "stale reads"},
	}
	for _, noisy := range noisies {
		rep := reports[fmt.Sprintf("E1d noisy=%v", noisy)]
		td.AddRow(fbool(noisy), fms(rep.Window.P50), fms(rep.Window.P95), fms(rep.Window.P99),
			fms(rep.WriteLatency.P99), fpct(rep.StaleReadRate))
	}
	td.AddNote("expected shape: shared-platform interference widens the window at identical database configuration " +
		"and load (the drift Bermbach & Tai observed)")
	res.Tables = append(res.Tables, td)

	res.Elapsed = time.Since(started)
	return res, nil
}
