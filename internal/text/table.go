// Package text renders aligned plain-text result tables. It is the single
// formatting backend behind the experiment tables and the suite comparison
// tables, so every table the project prints lines up the same way.
package text

import (
	"fmt"
	"strings"
)

// FormatAligned renders one table: an optional header line, a column header
// row, a separator, the data rows and optional "note:" lines. Rows shorter
// than the header are padded with empty cells; longer rows are truncated.
func FormatAligned(header string, columns []string, rows [][]string, notes []string) string {
	widths := make([]int, len(columns))
	for i, c := range columns {
		widths[i] = len(c)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}

	var b strings.Builder
	if header != "" {
		b.WriteString(header)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i := range columns {
			if i > 0 {
				b.WriteString("  ")
			}
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(columns)
	sep := make([]string, len(columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	for _, n := range notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
