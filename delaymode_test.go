package autonosql_test

// Scenario-level delay-mode admission tests: the same intervention schedule
// run in shed mode and in delay mode, compared on ground truth — delay mode
// turns rejections into queueing, so it must fail strictly less while the
// shed-mode run prices the full excess as availability failures.

import (
	"strings"
	"testing"
	"time"

	"autonosql"
)

// runThrottledScenario runs the two-tenant scenario with bronze throttled to
// 50 ops/s between 10s and 40s, under the given admission mode.
func runThrottledScenario(t *testing.T, mode autonosql.AdmissionMode) *autonosql.Report {
	t.Helper()
	spec := twoTenantSpec(5, autonosql.ControllerNone)
	spec.Duration = 60 * time.Second
	spec.Controller.Admission.Mode = mode
	scenario, err := autonosql.NewScenario(spec)
	if err != nil {
		t.Fatalf("NewScenario: %v", err)
	}
	scenario.At(10*time.Second, func(h *autonosql.Handle) {
		if err := h.ThrottleTenant("bronze", 50); err != nil {
			t.Errorf("ThrottleTenant: %v", err)
		}
	})
	scenario.At(40*time.Second, func(h *autonosql.Handle) {
		if err := h.UnthrottleTenant("bronze"); err != nil {
			t.Errorf("UnthrottleTenant: %v", err)
		}
	})
	rep, err := scenario.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rep
}

// TestDelayModeVersusShedGroundTruth compares the two admission modes on the
// same seed and intervention schedule.
func TestDelayModeVersusShedGroundTruth(t *testing.T) {
	shed := runThrottledScenario(t, autonosql.AdmissionShed)
	delay := runThrottledScenario(t, autonosql.AdmissionDelay)

	shedBronze := shed.Tenants[1]
	delayBronze := delay.Tenants[1]

	if shedBronze.ShedOps == 0 {
		t.Fatal("shed-mode run shed nothing; the comparison is vacuous")
	}
	if shedBronze.DelayedOps != 0 || shedBronze.MaxQueueDepth != 0 {
		t.Errorf("shed mode reported queueing: delayed=%d maxQueue=%d",
			shedBronze.DelayedOps, shedBronze.MaxQueueDepth)
	}
	if delayBronze.DelayedOps == 0 {
		t.Error("delay mode queued nothing under a throttle that shed thousands in shed mode")
	}
	if delayBronze.MaxQueueDepth == 0 {
		t.Error("delay mode reported a zero max queue depth despite queueing")
	}
	// Delay mode turns rejections into waits: the bronze tenant must fail
	// strictly less than in shed mode (only queue overflow still sheds).
	if delayBronze.ShedOps >= shedBronze.ShedOps {
		t.Errorf("delay mode shed %d ops, shed mode %d: queueing absorbed nothing",
			delayBronze.ShedOps, shedBronze.ShedOps)
	}
	shedFailures := shedBronze.FailedReads + shedBronze.FailedWrites
	delayFailures := delayBronze.FailedReads + delayBronze.FailedWrites
	if delayFailures >= shedFailures {
		t.Errorf("delay mode failures %d not below shed mode %d", delayFailures, shedFailures)
	}
	// The waits must land somewhere: queued bronze ops pay their queueing
	// delay as client-observed write latency.
	if delayBronze.WriteLatency.Max <= shedBronze.WriteLatency.Max {
		t.Errorf("delay-mode max write latency %v not above shed mode %v: queueing delay not charged",
			delayBronze.WriteLatency.Max, shedBronze.WriteLatency.Max)
	}
	// The report surfaces the treatment.
	if !strings.Contains(delayBronze.String(), "delayed=") {
		t.Errorf("delay-mode tenant line does not mention queueing: %s", delayBronze.String())
	}
	if strings.Contains(shedBronze.String(), "delayed=") {
		t.Errorf("shed-mode tenant line mentions queueing: %s", shedBronze.String())
	}
}

// TestDelayModeDeterministic pins that delay mode keeps the bit-for-bit
// guarantee: same seed, same fingerprint.
func TestDelayModeDeterministic(t *testing.T) {
	a := fingerprintReport(runThrottledScenario(t, autonosql.AdmissionDelay))
	b := fingerprintReport(runThrottledScenario(t, autonosql.AdmissionDelay))
	if a != b {
		t.Fatal("two delay-mode runs of the same seed produced different fingerprints")
	}
	if !strings.Contains(a, "delay:") {
		t.Error("delay-mode fingerprint carries no delay line")
	}
}

// TestParseAdmissionSpecMode covers the mode= option of the -admission DSL.
func TestParseAdmissionSpecMode(t *testing.T) {
	spec, err := autonosql.ParseAdmissionSpec("on:mode=delay:frac=0.4")
	if err != nil {
		t.Fatalf("ParseAdmissionSpec: %v", err)
	}
	if spec.Mode != autonosql.AdmissionDelay || spec.ThrottleFraction != 0.4 {
		t.Errorf("mode=delay not applied: %+v", spec)
	}
	spec, err = autonosql.ParseAdmissionSpec("on:mode=shed")
	if err != nil || spec.Mode != autonosql.AdmissionShed {
		t.Errorf("mode=shed not applied: %+v, %v", spec, err)
	}
	spec, err = autonosql.ParseAdmissionSpec("on")
	if err != nil || spec.Mode != "" {
		t.Errorf("bare on selected mode %q, want default", spec.Mode)
	}
	if _, err := autonosql.ParseAdmissionSpec("on:mode=defer"); err == nil {
		t.Error("unknown mode accepted")
	}
}
