package autonosql_test

// Shard-equivalence tests: the whole value of the sharded engine rests on
// Shards being a pure performance knob. Every committed golden — plain,
// MAPE-controlled, crash+restart, partition+heal, two-tenant, throttled, and
// trace replay — must produce a bit-for-bit identical Report.Fingerprint()
// for shards ∈ {1, 2, 4}, and the fingerprint must be invariant under the
// lockstep epoch length. The golden .txt files double as the shards=1
// byte-identity oracle: shards <= 1 takes the classic single-heap path, so
// comparing sharded runs against the files proves both halves at once.

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"autonosql"
)

// shardGoldenCases enumerates every committed golden scenario as (spec
// builder, golden file) pairs. Builders return fresh specs so each run can
// set its own Shards/Epoch.
func shardGoldenCases(t *testing.T) []struct {
	name   string
	golden string
	spec   func() autonosql.ScenarioSpec
} {
	t.Helper()
	replayTrace := readGoldenTrace(t)
	return []struct {
		name   string
		golden string
		spec   func() autonosql.ScenarioSpec
	}{
		{"none", "scenario_none_seed42", func() autonosql.ScenarioSpec {
			return goldenSpec(42, autonosql.ControllerNone)
		}},
		{"smart", "scenario_smart_seed1234", func() autonosql.ScenarioSpec {
			spec := goldenSpec(1234, autonosql.ControllerSmart)
			spec.Duration = 2 * time.Minute
			return spec
		}},
		{"crash", "scenario_crash_seed4242", func() autonosql.ScenarioSpec {
			spec := goldenFaultSpec(4242)
			spec.Faults = autonosql.FaultPlan{Faults: []autonosql.FaultSpec{
				autonosql.CrashFault(20*time.Second, 30*time.Second, 1),
			}}
			return spec
		}},
		{"partition", "scenario_partition_seed7777", func() autonosql.ScenarioSpec {
			spec := goldenFaultSpec(7777)
			spec.Faults = autonosql.FaultPlan{Faults: []autonosql.FaultSpec{
				autonosql.PartitionFault(20*time.Second, 40*time.Second, 2),
			}}
			return spec
		}},
		{"twotenants", "scenario_twotenants_seed4711", func() autonosql.ScenarioSpec {
			return twoTenantSpec(4711, autonosql.ControllerNone)
		}},
		{"throttle", "scenario_throttle_seed2026", func() autonosql.ScenarioSpec {
			return throttledSpec(2026)
		}},
		{"replay", "scenario_twotenants_seed4711", func() autonosql.ScenarioSpec {
			spec := twoTenantSpec(4711, autonosql.ControllerNone)
			spec.Replay = replayTrace
			return spec
		}},
	}
}

// readGoldenTrace loads the committed two-tenant arrival trace.
func readGoldenTrace(t *testing.T) *autonosql.WorkloadTrace {
	t.Helper()
	trace, err := autonosql.ReadWorkloadTraceFile(filepath.Join("testdata", "golden_trace_twotenants_seed4711.jsonl"))
	if err != nil {
		t.Fatalf("reading golden trace: %v", err)
	}
	return trace
}

// readGoldenFile loads a committed golden fingerprint.
func readGoldenFile(t *testing.T, name string) string {
	t.Helper()
	want, err := os.ReadFile(filepath.Join("testdata", "golden_"+name+".txt"))
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}
	return string(want)
}

// TestShardEquivalence is the tentpole guarantee: for every committed golden
// scenario, the report fingerprint at shards ∈ {1, 2, 4} is byte-identical
// to the golden file produced by the classic single-heap engine.
func TestShardEquivalence(t *testing.T) {
	for _, c := range shardGoldenCases(t) {
		t.Run(c.name, func(t *testing.T) {
			want := readGoldenFile(t, c.golden)
			for _, shards := range []int{1, 2, 4} {
				spec := c.spec()
				spec.Shards = shards
				got := fingerprintReport(runGoldenScenario(t, spec))
				if got != want {
					t.Errorf("shards=%d fingerprint diverged from golden_%s.txt", shards, c.golden)
				}
			}
		})
	}
}

// TestShardEpochInvariance pins that the lockstep epoch length is pure
// buffering, not semantics: wildly different windows produce byte-identical
// fingerprints, so the barrier protocol — never timing luck — determines
// event order.
func TestShardEpochInvariance(t *testing.T) {
	cases := []struct {
		name   string
		golden string
		spec   func() autonosql.ScenarioSpec
	}{
		{"none", "scenario_none_seed42", func() autonosql.ScenarioSpec {
			return goldenSpec(42, autonosql.ControllerNone)
		}},
		{"twotenants", "scenario_twotenants_seed4711", func() autonosql.ScenarioSpec {
			return twoTenantSpec(4711, autonosql.ControllerNone)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			want := readGoldenFile(t, c.golden)
			for _, epoch := range []time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond} {
				spec := c.spec()
				spec.Shards = 2
				spec.Epoch = epoch
				got := fingerprintReport(runGoldenScenario(t, spec))
				if got != want {
					t.Errorf("epoch=%v fingerprint diverged from golden_%s.txt", epoch, c.golden)
				}
			}
		})
	}
}

// TestShardRecordTrace pins that recording is shard-transparent: a sharded
// run records byte-for-byte the trace the single-heap run recorded (the
// committed golden trace), because the recorder sits on the home side of the
// lane bridge and stamps arrivals at their true delivery times.
func TestShardRecordTrace(t *testing.T) {
	spec := twoTenantSpec(4711, autonosql.ControllerNone)
	spec.Shards = 4
	_, trace := recordRun(t, spec)
	want, err := os.ReadFile(filepath.Join("testdata", "golden_trace_twotenants_seed4711.jsonl"))
	if err != nil {
		t.Fatalf("reading golden trace: %v", err)
	}
	if !bytes.Equal(encodeTrace(t, trace), want) {
		t.Fatal("sharded run recorded a different trace than the committed golden")
	}
}

// scenarioRunMallocs builds the scenario for spec and returns the number of
// heap allocations its Run performed (construction excluded).
func scenarioRunMallocs(t *testing.T, spec autonosql.ScenarioSpec) uint64 {
	t.Helper()
	scenario, err := autonosql.NewScenario(spec)
	if err != nil {
		t.Fatalf("NewScenario: %v", err)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if _, err := scenario.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// TestShardScenarioAllocBound pins the sharded path's steady-state allocation
// behaviour at scenario level: tick records are recycled across the barrier,
// cross-lane boxes keep their capacity and drained messages reuse pooled
// events, so doubling the simulated duration at shards=4 must not cost more
// extra allocations than the plain engine's own growth allows for, within a
// small fixed slack for lane bootstrap and high-water marks.
func TestShardScenarioAllocBound(t *testing.T) {
	specFor := func(shards int, d time.Duration) autonosql.ScenarioSpec {
		spec := goldenSpec(42, autonosql.ControllerNone)
		spec.Duration = d
		spec.Shards = shards
		return spec
	}
	plainGrowth := scenarioRunMallocs(t, specFor(0, time.Minute)) -
		scenarioRunMallocs(t, specFor(0, 30*time.Second))
	shardedGrowth := scenarioRunMallocs(t, specFor(4, time.Minute)) -
		scenarioRunMallocs(t, specFor(4, 30*time.Second))
	t.Logf("allocation growth for +30s simulated: plain=%d sharded=%d", plainGrowth, shardedGrowth)
	if shardedGrowth > 2*plainGrowth+20_000 {
		t.Fatalf("sharded steady state allocates too much: +30s costs %d allocs vs %d plain",
			shardedGrowth, plainGrowth)
	}
}

// TestShardSpecValidation pins the spec guard rails.
func TestShardSpecValidation(t *testing.T) {
	spec := goldenSpec(1, autonosql.ControllerNone)
	spec.Shards = -1
	if _, err := autonosql.NewScenario(spec); err == nil {
		t.Fatal("NewScenario accepted negative Shards")
	}
	spec = goldenSpec(1, autonosql.ControllerNone)
	spec.Epoch = -time.Second
	if _, err := autonosql.NewScenario(spec); err == nil {
		t.Fatal("NewScenario accepted negative Epoch")
	}
}

// TestSuiteShardsAxis pins the Shards grid axis: variants carry the
// shards=N name component and the expansion is bit-for-bit deterministic
// whatever the suite parallelism, even with sharded scenarios running
// inside concurrent workers.
func TestSuiteShardsAxis(t *testing.T) {
	base := twoTenantSpec(4711, autonosql.ControllerNone)
	base.Duration = 45 * time.Second
	suiteSpec := autonosql.SuiteSpec{
		Base: base,
		Grid: autonosql.Grid{
			Shards: []int{1, 4},
		},
	}
	fingerprint := func(parallelism int) string {
		suiteSpec.Parallelism = parallelism
		suite, err := autonosql.NewSuite(suiteSpec)
		if err != nil {
			t.Fatalf("NewSuite: %v", err)
		}
		rep, err := suite.Run()
		if err != nil {
			t.Fatalf("suite.Run: %v", err)
		}
		if len(rep.Variants) != 2 {
			t.Fatalf("suite ran %d variants, want 2", len(rep.Variants))
		}
		if rep.Parallelism != parallelism {
			t.Fatalf("SuiteReport.Parallelism = %d, want %d", rep.Parallelism, parallelism)
		}
		out := ""
		for i, v := range rep.Variants {
			out += "== variant " + v.Name + "\n" + fingerprintReport(v.Report)
			wantComponent := []string{"shards=1", "shards=4"}[i]
			if !strings.Contains(v.Name, wantComponent) {
				t.Fatalf("variant %q does not carry the %s component", v.Name, wantComponent)
			}
		}
		// Shards is a pure performance knob: both variants must simulate the
		// identical system.
		if fingerprintReport(rep.Variants[0].Report) != fingerprintReport(rep.Variants[1].Report) {
			t.Fatal("shards=1 and shards=4 variants produced different fingerprints")
		}
		return out
	}
	sequential := fingerprint(1)
	concurrent := fingerprint(2)
	if sequential != concurrent {
		t.Fatal("Shards-axis suite diverged between sequential and concurrent execution")
	}
}

// TestShardNodeOwnershipStability pins the home-sharding membership story at
// scenario level. Every entropy stream (one per node, one for the network) is
// owned by the lane its ring token maps to — a pure function of node
// identity — so: a node the controller provisions mid-run gets its own feed
// the moment it is created (scale-out), a crashed-and-restarted node keeps
// its feed (the ring position never moved), and the deterministic feed
// counters are identical whatever the worker count.
func TestShardNodeOwnershipStability(t *testing.T) {
	profiled := func(spec autonosql.ScenarioSpec, shards int) *autonosql.ProfileReport {
		t.Helper()
		spec.Shards = shards
		spec.Observe = &autonosql.ObserveSpec{Profile: true}
		rep := runGoldenScenario(t, spec)
		if rep.Profile == nil || rep.Profile.Feeds == nil {
			t.Fatalf("shards=%d run carries no feed profile", shards)
		}
		return rep.Profile
	}

	// Scale-out/in: a node provisioned mid-run must be bound to an owner lane
	// by the same factory as the initial set, a drained one retires with its
	// ring position, and the whole churn sequence must stay byte-identical to
	// the single-heap run.
	churned := func(shards int) (*autonosql.ProfileReport, string) {
		t.Helper()
		spec := goldenSpec(97, autonosql.ControllerNone)
		spec.Duration = 2 * time.Minute
		spec.Shards = shards
		spec.Observe = &autonosql.ObserveSpec{Profile: true}
		scenario, err := autonosql.NewScenario(spec)
		if err != nil {
			t.Fatalf("NewScenario: %v", err)
		}
		scenario.At(20*time.Second, func(h *autonosql.Handle) {
			if err := h.AddNode(); err != nil {
				t.Errorf("AddNode: %v", err)
			}
		})
		scenario.At(100*time.Second, func(h *autonosql.Handle) {
			if err := h.RemoveNode(); err != nil {
				t.Errorf("RemoveNode: %v", err)
			}
		})
		rep, err := scenario.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return rep.Profile, fingerprintReport(rep)
	}
	const churnedStreams = 3 + 1 + 1 // initial nodes + network + the added node
	_, fp1 := churned(1)
	p2, fp2 := churned(2)
	if fp2 != fp1 {
		t.Fatal("membership-churn fingerprint diverged from the single-heap run")
	}
	if p2 == nil || p2.Feeds == nil {
		t.Fatal("churned run carries no feed profile")
	}
	if p2.Feeds.Feeds != churnedStreams {
		t.Fatalf("scale-out/in run created %d feeds, want exactly %d: the provisioned node must get a feed, the drained one keeps its binding",
			p2.Feeds.Feeds, churnedStreams)
	}
	if p2.Feeds.Refills == 0 {
		t.Fatal("no refills were produced on owner lanes")
	}
	p4, fp4 := churned(4)
	if *p2.Feeds != *p4.Feeds {
		t.Fatalf("deterministic feed counters diverged across worker counts:\nshards=2: %+v\nshards=4: %+v",
			*p2.Feeds, *p4.Feeds)
	}
	if fp2 != fp4 {
		t.Fatal("membership-churn fingerprints diverged across worker counts")
	}

	// Crash/restart: the node keeps its ring position and therefore its feed;
	// the stream count stays at initial nodes + network.
	crash := goldenFaultSpec(4242)
	crash.Faults = autonosql.FaultPlan{Faults: []autonosql.FaultSpec{
		autonosql.CrashFault(20*time.Second, 30*time.Second, 1),
	}}
	if pc := profiled(crash, 2); pc.Feeds.Feeds != 4+1 {
		t.Fatalf("crash/restart run created %d feeds, want exactly %d: ownership must not move",
			pc.Feeds.Feeds, 4+1)
	}
}
