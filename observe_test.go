package autonosql_test

// Observability tests: the deterministic tracing/audit/profiling layer must
// be (a) invisible — enabling it cannot perturb the simulation, so the
// committed golden fingerprints still hold bit-for-bit — and (b) itself
// deterministic — span and audit exports are byte-identical whatever the
// shard count, because spans are stamped in virtual time on the home lane.

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"autonosql"
)

// observedSpec arms every observability surface on top of a golden spec.
func observedSpec(spec autonosql.ScenarioSpec) autonosql.ScenarioSpec {
	spec.Observe = &autonosql.ObserveSpec{
		TraceOps:    true,
		SampleEvery: 50,
		Audit:       true,
		Profile:     true,
	}
	return spec
}

// observedRun runs spec and returns the report plus the JSONL span export.
func observedRun(t *testing.T, spec autonosql.ScenarioSpec) (*autonosql.Report, []byte, []byte) {
	t.Helper()
	scenario, err := autonosql.NewScenario(spec)
	if err != nil {
		t.Fatalf("NewScenario: %v", err)
	}
	rep, err := scenario.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var spans, chrome bytes.Buffer
	if err := scenario.WriteSpans(&spans); err != nil {
		t.Fatalf("WriteSpans: %v", err)
	}
	if err := scenario.WriteChromeTrace(&chrome); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	return rep, spans.Bytes(), chrome.Bytes()
}

// TestShardObservabilityInvariance pins that observation is shard-transparent:
// the span export, the Chrome trace and the MAPE audit trail are
// byte-identical for shards ∈ {1, 2, 4} across the golden scenario family —
// a smart-controller run, the throttled two-tenant admission scenario, a
// controllerless two-tenant run and a partition/heal fault run, so the sweep
// covers the multi-tenant, admission and fault paths riding on the home-side
// entropy feeds. Spans are stamped in virtual time on the op's home lane and
// decisions run on the control lane, so the lockstep schedule cannot leak
// into any export.
func TestShardObservabilityInvariance(t *testing.T) {
	smart := goldenSpec(1234, autonosql.ControllerSmart)
	smart.Duration = 90 * time.Second
	partition := goldenFaultSpec(7777)
	partition.Faults = autonosql.FaultPlan{Faults: []autonosql.FaultSpec{
		autonosql.PartitionFault(20*time.Second, 40*time.Second, 2),
	}}
	cases := []struct {
		name      string
		spec      autonosql.ScenarioSpec
		wantAudit bool
	}{
		{"smart", smart, true},
		{"throttle", throttledSpec(2026), true},
		{"twotenants", twoTenantSpec(4711, autonosql.ControllerNone), false},
		{"partition", partition, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var wantSpans, wantChrome, wantAudit []byte
			for _, shards := range []int{1, 2, 4} {
				spec := observedSpec(c.spec)
				spec.Shards = shards
				rep, spans, chrome := observedRun(t, spec)
				audit, err := json.Marshal(rep.Audit)
				if err != nil {
					t.Fatalf("marshal audit: %v", err)
				}
				if rep.Spans == nil || rep.Spans.Sampled == 0 {
					t.Fatalf("shards=%d: report Spans = %+v, want sampled > 0", shards, rep.Spans)
				}
				if c.wantAudit && len(rep.Audit) == 0 {
					t.Fatalf("shards=%d: controller run produced no audit entries", shards)
				}
				if shards == 1 {
					wantSpans, wantChrome, wantAudit = spans, chrome, audit
					continue
				}
				if !bytes.Equal(spans, wantSpans) {
					t.Errorf("shards=%d span export diverged from shards=1", shards)
				}
				if !bytes.Equal(chrome, wantChrome) {
					t.Errorf("shards=%d chrome trace diverged from shards=1", shards)
				}
				if !bytes.Equal(audit, wantAudit) {
					t.Errorf("shards=%d audit trail diverged from shards=1", shards)
				}
			}
		})
	}
}

// TestObserveZeroEffect pins a zero observer effect: running the committed
// golden scenarios with every observability surface armed must reproduce the
// committed fingerprints bit-for-bit, because tracing only annotates ops the
// simulation was executing anyway and never schedules events of its own.
func TestObserveZeroEffect(t *testing.T) {
	cases := []struct {
		name   string
		golden string
		spec   autonosql.ScenarioSpec
	}{
		{"none", "scenario_none_seed42", goldenSpec(42, autonosql.ControllerNone)},
		{"twotenants", "scenario_twotenants_seed4711", twoTenantSpec(4711, autonosql.ControllerNone)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			want := readGoldenFile(t, c.golden)
			rep, spans, _ := observedRun(t, observedSpec(c.spec))
			if got := fingerprintReport(rep); got != want {
				t.Errorf("observed run's fingerprint diverged from golden_%s.txt", c.golden)
			}
			if len(spans) == 0 {
				t.Error("observed run exported no spans")
			}
		})
	}
}

// TestObserveDisabledReportOmitsSections pins the wire format: a report from
// a run without Observe carries no Audit/Spans/Profile JSON keys, so every
// pre-observability consumer sees byte-identical documents.
func TestObserveDisabledReportOmitsSections(t *testing.T) {
	rep := runGoldenScenario(t, goldenSpec(42, autonosql.ControllerNone))
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	for _, key := range []string{`"Audit"`, `"Spans"`, `"Profile"`} {
		if strings.Contains(string(raw), key) {
			t.Errorf("Observe-disabled report JSON contains %s", key)
		}
	}
}

// TestObserveMaxTraces pins the retention cap: with MaxTraces set the tracer
// keeps the newest N sampled traces, counts the evicted rest as Dropped, and
// the export carries exactly N lines.
func TestObserveMaxTraces(t *testing.T) {
	spec := goldenSpec(42, autonosql.ControllerNone)
	spec.Observe = &autonosql.ObserveSpec{TraceOps: true, SampleEvery: 10, MaxTraces: 25}
	rep, spans, _ := observedRun(t, spec)
	if rep.Spans == nil {
		t.Fatal("report has no span stats")
	}
	if rep.Spans.Sampled <= 25 {
		t.Fatalf("Sampled = %d, want more elections than the cap retains", rep.Spans.Sampled)
	}
	if got, want := rep.Spans.Dropped, rep.Spans.Sampled-25; got != want {
		t.Fatalf("Dropped = %d, want Sampled-MaxTraces = %d", got, want)
	}
	if lines := bytes.Count(spans, []byte{'\n'}); lines != 25 {
		t.Fatalf("span export has %d lines, want 25", lines)
	}
}
