package autonosql

import (
	"errors"
	"fmt"
	"math"
	"time"

	"autonosql/internal/baseline"
	"autonosql/internal/cluster"
	"autonosql/internal/core"
	"autonosql/internal/monitor"
	"autonosql/internal/sla"
	"autonosql/internal/store"
	"autonosql/internal/workload"
)

// ConsistencyLevel is the number of replica acknowledgements an operation
// waits for, named as in Cassandra.
type ConsistencyLevel string

// Supported consistency levels.
const (
	// ConsistencyOne waits for a single replica.
	ConsistencyOne ConsistencyLevel = "ONE"
	// ConsistencyTwo waits for two replicas.
	ConsistencyTwo ConsistencyLevel = "TWO"
	// ConsistencyQuorum waits for a majority of replicas.
	ConsistencyQuorum ConsistencyLevel = "QUORUM"
	// ConsistencyAll waits for every replica.
	ConsistencyAll ConsistencyLevel = "ALL"
)

func (c ConsistencyLevel) toStore() (store.ConsistencyLevel, error) {
	if c == "" {
		return store.One, nil
	}
	return store.ParseConsistencyLevel(string(c))
}

// consistencyFromStore converts an internal level back to its public name.
func consistencyFromStore(cl store.ConsistencyLevel) ConsistencyLevel {
	return ConsistencyLevel(cl.String())
}

// ControllerMode selects which controller (if any) manages the cluster.
type ControllerMode string

// Controller modes.
const (
	// ControllerNone leaves the configuration fixed for the whole run.
	ControllerNone ControllerMode = "none"
	// ControllerReactive runs the classic CPU-threshold autoscaler baseline.
	ControllerReactive ControllerMode = "reactive"
	// ControllerSmart runs the paper's SLA-driven autonomous controller.
	ControllerSmart ControllerMode = "smart"
)

// LoadPattern selects the shape of the offered load over time.
type LoadPattern string

// Load patterns.
const (
	// LoadConstant offers a fixed rate for the whole run.
	LoadConstant LoadPattern = "constant"
	// LoadStep switches from the base rate to the peak rate during
	// [PeakStart, PeakStart+PeakDuration).
	LoadStep LoadPattern = "step"
	// LoadDiurnal oscillates between the base and peak rate with the given
	// period, modelling a day/night cycle.
	LoadDiurnal LoadPattern = "diurnal"
	// LoadSpike overlays a flash-crowd spike on the base rate.
	LoadSpike LoadPattern = "spike"
	// LoadDiurnalSpike combines the diurnal cycle with a flash-crowd spike.
	LoadDiurnalSpike LoadPattern = "diurnal+spike"
)

// KeyDistribution selects how operations pick keys.
type KeyDistribution string

// Key distributions.
const (
	// KeysUniform picks keys uniformly at random.
	KeysUniform KeyDistribution = "uniform"
	// KeysZipfian picks keys with a YCSB-style zipfian popularity skew.
	KeysZipfian KeyDistribution = "zipfian"
	// KeysLatest skews reads towards recently written keys.
	KeysLatest KeyDistribution = "latest"
)

// ClusterSpec describes the infrastructure the database runs on.
type ClusterSpec struct {
	// InitialNodes is the number of nodes at the start of the run.
	InitialNodes int
	// MinNodes and MaxNodes bound the sizes reachable through scaling.
	MinNodes int
	MaxNodes int
	// NodeOpsPerSec is the sustainable per-node throughput.
	NodeOpsPerSec float64
	// BootstrapTime is how long a new node takes before it serves traffic.
	BootstrapTime time.Duration
	// DecommissionTime is how long a node drains before removal.
	DecommissionTime time.Duration
	// NoisyNeighbour enables the multi-tenant background-load profile that
	// makes the inconsistency window drift over time.
	NoisyNeighbour bool
}

// StoreSpec describes the eventually-consistent store configuration.
type StoreSpec struct {
	// ReplicationFactor is the number of replicas per key.
	ReplicationFactor int
	// ReadConsistency and WriteConsistency are the initial consistency levels.
	ReadConsistency  ConsistencyLevel
	WriteConsistency ConsistencyLevel
	// ReadRepair enables background repair of stale replicas touched by reads.
	ReadRepair bool
	// HintedHandoff queues writes for unavailable replicas.
	HintedHandoff bool
	// AntiEntropyInterval is the period of the background repair sweep
	// (zero disables it).
	AntiEntropyInterval time.Duration
}

// WorkloadSpec describes the client traffic offered to the store.
type WorkloadSpec struct {
	// Pattern is the load shape.
	Pattern LoadPattern
	// BaseOpsPerSec is the baseline offered rate.
	BaseOpsPerSec float64
	// PeakOpsPerSec is the peak rate for step, diurnal and spike patterns.
	PeakOpsPerSec float64
	// Period is the diurnal period (defaults to the run duration).
	Period time.Duration
	// PeakStart and PeakDuration position the step or spike.
	PeakStart    time.Duration
	PeakDuration time.Duration
	// ReadFraction is the fraction of operations that are reads.
	ReadFraction float64
	// Keyspace is the number of distinct keys.
	Keyspace int
	// Keys selects the key popularity distribution.
	Keys KeyDistribution
}

// MonitorSpec describes how the inconsistency window is measured.
type MonitorSpec struct {
	// ActiveProbes enables read-after-write probing on a dummy keyspace.
	ActiveProbes bool
	// PassiveObservation enables coordinator-side replica-ack observation.
	PassiveObservation bool
	// ProbeRate is the number of active probes per second.
	ProbeRate float64
}

// SLASpec describes the extended SLA and the cost model used to price a run.
type SLASpec struct {
	// MaxWindowP95 bounds the 95th percentile of the inconsistency window.
	MaxWindowP95 time.Duration
	// MaxReadLatencyP99 bounds client read latency.
	MaxReadLatencyP99 time.Duration
	// MaxWriteLatencyP99 bounds client write latency.
	MaxWriteLatencyP99 time.Duration
	// MaxErrorRate bounds the fraction of failed operations.
	MaxErrorRate float64

	// NodeCostPerHour prices one node for one hour.
	NodeCostPerHour float64
	// StaleReadCompensation prices one stale read served to a client.
	StaleReadCompensation float64
	// ViolationPenaltyPerMinute prices one minute of SLA violation.
	ViolationPenaltyPerMinute float64
}

// ControllerSpec selects and configures the controller managing the cluster.
type ControllerSpec struct {
	// Mode selects the controller: none, reactive or smart.
	Mode ControllerMode
	// ControlInterval is the period of the control loop.
	ControlInterval time.Duration
	// Predictive enables proactive scaling from the load forecast
	// (smart mode only).
	Predictive bool
	// AllowConsistencyChanges lets the smart controller change consistency
	// levels.
	AllowConsistencyChanges bool
	// AllowReplicationChanges lets the smart controller change the
	// replication factor.
	AllowReplicationChanges bool
	// AllowScaling lets the controller add and remove nodes.
	AllowScaling bool
	// Admission configures tenant-scoped admission control (throttle /
	// unthrottle actions) for the smart controller. The zero value keeps it
	// off and reproduces pre-admission behaviour exactly.
	Admission AdmissionSpec
	// AllowPlacement lets the smart controller dedicate nodes to an SLA
	// class (pin / unpin actions) so gold replica sets stop sharing queues
	// with best-effort traffic.
	AllowPlacement bool
}

// ObserveSpec configures the deterministic observability layer. Everything
// here is strictly opt-in: the zero value (and a nil pointer on the spec)
// runs the exact pre-observability code paths, byte-identical reports and
// fingerprints included.
type ObserveSpec struct {
	// TraceOps enables sampled causal op tracing: every sampled operation
	// records its span tree — arrival, admission, coordination, per-replica
	// fan-out, acks, quorum, SLA accounting — stamped with virtual time only,
	// so exports are byte-identical across shard counts and repeated runs.
	TraceOps bool
	// SampleEvery traces every Nth operation (values < 1 mean 1 — trace
	// everything). The first operation is always sampled.
	SampleEvery int `json:",omitempty"`
	// MaxTraces bounds the retained traces; the oldest are evicted beyond it
	// (0 = unbounded).
	MaxTraces int `json:",omitempty"`
	// Audit records one MAPE audit record per control decision: the driving
	// tenant signal, every cooldown consulted, every vetoed candidate and the
	// planning branch taken. Surfaces as Report.Audit.
	Audit bool
	// Profile surfaces the engine's deterministic self-profiling counters
	// (event pool hit rate, heap high-water mark, lockstep rounds, cross-lane
	// mail) as Report.Profile.
	Profile bool
}

// ScenarioSpec is the complete description of one simulated run.
type ScenarioSpec struct {
	// Seed drives every random stream in the simulation; runs with the same
	// spec and seed are bit-for-bit reproducible.
	Seed int64
	// Duration is the simulated (virtual) time to run for.
	Duration time.Duration
	// SampleInterval is how often time series points are recorded.
	SampleInterval time.Duration

	Cluster    ClusterSpec
	Store      StoreSpec
	Workload   WorkloadSpec
	Monitor    MonitorSpec
	SLA        SLASpec
	Controller ControllerSpec

	// Faults schedules deterministic fault injection — node crashes and
	// restarts, slow nodes, network partitions and heals, latency storms —
	// over the run. The zero value runs failure-free.
	Faults FaultPlan

	// Tenants declares the scenario's named tenants. When the list is empty
	// the scenario behaves exactly as before (one anonymous client workload
	// described by Workload, one SLA, one aggregate report); when it is
	// non-empty the tenants replace the Workload traffic — each tenant runs
	// its own generator over a disjoint key-space slice under its own SLA
	// class — and the report gains per-tenant sections.
	Tenants []TenantSpec

	// Replay, when non-nil, replaces every workload generator with an exact
	// replay of the recorded arrival stream: each operation is issued at its
	// recorded virtual time, to its recorded tenant and key, regardless of
	// the Workload / tenant rate parameters (which then only describe where
	// the trace came from). The trace's tenant names must match Tenants.
	// Replay is excluded from JSON because a trace is workload data, not
	// configuration; persist it next to the spec with WorkloadTrace.WriteFile.
	Replay *WorkloadTrace `json:"-"`

	// Observe, when non-nil, enables the observability layer: sampled causal
	// op traces, the MAPE audit trail and engine self-profiling. Nil (the
	// default) keeps every hot path on its pre-observability budget and every
	// report byte-identical to an unobserved run.
	Observe *ObserveSpec `json:",omitempty"`

	// Shards selects the simulation engine layout. 0 or 1 runs the classic
	// single-heap engine, bit-for-bit identical to every published golden;
	// N >= 2 runs the sharded engine — up to N worker threads driving one
	// home lane (store, cluster, monitor, control loop, faults) plus one
	// source lane per workload driver in deterministic lockstep epochs.
	// Sharding covers both sides of the simulation: the driver lanes
	// generate workload arrivals, and the home side hands its service-time
	// and network-jitter entropy streams off to those same lanes by ring
	// segment (each simulated node's stream is refilled on the lane owning
	// its ring position; see store.OwnerSegment). Reports and fingerprints
	// are identical for every shard count; only wall-clock speed changes.
	Shards int `json:",omitempty"`
	// Epoch is the lockstep window length of the sharded engine; zero means
	// 10ms. It is ignored unless Shards >= 2, and results are invariant
	// under its value — it only trades barrier overhead against mailbox
	// buffering.
	Epoch time.Duration `json:",omitempty"`
}

// DefaultScenarioSpec returns a ready-to-run scenario: a three-node cluster,
// RF=3 with ONE/ONE consistency, a constant 3000 ops/s YCSB-A-style workload,
// both monitoring techniques, the default SLA and the smart controller.
func DefaultScenarioSpec() ScenarioSpec {
	return ScenarioSpec{
		Seed:           1,
		Duration:       5 * time.Minute,
		SampleInterval: 10 * time.Second,
		Cluster: ClusterSpec{
			InitialNodes:     3,
			MinNodes:         2,
			MaxNodes:         16,
			NodeOpsPerSec:    5000,
			BootstrapTime:    60 * time.Second,
			DecommissionTime: 30 * time.Second,
		},
		Store: StoreSpec{
			ReplicationFactor:   3,
			ReadConsistency:     ConsistencyOne,
			WriteConsistency:    ConsistencyOne,
			ReadRepair:          true,
			HintedHandoff:       true,
			AntiEntropyInterval: 60 * time.Second,
		},
		Workload: WorkloadSpec{
			Pattern:       LoadConstant,
			BaseOpsPerSec: 3000,
			ReadFraction:  0.5,
			Keyspace:      10000,
			Keys:          KeysZipfian,
		},
		Monitor: MonitorSpec{
			ActiveProbes:       true,
			PassiveObservation: true,
			ProbeRate:          1,
		},
		SLA: SLASpec{
			MaxWindowP95:              250 * time.Millisecond,
			MaxReadLatencyP99:         20 * time.Millisecond,
			MaxWriteLatencyP99:        25 * time.Millisecond,
			MaxErrorRate:              0.001,
			NodeCostPerHour:           0.50,
			StaleReadCompensation:     0.02,
			ViolationPenaltyPerMinute: 1.00,
		},
		Controller: ControllerSpec{
			Mode:                    ControllerSmart,
			ControlInterval:         10 * time.Second,
			Predictive:              true,
			AllowConsistencyChanges: true,
			AllowScaling:            true,
		},
	}
}

// Validate reports whether the spec describes a runnable scenario.
func (s ScenarioSpec) Validate() error {
	if s.Duration <= 0 {
		return errors.New("autonosql: Duration must be positive")
	}
	if !finiteNonNegative(s.Workload.BaseOpsPerSec) || !finiteNonNegative(s.Workload.PeakOpsPerSec) {
		return errors.New("autonosql: offered rates must be finite and non-negative")
	}
	if math.IsNaN(s.Workload.ReadFraction) || s.Workload.ReadFraction < 0 || s.Workload.ReadFraction > 1 {
		return errors.New("autonosql: ReadFraction must be within [0, 1]")
	}
	if s.Cluster.InitialNodes <= 0 {
		return errors.New("autonosql: InitialNodes must be positive")
	}
	if s.Store.ReplicationFactor <= 0 {
		return errors.New("autonosql: ReplicationFactor must be positive")
	}
	if _, err := s.Store.ReadConsistency.toStore(); err != nil {
		return fmt.Errorf("autonosql: read consistency: %w", err)
	}
	if _, err := s.Store.WriteConsistency.toStore(); err != nil {
		return fmt.Errorf("autonosql: write consistency: %w", err)
	}
	switch s.Controller.Mode {
	case "", ControllerNone, ControllerReactive, ControllerSmart:
	default:
		return fmt.Errorf("autonosql: unknown controller mode %q", s.Controller.Mode)
	}
	switch s.Workload.Pattern {
	case "", LoadConstant, LoadStep, LoadDiurnal, LoadSpike, LoadDiurnalSpike:
	default:
		return fmt.Errorf("autonosql: unknown load pattern %q", s.Workload.Pattern)
	}
	switch s.Workload.Keys {
	case "", KeysUniform, KeysZipfian, KeysLatest:
	default:
		return fmt.Errorf("autonosql: unknown key distribution %q", s.Workload.Keys)
	}
	if err := s.slaModel().Validate(); err != nil {
		return fmt.Errorf("autonosql: %w", err)
	}
	if err := s.costModel().Validate(); err != nil {
		return fmt.Errorf("autonosql: %w", err)
	}
	if err := s.Faults.validate(); err != nil {
		return fmt.Errorf("autonosql: %w", err)
	}
	if err := validateTenants(s.Tenants); err != nil {
		return fmt.Errorf("autonosql: %w", err)
	}
	if err := s.Controller.Admission.validate(); err != nil {
		return fmt.Errorf("autonosql: %w", err)
	}
	if s.Replay != nil {
		if err := s.Replay.matches(s.Tenants); err != nil {
			return fmt.Errorf("autonosql: replay: %w", err)
		}
	}
	if s.Observe != nil {
		if s.Observe.SampleEvery < 0 {
			return errors.New("autonosql: Observe.SampleEvery must be non-negative")
		}
		if s.Observe.MaxTraces < 0 {
			return errors.New("autonosql: Observe.MaxTraces must be non-negative")
		}
	}
	if s.Shards < 0 {
		return errors.New("autonosql: Shards must be non-negative")
	}
	if s.Epoch < 0 {
		return errors.New("autonosql: Epoch must be non-negative")
	}
	return nil
}

// --- conversions to internal configurations ---------------------------------

func (s ScenarioSpec) clusterConfig() cluster.Config {
	cfg := cluster.DefaultConfig()
	cfg.InitialNodes = s.Cluster.InitialNodes
	if s.Cluster.MinNodes > 0 {
		cfg.MinNodes = s.Cluster.MinNodes
	}
	if s.Cluster.MaxNodes > 0 {
		cfg.MaxNodes = s.Cluster.MaxNodes
	}
	if s.Cluster.NodeOpsPerSec > 0 {
		// The node executor is serial, so its sustainable throughput is the
		// inverse of the per-operation service time. Keep both fields in sync
		// with the requested capacity.
		cfg.Node.CapacityOpsPerSec = s.Cluster.NodeOpsPerSec
		cfg.Node.BaseServiceTime = time.Duration(float64(time.Second) / s.Cluster.NodeOpsPerSec)
		cfg.Node.ReplicationApplyTime = cfg.Node.BaseServiceTime * 3 / 4
	}
	if s.Cluster.BootstrapTime > 0 {
		cfg.BootstrapTime = s.Cluster.BootstrapTime
	}
	if s.Cluster.DecommissionTime > 0 {
		cfg.DecommissionTime = s.Cluster.DecommissionTime
	}
	return cfg
}

func (s ScenarioSpec) storeConfig() (store.Config, error) {
	readCL, err := s.Store.ReadConsistency.toStore()
	if err != nil {
		return store.Config{}, err
	}
	writeCL, err := s.Store.WriteConsistency.toStore()
	if err != nil {
		return store.Config{}, err
	}
	cfg := store.DefaultConfig()
	cfg.ReplicationFactor = s.Store.ReplicationFactor
	cfg.ReadConsistency = readCL
	cfg.WriteConsistency = writeCL
	cfg.ReadRepair = s.Store.ReadRepair
	cfg.HintedHandoff = s.Store.HintedHandoff
	cfg.AntiEntropyInterval = s.Store.AntiEntropyInterval
	return cfg, nil
}

func (s ScenarioSpec) monitorConfig() monitor.Config {
	cfg := monitor.DefaultConfig()
	cfg.UseActive = s.Monitor.ActiveProbes
	cfg.UsePassive = s.Monitor.PassiveObservation
	if s.Monitor.ProbeRate > 0 {
		cfg.ProbeRate = s.Monitor.ProbeRate
	}
	if !s.Monitor.ActiveProbes {
		cfg.ProbeRate = 0
	}
	// Bound the load a single probe can add while it waits for its write to
	// become visible: poll every 20 ms and give up (recording a censored
	// estimate) after 5 s.
	cfg.ProbePollInterval = 20 * time.Millisecond
	cfg.ProbeTimeout = 5 * time.Second
	return cfg
}

func (s ScenarioSpec) slaModel() sla.SLA {
	return sla.SLA{
		MaxWindowP95:       s.SLA.MaxWindowP95,
		MaxReadLatencyP99:  s.SLA.MaxReadLatencyP99,
		MaxWriteLatencyP99: s.SLA.MaxWriteLatencyP99,
		MaxErrorRate:       s.SLA.MaxErrorRate,
	}
}

func (s ScenarioSpec) costModel() sla.CostModel {
	m := sla.CostModel{
		NodeCostPerHour:           s.SLA.NodeCostPerHour,
		StaleReadCompensation:     s.SLA.StaleReadCompensation,
		ViolationPenaltyPerMinute: s.SLA.ViolationPenaltyPerMinute,
	}
	if m.NodeCostPerHour == 0 && m.StaleReadCompensation == 0 && m.ViolationPenaltyPerMinute == 0 {
		m = sla.DefaultCostModel()
	}
	return m
}

func (s ScenarioSpec) loadProfile() workload.LoadProfile {
	return loadProfileFor(s.Workload, s.Duration)
}

// loadProfileFor builds the load profile for one workload description,
// defaulting the period and peak placement from the run duration. Tenant
// workloads share the exact defaulting rules of the scenario workload.
func loadProfileFor(w WorkloadSpec, duration time.Duration) workload.LoadProfile {
	base := w.BaseOpsPerSec
	peak := w.PeakOpsPerSec
	if peak <= 0 {
		peak = base
	}
	period := w.Period
	if period <= 0 {
		period = duration
	}
	peakStart := w.PeakStart
	if peakStart <= 0 {
		peakStart = duration / 2
	}
	peakDur := w.PeakDuration
	if peakDur <= 0 {
		peakDur = duration / 10
	}
	switch w.Pattern {
	case LoadStep:
		return workload.StepProfile{Base: base, Peak: peak, From: peakStart, To: peakStart + peakDur}
	case LoadDiurnal:
		return workload.DiurnalProfile{Min: base, Max: peak, Period: period}
	case LoadSpike:
		return workload.SpikeProfile{Base: base, SpikeTo: peak, At: peakStart, Duration: peakDur, RampFraction: 0.2}
	case LoadDiurnalSpike:
		return workload.CompositeProfile{Parts: []workload.LoadProfile{
			workload.DiurnalProfile{Min: base, Max: peak, Period: period},
			workload.SpikeProfile{Base: 0, SpikeTo: peak, At: peakStart, Duration: peakDur, RampFraction: 0.2},
		}}
	default:
		return workload.ConstantProfile{OpsPerSec: base}
	}
}

func (s ScenarioSpec) controllerConfig() core.Config {
	cfg := core.DefaultConfig(s.slaModel())
	if s.Controller.ControlInterval > 0 {
		cfg.ControlInterval = s.Controller.ControlInterval
	}
	cfg.EnablePrediction = s.Controller.Predictive
	cfg.EnableConsistencyActions = s.Controller.AllowConsistencyChanges
	cfg.EnableReplicationActions = s.Controller.AllowReplicationChanges
	cfg.EnableScaling = s.Controller.AllowScaling
	cfg.EnableAdmissionControl = s.Controller.Admission.Enabled
	cfg.EnablePlacementActions = s.Controller.AllowPlacement
	if s.Controller.Admission.ThrottleFraction > 0 {
		cfg.ThrottleFraction = s.Controller.Admission.ThrottleFraction
	}
	if s.Controller.Admission.MinRate > 0 {
		cfg.MinThrottleRate = s.Controller.Admission.MinRate
	}
	if s.Controller.Admission.Cooldown > 0 {
		cfg.ThrottleCooldown = s.Controller.Admission.Cooldown
	}
	if s.Controller.Admission.Holdoff > 0 {
		cfg.UnthrottleHoldoff = s.Controller.Admission.Holdoff
	}
	if s.Cluster.MinNodes > 0 {
		cfg.MinNodes = s.Cluster.MinNodes
	}
	if s.Cluster.MaxNodes > 0 {
		cfg.MaxNodes = s.Cluster.MaxNodes
	}
	if cap := s.effectiveNodeCapacity(); cap > 0 {
		cfg.NodeCapacityOpsPerSec = cap
	}
	if s.Cluster.BootstrapTime > 0 {
		cfg.PredictionHorizon = 2 * s.Cluster.BootstrapTime
	}
	return cfg
}

// effectiveNodeCapacity is the controller's belief about how many *client*
// operations per second one node contributes for the configured workload mix
// and replication factor. One client operation costs more than one node
// operation: reads usually touch a replica besides the coordinator and every
// write ships a replication apply to each other replica.
func (s ScenarioSpec) effectiveNodeCapacity() float64 {
	nodeOps := s.Cluster.NodeOpsPerSec
	if nodeOps <= 0 {
		nodeOps = cluster.DefaultNodeConfig().CapacityOpsPerSec
	}
	rf := s.Store.ReplicationFactor
	if rf < 1 {
		rf = 1
	}
	readFrac := s.Workload.ReadFraction
	service := 1.0 / nodeOps
	readCost := 2 * service
	writeCost := service + 0.75*service*float64(rf)
	perOp := readFrac*readCost + (1-readFrac)*writeCost
	if perOp <= 0 {
		return nodeOps
	}
	return 1 / perOp
}

func (s ScenarioSpec) reactiveConfig() baseline.ReactiveConfig {
	cfg := baseline.DefaultReactiveConfig()
	if s.Cluster.MinNodes > 0 {
		cfg.MinNodes = s.Cluster.MinNodes
	}
	if s.Cluster.MaxNodes > 0 {
		cfg.MaxNodes = s.Cluster.MaxNodes
	}
	return cfg
}
