package autonosql_test

import (
	"math"
	"strings"
	"testing"
	"time"

	"autonosql"
)

// faultSpec returns a quick-running base spec for fault tests.
func faultSpec(seed int64) autonosql.ScenarioSpec {
	spec := autonosql.DefaultScenarioSpec()
	spec.Seed = seed
	spec.Duration = 90 * time.Second
	spec.SampleInterval = 5 * time.Second
	spec.Cluster.InitialNodes = 4
	spec.Workload.BaseOpsPerSec = 1500
	spec.Controller.Mode = autonosql.ControllerNone
	return spec
}

func TestFaultSpecValidation(t *testing.T) {
	cases := []struct {
		name  string
		fault autonosql.FaultSpec
		ok    bool
	}{
		{"crash", autonosql.CrashFault(10*time.Second, 20*time.Second, 1), true},
		{"partition", autonosql.PartitionFault(10*time.Second, 20*time.Second, 2), true},
		{"slow", autonosql.SlowNodeFault(10*time.Second, 20*time.Second, 1, 0.5), true},
		{"storm", autonosql.LatencyStormFault(10*time.Second, 20*time.Second, 0.8), true},
		{"permanent crash", autonosql.CrashFault(10*time.Second, 0, 1), true},
		{"unknown kind", autonosql.FaultSpec{Kind: "meteor", At: time.Second}, false},
		{"negative at", autonosql.CrashFault(-time.Second, 0, 1), false},
		{"negative duration", autonosql.FaultSpec{Kind: autonosql.FaultNodeCrash, At: time.Second, Duration: -time.Second}, false},
		{"negative nodes", autonosql.FaultSpec{Kind: autonosql.FaultNodeCrash, At: time.Second, Nodes: -1}, false},
		{"severity above one", autonosql.SlowNodeFault(time.Second, time.Second, 1, 1.5), false},
		{"negative severity", autonosql.LatencyStormFault(time.Second, time.Second, -0.1), false},
		{"NaN severity", autonosql.LatencyStormFault(time.Second, time.Second, math.NaN()), false},
		{"Inf severity", autonosql.SlowNodeFault(time.Second, time.Second, 1, math.Inf(1)), false},
	}
	for _, tc := range cases {
		spec := faultSpec(1)
		spec.Faults = autonosql.FaultPlan{Faults: []autonosql.FaultSpec{tc.fault}}
		err := spec.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: Validate() = %v, want nil", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: Validate() accepted an invalid fault", tc.name)
		}
	}
}

func TestParseFaultPlan(t *testing.T) {
	plan, err := autonosql.ParseFaultPlan(
		"crash:30s:60s, partition:1m:45s:n=2, slow:20s:40s:n=2:sev=0.5, storm:10s:30s:sev=0.8")
	if err != nil {
		t.Fatalf("ParseFaultPlan: %v", err)
	}
	want := []autonosql.FaultSpec{
		autonosql.CrashFault(30*time.Second, 60*time.Second, 0),
		autonosql.PartitionFault(time.Minute, 45*time.Second, 2),
		autonosql.SlowNodeFault(20*time.Second, 40*time.Second, 2, 0.5),
		autonosql.LatencyStormFault(10*time.Second, 30*time.Second, 0.8),
	}
	if len(plan.Faults) != len(want) {
		t.Fatalf("parsed %d faults, want %d", len(plan.Faults), len(want))
	}
	for i, got := range plan.Faults {
		if got != want[i] {
			t.Errorf("fault %d = %+v, want %+v", i, got, want[i])
		}
	}

	if p, err := autonosql.ParseFaultPlan(""); err != nil || !p.Empty() {
		t.Errorf("empty string parsed to (%+v, %v), want empty plan", p, err)
	}
	for _, bad := range []string{
		"crash", "crash:30s", "meteor:1s:1s", "crash:x:1s", "crash:1s:y",
		"crash:1s:1s:n=z", "crash:1s:1s:sev=z", "crash:1s:1s:bogus=1",
		"slow:1s:1s:sev=2", "storm:1s:1s:sev=NaN", "storm:1s:1s:sev=+Inf",
	} {
		if _, err := autonosql.ParseFaultPlan(bad); err == nil {
			t.Errorf("ParseFaultPlan(%q) accepted invalid input", bad)
		}
	}
}

// TestParsedPlansAlwaysValidate pins the parser's contract: anything it
// accepts passes spec validation unchanged.
func TestParsedPlansAlwaysValidate(t *testing.T) {
	for _, s := range []string{
		"crash:0s:0s", "partition:5m:1h:n=3", "storm:1s:1s:sev=1", "slow:1s:1s:n=0:sev=0",
	} {
		plan, err := autonosql.ParseFaultPlan(s)
		if err != nil {
			t.Fatalf("ParseFaultPlan(%q): %v", s, err)
		}
		spec := faultSpec(1)
		spec.Faults = plan
		if err := spec.Validate(); err != nil {
			t.Errorf("plan %q parsed but failed validation: %v", s, err)
		}
	}
}

func TestDefaultFaultProfiles(t *testing.T) {
	profiles := autonosql.DefaultFaultProfiles(4 * time.Minute)
	names := make([]string, 0, len(profiles))
	for _, p := range profiles {
		names = append(names, p.Name)
		spec := faultSpec(1)
		spec.Faults = p.Plan
		if err := spec.Validate(); err != nil {
			t.Errorf("profile %q does not validate: %v", p.Name, err)
		}
	}
	if got := strings.Join(names, ","); got != "none,crash,partition,slow,storm" {
		t.Errorf("profile names = %s", got)
	}
	if p, ok := autonosql.LookupFaultProfile("crash", 4*time.Minute); !ok || p.Plan.Empty() {
		t.Errorf("LookupFaultProfile(crash) = (%+v, %v)", p, ok)
	}
	if _, ok := autonosql.LookupFaultProfile("meteor", time.Minute); ok {
		t.Error("LookupFaultProfile accepted an unknown profile")
	}
}

// TestGridFaultAxis pins that the fault axis multiplies the grid, names its
// variants and leaves grids without the axis (and their variant names)
// exactly as before.
func TestGridFaultAxis(t *testing.T) {
	base := faultSpec(1)
	grid := autonosql.Grid{
		Controllers: []autonosql.ControllerMode{autonosql.ControllerNone, autonosql.ControllerSmart},
		Faults:      autonosql.DefaultFaultProfiles(base.Duration)[:3], // none, crash, partition
	}
	if got, want := grid.Size(), 6; got != want {
		t.Fatalf("grid.Size() = %d, want %d", got, want)
	}
	variants := autonosql.ExpandGrid(base, grid)
	if len(variants) != 6 {
		t.Fatalf("expanded %d variants, want 6", len(variants))
	}
	if got, want := variants[0].Name, "ctl=none faults=none"; got != want {
		t.Errorf("variants[0].Name = %q, want %q", got, want)
	}
	if got, want := variants[1].Name, "ctl=none faults=crash"; got != want {
		t.Errorf("variants[1].Name = %q, want %q", got, want)
	}
	if !variants[0].Spec.Faults.Empty() {
		t.Error("faults=none variant carries a fault plan")
	}
	if variants[2].Spec.Faults.Empty() {
		t.Error("faults=partition variant lost its fault plan")
	}
	seen := map[int64]bool{}
	for _, v := range variants {
		if seen[v.Spec.Seed] {
			t.Errorf("duplicate derived seed %d", v.Spec.Seed)
		}
		seen[v.Spec.Seed] = true
	}

	// Without the axis, names keep their pre-fault shape.
	plain := autonosql.ExpandGrid(base, autonosql.Grid{
		Controllers: []autonosql.ControllerMode{autonosql.ControllerNone},
	})
	if got, want := plain[0].Name, "ctl=none"; got != want {
		t.Errorf("axis-free variant name = %q, want %q", got, want)
	}
}

// TestCrashFaultObservableInReport pins end-to-end injection: a crash fault
// shows up in the report's fault timeline, degrades the cluster while
// active, and the hinted-handoff machinery records activity.
func TestCrashFaultObservableInReport(t *testing.T) {
	spec := faultSpec(33)
	spec.Faults = autonosql.FaultPlan{Faults: []autonosql.FaultSpec{
		autonosql.CrashFault(20*time.Second, 30*time.Second, 1),
	}}
	scenario, err := autonosql.NewScenario(spec)
	if err != nil {
		t.Fatalf("NewScenario: %v", err)
	}
	var duringCrash, afterRestart int
	scenario.At(30*time.Second, func(h *autonosql.Handle) { duringCrash = h.ClusterSize() })
	scenario.At(80*time.Second, func(h *autonosql.Handle) { afterRestart = h.ClusterSize() })
	rep, err := scenario.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if duringCrash != 3 {
		t.Errorf("cluster size during crash = %d, want 3", duringCrash)
	}
	if afterRestart != 4 {
		t.Errorf("cluster size after restart = %d, want 4", afterRestart)
	}
	if len(rep.Faults) != 1 {
		t.Fatalf("report has %d fault windows, want 1", len(rep.Faults))
	}
	fw := rep.Faults[0]
	if fw.Kind != "crash" || fw.Start != 20*time.Second || fw.End != 50*time.Second {
		t.Errorf("fault window = %+v", fw)
	}
	if len(fw.Nodes) != 1 {
		t.Errorf("fault window nodes = %v, want one node", fw.Nodes)
	}
	if fw.Samples == 0 {
		t.Error("fault window captured no samples")
	}
	if !strings.Contains(rep.String(), "fault: crash") {
		t.Error("report String() does not mention the fault")
	}
}

// TestPartitionFaultExercisesHandoff pins that a partition makes writes to
// minority replicas queue as hints and that the window statistics reflect
// the delayed convergence after the heal.
func TestPartitionFaultExercisesHandoff(t *testing.T) {
	run := func(withFault bool) *autonosql.Report {
		spec := faultSpec(44)
		if withFault {
			spec.Faults = autonosql.FaultPlan{Faults: []autonosql.FaultSpec{
				autonosql.PartitionFault(20*time.Second, 40*time.Second, 1),
			}}
		}
		scenario, err := autonosql.NewScenario(spec)
		if err != nil {
			t.Fatalf("NewScenario: %v", err)
		}
		rep, err := scenario.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return rep
	}
	faulty, clean := run(true), run(false)
	if faulty.Window.Max <= clean.Window.Max {
		t.Errorf("partition did not widen the max window: faulty=%v clean=%v",
			faulty.Window.Max, clean.Window.Max)
	}
	if len(faulty.Faults) != 1 {
		t.Fatalf("report has %d fault windows, want 1", len(faulty.Faults))
	}
}

// TestInterventionPartitionHandle covers the Handle partition surface.
func TestInterventionPartitionHandle(t *testing.T) {
	spec := faultSpec(55)
	scenario, err := autonosql.NewScenario(spec)
	if err != nil {
		t.Fatalf("NewScenario: %v", err)
	}
	var partErr, allErr error
	scenario.At(10*time.Second, func(h *autonosql.Handle) {
		partErr = h.Partition(0)
		allErr = h.Partition(0, 1, 2, 3)
	})
	scenario.At(30*time.Second, func(h *autonosql.Handle) { h.HealPartition() })
	if _, err := scenario.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if partErr != nil {
		t.Errorf("Partition(0) = %v", partErr)
	}
	if allErr == nil {
		t.Error("Partition of every node was accepted")
	}
}
