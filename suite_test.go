package autonosql

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"
)

// suiteBaseSpec returns a base spec small enough that a dozen variants run in
// a few seconds of wall-clock time.
func suiteBaseSpec() ScenarioSpec {
	spec := DefaultScenarioSpec()
	spec.Duration = 20 * time.Second
	spec.SampleInterval = 5 * time.Second
	spec.Workload.BaseOpsPerSec = 600
	spec.Workload.PeakOpsPerSec = 1200
	spec.Workload.Keyspace = 1000
	spec.Controller.Mode = ControllerNone
	return spec
}

func TestExpandGridIsExhaustiveAndDeterministic(t *testing.T) {
	base := suiteBaseSpec()
	grid := Grid{
		Patterns:     []LoadPattern{LoadConstant, LoadDiurnal, LoadSpike},
		Controllers:  []ControllerMode{ControllerNone, ControllerSmart},
		ClusterSizes: []int{3, 6},
	}
	variants := ExpandGrid(base, grid)

	if got, want := len(variants), grid.Size(); got != want {
		t.Fatalf("expanded %d variants, want grid size %d", got, want)
	}
	if grid.Size() != 3*2*2 {
		t.Fatalf("grid.Size() = %d, want 12", grid.Size())
	}

	// Exhaustive: every axis combination appears exactly once.
	seen := make(map[string]bool)
	for _, v := range variants {
		key := fmt.Sprintf("%s/%s/%d", v.Spec.Workload.Pattern, v.Spec.Controller.Mode, v.Spec.Cluster.InitialNodes)
		if seen[key] {
			t.Errorf("combination %s appears twice", key)
		}
		seen[key] = true
	}
	for _, p := range grid.Patterns {
		for _, c := range grid.Controllers {
			for _, n := range grid.ClusterSizes {
				key := fmt.Sprintf("%s/%s/%d", p, c, n)
				if !seen[key] {
					t.Errorf("combination %s missing from expansion", key)
				}
			}
		}
	}

	// Deterministic: a second expansion is identical, names and seeds
	// included.
	again := ExpandGrid(base, grid)
	if !reflect.DeepEqual(variants, again) {
		t.Error("two expansions of the same base and grid differ")
	}

	// Per-variant seeds all differ from each other and from the base seed.
	seeds := make(map[int64]string)
	for _, v := range variants {
		if v.Spec.Seed == base.Seed {
			t.Errorf("variant %q kept the base seed", v.Name)
		}
		if prev, dup := seeds[v.Spec.Seed]; dup {
			t.Errorf("variants %q and %q share seed %d", prev, v.Name, v.Spec.Seed)
		}
		seeds[v.Spec.Seed] = v.Name
	}

	// A different base seed yields different variant seeds.
	base2 := base
	base2.Seed = base.Seed + 1
	for i, v := range ExpandGrid(base2, grid) {
		if v.Spec.Seed == variants[i].Spec.Seed {
			t.Errorf("variant %q has the same seed under different base seeds", v.Name)
		}
	}
}

func TestExpandGridEmptyAxesKeepBaseValues(t *testing.T) {
	base := suiteBaseSpec()
	variants := ExpandGrid(base, Grid{ClusterSizes: []int{2, 4}})
	if len(variants) != 2 {
		t.Fatalf("expanded %d variants, want 2", len(variants))
	}
	for _, v := range variants {
		if v.Spec.Workload.Pattern != base.Workload.Pattern {
			t.Errorf("variant %q changed the pattern of an un-swept axis", v.Name)
		}
		if v.Spec.SLA != base.SLA {
			t.Errorf("variant %q changed the SLA of an un-swept axis", v.Name)
		}
	}
	if variants[0].Spec.Cluster.InitialNodes != 2 || variants[1].Spec.Cluster.InitialNodes != 4 {
		t.Errorf("cluster sizes not applied in order: %d, %d",
			variants[0].Spec.Cluster.InitialNodes, variants[1].Spec.Cluster.InitialNodes)
	}
}

func TestExpandGridDegenerateKeepsBaseSpec(t *testing.T) {
	base := suiteBaseSpec()
	variants := ExpandGrid(base, Grid{})
	if len(variants) != 1 || variants[0].Name != "base" {
		t.Fatalf("degenerate grid expanded to %+v, want one variant named \"base\"", variants)
	}
	// Seed included: a suite of one must reproduce a direct scenario run.
	if !reflect.DeepEqual(variants[0].Spec, base) {
		t.Errorf("degenerate expansion changed the base spec:\n got %+v\nwant %+v", variants[0].Spec, base)
	}
}

func TestSuiteConfigureErrorAbortsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	suite, err := NewSuite(SuiteSpec{Variants: []Variant{{
		Name:      "broken",
		Spec:      suiteBaseSpec(),
		Configure: func(*Scenario) error { return fmt.Errorf("boom") },
	}}})
	if err != nil {
		t.Fatalf("NewSuite: %v", err)
	}
	if _, err := suite.Run(); err == nil || !strings.Contains(err.Error(), "broken") {
		t.Fatalf("Run error = %v, want one naming variant %q", err, "broken")
	}
}

func TestExpandGridRepeatsUseDistinctSeeds(t *testing.T) {
	variants := ExpandGrid(suiteBaseSpec(), Grid{ClusterSizes: []int{3}, Repeats: 3})
	if len(variants) != 3 {
		t.Fatalf("expanded %d variants, want 3", len(variants))
	}
	for i, v := range variants {
		for _, w := range variants[i+1:] {
			if v.Spec.Seed == w.Spec.Seed {
				t.Errorf("repeats %q and %q share a seed", v.Name, w.Name)
			}
		}
	}
}

func TestNewSuiteRejectsBadSpecs(t *testing.T) {
	if _, err := NewSuite(SuiteSpec{Variants: []Variant{}}); err == nil {
		t.Error("empty suite accepted")
	}
	v := Variant{Name: "a", Spec: suiteBaseSpec()}
	if _, err := NewSuite(SuiteSpec{Variants: []Variant{v, v}}); err == nil {
		t.Error("duplicate variant names accepted")
	}
	if _, err := NewSuite(SuiteSpec{Variants: []Variant{{Spec: suiteBaseSpec()}}}); err == nil {
		t.Error("unnamed variant accepted")
	}
	bad := suiteBaseSpec()
	bad.Duration = 0
	if _, err := NewSuite(SuiteSpec{Variants: []Variant{{Name: "bad", Spec: bad}}}); err == nil {
		t.Error("invalid variant spec accepted")
	}
}

func TestSuiteConcurrentMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	spec := SuiteSpec{
		Base: suiteBaseSpec(),
		Grid: Grid{
			Patterns:     []LoadPattern{LoadConstant, LoadSpike},
			Controllers:  []ControllerMode{ControllerNone, ControllerSmart},
			ClusterSizes: []int{3},
		},
	}

	sequential := spec
	sequential.Parallelism = 1
	seqSuite, err := NewSuite(sequential)
	if err != nil {
		t.Fatalf("NewSuite: %v", err)
	}
	seqReport, err := seqSuite.Run()
	if err != nil {
		t.Fatalf("sequential run: %v", err)
	}

	concurrent := spec
	concurrent.Parallelism = 4
	conSuite, err := NewSuite(concurrent)
	if err != nil {
		t.Fatalf("NewSuite: %v", err)
	}
	conReport, err := conSuite.Run()
	if err != nil {
		t.Fatalf("concurrent run: %v", err)
	}

	// Elapsed and Parallelism are run metadata and legitimately differ
	// between runs; everything else must be identical whatever the
	// parallelism.
	seqReport.Elapsed = 0
	conReport.Elapsed = 0
	seqReport.Parallelism = 0
	conReport.Parallelism = 0
	if !reflect.DeepEqual(seqReport, conReport) {
		t.Fatal("concurrent suite report differs from sequential report")
	}

	// And a suite is re-runnable with identical results.
	conAgain, err := conSuite.Run()
	if err != nil {
		t.Fatalf("second concurrent run: %v", err)
	}
	conAgain.Elapsed = 0
	conAgain.Parallelism = 0
	if !reflect.DeepEqual(conReport, conAgain) {
		t.Fatal("re-running the same suite produced a different report")
	}
}

func TestSuiteConfigureHookRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	spec := suiteBaseSpec()
	suite, err := NewSuite(SuiteSpec{Variants: []Variant{{
		Name: "tighten",
		Spec: spec,
		Configure: func(sc *Scenario) error {
			sc.At(5*time.Second, func(h *Handle) { _ = h.SetWriteConsistency(ConsistencyQuorum) })
			return nil
		},
	}}})
	if err != nil {
		t.Fatalf("NewSuite: %v", err)
	}
	report, err := suite.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := report.Variants[0].Report.FinalConfiguration.WriteConsistency; got != ConsistencyQuorum {
		t.Fatalf("intervention not applied: final write consistency %s, want QUORUM", got)
	}
}

func TestSuiteReportCSVRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	report := runSmallSuite(t)

	var buf bytes.Buffer
	if err := report.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("parsing written CSV: %v", err)
	}
	if len(records) != report.Len()+1 {
		t.Fatalf("CSV has %d records, want %d", len(records), report.Len()+1)
	}
	header := SuiteCSVHeader()
	if !reflect.DeepEqual(records[0], header) {
		t.Fatalf("CSV header mismatch:\n got %v\nwant %v", records[0], header)
	}
	col := func(name string) int {
		for i, c := range header {
			if c == name {
				return i
			}
		}
		t.Fatalf("no CSV column %q", name)
		return -1
	}
	for i, v := range report.Variants {
		row := records[i+1]
		if row[col("variant")] != v.Name {
			t.Errorf("row %d variant = %q, want %q", i, row[col("variant")], v.Name)
		}
		// Numeric cells use the shortest exact float encoding, so parsing a
		// cell back must reproduce the report value bit-for-bit.
		for cell, want := range map[string]float64{
			"window_p95_ms":       v.Report.Window.P95 * 1000,
			"read_p99_ms":         v.Report.ReadLatency.P99 * 1000,
			"violation_min_total": v.Report.Violations.Total,
			"cost_total":          v.Report.Cost.Total,
			"compliance":          v.Report.ComplianceRatio,
		} {
			got, err := strconv.ParseFloat(row[col(cell)], 64)
			if err != nil {
				t.Fatalf("row %d cell %s %q: %v", i, cell, row[col(cell)], err)
			}
			if got != want {
				t.Errorf("row %d cell %s = %v, want %v", i, cell, got, want)
			}
		}
		if seed, _ := strconv.ParseInt(row[col("seed")], 10, 64); seed != v.Spec.Seed {
			t.Errorf("row %d seed = %d, want %d", i, seed, v.Spec.Seed)
		}
	}
}

func TestSuiteReportJSONRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	report := runSmallSuite(t)

	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	restored, err := ReadSuiteReportJSON(&buf)
	if err != nil {
		t.Fatalf("ReadSuiteReportJSON: %v", err)
	}
	// Elapsed and Parallelism are measurement metadata and deliberately
	// excluded from the export, so exports of identical suites stay
	// byte-identical.
	if restored.Elapsed != 0 {
		t.Errorf("restored report has Elapsed=%v, want it excluded from JSON", restored.Elapsed)
	}
	if restored.Parallelism != 0 {
		t.Errorf("restored report has Parallelism=%v, want it excluded from JSON", restored.Parallelism)
	}
	report.Elapsed = 0
	report.Parallelism = 0
	if !reflect.DeepEqual(report, restored) {
		t.Fatal("JSON round trip changed the suite report")
	}
}

func TestSuiteReportTablesAndLookup(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	report := runSmallSuite(t)

	if report.Find(report.Variants[0].Name) == nil {
		t.Error("Find cannot locate an existing variant")
	}
	if report.Find("no such variant") != nil {
		t.Error("Find returned a result for an unknown name")
	}
	if got := len(report.Reports()); got != report.Len() {
		t.Errorf("Reports() has %d entries, want %d", got, report.Len())
	}

	rendered := report.String()
	for _, fragment := range []string{"suite comparison — SLA outcomes", "suite comparison — cost"} {
		if !strings.Contains(rendered, fragment) {
			t.Errorf("rendered report missing %q", fragment)
		}
	}
	for _, v := range report.Variants {
		if !strings.Contains(rendered, v.Name) {
			t.Errorf("rendered report missing variant %q", v.Name)
		}
	}
}

// runSmallSuite runs a tiny two-variant suite shared by the export tests.
func runSmallSuite(t *testing.T) *SuiteReport {
	t.Helper()
	suite, err := NewSuite(SuiteSpec{
		Base: suiteBaseSpec(),
		Grid: Grid{ClusterSizes: []int{2, 3}},
	})
	if err != nil {
		t.Fatalf("NewSuite: %v", err)
	}
	report, err := suite.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return report
}
